// comm.hpp — SPMD communicator for the in-process BSP runtime.
//
// This is the library's substitute for MPI (DESIGN.md §2): ranks are
// threads, point-to-point messages are buffered byte copies, and the
// collective set mirrors the MPI collectives the paper's Cyclops backend
// uses. Collectives are implemented *on top of* point-to-point sends with
// the textbook algorithms (binomial trees, rings, dissemination), so the
// message/byte counters reflect realistic communication structure — e.g.
// a broadcast really costs O(log p) rounds, an all-to-all really moves
// p·(p−1) messages. That is what makes the §III-C cost-model validation
// meaningful.
//
// Usage (SPMD, same style as an MPI program):
//   bsp::Runtime::run(8, [](bsp::Comm& comm) {
//     auto part = ...;                       // rank-local work
//     auto total = comm.allreduce<std::uint64_t>(part, std::plus<>{});
//   });
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "bsp/cost_model.hpp"
#include "bsp/fault.hpp"
#include "bsp/mailbox.hpp"
#include "bsp/protocol.hpp"
#include "obs/trace.hpp"
#include "util/membudget.hpp"

namespace sas::bsp {

/// Verdict of a recovery rendezvous (Comm::recover), identical on every
/// rank of the same generation.
struct RecoveryOutcome {
  bool retry = false;      ///< replay the batch (state was reset for it)
  bool healable = false;   ///< ranks agreed on the batch and none defected
  bool transient = false;  ///< the cause carried Severity::kTransient
  bool rearmed = false;    ///< shared state was reset — the run may go on
  int source_rank = -1;    ///< rank whose failure tripped the token
  std::string message;     ///< the cause's what() (quarantine manifests)
  std::exception_ptr cause;
};

namespace detail {

/// State shared by all ranks of one communicator (world or split group).
struct SharedState {
  explicit SharedState(int size_in)
      : size(size_in),
        mailboxes(static_cast<std::size_t>(size_in)),
        abort(std::make_shared<AbortToken>()) {}

  int size;
  std::vector<Mailbox> mailboxes;

  // Simulated node topology for the hierarchical collectives: node_of[r]
  // maps each rank to a node id in [0, nodes); node_members[q] lists node
  // q's ranks ascending, and the first member is the node's leader.
  // nodes == 1 means the flat single-tier network (the default) — the
  // collectives then keep their textbook single-stage forms and no send
  // is classified intra-node. Installed before the rank threads start
  // (Runtime) or derived from the parent map at split(); immutable while
  // collectives run.
  int nodes = 1;
  std::vector<int> node_of;
  std::vector<std::vector<int>> node_members;

  /// Group ranks into `nodes_in` contiguous near-equal blocks (clamped to
  /// [1, size]).
  void set_node_topology(int nodes_in);

  /// Install an arbitrary rank→node map (split children inherit the
  /// parent's placement this way; ids are renumbered dense). map.size()
  /// must equal size.
  void set_node_map(std::vector<int> map);

  // Failure semantics (fault.hpp). Split children share the parent's
  // abort token — a failure anywhere unwinds every communicator — and
  // inherit the watchdog deadline and fault plan.
  std::shared_ptr<AbortToken> abort;
  std::chrono::milliseconds watchdog{0};  ///< 0 = no deadline
  std::shared_ptr<const FaultPlan> fault_plan;

  // Sense-reversing barrier.
  std::mutex barrier_mutex;
  std::condition_variable barrier_cv;
  int barrier_arrived = 0;
  std::uint64_t barrier_generation = 0;

  // Recovery rendezvous (Comm::recover): after an abort, every rank
  // unwinds to its batch boundary and arrives here; the last arrival
  // coordinates the verdict (retry vs give up), resets the abort/
  // protocol/mailbox state for a replay, and releases the others. A rank
  // whose thread exits WITHOUT reaching the rendezvous (the failure
  // escaped the batch loop) is counted defected by Runtime so arrivals
  // never wait for a thread that is already gone.
  std::mutex recovery_mutex;
  std::condition_variable recovery_cv;
  int recovery_arrived = 0;
  int recovery_defected = 0;
  bool recovery_claimed = false;       ///< a coordinator is working
  std::uint64_t recovery_generation = 0;
  std::uint64_t recovery_epoch = 0;    ///< completed rendezvous count
  std::int64_t recovery_batch = -1;    ///< batch of the first arrival
  bool recovery_batch_mismatch = false;
  RecoveryOutcome recovery_outcome;    ///< current generation's verdict

  /// Runtime calls this when a rank's thread is about to exit while the
  /// run is aborted: the rank can no longer join a rendezvous, and any
  /// peers already waiting there must learn that and give up.
  void note_recovery_defection() {
    std::lock_guard<std::mutex> lock(recovery_mutex);
    ++recovery_defected;
    recovery_cv.notify_all();
  }

  // Registry used by split(): the first member of each (generation, color)
  // group allocates the child state; the last member erases the entry.
  std::mutex split_mutex;
  std::condition_variable split_cv;
  std::map<std::pair<std::uint64_t, int>, std::shared_ptr<SharedState>> split_children;
  std::map<std::pair<std::uint64_t, int>, int> split_remaining;

  // Debug-build protocol verifier (bsp/protocol.hpp). When armed, every
  // collective appends to this communicator's per-rank ledgers, which are
  // cross-checked at barriers and at run exit. Split children inherit the
  // flag and the world-owned registry so the exit sweep reaches their
  // ledgers and mailboxes too. Disarmed: one branch per collective.
  bool verify_protocol = false;
  std::vector<ProtocolLedger> ledgers;           ///< one per rank, owner-written
  ProtocolRegistry* protocol_registry = nullptr; ///< world's; null when disarmed
  std::shared_ptr<ProtocolRegistry> owned_registry;  ///< non-null on world only
  std::string label = "world communicator";      ///< for verifier reports
};

}  // namespace detail

/// Reserved tag space for internal collective traffic; user tags must be
/// non-negative.
enum InternalTag : int {
  kTagBcast = -1,
  kTagReduce = -2,
  kTagGather = -3,
  kTagAllgather = -4,
  kTagScatter = -5,
  kTagAlltoall = -6,
  kTagScan = -7,
  kTagSplit = -8,
  kTagReduceScatter = -9,
  // Hierarchical (two-tier) collective stages; see the hier_* helpers.
  kTagHierBcast = -10,     ///< inter-node leader tree + root→leader hop
  kTagHierReduce = -11,    ///< member→leader combine + leader tree
  kTagHierAllgather = -12, ///< intra gather + leader ring frames
  kTagHierAlltoall = -13,  ///< member→leader relay + leader↔leader frames
  kTagHierDown = -14,      ///< leader→member redistribution stages
};

/// SPMD communicator handle. Move-only: every rank owns exactly one
/// instance per (sub-)communicator so that collective call sequences stay
/// aligned across ranks.
class Comm {
 public:
  Comm(std::shared_ptr<detail::SharedState> state, int rank, CostCounters* counters,
       FaultSlot* fault = nullptr)
      : state_(std::move(state)), rank_(rank), counters_(counters), fault_(fault) {}

  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;
  Comm(Comm&&) = default;
  Comm& operator=(Comm&&) = default;

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept { return state_->size; }
  [[nodiscard]] CostCounters& counters() noexcept { return *counters_; }

  // ---- node topology (hierarchical collectives) ----------------------
  // Flat communicators report one node containing every rank.

  [[nodiscard]] int node_count() const noexcept { return state_->nodes; }
  [[nodiscard]] bool hierarchical() const noexcept { return state_->nodes > 1; }
  [[nodiscard]] int node_of(int r) const noexcept {
    return state_->node_of.empty() ? 0
                                   : state_->node_of[static_cast<std::size_t>(r)];
  }
  [[nodiscard]] int my_node() const noexcept { return node_of(rank_); }
  /// Ranks of `node`, ascending; the first entry is the node's leader.
  [[nodiscard]] std::span<const int> node_ranks(int node) const {
    if (state_->node_members.empty()) {
      throw std::logic_error("bsp::Comm::node_ranks: flat communicator");
    }
    return state_->node_members[static_cast<std::size_t>(node)];
  }
  [[nodiscard]] bool is_node_leader() const noexcept {
    return !hierarchical() ||
           state_->node_members[static_cast<std::size_t>(my_node())].front() == rank_;
  }

  /// Record kernel arithmetic against this rank's γ term.
  void add_flops(std::uint64_t n) noexcept { counters_->flops += n; }

  /// Global synchronization; counts one BSP superstep.
  void barrier();

  // ---- in-run recovery -----------------------------------------------

  /// Trip the run's abort token with `cause` so blocked peers unwind.
  /// First trip wins; the recovery layer calls this when a rank's batch
  /// body throws locally (peers learn of the failure through the token).
  void abort_with(std::exception_ptr cause) {
    state_->abort->trip(rank_, std::move(cause));
  }

  /// Recovery rendezvous: call on the WORLD communicator, on every rank,
  /// after the abort cascade unwound the batch to its boundary. Blocks
  /// until all surviving ranks arrive, then returns the shared verdict.
  /// Retry requires the cause to be transient, `attempt` < `max_retries`,
  /// every rank to name the same `batch`, and no rank to have defected
  /// (healable). When the verdict is retry — or the failure is healable
  /// and `quarantine` says the caller will skip the batch and go on — the
  /// shared state is re-armed (`rearmed`): abort token reset, mailboxes
  /// purged, protocol ledgers resynchronized at tags::kRecoveryResync,
  /// split registries cleared. On retry this rank's fault-injection slot
  /// additionally advances to `attempt` + 1 so `until=A` specs heal; a
  /// quarantine skip keeps the attempt (an unhealed fault must not
  /// re-fire into every later batch).
  [[nodiscard]] RecoveryOutcome recover(std::int64_t batch, std::uint64_t attempt,
                                        std::uint64_t max_retries, bool quarantine);

  // ---- point-to-point ----------------------------------------------------

  /// Buffered send of a trivially copyable span. Never blocks.
  /// Self-sends are delivered but not counted: they are local memcpys,
  /// not network traffic, and would skew the α-β accounting.
  template <typename T>
  void send(int dest, int tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_rank(dest);
    // Memory-budget guardrail on the staging copy: under a per-rank
    // budget (util/membudget.hpp) an over-limit payload fails as a typed
    // error::ResourceExhausted at the allocation site. Transient charge —
    // the mailbox's resident copy is the receiver's cost to bear.
    const util::ScopedCharge charge(data.size_bytes(), "send payload staging");
    Mailbox::Message payload(data.size_bytes());
    if (!data.empty()) std::memcpy(payload.data(), data.data(), data.size_bytes());
    fault_point(&payload);
    if (dest != rank_) {
      counters_->messages_sent += 1;
      counters_->bytes_sent += payload.size();
      // Two-tier classification: under an active node topology, sends
      // between ranks of the same node also accrue to the intra-tier
      // counters (the totals above keep their flat meaning; inter-node
      // traffic is the difference — see bsp/cost_model.hpp).
      if (state_->nodes > 1 &&
          state_->node_of[static_cast<std::size_t>(dest)] ==
              state_->node_of[static_cast<std::size_t>(rank_)]) {
        counters_->messages_intra += 1;
        counters_->bytes_intra += payload.size();
      }
      if (obs::RankObserver* o = obs::current()) {
        o->message_bytes.record(payload.size());
      }
    }
    state_->mailboxes[static_cast<std::size_t>(dest)].deposit(rank_, tag,
                                                              std::move(payload));
  }

  template <typename T>
  void send_value(int dest, int tag, const T& value) {
    send<T>(dest, tag, std::span<const T>(&value, 1));
  }

  /// Blocking receive of a message from (source, tag). Mirrors send():
  /// self-receives are local memcpys and are not counted as traffic.
  template <typename T>
  [[nodiscard]] std::vector<T> recv(int source, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_rank(source);
    obs::RankObserver* const o = obs::current();
    const std::int64_t wait_start_ns = o != nullptr ? o->now_ns() : 0;
    Mailbox::Message payload = state_->mailboxes[static_cast<std::size_t>(rank_)].retrieve(
        source, tag, wait_policy());
    if (o != nullptr) {
      o->mailbox_wait_ns.record(
          static_cast<std::uint64_t>(o->now_ns() - wait_start_ns));
    }
    fault_point(&payload);
    if (source != rank_) counters_->bytes_received += payload.size();
    if (payload.size() % sizeof(T) != 0) {
      throw std::logic_error("bsp::Comm::recv: payload size not a multiple of element size");
    }
    // Budget the unpack copy (see send(): typed failure, not an OOM kill).
    const util::ScopedCharge charge(payload.size(), "recv payload unpack");
    std::vector<T> data(payload.size() / sizeof(T));
    if (!data.empty()) std::memcpy(data.data(), payload.data(), payload.size());
    return data;
  }

  template <typename T>
  [[nodiscard]] T recv_value(int source, int tag) {
    auto data = recv<T>(source, tag);
    if (data.size() != 1) {
      throw std::logic_error("bsp::Comm::recv_value: expected exactly one element");
    }
    return data.front();
  }

  // ---- collectives ---------------------------------------------------

  /// Binomial-tree broadcast from `root`; non-root contents are replaced.
  /// Under a node topology (node_count() > 1) the tree is split into a
  /// root→leader hop, a binomial tree over the node leaders (inter tier),
  /// and per-node binomial trees (intra tier) — bitwise-identical output,
  /// fewer inter-node hops.
  template <typename T>
  void broadcast(std::vector<T>& data, int root) {
    const int p = size();
    proto_record(ProtoOp::kBroadcast, root, sizeof(T), 0);
    if (p == 1) return;
    const obs::CollectiveScope obs_scope(obs::Primitive::kBroadcast, *counters_);
    if (hierarchical()) {
      hier_broadcast(data, root);
      return;
    }
    const int vrank = virtual_rank(root);
    for (int mask = 1; mask < p; mask <<= 1) {
      if (vrank < mask) {
        const int partner = vrank + mask;
        if (partner < p) {
          send<T>(real_rank(partner, root), kTagBcast, std::span<const T>(data));
        }
      } else if (vrank < (mask << 1)) {
        data = recv<T>(real_rank(vrank - mask, root), kTagBcast);
      }
    }
  }

  template <typename T>
  [[nodiscard]] T broadcast_value(T value, int root) {
    std::vector<T> buf(1, value);
    broadcast(buf, root);
    return buf.front();
  }

  /// Binomial-tree reduction to `root`; `op(a, b)` must be associative and
  /// commutative. Vector variant combines elementwise; all ranks must pass
  /// equal-length vectors. Returns the reduced vector on root (others get
  /// their partially combined buffer back — only root's result is defined).
  template <typename T, typename Op>
  void reduce(std::vector<T>& data, Op op, int root) {
    const int p = size();
    proto_record(ProtoOp::kReduce, root, sizeof(T), data.size());
    const obs::CollectiveScope obs_scope(obs::Primitive::kReduce, *counters_);
    const int vrank = virtual_rank(root);
    int top = 1;
    while (top < p) top <<= 1;
    for (int mask = top >> 1; mask >= 1; mask >>= 1) {
      if (vrank < mask) {
        const int partner = vrank + mask;
        if (partner < p) {
          auto incoming = recv<T>(real_rank(partner, root), kTagReduce);
          combine_elementwise(data, incoming, op);
        }
      } else if (vrank < (mask << 1)) {
        send<T>(real_rank(vrank - mask, root), kTagReduce, std::span<const T>(data));
        return;  // contributed; out of the tree
      }
    }
  }

  /// reduce-to-root followed by broadcast; result defined on all ranks.
  /// Under a node topology: members combine onto their leader (intra),
  /// leaders reduce+broadcast among themselves (inter), leaders fan the
  /// result back out (intra). `op` must be associative and commutative —
  /// the same contract reduce() already imposes — so the result is
  /// bit-identical for the integer/bitwise/min-max ops the pipelines use.
  template <typename T, typename Op>
  void allreduce(std::vector<T>& data, Op op) {
    proto_record(ProtoOp::kAllreduce, 0, sizeof(T), data.size());
    // Outermost scope: the internal reduce + broadcast emit nested spans
    // but only this one books cost-model drift (obs/trace.hpp).
    const obs::CollectiveScope obs_scope(obs::Primitive::kAllreduce, *counters_);
    if (hierarchical()) {
      hier_allreduce(data, op);
      return;
    }
    reduce(data, op, 0);
    broadcast(data, 0);
  }

  template <typename T, typename Op>
  [[nodiscard]] T allreduce_value(T value, Op op) {
    std::vector<T> buf(1, value);
    allreduce(buf, op);
    return buf.front();
  }

  /// Flat gather of variable-length blocks to root; returns one vector per
  /// source rank (empty on non-roots).
  template <typename T>
  [[nodiscard]] std::vector<std::vector<T>> gather_v(std::span<const T> mine, int root) {
    const int p = size();
    // shape 0: per-rank block lengths may legitimately differ.
    proto_record(ProtoOp::kGather, root, sizeof(T), 0);
    const obs::CollectiveScope obs_scope(obs::Primitive::kGather, *counters_);
    std::vector<std::vector<T>> blocks;
    if (rank_ == root) {
      blocks.resize(static_cast<std::size_t>(p));
      blocks[static_cast<std::size_t>(rank_)].assign(mine.begin(), mine.end());
      for (int r = 0; r < p; ++r) {
        if (r == root) continue;
        blocks[static_cast<std::size_t>(r)] = recv<T>(r, kTagGather);
      }
    } else {
      send<T>(root, kTagGather, mine);
    }
    return blocks;
  }

  /// Ring allgather of variable-length blocks; every rank returns all
  /// blocks in rank order. Bandwidth-optimal: p−1 rounds, each forwarding
  /// the block received in the previous round. Under a node topology the
  /// ring runs over node *leaders* carrying per-node aggregates, framed
  /// by member-block lengths, with intra-node gather/redistribute stages
  /// on either side — the returned blocks are bitwise identical.
  template <typename T>
  [[nodiscard]] std::vector<std::vector<T>> allgather_v(std::span<const T> mine) {
    const int p = size();
    proto_record(ProtoOp::kAllgather, 0, sizeof(T), 0);
    const obs::CollectiveScope obs_scope(obs::Primitive::kAllgather, *counters_);
    if (hierarchical()) return hier_allgather_v(mine);
    std::vector<std::vector<T>> blocks(static_cast<std::size_t>(p));
    blocks[static_cast<std::size_t>(rank_)].assign(mine.begin(), mine.end());
    const int next = (rank_ + 1) % p;
    const int prev = (rank_ + p - 1) % p;
    int forwarding = rank_;  // owner of the block sent in this round
    for (int step = 0; step + 1 < p; ++step) {
      send<T>(next, kTagAllgather,
              std::span<const T>(blocks[static_cast<std::size_t>(forwarding)]));
      const int incoming = (rank_ + p - 1 - step) % p;
      blocks[static_cast<std::size_t>(incoming)] = recv<T>(prev, kTagAllgather);
      forwarding = incoming;
    }
    return blocks;
  }

  /// Concatenating allgather (blocks appended in rank order).
  template <typename T>
  [[nodiscard]] std::vector<T> allgather(std::span<const T> mine) {
    auto blocks = allgather_v(mine);
    std::size_t total = 0;
    for (const auto& b : blocks) total += b.size();
    std::vector<T> out;
    out.reserve(total);
    for (const auto& b : blocks) out.insert(out.end(), b.begin(), b.end());
    return out;
  }

  /// Root sends block r to rank r; returns this rank's block.
  template <typename T>
  [[nodiscard]] std::vector<T> scatter_v(const std::vector<std::vector<T>>& blocks,
                                         int root) {
    const int p = size();
    proto_record(ProtoOp::kScatter, root, sizeof(T), 0);
    const obs::CollectiveScope obs_scope(obs::Primitive::kScatter, *counters_);
    if (rank_ == root) {
      if (static_cast<int>(blocks.size()) != p) {
        throw std::invalid_argument("bsp::Comm::scatter_v: need one block per rank");
      }
      for (int r = 0; r < p; ++r) {
        if (r == root) continue;
        send<T>(r, kTagScatter, std::span<const T>(blocks[static_cast<std::size_t>(r)]));
      }
      return blocks[static_cast<std::size_t>(root)];
    }
    return recv<T>(root, kTagScatter);
  }

  /// Personalized all-to-all with variable block sizes. outgoing[r] is the
  /// block for rank r; returns incoming[r] = block from rank r. Buffered
  /// sends make the direct exchange deadlock-free.
  template <typename T>
  [[nodiscard]] std::vector<std::vector<T>> alltoall_v(
      const std::vector<std::vector<T>>& outgoing) {
    const int p = size();
    proto_record(ProtoOp::kAlltoall, 0, sizeof(T), outgoing.size());
    const obs::CollectiveScope obs_scope(obs::Primitive::kAlltoall, *counters_);
    if (static_cast<int>(outgoing.size()) != p) {
      throw std::invalid_argument("bsp::Comm::alltoall_v: need one block per rank");
    }
    if (hierarchical()) return hier_alltoall_v(outgoing);
    std::vector<std::vector<T>> incoming(static_cast<std::size_t>(p));
    incoming[static_cast<std::size_t>(rank_)] = outgoing[static_cast<std::size_t>(rank_)];
    // Pairwise-offset schedule spreads load across the "network".
    for (int offset = 1; offset < p; ++offset) {
      const int dest = (rank_ + offset) % p;
      send<T>(dest, kTagAlltoall, std::span<const T>(outgoing[static_cast<std::size_t>(dest)]));
    }
    for (int offset = 1; offset < p; ++offset) {
      const int source = (rank_ + p - offset) % p;
      incoming[static_cast<std::size_t>(source)] = recv<T>(source, kTagAlltoall);
    }
    return incoming;
  }

  /// Ring reduce-scatter: every rank passes equal-length vectors; rank r
  /// returns the elementwise combination of block r (block_count = p,
  /// near-equal contiguous blocks). Bandwidth-optimal: p−1 rounds each
  /// moving one block, (p−1)/p of the data per rank — the building block
  /// MPI implementations use inside large allreduces.
  template <typename T, typename Op>
  [[nodiscard]] std::vector<T> reduce_scatter(const std::vector<T>& data, Op op) {
    const int p = size();
    const auto total = static_cast<std::int64_t>(data.size());
    auto block_begin = [&](int b) {
      const std::int64_t base = total / p;
      const std::int64_t extra = total % p;
      return b * base + (b < static_cast<int>(extra) ? b : static_cast<std::int64_t>(extra));
    };
    auto block_of = [&](const std::vector<T>& v, int b) {
      return std::span<const T>(v.data() + block_begin(b),
                                static_cast<std::size_t>(block_begin(b + 1) - block_begin(b)));
    };
    proto_record(ProtoOp::kReduceScatter, 0, sizeof(T), data.size());
    if (p == 1) return data;
    const obs::CollectiveScope obs_scope(obs::Primitive::kReduceScatter,
                                         *counters_);

    // Block b leaves rank b+1 first and travels the ring once, combining
    // each rank's copy on the way; after p−1 rounds it lands fully
    // reduced on its owner b. Round t: rank r sends block (r−1−t) and
    // receives + combines block (r−2−t); the last block received is r's.
    std::vector<T> accum = data;
    const int next = (rank_ + 1) % p;
    const int prev = (rank_ + p - 1) % p;
    for (int t = 0; t < p - 1; ++t) {
      const int send_block = (rank_ - 1 - t % p + 2 * p) % p;
      const int recv_block = (rank_ - 2 - t % p + 2 * p) % p;
      send<T>(next, kTagReduceScatter, block_of(accum, send_block));
      const std::vector<T> incoming = recv<T>(prev, kTagReduceScatter);
      const std::int64_t begin = block_begin(recv_block);
      for (std::size_t i = 0; i < incoming.size(); ++i) {
        accum[static_cast<std::size_t>(begin) + i] =
            op(incoming[i], accum[static_cast<std::size_t>(begin) + i]);
      }
    }
    const auto mine = block_of(accum, rank_);
    return {mine.begin(), mine.end()};
  }

  /// Inclusive prefix combine (dissemination / Hillis-Steele): returns
  /// op(x_0, ..., x_rank). O(log p) rounds.
  template <typename T, typename Op>
  [[nodiscard]] T scan(T value, Op op) {
    const int p = size();
    proto_record(ProtoOp::kScan, 0, sizeof(T), 1);
    const obs::CollectiveScope obs_scope(obs::Primitive::kScan, *counters_);
    T inclusive = value;
    for (int offset = 1; offset < p; offset <<= 1) {
      if (rank_ + offset < p) send_value<T>(rank_ + offset, kTagScan, inclusive);
      if (rank_ - offset >= 0) {
        T incoming = recv_value<T>(rank_ - offset, kTagScan);
        inclusive = op(incoming, inclusive);
      }
    }
    return inclusive;
  }

  /// Exclusive prefix combine: returns op(x_0, ..., x_{rank-1}), or
  /// `identity` on rank 0.
  template <typename T, typename Op>
  [[nodiscard]] T exscan(T value, Op op, T identity) {
    const int p = size();
    proto_record(ProtoOp::kExscan, 0, sizeof(T), 1);
    const obs::CollectiveScope obs_scope(obs::Primitive::kScan, *counters_);
    T inclusive = value;
    T exclusive = identity;
    bool has_exclusive = false;
    for (int offset = 1; offset < p; offset <<= 1) {
      if (rank_ + offset < p) send_value<T>(rank_ + offset, kTagScan, inclusive);
      if (rank_ - offset >= 0) {
        T incoming = recv_value<T>(rank_ - offset, kTagScan);
        inclusive = op(incoming, inclusive);
        exclusive = has_exclusive ? op(incoming, exclusive) : incoming;
        has_exclusive = true;
      }
    }
    return exclusive;
  }

  /// Collective split into sub-communicators, MPI_Comm_split semantics:
  /// ranks sharing `color` form a group, ordered by (key, parent rank).
  /// Cost counters keep pointing at this rank's root counters, so
  /// sub-communicator traffic still accrues to the global BSP accounting.
  [[nodiscard]] Comm split(int color, int key);

 private:
  // ---- hierarchical (two-tier) collective machinery ------------------
  // Shapes: every hier_* stage is built from the same point-to-point
  // sends as the flat collectives, so the cost counters see the real
  // message structure; the intra/inter split falls out of send()'s
  // node classification. All payload routing is order-preserving
  // (mailboxes are FIFO per (source, tag)), and blocks are reassembled in
  // world-rank order, so results are bitwise identical to the flat forms.

  /// Leader rank of each node (node_members[q].front()), indexed by node.
  [[nodiscard]] std::vector<int> node_leaders() const {
    std::vector<int> leaders;
    leaders.reserve(state_->node_members.size());
    for (const auto& m : state_->node_members) leaders.push_back(m.front());
    return leaders;
  }

  /// Index of `r` in the ascending rank list `group`.
  [[nodiscard]] static int index_in(std::span<const int> group, int r) {
    const auto it = std::lower_bound(group.begin(), group.end(), r);
    return static_cast<int>(it - group.begin());
  }

  /// Binomial broadcast over an explicit rank group. Collective over
  /// exactly the ranks in `group` (ascending); `me_idx`/`root_idx` are
  /// indices into it. Non-root contents are replaced.
  template <typename T>
  void group_broadcast(std::span<const int> group, int me_idx, int root_idx,
                       std::vector<T>& data, int tag) {
    const int g = static_cast<int>(group.size());
    const int v = (me_idx - root_idx + g) % g;
    for (int mask = 1; mask < g; mask <<= 1) {
      if (v < mask) {
        const int partner = v + mask;
        if (partner < g) {
          send<T>(group[static_cast<std::size_t>((partner + root_idx) % g)], tag,
                  std::span<const T>(data));
        }
      } else if (v < (mask << 1)) {
        data = recv<T>(group[static_cast<std::size_t>((v - mask + root_idx) % g)], tag);
      }
    }
  }

  /// Binomial reduction over an explicit rank group; result defined on
  /// the root member only (others have partially combined buffers).
  template <typename T, typename Op>
  void group_reduce(std::span<const int> group, int me_idx, int root_idx,
                    std::vector<T>& data, Op op, int tag) {
    const int g = static_cast<int>(group.size());
    const int v = (me_idx - root_idx + g) % g;
    int top = 1;
    while (top < g) top <<= 1;
    for (int mask = top >> 1; mask >= 1; mask >>= 1) {
      if (v < mask) {
        const int partner = v + mask;
        if (partner < g) {
          auto incoming =
              recv<T>(group[static_cast<std::size_t>((partner + root_idx) % g)], tag);
          combine_elementwise(data, incoming, op);
        }
      } else if (v < (mask << 1)) {
        send<T>(group[static_cast<std::size_t>((v - mask + root_idx) % g)], tag,
                std::span<const T>(data));
        return;  // contributed; out of the tree
      }
    }
  }

  /// Two-tier broadcast: root→leader hop, leader tree, per-node trees.
  template <typename T>
  void hier_broadcast(std::vector<T>& data, int root) {
    const int rnode = node_of(root);
    const int rleader = state_->node_members[static_cast<std::size_t>(rnode)].front();
    if (root != rleader) {
      if (rank_ == root) {
        send<T>(rleader, kTagHierBcast, std::span<const T>(data));
      } else if (rank_ == rleader) {
        data = recv<T>(root, kTagHierBcast);
      }
    }
    const std::vector<int> leaders = node_leaders();
    const auto& members = state_->node_members[static_cast<std::size_t>(my_node())];
    if (rank_ == members.front()) {
      group_broadcast<T>(leaders, my_node(), rnode, data, kTagHierBcast);
    }
    group_broadcast<T>(members, index_in(members, rank_), 0, data, kTagHierDown);
  }

  /// Two-tier allreduce: member→leader combine (ascending member order),
  /// leader reduce+broadcast, leader→member fan-out.
  template <typename T, typename Op>
  void hier_allreduce(std::vector<T>& data, Op op) {
    const auto& members = state_->node_members[static_cast<std::size_t>(my_node())];
    const int leader = members.front();
    if (rank_ == leader) {
      for (std::size_t i = 1; i < members.size(); ++i) {
        auto incoming = recv<T>(members[i], kTagHierReduce);
        combine_elementwise(data, incoming, op);
      }
      const std::vector<int> leaders = node_leaders();
      group_reduce<T>(leaders, my_node(), 0, data, op, kTagHierReduce);
      group_broadcast<T>(leaders, my_node(), 0, data, kTagHierBcast);
    } else {
      send<T>(leader, kTagHierReduce, std::span<const T>(data));
    }
    group_broadcast<T>(members, index_in(members, rank_), 0, data, kTagHierDown);
  }

  /// Two-tier allgather_v: intra gather onto leaders, leader ring over
  /// per-node aggregates (lengths frame + payload frame per hop), intra
  /// redistribution of the assembled result.
  template <typename T>
  [[nodiscard]] std::vector<std::vector<T>> hier_allgather_v(std::span<const T> mine) {
    const int p = size();
    const int nn = state_->nodes;
    const auto& members = state_->node_members[static_cast<std::size_t>(my_node())];
    const int leader = members.front();
    std::vector<std::vector<T>> blocks(static_cast<std::size_t>(p));

    auto unpack = [&](const std::vector<std::uint64_t>& lengths,
                      const std::vector<T>& payload) {
      std::size_t off = 0;
      for (int r = 0; r < p; ++r) {
        const auto len = static_cast<std::size_t>(lengths[static_cast<std::size_t>(r)]);
        blocks[static_cast<std::size_t>(r)].assign(payload.begin() + off,
                                                   payload.begin() + off + len);
        off += len;
      }
    };

    if (rank_ != leader) {
      send<T>(leader, kTagHierAllgather, mine);
      const auto lengths = recv<std::uint64_t>(leader, kTagHierDown);
      const auto payload = recv<T>(leader, kTagHierDown);
      unpack(lengths, payload);
      return blocks;
    }

    // Leader: node aggregate = member lengths + concatenated payload,
    // members ascending (leader first).
    std::vector<std::vector<std::uint64_t>> agg_len(static_cast<std::size_t>(nn));
    std::vector<std::vector<T>> agg_pay(static_cast<std::size_t>(nn));
    {
      auto& len = agg_len[static_cast<std::size_t>(my_node())];
      auto& pay = agg_pay[static_cast<std::size_t>(my_node())];
      len.push_back(mine.size());
      pay.assign(mine.begin(), mine.end());
      for (std::size_t i = 1; i < members.size(); ++i) {
        auto blk = recv<T>(members[i], kTagHierAllgather);
        len.push_back(blk.size());
        pay.insert(pay.end(), blk.begin(), blk.end());
      }
    }

    // Inter ring over leaders, forwarding node aggregates (nn−1 rounds).
    const std::vector<int> leaders = node_leaders();
    const int me = my_node();
    const int next = leaders[static_cast<std::size_t>((me + 1) % nn)];
    const int prev = leaders[static_cast<std::size_t>((me + nn - 1) % nn)];
    int forwarding = me;
    for (int step = 0; step + 1 < nn; ++step) {
      send<std::uint64_t>(next, kTagHierAllgather,
                          std::span<const std::uint64_t>(
                              agg_len[static_cast<std::size_t>(forwarding)]));
      send<T>(next, kTagHierAllgather,
              std::span<const T>(agg_pay[static_cast<std::size_t>(forwarding)]));
      const int incoming = (me + nn - 1 - step) % nn;
      agg_len[static_cast<std::size_t>(incoming)] =
          recv<std::uint64_t>(prev, kTagHierAllgather);
      agg_pay[static_cast<std::size_t>(incoming)] = recv<T>(prev, kTagHierAllgather);
      forwarding = incoming;
    }

    // Reassemble in world-rank order and fan out to members as one
    // (lengths, payload) pair each.
    std::vector<std::uint64_t> flat_len(static_cast<std::size_t>(p), 0);
    for (int q = 0; q < nn; ++q) {
      const auto& qm = state_->node_members[static_cast<std::size_t>(q)];
      std::size_t off = 0;
      for (std::size_t i = 0; i < qm.size(); ++i) {
        const auto len = static_cast<std::size_t>(agg_len[static_cast<std::size_t>(q)][i]);
        const auto& pay = agg_pay[static_cast<std::size_t>(q)];
        blocks[static_cast<std::size_t>(qm[i])].assign(pay.begin() + off,
                                                       pay.begin() + off + len);
        flat_len[static_cast<std::size_t>(qm[i])] = len;
        off += len;
      }
    }
    std::vector<T> flat_pay;
    for (const auto& b : blocks) flat_pay.insert(flat_pay.end(), b.begin(), b.end());
    for (std::size_t i = 1; i < members.size(); ++i) {
      send<std::uint64_t>(members[i], kTagHierDown,
                          std::span<const std::uint64_t>(flat_len));
      send<T>(members[i], kTagHierDown, std::span<const T>(flat_pay));
    }
    return blocks;
  }

  /// Two-tier alltoall_v: same-node pairs exchange directly (intra);
  /// remote blocks relay member→leader, one dst-major framed message per
  /// (source node, destination node) leader pair, then leader→member.
  template <typename T>
  [[nodiscard]] std::vector<std::vector<T>> hier_alltoall_v(
      const std::vector<std::vector<T>>& outgoing) {
    const int p = size();
    const int nn = state_->nodes;
    const int mynode = my_node();
    const auto& members = state_->node_members[static_cast<std::size_t>(mynode)];
    const int m = static_cast<int>(members.size());
    const int my_idx = index_in(members, rank_);
    const int leader = members.front();
    std::vector<std::vector<T>> incoming(static_cast<std::size_t>(p));
    incoming[static_cast<std::size_t>(rank_)] = outgoing[static_cast<std::size_t>(rank_)];

    // Same-node pairs: pairwise-offset exchange, as in the flat schedule.
    for (int off = 1; off < m; ++off) {
      const int dest = members[static_cast<std::size_t>((my_idx + off) % m)];
      send<T>(dest, kTagAlltoall, std::span<const T>(outgoing[static_cast<std::size_t>(dest)]));
    }
    for (int off = 1; off < m; ++off) {
      const int src = members[static_cast<std::size_t>((my_idx + m - off) % m)];
      incoming[static_cast<std::size_t>(src)] = recv<T>(src, kTagAlltoall);
    }

    if (rank_ != leader) {
      // Up: per remote node q ascending, my blocks for q's ranks as one
      // (lengths, payload) chunk. FIFO per (rank, tag) keeps the q order.
      for (int q = 0; q < nn; ++q) {
        if (q == mynode) continue;
        const auto& qm = state_->node_members[static_cast<std::size_t>(q)];
        std::vector<std::uint64_t> len;
        std::vector<T> pay;
        len.reserve(qm.size());
        for (int dst : qm) {
          const auto& blk = outgoing[static_cast<std::size_t>(dst)];
          len.push_back(blk.size());
          pay.insert(pay.end(), blk.begin(), blk.end());
        }
        send<std::uint64_t>(leader, kTagHierAlltoall, std::span<const std::uint64_t>(len));
        send<T>(leader, kTagHierAlltoall, std::span<const T>(pay));
      }
      // Down: per remote node q ascending, the blocks from q's ranks
      // addressed to me, framed by source-member lengths.
      for (int q = 0; q < nn; ++q) {
        if (q == mynode) continue;
        const auto& qm = state_->node_members[static_cast<std::size_t>(q)];
        const auto len = recv<std::uint64_t>(leader, kTagHierDown);
        const auto pay = recv<T>(leader, kTagHierDown);
        std::size_t off = 0;
        for (std::size_t i = 0; i < qm.size(); ++i) {
          const auto l = static_cast<std::size_t>(len[i]);
          incoming[static_cast<std::size_t>(qm[i])].assign(pay.begin() + off,
                                                           pay.begin() + off + l);
          off += l;
        }
      }
      return incoming;
    }

    // Leader. For each remote node q: absorb every member's chunk for q,
    // assemble one dst-major frame — for each dst member of q (asc), the
    // blocks from this node's members (asc) — and ship it to q's leader.
    const std::vector<int> leaders = node_leaders();
    for (int q = 0; q < nn; ++q) {
      if (q == mynode) continue;
      const auto& qm = state_->node_members[static_cast<std::size_t>(q)];
      const auto md = static_cast<std::size_t>(qm.size());
      // chunk_len[i][j] / payload of member i: blocks for q's dst j.
      std::vector<std::vector<std::uint64_t>> chunk_len(static_cast<std::size_t>(m));
      std::vector<std::vector<T>> chunk_pay(static_cast<std::size_t>(m));
      chunk_len[0].reserve(md);
      for (int dst : qm) {
        const auto& blk = outgoing[static_cast<std::size_t>(dst)];
        chunk_len[0].push_back(blk.size());
        chunk_pay[0].insert(chunk_pay[0].end(), blk.begin(), blk.end());
      }
      for (int i = 1; i < m; ++i) {
        chunk_len[static_cast<std::size_t>(i)] =
            recv<std::uint64_t>(members[static_cast<std::size_t>(i)], kTagHierAlltoall);
        chunk_pay[static_cast<std::size_t>(i)] =
            recv<T>(members[static_cast<std::size_t>(i)], kTagHierAlltoall);
      }
      std::vector<std::uint64_t> flen;
      std::vector<T> fpay;
      flen.reserve(md * static_cast<std::size_t>(m));
      std::vector<std::size_t> cursor(static_cast<std::size_t>(m), 0);
      for (std::size_t j = 0; j < md; ++j) {
        for (int i = 0; i < m; ++i) {
          const auto l = static_cast<std::size_t>(chunk_len[static_cast<std::size_t>(i)][j]);
          flen.push_back(l);
          const auto& pay = chunk_pay[static_cast<std::size_t>(i)];
          fpay.insert(fpay.end(), pay.begin() + cursor[static_cast<std::size_t>(i)],
                      pay.begin() + cursor[static_cast<std::size_t>(i)] + l);
          cursor[static_cast<std::size_t>(i)] += l;
        }
      }
      send<std::uint64_t>(leaders[static_cast<std::size_t>(q)], kTagHierAlltoall,
                          std::span<const std::uint64_t>(flen));
      send<T>(leaders[static_cast<std::size_t>(q)], kTagHierAlltoall,
              std::span<const T>(fpay));
    }

    // Receive one frame per remote node and redistribute: dst member j of
    // my node gets the source-member lengths row + contiguous payload.
    for (int q = 0; q < nn; ++q) {
      if (q == mynode) continue;
      const auto& qm = state_->node_members[static_cast<std::size_t>(q)];
      const auto ms = static_cast<std::size_t>(qm.size());
      const auto flen =
          recv<std::uint64_t>(leaders[static_cast<std::size_t>(q)], kTagHierAlltoall);
      const auto fpay = recv<T>(leaders[static_cast<std::size_t>(q)], kTagHierAlltoall);
      std::size_t off = 0;
      for (int j = 0; j < m; ++j) {
        const std::size_t row = static_cast<std::size_t>(j) * ms;
        std::size_t seg = 0;
        for (std::size_t i = 0; i < ms; ++i) seg += static_cast<std::size_t>(flen[row + i]);
        if (j == 0) {
          std::size_t o = off;
          for (std::size_t i = 0; i < ms; ++i) {
            const auto l = static_cast<std::size_t>(flen[row + i]);
            incoming[static_cast<std::size_t>(qm[i])].assign(fpay.begin() + o,
                                                             fpay.begin() + o + l);
            o += l;
          }
        } else {
          send<std::uint64_t>(members[static_cast<std::size_t>(j)], kTagHierDown,
                              std::span<const std::uint64_t>(flen.data() + row, ms));
          send<T>(members[static_cast<std::size_t>(j)], kTagHierDown,
                  std::span<const T>(fpay.data() + off, seg));
        }
        off += seg;
      }
    }
    return incoming;
  }

  [[nodiscard]] int virtual_rank(int root) const noexcept {
    return (rank_ - root + size()) % size();
  }
  [[nodiscard]] int real_rank(int vrank, int root) const noexcept {
    return (vrank + root) % size();
  }
  void check_rank(int r) const {
    if (r < 0 || r >= size()) throw std::out_of_range("bsp::Comm: rank out of range");
  }

  [[nodiscard]] WaitPolicy wait_policy() const noexcept {
    return WaitPolicy{state_->abort.get(), state_->watchdog, rank_};
  }

  /// Protocol-verifier hook at the top of every collective: append the
  /// call's fingerprint to this rank's ledger (bsp/protocol.hpp). The
  /// ledger is only read at synchronization points that order this write
  /// (barrier mutex, thread join). No-op unless verification is armed.
  void proto_record(ProtoOp op, int tag, std::uint32_t elem_size,
                    std::uint64_t shape) noexcept {
    if (!state_->verify_protocol) return;
    state_->ledgers[static_cast<std::size_t>(rank_)].record(op, tag, elem_size,
                                                            shape);
  }

  /// Fault-injection hook on every counted point-to-point op (and so on
  /// every collective). No-op unless a plan is installed.
  void fault_point(Mailbox::Message* payload) {
    if (fault_ == nullptr) return;
    const FaultPlan* plan = state_->fault_plan.get();
    if (plan == nullptr) return;
    plan->apply(*fault_, payload);
  }

  template <typename T, typename Op>
  static void combine_elementwise(std::vector<T>& into, const std::vector<T>& from,
                                  Op op) {
    if (into.size() != from.size()) {
      throw std::logic_error("bsp reduce: mismatched vector lengths across ranks");
    }
    for (std::size_t i = 0; i < into.size(); ++i) into[i] = op(into[i], from[i]);
  }

  std::shared_ptr<detail::SharedState> state_;
  int rank_;
  CostCounters* counters_;
  FaultSlot* fault_ = nullptr;  // world-rank injection state; null = no plan
  std::uint64_t split_sequence_ = 0;  // aligned across ranks by SPMD discipline
};

}  // namespace sas::bsp
