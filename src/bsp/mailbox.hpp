// mailbox.hpp — internal message transport for the BSP runtime.
//
// One mailbox per destination rank. Messages are byte buffers keyed by
// (source, tag); per-key delivery is FIFO, matching MPI's non-overtaking
// guarantee for same (source, tag) pairs. Sends are buffered (never
// block), so naive send-then-receive exchange patterns cannot deadlock.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

namespace sas::bsp {

class Mailbox {
 public:
  using Message = std::vector<std::byte>;

  /// Deposit a message from `source` with `tag`. Never blocks.
  void deposit(int source, int tag, Message payload) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queues_[{source, tag}].push_back(std::move(payload));
    }
    cv_.notify_all();
  }

  /// Block until a message from (source, tag) is available and return it.
  [[nodiscard]] Message retrieve(int source, int tag) {
    std::unique_lock<std::mutex> lock(mutex_);
    auto& queue = queues_[{source, tag}];
    cv_.wait(lock, [&queue] { return !queue.empty(); });
    Message payload = std::move(queue.front());
    queue.pop_front();
    return payload;
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::pair<int, int>, std::deque<Message>> queues_;
};

}  // namespace sas::bsp
