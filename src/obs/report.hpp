// report.hpp — machine-readable run report (`gas dist --report-json`).
//
// The report is the registry's serialization: per-stage and per-batch
// tables copied verbatim from the driver's PipelineStats/BatchStats (so
// the report always matches what the pipeline itself measured), per-rank
// BSP cost counters and metric histograms, and the per-primitive
// cost-model drift table. The input struct is deliberately generic —
// obs/ never includes core/ headers, the driver flattens its stats into
// rows — which is also what lets the benches reuse this writer.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "bsp/cost_model.hpp"

namespace sas::obs {

class Observer;

/// One pipeline stage row (rank-0 aggregated view, max-seconds /
/// summed-traffic — exactly PipelineStats' reduction).
struct StageRow {
  std::string name;
  double seconds = 0.0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t messages = 0;
};

/// One batch row mirroring core::BatchStats.
struct BatchRow {
  int index = 0;
  double seconds = 0.0;
  std::int64_t local_nnz = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
};

/// One batch the recovery layer quarantined (mirrors
/// core::QuarantinedBatch; kept generic so obs/ stays core-free).
struct QuarantineRow {
  std::int64_t batch = 0;
  std::int64_t row_begin = 0;
  std::int64_t row_end = 0;
  std::int64_t attempts = 0;
  std::string reason;
};

/// Everything the report writer needs, flattened by the caller.
struct ReportInput {
  int ranks = 0;
  std::string estimator;
  std::string algorithm;
  std::int64_t samples = 0;
  std::vector<StageRow> stages;
  std::vector<BatchRow> batches;
  /// In-run recovery: batch replays that ran, and batches abandoned
  /// under quarantine. A non-empty quarantine table marks the run
  /// "degraded" (completed, but with named gaps).
  std::int64_t retries = 0;
  std::vector<QuarantineRow> quarantined;
  /// Per-rank counters from Runtime::run; may be empty on an aborted run.
  std::vector<bsp::CostCounters> counters;
  /// Optional: adds per-rank metrics, histograms, and the drift table.
  const Observer* observer = nullptr;
  /// Non-empty marks the run aborted (status "aborted" + postmortem).
  std::string abort_message;
  std::string blocked_sites;
};

/// Schema identifier stamped into every report ("schema" key).
inline constexpr const char* kReportSchema = "sas-run-report-v1";

void write_report_json(std::ostream& out, const ReportInput& input);

/// As above, to a file. Throws error::ConfigError if unwritable.
void write_report_json_file(const std::string& path, const ReportInput& input);

}  // namespace sas::obs
