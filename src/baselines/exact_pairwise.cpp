#include "baselines/exact_pairwise.hpp"

#include <atomic>
#include <stdexcept>
#include <thread>

namespace sas::baselines {

double exact_jaccard(const std::vector<std::uint64_t>& a,
                     const std::vector<std::uint64_t>& b) {
  std::size_t ia = 0;
  std::size_t ib = 0;
  std::int64_t inter = 0;
  while (ia < a.size() && ib < b.size()) {
    if (a[ia] < b[ib]) {
      ++ia;
    } else if (b[ib] < a[ia]) {
      ++ib;
    } else {
      ++inter;
      ++ia;
      ++ib;
    }
  }
  const auto uni = static_cast<std::int64_t>(a.size() + b.size()) - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

core::SimilarityMatrix exact_all_pairs(
    const std::vector<std::vector<std::uint64_t>>& samples, int threads) {
  if (threads < 1) throw std::invalid_argument("exact_all_pairs: threads must be >= 1");
  const auto n = static_cast<std::int64_t>(samples.size());
  std::vector<double> s(static_cast<std::size_t>(n * n), 1.0);

  auto compute_row = [&](std::int64_t i) {
    for (std::int64_t j = i + 1; j < n; ++j) {
      const double v = exact_jaccard(samples[static_cast<std::size_t>(i)],
                                     samples[static_cast<std::size_t>(j)]);
      s[static_cast<std::size_t>(i * n + j)] = v;
      s[static_cast<std::size_t>(j * n + i)] = v;
    }
  };

  if (threads == 1) {
    for (std::int64_t i = 0; i < n; ++i) compute_row(i);
  } else {
    std::atomic<std::int64_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&] {
        for (std::int64_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
          compute_row(i);
        }
      });
    }
    for (auto& t : pool) t.join();
  }
  return core::SimilarityMatrix(n, std::move(s));
}

}  // namespace sas::baselines
