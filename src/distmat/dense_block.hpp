// dense_block.hpp — local block of a 2D block-distributed dense matrix.
//
// The output similarity matrices B, C, S are "generally dense" (paper
// §III-B), so they live as one contiguous row-major block per grid rank:
// rank (i, j) of the s×s layer-0 grid owns rows block i × cols block j of
// the n×n output. DenseBlock carries its global ranges so that kernels
// can translate between local and global indices.
#pragma once

#include <cstdint>
#include <vector>

#include "distmat/block.hpp"

namespace sas::distmat {

template <typename T>
struct DenseBlock {
  BlockRange row_range;  ///< global rows covered by this block
  BlockRange col_range;  ///< global cols covered by this block
  std::vector<T> values; ///< row-major, size = row_range.size() * col_range.size()

  DenseBlock() = default;
  DenseBlock(BlockRange rows, BlockRange cols)
      : row_range(rows), col_range(cols),
        values(static_cast<std::size_t>(rows.size() * cols.size()), T{}) {}

  [[nodiscard]] std::int64_t local_rows() const noexcept { return row_range.size(); }
  [[nodiscard]] std::int64_t local_cols() const noexcept { return col_range.size(); }

  [[nodiscard]] T& at_local(std::int64_t r, std::int64_t c) noexcept {
    return values[static_cast<std::size_t>(r * col_range.size() + c)];
  }
  [[nodiscard]] const T& at_local(std::int64_t r, std::int64_t c) const noexcept {
    return values[static_cast<std::size_t>(r * col_range.size() + c)];
  }

  /// Raw pointer to the start of local row r — the accumulator row handed
  /// to the unrolled popcount kernels (which index it by local column).
  [[nodiscard]] T* row_data(std::int64_t r) noexcept {
    return values.data() + static_cast<std::size_t>(r * col_range.size());
  }
  [[nodiscard]] const T* row_data(std::int64_t r) const noexcept {
    return values.data() + static_cast<std::size_t>(r * col_range.size());
  }

  [[nodiscard]] T& at_global(std::int64_t r, std::int64_t c) noexcept {
    return at_local(r - row_range.begin, c - col_range.begin);
  }
  [[nodiscard]] const T& at_global(std::int64_t r, std::int64_t c) const noexcept {
    return at_local(r - row_range.begin, c - col_range.begin);
  }
};

}  // namespace sas::distmat
