// minhash_accuracy — quantifies the paper's §I motivation.
//
// "These approximations often lead to inaccurate approximations of d_J
// for highly similar pairs of sequence sets, and tend to be ineffective
// for computation of a distance between highly dissimilar sets unless
// very large sketch sizes are used."
//
// Genome pairs are generated at controlled true Jaccard levels via the
// point-mutation model; MinHash estimates at several sketch sizes are
// compared against the exact value that SimilarityAtScale computes by
// construction. Reported: mean absolute and mean relative error over
// hash-seed trials. The exact method's error is identically zero.
#include <cmath>

#include "baselines/exact_pairwise.hpp"
#include "baselines/minhash.hpp"
#include "bench_common.hpp"
#include "genome/sample.hpp"
#include "genome/synthetic.hpp"

using namespace sas;
using namespace sas::bench;

int main() {
  const int k = 21;
  const std::int64_t genome_length = 60000;
  const int trials = 8;
  print_header("MinHash accuracy vs exact Jaccard (paper §I / §VI motivation)",
               "Besta et al., IPDPS'20, §I (Mash limitations)",
               "genome pairs at controlled true J, k=21, 60kbp, 8 hash seeds");

  const genome::KmerCodec codec(k);
  Rng rng(1234);
  const std::string base = genome::random_genome(genome_length, rng);
  const auto base_sample = genome::build_sample("base", {{"g", "", base}}, codec);

  TextTable table({"true J (exact)", "regime", "sketch", "mean |err|", "mean rel err",
                   "exact method err"});
  for (double target : {0.999, 0.99, 0.9, 0.5, 0.1, 0.01, 0.002}) {
    const double rate = genome::mutation_rate_for_jaccard(k, target);
    const std::string mutated = genome::mutate_point(base, rate, rng);
    const auto other = genome::build_sample("m", {{"g", "", mutated}}, codec);
    const double truth = baselines::exact_jaccard(base_sample.kmers, other.kmers);
    const char* regime =
        target >= 0.9 ? "highly similar" : (target <= 0.01 ? "highly dissimilar" : "mid");

    for (std::size_t sketch : {128, 1024, 8192}) {
      double abs_err = 0.0;
      double rel_err = 0.0;
      for (int t = 0; t < trials; ++t) {
        const baselines::MinHashSketch sa(base_sample.kmers, sketch,
                                          100 + static_cast<std::uint64_t>(t));
        const baselines::MinHashSketch sb(other.kmers, sketch,
                                          100 + static_cast<std::uint64_t>(t));
        const double est = baselines::MinHashSketch::estimate_jaccard(sa, sb);
        abs_err += std::fabs(est - truth);
        rel_err += truth > 0 ? std::fabs(est - truth) / truth : 0.0;
      }
      table.add_row({fmt_fixed(truth, 4), regime, std::to_string(sketch),
                     fmt_fixed(abs_err / trials, 5),
                     fmt_fixed(100.0 * rel_err / trials, 1) + "%", "0 (exact)"});
    }
  }
  table.print();

  std::printf("\nShapes to match (paper's motivation):\n"
              "  * highly dissimilar pairs: relative error is huge at small sketches\n"
              "    (estimates quantize at 1/sketch or collapse to 0);\n"
              "  * highly similar pairs: the DISTANCE d_J = 1-J inherits the absolute\n"
              "    error, which dwarfs the tiny true distance;\n"
              "  * error shrinks ~1/sqrt(sketch), i.e. accuracy costs sketch size;\n"
              "  * the exact pipeline has zero error at every operating point.\n");

  // Distance-space view for the highly-similar regime.
  std::printf("\nDistance-space error for a highly similar pair (true J = 0.999):\n");
  const double rate = genome::mutation_rate_for_jaccard(k, 0.999);
  const std::string mutated = genome::mutate_point(base, rate, rng);
  const auto other = genome::build_sample("m", {{"g", "", mutated}}, codec);
  const double truth = baselines::exact_jaccard(base_sample.kmers, other.kmers);
  TextTable dist({"sketch", "true d_J", "est d_J (one seed)", "rel distance err"});
  for (std::size_t sketch : {128, 1024, 8192}) {
    const baselines::MinHashSketch sa(base_sample.kmers, sketch, 77);
    const baselines::MinHashSketch sb(other.kmers, sketch, 77);
    const double est = baselines::MinHashSketch::estimate_jaccard(sa, sb);
    const double true_d = 1.0 - truth;
    const double est_d = 1.0 - est;
    dist.add_row({std::to_string(sketch), fmt_fixed(true_d, 5), fmt_fixed(est_d, 5),
                  true_d > 0 ? fmt_fixed(100.0 * std::fabs(est_d - true_d) / true_d, 1) + "%"
                             : "n/a"});
  }
  dist.print();
  return 0;
}
