#include "genome/kmer_source.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "sketch/exchange.hpp"
#include "sketch/sketch.hpp"

namespace sas::genome {

namespace {

std::int64_t universe_for_k(int k) {
  if (k < 1 || k > 31) throw std::invalid_argument("k must be in [1, 31]");
  return std::int64_t{1} << (2 * k);
}

std::vector<std::int64_t> codes_in_range(const std::vector<std::uint64_t>& kmers,
                                         distmat::BlockRange range) {
  const auto lo = std::lower_bound(kmers.begin(), kmers.end(),
                                   static_cast<std::uint64_t>(range.begin));
  const auto hi = std::lower_bound(lo, kmers.end(),
                                   static_cast<std::uint64_t>(range.end));
  std::vector<std::int64_t> out;
  out.reserve(static_cast<std::size_t>(hi - lo));
  for (auto it = lo; it != hi; ++it) out.push_back(static_cast<std::int64_t>(*it));
  return out;
}

void validate_sample(const KmerSample& sample, std::int64_t universe) {
  if (!sample.kmers.empty() &&
      sample.kmers.back() >= static_cast<std::uint64_t>(universe)) {
    throw std::out_of_range("k-mer code exceeds 4^k universe for sample " + sample.name);
  }
}

}  // namespace

KmerSampleSource::KmerSampleSource(int k, std::vector<KmerSample> samples)
    : universe_(universe_for_k(k)), samples_(std::move(samples)) {
  for (const KmerSample& s : samples_) validate_sample(s, universe_);
}

std::vector<std::int64_t> KmerSampleSource::values_in_range(
    std::int64_t sample, distmat::BlockRange range) const {
  return codes_in_range(samples_[static_cast<std::size_t>(sample)].kmers, range);
}

std::vector<std::string> KmerSampleSource::sample_names() const {
  std::vector<std::string> names;
  names.reserve(samples_.size());
  for (const KmerSample& s : samples_) names.push_back(s.name);
  return names;
}

KmerFileSource::KmerFileSource(int k, const std::vector<std::string>& sample_paths)
    : universe_(universe_for_k(k)), paths_(sample_paths) {
  samples_.reserve(sample_paths.size());
  for (const std::string& path : sample_paths) {
    samples_.push_back(read_sample_file(path));
    validate_sample(samples_.back(), universe_);
  }
}

std::string KmerFileSource::sketch_path(std::int64_t sample,
                                        const core::Config& config) const {
  const core::Estimator est = sketch::resolved_sketch_estimator(config);
  return paths_[static_cast<std::size_t>(sample)] + "." +
         sketch::estimator_wire_name(est) + ".sketch";
}

std::vector<std::uint64_t> KmerFileSource::persisted_sketch(
    std::int64_t sample, const core::Config& config) const {
  const core::Estimator est = sketch::resolved_sketch_estimator(config);
  switch (est) {
    case core::Estimator::kHll:
    case core::Estimator::kMinhash:
    case core::Estimator::kBottomK:
      break;
    default:
      return {};
  }
  // read_wire_file returns empty on missing files and throws
  // error::CorruptInput on malformed ones; parameter compatibility is
  // the caller's wire_matches_config check.
  return sketch::read_wire_file(sketch_path(sample, config));
}

std::vector<std::int64_t> KmerFileSource::values_in_range(
    std::int64_t sample, distmat::BlockRange range) const {
  return codes_in_range(samples_[static_cast<std::size_t>(sample)].kmers, range);
}

std::vector<std::string> KmerFileSource::sample_names() const {
  std::vector<std::string> names;
  names.reserve(samples_.size());
  for (const KmerSample& s : samples_) names.push_back(s.name);
  return names;
}

}  // namespace sas::genome
