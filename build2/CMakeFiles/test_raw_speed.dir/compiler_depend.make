# Empty compiler generated dependencies file for test_raw_speed.
# This may be replaced when dependencies are built.
