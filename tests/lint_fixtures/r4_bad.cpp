// Seeded R4 fixture: a stage entry point whose body never opens an
// observability span. Never compiled -- sas_lint.py --self-test only.

void ring_ata_accumulate(int panels, int batches) {
  for (int b = 0; b < batches; ++b) {
    (void)panels;
  }
}
