#include "sketch/sketch.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

#include "sketch/bottomk.hpp"
#include "sketch/hyperloglog.hpp"
#include "sketch/one_perm_minhash.hpp"
#include "util/error.hpp"

namespace sas::sketch {

WireType wire_type(std::span<const std::uint64_t> wire) {
  if (wire.size() < kWireHeaderWords || (wire[0] >> 32) != kWireMagic) {
    throw std::invalid_argument("sketch::wire_type: not a sketch wire blob");
  }
  switch (wire[0] & 0xff) {
    case static_cast<std::uint64_t>(WireType::kHyperLogLog):
      return WireType::kHyperLogLog;
    case static_cast<std::uint64_t>(WireType::kOnePermMinHash):
      return WireType::kOnePermMinHash;
    case static_cast<std::uint64_t>(WireType::kBottomK):
      return WireType::kBottomK;
    case static_cast<std::uint64_t>(WireType::kOnePermMinHashRaw):
      return WireType::kOnePermMinHashRaw;
    default:
      throw std::invalid_argument("sketch::wire_type: unknown sketch type tag");
  }
}

double estimate_jaccard_wire(std::span<const std::uint64_t> a,
                             std::span<const std::uint64_t> b) {
  const WireType type = wire_type(a);
  if (type != wire_type(b)) {
    throw std::invalid_argument("estimate_jaccard_wire: mismatched sketch types");
  }
  switch (type) {
    case WireType::kHyperLogLog:
      return hll_wire_jaccard(a, b);
    case WireType::kOnePermMinHash:
      return oph_wire_jaccard(a, b);
    case WireType::kBottomK:
      return bottomk_wire_jaccard(a, b);
    case WireType::kOnePermMinHashRaw:
      // Full-fidelity form: materialize (rare path — the ring ships the
      // compact comparison form).
      return OnePermMinHash::estimate_jaccard(OnePermMinHash::deserialize(a),
                                              OnePermMinHash::deserialize(b));
  }
  throw std::logic_error("estimate_jaccard_wire: unreachable");
}

void write_wire_file(const std::string& path, std::span<const std::uint64_t> wire) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw error::ConfigError("write_wire_file: cannot open " + path);
  out.write(reinterpret_cast<const char*>(wire.data()),
            static_cast<std::streamsize>(wire.size_bytes()));
  if (!out) throw error::ConfigError("write_wire_file: short write to " + path);
}

std::vector<std::uint64_t> read_wire_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return {};  // missing/unreadable: "no persisted sketch"
  // The file EXISTS from here on: any malformation is data corruption,
  // not absence, and must surface as a typed error instead of silently
  // falling back to recomputation (which would mask bit rot).
  const std::streamsize bytes = in.tellg();
  if (bytes <= 0 || bytes % static_cast<std::streamsize>(sizeof(std::uint64_t)) != 0) {
    throw error::CorruptInput("read_wire_file: " + path +
                              ": size is not a whole number of sketch words");
  }
  std::vector<std::uint64_t> wire(static_cast<std::size_t>(bytes) / sizeof(std::uint64_t));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(wire.data()), bytes);
  if (!in) {
    throw error::CorruptInput("read_wire_file: " + path + ": short read");
  }
  if (wire.size() < kWireHeaderWords || (wire[0] >> 32) != kWireMagic) {
    throw error::CorruptInput("read_wire_file: " + path + ": bad sketch wire magic");
  }
  return wire;
}

}  // namespace sas::sketch
