# Empty compiler generated dependencies file for bench_ablation_bitmask.
# This may be replaced when dependencies are built.
