// block.hpp — 1D block partitioning helpers.
//
// All distributed objects in the library (indicator-matrix row chunks,
// sample column chunks, dense output blocks) use contiguous block
// partitions with the remainder spread over the leading blocks, so that
// block sizes differ by at most one.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace sas::distmat {

/// Half-open index range [begin, end).
struct BlockRange {
  std::int64_t begin = 0;
  std::int64_t end = 0;

  [[nodiscard]] std::int64_t size() const noexcept { return end - begin; }
  [[nodiscard]] bool contains(std::int64_t i) const noexcept {
    return i >= begin && i < end;
  }
};

/// Range of the b-th of `nblocks` near-equal blocks over [0, total).
[[nodiscard]] inline BlockRange block_range(std::int64_t total, int nblocks, int b) {
  if (nblocks <= 0 || b < 0 || b >= nblocks) {
    throw std::invalid_argument("block_range: invalid block index");
  }
  const std::int64_t base = total / nblocks;
  const std::int64_t extra = total % nblocks;
  const std::int64_t begin = b * base + (b < extra ? b : extra);
  const std::int64_t len = base + (b < extra ? 1 : 0);
  return {begin, begin + len};
}

/// Index of the block that owns element i under block_range partitioning.
[[nodiscard]] inline int block_owner(std::int64_t total, int nblocks, std::int64_t i) {
  if (total <= 0) return 0;
  const std::int64_t base = total / nblocks;
  const std::int64_t extra = total % nblocks;
  const std::int64_t split = (base + 1) * extra;  // first index owned by a small block
  if (i < split) return static_cast<int>(i / (base + 1));
  if (base == 0) return nblocks - 1;
  return static_cast<int>(extra + (i - split) / base);
}

}  // namespace sas::distmat
