// runtime.hpp — SPMD launcher for the in-process BSP runtime.
//
// Runtime::run(p, fn) executes `fn` on p rank-threads, each receiving its
// own Comm bound to a shared world communicator, and returns the per-rank
// cost counters. This is the reproduction's stand-in for `mpirun -np p`
// (DESIGN.md §2): the SPMD code inside `fn` is structured exactly as the
// MPI program would be, and rank counts may exceed physical cores (the
// scaling benches oversubscribe deliberately; modelled α-β-γ cost is the
// machine-independent signal).
#pragma once

#include <functional>
#include <vector>

#include "bsp/comm.hpp"
#include "bsp/cost_model.hpp"

namespace sas::bsp {

class Runtime {
 public:
  /// Run `fn(comm)` as `nranks` SPMD threads. Blocks until all ranks
  /// finish. If any rank throws, the first exception (by rank order) is
  /// rethrown after all threads have been joined.
  ///
  /// Returns the per-rank cost counters accumulated during the run.
  static std::vector<CostCounters> run(int nranks,
                                       const std::function<void(Comm&)>& fn);
};

}  // namespace sas::bsp
