// test_sparse_output.cpp — the survivor-sparse output path.
//
// Contracts under test (ISSUE 5 tentpole):
//   * sparse assembly parity: for every algorithm / rank count / batch
//     count / prune sketch, the sparse survivor gather produces values
//     BITWISE-identical to the dense gather (dense_output = true) on
//     every survivor, and SparseSimilarity::to_dense reconstructs the
//     dense hybrid matrix bitwise;
//   * no quadratic structures: a SparseSimilarity at an n where n²
//     doubles could never be allocated still constructs and answers
//     lookups, and a driver-level sparse run's rank-0 output stays
//     survivor-proportional (far below the dense n²·8 bytes);
//   * matrix_io round-trips the sparse format exactly and rejects
//     corrupted key streams;
//   * the SparseSimilarity lookup semantics (diagonal 1.0, survivor
//     exact, estimate fallback, 0.0 default) and pack_pair validation.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "analysis/similar_pairs.hpp"
#include "core/driver.hpp"
#include "core/matrix_io.hpp"
#include "core/sample_source.hpp"
#include "core/similarity_matrix.hpp"
#include "distmat/pair_mask.hpp"
#include "util/rng.hpp"

namespace sas {
namespace {

/// Two-cluster synthetic source (same regime as test_hybrid): high J
/// within a cluster, near-zero across — survivors and pruned mass both
/// present.
core::VectorSampleSource clustered_source(std::int64_t m, int per_cluster,
                                          std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<std::int64_t>> bases(2);
  for (auto& base : bases) {
    for (std::int64_t v = 0; v < m; ++v) {
      if (rng.bernoulli(0.3)) base.push_back(v);
    }
  }
  std::vector<std::vector<std::int64_t>> samples;
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < per_cluster; ++i) {
      std::vector<std::int64_t> s;
      for (std::int64_t v : bases[static_cast<std::size_t>(c)]) {
        if (!rng.bernoulli(0.08)) s.push_back(v);
      }
      for (std::int64_t v = 0; v < m; ++v) {
        if (rng.bernoulli(0.02)) s.push_back(v);
      }
      samples.push_back(std::move(s));
    }
  }
  return core::VectorSampleSource(m, std::move(samples));
}

struct SparseCase {
  core::Algorithm algorithm;
  int nranks;
  int batch_count;
  int replication;
  core::Estimator prune_sketch;
};

class SparseAssemblyParity : public ::testing::TestWithParam<SparseCase> {};

TEST_P(SparseAssemblyParity, MatchesDenseGatherBitwise) {
  const SparseCase c = GetParam();
  const auto src = clustered_source(/*m=*/600, /*per_cluster=*/7, /*seed=*/21);
  const std::int64_t n = src.sample_count();

  core::Config sparse_cfg;
  sparse_cfg.algorithm = c.algorithm;
  sparse_cfg.batch_count = c.batch_count;
  sparse_cfg.replication = c.replication;
  sparse_cfg.estimator = core::Estimator::kHybrid;
  sparse_cfg.hybrid_sketch = c.prune_sketch;
  sparse_cfg.prune_threshold = 0.3;
  const core::Result sparse = similarity_at_scale_threaded(c.nranks, src, sparse_cfg);

  core::Config dense_cfg = sparse_cfg;
  dense_cfg.dense_output = true;
  const core::Result dense = similarity_at_scale_threaded(c.nranks, src, dense_cfg);

  ASSERT_TRUE(sparse.sparse_output());
  ASSERT_FALSE(dense.sparse_output());
  EXPECT_TRUE(sparse.similarity.empty()) << "sparse runs must not build the matrix";
  ASSERT_EQ(sparse.sparse_similarity.size(), n);

  // Identical candidate sets, survivor values, estimate fills — and the
  // reconstruction must therefore be bitwise-equal everywhere.
  std::int64_t survivors = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      ASSERT_EQ(sparse.candidates.test(i, j), dense.candidates.test(i, j))
          << "mask differs at (" << i << ", " << j << ")";
      EXPECT_EQ(sparse.similarity_at(i, j), dense.similarity.similarity(i, j))
          << "value differs at (" << i << ", " << j << ")";
      if (i != j && sparse.candidates.test(i, j)) ++survivors;
    }
  }
  EXPECT_EQ(sparse.sparse_similarity.survivor_count(), survivors / 2);
  const core::SimilarityMatrix reconstructed = sparse.sparse_similarity.to_dense();
  EXPECT_EQ(reconstructed.max_abs_diff(dense.similarity), 0.0);

  // â is exact on active columns and rides along for diagnostics.
  ASSERT_EQ(sparse.sparse_similarity.union_cardinalities().size(),
            static_cast<std::size_t>(n));
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, SparseAssemblyParity,
    ::testing::Values(
        SparseCase{core::Algorithm::kSerial, 1, 1, 1, core::Estimator::kMinhash},
        SparseCase{core::Algorithm::kSerial, 3, 2, 1, core::Estimator::kMinhash},
        SparseCase{core::Algorithm::kRing1D, 4, 3, 1, core::Estimator::kMinhash},
        SparseCase{core::Algorithm::kRing1D, 5, 2, 1, core::Estimator::kHll},
        SparseCase{core::Algorithm::kRing1D, 2, 2, 1, core::Estimator::kBottomK},
        SparseCase{core::Algorithm::kSumma, 4, 2, 1, core::Estimator::kMinhash},
        SparseCase{core::Algorithm::kSumma, 9, 3, 1, core::Estimator::kMinhash},
        SparseCase{core::Algorithm::kSumma, 8, 2, 2, core::Estimator::kMinhash},
        SparseCase{core::Algorithm::kSumma, 6, 2, 1, core::Estimator::kMinhash}));

TEST(SparseSimilarity, LookupSemantics) {
  // survivors: (0, 2) = 0.75; estimates: (1, 3) = 0.05.
  core::SparseSimilarity sparse(
      4, {core::SparseSimilarity::pack_pair(0, 2)}, {0.75},
      {core::SparseSimilarity::pack_pair(1, 3)}, {0.05}, {10, 20, 30, 0});

  EXPECT_DOUBLE_EQ(sparse.similarity(2, 2), 1.0);  // diagonal convention
  EXPECT_DOUBLE_EQ(sparse.similarity(3, 3), 1.0);  // even with â = 0
  EXPECT_DOUBLE_EQ(sparse.similarity(0, 2), 0.75);
  EXPECT_DOUBLE_EQ(sparse.similarity(2, 0), 0.75);  // symmetric lookup
  EXPECT_DOUBLE_EQ(sparse.similarity(1, 3), 0.05);  // pruned estimate
  EXPECT_DOUBLE_EQ(sparse.similarity(0, 1), 0.0);   // never scored
  EXPECT_TRUE(sparse.is_survivor(2, 0));
  EXPECT_FALSE(sparse.is_survivor(1, 3));
  EXPECT_FALSE(sparse.is_survivor(1, 1));
  EXPECT_DOUBLE_EQ(sparse.distance(0, 2), 0.25);

  const core::SimilarityMatrix dense = sparse.to_dense();
  for (std::int64_t i = 0; i < 4; ++i) {
    for (std::int64_t j = 0; j < 4; ++j) {
      EXPECT_EQ(dense.similarity(i, j), sparse.similarity(i, j)) << i << "," << j;
    }
  }

  // Malformed inputs must throw, not mislook.
  EXPECT_THROW((void)core::SparseSimilarity::pack_pair(2, 2), std::invalid_argument);
  EXPECT_THROW((void)core::SparseSimilarity::pack_pair(3, 1), std::invalid_argument);
  EXPECT_THROW(core::SparseSimilarity(4, {core::SparseSimilarity::pack_pair(0, 2)}, {},
                                      {}, {}, {}),
               std::invalid_argument);  // keys/values mismatch
  EXPECT_THROW(core::SparseSimilarity(2, {core::SparseSimilarity::pack_pair(0, 3)},
                                      {0.5}, {}, {}, {}),
               std::invalid_argument);  // pair beyond n
  EXPECT_THROW(core::SparseSimilarity(4,
                                      {core::SparseSimilarity::pack_pair(0, 2),
                                       core::SparseSimilarity::pack_pair(0, 1)},
                                      {0.5, 0.5}, {}, {}, {}),
               std::invalid_argument);  // unsorted keys
  EXPECT_THROW(core::SparseSimilarity(4, {}, {}, {}, {}, {1, 2}),
               std::invalid_argument);  // â length
  EXPECT_THROW(core::SparseSimilarity(4, {core::SparseSimilarity::pack_pair(1, 3)},
                                      {0.8}, {core::SparseSimilarity::pack_pair(1, 3)},
                                      {0.1}, {}),
               std::invalid_argument);  // pair in both maps (corrupt SASP)
}

TEST(SparseSimilarity, NoQuadraticStructuresAtScale) {
  // n where the dense matrix would be n²·8 = 128 TiB: any quadratic
  // allocation in construction or lookup would abort the test run.
  const std::int64_t n = std::int64_t{1} << 22;
  std::vector<std::uint64_t> keys = {core::SparseSimilarity::pack_pair(7, n - 3),
                                     core::SparseSimilarity::pack_pair(n - 5, n - 2)};
  std::vector<double> values = {0.5, 0.25};
  const core::SparseSimilarity sparse(n, std::move(keys), std::move(values), {}, {},
                                      {});
  EXPECT_EQ(sparse.size(), n);
  EXPECT_DOUBLE_EQ(sparse.similarity(n - 3, 7), 0.5);
  EXPECT_DOUBLE_EQ(sparse.similarity(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(sparse.similarity(n - 1, n - 1), 1.0);
  // Resident bytes are survivor-proportional: far below a single dense row.
  EXPECT_LT(sparse.resident_bytes(), static_cast<std::uint64_t>(n));
}

TEST(SparseSimilarity, DriverOutputStaysSurvivorProportional) {
  // Driver-level, in the regime this PR targets: many small families,
  // n past lsh_min_samples so the LSH candidate pass engages and both
  // survivors and scored estimates are O(families), not O(n²). The
  // rank-0 output must then stay an order of magnitude below the dense
  // matrix footprint (n²·8 bytes); the margin widens quadratically with
  // n while the output grows linearly.
  const int families = 80;
  Rng rng(3);
  std::vector<std::vector<std::int64_t>> samples;
  const std::int64_t m = 4000;
  for (int f = 0; f < families; ++f) {
    std::vector<std::int64_t> base;
    for (std::int64_t v = 0; v < m; ++v) {
      if (rng.bernoulli(0.03)) base.push_back(v);
    }
    for (int member = 0; member < 2; ++member) {
      std::vector<std::int64_t> s;
      for (std::int64_t v : base) {
        if (!rng.bernoulli(0.05)) s.push_back(v);
      }
      samples.push_back(std::move(s));
    }
  }
  const core::VectorSampleSource src(m, std::move(samples));
  const std::int64_t n = src.sample_count();

  core::Config cfg;
  cfg.algorithm = core::Algorithm::kRing1D;
  cfg.batch_count = 2;
  cfg.estimator = core::Estimator::kHybrid;
  cfg.prune_threshold = 0.3;
  const core::Result result = similarity_at_scale_threaded(4, src, cfg);

  ASSERT_TRUE(result.sparse_output());
  EXPECT_TRUE(result.similarity.empty());
  const std::uint64_t dense_bytes =
      static_cast<std::uint64_t>(n * n) * sizeof(double);
  EXPECT_LT(result.sparse_similarity.resident_bytes(), dense_bytes / 10)
      << "rank-0 output must be survivor-proportional, not quadratic";
  // Within-family pairs survive; the quadratic cross-family mass is gone.
  EXPECT_GE(result.sparse_similarity.survivor_count(), families);
  EXPECT_LT(result.sparse_similarity.survivor_count(), 4 * families);
}

TEST(SparseSimilarity, MatrixIoRoundTrip) {
  const auto src = clustered_source(500, 4, 17);

  core::Config cfg;
  cfg.algorithm = core::Algorithm::kRing1D;
  cfg.estimator = core::Estimator::kHybrid;
  cfg.prune_threshold = 0.3;
  const core::Result result = similarity_at_scale_threaded(2, src, cfg);
  ASSERT_TRUE(result.sparse_output());
  const core::SparseSimilarity& sparse = result.sparse_similarity;

  std::vector<std::string> names;
  for (std::int64_t i = 0; i < result.n; ++i) names.push_back("s" + std::to_string(i));

  std::stringstream stream;
  core::write_sparse_similarity_binary(stream, names, sparse);
  const core::NamedSparseSimilarity loaded =
      core::read_sparse_similarity_binary(stream);

  EXPECT_EQ(loaded.names, names);
  EXPECT_EQ(loaded.sparse.size(), sparse.size());
  EXPECT_EQ(loaded.sparse.survivor_keys(), sparse.survivor_keys());
  EXPECT_EQ(loaded.sparse.survivor_values(), sparse.survivor_values());
  EXPECT_EQ(loaded.sparse.estimate_keys(), sparse.estimate_keys());
  EXPECT_EQ(loaded.sparse.estimate_values(), sparse.estimate_values());
  EXPECT_EQ(loaded.sparse.union_cardinalities(), sparse.union_cardinalities());
  EXPECT_EQ(loaded.sparse.to_dense().max_abs_diff(sparse.to_dense()), 0.0);

  // File round-trip too.
  const std::filesystem::path path =
      std::filesystem::path(::testing::TempDir()) / "sas_sparse_roundtrip.sasp";
  core::write_sparse_similarity_binary_file(path.string(), names, sparse);
  const auto from_file = core::read_sparse_similarity_binary_file(path.string());
  EXPECT_EQ(from_file.sparse.survivor_keys(), sparse.survivor_keys());

  // A dense-magic file must be rejected by the sparse reader and vice
  // versa; corrupted key order must throw through the constructor.
  std::stringstream dense_stream;
  core::write_similarity_binary(dense_stream, {"a"},
                                core::SimilarityMatrix(1, {1.0}));
  EXPECT_THROW((void)core::read_sparse_similarity_binary(dense_stream),
               std::runtime_error);
  std::stringstream sparse_stream;
  core::write_sparse_similarity_binary(sparse_stream, names, sparse);
  EXPECT_THROW((void)core::read_similarity_binary(sparse_stream), std::runtime_error);
}

TEST(SparseSimilarity, AnalysisOverloadsWalkSurvivors) {
  core::SparseSimilarity sparse(
      5,
      {core::SparseSimilarity::pack_pair(0, 1), core::SparseSimilarity::pack_pair(0, 4),
       core::SparseSimilarity::pack_pair(2, 3)},
      {0.9, 0.4, 0.7}, {core::SparseSimilarity::pack_pair(1, 2)}, {0.1}, {});

  const auto all = analysis::candidate_pairs(sparse);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].similarity, 0.9);
  EXPECT_EQ(all[1].similarity, 0.7);
  EXPECT_EQ(all[2].similarity, 0.4);

  const auto thresholded = analysis::candidate_pairs(sparse, 0.5);
  ASSERT_EQ(thresholded.size(), 2u);

  // top_k spans survivors first, then scored-but-pruned estimates.
  const auto top = analysis::top_k_pairs(sparse, 4);
  ASSERT_EQ(top.size(), 4u);
  EXPECT_EQ(top[3].similarity, 0.1);
  EXPECT_EQ(top[3].a, 1);
  EXPECT_EQ(top[3].b, 2);
}

TEST(CandidateMaskWalk, ForEachPairInMatchesReference) {
  for (const bool use_sparse : {false, true}) {
    const std::int64_t n = 130;
    Rng rng(use_sparse ? 5u : 6u);
    distmat::PairMask dense(n);
    std::vector<std::uint64_t> upper;
    for (std::int64_t i = 0; i < n; ++i) dense.set(i, i);
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = i + 1; j < n; ++j) {
        if (!rng.bernoulli(0.05)) continue;
        dense.set(i, j);
        dense.set(j, i);
        upper.push_back(distmat::SparsePairMask::pack_pair(i, j));
      }
    }
    const distmat::CandidateMask mask =
        use_sparse ? distmat::CandidateMask(distmat::SparsePairMask(n, upper))
                   : distmat::CandidateMask(std::move(dense));

    Rng range_rng(77);
    for (int trial = 0; trial < 50; ++trial) {
      const auto r0 = static_cast<std::int64_t>(range_rng.uniform(static_cast<std::uint64_t>(n)));
      const auto r1 = static_cast<std::int64_t>(range_rng.uniform(static_cast<std::uint64_t>(n)));
      const auto c0 = static_cast<std::int64_t>(range_rng.uniform(static_cast<std::uint64_t>(n)));
      const auto c1 = static_cast<std::int64_t>(range_rng.uniform(static_cast<std::uint64_t>(n)));
      const distmat::BlockRange rows{std::min(r0, r1), std::max(r0, r1) + 1};
      const distmat::BlockRange cols{std::min(c0, c1), std::max(c0, c1) + 1};

      std::vector<std::pair<std::int64_t, std::int64_t>> walked;
      mask.for_each_pair_in(rows, cols,
                            [&](std::int64_t i, std::int64_t j) { walked.emplace_back(i, j); });
      std::vector<std::pair<std::int64_t, std::int64_t>> expected;
      for (std::int64_t i = rows.begin; i < rows.end; ++i) {
        for (std::int64_t j = cols.begin; j < cols.end; ++j) {
          if (j > i && mask.test(i, j)) expected.emplace_back(i, j);
        }
      }
      EXPECT_EQ(walked, expected)
          << (use_sparse ? "sparse" : "dense") << " rows [" << rows.begin << ","
          << rows.end << ") cols [" << cols.begin << "," << cols.end << ")";
    }
  }
}

}  // namespace
}  // namespace sas
