// numa.hpp — minimal NUMA topology detection and thread placement.
//
// The SpGEMM multiply stage shards its accumulator panel over
// CsrAtaOptions::threads workers; on multi-socket hosts the win from that
// sharding evaporates if workers migrate across sockets or if the panel's
// pages all live on the socket that happened to zero them. This header
// gives the kernel just enough mechanism to fix both:
//
//   * topology()        — nodes and their CPU lists, parsed once from
//                         /sys/devices/system/node/node*/cpulist;
//   * pin_to_node()     — bind the calling thread to one node's CPUs;
//   * node_for_worker() — the block assignment of workers to nodes that
//                         the kernel and the first-touch pass share;
//   * first_touch_partitioned() — re-fault an accumulator panel so each
//                         page lands on the node of the worker that will
//                         write it (see the .cpp for the MADV_DONTNEED
//                         trick that makes this possible post-allocation).
//
// Everything degrades gracefully: on single-node hosts, non-Linux builds,
// or when sysfs/affinity calls fail, the helpers report one node and
// become no-ops — callers never need a platform #ifdef. No libnuma; the
// implementation is sysfs + pthread_setaffinity_np only.
#pragma once

#include <cstddef>
#include <vector>

namespace sas::numa {

struct Node {
  int id = 0;
  std::vector<int> cpus;
};

struct Topology {
  std::vector<Node> nodes;

  [[nodiscard]] int node_count() const noexcept {
    return static_cast<int>(nodes.size());
  }
  [[nodiscard]] bool multi_node() const noexcept { return nodes.size() > 1; }
};

/// Host topology, detected once and memoized (thread-safe). Always has at
/// least one node; the fallback node covers every online CPU.
[[nodiscard]] const Topology& topology();

/// Convenience: topology().node_count().
[[nodiscard]] int node_count();

/// Block assignment of `workers` workers to the detected nodes: worker w
/// goes to node floor(w * nodes / workers), so consecutive workers share
/// a socket (they also share accumulator panel ranges — see
/// first_touch_partitioned). Returns 0 on single-node hosts.
[[nodiscard]] int node_for_worker(int worker, int workers);

/// Pin the calling thread to the CPUs of `node`. Returns false (and
/// leaves affinity untouched) when the node is out of range, the host is
/// single-node, or the platform call fails — callers treat false as
/// "placement unavailable", not an error.
bool pin_to_node(int node);

/// First-touch an accumulator panel for a partitioned write pattern:
/// worker w will own the contiguous byte slice [w*bytes/workers,
/// (w+1)*bytes/workers), so fault each slice's pages from a thread pinned
/// to node_for_worker(w, workers). The buffer must be anonymous zeroed
/// memory whose current contents are disposable as zeros (a freshly
/// value-initialized std::vector qualifies); contents remain all-zero on
/// return. No-op on single-node hosts, non-Linux builds, or buffers
/// smaller than a few pages.
void first_touch_partitioned(void* data, std::size_t bytes, int workers);

}  // namespace sas::numa
