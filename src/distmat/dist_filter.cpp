#include "distmat/dist_filter.hpp"

#include <algorithm>
#include <bit>
#include <span>
#include <stdexcept>

#include "bsp/tags.hpp"
#include "distmat/block.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace sas::distmat {

namespace {

/// Mode words of the compressed set encoding.
constexpr std::uint64_t kEncodingRle = 0;
constexpr std::uint64_t kEncodingList = 1;
constexpr std::uint64_t kEncodingDelta = 2;

constexpr std::uint64_t kMax32 = 0xffffffffULL;

/// Delta-varint body: LEB128-encoded gaps (first gap from −1, so every
/// gap ≥ 1 and the byte 0x00 never appears — word padding zeroes act as
/// the stream terminator), packed little-endian into words. Hypersparse
/// filters over huge row spaces (genome k-mer universes) land here:
/// ~⌈log₁₂₈ gap⌉ bytes per index instead of 8.
std::vector<std::uint64_t> delta_body(std::span<const std::int64_t> sorted) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(sorted.size() * 4);
  std::int64_t prev = -1;
  for (std::int64_t v : sorted) {
    auto gap = static_cast<std::uint64_t>(v - prev);
    prev = v;
    while (gap >= 0x80) {
      bytes.push_back(static_cast<std::uint8_t>((gap & 0x7f) | 0x80));
      gap >>= 7;
    }
    bytes.push_back(static_cast<std::uint8_t>(gap));
  }
  std::vector<std::uint64_t> words((bytes.size() + 7) / 8, 0);
  for (std::size_t b = 0; b < bytes.size(); ++b) {
    words[b >> 3] |= static_cast<std::uint64_t>(bytes[b]) << ((b & 7) * 8);
  }
  return words;
}

std::vector<std::int64_t> decode_delta(std::span<const std::uint64_t> words,
                                       std::int64_t extent) {
  std::vector<std::int64_t> out;
  std::int64_t prev = -1;
  std::uint64_t gap = 0;
  int shift = 0;
  for (std::size_t b = 0; b < words.size() * 8; ++b) {
    const auto byte =
        static_cast<std::uint8_t>(words[b >> 3] >> ((b & 7) * 8));
    if (byte == 0 && shift == 0) break;  // padding terminator (gaps >= 1)
    gap |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) != 0) {
      shift += 7;
      if (shift > 63) {
        throw error::CorruptInput("decode_index_set: runaway varint");
      }
      continue;
    }
    // Bound the gap BEFORE forming the index: a hostile varint can carry
    // bit 63 (or silently wrap past it), and prev + gap in signed space
    // would go negative / overflow. extent − 1 − prev is the largest
    // admissible gap and is non-negative by the loop invariant prev <
    // extent, so the unsigned comparison is exact.
    if (gap == 0 || gap > static_cast<std::uint64_t>(extent - 1 - prev)) {
      throw error::CorruptInput("decode_index_set: malformed delta stream");
    }
    const std::int64_t idx = prev + static_cast<std::int64_t>(gap);
    out.push_back(idx);
    prev = idx;
    gap = 0;
    shift = 0;
  }
  if (shift != 0) {
    throw error::CorruptInput("decode_index_set: truncated varint");
  }
  return out;
}

/// Word-RLE bitmap body: segments of [header(skip:32 | literals:32),
/// literal words...]. Segments are maximal runs of bitmap words whose
/// interior zero-word gaps are at most one word (inlining one zero word
/// costs the same as a fresh header and keeps segments long).
std::vector<std::uint64_t> rle_body(std::span<const std::int64_t> sorted) {
  std::vector<std::uint64_t> body;
  std::size_t s = 0;
  std::int64_t pos = 0;  // bitmap word position after the previous segment
  while (s < sorted.size()) {
    // One segment: collect literal words while gaps stay <= 1 zero word.
    const std::int64_t first_word = sorted[s] >> 6;
    std::vector<std::uint64_t> literals;
    std::int64_t word = first_word;
    std::uint64_t bits = 0;
    while (s < sorted.size()) {
      const std::int64_t w = sorted[s] >> 6;
      if (w == word) {
        bits |= std::uint64_t{1} << (sorted[s] & 63);
        ++s;
        continue;
      }
      if (w - word > 2) break;  // gap of >= 2 zero words: new segment
      literals.push_back(bits);
      for (std::int64_t z = word + 1; z < w; ++z) literals.push_back(0);
      word = w;
      bits = 0;
    }
    literals.push_back(bits);

    std::int64_t skip = first_word - pos;
    while (skip > static_cast<std::int64_t>(kMax32)) {
      body.push_back(kMax32 << 32);  // skip-only header
      skip -= static_cast<std::int64_t>(kMax32);
    }
    // Literal counts can exceed 32 bits only past 2^38 rows per segment;
    // split defensively anyway.
    std::size_t emitted = 0;
    while (emitted < literals.size()) {
      const std::size_t chunk =
          std::min<std::size_t>(literals.size() - emitted, kMax32);
      body.push_back((static_cast<std::uint64_t>(skip) << 32) |
                     static_cast<std::uint64_t>(chunk));
      body.insert(body.end(), literals.begin() + static_cast<std::ptrdiff_t>(emitted),
                  literals.begin() + static_cast<std::ptrdiff_t>(emitted + chunk));
      emitted += chunk;
      skip = 0;
    }
    pos = word + 1;
  }
  return body;
}

}  // namespace

std::vector<std::uint64_t> encode_index_set(std::span<const std::int64_t> sorted,
                                            std::int64_t extent) {
  if (sorted.empty()) return {};
  for (std::size_t s = 0; s < sorted.size(); ++s) {
    if (sorted[s] < 0 || sorted[s] >= extent ||
        (s > 0 && sorted[s] <= sorted[s - 1])) {
      throw std::invalid_argument("encode_index_set: need sorted unique in [0, extent)");
    }
  }
  const std::vector<std::uint64_t> rle = rle_body(sorted);
  const std::vector<std::uint64_t> delta = delta_body(sorted);
  const std::size_t best = std::min({rle.size(), delta.size(), sorted.size()});
  std::vector<std::uint64_t> out;
  out.reserve(1 + best);
  if (best == rle.size()) {
    out.push_back(kEncodingRle);
    out.insert(out.end(), rle.begin(), rle.end());
  } else if (best == delta.size()) {
    out.push_back(kEncodingDelta);
    out.insert(out.end(), delta.begin(), delta.end());
  } else {
    out.push_back(kEncodingList);
    for (std::int64_t idx : sorted) out.push_back(static_cast<std::uint64_t>(idx));
  }
  return out;
}

std::vector<std::int64_t> decode_index_set(std::span<const std::uint64_t> words,
                                           std::int64_t extent) {
  std::vector<std::int64_t> out;
  if (words.empty()) return out;
  if (words[0] == kEncodingList) {
    out.reserve(words.size() - 1);
    for (std::size_t w = 1; w < words.size(); ++w) {
      const auto idx = static_cast<std::int64_t>(words[w]);
      if (idx < 0 || idx >= extent || (!out.empty() && idx <= out.back())) {
        throw error::CorruptInput("decode_index_set: malformed raw list");
      }
      out.push_back(idx);
    }
    return out;
  }
  if (words[0] == kEncodingDelta) {
    return decode_delta(words.subspan(1), extent);
  }
  if (words[0] != kEncodingRle) {
    throw error::CorruptInput("decode_index_set: unknown encoding mode");
  }
  const std::int64_t word_extent = (extent + 63) / 64;
  std::int64_t pos = 0;  // current bitmap word position
  std::size_t w = 1;
  while (w < words.size()) {
    const std::int64_t skip = static_cast<std::int64_t>(words[w] >> 32);
    const std::int64_t literals = static_cast<std::int64_t>(words[w] & kMax32);
    ++w;
    if (w + static_cast<std::size_t>(literals) > words.size()) {
      throw error::CorruptInput("decode_index_set: truncated RLE segment");
    }
    pos += skip;
    // Bound pos before forming pos * 64: hostile skip headers chained
    // across segments could otherwise push it past the signed range.
    if (pos > word_extent) {
      throw error::CorruptInput("decode_index_set: RLE skip beyond extent");
    }
    for (std::int64_t l = 0; l < literals; ++l, ++w, ++pos) {
      if (pos >= word_extent) {
        if (words[w] != 0) {
          throw error::CorruptInput("decode_index_set: index beyond extent");
        }
        continue;  // zero padding words past the extent carry no indices
      }
      std::uint64_t bits = words[w];
      while (bits != 0) {
        const std::int64_t idx = pos * 64 + std::countr_zero(bits);
        bits &= bits - 1;
        if (idx >= extent) {
          throw error::CorruptInput("decode_index_set: index beyond extent");
        }
        out.push_back(idx);
      }
    }
  }
  return out;
}

std::vector<std::int64_t> distributed_index_union(bsp::Comm& comm,
                                                  std::span<const std::int64_t> mine,
                                                  std::int64_t universe, bool compress) {
  const int p = comm.size();
  std::vector<std::vector<std::int64_t>> outgoing(static_cast<std::size_t>(p));
  for (std::int64_t idx : mine) {
    outgoing[static_cast<std::size_t>(block_owner(universe, p, idx))].push_back(idx);
  }

  std::vector<std::int64_t> owned;
  if (compress) {
    // Compressed contributions: dedupe locally, then ship each block in
    // the set encoding relative to its owner's range.
    std::vector<std::vector<std::uint64_t>> packed(static_cast<std::size_t>(p));
    for (int q = 0; q < p; ++q) {
      auto& block = outgoing[static_cast<std::size_t>(q)];
      std::sort(block.begin(), block.end());
      block.erase(std::unique(block.begin(), block.end()), block.end());
      const BlockRange range = block_range(universe, p, q);
      for (std::int64_t& idx : block) idx -= range.begin;
      packed[static_cast<std::size_t>(q)] =
          encode_index_set(std::span<const std::int64_t>(block), range.size());
    }
    const auto incoming = comm.alltoall_v(packed);
    const BlockRange my_range = block_range(universe, p, comm.rank());
    for (const auto& block : incoming) {
      const auto decoded =
          decode_index_set(std::span<const std::uint64_t>(block), my_range.size());
      owned.insert(owned.end(), decoded.begin(), decoded.end());
    }
    std::sort(owned.begin(), owned.end());
    owned.erase(std::unique(owned.begin(), owned.end()), owned.end());

    // Compressed replication: each owner's set travels once per hop of
    // the ring allgather in the same encoding — the O(p · |union|) raw
    // word cost becomes O(p · encoded), ~1 bit per kept row on dense
    // batches.
    const auto gathered = comm.allgather_v<std::uint64_t>(
        std::span<const std::uint64_t>(
            encode_index_set(std::span<const std::int64_t>(owned), my_range.size())));
    std::vector<std::int64_t> result;
    for (int q = 0; q < p; ++q) {
      const BlockRange range = block_range(universe, p, q);
      const auto decoded = decode_index_set(
          std::span<const std::uint64_t>(gathered[static_cast<std::size_t>(q)]),
          range.size());
      for (std::int64_t idx : decoded) result.push_back(idx + range.begin);
    }
    return result;
  }

  std::vector<std::vector<std::int64_t>> incoming = comm.alltoall_v(outgoing);
  // Owner-side dedup: the (max,×) accumulation of the paper's write().
  for (auto& block : incoming) {
    owned.insert(owned.end(), block.begin(), block.end());
  }
  std::sort(owned.begin(), owned.end());
  owned.erase(std::unique(owned.begin(), owned.end()), owned.end());

  // Owners hold disjoint, increasing ranges (block partition), so the
  // rank-ordered concatenation of an allgather is already sorted.
  return comm.allgather<std::int64_t>(owned);
}

void allreduce_pair_mask(bsp::Comm& comm, PairMask& mask) {
  comm.allreduce(mask.words(),
                 [](std::uint64_t a, std::uint64_t b) { return a | b; });
  mask.symmetrize();
}

namespace {

/// User-tag block of the hierarchical pair-union exchange (bsp/tags.hpp
/// is the central registry; spgemm owns 200/300 for its schedules).
constexpr int kTagPairUnionUp = bsp::tags::kPairUnionUp;
constexpr int kTagPairUnionDown = bsp::tags::kPairUnionDown;
constexpr int kTagPairUnionLeader = bsp::tags::kPairUnionLeader;

void sort_unique(std::vector<std::uint64_t>& keys) {
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
}

/// Two-tier pair union: members hand their deduped key lists to the node
/// leader, which dedupes the NODE union before anything crosses the
/// inter-node tier — duplicated candidates between ranks of one node
/// (common: neighbouring ranks score overlapping pair blocks) are
/// eliminated from the expensive tier entirely. Leaders then exchange
/// node unions directly and fan the global union back out. Set union is
/// order-insensitive, so the result is bitwise identical to the flat
/// allgather path.
std::vector<std::uint64_t> hier_pair_union(bsp::Comm& comm,
                                           std::vector<std::uint64_t> mine) {
  // Booked as allgather drift: structurally this is the hierarchical
  // counterpart of the flat path's allgather_v.
  const obs::CollectiveScope obs_scope(obs::Primitive::kAllgather, comm.counters());
  const auto members = comm.node_ranks(comm.my_node());
  const int leader = members.front();
  if (comm.rank() != leader) {
    comm.send<std::uint64_t>(leader, kTagPairUnionUp,
                             std::span<const std::uint64_t>(mine));
    return comm.recv<std::uint64_t>(leader, kTagPairUnionDown);
  }
  for (std::size_t i = 1; i < members.size(); ++i) {
    const auto block = comm.recv<std::uint64_t>(members[i], kTagPairUnionUp);
    mine.insert(mine.end(), block.begin(), block.end());
  }
  sort_unique(mine);  // node union, deduped before the inter tier
  const int nn = comm.node_count();
  for (int q = 0; q < nn; ++q) {
    if (q == comm.my_node()) continue;
    comm.send<std::uint64_t>(comm.node_ranks(q).front(), kTagPairUnionLeader,
                             std::span<const std::uint64_t>(mine));
  }
  std::vector<std::uint64_t> all = std::move(mine);
  for (int q = 0; q < nn; ++q) {
    if (q == comm.my_node()) continue;
    const auto block =
        comm.recv<std::uint64_t>(comm.node_ranks(q).front(), kTagPairUnionLeader);
    all.insert(all.end(), block.begin(), block.end());
  }
  sort_unique(all);
  for (std::size_t i = 1; i < members.size(); ++i) {
    comm.send<std::uint64_t>(members[i], kTagPairUnionDown,
                             std::span<const std::uint64_t>(all));
  }
  return all;
}

}  // namespace

std::vector<std::uint64_t> allreduce_pair_union(bsp::Comm& comm,
                                                std::vector<std::uint64_t> mine) {
  std::sort(mine.begin(), mine.end());
  mine.erase(std::unique(mine.begin(), mine.end()), mine.end());
  if (comm.hierarchical()) return hier_pair_union(comm, std::move(mine));
  const auto blocks = comm.allgather_v<std::uint64_t>(
      std::span<const std::uint64_t>(mine));
  // Rank lists are each sorted; a concatenate + sort is O(total log p)-ish
  // and deterministic — candidate unions stay far below the n² regime
  // where a k-way merge would matter.
  std::vector<std::uint64_t> all;
  std::size_t total = 0;
  for (const auto& block : blocks) total += block.size();
  all.reserve(total);
  for (const auto& block : blocks) all.insert(all.end(), block.begin(), block.end());
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

std::int64_t compact_row_id(std::span<const std::int64_t> sorted_filter,
                            std::int64_t global_row) {
  const auto it = std::lower_bound(sorted_filter.begin(), sorted_filter.end(), global_row);
  if (it == sorted_filter.end() || *it != global_row) {
    throw std::logic_error("compact_row_id: row not present in filter");
  }
  return static_cast<std::int64_t>(it - sorted_filter.begin());
}

}  // namespace sas::distmat
