// spgemm.hpp — the popcount-semiring AᵀA product (paper Eq. 7 + §III-C).
//
// Computes B-contributions s⁽ˡ⁾ᵢⱼ = Σₖ popcount(âₖᵢ ∧ âₖⱼ) from bit-packed
// sparse blocks, in four interchangeable parallel forms:
//
//   serial_ata             — single-block reference (tests, baselines)
//   ring_ata_accumulate    — 1D column-panel ring: per-rank comm Θ(z)
//   summa_ata_accumulate   — 2D/2.5D SUMMA on the √(p/c)×√(p/c)×c grid:
//                            per-rank comm Θ(z/√(cp) + cn²/p)  [paper bound]
//
// All variants produce bit-identical results (enforced by tests); the
// communication difference is the paper's headline claim and is measured
// by bench/comm_model_validation through the bsp cost counters.
#pragma once

#include <cstdint>
#include <span>

#include "bsp/comm.hpp"
#include "distmat/dense_block.hpp"
#include "distmat/proc_grid.hpp"
#include "distmat/sparse_block.hpp"

namespace sas::distmat {

/// Innermost kernel: for every word-row present in both L and N, add
/// popcount(L.value ∧ N.value) into out at (L.col + l_col_base,
/// N.col + n_col_base) (local coordinates of `out`). Both inputs must be
/// sorted by (row, col) and indexed against the same row space.
/// Arithmetic work is recorded into `counters` (γ term) when non-null.
void popcount_join_accumulate(std::span<const Triplet<std::uint64_t>> L,
                              std::span<const Triplet<std::uint64_t>> N,
                              std::int64_t l_col_base, std::int64_t n_col_base,
                              DenseBlock<std::int64_t>& out,
                              bsp::CostCounters* counters);

/// Reference: full n×n dense AᵀA of one local block (rows = word rows).
[[nodiscard]] DenseBlock<std::int64_t> serial_ata(const SparseBlock& block);

/// 1D ring variant. Rank r owns the column panel for block_range(n, p, r)
/// (global word-row ids) and the dense output row-panel
/// rows = its column chunk × cols = [0, n). Panels circulate p−1 times.
void ring_ata_accumulate(bsp::Comm& comm, std::int64_t n, const SparseBlock& my_panel,
                         DenseBlock<std::int64_t>& b_panel);

/// 2D/2.5D SUMMA variant over `grid`. Rank (ℓ, i, j) holds the R block of
/// word-row chunk q = ℓ·s + i (chunk-local row ids) × column chunk j.
/// Per batch, each layer computes its partial sum in s stages
/// (transpose + row broadcast + column broadcast per stage) and the layer
/// partials are reduced onto layer 0, accumulating into `b_accum`
/// (meaningful on layer-0 ranks). Collective over active grid ranks;
/// inactive ranks must not call. `b_accum` must cover column chunk
/// grid_row × column chunk grid_col of the n×n output.
void summa_ata_accumulate(ProcGrid& grid, const SparseBlock& my_block,
                          DenseBlock<std::int64_t>& b_accum);

/// â contribution: acc[col_offset + e.col] += popcount(e.value) for every
/// entry of `block`. `acc` is a full-length replicated accumulator; ranks
/// sum disjoint row chunks so a final allreduce(+) yields exact â.
void accumulate_column_popcounts(const SparseBlock& block, std::int64_t col_offset,
                                 std::span<std::int64_t> acc);

}  // namespace sas::distmat
