file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_sparsity.dir/bench/fig3_sparsity.cpp.o"
  "CMakeFiles/bench_fig3_sparsity.dir/bench/fig3_sparsity.cpp.o.d"
  "bench_fig3_sparsity"
  "bench_fig3_sparsity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_sparsity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
