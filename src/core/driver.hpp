// driver.hpp — the SimilarityAtScale algorithm (paper Listings 1–2) as a
// staged, composable pipeline.
//
// Every estimator is a composition of five stages over a bsp communicator:
//
//   ingest    — read each rank's cyclic share of one row batch A⁽ˡ⁾
//               (packing.hpp read_batch; purely local)
//   pack /    — zero-row filter + bitmask compression of the reads
//   sketch      (pack_batch, Eq. 5–7) and/or streaming sketch
//               construction from the SAME reads (sketch/exchange.hpp
//               StreamingSketcher — the hybrid reads inputs once)
//   exchange  — move data where it multiplies: triplet redistribution
//               onto the grid, ring/SUMMA panel movement, sketch-panel
//               rotation, or the hybrid's mask-targeted alltoall
//   multiply  — B += Â⁽ˡ⁾ᵀ Â⁽ˡ⁾ under the popcount semiring (spgemm.hpp,
//               Eq. 7) and â += column popcounts (Eq. 4), or wire-level
//               Jaccard estimation for sketch estimators
//   assemble  — C = â1ᵀ + 1âᵀ − B;  S = B ⊘ C;  D = 1 − S (Eq. 2). With
//               no mask (exact / sketch estimators) the owning ranks'
//               dense blocks are gathered whole on world rank 0; with a
//               candidate mask (hybrid, unless Config::dense_output)
//               each owning rank finalizes ONLY its masked cells and
//               ships (i, j, value) survivor triplets, assembled into a
//               SparseSimilarity — bytes and rank-0 memory O(survivors),
//               not O(n²)
//
// The estimators compose the stages differently:
//
//   kExact             for each batch: ingest → pack → exchange →
//                      multiply; then assemble.
//   kHll/kMinhash/     ingest+sketch fused per owned sample → exchange
//   kBottomK           (panel rotation) → multiply (estimation) →
//                      assemble.
//   kHybrid            for each batch: ingest → pack+sketch (one read);
//                      candidate pass → replicated candidate mask (Ĵ ≥
//                      prune_threshold − slack; all-pairs scoring or LSH
//                      banding per Config::candidate_mode, dense or
//                      sparse per the pair_mask.hpp crossover); then per
//                      cached batch: drop columns with no surviving
//                      pair → targeted exchange → multiply with tile-
//                      level mask skipping; assemble rescores surviving
//                      pairs BITWISE-IDENTICALLY to kExact into a
//                      survivor-sparse result (pair-keyed sketch
//                      estimates fill the pruned entries; the dense
//                      matrix only under Config::dense_output).
//
// Per-stage time and traffic land in PipelineStats (fed by the bsp cost
// counters); per-batch traffic lands in BatchStats. Both are rank-0
// views consumed by the benches.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "bsp/comm.hpp"
#include "core/config.hpp"
#include "core/sample_source.hpp"
#include "core/similarity_matrix.hpp"
#include "distmat/pair_mask.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace sas::core {

/// Pipeline stages (see the diagram above).
enum class Stage : int {
  kIngest = 0,  ///< batch reads (values_in_range loops)
  kPackSketch,  ///< zero-row filter + bitmask packing + sketch building
  kExchange,    ///< redistribution, panel movement, mask union
  kMultiply,    ///< popcount SpGEMM / wire-level estimation
  kAssemble,    ///< finalize S = B ⊘ C, gather to root, hybrid fill
};
inline constexpr std::size_t kStageCount = 5;

[[nodiscard]] const char* stage_name(Stage stage);

/// One stage's measured cost. Seconds are the maximum over ranks (the BSP
/// critical path); traffic is summed over ranks (what the network moved).
struct StageStats {
  double seconds = 0.0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t messages = 0;
};

/// Per-stage instrumentation of one driver run (rank-0 view).
struct PipelineStats {
  std::array<StageStats, kStageCount> stages{};

  [[nodiscard]] StageStats& operator[](Stage s) {
    return stages[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] const StageStats& operator[](Stage s) const {
    return stages[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] std::uint64_t total_bytes_sent() const {
    std::uint64_t total = 0;
    for (const StageStats& s : stages) total += s.bytes_sent;
    return total;
  }
  [[nodiscard]] std::uint64_t total_bytes_received() const {
    std::uint64_t total = 0;
    for (const StageStats& s : stages) total += s.bytes_received;
    return total;
  }
};

/// Per-rank stage recorder. Wrap each stage in a scope(); the destructor
/// books wall time and the delta of this rank's bsp cost counters. Time
/// and traffic may be attributed to different stages — the ring multiply,
/// for instance, is compute time (kMultiply) whose only bytes are
/// rotation hops (kExchange). reduce_to_root is collective and returns
/// the cross-rank aggregate on rank 0.
class StageRecorder {
 public:
  explicit StageRecorder(bsp::CostCounters& counters) : counters_(&counters) {}

  class Scope {
   public:
    Scope(StageRecorder& recorder, Stage time_stage, Stage byte_stage)
        : recorder_(recorder),
          time_stage_(time_stage),
          byte_stage_(byte_stage),
          span_(stage_name(time_stage), "stage", recorder.counters_),
          context_(std::string("stage=") + stage_name(time_stage)),
          bytes_sent_(recorder.counters_->bytes_sent),
          bytes_received_(recorder.counters_->bytes_received),
          messages_(recorder.counters_->messages_sent) {}
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() {
      recorder_.local_[time_stage_].seconds += timer_.seconds();
      StageStats& bytes = recorder_.local_[byte_stage_];
      bytes.bytes_sent += recorder_.counters_->bytes_sent - bytes_sent_;
      bytes.bytes_received += recorder_.counters_->bytes_received - bytes_received_;
      bytes.messages += recorder_.counters_->messages_sent - messages_;
    }

   private:
    StageRecorder& recorder_;
    Stage time_stage_;
    Stage byte_stage_;
    // Trace span named after the time stage; its byte args are this
    // rank's counter deltas over the scope. Declared before the Timer so
    // the span closes after the stage accounting (it destructs last of
    // the measurement members). No-op when observability is off.
    obs::Span span_;
    // Provenance for error annotation: a rank failing inside this scope
    // reports "rank R [stage=multiply, ...]" (util/error.hpp).
    error::Context context_;
    Timer timer_;
    std::uint64_t bytes_sent_;
    std::uint64_t bytes_received_;
    std::uint64_t messages_;
  };

  [[nodiscard]] Scope scope(Stage stage) { return Scope(*this, stage, stage); }
  [[nodiscard]] Scope scope(Stage time_stage, Stage byte_stage) {
    return Scope(*this, time_stage, byte_stage);
  }

  /// Collective: max seconds / summed traffic across ranks, on rank 0.
  [[nodiscard]] PipelineStats reduce_to_root(bsp::Comm& comm);

 private:
  PipelineStats local_;
  bsp::CostCounters* counters_;
};

/// Per-batch instrumentation (rank-0 view; the benches consume this).
/// Byte counters are std::uint64_t to match StageStats/CostCounters —
/// one signedness across every traffic counter in the system (the
/// checkpoint manifest still serializes them as int64 on the wire for
/// format stability; checkpoint.cpp casts explicitly).
struct BatchStats {
  double seconds = 0.0;          ///< wall time, barrier-to-barrier (I/O included)
  std::int64_t filtered_rows = 0;///< rows surviving the zero-row filter
  std::int64_t word_rows = 0;    ///< h after bitmask compression
  std::int64_t packed_nnz = 0;   ///< nonzero words across all ranks
  std::uint64_t bytes_sent = 0;  ///< measured payload bytes, summed over ranks
  std::uint64_t bytes_received = 0;  ///< measured receive bytes, summed over ranks
};

/// One batch the recovery layer gave up on (retries exhausted or the
/// failure was permanent) under Config::quarantine. A batch is a row
/// range of the attribute universe (paper Eq. 3), so a quarantined batch
/// means those attribute rows contributed nothing to any intersection or
/// union count: the run completes and every pair stays defined, but the
/// similarities are computed over the surviving attribute rows only. The
/// quarantine manifest (sas-quarantine-v1) and the run report name each
/// skipped batch, its row range, and why it was abandoned.
struct QuarantinedBatch {
  std::int64_t batch = 0;      ///< batch index l in [0, batch_count)
  std::int64_t row_begin = 0;  ///< first attribute row of the batch
  std::int64_t row_end = 0;    ///< one past the last attribute row
  std::int64_t attempts = 0;   ///< attempts consumed (1 = no retry ran)
  std::string reason;          ///< the abandoning failure's message
};

struct Result {
  std::int64_t n = 0;
  /// Dense n×n output (rank 0): always populated by kExact and the pure
  /// sketch estimators; by kHybrid only under Config::dense_output.
  SimilarityMatrix similarity;
  /// Survivor-proportional output (rank 0): populated by kHybrid unless
  /// Config::dense_output — exact values for surviving pairs, sketch
  /// estimates for scored-but-pruned pairs, 0.0 elsewhere. Rank 0 never
  /// materializes an n² array on this path.
  SparseSimilarity sparse_similarity;
  std::vector<BatchStats> batches;  ///< valid on world rank 0
  int active_ranks = 0;             ///< ranks that took part in the product
  PipelineStats stages;             ///< per-stage cost breakdown (rank 0)
  /// kHybrid only (rank 0): the candidate-pair mask of the sketch-prune
  /// pass (dense bitset or sparse CSR-of-pairs, per the storage-parity
  /// crossover in pair_mask.hpp). Masked pairs carry exact similarities;
  /// unmasked pairs carry their sketch estimate (0.0 under LSH banding
  /// when the pair never collided). Empty for every other estimator.
  distmat::CandidateMask candidates;

  // ---- in-run recovery (rank-0 view) ---------------------------------

  /// Batches abandoned under Config::quarantine, batch index ascending.
  /// Empty on a fully-complete run.
  std::vector<QuarantinedBatch> quarantined;
  /// Batch replays that ran (a batch retried twice counts 2).
  std::int64_t retries = 0;

  /// True when the run completed but with quarantined batches — the gas
  /// CLI maps this to its own exit code (9) so schedulers can tell a
  /// degraded completion from a clean one.
  [[nodiscard]] bool degraded() const noexcept { return !quarantined.empty(); }

  /// Which output form this run assembled (rank 0).
  [[nodiscard]] bool sparse_output() const noexcept { return !sparse_similarity.empty(); }

  /// Similarity lookup across both output forms — identical values by
  /// construction (the sparse assembly is bitwise-parity-tested against
  /// the dense gather).
  [[nodiscard]] double similarity_at(std::int64_t i, std::int64_t j) const {
    return sparse_output() ? sparse_similarity.similarity(i, j)
                           : similarity.similarity(i, j);
  }
};

/// Run SimilarityAtScale collectively over `world`. Every rank of `world`
/// must call with identical `config`; the result's similarity matrix and
/// batch statistics are populated on rank 0.
[[nodiscard]] Result similarity_at_scale(bsp::Comm& world, const SampleSource& source,
                                         const Config& config);

/// Single-threaded convenience wrapper: spins up `nranks` bsp ranks, runs
/// the driver, and returns rank 0's result (plus the cost counters, if
/// requested via `counters_out`).
///
/// Observability: a caller-owned `observer` (benches, tests) is bound to
/// the rank threads for the run; when none is given but the config asks
/// for artifacts (trace_out / report_json), one is created internally.
/// Either way the artifacts are written at run end — including after a
/// failed run, where the flushed trace carries the abort postmortem
/// before the error is rethrown.
[[nodiscard]] Result similarity_at_scale_threaded(
    int nranks, const SampleSource& source, const Config& config,
    std::vector<bsp::CostCounters>* counters_out = nullptr,
    obs::Observer* observer = nullptr);

}  // namespace sas::core
