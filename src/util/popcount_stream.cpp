// popcount_stream.cpp — the streaming popcount dot product, isolated in
// its own translation unit on purpose.
//
// GCC 12 constant-folds the vectorized VPOPCNTQ pattern incorrectly
// (Σ popcount over a compile-time-known array folds to the sum of the
// *words*), so -mavx512vpopcntdq cannot be enabled project-wide: any
// test or table with constant popcount inputs could silently miscompute.
// Runtime data is unaffected — and everything flowing through this TU is
// runtime data by construction — so the build probes the two failure
// modes separately (CMakeLists) and, where only the folding is broken,
// compiles exactly this file with the extension enabled. On this path
// the 4-way unrolled loop in popcount_and_sum_block auto-vectorizes to
// 512-bit VPOPCNTQ, roughly doubling dense popcount throughput.
#include "util/popcount.hpp"

namespace sas {

std::uint64_t popcount_and_sum_stream(const std::uint64_t* x, const std::uint64_t* y,
                                      std::size_t len) noexcept {
  return popcount_and_sum_block(x, y, len);
}

void popcount_and_sum_stream_2x2(const std::uint64_t* x0, const std::uint64_t* x1,
                                 const std::uint64_t* y0, const std::uint64_t* y1,
                                 std::size_t len, std::uint64_t out[4]) noexcept {
  std::uint64_t a00 = 0;
  std::uint64_t a01 = 0;
  std::uint64_t a10 = 0;
  std::uint64_t a11 = 0;
  for (std::size_t i = 0; i < len; ++i) {
    const std::uint64_t w0 = x0[i];
    const std::uint64_t w1 = x1[i];
    const std::uint64_t v0 = y0[i];
    const std::uint64_t v1 = y1[i];
    a00 += static_cast<std::uint64_t>(std::popcount(w0 & v0));
    a01 += static_cast<std::uint64_t>(std::popcount(w0 & v1));
    a10 += static_cast<std::uint64_t>(std::popcount(w1 & v0));
    a11 += static_cast<std::uint64_t>(std::popcount(w1 & v1));
  }
  out[0] = a00;
  out[1] = a01;
  out[2] = a10;
  out[3] = a11;
}

bool popcount_stream_vectorized() noexcept {
#if defined(__AVX512VPOPCNTDQ__)
  return true;
#else
  return false;
#endif
}

}  // namespace sas
