// cost_model.hpp — BSP α-β-γ cost accounting.
//
// The paper analyzes SimilarityAtScale in the Bulk Synchronous Parallel
// model (§III-C): a superstep costs α, each transferred byte costs β, and
// each arithmetic operation costs γ, with α ≥ β ≥ γ. Because this
// reproduction substitutes an in-process runtime for MPI (DESIGN.md §2),
// the communication-efficiency claims are validated by *measuring* the
// α/β/γ quantities — supersteps, bytes moved, flops — rather than relying
// on NIC wall-clock alone. Every Comm operation updates these counters.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>

namespace sas::bsp {

/// Per-rank communication/computation counters. Padded to a cache line to
/// avoid false sharing between rank threads.
struct alignas(64) CostCounters {
  std::uint64_t messages_sent = 0;  ///< point-to-point sends issued
  std::uint64_t bytes_sent = 0;     ///< payload bytes across all sends
  std::uint64_t bytes_received = 0; ///< payload bytes across all receives
  std::uint64_t supersteps = 0;     ///< barrier synchronizations entered
  std::uint64_t flops = 0;          ///< arithmetic ops recorded by kernels

  void reset() noexcept { *this = CostCounters{}; }
};

/// Aggregate view over all ranks of a run; `max_*` fields are the
/// per-rank maxima, which is what the BSP bounds constrain (the critical
/// path is the busiest rank).
struct CostSummary {
  std::uint64_t total_messages = 0;
  std::uint64_t total_bytes = 0;          ///< sum of per-rank bytes_sent
  std::uint64_t total_bytes_received = 0; ///< sum of per-rank bytes_received
  std::uint64_t max_messages = 0;   ///< max over ranks
  std::uint64_t max_bytes = 0;      ///< max over ranks
  std::uint64_t max_supersteps = 0; ///< max over ranks (≈ common value)
  std::uint64_t total_flops = 0;
  std::uint64_t max_flops = 0;

  static CostSummary aggregate(std::span<const CostCounters> per_rank) {
    CostSummary s;
    for (const CostCounters& c : per_rank) {
      s.total_messages += c.messages_sent;
      s.total_bytes += c.bytes_sent;
      s.total_bytes_received += c.bytes_received;
      s.total_flops += c.flops;
      s.max_messages = std::max(s.max_messages, c.messages_sent);
      s.max_bytes = std::max(s.max_bytes, c.bytes_sent);
      s.max_supersteps = std::max(s.max_supersteps, c.supersteps);
      s.max_flops = std::max(s.max_flops, c.flops);
    }
    return s;
  }
};

/// Machine parameters of the BSP model; used by benches to convert the
/// measured counters into a modelled time T = supersteps·α + bytes·β +
/// flops·γ and to check the paper's asymptotic bounds.
struct BspMachine {
  double alpha = 1.0e-6;   ///< seconds per superstep (synchronization)
  double beta = 1.0e-9;    ///< seconds per byte
  double gamma = 1.0e-10;  ///< seconds per arithmetic op

  [[nodiscard]] double modelled_seconds(const CostSummary& s) const noexcept {
    return static_cast<double>(s.max_supersteps) * alpha +
           static_cast<double>(s.max_bytes) * beta +
           static_cast<double>(s.max_flops) * gamma;
  }

  /// α-β prediction for a single communication primitive as observed from
  /// one rank: `messages` sends at latency α each plus `bytes` payload at
  /// β each. The observability layer (obs/trace.hpp) records this next to
  /// the measured duration of every outermost collective so the report
  /// can surface per-primitive model drift. A zero-message primitive
  /// (barrier) still pays one α of synchronization.
  [[nodiscard]] double predicted_seconds(std::uint64_t messages,
                                         std::uint64_t bytes) const noexcept {
    const double latency =
        static_cast<double>(messages > 0 ? messages : 1) * alpha;
    return latency + static_cast<double>(bytes) * beta;
  }
};

}  // namespace sas::bsp
