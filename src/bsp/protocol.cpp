#include "bsp/protocol.hpp"

#include <string>

#include "bsp/comm.hpp"
#include "util/error.hpp"

namespace sas::bsp {

const char* proto_op_name(ProtoOp op) noexcept {
  switch (op) {
    case ProtoOp::kBarrier: return "barrier";
    case ProtoOp::kBroadcast: return "broadcast";
    case ProtoOp::kReduce: return "reduce";
    case ProtoOp::kAllreduce: return "allreduce";
    case ProtoOp::kGather: return "gather_v";
    case ProtoOp::kAllgather: return "allgather_v";
    case ProtoOp::kScatter: return "scatter_v";
    case ProtoOp::kAlltoall: return "alltoall_v";
    case ProtoOp::kReduceScatter: return "reduce_scatter";
    case ProtoOp::kScan: return "scan";
    case ProtoOp::kExscan: return "exscan";
    case ProtoOp::kSplit: return "split";
  }
  return "unknown";
}

std::string format_entry(const ProtocolEntry& entry) {
  // Built by append, not `"#" + to_string(...)`: GCC 12's -Wrestrict
  // false-positives on operator+(const char*, string&&) (PR 105651).
  std::string out = "#";
  out += std::to_string(entry.seq);
  out += ' ';
  out += proto_op_name(entry.op);
  out += "(tag=";
  out += std::to_string(entry.tag);
  out += ", elem=";
  out += std::to_string(entry.elem_size);
  out += ", shape=";
  out += std::to_string(entry.shape);
  out += ")";
  return out;
}

std::vector<ProtocolEntry> ProtocolLedger::recent() const {
  const std::uint64_t n = count_ < kRecent ? count_ : kRecent;
  std::vector<ProtocolEntry> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = count_ - n; i < count_; ++i) {
    out.push_back(recent_[static_cast<std::size_t>(i % kRecent)]);
  }
  return out;
}

std::string ProtocolLedger::render_recent() const {
  if (count_ == 0) return "(no collectives recorded)";
  std::string out;
  for (const ProtocolEntry& entry : recent()) {
    if (!out.empty()) out += "; ";
    out += format_entry(entry);
  }
  return out;
}

std::string describe_ledger_divergence(std::span<const ProtocolLedger> ledgers,
                                       const std::string& label,
                                       const std::string& where) {
  if (ledgers.size() < 2) return {};
  const ProtocolLedger& reference = ledgers[0];
  for (std::size_t r = 1; r < ledgers.size(); ++r) {
    const ProtocolLedger& other = ledgers[r];
    if (other.count() == reference.count() && other.hash() == reference.hash()) {
      continue;
    }
    std::string message = "bsp protocol verifier: collective sequence diverged at ";
    message += where;
    message += " on ";
    message += label;
    message += ": rank 0 issued ";
    message += std::to_string(reference.count());
    message += " collectives (ledger hash ";
    message += std::to_string(reference.hash());
    message += ") but rank ";
    message += std::to_string(r);
    message += " issued ";
    message += std::to_string(other.count());
    message += " (ledger hash ";
    message += std::to_string(other.hash());
    message += ")\n  rank 0 recent: ";
    message += reference.render_recent();
    message += "\n  rank ";
    message += std::to_string(r);
    message += " recent: ";
    message += other.render_recent();
    return message;
  }
  return {};
}

namespace {

/// Throws on ledger divergence or any unreceived message in `state`'s
/// mailboxes. Single-threaded caller (after join), so plain reads.
void sweep_state(detail::SharedState& state, const std::string& label) {
  const std::string diverged = describe_ledger_divergence(
      std::span<const ProtocolLedger>(state.ledgers), label, "run exit");
  if (!diverged.empty()) throw error::ProtocolError(diverged);

  for (int dest = 0; dest < state.size; ++dest) {
    const auto pending =
        state.mailboxes[static_cast<std::size_t>(dest)].pending();
    if (pending.empty()) continue;
    const Mailbox::Pending& first = pending.front();
    std::string message = "bsp protocol verifier: ";
    message += std::to_string(pending.size());
    message += " unreceived message(s) at run exit on ";
    message += label;
    message += "; first leak: ";
    message += std::to_string(first.count);
    message += " message(s) from rank ";
    message += std::to_string(first.source);
    message += " to rank ";
    message += std::to_string(dest);
    message += " (tag=";
    message += std::to_string(first.tag);
    message += ", ";
    message += std::to_string(first.bytes);
    message += " bytes) sent but never received";
    throw error::ProtocolError(message);
  }
}

}  // namespace

void verify_protocol_at_exit(detail::SharedState& world) {
  sweep_state(world, world.label);
  if (world.protocol_registry == nullptr) return;
  for (const auto& child : world.protocol_registry->snapshot()) {
    sweep_state(*child, child->label);
  }
}

}  // namespace sas::bsp
