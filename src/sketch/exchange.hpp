// exchange.hpp — the distributed sketch-exchange pipeline.
//
// The approximate counterpart of the SpGEMM driver path: instead of
// redistributing bit-packed k-mer panels and multiplying under the
// popcount semiring, each rank
//
//   1. builds one sketch per OWNED sample (block distribution over the
//      n samples) by streaming the sample's attribute ids batch by batch
//      through SampleSource::values_in_range — same batched reads, same
//      bounded memory as the exact path, and order-independence of
//      add() makes the result identical for any batch count;
//   2. flattens the owned sketches' wire blobs into one panel
//      (core::pack_word_panel) and rotates the panels around the PR-1
//      overlapped ring (send posted before the local estimation work,
//      honoring Config::ring_overlap);
//   3. estimates all-pairs Jaccard between its sketches and each
//      arriving panel (sketch::estimate_jaccard_wire) straight into its
//      row panel of the SimilarityMatrix, which is assembled on rank 0
//      exactly like the exact path's output.
//
// Communication per rotation step is O(samples_per_rank · sketch_bytes)
// — independent of genome size — versus the exact ring's O(nnz) panel
// bytes; bench/minhash_accuracy reports both through the bsp cost
// counters. Estimates are symmetric and deterministic in (config, data),
// so the result is bitwise independent of the rank count (tested).
#pragma once

#include <cstdint>
#include <vector>

#include "bsp/comm.hpp"
#include "core/config.hpp"
#include "core/driver.hpp"
#include "core/sample_source.hpp"

namespace sas::sketch {

/// Wire blob of one sample's sketch under `config` (which selects the
/// estimator and its parameters), built by streaming the sample's
/// attribute ids in `config.batch_count` batches. Throws
/// std::invalid_argument when config.estimator == kExact.
[[nodiscard]] std::vector<std::uint64_t> build_sample_wire(
    const core::SampleSource& source, std::int64_t sample, const core::Config& config);

/// Run the sketch-exchange pipeline collectively over `world`. Every
/// rank must call with identical `config` (estimator != kExact); the
/// estimated similarity matrix and batch statistics land on rank 0,
/// mirroring core::similarity_at_scale's contract.
[[nodiscard]] core::Result sketch_similarity_at_scale(bsp::Comm& world,
                                                      const core::SampleSource& source,
                                                      const core::Config& config);

}  // namespace sas::sketch
