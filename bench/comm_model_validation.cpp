// comm_model_validation — validates the paper's §III-C BSP analysis.
//
// The cost model predicts, per batch and per rank,
//     W(p, c) = O( z/√(cp) + c·n²/p )        [bandwidth term]
// for the SUMMA schedule, versus Θ(z) for the 1D ring and Θ(n²) for the
// MapReduce allreduce pattern (§VI). Because the bsp runtime counts every
// byte each rank sends, the bound is checked directly:
//   (a) rank sweep at c=1 — measured max bytes/rank must track z/√p+n²/p,
//   (b) replication sweep at fixed p — input term shrinks as 1/√c while
//       the output-reduction term grows as c,
//   (c) schedule comparison — SUMMA vs ring vs MapReduce bytes.
#include <cmath>

#include "baselines/mapreduce_jaccard.hpp"
#include "bench_common.hpp"

using namespace sas;
using namespace sas::bench;

namespace {

/// Predicted bandwidth volume per rank (bytes): entries are 24-byte
/// triplets, the dense reduction moves 8-byte words.
double predicted_bytes(double z, double n, int p, int c) {
  const double input_term = 24.0 * 2.0 * z / std::sqrt(static_cast<double>(c * p));
  const double output_term = 8.0 * static_cast<double>(c) * n * n / p;
  return input_term + output_term;
}

}  // namespace

int main() {
  const std::int64_t m = std::int64_t{1} << 19;
  const std::int64_t n = 512;
  const double density = 2e-3;
  const double z = density * static_cast<double>(m) * static_cast<double>(n);
  print_header("BSP cost model validation",
               "Besta et al., IPDPS'20, §III-C analysis + §VI MapReduce comparison",
               "m=2^19, n=512, density=2e-3 (z ~ " +
                   fmt_count(static_cast<std::uint64_t>(z)) + " nonzeros), 4 batches");
  const core::BernoulliSampleSource source(m, n, density, 13);

  // (a) rank sweep, c = 1.
  std::printf("(a) SUMMA rank sweep (c=1): measured max bytes/rank vs model\n");
  TextTable ranks_table({"active ranks", "measured bytes/rank", "model bytes/rank",
                         "measured/model", "supersteps"});
  for (int ranks : {1, 4, 9, 16, 25}) {
    core::Config config;
    config.batch_count = 4;
    const RunResult run = run_driver(ranks, source, config);
    const int active = run.result.active_ranks;
    const double model = predicted_bytes(z, static_cast<double>(n), active, 1);
    ranks_table.add_row(
        {std::to_string(active), fmt_bytes(static_cast<double>(run.cost.max_bytes)),
         fmt_bytes(model),
         fmt_fixed(static_cast<double>(run.cost.max_bytes) / model, 2),
         std::to_string(run.cost.max_supersteps)});
  }
  ranks_table.print();
  std::printf("Shape to match: measured/model stays O(1) across the sweep — the\n"
              "constant-factor ratio must not grow with p.\n\n");

  // (b) replication sweep at p = 16.
  std::printf("(b) replication sweep at 16 ranks: c ∈ {1, 2, 4}\n");
  TextTable c_table({"c", "grid", "measured bytes/rank", "model bytes/rank",
                     "measured/model"});
  for (int c : {1, 2, 4}) {
    core::Config config;
    config.batch_count = 4;
    config.replication = c;
    const RunResult run = run_driver(16, source, config);
    const int active = run.result.active_ranks;
    const int side = static_cast<int>(std::sqrt(active / c));
    const double model = predicted_bytes(z, static_cast<double>(n), active, c);
    c_table.add_row({std::to_string(c),
                     std::to_string(side) + "x" + std::to_string(side) + "x" +
                         std::to_string(c),
                     fmt_bytes(static_cast<double>(run.cost.max_bytes)), fmt_bytes(model),
                     fmt_fixed(static_cast<double>(run.cost.max_bytes) / model, 2)});
  }
  c_table.print();
  std::printf("Shape to match: the model (input term ↓ 1/√c, output term ↑ c) keeps\n"
              "tracking the measurement as c varies.\n\n");

  // (c) schedule comparison at 16 ranks, at two operating points:
  // input-dominated (z >> n²) and output-dominated (n² >> z/√p) — the
  // latter is where the MapReduce allreduce pattern hurts most.
  auto compare_schedules = [&](const core::SampleSource& src, std::int64_t batches,
                               const char* label) {
    std::printf("(c) schedule comparison at 16 ranks — %s\n", label);
    TextTable sched({"schedule", "max bytes/rank", "total bytes", "max flops/rank"});
    core::Config config;
    config.batch_count = batches;
    const RunResult summa = run_driver(16, src, config);
    sched.add_row({"SUMMA 2D (this work)",
                   fmt_bytes(static_cast<double>(summa.cost.max_bytes)),
                   fmt_bytes(static_cast<double>(summa.cost.total_bytes)),
                   fmt_count(summa.cost.max_flops)});
    config.algorithm = core::Algorithm::kRing1D;
    const RunResult ring = run_driver(16, src, config);
    sched.add_row({"1D ring (panel circulation)",
                   fmt_bytes(static_cast<double>(ring.cost.max_bytes)),
                   fmt_bytes(static_cast<double>(ring.cost.total_bytes)),
                   fmt_count(ring.cost.max_flops)});
    std::vector<bsp::CostCounters> mr_counters;
    (void)baselines::mapreduce_jaccard_threaded(16, src, batches, &mr_counters);
    const auto mr = bsp::CostSummary::aggregate(mr_counters);
    sched.add_row({"MapReduce + allreduce (sec. VI)",
                   fmt_bytes(static_cast<double>(mr.max_bytes)),
                   fmt_bytes(static_cast<double>(mr.total_bytes)),
                   fmt_count(mr.max_flops)});
    sched.print();
    std::printf("\n");
  };
  compare_schedules(source, 4, "input-dominated (n=512, z~536k)");
  const core::BernoulliSampleSource wide(std::int64_t{1} << 19, 1024, 2e-4, 17);
  compare_schedules(wide, 4, "output-dominated (n=1024, z~107k)");

  std::printf("Shape to match: SUMMA moves the fewest bytes per rank at both operating\n"
              "points; the ring pays Θ(z) input circulation; MapReduce pays the Θ(n²)\n"
              "allreduce the paper criticizes — dominant at the second operating point\n"
              "— plus quadratic reduce-side work on dense attribute rows.\n");
  return 0;
}
