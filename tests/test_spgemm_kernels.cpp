// test_spgemm_kernels.cpp — equivalence suite for the CSR tiled SpGEMM
// kernel (the PR-1 hot-path rewrite). The retained triplet merge-join is
// the executable specification: over varied sparsity, bit width, tile
// width, and thread count, the CSR kernel must produce bit-identical
// accumulators — and the double-buffered ring must match both the
// synchronous ring and SUMMA on the same input.
#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <optional>
#include <vector>

#include "bsp/runtime.hpp"
#include "distmat/block.hpp"
#include "distmat/crossover.hpp"
#include "distmat/csr.hpp"
#include "distmat/gather.hpp"
#include "distmat/proc_grid.hpp"
#include "distmat/spgemm.hpp"
#include "util/popcount.hpp"
#include "util/rng.hpp"

namespace sas::distmat {
namespace {

SparseBlock random_block(std::int64_t rows, std::int64_t cols, double density,
                         int bit_width, std::uint64_t seed) {
  Rng rng(seed);
  const std::uint64_t mask =
      bit_width >= 64 ? ~0ULL : ((std::uint64_t{1} << bit_width) - 1);
  std::vector<Triplet<std::uint64_t>> entries;
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      if (rng.bernoulli(density)) entries.push_back({r, c, rng() & mask});
    }
  }
  return SparseBlock::from_triplets(rows, cols, std::move(entries));
}

/// Dense brute-force popcount-semiring LᵀN over the unpacked bit matrix.
std::vector<std::int64_t> dense_reference(const SparseBlock& l, const SparseBlock& n) {
  std::vector<std::int64_t> out(static_cast<std::size_t>(l.cols * n.cols), 0);
  for (const auto& a : l.entries) {
    for (const auto& b : n.entries) {
      if (a.row != b.row) continue;
      out[static_cast<std::size_t>(a.col * n.cols + b.col)] +=
          popcount64(a.value & b.value);
    }
  }
  return out;
}

// ---------------------------------------------------------------- panels

TEST(CsrPanel, BuildsOccupiedRowIndexFromBlock) {
  const SparseBlock block = SparseBlock::from_triplets(
      5, 4, {{0, 1, 7}, {0, 3, 9}, {2, 0, 3}, {4, 2, 5}});
  const CsrPanel panel = CsrPanel::from_block(block);
  EXPECT_EQ(panel.rows, 5);
  EXPECT_EQ(panel.cols, 4);
  EXPECT_EQ(panel.nnz(), 4);
  // Occupied rows only: word-rows 1 and 3 are absent from the index.
  ASSERT_EQ(panel.occupied(), 3);
  EXPECT_EQ(panel.row_id(0), 0);
  EXPECT_EQ(panel.row_id(1), 2);
  EXPECT_EQ(panel.row_id(2), 4);
  EXPECT_EQ(panel.row_nnz(0), 2);
  EXPECT_EQ(panel.row_nnz(1), 1);
  EXPECT_EQ(panel.row_nnz(2), 1);
  EXPECT_EQ(panel.col_idx[static_cast<std::size_t>(panel.row_begin(2))], 2);
  EXPECT_EQ(panel.values[static_cast<std::size_t>(panel.row_begin(0)) + 1], 9u);
}

TEST(CsrPanel, AstronomicalRowSpaceCostsOnlyOccupiedRows) {
  // The unfiltered hypersparse regime: nominal row space ~4^21 word-rows
  // with a handful occupied. Must build in O(nnz), not O(rows) — the old
  // dense row_ptr layout would try to allocate ~35 TB here.
  const std::int64_t huge_rows = std::int64_t{1} << 42;
  const std::vector<Triplet<std::uint64_t>> entries{
      {7, 0, 1}, {(std::int64_t{1} << 40) + 3, 1, 2}, {huge_rows - 1, 0, 4}};
  const CsrPanel panel = CsrPanel::from_triplets(
      huge_rows, 2, std::span<const Triplet<std::uint64_t>>(entries));
  EXPECT_EQ(panel.occupied(), 3);
  EXPECT_EQ(panel.row_id(2), huge_rows - 1);
  // And the kernel must intersect occupied rows without sweeping [0, rows).
  DenseBlock<std::int64_t> out(BlockRange{0, 2}, BlockRange{0, 2});
  csr_popcount_ata_accumulate(panel, panel, 0, 0, out, nullptr);
  EXPECT_EQ(out.at_local(0, 0), 2);  // rows 7 and 2^42-1, popcount(1)+popcount(4)
  EXPECT_EQ(out.at_local(1, 1), 1);
  EXPECT_EQ(out.at_local(0, 1), 0);
}

TEST(CsrPanel, SortedRowBoundIsTight) {
  const std::vector<Triplet<std::uint64_t>> entries{{1, 0, 1}, {7, 2, 1}};
  EXPECT_EQ(sorted_row_bound(std::span<const Triplet<std::uint64_t>>(entries)), 8);
  EXPECT_EQ(sorted_row_bound(std::span<const Triplet<std::uint64_t>>()), 0);
}

// ------------------------------------------------- kernel property tests

struct KernelCase {
  double density;
  int bit_width;
  std::int64_t tile_cols;  // 0 = default
  int threads;
};

void PrintTo(const KernelCase& c, std::ostream* os) {
  *os << "density=" << c.density << " bits=" << c.bit_width
      << " tile=" << c.tile_cols << " threads=" << c.threads;
}

class CsrKernelProperty : public ::testing::TestWithParam<KernelCase> {};

TEST_P(CsrKernelProperty, MatchesTripletJoinAndBruteForce) {
  const KernelCase kc = GetParam();
  const std::int64_t h = 43;
  const SparseBlock l = random_block(h, 21, kc.density, kc.bit_width, 77);
  const SparseBlock n = random_block(h, 17, kc.density, kc.bit_width, 78);

  DenseBlock<std::int64_t> expected(BlockRange{0, l.cols}, BlockRange{0, n.cols});
  bsp::CostCounters ref_counters;
  popcount_join_accumulate(l.entries, n.entries, 0, 0, expected, &ref_counters);
  EXPECT_EQ(expected.values, dense_reference(l, n));

  DenseBlock<std::int64_t> got(BlockRange{0, l.cols}, BlockRange{0, n.cols});
  bsp::CostCounters csr_counters;
  const CsrPanel lp = CsrPanel::from_block(l);
  const CsrPanel np = CsrPanel::from_block(n);
  csr_popcount_ata_accumulate(lp, np, 0, 0, got, &csr_counters,
                              {kc.threads, kc.tile_cols});
  EXPECT_EQ(got.values, expected.values);
  EXPECT_EQ(csr_counters.flops, ref_counters.flops);
}

INSTANTIATE_TEST_SUITE_P(
    SparsityBitsTilesThreads, CsrKernelProperty,
    ::testing::Values(KernelCase{0.02, 64, 0, 1}, KernelCase{0.15, 64, 0, 1},
                      KernelCase{0.5, 64, 0, 1}, KernelCase{0.85, 64, 0, 1},
                      KernelCase{0.3, 1, 0, 1}, KernelCase{0.3, 7, 0, 1},
                      KernelCase{0.3, 23, 0, 1}, KernelCase{0.5, 64, 4, 1},
                      KernelCase{0.5, 64, 1, 1}, KernelCase{0.85, 64, 8, 1},
                      KernelCase{0.15, 64, 16, 1}));
// NOTE: these inputs sit far below kAtaThreadMinFlops, so threads would
// silently clamp to 1 here — threaded coverage lives in the dedicated
// above-threshold tests below, which drive both forced-small and
// default tile widths.

TEST(CsrKernel, RespectsColumnBasesIntoLargerOutput) {
  const SparseBlock l = random_block(31, 9, 0.4, 64, 5);
  const SparseBlock n = random_block(31, 11, 0.4, 64, 6);
  // Output block covering [0, 25) × [0, 30); land L at row 13, N at col 8.
  DenseBlock<std::int64_t> expected(BlockRange{0, 25}, BlockRange{0, 30});
  DenseBlock<std::int64_t> got(BlockRange{0, 25}, BlockRange{0, 30});
  popcount_join_accumulate(l.entries, n.entries, 13, 8, expected, nullptr);
  csr_popcount_ata_accumulate(CsrPanel::from_block(l), CsrPanel::from_block(n), 13, 8,
                              got, nullptr, {1, 4});
  EXPECT_EQ(got.values, expected.values);
}

TEST(CsrKernel, ThreadedPathAboveSpawnThreshold) {
  // 128 dense word-rows × 128 cols: Σ nnz_L(r)·nnz_N(r) = 128·128² = 2²¹
  // flops, exactly the spawn threshold — the threaded path really runs.
  const SparseBlock block = random_block(128, 128, 1.0, 64, 321);
  const CsrPanel panel = CsrPanel::from_block(block);
  bsp::CostCounters counters;
  DenseBlock<std::int64_t> expected(BlockRange{0, 128}, BlockRange{0, 128});
  popcount_join_accumulate(block.entries, block.entries, 0, 0, expected, nullptr);
  DenseBlock<std::int64_t> got(BlockRange{0, 128}, BlockRange{0, 128});
  csr_popcount_ata_accumulate(panel, panel, 0, 0, got, &counters, {4, 16});
  ASSERT_GE(counters.flops, kAtaThreadMinFlops);
  EXPECT_EQ(got.values, expected.values);
}

TEST(CsrKernel, SparseThreadedTilePartitioning) {
  // Force the SPARSE multi-threaded tile path: above the spawn threshold
  // (128 dense word-rows × 128 cols = 2²¹ flops) but with the dense path
  // disabled, small tiles, and more threads than divide the columns
  // evenly — exercising the tile→column-range worker partitioning.
  const SparseBlock block = random_block(128, 128, 1.0, 64, 654);
  const CsrPanel panel = CsrPanel::from_block(block);
  DenseBlock<std::int64_t> expected(BlockRange{0, 128}, BlockRange{0, 128});
  popcount_join_accumulate(block.entries, block.entries, 0, 0, expected, nullptr);
  for (int threads : {3, 4, 7}) {
    for (std::int64_t tile_cols : {std::int64_t{0}, std::int64_t{16}}) {  // 0 = default width
      DenseBlock<std::int64_t> got(BlockRange{0, 128}, BlockRange{0, 128});
      bsp::CostCounters counters;
      CsrAtaOptions options;
      options.threads = threads;
      options.tile_cols = tile_cols;
      options.allow_dense = false;
      csr_popcount_ata_accumulate(panel, panel, 0, 0, got, &counters, options);
      ASSERT_GE(counters.flops, kAtaThreadMinFlops);
      EXPECT_EQ(got.values, expected.values)
          << "threads=" << threads << " tile_cols=" << tile_cols;
    }
  }
}

TEST(CsrKernel, EmptyPanelsAreNoOps) {
  const SparseBlock empty{10, 4, {}};
  const SparseBlock some = random_block(10, 4, 0.5, 64, 9);
  DenseBlock<std::int64_t> out(BlockRange{0, 4}, BlockRange{0, 4});
  csr_popcount_ata_accumulate(CsrPanel::from_block(empty), CsrPanel::from_block(some),
                              0, 0, out, nullptr);
  csr_popcount_ata_accumulate(CsrPanel::from_block(some), CsrPanel::from_block(empty),
                              0, 0, out, nullptr);
  for (auto v : out.values) EXPECT_EQ(v, 0);
}

TEST(CsrKernel, DisjointRowSpansProduceZero) {
  const SparseBlock l = SparseBlock::from_triplets(10, 4, {{0, 0, ~0ULL}, {2, 1, ~0ULL}});
  const SparseBlock n = SparseBlock::from_triplets(10, 4, {{1, 0, ~0ULL}, {3, 2, ~0ULL}});
  DenseBlock<std::int64_t> out(BlockRange{0, 4}, BlockRange{0, 4});
  csr_popcount_ata_accumulate(CsrPanel::from_block(l), CsrPanel::from_block(n), 0, 0,
                              out, nullptr);
  for (auto v : out.values) EXPECT_EQ(v, 0);
}

// ------------------------------------------------ crossover calibration

TEST(Crossover, CalibratedValueIsSaneAndMemoized) {
  const double value = calibrated_dense_crossover();
  EXPECT_GE(value, kMinDenseCrossover);
  EXPECT_LE(value, kMaxDenseCrossover);
  EXPECT_EQ(calibrated_dense_crossover(), value);  // one-shot, memoized
  // Fallback tiers: scalar build 0.60, vector stream only 0.30, vector
  // stream + vector scatter 0.45 (sparse path got faster too).
  const double fallback = fallback_dense_crossover();
  EXPECT_TRUE(fallback == 0.30 || fallback == 0.45 || fallback == 0.60);
}

TEST(Crossover, ForcedThresholdsSelectEitherPathIdentically) {
  // Mid-density input sits between the extreme thresholds, so pinning
  // the crossover at the clamp bounds drives the dense and the sparse
  // path respectively — both must match the reference bit-for-bit.
  const SparseBlock block = random_block(64, 48, 0.55, 64, 99);
  const CsrPanel panel = CsrPanel::from_block(block);
  DenseBlock<std::int64_t> expected(BlockRange{0, 48}, BlockRange{0, 48});
  popcount_join_accumulate(block.entries, block.entries, 0, 0, expected, nullptr);
  for (double crossover : {kMinDenseCrossover, kMaxDenseCrossover}) {
    DenseBlock<std::int64_t> got(BlockRange{0, 48}, BlockRange{0, 48});
    CsrAtaOptions options;
    options.dense_crossover = crossover;
    csr_popcount_ata_accumulate(panel, panel, 0, 0, got, nullptr, options);
    EXPECT_EQ(got.values, expected.values) << "crossover=" << crossover;
  }
}

TEST(DenseStream2x2, MatchesFourScalarStreams) {
  // The dense path's 2×2 register tile must be bit-identical to four
  // scalar streaming dot products on every length (including the odd
  // tails the kernel handles with scalar edges).
  Rng rng(321);
  for (const std::size_t words : {0u, 1u, 3u, 4u, 7u, 64u, 257u}) {
    std::vector<std::uint64_t> x0(words);
    std::vector<std::uint64_t> x1(words);
    std::vector<std::uint64_t> y0(words);
    std::vector<std::uint64_t> y1(words);
    for (std::size_t w = 0; w < words; ++w) {
      x0[w] = rng();
      x1[w] = rng();
      y0[w] = rng();
      y1[w] = rng();
    }
    std::uint64_t sums[4];
    popcount_and_sum_stream_2x2(x0.data(), x1.data(), y0.data(), y1.data(), words,
                                sums);
    EXPECT_EQ(sums[0], popcount_and_sum_stream(x0.data(), y0.data(), words));
    EXPECT_EQ(sums[1], popcount_and_sum_stream(x0.data(), y1.data(), words));
    EXPECT_EQ(sums[2], popcount_and_sum_stream(x1.data(), y0.data(), words));
    EXPECT_EQ(sums[3], popcount_and_sum_stream(x1.data(), y1.data(), words));
  }
}

TEST(DenseStream2x2, DensePathStillMatchesReferenceOnOddShapes) {
  // Odd column counts exercise the 2×2 tiling's row/column remainders
  // inside the dense kernel path; the result must stay bit-identical to
  // the triplet reference.
  for (const std::int64_t cols : {1, 2, 5, 31, 33}) {
    const SparseBlock block = random_block(48, cols, 0.7, 64, 1000 + cols);
    const CsrPanel panel = CsrPanel::from_block(block);
    DenseBlock<std::int64_t> expected(BlockRange{0, cols}, BlockRange{0, cols});
    popcount_join_accumulate(block.entries, block.entries, 0, 0, expected, nullptr);
    DenseBlock<std::int64_t> got(BlockRange{0, cols}, BlockRange{0, cols});
    CsrAtaOptions options;
    options.dense_crossover = kMinDenseCrossover;  // force the dense path
    csr_popcount_ata_accumulate(panel, panel, 0, 0, got, nullptr, options);
    EXPECT_EQ(got.values, expected.values) << "cols=" << cols;
  }
}

// --------------------------------------- ring schedules and SUMMA parity

/// Run the 1D ring over column panels of `full` and assemble the n×n
/// result on rank 0.
std::vector<std::int64_t> run_ring(const SparseBlock& full, int p,
                                   RingSchedule schedule) {
  const std::int64_t n = full.cols;
  std::vector<std::int64_t> assembled(static_cast<std::size_t>(n * n), 0);
  std::mutex mutex;
  bsp::Runtime::run(p, [&](bsp::Comm& comm) {
    const BlockRange my_cols = block_range(n, p, comm.rank());
    std::vector<Triplet<std::uint64_t>> mine;
    for (const auto& t : full.entries) {
      if (my_cols.contains(t.col)) mine.push_back({t.row, t.col - my_cols.begin, t.value});
    }
    SparseBlock panel{full.rows, my_cols.size(), std::move(mine)};
    DenseBlock<std::int64_t> b_panel(my_cols, BlockRange{0, n});
    ring_ata_accumulate(comm, n, panel, b_panel, schedule);
    DenseBlock<double> s(b_panel.row_range, b_panel.col_range);
    for (std::size_t i = 0; i < s.values.size(); ++i) {
      s.values[i] = static_cast<double>(b_panel.values[i]);
    }
    const auto full_rows = gather_dense_to_root(comm, &s, n, n);
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(mutex);
      for (std::size_t i = 0; i < full_rows.size(); ++i) {
        assembled[i] = static_cast<std::int64_t>(full_rows[i]);
      }
    }
  });
  return assembled;
}

/// Run SUMMA over a p-rank grid on blocks of `full` and assemble on rank 0.
std::vector<std::int64_t> run_summa(const SparseBlock& full, int p, int layers) {
  const std::int64_t n = full.cols;
  const std::int64_t h = full.rows;
  std::vector<std::int64_t> assembled(static_cast<std::size_t>(n * n), 0);
  std::mutex mutex;
  bsp::Runtime::run(p, [&](bsp::Comm& comm) {
    ProcGrid grid(comm, layers);
    const int s = grid.side();
    const int c = grid.layers();
    std::optional<DenseBlock<std::int64_t>> b_block;
    if (grid.active()) {
      const int q = grid.layer() * s + grid.grid_row();
      const BlockRange chunk = block_range(h, s * c, q);
      const BlockRange cols = block_range(n, s, grid.grid_col());
      std::vector<Triplet<std::uint64_t>> mine;
      for (const auto& t : full.entries) {
        if (chunk.contains(t.row) && cols.contains(t.col)) {
          mine.push_back({t.row - chunk.begin, t.col - cols.begin, t.value});
        }
      }
      SparseBlock block{chunk.size(), cols.size(), std::move(mine)};
      b_block.emplace(block_range(n, s, grid.grid_row()), cols);
      summa_ata_accumulate(grid, block, *b_block);
    }
    std::optional<DenseBlock<double>> s_block;
    if (grid.active() && grid.layer() == 0) {
      s_block.emplace(b_block->row_range, b_block->col_range);
      for (std::size_t i = 0; i < s_block->values.size(); ++i) {
        s_block->values[i] = static_cast<double>(b_block->values[i]);
      }
    }
    const auto full_rows =
        gather_dense_to_root(comm, s_block.has_value() ? &*s_block : nullptr, n, n);
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(mutex);
      for (std::size_t i = 0; i < full_rows.size(); ++i) {
        assembled[i] = static_cast<std::int64_t>(full_rows[i]);
      }
    }
  });
  return assembled;
}

class RingScheduleTest : public ::testing::TestWithParam<int> {};

TEST_P(RingScheduleTest, OverlappedMatchesSynchronousAndReference) {
  const int p = GetParam();
  const SparseBlock full = random_block(37, 19, 0.35, 64, 1234);
  const auto expected = dense_reference(full, full);
  const auto overlapped = run_ring(full, p, RingSchedule::kOverlapped);
  const auto synchronous = run_ring(full, p, RingSchedule::kSynchronous);
  EXPECT_EQ(overlapped, expected);
  EXPECT_EQ(synchronous, expected);
  EXPECT_EQ(overlapped, synchronous);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, RingScheduleTest, ::testing::Values(1, 2, 4, 5, 6));

TEST(RingSummaParity, DoubleBufferedRingMatchesSummaOnSameInput) {
  const SparseBlock full = random_block(41, 23, 0.3, 64, 4321);
  const auto ring = run_ring(full, 4, RingSchedule::kOverlapped);
  EXPECT_EQ(ring, run_summa(full, 4, 1));
  EXPECT_EQ(ring, run_summa(full, 9, 1));
  EXPECT_EQ(ring, run_summa(full, 8, 2));  // 2.5D replicated grid
}

}  // namespace
}  // namespace sas::distmat
