#include "bsp/runtime.hpp"

#include <cstdlib>
#include <exception>
#include <memory>
#include <stdexcept>
#include <thread>

#include "obs/trace.hpp"
#include "util/error.hpp"

namespace sas::bsp {

namespace {

/// Explicit option wins; otherwise SAS_WATCHDOG_MS (CI's safety net);
/// otherwise off.
std::chrono::milliseconds effective_watchdog(std::chrono::milliseconds requested) {
  if (requested.count() > 0) return requested;
  if (const char* env = std::getenv("SAS_WATCHDOG_MS")) {
    char* end = nullptr;
    const long long ms = std::strtoll(env, &end, 10);
    if (end != env && *end == '\0' && ms > 0) return std::chrono::milliseconds(ms);
  }
  return std::chrono::milliseconds{0};
}

/// Explicit option wins; otherwise SAS_VERIFY_PROTOCOL (CI arms it with
/// "1"; empty or "0" means off).
bool effective_verify_protocol(bool requested) {
  if (requested) return true;
  const char* env = std::getenv("SAS_VERIFY_PROTOCOL");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

/// Postmortem note: record the run's failure (and the blocked-site
/// snapshot, when available) into the observer so the flushed trace
/// explains what the timeline was doing when it died.
void note_abort(obs::Observer* observer, const std::exception_ptr& cause,
                const std::string& blocked_sites) {
  if (observer == nullptr) return;
  std::string message = "unknown error";
  try {
    std::rethrow_exception(cause);
  } catch (const std::exception& e) {
    message = e.what();
  } catch (...) {  // sas-lint: allow(R7 postmortem label fallback: the "unknown error" default IS the translation)
  }
  observer->note_abort(message, blocked_sites);
}

}  // namespace

std::vector<CostCounters> Runtime::run(int nranks,
                                       const std::function<void(Comm&)>& fn) {
  return run(nranks, fn, RuntimeOptions{});
}

std::vector<CostCounters> Runtime::run(int nranks, const std::function<void(Comm&)>& fn,
                                       const RuntimeOptions& options) {
  if (nranks < 1) throw std::invalid_argument("bsp::Runtime::run: nranks must be >= 1");
  if (options.observer != nullptr && options.observer->nranks() < nranks) {
    throw std::invalid_argument(
        "bsp::Runtime::run: observer has fewer rank buffers than nranks");
  }

  auto state = std::make_shared<detail::SharedState>(nranks);
  state->watchdog = effective_watchdog(options.watchdog);
  state->fault_plan = options.fault_plan;
  if (options.nodes > 1) state->set_node_topology(options.nodes);
  if (effective_verify_protocol(options.verify_protocol)) {
    state->verify_protocol = true;
    state->ledgers.resize(static_cast<std::size_t>(nranks));
    state->owned_registry = std::make_shared<ProtocolRegistry>();
    state->protocol_registry = state->owned_registry.get();
  }
  std::vector<CostCounters> counters(static_cast<std::size_t>(nranks));
  std::vector<FaultSlot> fault_slots(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) fault_slots[static_cast<std::size_t>(r)].world_rank = r;

  if (nranks == 1) {
    // Fast path: run on the calling thread (serial references, unit
    // tests). Errors get the same rank/context annotation as the
    // threaded path so messages are identical at any p.
    try {
      obs::ScopedRankBinding obs_binding(options.observer, 0);
      Comm comm(state, 0, &counters[0], &fault_slots[0]);
      fn(comm);
    } catch (...) {
      const std::exception_ptr annotated =
          error::annotate_rank_error(std::current_exception(), 0);
      note_abort(options.observer, annotated, state->abort->blocked_at_trip());
      std::rethrow_exception(annotated);
    }
    if (state->verify_protocol) verify_protocol_at_exit(*state);
    return counters;
  }

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      obs::ScopedRankBinding obs_binding(options.observer, r);
      try {
        Comm comm(state, r, &counters[static_cast<std::size_t>(r)],
                  &fault_slots[static_cast<std::size_t>(r)]);
        fn(comm);
        // Exiting while the run is aborted (however unlikely on a clean
        // return) still counts as a defection: a recovery rendezvous
        // must never wait for a thread that is gone.
        if (state->abort->tripped.load(std::memory_order_acquire)) {
          state->note_recovery_defection();
        }
      } catch (const RankAborted&) {
        // A peer failed first; its annotated error is already in the
        // token. Unwind quietly — but tell any recovery rendezvous this
        // rank is gone (the failure escaped the driver's batch loop, so
        // this rank can no longer participate in a replay).
        state->note_recovery_defection();
      } catch (...) {
        // Annotate on THIS thread — the context stack is thread-local to
        // the failing rank. Losing the trip race (two ranks failing
        // concurrently) just means the other rank's error is the one
        // reported.
        state->abort->trip(r,
                           error::annotate_rank_error(std::current_exception(), r));
        state->note_recovery_defection();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (state->abort->tripped.load(std::memory_order_acquire)) {
    note_abort(options.observer, state->abort->cause(),
               state->abort->blocked_at_trip());
    std::rethrow_exception(state->abort->cause());
  }
  // Run-exit protocol sweep (clean runs only: an aborted run leaks
  // messages by design). The joins above order every rank's ledger and
  // mailbox writes before this read.
  if (state->verify_protocol) verify_protocol_at_exit(*state);
  return counters;
}

}  // namespace sas::bsp
