#include "distmat/crossover.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/popcount.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace sas::distmat {

namespace {

/// Safety factor over the raw rate ratio: the dense path also pays the
/// (amortized) densification pass, so it must win by a margin before the
/// kernel switches.
constexpr double kCalibrationMargin = 1.15;

/// Per-loop problem sizes: big enough to amortize call overhead and give
/// the timer ~tens of microseconds per repetition, small enough that both
/// working sets stay L1/L2-resident (the kernel tiles for exactly that).
constexpr std::size_t kScatterSegment = 2048;  // CSR row entries per pass
constexpr std::size_t kStreamWords = 4096;     // words per dot product
constexpr int kPasses = 16;                    // inner passes per timing
constexpr int kRepetitions = 7;                // timings; min is kept

/// Defeat dead-code elimination without a memory barrier: fold results
/// into a sink read after timing.
std::uint64_t g_calibration_sink = 0;

/// Launder a size through a volatile so the timed loops run the generic
/// kernel instead of a constant-specialized clone (which would both skew
/// the measurement and trip -Waggressive-loop-optimizations).
std::size_t opaque_size(std::size_t n) noexcept {
  volatile std::size_t v = n;
  return v;
}

double min_scatter_seconds_per_op() {
  Rng rng(0xca11b7a7e);
  const std::size_t segment = opaque_size(kScatterSegment);
  std::vector<std::int64_t> cols(segment);
  std::vector<std::uint64_t> vals(segment);
  std::vector<std::int64_t> acc(segment, 0);
  for (std::size_t i = 0; i < segment; ++i) {
    cols[i] = static_cast<std::int64_t>(i);
    vals[i] = rng();
  }
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < kRepetitions; ++rep) {
    Timer timer;
    for (int pass = 0; pass < kPasses; ++pass) {
      // Time the *dispatched* scatter — the variant the SpGEMM kernel
      // actually runs (AVX512 gather/scatter where available, the scalar
      // loop otherwise). Timing the inline scalar kernel here would bias
      // the crossover toward the dense path whenever the vector scatter
      // is live.
      popcount_and_scatter_dispatch(rng(), cols.data(), vals.data(), segment,
                                    acc.data());
    }
    best = std::min(best, timer.seconds());
  }
  g_calibration_sink += static_cast<std::uint64_t>(acc[segment / 2]);
  return best / static_cast<double>(kPasses * kScatterSegment);
}

double min_stream_seconds_per_word() {
  Rng rng(0x57e3a1);
  const std::size_t words = opaque_size(kStreamWords);
  std::vector<std::uint64_t> x(words);
  std::vector<std::uint64_t> y(words);
  for (std::size_t i = 0; i < words; ++i) {
    x[i] = rng();
    y[i] = rng();
  }
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < kRepetitions; ++rep) {
    Timer timer;
    std::uint64_t sum = 0;
    for (int pass = 0; pass < kPasses; ++pass) {
      sum += popcount_and_sum_stream(x.data(), y.data(), words);
      x[pass] ^= sum;  // keep passes data-dependent so none can be hoisted
    }
    best = std::min(best, timer.seconds());
    g_calibration_sink += sum;
  }
  return best / static_cast<double>(kPasses * kStreamWords);
}

double measure_crossover() {
  const double scatter = min_scatter_seconds_per_op();
  const double stream = min_stream_seconds_per_word();
  // A coarse or broken clock yields zero/denormal timings; the ratio is
  // then meaningless — keep the compile-time constants instead.
  if (!(scatter > 0.0) || !(stream > 0.0)) return fallback_dense_crossover();
  return std::clamp(kCalibrationMargin * stream / scatter, kMinDenseCrossover,
                    kMaxDenseCrossover);
}

}  // namespace

double fallback_dense_crossover() noexcept {
  // Static guesses for when the clock is unusable. A vectorized stream
  // pulls the crossover down (dense wins earlier); a vectorized scatter
  // pushes it back up because the sparse path also got faster.
  if (popcount_stream_vectorized()) {
    return popcount_scatter_vectorized() ? 0.45 : 0.30;
  }
  return 0.60;
}

double calibrated_dense_crossover() {
  static const double value = measure_crossover();
  return value;
}

}  // namespace sas::distmat
