// Suppression fixture: a real R3 violation masked by an allow()
// annotation. The self-test asserts it produces zero active findings and
// exactly counted suppressions. Never compiled.

void deliberately_untyped() {
  // sas-lint: allow(R3 fixture exercises the suppression syntax)
  throw std::runtime_error("masked by the annotation above");
}
