// gather.hpp — assemble a block-distributed dense matrix on the root.
//
// Used at the very end of the pipeline to hand the similarity matrix to
// downstream consumers (tree building, clustering, file output). Each
// contributing rank ships (ranges, values); rank 0 stitches the full
// rows×cols matrix. Ranks without a block pass nullptr.
#pragma once

#include <cstdint>
#include <vector>

#include "bsp/comm.hpp"
#include "distmat/dense_block.hpp"

namespace sas::distmat {

/// Collective over `comm`. Returns the assembled rows×cols row-major
/// matrix on rank 0 and an empty vector elsewhere.
template <typename T>
[[nodiscard]] std::vector<T> gather_dense_to_root(bsp::Comm& comm,
                                                  const DenseBlock<T>* block,
                                                  std::int64_t rows, std::int64_t cols) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<std::int64_t> header;
  std::vector<T> payload;
  if (block != nullptr) {
    header = {block->row_range.begin, block->row_range.end, block->col_range.begin,
              block->col_range.end};
    payload = block->values;
  }
  auto headers = comm.gather_v<std::int64_t>(std::span<const std::int64_t>(header), 0);
  auto payloads = comm.gather_v<T>(std::span<const T>(payload), 0);
  if (comm.rank() != 0) return {};

  std::vector<T> full(static_cast<std::size_t>(rows * cols), T{});
  for (std::size_t r = 0; r < headers.size(); ++r) {
    if (headers[r].empty()) continue;
    const std::int64_t rb = headers[r][0];
    const std::int64_t re = headers[r][1];
    const std::int64_t cb = headers[r][2];
    const std::int64_t ce = headers[r][3];
    const std::vector<T>& vals = payloads[r];
    std::size_t idx = 0;
    for (std::int64_t i = rb; i < re; ++i) {
      for (std::int64_t j = cb; j < ce; ++j) {
        full[static_cast<std::size_t>(i * cols + j)] = vals[idx++];
      }
    }
  }
  return full;
}

}  // namespace sas::distmat
