// tags.hpp — central registry of user-level BSP message tags.
//
// comm.hpp reserves the negative tag space for internal collective
// traffic (InternalTag); user tags must be non-negative. This header is
// the ONE place non-negative tags are minted: every send/recv call site
// outside the bsp layer names a constant from here, so two subsystems
// can never collide on a tag and the whole tag space is auditable at a
// glance. Enforced by tools/sas_lint.py rule R2 — a numeric literal in
// the tag position of a send/recv call site anywhere in src/ fails lint.
//
// Allocation policy: each subsystem owns a decade-aligned block. Keep
// values unique across the file (tags only ever match symmetrically
// between a send and its recv, so renumbering is behavior-neutral, but
// unique values make mailbox dumps and verifier leak reports unambiguous).
#pragma once

namespace sas::bsp::tags {

// -- distmat/spgemm.cpp ------------------------------------------------
// 200–299: SUMMA A^T·A. One tag per k-stage so a stage's panel cannot be
// confused with the next stage's under the FIFO (source, tag) matching.
inline constexpr int kSummaTransposeBase = 200;
/// Tag of SUMMA transpose stage k (k < 100 in any realistic grid).
[[nodiscard]] inline constexpr int summa_transpose(int k) {
  return kSummaTransposeBase + k;
}

// 300–309: 1-D ring A^T·A — the rotating panel hop.
inline constexpr int kSpgemmRing = 300;

// -- distmat/dist_filter.cpp -------------------------------------------
// 310–319: hierarchical pairwise-union stages of the zero-row filter.
inline constexpr int kPairUnionUp = 310;     ///< member → node leader
inline constexpr int kPairUnionDown = 311;   ///< node leader → member
inline constexpr int kPairUnionLeader = 312; ///< leader ↔ leader ring

// -- sketch/exchange.cpp -----------------------------------------------
// 320–329: sketch-panel ring of the distributed estimator exchange.
inline constexpr int kSketchRing = 320;

// -- bsp/comm.cpp (recovery rendezvous) --------------------------------
// 330–339: in-run recovery. The rendezvous itself synchronizes on shared
// state, not messages, but its resync point is stamped into every rank's
// fresh protocol ledger under this tag so the verifier's divergence
// reports show exactly where a replay re-synchronized — and so a ledger
// that diverges *across* a recovery names the recovery, not a phantom
// collective.
inline constexpr int kRecoveryResync = 330;

}  // namespace sas::bsp::tags
