# Empty dependencies file for example_graph_vertex_similarity.
# This may be replaced when dependencies are built.
