# Empty dependencies file for test_sketch.
# This may be replaced when dependencies are built.
