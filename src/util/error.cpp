#include "util/error.hpp"

#include <utility>
#include <vector>

namespace sas::error {

namespace {

thread_local std::vector<std::string> t_context;

}  // namespace

int exit_code_for(const std::exception& e) noexcept {
  if (const auto* typed = dynamic_cast<const Error*>(&e)) {
    return static_cast<int>(typed->code());
  }
  return static_cast<int>(Code::kGeneric);
}

Context::Context(std::string label) { t_context.push_back(std::move(label)); }

Context::~Context() { t_context.pop_back(); }

std::string context_string() {
  std::string out;
  for (const std::string& label : t_context) {
    if (!out.empty()) out += ", ";
    out += label;
  }
  return out;
}

std::exception_ptr annotate_rank_error(std::exception_ptr original, int rank) {
  std::string prefix = "rank " + std::to_string(rank);
  const std::string context = context_string();
  if (!context.empty()) prefix += " [" + context + "]";
  prefix += ": ";
  try {
    std::rethrow_exception(original);
  } catch (const Error& e) {
    return std::make_exception_ptr(
        Error(e.code(), prefix + e.what(), e.severity()));
  } catch (const std::exception& e) {
    return std::make_exception_ptr(Error(Code::kRankFailure, prefix + e.what()));
  } catch (...) {
    return std::make_exception_ptr(
        Error(Code::kRankFailure, prefix + "unknown exception"));
  }
}

}  // namespace sas::error
