#include "core/matrix_io.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "util/error.hpp"

namespace sas::core {

namespace {

constexpr char kMagic[4] = {'S', 'A', 'S', 'M'};
constexpr char kSparseMagic[4] = {'S', 'A', 'S', 'P'};

void check_names(std::int64_t n, const std::vector<std::string>& names) {
  if (static_cast<std::int64_t>(names.size()) != n) {
    throw std::invalid_argument("similarity I/O: one name per sample required");
  }
  for (const std::string& name : names) {
    if (name.find('\n') != std::string::npos) {
      throw std::invalid_argument("similarity I/O: names must not contain newlines");
    }
  }
}

template <typename T>
void write_raw(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

/// Bounded reads: every length/count field is checked against the bytes
/// actually remaining in the stream BEFORE any allocation or indexing, so
/// a truncated or bit-flipped file throws a typed error::CorruptInput
/// instead of allocating gigabytes or reading garbage (ISSUE 6).
class BoundedReader {
 public:
  explicit BoundedReader(std::istream& in) : in_(in) {
    const std::streampos pos = in.tellg();
    if (pos != std::streampos(-1)) {
      in.seekg(0, std::ios::end);
      const std::streampos end = in.tellg();
      in.seekg(pos);
      if (end != std::streampos(-1) && end >= pos) {
        remaining_ = static_cast<std::uint64_t>(end - pos);
        bounded_ = true;
      }
    }
  }

  template <typename T>
  T value(const char* what) {
    check_bytes(sizeof(T), what);
    T value{};
    in_.read(reinterpret_cast<char*>(&value), sizeof(T));
    if (!in_) throw error::CorruptInput(std::string("similarity I/O: truncated ") + what);
    if (bounded_) remaining_ -= sizeof(T);
    return value;
  }

  template <typename T>
  std::vector<T> array(std::uint64_t count, const char* what) {
    if (count > (std::numeric_limits<std::uint64_t>::max)() / sizeof(T)) {
      throw error::CorruptInput(std::string("similarity I/O: absurd count for ") + what);
    }
    check_bytes(count * sizeof(T), what);
    std::vector<T> values(static_cast<std::size_t>(count));
    in_.read(reinterpret_cast<char*>(values.data()),
             static_cast<std::streamsize>(count * sizeof(T)));
    if (!in_) throw error::CorruptInput(std::string("similarity I/O: truncated ") + what);
    if (bounded_) remaining_ -= count * sizeof(T);
    return values;
  }

  std::string bytes(std::uint64_t count, const char* what) {
    check_bytes(count, what);
    std::string out(static_cast<std::size_t>(count), '\0');
    in_.read(out.data(), static_cast<std::streamsize>(count));
    if (!in_) throw error::CorruptInput(std::string("similarity I/O: truncated ") + what);
    if (bounded_) remaining_ -= count;
    return out;
  }

 private:
  void check_bytes(std::uint64_t needed, const char* what) const {
    if (bounded_ && needed > remaining_) {
      throw error::CorruptInput(std::string("similarity I/O: ") + what +
                                " extends past end of input");
    }
  }

  std::istream& in_;
  std::uint64_t remaining_ = 0;
  bool bounded_ = false;  ///< non-seekable streams fall back to read-and-fail
};

void write_name_block(std::ostream& out, const std::vector<std::string>& names) {
  std::string name_block;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i > 0) name_block += '\n';
    name_block += names[i];
  }
  write_raw<std::uint64_t>(out, static_cast<std::uint64_t>(name_block.size()));
  out.write(name_block.data(), static_cast<std::streamsize>(name_block.size()));
}

std::vector<std::string> read_name_block(BoundedReader& reader, std::int64_t n) {
  const auto name_bytes = reader.value<std::uint64_t>("name block length");
  const std::string name_block = reader.bytes(name_bytes, "name block");
  std::vector<std::string> names;
  if (n > 0) {
    std::size_t start = 0;
    while (true) {
      const std::size_t end = name_block.find('\n', start);
      names.push_back(name_block.substr(
          start, end == std::string::npos ? std::string::npos : end - start));
      if (end == std::string::npos) break;
      start = end + 1;
    }
  }
  if (static_cast<std::int64_t>(names.size()) != n) {
    throw error::CorruptInput("similarity I/O: name count mismatch");
  }
  return names;
}

template <typename T>
void write_array(std::ostream& out, const std::vector<T>& values) {
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(values.size() * sizeof(T)));
}

}  // namespace

void write_similarity_binary(std::ostream& out, const std::vector<std::string>& names,
                             const SimilarityMatrix& matrix) {
  check_names(matrix.size(), names);
  out.write(kMagic, sizeof(kMagic));
  write_raw<std::uint64_t>(out, static_cast<std::uint64_t>(matrix.size()));
  write_name_block(out, names);
  write_array(out, matrix.values());
  if (!out) throw error::ConfigError("similarity I/O: write failed");
}

NamedSimilarity read_similarity_binary(std::istream& in) {
  char magic[4] = {};
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw error::CorruptInput("similarity I/O: bad magic");
  }
  BoundedReader reader(in);
  const auto n_raw = reader.value<std::uint64_t>("sample count");
  // n² must stay addressable; anything larger cannot be a real matrix of
  // this file's size anyway (the bounded array read would reject it), but
  // guard the multiplication itself against overflow first.
  if (n_raw > (1ULL << 31)) {
    throw error::CorruptInput("similarity I/O: absurd sample count");
  }
  const auto n = static_cast<std::int64_t>(n_raw);
  NamedSimilarity result;
  result.names = read_name_block(reader, n);
  result.matrix =
      SimilarityMatrix(n, reader.array<double>(n_raw * n_raw, "matrix values"));
  return result;
}

void write_similarity_binary_file(const std::string& path,
                                  const std::vector<std::string>& names,
                                  const SimilarityMatrix& matrix) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw error::ConfigError("cannot write similarity file: " + path);
  write_similarity_binary(out, names, matrix);
}

NamedSimilarity read_similarity_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw error::ConfigError("cannot open similarity file: " + path);
  return read_similarity_binary(in);
}

void write_sparse_similarity_binary(std::ostream& out,
                                    const std::vector<std::string>& names,
                                    const SparseSimilarity& sparse) {
  check_names(sparse.size(), names);
  out.write(kSparseMagic, sizeof(kSparseMagic));
  write_raw<std::uint64_t>(out, static_cast<std::uint64_t>(sparse.size()));
  write_name_block(out, names);
  write_raw<std::uint64_t>(out, static_cast<std::uint64_t>(sparse.survivor_count()));
  write_array(out, sparse.survivor_keys());
  write_array(out, sparse.survivor_values());
  write_raw<std::uint64_t>(out, static_cast<std::uint64_t>(sparse.estimate_count()));
  write_array(out, sparse.estimate_keys());
  write_array(out, sparse.estimate_values());
  write_raw<std::uint64_t>(out,
                           static_cast<std::uint64_t>(sparse.union_cardinalities().size()));
  write_array(out, sparse.union_cardinalities());
  if (!out) throw error::ConfigError("similarity I/O: write failed");
}

NamedSparseSimilarity read_sparse_similarity_binary(std::istream& in) {
  char magic[4] = {};
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kSparseMagic, sizeof(kSparseMagic)) != 0) {
    throw error::CorruptInput("similarity I/O: bad sparse magic");
  }
  BoundedReader reader(in);
  const auto n_raw = reader.value<std::uint64_t>("sample count");
  if (n_raw > (1ULL << 31)) {
    throw error::CorruptInput("similarity I/O: absurd sample count");
  }
  const auto n = static_cast<std::int64_t>(n_raw);
  NamedSparseSimilarity result;
  result.names = read_name_block(reader, n);
  const auto survivors = reader.value<std::uint64_t>("survivor count");
  auto survivor_keys = reader.array<std::uint64_t>(survivors, "survivor keys");
  auto survivor_values = reader.array<double>(survivors, "survivor values");
  const auto estimates = reader.value<std::uint64_t>("estimate count");
  auto estimate_keys = reader.array<std::uint64_t>(estimates, "estimate keys");
  auto estimate_values = reader.array<double>(estimates, "estimate values");
  const auto ahat_len = reader.value<std::uint64_t>("union cardinality count");
  auto ahat = reader.array<std::int64_t>(ahat_len, "union cardinalities");
  // The SparseSimilarity constructor re-validates sortedness/ranges; wrap
  // its diagnosis so a corrupted file still surfaces as CorruptInput
  // instead of a generic invariant failure.
  try {
    result.sparse =
        SparseSimilarity(n, std::move(survivor_keys), std::move(survivor_values),
                         std::move(estimate_keys), std::move(estimate_values),
                         std::move(ahat));
  } catch (const error::Error&) {
    throw;
  } catch (const std::exception& e) {
    throw error::CorruptInput(std::string("similarity I/O: invalid SASP content: ") +
                              e.what());
  }
  return result;
}

void write_sparse_similarity_binary_file(const std::string& path,
                                         const std::vector<std::string>& names,
                                         const SparseSimilarity& sparse) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw error::ConfigError("cannot write similarity file: " + path);
  write_sparse_similarity_binary(out, names, sparse);
}

NamedSparseSimilarity read_sparse_similarity_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw error::ConfigError("cannot open similarity file: " + path);
  return read_sparse_similarity_binary(in);
}

void write_similarity_tsv(std::ostream& out, const std::vector<std::string>& names,
                          const SimilarityMatrix& matrix) {
  check_names(matrix.size(), names);
  const std::int64_t n = matrix.size();
  out << "sample";
  for (const std::string& name : names) out << '\t' << name;
  out << '\n';
  out.precision(17);
  for (std::int64_t i = 0; i < n; ++i) {
    out << names[static_cast<std::size_t>(i)];
    for (std::int64_t j = 0; j < n; ++j) out << '\t' << matrix.similarity(i, j);
    out << '\n';
  }
}

}  // namespace sas::core
