// test_analysis.cpp — downstream analyses over Jaccard distances:
// phylogenetic trees (Newick, cophenetic distances, neighbor joining with
// exact recovery on additive matrices), hierarchical clustering with all
// linkages, k-medoids, and proximity-based outlier scores.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "core/similarity_matrix.hpp"
#include "analysis/clustering.hpp"
#include "analysis/neighbor_joining.hpp"
#include "analysis/phylo_tree.hpp"
#include "analysis/similar_pairs.hpp"
#include "analysis/upgma.hpp"
#include "util/rng.hpp"

namespace sas::analysis {
namespace {

// ------------------------------------------------------------- PhyloTree

PhyloTree small_tree() {
  // ((a:1,b:2):3,c:7);
  PhyloTree tree;
  const int root = tree.add_node();
  const int inner = tree.add_node();
  const int a = tree.add_node("a");
  const int b = tree.add_node("b");
  const int c = tree.add_node("c");
  tree.link(root, inner, 3.0);
  tree.link(inner, a, 1.0);
  tree.link(inner, b, 2.0);
  tree.link(root, c, 7.0);
  return tree;
}

TEST(PhyloTree, NewickRendersStructure) {
  const std::string newick = small_tree().to_newick();
  EXPECT_EQ(newick, "((a:1.000000,b:2.000000):3.000000,c:7.000000);");
}

TEST(PhyloTree, LeavesAndRoot) {
  const PhyloTree tree = small_tree();
  EXPECT_EQ(tree.root(), 0);
  const auto leaves = tree.leaves();
  ASSERT_EQ(leaves.size(), 3u);
  EXPECT_EQ(tree.node(leaves[0]).name, "a");
}

TEST(PhyloTree, CopheneticDistances) {
  const auto d = small_tree().cophenetic_distances();
  // leaf order: a, b, c
  ASSERT_EQ(d.size(), 9u);
  EXPECT_DOUBLE_EQ(d[0 * 3 + 1], 3.0);   // a-b: 1 + 2
  EXPECT_DOUBLE_EQ(d[0 * 3 + 2], 11.0);  // a-c: 1 + 3 + 7
  EXPECT_DOUBLE_EQ(d[1 * 3 + 2], 12.0);  // b-c: 2 + 3 + 7
  EXPECT_DOUBLE_EQ(d[2 * 3 + 1], 12.0);  // symmetric
  EXPECT_DOUBLE_EQ(d[0], 0.0);
}

TEST(PhyloTree, LinkRejectsDoubleParent) {
  PhyloTree tree;
  const int a = tree.add_node();
  const int b = tree.add_node();
  const int c = tree.add_node();
  tree.link(a, b, 1.0);
  EXPECT_THROW(tree.link(c, b, 1.0), std::logic_error);
}

// ------------------------------------------------------ neighbor joining

TEST(NeighborJoining, TextbookFourTaxaExample) {
  // Classic additive matrix; NJ must reproduce it exactly.
  const std::vector<std::string> names{"a", "b", "c", "d"};
  const std::vector<double> d{
      0, 7, 11, 14,
      7, 0, 6, 9,
      11, 6, 0, 7,
      14, 9, 7, 0};
  const PhyloTree tree = neighbor_joining(d, names);
  const auto leaves = tree.leaves();
  const auto coph = tree.cophenetic_distances();
  // Map leaf order back to input order.
  std::map<std::string, std::size_t> pos;
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    pos[tree.node(leaves[i]).name] = i;
  }
  const auto nl = static_cast<std::int64_t>(leaves.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    for (std::size_t j = 0; j < names.size(); ++j) {
      EXPECT_NEAR(coph[static_cast<std::size_t>(
                      static_cast<std::int64_t>(pos[names[i]]) * nl +
                      static_cast<std::int64_t>(pos[names[j]]))],
                  d[i * 4 + j], 1e-9)
          << names[i] << "-" << names[j];
    }
  }
}

/// Random additive matrices: generate a random tree with positive branch
/// lengths, take its cophenetic matrix, and require exact recovery.
class NjRecovery : public ::testing::TestWithParam<int> {};

TEST_P(NjRecovery, RecoversAdditiveMatrices) {
  const int leaves = GetParam();
  Rng rng(static_cast<std::uint64_t>(leaves) * 17);

  // Random caterpillar-ish tree through sequential joins.
  PhyloTree truth;
  std::vector<int> open;
  for (int i = 0; i < leaves; ++i) {
    open.push_back(truth.add_node("t" + std::to_string(i)));
  }
  while (open.size() > 1) {
    const auto a = static_cast<std::size_t>(rng.uniform(open.size()));
    std::size_t b = a;
    while (b == a) b = static_cast<std::size_t>(rng.uniform(open.size()));
    const int parent = truth.add_node();
    truth.link(parent, open[a], 0.1 + rng.uniform_real());
    truth.link(parent, open[b], 0.1 + rng.uniform_real());
    std::vector<int> next;
    for (std::size_t i = 0; i < open.size(); ++i) {
      if (i != a && i != b) next.push_back(open[i]);
    }
    next.push_back(parent);
    open = std::move(next);
  }

  const auto truth_leaves = truth.leaves();
  std::vector<std::string> names;
  for (int leaf : truth_leaves) names.push_back(truth.node(leaf).name);
  const auto d = truth.cophenetic_distances();

  const PhyloTree rebuilt = neighbor_joining(d, names);
  const auto rebuilt_leaves = rebuilt.leaves();
  const auto coph = rebuilt.cophenetic_distances();
  std::map<std::string, std::size_t> pos;
  for (std::size_t i = 0; i < rebuilt_leaves.size(); ++i) {
    pos[rebuilt.node(rebuilt_leaves[i]).name] = i;
  }
  const auto nl = static_cast<std::int64_t>(names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    for (std::size_t j = 0; j < names.size(); ++j) {
      EXPECT_NEAR(coph[static_cast<std::size_t>(
                      static_cast<std::int64_t>(pos[names[i]]) * nl +
                      static_cast<std::int64_t>(pos[names[j]]))],
                  d[i * static_cast<std::size_t>(nl) + j], 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, NjRecovery, ::testing::Values(2, 3, 4, 6, 9, 14));

TEST(NeighborJoining, RejectsBadInput) {
  EXPECT_THROW(neighbor_joining({0}, {"a"}), std::invalid_argument);
  EXPECT_THROW(neighbor_joining({0, 1, 1}, {"a", "b"}), std::invalid_argument);
}

// -------------------------------------------------------------- clustering

/// Block-structured distances: two tight groups {0,1,2} and {3,4}, far apart.
std::vector<double> planted_two_clusters() {
  const std::int64_t n = 5;
  std::vector<double> d(static_cast<std::size_t>(n * n), 0.9);
  auto set = [&](std::int64_t i, std::int64_t j, double v) {
    d[static_cast<std::size_t>(i * n + j)] = v;
    d[static_cast<std::size_t>(j * n + i)] = v;
  };
  for (std::int64_t i = 0; i < n; ++i) d[static_cast<std::size_t>(i * n + i)] = 0.0;
  set(0, 1, 0.1);
  set(0, 2, 0.15);
  set(1, 2, 0.12);
  set(3, 4, 0.05);
  return d;
}

class LinkageTest : public ::testing::TestWithParam<Linkage> {};

TEST_P(LinkageTest, RecoversPlantedClusters) {
  const auto d = planted_two_clusters();
  const auto merges = hierarchical_cluster(d, 5, GetParam());
  ASSERT_EQ(merges.size(), 4u);
  // Heights must be non-decreasing for these clean planted data.
  for (std::size_t i = 1; i < merges.size(); ++i) {
    EXPECT_GE(merges[i].height, merges[i - 1].height - 1e-12);
  }
  const auto labels = cut_dendrogram(merges, 5, 2);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[0], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[3]);
}

INSTANTIATE_TEST_SUITE_P(Linkages, LinkageTest,
                         ::testing::Values(Linkage::kSingle, Linkage::kComplete,
                                           Linkage::kAverage));

TEST(Clustering, SingleVsCompleteDifferOnChains) {
  // Chain 0-1-2: single linkage merges the chain early, complete late.
  const std::int64_t n = 4;
  std::vector<double> d(static_cast<std::size_t>(n * n), 1.0);
  auto set = [&](std::int64_t i, std::int64_t j, double v) {
    d[static_cast<std::size_t>(i * n + j)] = v;
    d[static_cast<std::size_t>(j * n + i)] = v;
  };
  for (std::int64_t i = 0; i < n; ++i) d[static_cast<std::size_t>(i * n + i)] = 0.0;
  set(0, 1, 0.1);
  set(1, 2, 0.2);
  set(0, 2, 0.8);  // chain: 0 close to 1, 1 close to 2, 0 far from 2
  const auto single = hierarchical_cluster(d, n, Linkage::kSingle);
  const auto complete = hierarchical_cluster(d, n, Linkage::kComplete);
  // Second merge height: single takes min(0.2, ...) = 0.2; complete 0.8.
  EXPECT_NEAR(single[1].height, 0.2, 1e-12);
  EXPECT_NEAR(complete[1].height, 0.8, 1e-12);
}

TEST(Clustering, CutToTrivialExtremes) {
  const auto d = planted_two_clusters();
  const auto merges = hierarchical_cluster(d, 5, Linkage::kAverage);
  const auto one = cut_dendrogram(merges, 5, 1);
  for (int label : one) EXPECT_EQ(label, 0);
  const auto all = cut_dendrogram(merges, 5, 5);
  std::set<int> distinct(all.begin(), all.end());
  EXPECT_EQ(distinct.size(), 5u);
}

TEST(Clustering, KMedoidsRecoversPlantedClusters) {
  const auto d = planted_two_clusters();
  const auto labels = k_medoids(d, 5, 2, /*seed=*/123);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[0], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[3]);
}

TEST(Clustering, KMedoidsValidatesArguments) {
  const auto d = planted_two_clusters();
  EXPECT_THROW(k_medoids(d, 5, 0, 1), std::invalid_argument);
  EXPECT_THROW(k_medoids(d, 5, 6, 1), std::invalid_argument);
}

TEST(Outliers, FlagsTheIsolatedSample) {
  // Sample 4 is far from everything; 0..3 are mutually close.
  const std::int64_t n = 5;
  std::vector<double> d(static_cast<std::size_t>(n * n), 0.1);
  for (std::int64_t i = 0; i < n; ++i) {
    d[static_cast<std::size_t>(i * n + i)] = 0.0;
    d[static_cast<std::size_t>(i * n + 4)] = 0.95;
    d[static_cast<std::size_t>(4 * n + i)] = 0.95;
  }
  d[static_cast<std::size_t>(4 * n + 4)] = 0.0;
  const auto scores = knn_outlier_scores(d, n, 2);
  for (int i = 0; i < 4; ++i) EXPECT_LT(scores[static_cast<std::size_t>(i)], scores[4]);
}

TEST(Outliers, ValidatesNeighborCount) {
  const auto d = planted_two_clusters();
  EXPECT_THROW(knn_outlier_scores(d, 5, 0), std::invalid_argument);
  EXPECT_THROW(knn_outlier_scores(d, 5, 5), std::invalid_argument);
}

// ------------------------------------------------------------------ UPGMA

TEST(Upgma, RecoversUltrametricMatricesExactly) {
  // Ultrametric input: cophenetic distance = merge height. ((a,b),(c,d))
  // with heights 0.2 for {a,b}, 0.3 for {c,d}, 0.8 at the root.
  const std::vector<std::string> names{"a", "b", "c", "d"};
  const std::vector<double> d{
      0.0, 0.2, 0.8, 0.8,
      0.2, 0.0, 0.8, 0.8,
      0.8, 0.8, 0.0, 0.3,
      0.8, 0.8, 0.3, 0.0};
  const PhyloTree tree = upgma(d, names);
  const auto leaves = tree.leaves();
  const auto coph = tree.cophenetic_distances();
  std::map<std::string, std::size_t> pos;
  for (std::size_t i = 0; i < leaves.size(); ++i) pos[tree.node(leaves[i]).name] = i;
  const auto nl = static_cast<std::int64_t>(leaves.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    for (std::size_t j = 0; j < names.size(); ++j) {
      EXPECT_NEAR(coph[static_cast<std::size_t>(
                      static_cast<std::int64_t>(pos[names[i]]) * nl +
                      static_cast<std::int64_t>(pos[names[j]]))],
                  d[i * 4 + j], 1e-12);
    }
  }
}

TEST(Upgma, TreesAreUltrametric) {
  // Every leaf must sit at the same distance from the root, even on
  // non-ultrametric input (UPGMA's molecular-clock assumption).
  Rng rng(99);
  const std::int64_t n = 7;
  std::vector<double> d(static_cast<std::size_t>(n * n), 0.0);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = i + 1; j < n; ++j) {
      const double v = 0.1 + rng.uniform_real();
      d[static_cast<std::size_t>(i * n + j)] = v;
      d[static_cast<std::size_t>(j * n + i)] = v;
    }
  }
  std::vector<std::string> names;
  for (std::int64_t i = 0; i < n; ++i) names.push_back("t" + std::to_string(i));
  const PhyloTree tree = upgma(d, names);

  std::vector<double> to_root(static_cast<std::size_t>(tree.node_count()), 0.0);
  for (int pass = 0; pass < tree.node_count(); ++pass) {
    for (int i = 0; i < tree.node_count(); ++i) {
      if (tree.node(i).parent != -1) {
        to_root[static_cast<std::size_t>(i)] =
            to_root[static_cast<std::size_t>(tree.node(i).parent)] +
            tree.node(i).branch_length;
      }
    }
  }
  const auto leaves = tree.leaves();
  for (std::size_t i = 1; i < leaves.size(); ++i) {
    EXPECT_NEAR(to_root[static_cast<std::size_t>(leaves[i])],
                to_root[static_cast<std::size_t>(leaves[0])], 1e-9);
  }
}

TEST(Upgma, SingleTaxonAndValidation) {
  const PhyloTree tree = upgma({0.0}, {"only"});
  EXPECT_EQ(tree.leaves().size(), 1u);
  EXPECT_THROW((void)upgma({}, {}), std::invalid_argument);
  EXPECT_THROW((void)upgma({0.0, 1.0}, {"a", "b"}), std::invalid_argument);
}

// ---------------------------------------------------- similar-pair queries

core::SimilarityMatrix toy_similarity() {
  // 4 samples: (0,1) most similar, then (2,3), then the cross pairs.
  return core::SimilarityMatrix(
      4, {1.0, 0.9, 0.1, 0.2,
          0.9, 1.0, 0.3, 0.1,
          0.1, 0.3, 1.0, 0.8,
          0.2, 0.1, 0.8, 1.0});
}

TEST(SimilarPairs, TopKOrdersDescending) {
  const auto pairs = top_k_pairs(toy_similarity(), 3);
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_EQ(pairs[0].a, 0);
  EXPECT_EQ(pairs[0].b, 1);
  EXPECT_DOUBLE_EQ(pairs[0].similarity, 0.9);
  EXPECT_EQ(pairs[1].a, 2);
  EXPECT_EQ(pairs[1].b, 3);
  EXPECT_DOUBLE_EQ(pairs[2].similarity, 0.3);
}

TEST(SimilarPairs, TopKClampsAndValidates) {
  EXPECT_EQ(top_k_pairs(toy_similarity(), 100).size(), 6u);  // all pairs
  EXPECT_EQ(top_k_pairs(toy_similarity(), 0).size(), 0u);
  EXPECT_THROW((void)top_k_pairs(toy_similarity(), -1), std::invalid_argument);
}

TEST(SimilarPairs, ThresholdFiltersInclusively) {
  const auto pairs = pairs_above(toy_similarity(), 0.8);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_DOUBLE_EQ(pairs[0].similarity, 0.9);
  EXPECT_DOUBLE_EQ(pairs[1].similarity, 0.8);
  EXPECT_TRUE(pairs_above(toy_similarity(), 0.95).empty());
}

TEST(SimilarPairs, NearestNeighboursOfAQuery) {
  const auto nn = nearest_neighbours(toy_similarity(), 2, 2);
  ASSERT_EQ(nn.size(), 2u);
  // Sample 2's closest is 3 (0.8), then 1 (0.3).
  EXPECT_EQ(nn[0].b, 3);
  EXPECT_DOUBLE_EQ(nn[0].similarity, 0.8);
  EXPECT_DOUBLE_EQ(nn[1].similarity, 0.3);
  EXPECT_THROW((void)nearest_neighbours(toy_similarity(), 9, 1), std::out_of_range);
}

}  // namespace
}  // namespace sas::analysis
