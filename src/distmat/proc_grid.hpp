// proc_grid.hpp — the √(p/c) × √(p/c) × c processor grid (paper §III-C).
//
// SimilarityAtScale parallelizes the AᵀA product over a 3D grid: each of
// the c layers computes 1/c of the contributions to B on a square s×s
// 2D grid (s = ⌊√(p/c)⌋), and the layer contributions are reduced at the
// end. ProcGrid carves the world communicator into the sub-communicators
// the SUMMA stages need:
//   row_comm   — ranks sharing (layer, grid row): broadcasts along rows
//   col_comm   — ranks sharing (layer, grid col): broadcasts along columns
//   fiber_comm — ranks sharing (row, col) across layers: the final B sum
//
// If p is not exactly s²·c, the s²·c lowest world ranks are active and the
// rest idle through the collective split calls (MPI_UNDEFINED style); the
// benches report the active rank count.
#pragma once

#include <optional>

#include "bsp/comm.hpp"

namespace sas::distmat {

class ProcGrid {
 public:
  /// Build the grid over `world` with replication factor `layers` (the
  /// paper's c). Collective: every world rank must call it.
  ProcGrid(bsp::Comm& world, int layers = 1);

  [[nodiscard]] int side() const noexcept { return side_; }          ///< s
  [[nodiscard]] int layers() const noexcept { return layers_; }      ///< c
  [[nodiscard]] int active_ranks() const noexcept { return side_ * side_ * layers_; }
  [[nodiscard]] bool active() const noexcept { return active_; }

  /// Grid coordinates of this rank (valid only when active()).
  [[nodiscard]] int layer() const noexcept { return layer_; }
  [[nodiscard]] int grid_row() const noexcept { return grid_row_; }
  [[nodiscard]] int grid_col() const noexcept { return grid_col_; }

  /// World rank of grid position (layer, row, col).
  [[nodiscard]] int world_rank_of(int layer, int row, int col) const noexcept {
    return layer * side_ * side_ + row * side_ + col;
  }

  [[nodiscard]] bsp::Comm& world() noexcept { return *world_; }
  [[nodiscard]] bsp::Comm& row_comm() noexcept { return *row_comm_; }
  [[nodiscard]] bsp::Comm& col_comm() noexcept { return *col_comm_; }
  [[nodiscard]] bsp::Comm& fiber_comm() noexcept { return *fiber_comm_; }
  /// All active ranks (used for grid-wide data redistribution).
  [[nodiscard]] bsp::Comm& grid_comm() noexcept { return *grid_comm_; }

 private:
  bsp::Comm* world_;
  int side_ = 1;
  int layers_ = 1;
  bool active_ = false;
  int layer_ = 0;
  int grid_row_ = 0;
  int grid_col_ = 0;
  std::optional<bsp::Comm> grid_comm_;
  std::optional<bsp::Comm> row_comm_;
  std::optional<bsp::Comm> col_comm_;
  std::optional<bsp::Comm> fiber_comm_;
};

}  // namespace sas::distmat
