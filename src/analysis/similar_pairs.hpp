// similar_pairs.hpp — similar-sample discovery (paper Fig. 1 step 8).
//
// The first downstream application the paper draws: "Application:
// similar sample discovery" — given the all-pairs similarity matrix,
// surface the most related samples (to augment datasets with similar
// samples, §II-B/[64]) or every pair above a similarity threshold (the
// screen-style query). The dense overloads run over the full matrix the
// exact/sketch pipelines produce on the root rank. Hybrid runs hand
// their thresholded output in directly — either the candidate mask over
// a dense matrix (candidate_pairs) or, in the default sparse-output
// mode, the SparseSimilarity view whose survivor list IS the candidate
// pair set: those overloads never touch (or require) an n² structure
// and never surface sketch-estimated (pruned) values as if exact.
#pragma once

#include <cstdint>
#include <vector>

#include "core/similarity_matrix.hpp"
#include "distmat/pair_mask.hpp"

namespace sas::analysis {

struct ScoredPair {
  std::int64_t a = 0;
  std::int64_t b = 0;        ///< a < b
  double similarity = 0.0;
};

/// The k most similar distinct pairs (i < j), descending by similarity;
/// ties broken by (a, b) for determinism. k is clamped to the pair count.
[[nodiscard]] std::vector<ScoredPair> top_k_pairs(const core::SimilarityMatrix& matrix,
                                                  std::int64_t k);

/// Every distinct pair with similarity >= threshold, descending.
[[nodiscard]] std::vector<ScoredPair> pairs_above(const core::SimilarityMatrix& matrix,
                                                  double threshold);

/// Every distinct candidate pair of a hybrid run (off-diagonal mask
/// entries, which carry exactly rescored similarities), optionally
/// re-thresholded on the exact value, descending. Only the mask's pairs
/// are visited — O(candidates) instead of O(n²) — whichever mask
/// representation (dense bitset or sparse CSR) the run produced.
[[nodiscard]] std::vector<ScoredPair> candidate_pairs(
    const core::SimilarityMatrix& matrix, const distmat::CandidateMask& candidates,
    double threshold = 0.0);

/// Sparse-output form: the survivors of a SparseSimilarity (exactly
/// rescored values), optionally re-thresholded, descending. O(survivors).
[[nodiscard]] std::vector<ScoredPair> candidate_pairs(
    const core::SparseSimilarity& sparse, double threshold = 0.0);

/// The k most similar distinct pairs of a sparse-output run, descending.
/// Survivors dominate by construction (they cleared the prune threshold);
/// scored-but-pruned estimates fill out k when fewer survivors exist.
[[nodiscard]] std::vector<ScoredPair> top_k_pairs(const core::SparseSimilarity& sparse,
                                                  std::int64_t k);

/// For one query sample, its `k` nearest neighbours (most similar other
/// samples), descending.
[[nodiscard]] std::vector<ScoredPair> nearest_neighbours(
    const core::SimilarityMatrix& matrix, std::int64_t query, std::int64_t k);

}  // namespace sas::analysis
