# Empty compiler generated dependencies file for bench_ablation_algorithm.
# This may be replaced when dependencies are built.
