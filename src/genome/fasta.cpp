#include "genome/fasta.hpp"

#include <fstream>
#include <stdexcept>

#include "util/error.hpp"

namespace sas::genome {

namespace {

void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

void split_header(const std::string& line, SequenceRecord& record) {
  const std::size_t ws = line.find_first_of(" \t", 1);
  if (ws == std::string::npos) {
    record.id = line.substr(1);
  } else {
    record.id = line.substr(1, ws - 1);
    const std::size_t desc = line.find_first_not_of(" \t", ws);
    if (desc != std::string::npos) record.description = line.substr(desc);
  }
}

std::ifstream open_or_throw(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw error::ConfigError("cannot open sequence file: " + path);
  return in;
}

}  // namespace

std::vector<SequenceRecord> read_fasta(std::istream& in) {
  std::vector<SequenceRecord> records;
  std::string line;
  bool have_record = false;
  while (std::getline(in, line)) {
    strip_cr(line);
    if (line.empty()) continue;
    if (line[0] == '>') {
      records.emplace_back();
      split_header(line, records.back());
      have_record = true;
    } else {
      if (!have_record) {
        throw error::CorruptInput("read_fasta: sequence data before first header");
      }
      records.back().sequence += line;
    }
  }
  return records;
}

std::vector<SequenceRecord> read_fasta_file(const std::string& path) {
  auto in = open_or_throw(path);
  return read_fasta(in);
}

std::vector<SequenceRecord> read_fastq(std::istream& in) {
  std::vector<SequenceRecord> records;
  std::string header;
  std::string sequence;
  std::string plus;
  std::string quality;
  while (std::getline(in, header)) {
    strip_cr(header);
    if (header.empty()) continue;
    if (header[0] != '@') throw error::CorruptInput("read_fastq: expected '@' header");
    if (!std::getline(in, sequence) || !std::getline(in, plus) ||
        !std::getline(in, quality)) {
      throw error::CorruptInput("read_fastq: truncated record");
    }
    strip_cr(sequence);
    strip_cr(plus);
    strip_cr(quality);
    if (plus.empty() || plus[0] != '+') {
      throw error::CorruptInput("read_fastq: expected '+' separator");
    }
    if (quality.size() != sequence.size()) {
      throw error::CorruptInput("read_fastq: quality/sequence length mismatch");
    }
    SequenceRecord record;
    split_header(header, record);
    record.sequence = std::move(sequence);
    records.push_back(std::move(record));
  }
  return records;
}

std::vector<SequenceRecord> read_fastq_file(const std::string& path) {
  auto in = open_or_throw(path);
  return read_fastq(in);
}

void write_fasta(std::ostream& out, const std::vector<SequenceRecord>& records,
                 int width) {
  if (width < 1) throw std::invalid_argument("write_fasta: width must be positive");
  for (const SequenceRecord& record : records) {
    out << '>' << record.id;
    if (!record.description.empty()) out << ' ' << record.description;
    out << '\n';
    for (std::size_t pos = 0; pos < record.sequence.size();
         pos += static_cast<std::size_t>(width)) {
      out << record.sequence.substr(pos, static_cast<std::size_t>(width)) << '\n';
    }
  }
}

void write_fasta_file(const std::string& path,
                      const std::vector<SequenceRecord>& records, int width) {
  std::ofstream out(path);
  if (!out) throw error::ConfigError("cannot write FASTA file: " + path);
  write_fasta(out, records, width);
}

}  // namespace sas::genome
