// test_genome.cpp — the genomics substrate: 2-bit k-mer codec, canonical
// forms, FASTA/FASTQ I/O, sample building with noise thresholds, the
// synthetic mutation model, and sequencing-read simulation.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "genome/alphabet.hpp"
#include "genome/fasta.hpp"
#include "genome/kmer.hpp"
#include "genome/kmer_spectrum.hpp"
#include "genome/phylip.hpp"
#include "genome/sample.hpp"
#include "genome/synthetic.hpp"
#include "util/rng.hpp"

namespace sas::genome {
namespace {

// --------------------------------------------------------------- alphabet

TEST(Alphabet, CodesRoundTripAndComplement) {
  for (char base : {'A', 'C', 'G', 'T'}) {
    const int code = base_code(base);
    ASSERT_NE(code, kInvalidBase);
    EXPECT_EQ(code_base(code), base);
    EXPECT_EQ(complement_base(complement_base(base)), base);
  }
  EXPECT_EQ(base_code('a'), base_code('A'));
  EXPECT_EQ(base_code('N'), kInvalidBase);
  EXPECT_EQ(base_code('x'), kInvalidBase);
  EXPECT_EQ(complement_base('A'), 'T');
  EXPECT_EQ(complement_base('C'), 'G');
  EXPECT_EQ(complement_base('N'), 'N');
}

// ------------------------------------------------------------------ k-mer

class CodecTest : public ::testing::TestWithParam<int> {};

TEST_P(CodecTest, EncodeDecodeRoundTrip) {
  const int k = GetParam();
  const KmerCodec codec(k);
  Rng rng(k);
  for (int trial = 0; trial < 50; ++trial) {
    const std::string kmer = random_genome(k, rng);
    EXPECT_EQ(codec.decode(codec.encode(kmer)), kmer);
  }
}

TEST_P(CodecTest, ReverseComplementIsAnInvolutionAndMatchesStrings) {
  const int k = GetParam();
  const KmerCodec codec(k);
  Rng rng(1000 + k);
  for (int trial = 0; trial < 50; ++trial) {
    const std::string kmer = random_genome(k, rng);
    const std::uint64_t code = codec.encode(kmer);
    const std::uint64_t rc = codec.reverse_complement(code);
    EXPECT_EQ(codec.reverse_complement(rc), code);
    std::string rc_string(kmer.rbegin(), kmer.rend());
    for (char& base : rc_string) base = complement_base(base);
    EXPECT_EQ(codec.decode(rc), rc_string);
  }
}

TEST_P(CodecTest, OddKHasNoSelfReverseComplement) {
  // The paper picks k = 19 over 20 precisely "to avoid the possibility of
  // k-mers being equal to their reverse complements".
  const int k = GetParam();
  if (k % 2 == 0) GTEST_SKIP() << "property holds only for odd k";
  const KmerCodec codec(k);
  Rng rng(7 * k);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t code = rng() & ((1ULL << (2 * k)) - 1);
    EXPECT_NE(codec.reverse_complement(code), code);
  }
}

TEST_P(CodecTest, CanonicalIsStrandNeutral) {
  const int k = GetParam();
  const KmerCodec codec(k);
  Rng rng(99 + k);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t code = rng() & ((1ULL << (2 * k)) - 1);
    EXPECT_EQ(codec.canonical(code), codec.canonical(codec.reverse_complement(code)));
    EXPECT_LE(codec.canonical(code), code);
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, CodecTest, ::testing::Values(1, 2, 3, 5, 11, 19, 31));

TEST(Codec, RejectsBadK) {
  EXPECT_THROW(KmerCodec(0), std::invalid_argument);
  EXPECT_THROW(KmerCodec(32), std::invalid_argument);
}

TEST(Codec, UniverseIs4PowK) {
  EXPECT_EQ(KmerCodec(3).universe(), 64);
  EXPECT_EQ(KmerCodec(19).universe(), std::int64_t{1} << 38);
  EXPECT_EQ(KmerCodec(31).universe(), std::int64_t{1} << 62);
}

TEST(Codec, CanonicalKmersWindowCount) {
  // "in a sequence AATGTC, there are four 3-mers (AAT, ATG, TGT, GTC)".
  const KmerCodec codec(3);
  const auto kmers = codec.canonical_kmers("AATGTC");
  ASSERT_EQ(kmers.size(), 4u);
  EXPECT_EQ(kmers[0], codec.canonical(codec.encode("AAT")));
  EXPECT_EQ(kmers[1], codec.canonical(codec.encode("ATG")));
  EXPECT_EQ(kmers[2], codec.canonical(codec.encode("TGT")));
  EXPECT_EQ(kmers[3], codec.canonical(codec.encode("GTC")));
  EXPECT_EQ(codec.canonical_kmers("AATG").size(), 2u);  // and three 4-mers... for k=3
}

TEST(Codec, InvalidBasesBreakWindows) {
  const KmerCodec codec(3);
  // ACGNTGA: windows with N are skipped -> only TGA survives.
  const auto kmers = codec.canonical_kmers("ACGNTGA");
  ASSERT_EQ(kmers.size(), 2u);  // ACG and TGA
  EXPECT_EQ(kmers[0], codec.canonical(codec.encode("ACG")));
  EXPECT_EQ(kmers[1], codec.canonical(codec.encode("TGA")));
}

TEST(Codec, SequenceAndItsReverseComplementShareCanonicalSets) {
  const KmerCodec codec(5);
  Rng rng(31337);
  const std::string forward = random_genome(300, rng);
  std::string reverse(forward.rbegin(), forward.rend());
  for (char& base : reverse) base = complement_base(base);
  auto a = codec.canonical_kmers(forward);
  auto b = codec.canonical_kmers(reverse);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(Codec, ShortSequenceYieldsNothing) {
  const KmerCodec codec(9);
  EXPECT_TRUE(codec.canonical_kmers("ACGTACG").empty());
  EXPECT_TRUE(codec.canonical_kmers("").empty());
}

// ------------------------------------------------------------------ FASTA

TEST(Fasta, ParsesMultiRecordMultiLine) {
  std::istringstream in(
      ">seq1 first sample\nACGT\nACG\n\n>seq2\nTTTT\n>seq3 desc here\nGG\n");
  const auto records = read_fasta(in);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].id, "seq1");
  EXPECT_EQ(records[0].description, "first sample");
  EXPECT_EQ(records[0].sequence, "ACGTACG");
  EXPECT_EQ(records[1].id, "seq2");
  EXPECT_TRUE(records[1].description.empty());
  EXPECT_EQ(records[2].sequence, "GG");
}

TEST(Fasta, HandlesCrlf) {
  std::istringstream in(">s\r\nACGT\r\nAC\r\n");
  const auto records = read_fasta(in);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].sequence, "ACGTAC");
}

TEST(Fasta, RejectsLeadingSequenceData) {
  std::istringstream in("ACGT\n>s\nACGT\n");
  EXPECT_THROW(read_fasta(in), std::runtime_error);
}

TEST(Fasta, WriteReadRoundTripWithWrapping) {
  std::vector<SequenceRecord> records{{"alpha", "sample one", std::string(157, 'A')},
                                      {"beta", "", "ACGTACGT"}};
  std::ostringstream out;
  write_fasta(out, records, 60);
  std::istringstream in(out.str());
  const auto parsed = read_fasta(in);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].id, records[0].id);
  EXPECT_EQ(parsed[0].description, records[0].description);
  EXPECT_EQ(parsed[0].sequence, records[0].sequence);
  EXPECT_EQ(parsed[1].sequence, records[1].sequence);
}

TEST(Fastq, ParsesFourLineRecords) {
  std::istringstream in("@r1 lane1\nACGT\n+\nIIII\n@r2\nGG\n+r2\nII\n");
  const auto records = read_fastq(in);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].id, "r1");
  EXPECT_EQ(records[0].sequence, "ACGT");
  EXPECT_EQ(records[1].sequence, "GG");
}

TEST(Fastq, RejectsMalformedRecords) {
  std::istringstream truncated("@r1\nACGT\n+\n");
  EXPECT_THROW(read_fastq(truncated), std::runtime_error);
  std::istringstream bad_sep("@r1\nACGT\nX\nIIII\n");
  EXPECT_THROW(read_fastq(bad_sep), std::runtime_error);
  std::istringstream bad_len("@r1\nACGT\n+\nII\n");
  EXPECT_THROW(read_fastq(bad_len), std::runtime_error);
}

// ----------------------------------------------------------------- sample

TEST(Sample, BuildCollectsUniqueCanonicalKmers) {
  const KmerCodec codec(3);
  const KmerSample sample =
      build_sample("s", {{"a", "", "AATGTC"}, {"b", "", "AATG"}}, codec);
  // AATGTC -> {AAT, ATG, TGT, GTC}; AATG adds no new canonical codes
  // beyond AAT/ATG. Canonicalization may merge some.
  std::set<std::uint64_t> expected;
  for (const char* kmer : {"AAT", "ATG", "TGT", "GTC"}) {
    expected.insert(codec.canonical(codec.encode(kmer)));
  }
  EXPECT_EQ(std::set<std::uint64_t>(sample.kmers.begin(), sample.kmers.end()), expected);
  EXPECT_TRUE(std::is_sorted(sample.kmers.begin(), sample.kmers.end()));
}

TEST(Sample, MinCountFiltersRareKmers) {
  const KmerCodec codec(3);
  // Canonical counts across the two records: AAA twice (in AAAT and AAA),
  // AAT once. (ACG/CGT would collide — they are reverse complements.)
  const KmerSample keep_all =
      build_sample("s", {{"a", "", "AAAT"}, {"b", "", "AAA"}}, codec, 1);
  const KmerSample thresholded =
      build_sample("s", {{"a", "", "AAAT"}, {"b", "", "AAA"}}, codec, 2);
  EXPECT_EQ(keep_all.size(), 2);
  ASSERT_EQ(thresholded.size(), 1);
  EXPECT_EQ(thresholded.kmers[0], codec.canonical(codec.encode("AAA")));
}

TEST(Sample, JaccardOfSamplesMatchesDefinition) {
  KmerSample a{"a", {1, 2, 3, 10}};
  KmerSample b{"b", {2, 3, 4}};
  EXPECT_DOUBLE_EQ(jaccard_of_samples(a, b), 2.0 / 5.0);
  KmerSample empty{"e", {}};
  EXPECT_DOUBLE_EQ(jaccard_of_samples(empty, empty), 1.0);
  EXPECT_DOUBLE_EQ(jaccard_of_samples(a, empty), 0.0);
}

TEST(Sample, FileRoundTrip) {
  const std::string path = std::filesystem::temp_directory_path() / "sas_sample_rt.txt";
  const KmerSample sample{"sample X", {0, 5, 42, 1ULL << 40}};
  write_sample_file(path, sample);
  const KmerSample parsed = read_sample_file(path);
  EXPECT_EQ(parsed.name, sample.name);
  EXPECT_EQ(parsed.kmers, sample.kmers);
  std::remove(path.c_str());
}

// -------------------------------------------------------------- synthetic

TEST(Synthetic, RandomGenomeUsesAllBases) {
  Rng rng(5);
  const std::string genome = random_genome(4000, rng);
  EXPECT_EQ(genome.size(), 4000u);
  for (char base : {'A', 'C', 'G', 'T'}) {
    EXPECT_NE(genome.find(base), std::string::npos);
  }
}

TEST(Synthetic, MutationRateControlsHammingDistance) {
  Rng rng(6);
  const std::string genome = random_genome(20000, rng);
  const std::string mutated = mutate_point(genome, 0.05, rng);
  ASSERT_EQ(mutated.size(), genome.size());
  std::int64_t differing = 0;
  for (std::size_t i = 0; i < genome.size(); ++i) {
    differing += genome[i] != mutated[i] ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(differing) / 20000.0, 0.05, 0.01);
  // Zero rate: identical.
  EXPECT_EQ(mutate_point(genome, 0.0, rng), genome);
}

TEST(Synthetic, ExpectedJaccardFormulaAndInverse) {
  for (int k : {11, 19, 31}) {
    for (double j : {0.05, 0.5, 0.9, 0.99}) {
      const double r = mutation_rate_for_jaccard(k, j);
      EXPECT_NEAR(expected_jaccard_after_mutation(k, r), j, 1e-12);
    }
  }
  EXPECT_DOUBLE_EQ(expected_jaccard_after_mutation(19, 0.0), 1.0);
}

TEST(Synthetic, MutationModelPredictsMeasuredJaccard) {
  // Property check of the model the accuracy experiments depend on.
  const int k = 15;
  const KmerCodec codec(k);
  Rng rng(77);
  const std::string genome = random_genome(60000, rng);
  for (double target : {0.85, 0.5}) {
    const double rate = mutation_rate_for_jaccard(k, target);
    const std::string mutated = mutate_point(genome, rate, rng);
    const KmerSample a = build_sample("a", {{"g", "", genome}}, codec);
    const KmerSample b = build_sample("b", {{"g", "", mutated}}, codec);
    EXPECT_NEAR(jaccard_of_samples(a, b), target, 0.08) << "target " << target;
  }
}

TEST(Synthetic, SimulatedReadsCoverGenome) {
  Rng rng(8);
  const std::string genome = random_genome(5000, rng);
  const auto reads = simulate_reads(genome, 100, 10.0, 0.0, rng);
  EXPECT_EQ(reads.size(), 500u);  // coverage * len / read_len
  // Error-free reads at 10x coverage recover (nearly) all genome k-mers.
  const KmerCodec codec(15);
  const KmerSample from_reads = build_sample("r", reads, codec);
  const KmerSample truth = build_sample("t", {{"g", "", genome}}, codec);
  EXPECT_GT(jaccard_of_samples(from_reads, truth), 0.95);
}

TEST(Synthetic, SequencingErrorsCreateNoiseThatMinCountRemoves) {
  Rng rng(9);
  const std::string genome = random_genome(5000, rng);
  const auto reads = simulate_reads(genome, 100, 30.0, 0.005, rng);
  const KmerCodec codec(15);
  const KmerSample truth = build_sample("t", {{"g", "", genome}}, codec);
  const KmerSample noisy = build_sample("r", reads, codec, 1);
  const KmerSample filtered = build_sample("r", reads, codec, 3);
  // The threshold must strictly improve agreement with the truth set.
  EXPECT_GT(jaccard_of_samples(filtered, truth), jaccard_of_samples(noisy, truth));
  EXPECT_GT(jaccard_of_samples(filtered, truth), 0.9);
}

TEST(Synthetic, EvolvePopulationShapesTree) {
  Rng rng(10);
  const std::string ancestor = random_genome(2000, rng);
  const auto pop = evolve_population(ancestor, 6, 0.01, rng);
  EXPECT_EQ(pop.leaf_genomes.size(), 6u);
  EXPECT_EQ(pop.leaf_names.size(), 6u);
  EXPECT_EQ(pop.parent.size(), 11u);  // 2*leaves - 1 nodes
  EXPECT_EQ(pop.parent[0], -1);       // root first
  for (std::size_t i = 1; i < pop.parent.size(); ++i) {
    EXPECT_GE(pop.parent[i], 0);
    EXPECT_LT(pop.parent[i], static_cast<int>(i));
  }
}

// --------------------------------------------------------------- spectrum

TEST(Spectrum, CountsMultiplicitiesExactly) {
  const KmerCodec codec(3);
  // "AAAA": windows AAA, AAA -> canonical AAA twice. "AAA": once more.
  // "CCC" -> canonical min(CCC, GGG) = CCC once.
  const auto spectrum =
      build_spectrum({{"a", "", "AAAA"}, {"b", "", "AAA"}, {"c", "", "CCC"}}, codec);
  EXPECT_EQ(spectrum.distinct_kmers, 2);
  EXPECT_EQ(spectrum.total_kmers, 4);
  EXPECT_EQ(spectrum.histogram.at(1), 1);  // CCC
  EXPECT_EQ(spectrum.histogram.at(3), 1);  // AAA
  EXPECT_EQ(spectrum.kept_at(1), 2);
  EXPECT_EQ(spectrum.kept_at(2), 1);
  EXPECT_EQ(spectrum.kept_at(4), 0);
}

TEST(Spectrum, AssembledGenomeSuggestsKeepingEverything) {
  // Every k-mer of a random genome occurs ~once: no valley, threshold 1.
  Rng rng(3);
  const KmerCodec codec(17);
  const auto spectrum =
      build_spectrum({{"g", "", random_genome(20000, rng)}}, codec);
  EXPECT_EQ(suggest_min_count(spectrum), 1);
}

TEST(Spectrum, NoisyReadsSuggestValleyThreshold) {
  // 30x coverage with 0.5% error: error k-mers pile up at count 1-2,
  // genomic k-mers near 30 — the valley sits in between.
  Rng rng(4);
  const std::string genome = random_genome(8000, rng);
  const auto reads = simulate_reads(genome, 100, 30.0, 0.005, rng);
  const KmerCodec codec(17);
  const auto spectrum = build_spectrum(reads, codec);
  const int threshold = suggest_min_count(spectrum);
  EXPECT_GT(threshold, 1);
  EXPECT_LT(threshold, 15);  // far below the coverage peak

  // The suggested threshold must improve agreement with the truth set.
  const KmerSample truth = build_sample("t", {{"g", "", genome}}, codec);
  const KmerSample raw = build_sample("r", reads, codec, 1);
  const KmerSample cleaned = build_sample("r", reads, codec, threshold);
  EXPECT_GT(jaccard_of_samples(cleaned, truth), jaccard_of_samples(raw, truth));
}

TEST(Spectrum, SuggestHandlesDegenerateHistograms) {
  KmerSpectrum empty;
  EXPECT_EQ(suggest_min_count(empty), 1);
  KmerSpectrum single;
  single.histogram[5] = 10;  // everything at count 5
  EXPECT_EQ(suggest_min_count(single), 1);
}

// ----------------------------------------------------------------- PHYLIP

TEST(Phylip, WriteReadRoundTrip) {
  const std::vector<std::string> names{"sampleA", "sampleB", "sampleC"};
  const std::vector<double> d{0, 0.25, 0.5, 0.25, 0, 0.125, 0.5, 0.125, 0};
  std::ostringstream out;
  write_phylip(out, names, d, 3);
  std::istringstream in(out.str());
  const PhylipMatrix parsed = read_phylip(in);
  EXPECT_EQ(parsed.n, 3);
  EXPECT_EQ(parsed.names, names);
  for (std::size_t i = 0; i < d.size(); ++i) EXPECT_NEAR(parsed.distances[i], d[i], 1e-6);
}

TEST(Phylip, ValidatesDimensions) {
  std::ostringstream out;
  EXPECT_THROW(write_phylip(out, {"a"}, {0, 0}, 1), std::invalid_argument);
}

}  // namespace
}  // namespace sas::genome
