// comm_model_validation — validates the paper's §III-C BSP analysis.
//
// The cost model predicts, per batch and per rank,
//     W(p, c) = O( z/√(cp) + c·n²/p )        [bandwidth term]
// for the SUMMA schedule, versus Θ(z) for the 1D ring and Θ(n²) for the
// MapReduce allreduce pattern (§VI). Because the bsp runtime counts every
// byte each rank sends, the bound is checked directly:
//   (a) rank sweep at c=1 — measured max bytes/rank must track z/√p+n²/p,
//   (b) replication sweep at fixed p — input term shrinks as 1/√c while
//       the output-reduction term grows as c,
//   (c) schedule comparison — SUMMA vs ring vs MapReduce bytes.
#include <cmath>

#include "baselines/mapreduce_jaccard.hpp"
#include "bench_common.hpp"

using namespace sas;
using namespace sas::bench;

namespace {

/// Predicted bandwidth volume per rank (bytes): entries are 24-byte
/// triplets, the dense reduction moves 8-byte words.
double predicted_bytes(double z, double n, int p, int c) {
  const double input_term = 24.0 * 2.0 * z / std::sqrt(static_cast<double>(c * p));
  const double output_term = 8.0 * static_cast<double>(c) * n * n / p;
  return input_term + output_term;
}

}  // namespace

int main() {
  const std::int64_t m = std::int64_t{1} << 19;
  const std::int64_t n = 512;
  const double density = 2e-3;
  const double z = density * static_cast<double>(m) * static_cast<double>(n);
  print_header("BSP cost model validation",
               "Besta et al., IPDPS'20, §III-C analysis + §VI MapReduce comparison",
               "m=2^19, n=512, density=2e-3 (z ~ " +
                   fmt_count(static_cast<std::uint64_t>(z)) + " nonzeros), 4 batches");
  const core::BernoulliSampleSource source(m, n, density, 13);

  // (a) rank sweep, c = 1.
  std::printf("(a) SUMMA rank sweep (c=1): measured max bytes/rank vs model\n");
  TextTable ranks_table({"active ranks", "measured bytes/rank", "model bytes/rank",
                         "measured/model", "supersteps"});
  for (int ranks : {1, 4, 9, 16, 25}) {
    core::Config config;
    config.batch_count = 4;
    const RunResult run = run_driver(ranks, source, config);
    const int active = run.result.active_ranks;
    const double model = predicted_bytes(z, static_cast<double>(n), active, 1);
    ranks_table.add_row(
        {std::to_string(active), fmt_bytes(static_cast<double>(run.cost.max_bytes)),
         fmt_bytes(model),
         fmt_fixed(static_cast<double>(run.cost.max_bytes) / model, 2),
         std::to_string(run.cost.max_supersteps)});
  }
  ranks_table.print();
  std::printf("Shape to match: measured/model stays O(1) across the sweep — the\n"
              "constant-factor ratio must not grow with p.\n\n");

  // (b) replication sweep at p = 16.
  std::printf("(b) replication sweep at 16 ranks: c ∈ {1, 2, 4}\n");
  TextTable c_table({"c", "grid", "measured bytes/rank", "model bytes/rank",
                     "measured/model"});
  for (int c : {1, 2, 4}) {
    core::Config config;
    config.batch_count = 4;
    config.replication = c;
    const RunResult run = run_driver(16, source, config);
    const int active = run.result.active_ranks;
    const int side = static_cast<int>(std::sqrt(active / c));
    const double model = predicted_bytes(z, static_cast<double>(n), active, c);
    c_table.add_row({std::to_string(c),
                     std::to_string(side) + "x" + std::to_string(side) + "x" +
                         std::to_string(c),
                     fmt_bytes(static_cast<double>(run.cost.max_bytes)), fmt_bytes(model),
                     fmt_fixed(static_cast<double>(run.cost.max_bytes) / model, 2)});
  }
  c_table.print();
  std::printf("Shape to match: the model (input term ↓ 1/√c, output term ↑ c) keeps\n"
              "tracking the measurement as c varies.\n\n");

  // (c) schedule comparison at 16 ranks, at two operating points:
  // input-dominated (z >> n²) and output-dominated (n² >> z/√p) — the
  // latter is where the MapReduce allreduce pattern hurts most.
  auto compare_schedules = [&](const core::SampleSource& src, std::int64_t batches,
                               const char* label) {
    std::printf("(c) schedule comparison at 16 ranks — %s\n", label);
    TextTable sched({"schedule", "max bytes/rank", "total bytes", "max flops/rank"});
    core::Config config;
    config.batch_count = batches;
    const RunResult summa = run_driver(16, src, config);
    sched.add_row({"SUMMA 2D (this work)",
                   fmt_bytes(static_cast<double>(summa.cost.max_bytes)),
                   fmt_bytes(static_cast<double>(summa.cost.total_bytes)),
                   fmt_count(summa.cost.max_flops)});
    config.algorithm = core::Algorithm::kRing1D;
    const RunResult ring = run_driver(16, src, config);
    sched.add_row({"1D ring (panel circulation)",
                   fmt_bytes(static_cast<double>(ring.cost.max_bytes)),
                   fmt_bytes(static_cast<double>(ring.cost.total_bytes)),
                   fmt_count(ring.cost.max_flops)});
    std::vector<bsp::CostCounters> mr_counters;
    (void)baselines::mapreduce_jaccard_threaded(16, src, batches, &mr_counters);
    const auto mr = bsp::CostSummary::aggregate(mr_counters);
    sched.add_row({"MapReduce + allreduce (sec. VI)",
                   fmt_bytes(static_cast<double>(mr.max_bytes)),
                   fmt_bytes(static_cast<double>(mr.total_bytes)),
                   fmt_count(mr.max_flops)});
    sched.print();
    std::printf("\n");
  };
  compare_schedules(source, 4, "input-dominated (n=512, z~536k)");
  const core::BernoulliSampleSource wide(std::int64_t{1} << 19, 1024, 2e-4, 17);
  compare_schedules(wide, 4, "output-dominated (n=1024, z~107k)");

  std::printf("Shape to match: SUMMA moves the fewest bytes per rank at both operating\n"
              "points; the ring pays Θ(z) input circulation; MapReduce pays the Θ(n²)\n"
              "allreduce the paper criticizes — dominant at the second operating point\n"
              "— plus quadratic reduce-side work on dense attribute rows.\n\n");

  // (d) cost-model drift gate: every instrumented collective books its
  // α-β prediction next to the measured time (obs::CollectiveScope). The
  // gate is deliberately loose — in-process "ranks" are threads
  // oversubscribing one host, so measured times wander far from the
  // network model — but it catches the failure modes that matter: a
  // primitive whose prediction went to zero (counter plumbing broke) or
  // a drift ratio off by >4 decades (model or clock broke). The barrier
  // row is printed but exempt from the ratio range: its measured time is
  // pure scheduler noise at p ≫ cores.
  std::printf("(d) cost-model drift: α-β predicted vs measured per primitive\n");
  obs::Observer observer(16, std::size_t{1} << 15);
  {
    core::Config config;
    config.batch_count = 2;
    (void)run_driver(16, source, config, &observer);
    config.algorithm = core::Algorithm::kRing1D;
    (void)run_driver(16, source, config, &observer);
  }
  const auto drift = observer.aggregate_drift();
  const auto fmt_sci = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3e", v);
    return std::string(buf);
  };
  TextTable drift_table(
      {"primitive", "samples", "predicted s", "measured s", "measured/predicted"});
  int data_primitives_ok = 0;
  bool gate_failed = false;
  for (std::size_t i = 0; i < obs::kPrimitiveCount; ++i) {
    const obs::DriftCell& cell = drift[i];
    if (cell.samples == 0) continue;
    const auto prim = static_cast<obs::Primitive>(i);
    const double ratio = cell.predicted_seconds > 0.0
                             ? cell.measured_seconds / cell.predicted_seconds
                             : 0.0;
    drift_table.add_row({obs::primitive_name(prim), fmt_count(cell.samples),
                         fmt_sci(cell.predicted_seconds), fmt_sci(cell.measured_seconds),
                         fmt_sci(ratio)});
    if (prim == obs::Primitive::kBarrier) continue;
    if (cell.predicted_seconds > 0.0 && cell.measured_seconds > 0.0 &&
        ratio >= 1e-4 && ratio <= 1e4) {
      ++data_primitives_ok;
    } else {
      std::printf("DRIFT GATE: %s out of range (predicted %.3e s, measured %.3e s)\n",
                  obs::primitive_name(prim), cell.predicted_seconds,
                  cell.measured_seconds);
      gate_failed = true;
    }
  }
  drift_table.print();
  if (data_primitives_ok < 3) {
    std::printf("DRIFT GATE: only %d data primitives exercised (need >= 3)\n",
                data_primitives_ok);
    gate_failed = true;
  }
  std::printf("drift gate: %d data primitives in range [1e-4, 1e4] — %s\n",
              data_primitives_ok, gate_failed ? "FAIL" : "ok");

  // (e) two-tier drift gate: same runs under a simulated 2-node topology.
  // The hierarchical collectives split traffic into intra-/inter-node
  // tiers and the predictions switch to the two-(α, β) form of
  // bsp::BspMachine — the drift ratios must stay inside the same loose
  // range (a tier booked against the wrong constants shows up as a
  // decades-off ratio), and both tiers must actually carry bytes.
  std::printf("\n(e) two-tier drift: 2 simulated nodes, per-tier traffic + drift\n");
  obs::Observer hier_observer(16, std::size_t{1} << 15);
  bsp::CostSummary hier_cost;
  {
    core::Config config;
    config.batch_count = 2;
    config.nodes = 2;
    std::vector<bsp::CostCounters> counters;
    (void)core::similarity_at_scale_threaded(16, source, config, &counters,
                                             &hier_observer);
    hier_cost = bsp::CostSummary::aggregate(counters);
    config.algorithm = core::Algorithm::kRing1D;
    counters.clear();
    (void)core::similarity_at_scale_threaded(16, source, config, &counters,
                                             &hier_observer);
    const auto ring_cost = bsp::CostSummary::aggregate(counters);
    hier_cost.total_bytes += ring_cost.total_bytes;
    hier_cost.total_bytes_intra += ring_cost.total_bytes_intra;
  }
  std::printf("traffic split: %s intra-node, %s inter-node\n",
              fmt_bytes(static_cast<double>(hier_cost.total_bytes_intra)).c_str(),
              fmt_bytes(static_cast<double>(hier_cost.total_bytes -
                                            hier_cost.total_bytes_intra))
                  .c_str());
  const auto hier_drift = hier_observer.aggregate_drift();
  TextTable hier_table(
      {"primitive", "samples", "predicted s", "measured s", "measured/predicted"});
  int hier_primitives_ok = 0;
  for (std::size_t i = 0; i < obs::kPrimitiveCount; ++i) {
    const obs::DriftCell& cell = hier_drift[i];
    if (cell.samples == 0) continue;
    const auto prim = static_cast<obs::Primitive>(i);
    const double ratio = cell.predicted_seconds > 0.0
                             ? cell.measured_seconds / cell.predicted_seconds
                             : 0.0;
    hier_table.add_row({obs::primitive_name(prim), fmt_count(cell.samples),
                        fmt_sci(cell.predicted_seconds), fmt_sci(cell.measured_seconds),
                        fmt_sci(ratio)});
    if (prim == obs::Primitive::kBarrier) continue;
    if (cell.predicted_seconds > 0.0 && cell.measured_seconds > 0.0 &&
        ratio >= 1e-4 && ratio <= 1e4) {
      ++hier_primitives_ok;
    } else {
      std::printf(
          "TWO-TIER DRIFT GATE: %s out of range (predicted %.3e s, measured %.3e s)\n",
          obs::primitive_name(prim), cell.predicted_seconds, cell.measured_seconds);
      gate_failed = true;
    }
  }
  hier_table.print();
  if (hier_primitives_ok < 3) {
    std::printf("TWO-TIER DRIFT GATE: only %d data primitives exercised (need >= 3)\n",
                hier_primitives_ok);
    gate_failed = true;
  }
  if (hier_cost.total_bytes_intra == 0 ||
      hier_cost.total_bytes_intra >= hier_cost.total_bytes) {
    std::printf("TWO-TIER DRIFT GATE: tier split degenerate (intra %llu of %llu)\n",
                static_cast<unsigned long long>(hier_cost.total_bytes_intra),
                static_cast<unsigned long long>(hier_cost.total_bytes));
    gate_failed = true;
  }
  std::printf("two-tier drift gate: %d data primitives in range [1e-4, 1e4] — %s\n",
              hier_primitives_ok, gate_failed ? "FAIL" : "ok");
  return gate_failed ? 1 : 0;
}
