// runtime.hpp — SPMD launcher for the in-process BSP runtime.
//
// Runtime::run(p, fn) executes `fn` on p rank-threads, each receiving its
// own Comm bound to a shared world communicator, and returns the per-rank
// cost counters. This is the reproduction's stand-in for `mpirun -np p`
// (DESIGN.md §2): the SPMD code inside `fn` is structured exactly as the
// MPI program would be, and rank counts may exceed physical cores (the
// scaling benches oversubscribe deliberately; modelled α-β-γ cost is the
// machine-independent signal).
//
// Failure semantics (fault.hpp; ROADMAP "Failure semantics"): when any
// rank's fn throws, the world's AbortToken trips with the error annotated
// by rank and stage/batch context, every peer blocked in a mailbox wait
// or barrier unwinds with RankAborted, and run() rethrows the ORIGINAL
// annotated error after joining — a failing rank terminates the whole
// run instead of deadlocking it. The single-rank fast path wraps errors
// identically, so messages match between p = 1 and p > 1.
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <vector>

#include "bsp/comm.hpp"
#include "bsp/cost_model.hpp"
#include "bsp/fault.hpp"

namespace sas::obs {
class Observer;
}

namespace sas::bsp {

/// Optional failure-semantics and observability knobs of one run.
struct RuntimeOptions {
  /// Deadline for every blocking primitive. 0 falls back to the
  /// SAS_WATCHDOG_MS environment variable (CI sets it); unset/0 there
  /// disables the watchdog.
  std::chrono::milliseconds watchdog{0};

  /// Deterministic fault-injection plan (tests); null = none.
  std::shared_ptr<const FaultPlan> fault_plan;

  /// Debug-build BSP protocol verifier (bsp/protocol.hpp): every rank
  /// ledgers each collective's (op, tag, element size, shape); ledgers
  /// are cross-checked at barriers and at run exit, and unreceived
  /// point-to-point messages at exit become error::ProtocolError — a
  /// diverging rank fails immediately with named ledger entries instead
  /// of a watchdog timeout. false falls back to the SAS_VERIFY_PROTOCOL
  /// environment variable (CI arms it); verification never changes
  /// results, only adds the checks.
  bool verify_protocol = false;

  /// Simulated node count for the hierarchical two-tier collectives:
  /// ranks are grouped into `nodes` contiguous blocks (comm.hpp), sends
  /// inside a block are costed on the intra tier, and broadcast /
  /// allreduce / allgather_v / alltoall_v run as intra+inter stages.
  /// 1 (the default) keeps the flat single-tier collectives.
  int nodes = 1;

  /// Span/metric collection (obs/trace.hpp): each rank thread is bound
  /// to observer->rank(r) for the duration of the run, and on abort the
  /// failure message plus the blocked-site snapshot are noted into the
  /// observer before the error is rethrown. Must outlive the run and
  /// have nranks() >= the run's rank count. Null = observability off.
  obs::Observer* observer = nullptr;
};

class Runtime {
 public:
  /// Run `fn(comm)` as `nranks` SPMD threads. Blocks until all ranks
  /// finish. If any rank throws, the abort token trips, all peers unwind,
  /// and the first failure's error — annotated with rank and context —
  /// is rethrown after all threads have been joined.
  ///
  /// Returns the per-rank cost counters accumulated during the run.
  static std::vector<CostCounters> run(int nranks,
                                       const std::function<void(Comm&)>& fn);
  static std::vector<CostCounters> run(int nranks, const std::function<void(Comm&)>& fn,
                                       const RuntimeOptions& options);
};

}  // namespace sas::bsp
