// graph_vertex_similarity — the graph-analytics use case (paper §II-F).
//
// Vertex similarity |N(v)∩N(u)| / |N(v)∪N(u)| over adjacency sets: the
// indicator matrix is the graph's adjacency matrix (paper Table III,
// "Similarity of vertices: neighbors of one vertex / neighbors of one
// vertex"). A planted two-community graph is generated, all-pairs vertex
// similarity computed by the driver, and the similarities are used for
// Jarvis–Patrick-style community recovery plus link prediction (paper
// §II-F: "discovering missing links").
//
// Usage:
//   graph_vertex_similarity [--vertices 24] [--ranks 4] [--p-in 0.6] [--p-out 0.05]
#include <cstdio>
#include <vector>

#include "analysis/clustering.hpp"
#include "core/driver.hpp"
#include "core/sample_source.hpp"
#include "util/args.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace sas;

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const auto n = args.get_int("vertices", 24);
  const int ranks = static_cast<int>(args.get_int("ranks", 4));
  const double p_in = args.get_double("p-in", 0.6);
  const double p_out = args.get_double("p-out", 0.05);

  // Planted partition graph: two communities of n/2 vertices.
  Rng rng(4242);
  std::vector<std::vector<std::int64_t>> adjacency(static_cast<std::size_t>(n));
  auto community = [n](std::int64_t v) { return v < n / 2 ? 0 : 1; };
  std::int64_t edges = 0;
  // One held-out intra-community edge for the link-prediction demo.
  const std::int64_t held_u = 0;
  const std::int64_t held_v = 1;
  for (std::int64_t u = 0; u < n; ++u) {
    for (std::int64_t v = u + 1; v < n; ++v) {
      const double p = community(u) == community(v) ? p_in : p_out;
      if (u == held_u && v == held_v) continue;  // withhold this edge
      if (rng.bernoulli(p)) {
        adjacency[static_cast<std::size_t>(u)].push_back(v);
        adjacency[static_cast<std::size_t>(v)].push_back(u);
        ++edges;
      }
    }
  }
  std::printf("Planted-partition graph: %lld vertices, %lld edges "
              "(p_in=%.2f, p_out=%.2f); edge (%lld,%lld) withheld\n\n",
              static_cast<long long>(n), static_cast<long long>(edges), p_in, p_out,
              static_cast<long long>(held_u), static_cast<long long>(held_v));

  // Samples = neighborhood sets; universe = vertex ids.
  const core::VectorSampleSource source(n, std::move(adjacency));
  const auto result = core::similarity_at_scale_threaded(ranks, source, core::Config{});

  // Community recovery from the similarity-derived distances.
  const auto merges =
      analysis::hierarchical_cluster(result.similarity.distance_matrix(), n,
                                     analysis::Linkage::kAverage);
  const auto labels = analysis::cut_dendrogram(merges, n, 2);
  std::int64_t agree = 0;
  for (std::int64_t v = 0; v < n; ++v) {
    if ((labels[static_cast<std::size_t>(v)] == labels[0]) == (community(v) == 0)) {
      ++agree;
    }
  }
  const double accuracy =
      std::max(agree, n - agree) / static_cast<double>(n);  // label-permutation safe
  std::printf("Community recovery from vertex Jaccard: %.1f%% of vertices correct\n\n",
              100.0 * accuracy);

  // Link prediction: rank non-adjacent pairs by similarity.
  TextTable table({"candidate pair", "Jaccard", "same community?"});
  std::vector<std::tuple<double, std::int64_t, std::int64_t>> candidates;
  for (std::int64_t u = 0; u < n; ++u) {
    for (std::int64_t v = u + 1; v < n; ++v) {
      bool adjacent = false;
      for (std::int64_t w : source.sample(u)) adjacent = adjacent || (w == v);
      if (!adjacent) {
        candidates.emplace_back(result.similarity.similarity(u, v), u, v);
      }
    }
  }
  std::sort(candidates.rbegin(), candidates.rend());
  std::printf("Top predicted missing links (withheld edge should rank high):\n");
  for (std::size_t i = 0; i < candidates.size() && i < 5; ++i) {
    const auto [jac, u, v] = candidates[i];
    std::string pair = "(" + std::to_string(u) + "," + std::to_string(v) + ")";
    if (u == held_u && v == held_v) pair += "  <-- withheld edge";
    table.add_row({pair, fmt_fixed(jac, 3),
                   community(u) == community(v) ? "yes" : "no"});
  }
  table.print();
  return 0;
}
