// bottomk.hpp — Mash-style bottom-k MinHash (paper refs [63], [57]).
//
// The paper's principal comparison point, absorbed from the old
// src/baselines/minhash.* into the sketch subsystem: a single 64-bit
// hash family member emulates a random permutation, and the sketch keeps
// the k smallest distinct hash values. The Jaccard estimator walks the
// merged order of two sketches and reports the fraction of shared
// elements among the k smallest of the union — exactly Mash's estimator,
// including its §I failure mode on highly dissimilar pairs, which
// bench/minhash_accuracy quantifies.
//
// == Accuracy / bytes =====================================================
//
// The shared-fraction estimate over the k union minima has variance
// ≈ J(1−J)/k, giving the documented mean-absolute-error bound
//
//   mean |Ĵ − J| ≤ bottomk_jaccard_error_bound(k) = 1.5/√k
//
// (k = 1024 → 8192 wire bytes per sample, bound ≈ 0.047). The sketch
// becomes EXACT when it holds the whole union (|A ∪ B| ≤ k). Wire size
// is 8 bytes per slot — 64/b× larger than one-permutation MinHash at
// equal k — because the estimator needs full hash values to identify
// shared elements in the merged order.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "sketch/sketch.hpp"

namespace sas::sketch {

/// Documented mean-absolute-error bound of the bottom-k Jaccard estimate
/// (see the accuracy note above).
[[nodiscard]] inline double bottomk_jaccard_error_bound(std::int64_t sketch_size) noexcept {
  return 1.5 / std::sqrt(static_cast<double>(sketch_size));
}

class BottomKSketch {
 public:
  /// Empty sketch retaining the `sketch_size` smallest distinct hashes.
  /// Both sides of a comparison/merge must share (sketch_size, seed).
  BottomKSketch(std::size_t sketch_size, std::uint64_t seed);

  /// Sketch the element ids (e.g. canonical k-mer codes) in bulk.
  BottomKSketch(std::span<const std::uint64_t> elements, std::size_t sketch_size,
                std::uint64_t seed);

  /// Observe one element. Order-independent and idempotent.
  void add(std::uint64_t element);

  [[nodiscard]] std::size_t sketch_size() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] const std::vector<std::uint64_t>& hashes() const noexcept {
    return hashes_;  // sorted ascending, size <= sketch_size
  }

  /// Mergeability: the sketch of A ∪ B from the sketches of A and B —
  /// the property that lets Mash sketch streams incrementally.
  [[nodiscard]] static BottomKSketch merge(const BottomKSketch& a, const BottomKSketch& b);

  /// Mash's Jaccard estimator: of the k smallest hashes of the union of
  /// both sketches, the fraction present in both.
  [[nodiscard]] static double estimate_jaccard(const BottomKSketch& a,
                                               const BottomKSketch& b);

  /// Wire blob (header + the sorted hash values). The hashes ARE the
  /// full state, so wire() == serialize() and the blob stays mergeable
  /// after deserialize().
  [[nodiscard]] std::vector<std::uint64_t> serialize() const;
  [[nodiscard]] std::vector<std::uint64_t> wire() const { return serialize(); }
  [[nodiscard]] static BottomKSketch deserialize(std::span<const std::uint64_t> wire);

 private:
  std::size_t capacity_ = 0;
  std::uint64_t seed_ = 0;
  std::vector<std::uint64_t> hashes_;
};

/// The Mash distance (Ondov et al. 2016): d = −(1/k)·ln(2j/(1+j)), an
/// estimate of the per-base mutation rate from a Jaccard estimate j of
/// k-mer sets. Returns 1.0 when j = 0 (saturated, as in Mash).
[[nodiscard]] double mash_distance(double jaccard_estimate, int k);

/// All-pairs Jaccard estimates from per-sample element sets, the way the
/// Mash tool computes a distance table. Returns row-major n×n estimates.
[[nodiscard]] std::vector<double> minhash_all_pairs(
    const std::vector<std::vector<std::uint64_t>>& samples, std::size_t sketch_size,
    std::uint64_t seed);

/// Wire-level Jaccard estimate (used by estimate_jaccard_wire): the
/// merged-order walk over two sorted hash payloads.
[[nodiscard]] double bottomk_wire_jaccard(std::span<const std::uint64_t> a,
                                          std::span<const std::uint64_t> b);

}  // namespace sas::sketch
