// gas — the GenomeAtScale command-line tool.
//
// The paper ships GenomeAtScale as a tool that "maintains compatibility
// with standard bioinformatics data formats" so it can be "seamlessly
// integrated into existing analysis pipelines" (§IV, §VII). This binary
// is that tool: Mash-style subcommands over FASTA/FASTQ inputs, sample
// files, PHYLIP matrices, and Newick trees.
//
//   gas sketch   <in.fa|in.fq> ... --k 31 --min-count 1 --out-dir DIR
//                [--estimator hll|minhash|bottomk]
//       Extract canonical k-mer sets ("sorted numerical representation",
//       §IV) from sequence files, one .kmers sample file per input. With
//       --estimator, additionally persist each sample's sketch wire blob
//       (<sample>.kmers.<est>.sketch) next to it; later `gas dist`
//       sketch/hybrid runs with matching parameters load the blobs
//       instead of re-sketching.
//
//   gas dist     <a.kmers> <b.kmers> ... --ranks 8 --batches 16
//                [--phylip out.phylip] [--algorithm summa|ring|serial]
//                [--replication c] [--bits b] [--no-filter]
//                [--estimator exact|hll|minhash|bottomk|hybrid]
//       All-pairs Jaccard via the distributed SimilarityAtScale
//       pipeline; prints the distance matrix and optionally writes
//       PHYLIP for downstream tools. `hybrid` sketch-prunes the pair
//       space at --prune-threshold and rescores survivors exactly.
//
//   gas tree     <dist.phylip> [--out tree.nwk]
//       Neighbor-joining tree from a PHYLIP distance matrix (Fig. 1
//       steps 7/9: phylogenies and MSA guide trees).
//
//   gas simulate --samples 8 --length 20000 --rate 0.01 --out-dir DIR
//                [--reads] [--coverage 20] [--error 0.003]
//       Synthetic corpus generator (mutated relatives of one ancestor,
//       optionally as noisy sequencing reads) for testing pipelines.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/neighbor_joining.hpp"
#include "analysis/similar_pairs.hpp"
#include "analysis/upgma.hpp"
#include "core/config.hpp"
#include "core/matrix_io.hpp"
#include "genome/genome_at_scale.hpp"
#include "genome/kmer_source.hpp"
#include "genome/kmer_spectrum.hpp"
#include "genome/phylip.hpp"
#include "genome/synthetic.hpp"
#include "sketch/bottomk.hpp"
#include "sketch/exchange.hpp"
#include "sketch/hyperloglog.hpp"
#include "sketch/one_perm_minhash.hpp"
#include "sketch/sketch.hpp"
#include "util/args.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace fs = std::filesystem;
using namespace sas;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: gas <sketch|dist|tree|simulate> [args...]\n"
               "  gas sketch <seq files...> --k 31 [--min-count 1 | --auto-threshold]\n"
               "           [--fastq] [--out-dir .]\n"
               "           [--estimator hll|minhash|bottomk] [--sketch-size 1024]\n"
               "           [--hll-precision 12] [--minhash-bits 16] [--sketch-seed 1445]\n"
               "  gas dist <sample files...> --k 31 [--ranks 8] [--batches 16]\n"
               "           [--phylip out] [--similarity-out out.sasm] [--tsv out.tsv]\n"
               "           [--sparse-similarity-out out.sasp]\n"
               "           [--top N | --threshold J] [--algorithm summa|ring|serial]\n"
               "           [--replication 1] [--bits 64] [--no-filter]\n"
               "           [--nodes 1] [--no-numa]\n"
               "           [--estimator exact|hll|minhash|bottomk|hybrid]\n"
               "           [--sketch-size 1024] [--hll-precision 12]\n"
               "           [--minhash-bits 16] [--sketch-seed 1445]\n"
               "           [--hybrid-sketch hll|minhash|bottomk]\n"
               "           [--prune-threshold 0.1] [--prune-slack auto]\n"
               "           [--candidate-mode auto|allpairs|lsh] [--lsh-bands 0]\n"
               "           [--dense-output]\n"
               "           [--checkpoint DIR] [--resume] [--watchdog-ms N]\n"
               "           [--fault-plan SPEC] [--verify-protocol]\n"
               "           [--max-retries N] [--retry-backoff-ms N]\n"
               "           [--quarantine] [--quarantine-manifest out.json]\n"
               "           [--mem-budget-mb N]\n"
               "           [--trace-out run.json] [--report-json report.json]\n"
               "  gas tree <dist.phylip> [--method nj|upgma] [--out tree.nwk]\n"
               "  gas simulate --samples 8 --length 20000 --rate 0.01 "
               "[--reads] [--coverage 20] [--error 0.003] [--seed 1] [--out-dir .]\n"
               "\n"
               "failure semantics (gas dist):\n"
               "  --checkpoint DIR   persist per-batch state; --resume skips completed\n"
               "                     batches (bitwise-identical result)\n"
               "  --watchdog-ms N    abort with a blocked-rank diagnostic if any rank\n"
               "                     waits longer than N ms in a BSP primitive\n"
               "  --fault-plan SPEC  deterministic fault injection for testing:\n"
               "                     'rank=R:op=K:throw|throw_transient|flip[=BYTE]|\n"
               "                     delay=MS[:count=N][:until=A]' (';'-joined);\n"
               "                     throw_transient fires while the batch attempt\n"
               "                     is < A (so retries heal it), count repeats\n"
               "                     the action N times per attempt\n"
               "  --max-retries N    replay a batch up to N times after a transient\n"
               "                     fault (rollback to the batch boundary, resync,\n"
               "                     re-run; replays are bitwise-identical)\n"
               "  --retry-backoff-ms N  base backoff before each replay (doubles per\n"
               "                     attempt, seeded jitter; default 10)\n"
               "  --quarantine       on retry exhaustion or a permanent fault, skip\n"
               "                     the failing batch and complete the run over the\n"
               "                     rest (exit code 9 marks the degraded result;\n"
               "                     the report names every skipped batch)\n"
               "  --quarantine-manifest F  also write the skipped-batch manifest\n"
               "                     (schema sas-quarantine-v1) to F\n"
               "  --mem-budget-mb N  per-rank memory budget: the pipeline's large\n"
               "                     allocations fail as a typed resource-exhausted\n"
               "                     error (exit code 8) instead of an OOM kill\n"
               "  --verify-protocol  arm the BSP protocol verifier: per-rank ledgers\n"
               "                     of every collective's (op, tag, elem, shape),\n"
               "                     cross-checked at barriers and run exit; a rank\n"
               "                     diverging from the collective sequence or leaving\n"
               "                     a send unreceived fails immediately with the\n"
               "                     ledger entries named (exit code 6). Also armed\n"
               "                     by the SAS_VERIFY_PROTOCOL env var (CI does);\n"
               "                     results are unchanged, checks only\n"
               "raw-speed knobs (gas dist):\n"
               "  --nodes N          simulate N nodes: hierarchical two-tier\n"
               "                     collectives (bitwise-identical results) with\n"
               "                     intra/inter traffic costed separately\n"
               "  --no-numa          disable NUMA worker pinning + first-touch\n"
               "                     placement of the multiply stage\n"
               "exit codes: 0 ok, 1 generic error, 2 bad config/usage,\n"
               "            3 corrupt input, 4 rank failure, 5 watchdog timeout,\n"
               "            6 protocol violation (--verify-protocol),\n"
               "            7 transient failure (retries exhausted or disabled),\n"
               "            8 resource exhausted (--mem-budget-mb / disk full),\n"
               "            9 completed DEGRADED (--quarantine skipped batches;\n"
               "              the result is valid over the surviving rows only)\n"
               "\n"
               "observability (gas dist):\n"
               "  --trace-out F      merge every rank's spans (stages, batches,\n"
               "                     collectives, checkpoint ops, LSH phases) into a\n"
               "                     Chrome trace-event JSON loadable in Perfetto;\n"
               "                     aborted runs flush a postmortem timeline\n"
               "  --report-json F    machine-readable run report: per-stage/per-batch\n"
               "                     byte+time tables, per-rank BSP counters and\n"
               "                     histograms, and per-primitive cost-model drift\n"
               "                     (alpha-beta predicted vs measured seconds)\n");
  return 2;
}

std::string stem_of(const std::string& path) {
  return fs::path(path).stem().string();
}

/// Parse a sketch-estimator name; returns false on unknown names.
bool parse_sketch_estimator(const std::string& name, core::Estimator& out) {
  if (name == "hll") {
    out = core::Estimator::kHll;
  } else if (name == "minhash") {
    out = core::Estimator::kMinhash;
  } else if (name == "bottomk") {
    out = core::Estimator::kBottomK;
  } else {
    return false;
  }
  return true;
}

/// Shared sketch-parameter flags of `gas sketch` and `gas dist`; returns
/// false (after printing a usage error) on invalid values.
bool parse_sketch_params(const ArgParser& args, core::Config& core) {
  core.sketch_size = args.get_int("sketch-size", 1024);
  core.hll_precision = static_cast<int>(args.get_int("hll-precision", 12));
  core.minhash_bits = static_cast<int>(args.get_int("minhash-bits", 16));
  core.sketch_seed = static_cast<std::uint64_t>(args.get_int("sketch-seed", 0x5a5));
  // Reject bad sketch parameters here with a usage error; left to the
  // sketch constructors they throw inside the rank threads and abort.
  if (core.sketch_size < 1) {
    std::fprintf(stderr, "gas: --sketch-size must be >= 1\n");
    return false;
  }
  if (core.hll_precision < sketch::HyperLogLog::kMinPrecision ||
      core.hll_precision > sketch::HyperLogLog::kMaxPrecision) {
    std::fprintf(stderr, "gas: --hll-precision must be in [%d, %d]\n",
                 sketch::HyperLogLog::kMinPrecision, sketch::HyperLogLog::kMaxPrecision);
    return false;
  }
  if (core.minhash_bits < 1 || core.minhash_bits > 64 ||
      64 % core.minhash_bits != 0) {
    std::fprintf(stderr, "gas: --minhash-bits must divide 64\n");
    return false;
  }
  return true;
}

/// Wire blob of one whole k-mer set under the config's sketch estimator.
std::vector<std::uint64_t> sketch_sample_wire(const genome::KmerSample& sample,
                                              const core::Config& config) {
  const std::span<const std::uint64_t> kmers(sample.kmers);
  switch (sketch::resolved_sketch_estimator(config)) {
    case core::Estimator::kHll:
      return sketch::HyperLogLog(kmers, config.hll_precision, config.sketch_seed).wire();
    case core::Estimator::kMinhash:
      return sketch::OnePermMinHash(kmers, config.sketch_size, config.minhash_bits,
                                    config.sketch_seed)
          .wire();
    case core::Estimator::kBottomK:
      return sketch::BottomKSketch(kmers, static_cast<std::size_t>(config.sketch_size),
                                   config.sketch_seed)
          .wire();
    default:
      throw std::invalid_argument("sketch_sample_wire: not a sketch estimator");
  }
}

int cmd_sketch(const ArgParser& args) {
  if (args.positional().size() < 2) return usage();
  const int k = static_cast<int>(args.get_int("k", 31));
  const bool fastq = args.get_bool("fastq", false);
  const bool auto_threshold = args.get_bool("auto-threshold", false);
  const fs::path out_dir = args.get_string("out-dir", ".");
  fs::create_directories(out_dir);

  // Optional sketch persistence: write each sample's wire blob next to
  // its .kmers file so matching `gas dist` runs skip re-sketching.
  core::Config sketch_cfg;
  bool persist_sketch = false;
  if (args.has("estimator")) {
    const std::string estimator = args.get_string("estimator", "minhash");
    if (!parse_sketch_estimator(estimator, sketch_cfg.estimator)) {
      std::fprintf(stderr, "gas sketch: unknown --estimator '%s'\n", estimator.c_str());
      return 2;
    }
    if (!parse_sketch_params(args, sketch_cfg)) return 2;
    persist_sketch = true;
  }

  const genome::KmerCodec codec(k);
  for (std::size_t i = 1; i < args.positional().size(); ++i) {
    const std::string& path = args.positional()[i];
    const auto records = fastq ? genome::read_fastq_file(path)
                               : genome::read_fasta_file(path);
    // Noise threshold: explicit --min-count, or the per-sample spectrum
    // valley when --auto-threshold is given (paper §V-A2 preprocessing).
    int min_count = static_cast<int>(args.get_int("min-count", 1));
    if (auto_threshold) {
      min_count = genome::suggest_min_count(genome::build_spectrum(records, codec));
    }
    const auto sample = genome::build_sample(stem_of(path), records, codec, min_count);
    const fs::path out = out_dir / (stem_of(path) + ".kmers");
    genome::write_sample_file(out.string(), sample);
    std::printf("%s: %lld canonical %d-mers (min count %d%s) -> %s\n", path.c_str(),
                static_cast<long long>(sample.size()), k, min_count,
                auto_threshold ? ", auto" : "", out.string().c_str());
    if (persist_sketch) {
      const std::vector<std::uint64_t> blob = sketch_sample_wire(sample, sketch_cfg);
      const std::string blob_path =
          out.string() + "." +
          sketch::estimator_wire_name(sketch_cfg.estimator) + ".sketch";
      sketch::write_wire_file(blob_path, blob);
      std::printf("  sketch blob (%zu words) -> %s\n", blob.size(), blob_path.c_str());
    }
  }
  return 0;
}

int cmd_dist(const ArgParser& args) {
  if (args.positional().size() < 3) {
    std::fprintf(stderr, "gas dist: need at least two sample files\n");
    return 2;
  }
  const int k = static_cast<int>(args.get_int("k", 31));
  genome::GenomeAtScaleOptions options;
  options.k = k;
  options.ranks = static_cast<int>(args.get_int("ranks", 8));
  options.core.batch_count = args.get_int("batches", 16);
  options.core.bit_width = static_cast<int>(args.get_int("bits", 64));
  options.core.replication = static_cast<int>(args.get_int("replication", 1));
  options.core.use_zero_row_filter = !args.get_bool("no-filter", false);
  // Two-tier topology: group ranks into simulated nodes so the
  // collectives run hierarchically and traffic is costed per tier.
  options.core.nodes = static_cast<int>(args.get_int("nodes", 1));
  if (options.core.nodes < 1) {
    std::fprintf(stderr, "gas dist: --nodes must be >= 1\n");
    return 2;
  }
  options.core.numa_aware = !args.get_bool("no-numa", false);
  const std::string algorithm = args.get_string("algorithm", "summa");
  if (algorithm == "ring") {
    options.core.algorithm = core::Algorithm::kRing1D;
  } else if (algorithm == "serial") {
    options.core.algorithm = core::Algorithm::kSerial;
  } else if (algorithm == "summa") {
    options.core.algorithm = core::Algorithm::kSumma;
  } else {
    std::fprintf(stderr, "gas dist: unknown --algorithm '%s'\n", algorithm.c_str());
    return 2;
  }

  // Estimator selection (src/sketch/sketch.hpp documents the tradeoff):
  // exact is the paper's pipeline; the sketch estimators exchange fixed-
  // size summaries instead of k-mer panels, trading a documented error
  // bound for genome-size-independent communication; hybrid sketch-prunes
  // the pair space and rescores the survivors exactly.
  const std::string estimator = args.get_string("estimator", "exact");
  if (estimator == "exact") {
    options.core.estimator = core::Estimator::kExact;
  } else if (estimator == "hybrid") {
    options.core.estimator = core::Estimator::kHybrid;
  } else if (!parse_sketch_estimator(estimator, options.core.estimator)) {
    std::fprintf(stderr, "gas dist: unknown --estimator '%s'\n", estimator.c_str());
    return 2;
  }
  if (!parse_sketch_params(args, options.core)) return 2;
  const std::string hybrid_sketch = args.get_string("hybrid-sketch", "minhash");
  if (!parse_sketch_estimator(hybrid_sketch, options.core.hybrid_sketch)) {
    std::fprintf(stderr, "gas dist: unknown --hybrid-sketch '%s'\n",
                 hybrid_sketch.c_str());
    return 2;
  }
  options.core.prune_threshold = args.get_double("prune-threshold", 0.1);
  if (args.has("prune-slack")) {
    // "auto" keeps the sketch-derived slack (Config::prune_slack < 0);
    // anything else must parse fully as a number ≥ 0 — strtod's silent
    // 0.0 on junk would pin ZERO slack and void the recall guarantee.
    const std::string slack = args.get_string("prune-slack", "auto");
    if (slack != "auto") {
      char* end = nullptr;
      const double value = std::strtod(slack.c_str(), &end);
      if (end == slack.c_str() || *end != '\0' || value < 0.0) {
        std::fprintf(stderr,
                     "gas dist: --prune-slack must be 'auto' or a number >= 0\n");
        return 2;
      }
      options.core.prune_slack = value;
    }
  }
  if (options.core.prune_threshold < 0.0 || options.core.prune_threshold > 1.0) {
    std::fprintf(stderr, "gas dist: --prune-threshold must be in [0, 1]\n");
    return 2;
  }

  // Candidate-pass strategy of the hybrid: all-pairs sketch scoring or
  // LSH banding over the minhash registers (core/config.hpp documents
  // the auto rule and the banding S-curve tradeoff).
  const std::string candidate_mode = args.get_string("candidate-mode", "auto");
  if (candidate_mode == "auto") {
    options.core.candidate_mode = core::CandidateMode::kAuto;
  } else if (candidate_mode == "allpairs") {
    options.core.candidate_mode = core::CandidateMode::kAllPairs;
  } else if (candidate_mode == "lsh") {
    options.core.candidate_mode = core::CandidateMode::kLsh;
    if (options.core.hybrid_sketch != core::Estimator::kMinhash) {
      std::fprintf(stderr,
                   "gas dist: --candidate-mode lsh requires --hybrid-sketch minhash\n");
      return 2;
    }
  } else {
    std::fprintf(stderr, "gas dist: unknown --candidate-mode '%s'\n",
                 candidate_mode.c_str());
    return 2;
  }
  options.core.lsh_bands = args.get_int("lsh-bands", 0);
  if (options.core.lsh_bands < 0) {
    std::fprintf(stderr, "gas dist: --lsh-bands must be >= 0 (0 = auto)\n");
    return 2;
  }
  // Hybrid runs assemble the survivor-sparse output by default (rank 0
  // never holds an n² structure); --dense-output restores the gathered
  // full matrix. Dense artifacts (--phylip/--tsv/--similarity-out) of a
  // sparse run are reconstructed on demand below.
  options.core.dense_output = args.get_bool("dense-output", false);

  // Fault-tolerance knobs (see "failure semantics" in the usage text).
  options.core.checkpoint_dir = args.get_string("checkpoint", "");
  options.core.resume = args.get_bool("resume", false);
  options.core.watchdog_ms = args.get_int("watchdog-ms", 0);
  options.core.fault_plan = args.get_string("fault-plan", "");
  options.core.verify_protocol = args.get_bool("verify-protocol", false);
  if (options.core.resume && options.core.checkpoint_dir.empty()) {
    std::fprintf(stderr, "gas dist: --resume needs --checkpoint DIR\n");
    return 2;
  }
  if (options.core.watchdog_ms < 0) {
    std::fprintf(stderr, "gas dist: --watchdog-ms must be >= 0\n");
    return 2;
  }

  // In-run recovery knobs (see "failure semantics" in the usage text).
  options.core.max_retries = args.get_int("max-retries", 0);
  options.core.retry_backoff_ms = args.get_int("retry-backoff-ms", 10);
  options.core.quarantine = args.get_bool("quarantine", false);
  options.core.quarantine_manifest = args.get_string("quarantine-manifest", "");
  options.core.mem_budget_mb = args.get_int("mem-budget-mb", 0);
  if (options.core.max_retries < 0) {
    std::fprintf(stderr, "gas dist: --max-retries must be >= 0\n");
    return 2;
  }
  if (options.core.retry_backoff_ms < 0) {
    std::fprintf(stderr, "gas dist: --retry-backoff-ms must be >= 0\n");
    return 2;
  }
  if (options.core.mem_budget_mb < 0) {
    std::fprintf(stderr, "gas dist: --mem-budget-mb must be >= 0\n");
    return 2;
  }
  if (!options.core.quarantine_manifest.empty() && !options.core.quarantine) {
    std::fprintf(stderr, "gas dist: --quarantine-manifest needs --quarantine\n");
    return 2;
  }

  // Observability artifacts (see "observability" in the usage text); the
  // driver writes both on success AND on abort (postmortem timeline).
  options.core.trace_out = args.get_string("trace-out", "");
  options.core.report_json = args.get_string("report-json", "");

  std::vector<std::string> paths(args.positional().begin() + 1, args.positional().end());
  const genome::KmerFileSource source(k, paths);
  core::Result result = core::similarity_at_scale_threaded(options.ranks, source,
                                                           options.core);
  const auto names = source.sample_names();
  const auto n = result.n;

  if (result.degraded()) {
    // The run completed, but --quarantine skipped batches: say so up
    // front (and again via exit code 9 below) so nobody mistakes the
    // degraded similarities for the full-universe values.
    std::fprintf(stderr,
                 "gas dist: DEGRADED — %zu of %lld batches quarantined "
                 "(%lld replays ran); similarities cover the surviving "
                 "attribute rows only:\n",
                 result.quarantined.size(),
                 static_cast<long long>(options.core.batch_count),
                 static_cast<long long>(result.retries));
    for (const core::QuarantinedBatch& q : result.quarantined) {
      std::fprintf(stderr,
                   "  batch %lld (rows [%lld, %lld), %lld attempts): %s\n",
                   static_cast<long long>(q.batch),
                   static_cast<long long>(q.row_begin),
                   static_cast<long long>(q.row_end),
                   static_cast<long long>(q.attempts), q.reason.c_str());
    }
  }

  if (options.core.estimator == core::Estimator::kHybrid) {
    const std::int64_t candidates = (result.candidates.count() - n) / 2;
    const core::CandidateMode mode =
        sketch::resolved_candidate_mode(options.core, n);
    std::printf("hybrid: %lld of %lld pairs survived the sketch prune "
                "(threshold %.3f, %s candidates, %s mask, %s output); "
                "survivors rescored exactly\n\n",
                static_cast<long long>(candidates),
                static_cast<long long>(n * (n - 1) / 2),
                options.core.prune_threshold,
                mode == core::CandidateMode::kLsh ? "lsh-banded" : "all-pairs",
                result.candidates.is_sparse() ? "sparse" : "dense",
                result.sparse_output() ? "sparse" : "dense");
  }

  // Dense view on demand: the full-matrix artifacts below reconstruct it
  // once from the sparse output (explicitly quadratic — the CLI's corpora
  // are small; at scale, use --sparse-similarity-out instead).
  core::SimilarityMatrix reconstructed;
  const auto dense_view = [&]() -> const core::SimilarityMatrix& {
    if (!result.sparse_output()) return result.similarity;
    if (reconstructed.empty()) reconstructed = result.sparse_similarity.to_dense();
    return reconstructed;
  };

  if (args.has("top") || args.has("threshold")) {
    // Similar-sample discovery (paper Fig. 1 step 8): only the most
    // related pairs instead of the full quadratic listing.
    std::vector<analysis::ScoredPair> pairs;
    if (args.has("top")) {
      pairs = result.sparse_output()
                  ? analysis::top_k_pairs(result.sparse_similarity,
                                          args.get_int("top", 10))
                  : analysis::top_k_pairs(result.similarity, args.get_int("top", 10));
    } else if (options.core.estimator == core::Estimator::kHybrid) {
      // The hybrid's survivor set IS the thresholded pair set — walk it
      // directly instead of re-thresholding a dense assembled matrix
      // (which would also surface sketch-estimated pruned values).
      const double threshold = args.get_double("threshold", 0.9);
      const double effective =
          options.core.prune_threshold - sketch::hybrid_prune_slack(options.core);
      if (threshold < effective) {
        std::fprintf(stderr,
                     "gas dist: warning: --threshold %.3f is below the effective "
                     "prune threshold %.3f — pairs in between were pruned by the "
                     "sketch pass and will not be listed (lower --prune-threshold "
                     "to keep them)\n",
                     threshold, effective);
      }
      pairs = result.sparse_output()
                  ? analysis::candidate_pairs(result.sparse_similarity, threshold)
                  : analysis::candidate_pairs(result.similarity, result.candidates,
                                              threshold);
    } else {
      pairs = analysis::pairs_above(result.similarity,
                                    args.get_double("threshold", 0.9));
    }
    TextTable table({"sample A", "sample B", "Jaccard", "distance"});
    for (const auto& pair : pairs) {
      table.add_row({names[static_cast<std::size_t>(pair.a)],
                     names[static_cast<std::size_t>(pair.b)],
                     fmt_fixed(pair.similarity, 6),
                     fmt_fixed(1.0 - pair.similarity, 6)});
    }
    table.print();
  } else {
    TextTable table({"sample A", "sample B", "Jaccard", "distance"});
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = i + 1; j < n; ++j) {
        const double s = result.similarity_at(i, j);
        table.add_row({names[static_cast<std::size_t>(i)],
                       names[static_cast<std::size_t>(j)], fmt_fixed(s, 6),
                       fmt_fixed(1.0 - s, 6)});
      }
    }
    table.print();
  }

  if (args.has("phylip")) {
    const std::string out = args.get_string("phylip", "distances.phylip");
    genome::write_phylip_file(out, names, dense_view().distance_matrix(), n);
    std::printf("\nPHYLIP matrix written to %s\n", out.c_str());
  }
  if (args.has("similarity-out")) {
    const std::string out = args.get_string("similarity-out", "similarity.sasm");
    core::write_similarity_binary_file(out, names, dense_view());
    std::printf("Binary similarity matrix written to %s\n", out.c_str());
  }
  if (args.has("sparse-similarity-out")) {
    const std::string out =
        args.get_string("sparse-similarity-out", "similarity.sasp");
    if (!result.sparse_output()) {
      std::fprintf(stderr,
                   "gas dist: --sparse-similarity-out needs the hybrid's sparse "
                   "output (drop --dense-output / use --estimator hybrid)\n");
      return 2;
    }
    core::write_sparse_similarity_binary_file(out, names, result.sparse_similarity);
    std::printf("Sparse similarity (%lld survivors) written to %s\n",
                static_cast<long long>(result.sparse_similarity.survivor_count()),
                out.c_str());
  }
  if (args.has("tsv")) {
    const std::string out_path = args.get_string("tsv", "similarity.tsv");
    std::ofstream tsv(out_path);
    core::write_similarity_tsv(tsv, names, dense_view());
    std::printf("TSV similarity matrix written to %s\n", out_path.c_str());
  }
  // Exit 9 (not an error::Code — those stop at 8) tells schedulers the
  // run finished but with quarantined batches; 0 is reserved for a
  // complete result.
  return result.degraded() ? 9 : 0;
}

int cmd_tree(const ArgParser& args) {
  if (args.positional().size() != 2) return usage();
  std::ifstream in(args.positional()[1]);
  if (!in) {
    std::fprintf(stderr, "gas tree: cannot open %s\n", args.positional()[1].c_str());
    return 1;
  }
  const genome::PhylipMatrix matrix = genome::read_phylip(in);
  const std::string method = args.get_string("method", "nj");
  analysis::PhyloTree tree;
  if (method == "nj") {
    tree = analysis::neighbor_joining(matrix.distances, matrix.names);
  } else if (method == "upgma") {
    tree = analysis::upgma(matrix.distances, matrix.names);
  } else {
    std::fprintf(stderr, "gas tree: unknown --method '%s' (nj|upgma)\n", method.c_str());
    return 2;
  }
  const std::string newick = tree.to_newick();
  if (args.has("out")) {
    std::ofstream out(args.get_string("out", "tree.nwk"));
    out << newick << '\n';
    std::printf("Newick tree written to %s\n", args.get_string("out", "tree.nwk").c_str());
  } else {
    std::printf("%s\n", newick.c_str());
  }
  return 0;
}

int cmd_simulate(const ArgParser& args) {
  const auto n_samples = args.get_int("samples", 8);
  const auto length = args.get_int("length", 20000);
  const double rate = args.get_double("rate", 0.01);
  const bool as_reads = args.get_bool("reads", false);
  const double coverage = args.get_double("coverage", 20.0);
  const double error = args.get_double("error", 0.003);
  const fs::path out_dir = args.get_string("out-dir", ".");
  fs::create_directories(out_dir);

  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));
  const std::string ancestor = genome::random_genome(length, rng);
  for (std::int64_t i = 0; i < n_samples; ++i) {
    const std::string individual =
        i == 0 ? ancestor : genome::mutate_point(ancestor, rate, rng);
    const std::string name = "sample" + std::to_string(i);
    std::vector<genome::SequenceRecord> records;
    if (as_reads) {
      records = genome::simulate_reads(individual, 100, coverage, error, rng);
    } else {
      records = {{name, "simulated genome", individual}};
    }
    const fs::path out = out_dir / (name + ".fa");
    genome::write_fasta_file(out.string(), records);
    std::printf("%s: %zu record(s), %lld bp genome\n", out.string().c_str(),
                records.size(), static_cast<long long>(length));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  if (args.positional().empty()) return usage();
  const std::string& command = args.positional()[0];
  // Map the error taxonomy (util/error.hpp) to distinct exit codes so
  // pipelines can tell "your flags are wrong" (2) from "your data is
  // damaged" (3) from "a rank crashed" (4) from "a rank hung" (5). A
  // watchdog message carries the blocked-rank diagnostic verbatim.
  try {
    if (command == "sketch") return cmd_sketch(args);
    if (command == "dist") return cmd_dist(args);
    if (command == "tree") return cmd_tree(args);
    if (command == "simulate") return cmd_simulate(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gas: %s\n", e.what());
    return sas::error::exit_code_for(e);
  }
  return usage();
}
