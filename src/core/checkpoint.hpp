// checkpoint.hpp — per-batch checkpoint/restart of the staged driver.
//
// A batched run (`gas dist --checkpoint DIR`) persists its accumulator
// state after every completed batch:
//
//   DIR/manifest.sasc      (rank 0)  "SASC": config fingerprint,
//                                    completed-batch count, per-batch
//                                    BatchStats
//   DIR/rank<r>.b<k>.sasc  (rank r)  "SASR": fingerprint, batch count k,
//                                    the rank's partial B block (if it
//                                    owns one) and its â column-popcount
//                                    vector after k completed batches
//
// Every file ends with a CRC-32 of its preceding bytes and is written
// atomically AND durably: the bytes land in a .tmp sibling, which is
// fsync'd before the rename and whose parent directory is fsync'd after
// it, so "saved" means on-disk even across a power cut. A disk-full
// failure (ENOSPC/EDQUOT) during a save throws the typed
// error::ResourceExhausted — the driver reacts by disabling further
// checkpointing and finishing in-memory rather than aborting the run.
// Stale .tmp partials left by a kill mid-commit are swept on the next
// Checkpoint construction. Rank state is VERSIONED by batch so a kill
// at any instant leaves a usable checkpoint: ranks save b<k> first, a
// barrier proves every b<k> durable, rank 0 commits the manifest
// pointing at k, a second barrier proves the manifest durable, and only
// then is each rank's obsolete b<k-1> file deleted. A kill mid-save
// leaves the manifest at k-1 with its b<k-1> files still intact; a kill
// mid-cleanup leaves a stale b<k-1> file that the next run overwrites.
//
// --resume validates fingerprint + CRC (error::ConfigError on a
// fingerprint from a differently-shaped run, error::CorruptInput on
// damage), restores B/â/stats, and the driver skips the completed
// batches. Because the batch loop accumulates deterministically, the
// resumed result is bitwise-identical to an uninterrupted run — the
// hybrid included (its candidate pass is deterministic and recomputed).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/driver.hpp"
#include "distmat/dense_block.hpp"

namespace sas::core {

/// Rank 0's view of a checkpointed run.
struct CheckpointManifest {
  std::int64_t completed = 0;     ///< batches fully accumulated AND saved
  std::vector<BatchStats> stats;  ///< per-batch stats of the completed batches
};

/// Everything that must match between the checkpointing run and the
/// resuming run for the restored accumulators to be meaningful: the
/// input shape (n, m), the rank count, and every config knob that shapes
/// the batch loop or the numbers it accumulates.
[[nodiscard]] std::uint64_t checkpoint_fingerprint(const Config& config, std::int64_t n,
                                                   std::int64_t m, int nranks);

/// In-memory snapshot of one rank's accumulator state at a batch
/// boundary, serialized with the checkpoint wire format (including the
/// trailing CRC) but never touching disk. The recovery layer captures
/// one before each batch and restores it before a replay, so a rolled-
/// back batch re-accumulates from bitwise-identical state.
class BatchSnapshot {
 public:
  /// Serialize (completed, block, ahat); `block` may be null (ranks that
  /// own no output block).
  void capture(std::int64_t completed, const distmat::DenseBlock<std::int64_t>* block,
               std::span<const std::int64_t> ahat);

  /// Restore a prior capture into `block`/`ahat`. The shapes must match
  /// the captured ones (they do by construction: same rank, same run).
  void restore(std::int64_t completed, distmat::DenseBlock<std::int64_t>* block,
               std::vector<std::int64_t>& ahat) const;

  [[nodiscard]] bool valid() const noexcept { return !buffer_.empty(); }
  [[nodiscard]] std::size_t bytes() const noexcept { return buffer_.size(); }

 private:
  std::vector<char> buffer_;
};

class Checkpoint {
 public:
  /// Creates `dir` if needed (throws error::ConfigError when impossible)
  /// and sweeps stale .tmp partials left by a kill mid-commit.
  Checkpoint(std::string dir, std::uint64_t fingerprint);

  /// Persist rank `rank`'s state after batch `completed` finished, as
  /// rank<rank>.b<completed>.sasc. `block` may be null (ranks owning no
  /// output block).
  void save_rank(int rank, std::int64_t completed,
                 const distmat::DenseBlock<std::int64_t>* block,
                 std::span<const std::int64_t> ahat) const;

  /// Restore rank `rank`'s state as of the manifest's `completed` count.
  /// `block`'s ranges must match the saved ones.
  void load_rank(int rank, std::int64_t completed,
                 distmat::DenseBlock<std::int64_t>* block,
                 std::vector<std::int64_t>& ahat) const;

  /// Delete rank `rank`'s obsolete b<completed> state file, if any. Call
  /// only after a LATER manifest is durable (a stale file is harmless; a
  /// premature delete would orphan the current manifest).
  void remove_rank(int rank, std::int64_t completed) const noexcept;

  /// Commit the manifest (rank 0, after a barrier proves every rank's
  /// state file is durable).
  void save_manifest(const CheckpointManifest& manifest) const;

  /// Read the manifest; std::nullopt when no checkpoint exists yet.
  [[nodiscard]] std::optional<CheckpointManifest> load_manifest() const;

 private:
  std::string dir_;
  std::uint64_t fingerprint_;
};

}  // namespace sas::core
