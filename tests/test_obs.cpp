// test_obs.cpp — the observability subsystem (src/obs/): JSON
// writer/parser round-trips, bounded span buffers, span balance across
// real driver runs, Chrome-trace well-formedness (the emitted file is
// parsed back), report-vs-PipelineStats exactness, and the postmortem
// flush of a fault-injected run.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/driver.hpp"
#include "core/sample_source.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace sas {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

fs::path temp_file(const std::string& name) {
  return fs::temp_directory_path() / name;
}

// ----------------------------------------------------------- JSON layer

TEST(Json, WriterParserRoundTrip) {
  std::ostringstream out;
  obs::JsonWriter w(out);
  w.begin_object();
  w.field("text", "quote \" backslash \\ newline \n tab \t");
  w.field("int", std::int64_t{-42});
  w.field("uint", std::uint64_t{18446744073709551615ull});
  w.field("pi", 3.25);
  w.field("yes", true);
  w.key("null_value").null();
  w.key("list");
  w.begin_array().value(1).value("two").value(false).end_array();
  w.key("nested");
  w.begin_object().field("k", 7).end_object();
  w.end_object();

  const obs::JsonValue v = obs::JsonValue::parse(out.str());
  EXPECT_EQ(v.at("text").str(), "quote \" backslash \\ newline \n tab \t");
  EXPECT_EQ(v.at("int").number(), -42.0);
  EXPECT_EQ(v.at("pi").number(), 3.25);
  EXPECT_TRUE(v.at("yes").boolean());
  EXPECT_TRUE(v.at("null_value").is_null());
  ASSERT_EQ(v.at("list").array().size(), 3u);
  EXPECT_EQ(v.at("list").array()[1].str(), "two");
  EXPECT_EQ(v.at("nested").at("k").number(), 7.0);
  EXPECT_EQ(v.find("absent"), nullptr);
  EXPECT_THROW((void)v.at("absent"), error::CorruptInput);
}

TEST(Json, ParserRejectsDamage) {
  EXPECT_THROW((void)obs::JsonValue::parse(""), error::CorruptInput);
  EXPECT_THROW((void)obs::JsonValue::parse("{\"a\":1"), error::CorruptInput);
  EXPECT_THROW((void)obs::JsonValue::parse("{\"a\":1} trailing"),
               error::CorruptInput);
  EXPECT_THROW((void)obs::JsonValue::parse("{\"a\":}"), error::CorruptInput);
  EXPECT_THROW((void)obs::JsonValue::parse("[1,]"), error::CorruptInput);
  EXPECT_THROW((void)obs::JsonValue::parse("{'a':1}"), error::CorruptInput);
  EXPECT_THROW((void)obs::JsonValue::parse("nul"), error::CorruptInput);
  // A valid document parses cleanly through the same entry point.
  EXPECT_NO_THROW((void)obs::JsonValue::parse(" {\"a\": [1, 2.5, \"\\u0041\"]} "));
  EXPECT_EQ(obs::JsonValue::parse("\"\\u0041\"").str(), "A");
}

// ----------------------------------------------------------- span layer

TEST(Obs, BoundedBufferCountsDrops) {
  obs::Observer observer(1, /*span_capacity=*/4);
  {
    const obs::ScopedRankBinding binding(&observer, 0);
    for (int i = 0; i < 10; ++i) {
      obs::Span span("s", "test");
    }
  }
  EXPECT_EQ(observer.rank(0).events().size(), 4u);
  EXPECT_EQ(observer.rank(0).dropped(), 6u);
  EXPECT_EQ(observer.total_dropped(), 6u);
  EXPECT_EQ(observer.rank(0).open_depth, 0);
}

TEST(Obs, UnboundSpansAreNoOps) {
  ASSERT_EQ(obs::current(), nullptr);
  obs::Span span("unbound", "test");
  span.add_bytes(10, 20);
  span.close();
  const obs::BatchScope batch(3);
  // Nothing to observe — the point is that none of this crashes or
  // leaks state without a bound observer.
  EXPECT_EQ(obs::current(), nullptr);
}

TEST(Obs, SpanNestingStampsBatchIndex) {
  obs::Observer observer(1);
  {
    const obs::ScopedRankBinding binding(&observer, 0);
    {
      const obs::BatchScope batch(5);
      obs::Span inner("inner", "test");
    }
    obs::Span outside("outside", "test");
  }
  const auto& events = observer.rank(0).events();
  ASSERT_EQ(events.size(), 3u);  // inner, batch, outside (close order)
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_EQ(events[0].batch, 5);
  EXPECT_STREQ(events[1].name, "batch");
  EXPECT_EQ(events[1].batch, 5);  // the batch span itself is stamped
  EXPECT_STREQ(events[2].name, "outside");
  EXPECT_EQ(events[2].batch, -1);  // restored after the scope
  EXPECT_EQ(observer.rank(0).open_depth, 0);
}

// ------------------------------------------- traces from real driver runs

TEST(Obs, TraceParsesBackAndCoversStages) {
  const core::BernoulliSampleSource source(std::int64_t{1} << 12, 24, 0.01, 7);
  for (int p : {1, 2, 4}) {
    core::Config config;
    config.algorithm = core::Algorithm::kRing1D;
    config.batch_count = 2;
    const fs::path trace_path =
        temp_file("obs_trace_p" + std::to_string(p) + ".json");
    config.trace_out = trace_path.string();

    obs::Observer observer(p);
    (void)core::similarity_at_scale_threaded(p, source, config, nullptr,
                                             &observer);

    // Span balance: every rank closed everything it opened.
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(observer.rank(r).open_depth, 0) << "rank " << r << " at p=" << p;
      EXPECT_GT(observer.rank(r).events().size(), 0u);
    }

    const obs::JsonValue trace = obs::JsonValue::parse(slurp(trace_path));
    const auto& events = trace.at("traceEvents").array();
    std::set<int> pids;
    std::map<int, std::set<std::string>> stage_names_by_pid;
    std::size_t collectives = 0;
    for (const obs::JsonValue& ev : events) {
      if (ev.at("ph").str() != "X") continue;
      const int pid = static_cast<int>(ev.at("pid").number());
      pids.insert(pid);
      EXPECT_GE(ev.at("dur").number(), 0.0);
      if (ev.at("cat").str() == "stage") {
        stage_names_by_pid[pid].insert(ev.at("name").str());
      }
      if (ev.at("cat").str() == "collective") ++collectives;
    }
    const std::set<int> expected_pids = [&] {
      std::set<int> s;
      for (int r = 0; r < p; ++r) s.insert(r);
      return s;
    }();
    EXPECT_EQ(pids, expected_pids) << "p=" << p;
    const std::set<std::string> expected_stages = {
        "ingest", "pack/sketch", "exchange", "multiply", "assemble"};
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(stage_names_by_pid[r], expected_stages)
          << "rank " << r << " at p=" << p;
    }
    if (p > 1) EXPECT_GT(collectives, 0u) << "p=" << p;
    EXPECT_FALSE(trace.at("otherData").at("aborted").boolean());
    fs::remove(trace_path);
  }
}

TEST(Obs, HybridReportMatchesPipelineStats) {
  const core::BernoulliSampleSource source(std::int64_t{1} << 12, 24, 0.01, 7);
  core::Config config;
  config.estimator = core::Estimator::kHybrid;
  config.batch_count = 2;
  const fs::path report_path = temp_file("obs_report_hybrid.json");
  config.report_json = report_path.string();

  obs::Observer observer(4);
  std::vector<bsp::CostCounters> counters;
  const core::Result result =
      core::similarity_at_scale_threaded(4, source, config, &counters, &observer);

  const obs::JsonValue report = obs::JsonValue::parse(slurp(report_path));
  EXPECT_EQ(report.at("schema").str(), obs::kReportSchema);
  EXPECT_EQ(report.at("status").str(), "ok");
  EXPECT_EQ(report.at("ranks").number(), 4.0);
  EXPECT_EQ(report.at("estimator").str(), "hybrid");

  // Per-stage rows must match PipelineStats EXACTLY: same reduction,
  // copied verbatim (uint64 byte counts are below 2^53, so the double
  // round-trip is exact).
  const auto& stages = report.at("stages").array();
  ASSERT_EQ(stages.size(), core::kStageCount);
  for (std::size_t s = 0; s < core::kStageCount; ++s) {
    const core::StageStats& expect = result.stages.stages[s];
    EXPECT_EQ(stages[s].at("name").str(),
              core::stage_name(static_cast<core::Stage>(s)));
    EXPECT_DOUBLE_EQ(stages[s].at("seconds").number(), expect.seconds);
    EXPECT_EQ(static_cast<std::uint64_t>(stages[s].at("bytes_sent").number()),
              expect.bytes_sent);
    EXPECT_EQ(static_cast<std::uint64_t>(stages[s].at("bytes_received").number()),
              expect.bytes_received);
    EXPECT_EQ(static_cast<std::uint64_t>(stages[s].at("messages").number()),
              expect.messages);
  }
  EXPECT_GT(result.stages[core::Stage::kExchange].bytes_sent, 0u);

  const auto& batches = report.at("batches").array();
  ASSERT_EQ(batches.size(), result.batches.size());
  for (std::size_t b = 0; b < batches.size(); ++b) {
    EXPECT_EQ(static_cast<std::uint64_t>(batches[b].at("bytes_sent").number()),
              result.batches[b].bytes_sent);
  }

  // Drift table: collectives ran, predictions were booked.
  const auto& drift = report.at("drift").array();
  EXPECT_FALSE(drift.empty());
  for (const obs::JsonValue& row : drift) {
    EXPECT_GT(row.at("samples").number(), 0.0);
    EXPECT_GT(row.at("predicted_seconds").number(), 0.0);
    EXPECT_GE(row.at("measured_seconds").number(), 0.0);
  }

  const auto& metrics = report.at("metrics").array();
  ASSERT_EQ(metrics.size(), 4u);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(metrics[static_cast<std::size_t>(r)].at("rank").number(), r);
    EXPECT_GT(metrics[static_cast<std::size_t>(r)].at("spans").number(), 0.0);
  }
  // Per-rank counters mirror what Runtime::run returned.
  ASSERT_EQ(counters.size(), 4u);
  EXPECT_EQ(static_cast<std::uint64_t>(metrics[1].at("bytes_sent").number()),
            counters[1].bytes_sent);
  fs::remove(report_path);
}

TEST(Obs, FaultInjectedRunStillFlushesArtifacts) {
  const core::BernoulliSampleSource source(std::int64_t{1} << 12, 24, 0.01, 7);
  core::Config config;
  config.algorithm = core::Algorithm::kRing1D;
  config.batch_count = 2;
  config.fault_plan = "rank=1:op=6:throw";
  const fs::path trace_path = temp_file("obs_trace_fault.json");
  const fs::path report_path = temp_file("obs_report_fault.json");
  config.trace_out = trace_path.string();
  config.report_json = report_path.string();

  EXPECT_THROW(
      (void)core::similarity_at_scale_threaded(4, source, config), std::exception);

  // Both artifacts exist and parse; the trace carries the postmortem.
  const obs::JsonValue trace = obs::JsonValue::parse(slurp(trace_path));
  EXPECT_TRUE(trace.at("otherData").at("aborted").boolean());
  EXPECT_FALSE(trace.at("otherData").at("abort_message").str().empty());
  EXPECT_FALSE(trace.at("traceEvents").array().empty());

  const obs::JsonValue report = obs::JsonValue::parse(slurp(report_path));
  EXPECT_EQ(report.at("status").str(), "aborted");
  EXPECT_FALSE(report.at("abort_message").str().empty());
  fs::remove(trace_path);
  fs::remove(report_path);
}

}  // namespace
}  // namespace sas
