// similarity_matrix.hpp — the Jaccard similarity matrix S, in a dense
// and a sparse (survivor-proportional) representation.
//
// Produced by the driver on the root rank; offers both views the paper
// defines (§II-A): similarity J and distance d_J = 1 − J, plus the
// convention J(∅, ∅) = 1.
//
// SimilarityMatrix is the dense n×n form: the natural output of the
// exact all-pairs pipeline and the sketch estimators (every pair is
// computed), and the right call at small n. SparseSimilarity is the
// thresholded-output form the hybrid estimator assembles by default
// (Config::dense_output toggles back): only the pairs that survived the
// sketch prune carry exactly rescored values, pruned-but-scored pairs
// carry their sketch estimates, everything else reads as 0.0, and the
// diagonal is 1.0 by the J(X, X) = 1 / J(∅, ∅) = 1 conventions. Resident
// bytes are O(survivors + scored estimates + n), never O(n²) — at
// n = 50k the dense doubles alone are ~20 GB while a pair-sparse corpus
// assembles in a few MB.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace sas::core {

class SimilarityMatrix {
 public:
  SimilarityMatrix() = default;
  SimilarityMatrix(std::int64_t n, std::vector<double> values);

  [[nodiscard]] std::int64_t size() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }

  /// J(Xᵢ, Xⱼ) ∈ [0, 1].
  [[nodiscard]] double similarity(std::int64_t i, std::int64_t j) const {
    return values_[static_cast<std::size_t>(i * n_ + j)];
  }

  /// d_J(Xᵢ, Xⱼ) = 1 − J(Xᵢ, Xⱼ); a metric on finite sets.
  [[nodiscard]] double distance(std::int64_t i, std::int64_t j) const {
    return 1.0 - similarity(i, j);
  }

  [[nodiscard]] const std::vector<double>& values() const noexcept { return values_; }

  /// Full distance matrix (for clustering / tree-building consumers).
  [[nodiscard]] std::vector<double> distance_matrix() const;

  /// Maximum |S − other| entry — used by the equivalence tests.
  [[nodiscard]] double max_abs_diff(const SimilarityMatrix& other) const;

 private:
  std::int64_t n_ = 0;
  std::vector<double> values_;  // row-major n×n
};

/// Survivor-proportional similarity view (the hybrid's sparse output).
///
/// Holds two sorted (packed upper pair → value) maps — the exactly
/// rescored survivors and the sketch estimates of scored-but-pruned
/// pairs — plus the union cardinalities â (O(n), kept for diagnostics
/// and on-demand reconstruction). The survivor key set IS the candidate
/// mask restricted to off-diagonal pairs; Result::candidates retains the
/// full mask alongside.
class SparseSimilarity {
 public:
  SparseSimilarity() = default;

  /// `survivor_keys`/`estimate_keys` are pack_pair()-packed upper pairs
  /// (i < j), sorted ascending, unique, parallel to their value vectors;
  /// `ahat` is empty or length n. Throws std::invalid_argument on
  /// malformed input.
  SparseSimilarity(std::int64_t n, std::vector<std::uint64_t> survivor_keys,
                   std::vector<double> survivor_values,
                   std::vector<std::uint64_t> estimate_keys,
                   std::vector<double> estimate_values, std::vector<std::int64_t> ahat);

  /// (i, j) with i < j packed into one word (i in the high half) — the
  /// same 31-bit packing as distmat::SparsePairMask, so sorting keys
  /// sorts by (i, j). Throws when an index exceeds 31 bits or i ≥ j.
  [[nodiscard]] static std::uint64_t pack_pair(std::int64_t i, std::int64_t j);
  [[nodiscard]] static std::pair<std::int64_t, std::int64_t> unpack_pair(
      std::uint64_t packed) noexcept {
    return {static_cast<std::int64_t>(packed >> 32),
            static_cast<std::int64_t>(packed & 0xffffffffULL)};
  }

  [[nodiscard]] std::int64_t size() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
  [[nodiscard]] std::int64_t survivor_count() const noexcept {
    return static_cast<std::int64_t>(survivor_keys_.size());
  }
  [[nodiscard]] std::int64_t estimate_count() const noexcept {
    return static_cast<std::int64_t>(estimate_keys_.size());
  }

  /// Did (i, j) survive the prune (exact value available)? Diagonal and
  /// out-of-order arguments are normalized; (i, i) reports false.
  [[nodiscard]] bool is_survivor(std::int64_t i, std::int64_t j) const noexcept;

  /// J(Xᵢ, Xⱼ): 1.0 on the diagonal, the exact rescored value for
  /// survivors, the sketch estimate for scored-but-pruned pairs, 0.0
  /// otherwise (never-scored pairs sit below every threshold).
  [[nodiscard]] double similarity(std::int64_t i, std::int64_t j) const noexcept;

  [[nodiscard]] double distance(std::int64_t i, std::int64_t j) const noexcept {
    return 1.0 - similarity(i, j);
  }

  /// Visit every survivor (i, j, value) with i < j, in (i, j) order.
  template <typename Visitor>
  void for_each_survivor(Visitor&& visit) const {
    for (std::size_t s = 0; s < survivor_keys_.size(); ++s) {
      const auto [i, j] = unpack_pair(survivor_keys_[s]);
      visit(i, j, survivor_values_[s]);
    }
  }
  /// Visit every scored-but-pruned (i, j, estimate) with i < j, in order.
  template <typename Visitor>
  void for_each_estimate(Visitor&& visit) const {
    for (std::size_t s = 0; s < estimate_keys_.size(); ++s) {
      const auto [i, j] = unpack_pair(estimate_keys_[s]);
      visit(i, j, estimate_values_[s]);
    }
  }

  /// Reconstruct the dense matrix this view represents — bitwise equal to
  /// the dense-output hybrid assembly of the same run. O(n²) memory by
  /// definition; throws std::length_error when n×n doubles overflow.
  [[nodiscard]] SimilarityMatrix to_dense() const;

  /// Bytes resident in this view's heap vectors — the benches' "peak
  /// rank-0 output" metric.
  [[nodiscard]] std::uint64_t resident_bytes() const noexcept;

  [[nodiscard]] const std::vector<std::uint64_t>& survivor_keys() const noexcept {
    return survivor_keys_;
  }
  [[nodiscard]] const std::vector<double>& survivor_values() const noexcept {
    return survivor_values_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& estimate_keys() const noexcept {
    return estimate_keys_;
  }
  [[nodiscard]] const std::vector<double>& estimate_values() const noexcept {
    return estimate_values_;
  }
  /// Union cardinalities â (empty when not captured; else length n).
  [[nodiscard]] const std::vector<std::int64_t>& union_cardinalities() const noexcept {
    return ahat_;
  }

 private:
  std::int64_t n_ = 0;
  std::vector<std::uint64_t> survivor_keys_;   ///< sorted packed upper pairs
  std::vector<double> survivor_values_;        ///< exact rescored J, parallel
  std::vector<std::uint64_t> estimate_keys_;   ///< sorted packed upper pairs
  std::vector<double> estimate_values_;        ///< sketch estimates, parallel
  std::vector<std::int64_t> ahat_;             ///< â (column popcounts), length n or 0
};

}  // namespace sas::core
