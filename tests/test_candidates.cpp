// test_candidates.cpp — the LSH-banded candidate pass, the sparse
// candidate-mask representation, and the wire-validation hardening.
//
// Covered contracts:
//   * SparsePairMask answers every probe (test / any_pair / row_active /
//     active_columns / count) identically to the dense PairMask on
//     randomized masks, and the storage-parity crossover picks it only
//     when it is no larger;
//   * PairMask::symmetrize (the 64×64 block-transpose rewrite) matches
//     the per-bit reference on sizes straddling word boundaries;
//   * the LSH band/bucket exchange is deterministic across rank counts
//     and loses no pair the all-pairs candidate pass keeps at the same
//     sketch budget on the genome-family corpus;
//   * wire comparators reject blobs of the wrong type even when the
//     params/seed words coincide, and malformed OPH payloads throw
//     instead of smearing across register lanes.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "bsp/runtime.hpp"
#include "core/config.hpp"
#include "core/driver.hpp"
#include "core/sample_source.hpp"
#include "distmat/block.hpp"
#include "distmat/pair_mask.hpp"
#include "genome/kmer_source.hpp"
#include "genome/sample.hpp"
#include "genome/synthetic.hpp"
#include "sketch/bottomk.hpp"
#include "sketch/exchange.hpp"
#include "sketch/hyperloglog.hpp"
#include "sketch/one_perm_minhash.hpp"
#include "sketch/sketch.hpp"
#include "util/rng.hpp"

namespace sas {
namespace {

using distmat::BlockRange;
using distmat::CandidateMask;
using distmat::PairMask;
using distmat::SparsePairMask;

// ---- sparse vs dense equivalence ----------------------------------------

TEST(SparsePairMask, ProbesMatchDenseOnRandomMasks) {
  for (const std::int64_t n : {1, 5, 63, 64, 65, 130}) {
    Rng rng(static_cast<std::uint64_t>(1000 + n));
    std::vector<std::uint64_t> upper;
    PairMask dense(n);
    for (std::int64_t i = 0; i < n; ++i) dense.set(i, i);
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = i + 1; j < n; ++j) {
        if (!rng.bernoulli(0.07)) continue;
        upper.push_back(SparsePairMask::pack_pair(i, j));
        dense.set(i, j);
        dense.set(j, i);
      }
    }
    const SparsePairMask sparse(n, upper);

    EXPECT_EQ(sparse.size(), dense.size());
    EXPECT_EQ(sparse.count(), dense.count()) << "n=" << n;
    EXPECT_EQ(sparse.active_columns(), dense.active_columns());
    for (std::int64_t i = 0; i < n; ++i) {
      EXPECT_EQ(sparse.row_active(i), dense.row_active(i)) << "row " << i;
      for (std::int64_t j = 0; j < n; ++j) {
        EXPECT_EQ(sparse.test(i, j), dense.test(i, j)) << i << "," << j;
      }
    }
    for (int trial = 0; trial < 200; ++trial) {
      const auto r0 = static_cast<std::int64_t>(rng.uniform(static_cast<std::uint64_t>(n)));
      const auto r1 = static_cast<std::int64_t>(rng.uniform(static_cast<std::uint64_t>(n)));
      const auto c0 = static_cast<std::int64_t>(rng.uniform(static_cast<std::uint64_t>(n)));
      const auto c1 = static_cast<std::int64_t>(rng.uniform(static_cast<std::uint64_t>(n)));
      const BlockRange rows{std::min(r0, r1), std::max(r0, r1) + 1};
      const BlockRange cols{std::min(c0, c1), std::max(c0, c1) + 1};
      EXPECT_EQ(sparse.any_pair(rows, cols), dense.any_pair(rows, cols))
          << "rows [" << rows.begin << "," << rows.end << ") cols [" << cols.begin
          << "," << cols.end << ")";
    }

    // The CandidateMask wrapper dispatches to whichever it holds.
    const CandidateMask as_sparse{SparsePairMask(n, upper)};
    const CandidateMask as_dense{PairMask(dense)};
    EXPECT_TRUE(as_sparse.is_sparse());
    EXPECT_FALSE(as_dense.is_sparse());
    EXPECT_EQ(as_sparse.count(), as_dense.count());
    std::vector<std::pair<std::int64_t, std::int64_t>> sparse_pairs;
    std::vector<std::pair<std::int64_t, std::int64_t>> dense_pairs;
    as_sparse.for_each_upper_pair(
        [&](std::int64_t i, std::int64_t j) { sparse_pairs.emplace_back(i, j); });
    as_dense.for_each_upper_pair(
        [&](std::int64_t i, std::int64_t j) { dense_pairs.emplace_back(i, j); });
    EXPECT_EQ(sparse_pairs, dense_pairs);
  }
}

TEST(SparsePairMask, PackPairRejectsWideIndices) {
  EXPECT_THROW((void)SparsePairMask::pack_pair(-1, 0), std::invalid_argument);
  EXPECT_THROW((void)SparsePairMask::pack_pair(0, std::int64_t{1} << 31),
               std::invalid_argument);
  const auto packed = SparsePairMask::pack_pair(3, 9);
  const auto [i, j] = SparsePairMask::unpack_pair(packed);
  EXPECT_EQ(i, 3);
  EXPECT_EQ(j, 9);
}

TEST(SparsePairMask, CrossoverIsStorageParity) {
  // n = 128 → 2 words per row → dense budget 256 words; diagonal costs
  // 128, so the sparse form wins up to 64 pairs and loses after.
  EXPECT_TRUE(distmat::sparse_pair_mask_wins(128, 0));
  EXPECT_TRUE(distmat::sparse_pair_mask_wins(128, 64));
  EXPECT_FALSE(distmat::sparse_pair_mask_wins(128, 65));
  // Below one word per row the dense bitset always wins.
  EXPECT_FALSE(distmat::sparse_pair_mask_wins(64, 1));
}

// ---- symmetrize: block transpose vs per-bit reference -------------------

TEST(PairMaskSymmetrize, MatchesPerBitReference) {
  for (const std::int64_t n : {1, 2, 63, 64, 65, 127, 128, 130, 200}) {
    Rng rng(static_cast<std::uint64_t>(7000 + n));
    PairMask mask(n);
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        if (rng.bernoulli(0.1)) mask.set(i, j);
      }
    }
    // Reference: the old O(n²) per-bit union.
    PairMask expected = mask;
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        if (mask.test(j, i)) expected.set(i, j);
      }
    }
    mask.symmetrize();
    EXPECT_EQ(mask.words(), expected.words()) << "n=" << n;
  }
}

// ---- wire-type validation -----------------------------------------------

TEST(WireValidation, ComparatorsRejectWrongTypeBlobs) {
  const std::vector<std::uint64_t> elements = {1, 2, 3, 4, 5, 6, 7, 8};
  const std::span<const std::uint64_t> span(elements);
  const std::uint64_t seed = 0x5a5;

  const auto oph = sketch::OnePermMinHash(span, 64, 16, seed).wire();
  const auto hll = sketch::HyperLogLog(span, 9, seed).wire();
  const auto bk = sketch::BottomKSketch(span, 64, seed).wire();

  // Forge blobs whose params/seed words match but whose type word lies:
  // before the fix these were silently reinterpreted, not rejected.
  auto forged_as_bottomk = oph;
  forged_as_bottomk[0] = sketch::wire_header_word(sketch::WireType::kBottomK);
  EXPECT_THROW((void)sketch::oph_wire_jaccard(oph, forged_as_bottomk),
               std::invalid_argument);
  EXPECT_THROW((void)sketch::oph_wire_jaccard(forged_as_bottomk, oph),
               std::invalid_argument);

  auto forged_as_hll = hll;
  forged_as_hll[0] = sketch::wire_header_word(sketch::WireType::kOnePermMinHash);
  EXPECT_THROW((void)sketch::hll_wire_jaccard(hll, forged_as_hll),
               std::invalid_argument);

  auto forged_as_oph = bk;
  forged_as_oph[0] = sketch::wire_header_word(sketch::WireType::kHyperLogLog);
  EXPECT_THROW((void)sketch::bottomk_wire_jaccard(bk, forged_as_oph),
               std::invalid_argument);

  // Cross-type blobs fed to the wrong comparator directly must throw too.
  EXPECT_THROW((void)sketch::oph_wire_jaccard(hll, hll), std::invalid_argument);
  EXPECT_THROW((void)sketch::hll_wire_jaccard(bk, bk), std::invalid_argument);
  EXPECT_THROW((void)sketch::bottomk_wire_jaccard(oph, oph), std::invalid_argument);

  // Sanity: same-type comparisons still work.
  EXPECT_DOUBLE_EQ(sketch::oph_wire_jaccard(oph, oph), 1.0);
  EXPECT_DOUBLE_EQ(sketch::bottomk_wire_jaccard(bk, bk), 1.0);
}

TEST(WireValidation, AdversarialOphPayloads) {
  const std::int64_t bins = 64;
  const int bits = 16;
  const std::uint64_t seed = 11;
  const std::vector<std::uint64_t> elements = {10, 20, 30, 40};
  const sketch::OnePermMinHash honest(std::span<const std::uint64_t>(elements), bins,
                                      bits, seed);

  // Corrupt a raw (mergeable) blob: every stored minimum becomes all-ones
  // (wider than the b-bit register). The comparison wire built from the
  // deserialized sketch must keep every lane within its register mask —
  // no smearing into neighbouring lanes.
  auto raw = honest.serialize();
  for (std::size_t w = sketch::kWireHeaderWords + (bins + 63) / 64; w < raw.size(); ++w) {
    raw[w] = ~std::uint64_t{0};
  }
  const auto corrupted = sketch::OnePermMinHash::deserialize(raw);
  const auto wire = corrupted.wire();
  const auto payload = std::span<const std::uint64_t>(wire).subspan(
      sketch::kWireHeaderWords + 1);
  const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
  for (std::int64_t lane = 0; lane < bins; ++lane) {
    const std::int64_t bit = lane * bits;
    const std::uint64_t value = (payload[bit >> 6] >> (bit & 63)) & mask;
    EXPECT_EQ(value, mask) << "lane " << lane;  // 0xffff, not smeared junk
  }
  // All corrupted minima equal ⇒ a self-comparison still estimates 1.
  EXPECT_DOUBLE_EQ(sketch::oph_wire_jaccard(wire, wire), 1.0);

  // Malformed blobs must throw, not read out of bounds.
  auto good = honest.wire();
  auto truncated = good;
  truncated.pop_back();
  EXPECT_THROW((void)sketch::oph_wire_jaccard(good, truncated), std::invalid_argument);
  auto bad_params = good;
  bad_params[1] = (std::uint64_t{7} << 32) | 64;  // bits=7 does not divide 64
  EXPECT_THROW((void)sketch::oph_wire_jaccard(bad_params, bad_params),
               std::invalid_argument);
  EXPECT_THROW((void)sketch::oph_wire_band_hashes(bad_params, 4, 2),
               std::invalid_argument);
}

TEST(WireValidation, TruncatedPersistedBlobIsRejectedNotLoaded) {
  core::Config cfg;
  cfg.estimator = core::Estimator::kMinhash;
  const std::vector<std::uint64_t> elements = {5, 6, 7, 8};
  const auto good = sketch::OnePermMinHash(std::span<const std::uint64_t>(elements),
                                           cfg.sketch_size, cfg.minhash_bits,
                                           cfg.sketch_seed)
                        .wire();
  EXPECT_TRUE(sketch::wire_matches_config(good, cfg));
  // An interrupted persist can leave an intact header over a truncated
  // payload — that must read as "no persisted sketch", not throw later.
  auto truncated = good;
  truncated.resize(sketch::kWireHeaderWords + 1);
  EXPECT_FALSE(sketch::wire_matches_config(truncated, cfg));
}

// ---- band hashes and the banding plan -----------------------------------

TEST(LshBands, BucketHashesTrackBandRegisters) {
  const std::int64_t bins = 32;
  const int bits = 16;
  std::vector<std::uint64_t> a_elems;
  for (std::uint64_t v = 0; v < 500; ++v) a_elems.push_back(v);
  const auto a = sketch::OnePermMinHash(std::span<const std::uint64_t>(a_elems), bins,
                                        bits, 3)
                     .wire();

  const auto ha = sketch::oph_wire_band_hashes(a, 8, 4);
  ASSERT_EQ(ha.size(), 8u);
  EXPECT_EQ(ha, sketch::oph_wire_band_hashes(a, 8, 4)) << "must be deterministic";

  // Flip one register lane: exactly the band covering it changes.
  auto b = a;
  const std::size_t payload_base = sketch::kWireHeaderWords + 1;
  b[payload_base + 0] ^= std::uint64_t{1};  // lane 0 → band 0
  const auto hb = sketch::oph_wire_band_hashes(b, 8, 4);
  EXPECT_NE(ha[0], hb[0]);
  for (std::size_t t = 1; t < 8; ++t) EXPECT_EQ(ha[t], hb[t]) << "band " << t;

  // Distinct bands of the same blob must not collide just because their
  // registers coincide — the band index is folded into the hash.
  auto uniform = a;
  for (std::size_t w = payload_base; w < uniform.size(); ++w) uniform[w] = 0;
  const auto hu = sketch::oph_wire_band_hashes(uniform, 8, 4);
  for (std::size_t s = 0; s < 8; ++s) {
    for (std::size_t t = s + 1; t < 8; ++t) EXPECT_NE(hu[s], hu[t]);
  }

  EXPECT_THROW((void)sketch::oph_wire_band_hashes(a, 9, 4), std::invalid_argument);
  EXPECT_THROW((void)sketch::oph_wire_band_hashes(a, 0, 4), std::invalid_argument);
}

TEST(LshBands, PlanAdaptsToThresholdAndPins) {
  core::Config cfg;
  cfg.estimator = core::Estimator::kMinhash;
  cfg.sketch_size = 1024;
  cfg.minhash_bits = 16;

  // Pinned band count: B as given, R = k/B.
  cfg.lsh_bands = 64;
  const auto pinned = sketch::lsh_candidate_plan(cfg, 0.3);
  EXPECT_EQ(pinned.bands, 64);
  EXPECT_EQ(pinned.rows_per_band, 16);

  // Auto: wider bands (larger R, sharper S-curve) at higher thresholds,
  // and always within the register budget.
  cfg.lsh_bands = 0;
  const auto low = sketch::lsh_candidate_plan(cfg, 0.05);
  const auto mid = sketch::lsh_candidate_plan(cfg, 0.25);
  const auto high = sketch::lsh_candidate_plan(cfg, 0.5);
  EXPECT_GE(mid.rows_per_band, low.rows_per_band);
  EXPECT_GE(high.rows_per_band, mid.rows_per_band);
  EXPECT_GT(high.rows_per_band, 1);
  for (const auto& plan : {low, mid, high}) {
    EXPECT_GE(plan.bands, 1);
    EXPECT_LE(plan.bands * plan.rows_per_band, cfg.sketch_size);
  }

  cfg.estimator = core::Estimator::kHll;
  EXPECT_THROW((void)sketch::lsh_candidate_plan(cfg, 0.3), std::invalid_argument);
}

TEST(LshBands, ModeResolution) {
  core::Config cfg;
  cfg.estimator = core::Estimator::kHybrid;
  cfg.hybrid_sketch = core::Estimator::kMinhash;
  cfg.prune_threshold = 0.3;

  EXPECT_EQ(sketch::resolved_candidate_mode(cfg, 16), core::CandidateMode::kAllPairs);
  EXPECT_EQ(sketch::resolved_candidate_mode(cfg, cfg.lsh_min_samples),
            core::CandidateMode::kLsh);
  cfg.candidate_mode = core::CandidateMode::kLsh;
  EXPECT_EQ(sketch::resolved_candidate_mode(cfg, 16), core::CandidateMode::kLsh);

  // Non-positive effective threshold keeps every pair: banding could only
  // lose candidates, so all-pairs is forced.
  cfg.prune_threshold = 0.0;
  EXPECT_EQ(sketch::resolved_candidate_mode(cfg, 1 << 20),
            core::CandidateMode::kAllPairs);

  cfg.prune_threshold = 0.3;
  cfg.hybrid_sketch = core::Estimator::kHll;
  EXPECT_THROW((void)sketch::resolved_candidate_mode(cfg, 16), std::invalid_argument);
  cfg.candidate_mode = core::CandidateMode::kAuto;
  EXPECT_EQ(sketch::resolved_candidate_mode(cfg, 1 << 20),
            core::CandidateMode::kAllPairs);
}

// ---- the banded exchange, collectively ----------------------------------

/// Twin corpus: `pairs` duplicated element sets (true J = 1 within a twin
/// pair) plus unrelated fillers — the pair-sparse regime the LSH pass
/// targets, with full control over which pairs must survive.
std::vector<std::vector<std::uint64_t>> twin_corpus(std::int64_t pairs,
                                                    std::int64_t fillers,
                                                    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<std::uint64_t>> sets;
  for (std::int64_t t = 0; t < pairs; ++t) {
    std::vector<std::uint64_t> s;
    for (int v = 0; v < 60; ++v) s.push_back(rng());
    sets.push_back(s);
    sets.push_back(std::move(s));  // twin: identical set
  }
  for (std::int64_t f = 0; f < fillers; ++f) {
    std::vector<std::uint64_t> s;
    for (int v = 0; v < 60; ++v) s.push_back(rng());
    sets.push_back(std::move(s));
  }
  return sets;
}

/// Run sketch_candidate_pass over `sets` on `ranks` ranks with cyclic
/// blob ownership (the driver's layout) and return rank 0's pass output.
sketch::CandidatePass run_candidate_pass(
    const std::vector<std::vector<std::uint64_t>>& sets, const core::Config& config,
    int ranks) {
  const auto n = static_cast<std::int64_t>(sets.size());
  sketch::CandidatePass out;
  bsp::Runtime::run(ranks, [&](bsp::Comm& comm) {
    std::vector<std::int64_t> samples;
    std::vector<std::vector<std::uint64_t>> blobs;
    for (std::int64_t i = comm.rank(); i < n; i += comm.size()) {
      samples.push_back(i);
      blobs.push_back(sketch::OnePermMinHash(
                          std::span<const std::uint64_t>(sets[static_cast<std::size_t>(i)]),
                          config.sketch_size, config.minhash_bits, config.sketch_seed)
                          .wire());
    }
    auto pass = sketch::sketch_candidate_pass(
        comm, std::span<const std::int64_t>(samples), blobs, n, config);
    // Single writer (rank 0), read only after run() joins the ranks.
    if (comm.rank() == 0) out = std::move(pass);
  });
  return out;
}

TEST(LshCandidatePass, DeterministicAcrossRankCountsAndFindsTwins) {
  const auto sets = twin_corpus(/*pairs=*/40, /*fillers=*/120, /*seed=*/31);
  const auto n = static_cast<std::int64_t>(sets.size());

  core::Config cfg;
  cfg.estimator = core::Estimator::kMinhash;
  cfg.candidate_mode = core::CandidateMode::kLsh;
  cfg.sketch_size = 256;
  cfg.prune_threshold = 0.5;

  const auto reference = run_candidate_pass(sets, cfg, 1);
  EXPECT_EQ(reference.mode, core::CandidateMode::kLsh);
  // Twin pairs (J = 1) must all collide and survive; unrelated pairs
  // (J ≈ 0) must be pruned in bulk.
  for (std::int64_t t = 0; t < 40; ++t) {
    EXPECT_TRUE(reference.mask.test(2 * t, 2 * t + 1)) << "twin " << t;
    EXPECT_TRUE(reference.mask.test(2 * t + 1, 2 * t)) << "mask must be symmetric";
  }
  EXPECT_LT(reference.mask.count(), n + 2 * 40 + 20)
      << "unrelated pairs must be pruned";
  for (std::int64_t i = 0; i < n; ++i) {
    EXPECT_TRUE(reference.mask.test(i, i)) << "diagonal must be a candidate";
  }
  // 200 samples, ~40 surviving pairs: far below the crossover → sparse.
  EXPECT_TRUE(reference.mask.is_sparse());
  // Rank 0 carries pair-keyed estimates: 1.0 for twins, 0.0 (absent) for
  // never-collided — O(scored pairs), never an n² array.
  EXPECT_LT(reference.estimates.size(), static_cast<std::size_t>(n * n) / 4);
  EXPECT_DOUBLE_EQ(reference.estimate_at(0, 1), 1.0);  // twin (0, 1)
  EXPECT_DOUBLE_EQ(reference.estimate_at(1, 0), 1.0);  // symmetric lookup
  EXPECT_DOUBLE_EQ(reference.estimate_at(0, 0), 1.0);  // diagonal convention
  for (std::size_t e = 0; e < reference.estimates.size(); ++e) {
    EXPECT_LT(reference.estimates[e].i, reference.estimates[e].j);
    EXPECT_NE(reference.estimates[e].est, 0.0) << "zeros must be dropped";
    if (e > 0) {
      EXPECT_TRUE(reference.estimates[e - 1].i < reference.estimates[e].i ||
                  (reference.estimates[e - 1].i == reference.estimates[e].i &&
                   reference.estimates[e - 1].j < reference.estimates[e].j))
          << "estimates must be (i, j)-sorted";
    }
  }

  for (const int ranks : {2, 3, 4}) {
    const auto pass = run_candidate_pass(sets, cfg, ranks);
    EXPECT_EQ(pass.mask.is_sparse(), reference.mask.is_sparse()) << ranks << " ranks";
    EXPECT_EQ(pass.mask.count(), reference.mask.count()) << ranks << " ranks";
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        ASSERT_EQ(pass.mask.test(i, j), reference.mask.test(i, j))
            << ranks << " ranks, pair (" << i << ", " << j << ")";
      }
    }
    EXPECT_EQ(pass.estimates, reference.estimates) << ranks << " ranks";
  }
}

TEST(LshCandidatePass, BucketCapRoutesDegenerateBucketsThroughMiniAllPairs) {
  // 24 IDENTICAL samples collide in EVERY band — the degenerate bucket
  // that would emit 24·23/2 pair words per band. With the cap engaged
  // those buckets go through the replicated capped set + owner-local
  // mini all-pairs instead; the surviving mask must be unchanged (the
  // capped union's pair set covers exactly the bucket's pairs here) and
  // stay deterministic across rank counts.
  Rng rng(57);
  std::vector<std::vector<std::uint64_t>> sets;
  std::vector<std::uint64_t> clones;
  for (int v = 0; v < 60; ++v) clones.push_back(rng());
  for (int c = 0; c < 24; ++c) sets.push_back(clones);
  for (std::int64_t t = 0; t < 6; ++t) {  // plus normal twins + fillers
    std::vector<std::uint64_t> s;
    for (int v = 0; v < 60; ++v) s.push_back(rng());
    sets.push_back(s);
    sets.push_back(std::move(s));
  }
  for (std::int64_t f = 0; f < 20; ++f) {
    std::vector<std::uint64_t> s;
    for (int v = 0; v < 60; ++v) s.push_back(rng());
    sets.push_back(std::move(s));
  }
  const auto n = static_cast<std::int64_t>(sets.size());

  core::Config cfg;
  cfg.estimator = core::Estimator::kMinhash;
  cfg.candidate_mode = core::CandidateMode::kLsh;
  cfg.sketch_size = 256;
  cfg.prune_threshold = 0.5;
  cfg.lsh_bucket_cap = 0;  // uncapped reference
  const auto uncapped = run_candidate_pass(sets, cfg, 2);

  cfg.lsh_bucket_cap = 4;  // far below the 24-clone bucket
  const auto reference = run_candidate_pass(sets, cfg, 1);
  for (const int ranks : {1, 2, 3, 4}) {
    const auto capped = run_candidate_pass(sets, cfg, ranks);
    EXPECT_EQ(capped.mask.count(), reference.mask.count()) << ranks << " ranks";
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        ASSERT_EQ(capped.mask.test(i, j), reference.mask.test(i, j))
            << ranks << " ranks, pair (" << i << ", " << j << ")";
      }
    }
    EXPECT_EQ(capped.estimates, reference.estimates) << ranks << " ranks";
  }

  // Recall: every clone pair and every twin pair survives under the cap,
  // and nothing the uncapped pass kept is lost.
  for (std::int64_t a = 0; a < 24; ++a) {
    for (std::int64_t b = a + 1; b < 24; ++b) {
      EXPECT_TRUE(reference.mask.test(a, b)) << "clone pair (" << a << ", " << b << ")";
    }
  }
  for (std::int64_t t = 0; t < 6; ++t) {
    EXPECT_TRUE(reference.mask.test(24 + 2 * t, 24 + 2 * t + 1)) << "twin " << t;
  }
  std::int64_t lost = 0;
  uncapped.mask.for_each_upper_pair([&](std::int64_t i, std::int64_t j) {
    if (!reference.mask.test(i, j)) ++lost;
  });
  EXPECT_EQ(lost, 0) << "capping must not lose uncapped survivors";
}

TEST(LshCandidatePass, RecallMatchesAllPairsOnGenomeFamilies) {
  // Genome-family corpus at equal sketch budget: banding must lose no
  // pair the all-pairs candidate pass keeps above threshold + slack.
  const int k = 15;
  const genome::KmerCodec codec(k);
  Rng rng(99);
  std::vector<genome::KmerSample> corpus;
  for (int f = 0; f < 8; ++f) {
    const std::string ancestor = genome::random_genome(5000, rng);
    for (int m = 0; m < 2; ++m) {
      const std::string individual =
          m == 0 ? ancestor : genome::mutate_point(ancestor, 0.02, rng);
      corpus.push_back(genome::build_sample("f" + std::to_string(f) + "m" +
                                                std::to_string(m),
                                            {{"g", "", individual}}, codec));
    }
  }
  std::vector<std::vector<std::uint64_t>> sets;
  for (const auto& sample : corpus) {
    sets.emplace_back(sample.kmers.begin(), sample.kmers.end());
  }

  core::Config cfg;
  cfg.estimator = core::Estimator::kMinhash;
  cfg.prune_threshold = 0.1;

  cfg.candidate_mode = core::CandidateMode::kAllPairs;
  const auto all_pairs = run_candidate_pass(sets, cfg, 4);
  cfg.candidate_mode = core::CandidateMode::kLsh;
  const auto lsh = run_candidate_pass(sets, cfg, 4);
  EXPECT_EQ(lsh.effective_threshold, all_pairs.effective_threshold);

  const auto n = static_cast<std::int64_t>(sets.size());
  const double slack = sketch::hybrid_prune_slack(cfg);
  std::int64_t must_survive = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = i + 1; j < n; ++j) {
      ASSERT_LT(i + 1, n);
      const double est = all_pairs.estimate_at(i, j);
      if (est < cfg.prune_threshold + slack) continue;
      ++must_survive;
      EXPECT_TRUE(all_pairs.mask.test(i, j));
      EXPECT_TRUE(lsh.mask.test(i, j))
          << "pair (" << i << ", " << j << ") with estimate " << est
          << " kept by all-pairs but lost by banding";
    }
  }
  EXPECT_EQ(must_survive, 8) << "one within-family pair per family";
}

TEST(LshCandidatePass, HybridDriverParityAcrossRankCounts) {
  // End-to-end acceptance: the hybrid with the LSH candidate pass still
  // rescores survivors bitwise-identically to kExact on 1/2/4 ranks.
  const std::int64_t m = 600;
  Rng rng(7);
  std::vector<std::vector<std::int64_t>> bases(2);
  for (auto& base : bases) {
    for (std::int64_t v = 0; v < m; ++v) {
      if (rng.bernoulli(0.3)) base.push_back(v);
    }
  }
  std::vector<std::vector<std::int64_t>> samples;
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < 8; ++i) {
      std::vector<std::int64_t> s;
      for (std::int64_t v : bases[static_cast<std::size_t>(c)]) {
        if (!rng.bernoulli(0.08)) s.push_back(v);
      }
      for (std::int64_t v = 0; v < m; ++v) {
        if (rng.bernoulli(0.02)) s.push_back(v);
      }
      samples.push_back(std::move(s));
    }
  }
  const core::VectorSampleSource src(m, std::move(samples));
  const std::int64_t n = src.sample_count();

  core::Config exact_cfg;
  exact_cfg.algorithm = core::Algorithm::kRing1D;
  exact_cfg.batch_count = 2;
  const core::Result exact = similarity_at_scale_threaded(2, src, exact_cfg);

  core::Config hybrid_cfg = exact_cfg;
  hybrid_cfg.estimator = core::Estimator::kHybrid;
  hybrid_cfg.prune_threshold = 0.3;
  hybrid_cfg.candidate_mode = core::CandidateMode::kLsh;

  const core::Result reference = similarity_at_scale_threaded(1, src, hybrid_cfg);
  for (const int ranks : {1, 2, 4}) {
    const core::Result hybrid = similarity_at_scale_threaded(ranks, src, hybrid_cfg);
    std::int64_t surviving = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      EXPECT_TRUE(hybrid.candidates.test(i, i));
      for (std::int64_t j = 0; j < n; ++j) {
        ASSERT_EQ(hybrid.candidates.test(i, j), reference.candidates.test(i, j))
            << ranks << " ranks: mask differs at (" << i << ", " << j << ")";
        if (i != j && hybrid.candidates.test(i, j)) {
          ++surviving;
          EXPECT_EQ(hybrid.similarity_at(i, j), exact.similarity.similarity(i, j))
              << ranks << " ranks: survivor (" << i << ", " << j
              << ") must be bitwise-exact";
        }
      }
    }
    EXPECT_GT(surviving, 0) << "within-cluster pairs must survive";
    EXPECT_LT(surviving, n * (n - 1)) << "cross-cluster pairs must be pruned";
  }
}

}  // namespace
}  // namespace sas
