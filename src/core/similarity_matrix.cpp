#include "core/similarity_matrix.hpp"

#include <cmath>
#include <stdexcept>

namespace sas::core {

SimilarityMatrix::SimilarityMatrix(std::int64_t n, std::vector<double> values)
    : n_(n), values_(std::move(values)) {
  if (static_cast<std::int64_t>(values_.size()) != n * n) {
    throw std::invalid_argument("SimilarityMatrix: values size must be n*n");
  }
}

std::vector<double> SimilarityMatrix::distance_matrix() const {
  std::vector<double> d(values_.size());
  for (std::size_t i = 0; i < values_.size(); ++i) d[i] = 1.0 - values_[i];
  return d;
}

double SimilarityMatrix::max_abs_diff(const SimilarityMatrix& other) const {
  if (other.n_ != n_) {
    throw std::invalid_argument("SimilarityMatrix::max_abs_diff: size mismatch");
  }
  double worst = 0.0;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    const double diff = std::fabs(values_[i] - other.values_[i]);
    if (diff > worst) worst = diff;
  }
  return worst;
}

}  // namespace sas::core
