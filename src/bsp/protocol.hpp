// protocol.hpp — debug-build BSP protocol verifier (ledger + registry).
//
// The BSP contract the whole runtime rests on is rank symmetry: every
// rank of a communicator must issue the same collective sequence with
// compatible arguments, and every point-to-point send must be received
// before the run ends. Violations today surface as a watchdog timeout
// 120 s later (a rank blocks in a collective its peers never entered) or
// not at all (a leaked message is silently dropped with the mailbox).
//
// When RuntimeOptions::verify_protocol is armed (or SAS_VERIFY_PROTOCOL
// is set — CI does), each rank appends every collective's
// (op-kind, tag, element-size, count-shape) to a per-rank ProtocolLedger:
// a rolling FNV-1a hash plus a ring of the last kRecent entries. Ledgers
// are cross-checked whenever the communicator synchronizes — at every
// barrier (by the last-arriving rank, under the barrier mutex, which
// orders the peers' ledger writes before the read) and again at
// Runtime::run exit — so a diverging rank fails *immediately* with both
// ranks' recent ledger entries named. At run exit the world's mailboxes
// (and every split child's, via the ProtocolRegistry) are swept for
// unreceived messages, which become typed errors naming (source, dest,
// tag). All checks throw error::ProtocolError (exit code 6).
//
// Cost when disarmed: one branch per collective; the ledgers stay empty.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace sas::bsp {

namespace detail {
struct SharedState;
}  // namespace detail

/// Collective kinds the ledger distinguishes. One entry per *call*, so
/// nested implementations (a flat allreduce records its internal reduce
/// and broadcast too) stay rank-symmetric by construction.
enum class ProtoOp : std::uint8_t {
  kBarrier = 0,
  kBroadcast,
  kReduce,
  kAllreduce,
  kGather,
  kAllgather,
  kScatter,
  kAlltoall,
  kReduceScatter,
  kScan,
  kExscan,
  kSplit,
};

[[nodiscard]] const char* proto_op_name(ProtoOp op) noexcept;

/// One ledgered collective call. `shape` is whichever length argument the
/// collective requires to agree across ranks (element count for reduce
/// flavors, block count for alltoall_v, 0 where per-rank lengths may
/// legitimately differ); `tag` carries the root where the call has one.
struct ProtocolEntry {
  std::uint64_t seq = 0;
  ProtoOp op = ProtoOp::kBarrier;
  int tag = 0;
  std::uint32_t elem_size = 0;
  std::uint64_t shape = 0;
};

[[nodiscard]] std::string format_entry(const ProtocolEntry& entry);

/// Per-rank rolling record of the collective sequence. Written only by
/// the owning rank's thread; read by peers only at synchronization points
/// that already order the writes (barrier mutex, thread join).
class ProtocolLedger {
 public:
  static constexpr std::size_t kRecent = 8;

  void record(ProtoOp op, int tag, std::uint32_t elem_size,
              std::uint64_t shape) noexcept {
    const ProtocolEntry entry{count_, op, tag, elem_size, shape};
    recent_[static_cast<std::size_t>(count_ % kRecent)] = entry;
    ++count_;
    hash_ = mix(hash_, static_cast<std::uint64_t>(op));
    hash_ = mix(hash_, static_cast<std::uint64_t>(static_cast<std::int64_t>(tag)));
    hash_ = mix(hash_, elem_size);
    hash_ = mix(hash_, shape);
  }

  [[nodiscard]] std::uint64_t hash() const noexcept { return hash_; }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

  /// The last min(count, kRecent) entries, oldest first.
  [[nodiscard]] std::vector<ProtocolEntry> recent() const;

  /// Human-readable "#seq op(tag=…, elem=…, shape=…); …" of recent().
  [[nodiscard]] std::string render_recent() const;

 private:
  [[nodiscard]] static std::uint64_t mix(std::uint64_t h,
                                         std::uint64_t v) noexcept {
    // FNV-1a over the 8 bytes of v.
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
    return h;
  }

  std::uint64_t hash_ = 1469598103934665603ull;  // FNV offset basis
  std::uint64_t count_ = 0;
  std::array<ProtocolEntry, kRecent> recent_{};
};

/// World-owned registry of split-child communicator states, so the
/// run-exit sweep can cross-check ledgers and mailbox leaks in
/// sub-communicators too. Holding shared_ptrs keeps the child states
/// alive past the last Comm handle's destruction.
class ProtocolRegistry {
 public:
  void register_child(std::shared_ptr<detail::SharedState> child) {
    std::lock_guard<std::mutex> lock(mutex_);
    children_.push_back(std::move(child));
  }

  [[nodiscard]] std::vector<std::shared_ptr<detail::SharedState>> snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return children_;
  }

  /// Drop every registered child. Recovery only: children created during
  /// an aborted batch attempt hold divergent ledgers and leaked
  /// mailboxes by design, so the rendezvous forgets them (children of
  /// completed batches were already verified consistent at the barriers
  /// they ran through; the run-exit sweep loses only their mailbox-leak
  /// coverage).
  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    children_.clear();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<detail::SharedState>> children_;
};

/// Compare every rank's ledger against rank 0's. Returns "" when they
/// agree, otherwise a report naming the first diverging rank pair and
/// both ranks' recent entries. `where` describes the synchronization
/// point ("barrier", "run exit"); `label` the communicator.
[[nodiscard]] std::string describe_ledger_divergence(
    std::span<const ProtocolLedger> ledgers, const std::string& label,
    const std::string& where);

/// Run-exit sweep over the world state and every registered split child:
/// ledger symmetry plus unreceived point-to-point messages left in any
/// mailbox. Throws error::ProtocolError on the first violation. Call
/// after all rank threads have joined and only when the run did not
/// abort (an aborted run leaks messages by design).
void verify_protocol_at_exit(detail::SharedState& world);

}  // namespace sas::bsp
