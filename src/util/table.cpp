#include "util/table.hpp"

#include <cinttypes>
#include <cstdio>
#include <stdexcept>

namespace sas {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("TextTable: row arity " + std::to_string(row.size()) +
                                " != header arity " + std::to_string(header_.size()));
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::str() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }

  auto render_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) out.append(widths[c] - row[c].size() + 2, ' ');
    }
    out += '\n';
  };

  std::string out;
  render_row(header_, out);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) render_row(row, out);
  return out;
}

void TextTable::print() const {
  const std::string rendered = str();
  std::fwrite(rendered.data(), 1, rendered.size(), stdout);
  std::fflush(stdout);
}

std::string fmt_fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string fmt_bytes(double bytes) {
  static constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 5) {
    bytes /= 1024.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, kUnits[unit]);
  return buf;
}

std::string fmt_duration(double seconds) {
  char buf[64];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
  } else if (seconds < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  } else if (seconds < 2.0 * 3600.0) {
    std::snprintf(buf, sizeof(buf), "%.2f min", seconds / 60.0);
  } else if (seconds < 48.0 * 3600.0) {
    std::snprintf(buf, sizeof(buf), "%.2f h", seconds / 3600.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f d", seconds / 86400.0);
  }
  return buf;
}

std::string fmt_count(std::uint64_t value) {
  char digits[32];
  std::snprintf(digits, sizeof(digits), "%" PRIu64, value);
  std::string raw = digits;
  std::string out;
  out.reserve(raw.size() + raw.size() / 3);
  const std::size_t lead = raw.size() % 3 == 0 ? 3 : raw.size() % 3;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out += ',';
    out += raw[i];
  }
  return out;
}

}  // namespace sas
