#include "genome/genome_at_scale.hpp"

#include <stdexcept>

#include "genome/fasta.hpp"
#include "genome/kmer_source.hpp"

namespace sas::genome {

namespace {

std::string path_stem(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::size_t start = slash == std::string::npos ? 0 : slash + 1;
  const std::size_t dot = path.find_last_of('.');
  const std::size_t end = (dot == std::string::npos || dot <= start) ? path.size() : dot;
  return path.substr(start, end - start);
}

}  // namespace

GenomeAtScaleResult run_genome_at_scale_fasta(const std::vector<std::string>& fasta_paths,
                                              const GenomeAtScaleOptions& options) {
  const KmerCodec codec(options.k);
  std::vector<KmerSample> samples;
  samples.reserve(fasta_paths.size());
  for (const std::string& path : fasta_paths) {
    samples.push_back(
        build_sample(path_stem(path), read_fasta_file(path), codec, options.min_count));
  }
  return run_genome_at_scale(std::move(samples), options);
}

GenomeAtScaleResult run_genome_at_scale(std::vector<KmerSample> samples,
                                        const GenomeAtScaleOptions& options) {
  if (samples.empty()) {
    throw std::invalid_argument("run_genome_at_scale: no samples");
  }
  KmerSampleSource source(options.k, std::move(samples));

  GenomeAtScaleResult result;
  result.sample_names = source.sample_names();
  core::Result core_result =
      core::similarity_at_scale_threaded(options.ranks, source, options.core);
  result.similarity = std::move(core_result.similarity);
  result.batches = std::move(core_result.batches);
  result.active_ranks = core_result.active_ranks;
  return result;
}

}  // namespace sas::genome
