// document_similarity — the information-retrieval use case (paper §II-G).
//
// "J(X,Y) can be defined as the ratio of the counts of common and unique
// words in sets X and Y that model two documents." Documents are
// tokenized into word sets (hashed into an attribute universe), the
// SimilarityAtScale driver computes all-pairs Jaccard, and near-duplicate
// pairs are flagged — the plagiarism-detection framing from the paper's
// introduction. Demonstrates that the core is fully generic: nothing in
// the pipeline below is genomic.
//
// Usage:
//   document_similarity [--ranks 4] [--threshold 0.35]
#include <cctype>
#include <cstdio>
#include <string>
#include <vector>

#include "core/driver.hpp"
#include "core/sample_source.hpp"
#include "util/args.hpp"
#include "util/hashing.hpp"
#include "util/table.hpp"

using namespace sas;

namespace {

/// Lowercased word tokens of a document.
std::vector<std::string> tokenize(const std::string& text) {
  std::vector<std::string> words;
  std::string word;
  for (char c : text) {
    if (std::isalpha(static_cast<unsigned char>(c))) {
      word += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!word.empty()) {
      words.push_back(word);
      word.clear();
    }
  }
  if (!word.empty()) words.push_back(word);
  return words;
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const int ranks = static_cast<int>(args.get_int("ranks", 4));
  const double threshold = args.get_double("threshold", 0.35);

  const std::vector<std::pair<std::string, std::string>> corpus{
      {"report_v1",
       "The Jaccard similarity index measures the overlap of two sets and is widely "
       "used in machine learning information retrieval and computational genomics."},
      {"report_v2",
       "The Jaccard similarity index measures the overlap between two sets and is "
       "widely used in machine learning, information retrieval, and genomics."},
      {"unrelated_recipe",
       "Bring a large pot of salted water to a boil, add the pasta, and cook until "
       "al dente; reserve a cup of cooking water before draining."},
      {"survey",
       "Alignment free methods for genome comparison avoid the cost of alignment "
       "based tools and scale to modern sequencing data sets."},
      {"survey_plagiarized",
       "Alignment free methods for genome comparison avoid the expense of alignment "
       "based tools and scale to contemporary sequencing data sets."},
  };

  // Map word tokens into a hashed attribute universe.
  const std::int64_t universe = 1LL << 20;
  std::vector<std::vector<std::int64_t>> word_sets;
  std::vector<std::string> names;
  for (const auto& [name, text] : corpus) {
    names.push_back(name);
    std::vector<std::int64_t> ids;
    for (const std::string& word : tokenize(text)) {
      ids.push_back(static_cast<std::int64_t>(hash_bytes(word) % universe));
    }
    word_sets.push_back(std::move(ids));
  }
  const core::VectorSampleSource source(universe, std::move(word_sets));

  core::Config config;
  config.batch_count = 2;
  const auto result = core::similarity_at_scale_threaded(ranks, source, config);

  const auto n = result.n;
  TextTable table({"document A", "document B", "Jaccard", "verdict"});
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = i + 1; j < n; ++j) {
      const double jac = result.similarity.similarity(i, j);
      table.add_row({names[static_cast<std::size_t>(i)], names[static_cast<std::size_t>(j)],
                     fmt_fixed(jac, 3),
                     jac >= threshold ? "NEAR-DUPLICATE" : "distinct"});
    }
  }
  std::printf("All-pairs document similarity (word-set Jaccard, threshold %.2f):\n\n",
              threshold);
  table.print();
  return 0;
}
