file(REMOVE_RECURSE
  "CMakeFiles/test_smoke_driver.dir/tests/test_smoke_driver.cpp.o"
  "CMakeFiles/test_smoke_driver.dir/tests/test_smoke_driver.cpp.o.d"
  "test_smoke_driver"
  "test_smoke_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smoke_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
