#include "core/matrix_io.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace sas::core {

namespace {

constexpr char kMagic[4] = {'S', 'A', 'S', 'M'};
constexpr char kSparseMagic[4] = {'S', 'A', 'S', 'P'};

void check_names(std::int64_t n, const std::vector<std::string>& names) {
  if (static_cast<std::int64_t>(names.size()) != n) {
    throw std::invalid_argument("similarity I/O: one name per sample required");
  }
  for (const std::string& name : names) {
    if (name.find('\n') != std::string::npos) {
      throw std::invalid_argument("similarity I/O: names must not contain newlines");
    }
  }
}

template <typename T>
void write_raw(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_raw(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("similarity I/O: truncated input");
  return value;
}

void write_name_block(std::ostream& out, const std::vector<std::string>& names) {
  std::string name_block;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i > 0) name_block += '\n';
    name_block += names[i];
  }
  write_raw<std::uint64_t>(out, static_cast<std::uint64_t>(name_block.size()));
  out.write(name_block.data(), static_cast<std::streamsize>(name_block.size()));
}

std::vector<std::string> read_name_block(std::istream& in, std::int64_t n) {
  const auto name_bytes = read_raw<std::uint64_t>(in);
  std::string name_block(name_bytes, '\0');
  in.read(name_block.data(), static_cast<std::streamsize>(name_bytes));
  if (!in) throw std::runtime_error("similarity I/O: truncated names");
  std::vector<std::string> names;
  if (n > 0) {
    std::size_t start = 0;
    while (true) {
      const std::size_t end = name_block.find('\n', start);
      names.push_back(name_block.substr(
          start, end == std::string::npos ? std::string::npos : end - start));
      if (end == std::string::npos) break;
      start = end + 1;
    }
  }
  if (static_cast<std::int64_t>(names.size()) != n) {
    throw std::runtime_error("similarity I/O: name count mismatch");
  }
  return names;
}

template <typename T>
void write_array(std::ostream& out, const std::vector<T>& values) {
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(values.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_array(std::istream& in, std::uint64_t count) {
  std::vector<T> values(static_cast<std::size_t>(count));
  in.read(reinterpret_cast<char*>(values.data()),
          static_cast<std::streamsize>(values.size() * sizeof(T)));
  if (!in) throw std::runtime_error("similarity I/O: truncated values");
  return values;
}

}  // namespace

void write_similarity_binary(std::ostream& out, const std::vector<std::string>& names,
                             const SimilarityMatrix& matrix) {
  check_names(matrix.size(), names);
  out.write(kMagic, sizeof(kMagic));
  write_raw<std::uint64_t>(out, static_cast<std::uint64_t>(matrix.size()));
  write_name_block(out, names);
  write_array(out, matrix.values());
  if (!out) throw std::runtime_error("similarity I/O: write failed");
}

NamedSimilarity read_similarity_binary(std::istream& in) {
  char magic[4] = {};
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("similarity I/O: bad magic");
  }
  const auto n = static_cast<std::int64_t>(read_raw<std::uint64_t>(in));
  NamedSimilarity result;
  result.names = read_name_block(in, n);
  result.matrix = SimilarityMatrix(
      n, read_array<double>(in, static_cast<std::uint64_t>(n * n)));
  return result;
}

void write_similarity_binary_file(const std::string& path,
                                  const std::vector<std::string>& names,
                                  const SimilarityMatrix& matrix) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write similarity file: " + path);
  write_similarity_binary(out, names, matrix);
}

NamedSimilarity read_similarity_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open similarity file: " + path);
  return read_similarity_binary(in);
}

void write_sparse_similarity_binary(std::ostream& out,
                                    const std::vector<std::string>& names,
                                    const SparseSimilarity& sparse) {
  check_names(sparse.size(), names);
  out.write(kSparseMagic, sizeof(kSparseMagic));
  write_raw<std::uint64_t>(out, static_cast<std::uint64_t>(sparse.size()));
  write_name_block(out, names);
  write_raw<std::uint64_t>(out, static_cast<std::uint64_t>(sparse.survivor_count()));
  write_array(out, sparse.survivor_keys());
  write_array(out, sparse.survivor_values());
  write_raw<std::uint64_t>(out, static_cast<std::uint64_t>(sparse.estimate_count()));
  write_array(out, sparse.estimate_keys());
  write_array(out, sparse.estimate_values());
  write_raw<std::uint64_t>(out,
                           static_cast<std::uint64_t>(sparse.union_cardinalities().size()));
  write_array(out, sparse.union_cardinalities());
  if (!out) throw std::runtime_error("similarity I/O: write failed");
}

NamedSparseSimilarity read_sparse_similarity_binary(std::istream& in) {
  char magic[4] = {};
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kSparseMagic, sizeof(kSparseMagic)) != 0) {
    throw std::runtime_error("similarity I/O: bad sparse magic");
  }
  const auto n = static_cast<std::int64_t>(read_raw<std::uint64_t>(in));
  NamedSparseSimilarity result;
  result.names = read_name_block(in, n);
  const auto survivors = read_raw<std::uint64_t>(in);
  auto survivor_keys = read_array<std::uint64_t>(in, survivors);
  auto survivor_values = read_array<double>(in, survivors);
  const auto estimates = read_raw<std::uint64_t>(in);
  auto estimate_keys = read_array<std::uint64_t>(in, estimates);
  auto estimate_values = read_array<double>(in, estimates);
  const auto ahat_len = read_raw<std::uint64_t>(in);
  auto ahat = read_array<std::int64_t>(in, ahat_len);
  // The SparseSimilarity constructor re-validates sortedness/ranges, so a
  // corrupted file throws here instead of yielding silent wrong lookups.
  result.sparse =
      SparseSimilarity(n, std::move(survivor_keys), std::move(survivor_values),
                       std::move(estimate_keys), std::move(estimate_values),
                       std::move(ahat));
  return result;
}

void write_sparse_similarity_binary_file(const std::string& path,
                                         const std::vector<std::string>& names,
                                         const SparseSimilarity& sparse) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write similarity file: " + path);
  write_sparse_similarity_binary(out, names, sparse);
}

NamedSparseSimilarity read_sparse_similarity_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open similarity file: " + path);
  return read_sparse_similarity_binary(in);
}

void write_similarity_tsv(std::ostream& out, const std::vector<std::string>& names,
                          const SimilarityMatrix& matrix) {
  check_names(matrix.size(), names);
  const std::int64_t n = matrix.size();
  out << "sample";
  for (const std::string& name : names) out << '\t' << name;
  out << '\n';
  out.precision(17);
  for (std::int64_t i = 0; i < n; ++i) {
    out << names[static_cast<std::size_t>(i)];
    for (std::int64_t j = 0; j < n; ++j) out << '\t' << matrix.similarity(i, j);
    out << '\n';
  }
}

}  // namespace sas::core
