// packing.hpp — per-batch preprocessing (paper §III-B, Listing 2's
// preprocessInput): zero-row filtering and bitmask compression.
//
// Given one row batch A⁽ˡ⁾ of the indicator matrix, each rank
//   1. reads the attribute values of its samples restricted to the batch
//      (cyclic sample ownership: sample i is read by rank i mod p),
//   2. contributes observed row offsets to the distributed filter f⁽ˡ⁾
//      and obtains the replicated sorted filter (Eq. 5),
//   3. remaps each value to its compacted row id — the prefix sum p⁽ˡ⁾ of
//      the filter (Eq. 6) — and packs segments of `bit_width` compacted
//      rows into word masks (Eq. 7).
//
// The output triplets are globally indexed (word_row, sample) pairs ready
// for redistribution onto the processor grid.
#pragma once

#include <cstdint>
#include <vector>

#include "bsp/comm.hpp"
#include "core/sample_source.hpp"
#include "distmat/block.hpp"
#include "distmat/triplet.hpp"

namespace sas::core {

struct PackedBatch {
  /// h: word-rows of the packed batch matrix Â⁽ˡ⁾ (absent words are zero).
  std::int64_t word_rows = 0;
  /// Rows surviving the zero-row filter (batch height m̃ when filtering is
  /// disabled). Equals the length of the filter vector's support.
  std::int64_t filtered_rows = 0;
  /// This rank's packed entries: (word_row, sample, mask), global indices,
  /// at most one entry per (word_row, sample) pair.
  std::vector<distmat::Triplet<std::uint64_t>> triplets;
};

/// Collective over `comm`: build this rank's packed share of batch
/// `rows`. `bit_width` ∈ [1, 64] is the paper's b; `use_filter` toggles
/// the zero-row compaction (Eq. 5–6).
[[nodiscard]] PackedBatch pack_batch(bsp::Comm& comm, const SampleSource& source,
                                     distmat::BlockRange rows, int bit_width,
                                     bool use_filter);

}  // namespace sas::core
