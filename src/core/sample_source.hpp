// sample_source.hpp — the input abstraction of SimilarityAtScale.
//
// A SampleSource presents n data samples, each a set of integer attribute
// ids in [0, m) (paper §II-A: Xᵢ ⊆ {1..m}). The driver streams the
// attribute space in row batches (Eq. 3), so sources only ever materialize
// the values of one sample restricted to one range — this is what lets m
// be astronomically large (4³¹ k-mers) while memory stays bounded.
//
// Concrete sources:
//  * VectorSampleSource    — in-memory sets (tests, examples, small data)
//  * genome::KmerFileSource— sorted per-sample k-mer files (paper §IV)
//  * BernoulliSampleSource — synthetic i.i.d. density-p matrices (§V-A3)
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "distmat/block.hpp"

namespace sas::core {

class SampleSource {
 public:
  virtual ~SampleSource() = default;

  /// Number of data samples n (columns of the indicator matrix).
  [[nodiscard]] virtual std::int64_t sample_count() const = 0;

  /// Attribute universe size m (rows of the indicator matrix).
  [[nodiscard]] virtual std::int64_t attribute_universe() const = 0;

  /// Sorted, duplicate-free attribute ids of sample `sample` restricted
  /// to [range.begin, range.end). This is the per-batch read (the paper's
  /// readFiles(): "scanning through one batch at a time").
  [[nodiscard]] virtual std::vector<std::int64_t> values_in_range(
      std::int64_t sample, distmat::BlockRange range) const = 0;

  /// Persisted sketch wire blob for `sample` matching `config`'s sketch
  /// estimator and parameters (written by `gas sketch --estimator`), or
  /// empty when the source has none. Sketch pipelines consult this before
  /// re-streaming a sample; callers validate compatibility against the
  /// config (sketch::wire_matches_config) before trusting the blob.
  [[nodiscard]] virtual std::vector<std::uint64_t> persisted_sketch(
      std::int64_t /*sample*/, const Config& /*config*/) const {
    return {};
  }
};

/// In-memory sample sets. Construction sorts and deduplicates.
class VectorSampleSource final : public SampleSource {
 public:
  VectorSampleSource(std::int64_t universe,
                     std::vector<std::vector<std::int64_t>> samples);

  [[nodiscard]] std::int64_t sample_count() const override {
    return static_cast<std::int64_t>(samples_.size());
  }
  [[nodiscard]] std::int64_t attribute_universe() const override { return universe_; }
  [[nodiscard]] std::vector<std::int64_t> values_in_range(
      std::int64_t sample, distmat::BlockRange range) const override;

  /// Whole sample as a sorted set (used by brute-force references).
  [[nodiscard]] const std::vector<std::int64_t>& sample(std::int64_t i) const {
    return samples_[static_cast<std::size_t>(i)];
  }

 private:
  std::int64_t universe_;
  std::vector<std::vector<std::int64_t>> samples_;
};

/// Synthetic source: attribute k ∈ sample i with probability `density`,
/// independently (paper §V-A3). Membership is a pure function of
/// (seed, sample, attribute) — no storage — so benches can model matrices
/// with millions of rows. Sampling draws Binomial(range, density) ids per
/// (sample, range) deterministically.
///
/// `density_spread` > 1 makes per-sample densities log-uniform in
/// [density/spread, density·spread], reproducing the "high variability of
/// density across different columns" of the BIGSI corpus (paper §V-B).
class BernoulliSampleSource final : public SampleSource {
 public:
  BernoulliSampleSource(std::int64_t universe, std::int64_t samples, double density,
                        std::uint64_t seed, double density_spread = 1.0);

  [[nodiscard]] std::int64_t sample_count() const override { return samples_; }
  [[nodiscard]] std::int64_t attribute_universe() const override { return universe_; }
  [[nodiscard]] std::vector<std::int64_t> values_in_range(
      std::int64_t sample, distmat::BlockRange range) const override;

  [[nodiscard]] double density() const noexcept { return density_; }

  /// Effective density of one sample (= `density` unless spread > 1).
  [[nodiscard]] double sample_density(std::int64_t sample) const;

 private:
  std::int64_t universe_;
  std::int64_t samples_;
  double density_;
  std::uint64_t seed_;
  double spread_;
};

}  // namespace sas::core
