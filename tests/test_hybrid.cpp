// test_hybrid.cpp — the sketch-prune → exact-rescore hybrid estimator.
//
// The hybrid's contract (core/driver.hpp):
//   * every surviving (masked) pair is BITWISE-identical to the kExact
//     pipeline's value, for every algorithm / rank count / batch count;
//   * no pair with true J ≥ prune_threshold + slack is ever pruned
//     (recall — the slack guards against sketch estimation error);
//   * pruned pairs carry their sketch estimates, not garbage;
//   * the rescore exchange moves fewer bytes than the exact ring on
//     pair-sparse corpora (the targeted alltoall + column dropping);
//   * persisted sketch blobs are loaded instead of re-sketching.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "analysis/similar_pairs.hpp"
#include "bsp/cost_model.hpp"
#include "bsp/runtime.hpp"
#include "core/driver.hpp"
#include "core/sample_source.hpp"
#include "distmat/spgemm.hpp"
#include "genome/kmer_source.hpp"
#include "genome/sample.hpp"
#include "genome/synthetic.hpp"
#include "sketch/exchange.hpp"
#include "sketch/sketch.hpp"
#include "util/rng.hpp"

namespace sas {
namespace {

/// Two-cluster synthetic source: high Jaccard within a cluster (shared
/// base set plus light noise), near-zero across clusters — the regime the
/// hybrid targets.
core::VectorSampleSource clustered_source(std::int64_t m, int per_cluster,
                                          std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<std::int64_t>> bases(2);
  for (auto& base : bases) {
    for (std::int64_t v = 0; v < m; ++v) {
      if (rng.bernoulli(0.3)) base.push_back(v);
    }
  }
  std::vector<std::vector<std::int64_t>> samples;
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < per_cluster; ++i) {
      std::vector<std::int64_t> s;
      for (std::int64_t v : bases[static_cast<std::size_t>(c)]) {
        if (!rng.bernoulli(0.08)) s.push_back(v);  // drop a few
      }
      for (std::int64_t v = 0; v < m; ++v) {
        if (rng.bernoulli(0.02)) s.push_back(v);  // add a few
      }
      samples.push_back(std::move(s));
    }
  }
  return core::VectorSampleSource(m, std::move(samples));
}

/// Genome family corpus: `families` unrelated ancestors, `members`
/// mutated relatives each, interleaved so block-distributed ranks hold
/// one member of several families (cross-rank surviving pairs).
genome::KmerSampleSource family_corpus(int k, int families, int members,
                                       std::int64_t genome_length, double rate,
                                       std::uint64_t seed) {
  const genome::KmerCodec codec(k);
  Rng rng(seed);
  std::vector<std::string> ancestors;
  for (int f = 0; f < families; ++f) {
    ancestors.push_back(genome::random_genome(genome_length, rng));
  }
  std::vector<genome::KmerSample> corpus;
  for (int i = 0; i < members; ++i) {
    for (int f = 0; f < families; ++f) {
      const std::string& ancestor = ancestors[static_cast<std::size_t>(f)];
      const std::string individual =
          i == 0 ? ancestor : genome::mutate_point(ancestor, rate, rng);
      corpus.push_back(genome::build_sample(
          "f" + std::to_string(f) + "m" + std::to_string(i), {{"g", "", individual}},
          codec));
    }
  }
  return genome::KmerSampleSource(k, std::move(corpus));
}

struct HybridCase {
  core::Algorithm algorithm;
  int nranks;
  int batch_count;
  int replication;
};

class HybridEquivalence : public ::testing::TestWithParam<HybridCase> {};

TEST_P(HybridEquivalence, SurvivingPairsBitwiseEqualExact) {
  const HybridCase c = GetParam();
  const auto src = clustered_source(/*m=*/600, /*per_cluster=*/8, /*seed=*/7);
  const std::int64_t n = src.sample_count();

  core::Config exact_cfg;
  exact_cfg.algorithm = c.algorithm;
  exact_cfg.batch_count = c.batch_count;
  exact_cfg.replication = c.replication;
  const core::Result exact = similarity_at_scale_threaded(c.nranks, src, exact_cfg);

  core::Config hybrid_cfg = exact_cfg;
  hybrid_cfg.estimator = core::Estimator::kHybrid;
  hybrid_cfg.prune_threshold = 0.3;
  const core::Result hybrid = similarity_at_scale_threaded(c.nranks, src, hybrid_cfg);

  ASSERT_EQ(hybrid.n, n);
  ASSERT_EQ(hybrid.candidates.size(), n);
  // The hybrid assembles the survivor-sparse output by default: the
  // dense matrix must not even exist on rank 0.
  EXPECT_TRUE(hybrid.sparse_output());
  EXPECT_TRUE(hybrid.similarity.empty());
  ASSERT_EQ(hybrid.sparse_similarity.size(), n);

  std::int64_t surviving = 0;
  std::int64_t pruned = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    EXPECT_TRUE(hybrid.candidates.test(i, i)) << "diagonal must be a candidate";
    for (std::int64_t j = 0; j < n; ++j) {
      EXPECT_EQ(hybrid.candidates.test(i, j), hybrid.candidates.test(j, i))
          << "mask must be symmetric at (" << i << ", " << j << ")";
      EXPECT_EQ(hybrid.sparse_similarity.is_survivor(i, j),
                i != j && hybrid.candidates.test(i, j))
          << "survivor set must mirror the off-diagonal mask at (" << i << ", " << j
          << ")";
      const double h = hybrid.similarity_at(i, j);
      const double e = exact.similarity.similarity(i, j);
      if (hybrid.candidates.test(i, j)) {
        EXPECT_EQ(h, e) << "surviving pair (" << i << ", " << j
                        << ") must be bitwise-exact";
        ++surviving;
      } else {
        // Pruned pairs carry sketch estimates: bounded error, not garbage.
        EXPECT_GE(h, 0.0);
        EXPECT_LE(h, 1.0);
        EXPECT_NEAR(h, e, 0.1) << "pruned pair (" << i << ", " << j << ")";
        ++pruned;
      }
    }
  }
  // The two-cluster fixture must actually exercise both sides.
  EXPECT_GT(surviving, n);  // diagonal + within-cluster pairs
  EXPECT_GT(pruned, 0);     // cross-cluster pairs
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, HybridEquivalence,
    ::testing::Values(HybridCase{core::Algorithm::kSerial, 1, 1, 1},
                      HybridCase{core::Algorithm::kSerial, 3, 2, 1},
                      HybridCase{core::Algorithm::kRing1D, 1, 1, 1},
                      HybridCase{core::Algorithm::kRing1D, 4, 3, 1},
                      HybridCase{core::Algorithm::kRing1D, 5, 2, 1},
                      HybridCase{core::Algorithm::kSumma, 4, 2, 1},
                      HybridCase{core::Algorithm::kSumma, 9, 3, 1},
                      HybridCase{core::Algorithm::kSumma, 8, 2, 2},   // 2.5D
                      HybridCase{core::Algorithm::kSumma, 6, 2, 1})); // inactive ranks

TEST(Hybrid, PrunedEntriesEqualPureSketchEstimates) {
  const auto src = clustered_source(600, 6, 11);
  const std::int64_t n = src.sample_count();

  core::Config sketch_cfg;
  sketch_cfg.algorithm = core::Algorithm::kRing1D;
  sketch_cfg.estimator = core::Estimator::kMinhash;
  const core::Result sketched = similarity_at_scale_threaded(3, src, sketch_cfg);

  core::Config hybrid_cfg = sketch_cfg;
  hybrid_cfg.estimator = core::Estimator::kHybrid;
  hybrid_cfg.hybrid_sketch = core::Estimator::kMinhash;
  hybrid_cfg.prune_threshold = 0.3;
  const core::Result hybrid = similarity_at_scale_threaded(3, src, hybrid_cfg);

  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      if (i == j || hybrid.candidates.test(i, j)) continue;
      EXPECT_EQ(hybrid.similarity_at(i, j), sketched.similarity.similarity(i, j))
          << "pruned pair (" << i << ", " << j
          << ") must carry the sketch estimate";
    }
  }
}

TEST(Hybrid, RecallOnGenomeFamilies) {
  const int k = 15;
  const auto src = family_corpus(k, /*families=*/4, /*members=*/3,
                                 /*genome_length=*/6000, /*rate=*/0.02, /*seed=*/99);
  const std::int64_t n = src.sample_count();

  core::Config exact_cfg;
  exact_cfg.algorithm = core::Algorithm::kRing1D;
  exact_cfg.batch_count = 3;
  const core::Result exact = similarity_at_scale_threaded(4, src, exact_cfg);

  core::Config hybrid_cfg = exact_cfg;
  hybrid_cfg.estimator = core::Estimator::kHybrid;
  hybrid_cfg.prune_threshold = 0.1;
  const double slack = sketch::hybrid_prune_slack(hybrid_cfg);
  const core::Result hybrid = similarity_at_scale_threaded(4, src, hybrid_cfg);

  std::int64_t pruned = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = i + 1; j < n; ++j) {
      const double truth = exact.similarity.similarity(i, j);
      if (truth >= hybrid_cfg.prune_threshold + slack) {
        EXPECT_TRUE(hybrid.candidates.test(i, j))
            << "pair (" << i << ", " << j << ") with true J = " << truth
            << " must not be pruned";
      }
      if (!hybrid.candidates.test(i, j)) ++pruned;
      if (hybrid.candidates.test(i, j)) {
        EXPECT_EQ(hybrid.similarity_at(i, j), truth);
      }
    }
  }
  // Cross-family pairs (J ≈ 0) dominate and must actually be pruned.
  EXPECT_GT(pruned, n);
}

TEST(Hybrid, TargetedExchangeBeatsExactRingBytes) {
  const int k = 15;
  // 16 samples over 8 ranks: each sample's 2 family partners live on
  // other ranks, so survivors still need the exchange — but only 2 of 7
  // peers, which is where the targeted alltoall wins over the ring.
  const auto src = family_corpus(k, /*families=*/8, /*members=*/2,
                                 /*genome_length=*/6000, /*rate=*/0.02, /*seed=*/5);

  core::Config exact_cfg;
  exact_cfg.algorithm = core::Algorithm::kRing1D;
  exact_cfg.batch_count = 2;
  std::vector<bsp::CostCounters> exact_counters;
  const core::Result exact =
      similarity_at_scale_threaded(8, src, exact_cfg, &exact_counters);
  const auto exact_cost = bsp::CostSummary::aggregate(exact_counters);

  core::Config hybrid_cfg = exact_cfg;
  hybrid_cfg.estimator = core::Estimator::kHybrid;
  hybrid_cfg.prune_threshold = 0.1;
  hybrid_cfg.sketch_size = 256;  // small sketches: the prune pass is cheap
  std::vector<bsp::CostCounters> hybrid_counters;
  const core::Result hybrid =
      similarity_at_scale_threaded(8, src, hybrid_cfg, &hybrid_counters);
  const auto hybrid_cost = bsp::CostSummary::aggregate(hybrid_counters);

  EXPECT_LT(hybrid_cost.total_bytes, exact_cost.total_bytes)
      << "sketch pass + targeted rescore must undercut the exact ring";
  // And the survivors still came out exact.
  const std::int64_t n = src.sample_count();
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      if (hybrid.candidates.test(i, j)) {
        EXPECT_EQ(hybrid.similarity_at(i, j), exact.similarity.similarity(i, j));
      }
    }
  }
}

TEST(Hybrid, BatchAndStageStatsReportMeasuredTraffic) {
  const auto src = clustered_source(600, 6, 3);

  core::Config cfg;
  cfg.algorithm = core::Algorithm::kRing1D;
  cfg.batch_count = 3;
  std::vector<bsp::CostCounters> counters;
  const core::Result result = similarity_at_scale_threaded(4, src, cfg, &counters);

  ASSERT_EQ(result.batches.size(), 3u);
  for (const core::BatchStats& bs : result.batches) {
    EXPECT_GT(bs.bytes_sent, 0) << "multi-rank batches move panel bytes";
    EXPECT_GT(bs.bytes_received, 0);
  }
  // Ingest is purely local; the exchange stage carries the panel traffic.
  EXPECT_EQ(result.stages[core::Stage::kIngest].bytes_sent, 0u);
  EXPECT_GT(result.stages[core::Stage::kExchange].bytes_sent, 0u);
  EXPECT_GT(result.stages[core::Stage::kMultiply].seconds, 0.0);

  // Every non-self payload is both sent and received in the bsp runtime.
  const auto cost = bsp::CostSummary::aggregate(counters);
  EXPECT_EQ(cost.total_bytes, cost.total_bytes_received);
}

TEST(Hybrid, PersistedSketchesAreLoadedAndValidated) {
  const int k = 15;
  const genome::KmerCodec codec(k);
  Rng rng(21);
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "sas_hybrid_persist";
  std::filesystem::create_directories(dir);

  // Three unrelated genomes: all true pairwise J ≈ 0.
  std::vector<std::string> paths;
  std::vector<genome::KmerSample> samples;
  for (int i = 0; i < 3; ++i) {
    const auto sample = genome::build_sample(
        "s" + std::to_string(i), {{"g", "", genome::random_genome(5000, rng)}}, codec);
    const std::string path = (dir / ("s" + std::to_string(i) + ".kmers")).string();
    genome::write_sample_file(path, sample);
    paths.push_back(path);
    samples.push_back(sample);
  }
  const genome::KmerFileSource source(k, paths);

  core::Config cfg;
  cfg.algorithm = core::Algorithm::kRing1D;
  cfg.estimator = core::Estimator::kHybrid;
  cfg.prune_threshold = 0.5;

  const core::Result fresh = similarity_at_scale_threaded(2, source, cfg);
  EXPECT_FALSE(fresh.candidates.test(0, 1)) << "unrelated genomes must be pruned";

  // Forge sample 0's persisted blob from sample 1's k-mers (compatible
  // header). If the pipeline loads it, pair (0, 1) estimates as J = 1 and
  // survives — proof the blob replaced re-sketching.
  const sketch::OnePermMinHash forged(std::span<const std::uint64_t>(samples[1].kmers),
                                      cfg.sketch_size, cfg.minhash_bits,
                                      cfg.sketch_seed);
  sketch::write_wire_file(source.sketch_path(0, cfg), forged.wire());
  const core::Result loaded = similarity_at_scale_threaded(2, source, cfg);
  EXPECT_TRUE(loaded.candidates.test(0, 1)) << "persisted blob was not loaded";

  // An incompatible blob (different seed) must be ignored.
  core::Config other_seed = cfg;
  other_seed.sketch_seed = cfg.sketch_seed + 1;
  const sketch::OnePermMinHash incompatible(
      std::span<const std::uint64_t>(samples[1].kmers), cfg.sketch_size,
      cfg.minhash_bits, other_seed.sketch_seed);
  sketch::write_wire_file(source.sketch_path(0, cfg), incompatible.wire());
  const core::Result ignored = similarity_at_scale_threaded(2, source, cfg);
  EXPECT_FALSE(ignored.candidates.test(0, 1))
      << "parameter-incompatible blob must be ignored";
}

TEST(Hybrid, RingScheduleSkipsFullyPrunedPanels) {
  // Direct kernel-level coverage of ring_ata_accumulate's whole-panel
  // prune skip (the driver's Ring1D hybrid path uses the targeted
  // exchange instead, so this branch needs its own exercise): masked
  // pairs must still come out identical to the unpruned ring.
  const std::int64_t h = 37;
  const std::int64_t n = 16;
  Rng rng(404);
  std::vector<distmat::Triplet<std::uint64_t>> entries;
  for (std::int64_t w = 0; w < h; ++w) {
    for (std::int64_t c = 0; c < n; ++c) {
      if (rng.bernoulli(0.35)) entries.push_back({w, c, rng()});
    }
  }
  const distmat::SparseBlock full{h, n, entries};
  const distmat::DenseBlock<std::int64_t> expected = distmat::serial_ata(full);

  // Two clusters of 8; with 4 ranks each rank's rows pair with only one
  // other rank's columns, so half the arriving panels are skipped whole.
  distmat::PairMask bits(n);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      if ((i < 8) == (j < 8)) bits.set(i, j);
    }
  }
  const distmat::CandidateMask mask(std::move(bits));

  bsp::Runtime::run(4, [&](bsp::Comm& comm) {
    const int p = comm.size();
    const distmat::BlockRange my_cols = distmat::block_range(n, p, comm.rank());
    std::vector<distmat::Triplet<std::uint64_t>> mine;
    for (const auto& t : full.entries) {
      if (my_cols.contains(t.col)) mine.push_back({t.row, t.col - my_cols.begin, t.value});
    }
    const distmat::SparseBlock panel{h, my_cols.size(), std::move(mine)};
    distmat::DenseBlock<std::int64_t> b_panel(my_cols, distmat::BlockRange{0, n});
    distmat::CsrAtaOptions options;
    options.prune = &mask;
    distmat::ring_ata_accumulate(comm, n, panel, b_panel,
                                 distmat::RingSchedule::kOverlapped, options);
    for (std::int64_t i = my_cols.begin; i < my_cols.end; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        if (mask.test(i, j)) {
          EXPECT_EQ(b_panel.at_global(i, j), expected.at_global(i, j))
              << "masked pair (" << i << ", " << j << ")";
        }
      }
    }
  });
}

TEST(Hybrid, CandidatePairsWalksTheMask) {
  const auto src = clustered_source(600, 5, 13);
  const std::int64_t n = src.sample_count();

  core::Config cfg;
  cfg.algorithm = core::Algorithm::kRing1D;
  cfg.estimator = core::Estimator::kHybrid;
  cfg.prune_threshold = 0.3;
  const core::Result result = similarity_at_scale_threaded(3, src, cfg);

  // Sparse output (the default): the survivor walk IS the pair listing.
  ASSERT_TRUE(result.sparse_output());
  const auto pairs = analysis::candidate_pairs(result.sparse_similarity);
  std::int64_t masked_offdiag = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = i + 1; j < n; ++j) {
      if (result.candidates.test(i, j)) ++masked_offdiag;
    }
  }
  ASSERT_EQ(static_cast<std::int64_t>(pairs.size()), masked_offdiag);
  for (std::size_t idx = 0; idx < pairs.size(); ++idx) {
    EXPECT_TRUE(result.candidates.test(pairs[idx].a, pairs[idx].b));
    EXPECT_LT(pairs[idx].a, pairs[idx].b);
    EXPECT_EQ(pairs[idx].similarity,
              result.similarity_at(pairs[idx].a, pairs[idx].b));
    if (idx > 0) {
      EXPECT_GE(pairs[idx - 1].similarity, pairs[idx].similarity);
    }
  }

  // Re-thresholding on the exact value filters within the candidates.
  const auto strict = analysis::candidate_pairs(result.sparse_similarity, 0.99);
  for (const auto& pair : strict) EXPECT_GE(pair.similarity, 0.99);
  EXPECT_LE(strict.size(), pairs.size());

  // The dense-output mode still feeds the mask-walk overload.
  core::Config dense_cfg = cfg;
  dense_cfg.dense_output = true;
  const core::Result dense = similarity_at_scale_threaded(3, src, dense_cfg);
  ASSERT_FALSE(dense.sparse_output());
  const auto dense_pairs =
      analysis::candidate_pairs(dense.similarity, dense.candidates);
  ASSERT_EQ(dense_pairs.size(), pairs.size());
  for (std::size_t idx = 0; idx < pairs.size(); ++idx) {
    EXPECT_EQ(dense_pairs[idx].a, pairs[idx].a);
    EXPECT_EQ(dense_pairs[idx].b, pairs[idx].b);
    EXPECT_EQ(dense_pairs[idx].similarity, pairs[idx].similarity);
  }

  const distmat::CandidateMask wrong_size(distmat::PairMask(n + 1));
  EXPECT_THROW((void)analysis::candidate_pairs(dense.similarity, wrong_size),
               std::invalid_argument);
}

}  // namespace
}  // namespace sas
