file(REMOVE_RECURSE
  "CMakeFiles/test_bsp.dir/tests/test_bsp.cpp.o"
  "CMakeFiles/test_bsp.dir/tests/test_bsp.cpp.o.d"
  "test_bsp"
  "test_bsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
