#include "distmat/spgemm.hpp"

#include <functional>
#include <stdexcept>

#include "util/popcount.hpp"

namespace sas::distmat {

void popcount_join_accumulate(std::span<const Triplet<std::uint64_t>> L,
                              std::span<const Triplet<std::uint64_t>> N,
                              std::int64_t l_col_base, std::int64_t n_col_base,
                              DenseBlock<std::int64_t>& out,
                              bsp::CostCounters* counters) {
  const std::int64_t stride = out.local_cols();
  std::int64_t* const values = out.values.data();
  std::uint64_t flops = 0;

  std::size_t i = 0;
  std::size_t j = 0;
  while (i < L.size() && j < N.size()) {
    const std::int64_t lr = L[i].row;
    const std::int64_t nr = N[j].row;
    if (lr < nr) {
      while (i < L.size() && L[i].row == lr) ++i;
    } else if (nr < lr) {
      while (j < N.size() && N[j].row == nr) ++j;
    } else {
      std::size_t ie = i;
      while (ie < L.size() && L[ie].row == lr) ++ie;
      std::size_t je = j;
      while (je < N.size() && N[je].row == lr) ++je;
      for (std::size_t a = i; a < ie; ++a) {
        const std::int64_t out_row = l_col_base + L[a].col;
        const std::uint64_t wa = L[a].value;
        std::int64_t* const row_values = values + out_row * stride + n_col_base;
        for (std::size_t b = j; b < je; ++b) {
          row_values[N[b].col] += popcount64(wa & N[b].value);
        }
      }
      flops += static_cast<std::uint64_t>(ie - i) * static_cast<std::uint64_t>(je - j);
      i = ie;
      j = je;
    }
  }
  if (counters != nullptr) counters->flops += flops;
}

DenseBlock<std::int64_t> serial_ata(const SparseBlock& block) {
  DenseBlock<std::int64_t> out(BlockRange{0, block.cols}, BlockRange{0, block.cols});
  popcount_join_accumulate(block.entries, block.entries, 0, 0, out, nullptr);
  return out;
}

void ring_ata_accumulate(bsp::Comm& comm, std::int64_t n, const SparseBlock& my_panel,
                         DenseBlock<std::int64_t>& b_panel) {
  const int p = comm.size();
  const int r = comm.rank();
  constexpr int kTagRing = 300;

  if (b_panel.col_range.begin != 0 || b_panel.col_range.end != n) {
    throw std::invalid_argument("ring_ata_accumulate: b_panel must span all n columns");
  }

  std::vector<Triplet<std::uint64_t>> current = my_panel.entries;
  int current_owner = r;
  for (int step = 0; step < p; ++step) {
    const std::int64_t col_base = block_range(n, p, current_owner).begin;
    popcount_join_accumulate(my_panel.entries, current, 0, col_base, b_panel,
                             &comm.counters());
    if (step + 1 == p) break;
    comm.send<Triplet<std::uint64_t>>((r + 1) % p, kTagRing,
                                      std::span<const Triplet<std::uint64_t>>(current));
    current = comm.recv<Triplet<std::uint64_t>>((r + p - 1) % p, kTagRing);
    current_owner = (current_owner + p - 1) % p;
  }
}

void summa_ata_accumulate(ProcGrid& grid, const SparseBlock& my_block,
                          DenseBlock<std::int64_t>& b_accum) {
  if (!grid.active()) {
    throw std::logic_error("summa_ata_accumulate: called by an inactive rank");
  }
  const int s = grid.side();
  constexpr int kTagTranspose = 200;

  // With replication (c > 1), each layer sums into a scratch partial that
  // is reduced onto layer 0 at the end of the batch (paper §III-C: "one
  // needs a reduction to sum the contributions ... for each layer").
  DenseBlock<std::int64_t> partial;
  const bool replicated = grid.layers() > 1;
  if (replicated) partial = DenseBlock<std::int64_t>(b_accum.row_range, b_accum.col_range);
  DenseBlock<std::int64_t>& target = replicated ? partial : b_accum;

  for (int k = 0; k < s; ++k) {
    // (1) Transpose exchange: owner (ℓ, k, i) ships R(ℓ·s+k, i) to (ℓ, i, k).
    std::vector<Triplet<std::uint64_t>> lbuf;
    if (grid.grid_row() == k) {
      const int dest = grid.world_rank_of(grid.layer(), grid.grid_col(), k);
      grid.world().send<Triplet<std::uint64_t>>(
          dest, kTagTranspose + k, std::span<const Triplet<std::uint64_t>>(my_block.entries));
    }
    if (grid.grid_col() == k) {
      const int source = grid.world_rank_of(grid.layer(), k, grid.grid_row());
      lbuf = grid.world().recv<Triplet<std::uint64_t>>(source, kTagTranspose + k);
    }
    // (2) L-side broadcast along the grid row (root = grid column k).
    grid.row_comm().broadcast(lbuf, k);
    // (3) N-side broadcast along the grid column (root = grid row k).
    std::vector<Triplet<std::uint64_t>> nbuf;
    if (grid.grid_row() == k) nbuf = my_block.entries;
    grid.col_comm().broadcast(nbuf, k);
    // (4) Local multiply-accumulate.
    popcount_join_accumulate(lbuf, nbuf, 0, 0, target, &grid.world().counters());
  }

  if (replicated) {
    grid.fiber_comm().reduce(partial.values, std::plus<std::int64_t>{}, 0);
    if (grid.layer() == 0) {
      for (std::size_t idx = 0; idx < b_accum.values.size(); ++idx) {
        b_accum.values[idx] += partial.values[idx];
      }
    }
  }
}

void accumulate_column_popcounts(const SparseBlock& block, std::int64_t col_offset,
                                 std::span<std::int64_t> acc) {
  for (const Triplet<std::uint64_t>& entry : block.entries) {
    acc[static_cast<std::size_t>(col_offset + entry.col)] += popcount64(entry.value);
  }
}

}  // namespace sas::distmat
