#include "core/driver.hpp"

#include <functional>
#include <mutex>
#include <optional>
#include <stdexcept>

#include "bsp/runtime.hpp"
#include "core/packing.hpp"
#include "distmat/dist_filter.hpp"
#include "distmat/gather.hpp"
#include "distmat/proc_grid.hpp"
#include "distmat/redistribute.hpp"
#include "distmat/spgemm.hpp"
#include "sketch/exchange.hpp"
#include "util/timer.hpp"

namespace sas::core {

namespace {

using distmat::BlockRange;
using distmat::DenseBlock;
using distmat::SparseBlock;
using distmat::Triplet;

/// Finalize one local block: sᵢⱼ = bᵢⱼ / (âᵢ + âⱼ − bᵢⱼ), with the
/// J(∅, ∅) = 1 convention when the union is empty (paper §II-A).
DenseBlock<double> finalize_block(const DenseBlock<std::int64_t>& b,
                                  const std::vector<std::int64_t>& ahat) {
  DenseBlock<double> s(b.row_range, b.col_range);
  for (std::int64_t i = 0; i < b.local_rows(); ++i) {
    const std::int64_t gi = b.row_range.begin + i;
    for (std::int64_t j = 0; j < b.local_cols(); ++j) {
      const std::int64_t gj = b.col_range.begin + j;
      const std::int64_t inter = b.at_local(i, j);
      const std::int64_t uni = ahat[static_cast<std::size_t>(gi)] +
                               ahat[static_cast<std::size_t>(gj)] - inter;
      s.at_local(i, j) =
          uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
    }
  }
  return s;
}

}  // namespace

Result similarity_at_scale(bsp::Comm& world, const SampleSource& source,
                           const Config& config) {
  const std::int64_t n = source.sample_count();
  const std::int64_t m = source.attribute_universe();
  const int p = world.size();
  if (config.batch_count < 1) {
    throw std::invalid_argument("similarity_at_scale: batch_count must be >= 1");
  }
  if (config.batch_count > m && m > 0) {
    throw std::invalid_argument("similarity_at_scale: more batches than matrix rows");
  }

  // Approximate estimators swap the SpGEMM pipeline for the sketch-
  // exchange ring (fixed-size panels, documented error bounds — see
  // sketch/sketch.hpp for the tradeoff guide).
  if (config.estimator != Estimator::kExact) {
    return sketch::sketch_similarity_at_scale(world, source, config);
  }

  // Parallel layout. The SUMMA path builds the √(p/c)×√(p/c)×c grid; the
  // others use the flat communicator directly.
  std::optional<distmat::ProcGrid> grid;
  std::optional<DenseBlock<std::int64_t>> b_block;
  int active_ranks = p;
  BlockRange my_cols{0, 0};  // columns whose â this rank accumulates

  switch (config.algorithm) {
    case Algorithm::kSerial:
      active_ranks = 1;
      if (world.rank() == 0) {
        b_block.emplace(BlockRange{0, n}, BlockRange{0, n});
        my_cols = {0, n};
      }
      break;
    case Algorithm::kRing1D:
      b_block.emplace(distmat::block_range(n, p, world.rank()), BlockRange{0, n});
      my_cols = b_block->row_range;
      break;
    case Algorithm::kSumma:
      grid.emplace(world, config.replication);
      active_ranks = grid->active_ranks();
      if (grid->active()) {
        b_block.emplace(distmat::block_range(n, grid->side(), grid->grid_row()),
                        distmat::block_range(n, grid->side(), grid->grid_col()));
        my_cols = distmat::block_range(n, grid->side(), grid->grid_col());
      }
      break;
  }

  std::vector<std::int64_t> ahat(static_cast<std::size_t>(n), 0);
  std::vector<BatchStats> stats;

  const int batches = static_cast<int>(config.batch_count);
  for (int l = 0; l < batches; ++l) {
    const BlockRange rows = distmat::block_range(m, batches, l);
    world.barrier();
    Timer timer;

    PackedBatch packed =
        pack_batch(world, source, rows, config.bit_width, config.use_zero_row_filter);
    const std::int64_t h = packed.word_rows;
    const auto local_nnz = static_cast<std::int64_t>(packed.triplets.size());

    // Kernel tuning shared by all schedules: CSR panels are built once
    // per redistributed batch (not re-derived per ring step / SUMMA
    // stage), and large output blocks may thread the tile accumulation.
    distmat::CsrAtaOptions kernel_options;
    kernel_options.threads = config.kernel_threads;
    kernel_options.dense_crossover = config.dense_crossover;

    switch (config.algorithm) {
      case Algorithm::kSerial: {
        auto merged = distmat::redistribute_triplets(
            world, std::move(packed.triplets),
            [](std::int64_t, std::int64_t) { return 0; },
            [](std::uint64_t a, std::uint64_t b) { return a | b; });
        if (world.rank() == 0) {
          SparseBlock block{h, n, std::move(merged)};
          const distmat::CsrPanel panel = distmat::CsrPanel::from_block(block);
          distmat::csr_popcount_ata_accumulate(panel, panel, 0, 0, *b_block,
                                               &world.counters(), kernel_options);
          distmat::accumulate_column_popcounts(block, 0, ahat);
        }
        break;
      }
      case Algorithm::kRing1D: {
        auto merged = distmat::redistribute_triplets(
            world, std::move(packed.triplets),
            [n, p](std::int64_t, std::int64_t col) {
              return distmat::block_owner(n, p, col);
            },
            [](std::uint64_t a, std::uint64_t b) { return a | b; });
        // Localize columns to this rank's panel; rows stay global.
        for (auto& t : merged) t.col -= my_cols.begin;
        SparseBlock panel{h, my_cols.size(), std::move(merged)};
        distmat::ring_ata_accumulate(world, n, panel, *b_block,
                                     config.ring_overlap
                                         ? distmat::RingSchedule::kOverlapped
                                         : distmat::RingSchedule::kSynchronous,
                                     kernel_options);
        distmat::accumulate_column_popcounts(panel, my_cols.begin, ahat);
        break;
      }
      case Algorithm::kSumma: {
        const int s = grid->side();
        const int c = grid->layers();
        auto merged = distmat::redistribute_triplets(
            world, std::move(packed.triplets),
            [&](std::int64_t w, std::int64_t col) {
              const int q = distmat::block_owner(h, s * c, w);
              const int j = distmat::block_owner(n, s, col);
              return grid->world_rank_of(q / s, q % s, j);
            },
            [](std::uint64_t a, std::uint64_t b) { return a | b; });
        if (grid->active()) {
          const int q = grid->layer() * s + grid->grid_row();
          const BlockRange chunk = distmat::block_range(h, s * c, q);
          for (auto& t : merged) {
            t.row -= chunk.begin;
            t.col -= my_cols.begin;
          }
          SparseBlock block{chunk.size(), my_cols.size(), std::move(merged)};
          distmat::summa_ata_accumulate(*grid, block, *b_block, kernel_options);
          distmat::accumulate_column_popcounts(block, my_cols.begin, ahat);
        }
        break;
      }
    }

    // Batch instrumentation: the paper times barrier-to-barrier batches.
    const std::int64_t nnz =
        world.allreduce_value<std::int64_t>(local_nnz, std::plus<std::int64_t>{});
    world.barrier();
    if (world.rank() == 0) {
      BatchStats bs;
      bs.seconds = timer.seconds();
      bs.filtered_rows = packed.filtered_rows;
      bs.word_rows = packed.word_rows;
      bs.packed_nnz = nnz;
      stats.push_back(bs);
    }
  }

  // Union cardinalities need â = Σ column popcounts over all batches; the
  // local accumulators cover disjoint blocks, so a sum-allreduce is exact.
  world.allreduce(ahat, std::plus<std::int64_t>{});

  // S = B ⊘ C on the owning ranks, then assembled on rank 0. With SUMMA
  // replication only layer 0 holds the reduced B.
  std::optional<DenseBlock<double>> s_block;
  const bool owns_output =
      b_block.has_value() &&
      (config.algorithm != Algorithm::kSumma || grid->layer() == 0);
  if (owns_output) s_block = finalize_block(*b_block, ahat);

  std::vector<double> full = distmat::gather_dense_to_root(
      world, s_block.has_value() ? &*s_block : nullptr, n, n);

  Result result;
  result.n = n;
  result.active_ranks = active_ranks;
  if (world.rank() == 0) {
    result.similarity = SimilarityMatrix(n, std::move(full));
    result.batches = std::move(stats);
  }
  return result;
}

Result similarity_at_scale_threaded(int nranks, const SampleSource& source,
                                    const Config& config,
                                    std::vector<bsp::CostCounters>* counters_out) {
  Result result;
  std::mutex result_mutex;
  auto counters = bsp::Runtime::run(nranks, [&](bsp::Comm& comm) {
    Result local = similarity_at_scale(comm, source, config);
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(result_mutex);
      result = std::move(local);
    }
  });
  if (counters_out != nullptr) *counters_out = std::move(counters);
  return result;
}

}  // namespace sas::core
