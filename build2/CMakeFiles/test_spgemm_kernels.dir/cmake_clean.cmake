file(REMOVE_RECURSE
  "CMakeFiles/test_spgemm_kernels.dir/tests/test_spgemm_kernels.cpp.o"
  "CMakeFiles/test_spgemm_kernels.dir/tests/test_spgemm_kernels.cpp.o.d"
  "test_spgemm_kernels"
  "test_spgemm_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spgemm_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
