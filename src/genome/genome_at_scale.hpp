// genome_at_scale.hpp — the GenomeAtScale tool (paper §IV, Fig. 1 Part II).
//
// End-to-end pipeline: FASTA/FASTQ sample files (or prebuilt k-mer
// samples) → canonical k-mer sets with noise thresholds → batched
// distributed SimilarityAtScale → Jaccard similarity/distance matrices,
// ready for PHYLIP export and the downstream analyses in src/analysis.
#pragma once

#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/driver.hpp"
#include "core/similarity_matrix.hpp"
#include "genome/sample.hpp"

namespace sas::genome {

struct GenomeAtScaleOptions {
  int k = 31;            ///< k-mer size (paper: 19 for Kingsford, 31 for BIGSI)
  int min_count = 1;     ///< rare-k-mer noise threshold (§V-A2)
  int ranks = 4;         ///< bsp ranks ("MPI processes")
  core::Config core;     ///< batching / bitmask / grid configuration
};

struct GenomeAtScaleResult {
  std::vector<std::string> sample_names;
  core::SimilarityMatrix similarity;
  std::vector<core::BatchStats> batches;
  int active_ranks = 0;
};

/// Run on FASTA files, one file per sample (sample name = file record
/// set's path stem).
[[nodiscard]] GenomeAtScaleResult run_genome_at_scale_fasta(
    const std::vector<std::string>& fasta_paths, const GenomeAtScaleOptions& options);

/// Run on prebuilt samples (already thresholded k-mer sets).
[[nodiscard]] GenomeAtScaleResult run_genome_at_scale(
    std::vector<KmerSample> samples, const GenomeAtScaleOptions& options);

}  // namespace sas::genome
