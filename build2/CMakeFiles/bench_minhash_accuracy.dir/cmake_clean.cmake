file(REMOVE_RECURSE
  "CMakeFiles/bench_minhash_accuracy.dir/bench/minhash_accuracy.cpp.o"
  "CMakeFiles/bench_minhash_accuracy.dir/bench/minhash_accuracy.cpp.o.d"
  "bench_minhash_accuracy"
  "bench_minhash_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_minhash_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
