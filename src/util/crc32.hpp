// crc32.hpp — CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// Integrity check for the checkpoint files (core/checkpoint.hpp): every
// manifest and rank-state file ends with the CRC of its preceding bytes,
// so a torn write or bit flip is detected on --resume instead of
// silently corrupting a restored run. Table-driven, byte-at-a-time —
// checkpoints are megabytes at most, not a hot path.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace sas {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1U) != 0 ? (crc >> 1) ^ 0xEDB88320U : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table = make_crc32_table();

}  // namespace detail

[[nodiscard]] inline std::uint32_t crc32(const void* data, std::size_t size,
                                         std::uint32_t seed = 0) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < size; ++i) {
    crc = detail::kCrc32Table[(crc ^ bytes[i]) & 0xffU] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace sas
