// pair_mask.hpp — dense bit mask over sample pairs (the hybrid's
// candidate set).
//
// The sketch-prune pass of the hybrid estimator (core/driver.hpp stage
// diagram) marks every pair whose estimated Jaccard clears the prune
// threshold; the exact rescore pass then consults the mask at three
// granularities:
//
//   * column level  — a sample with no surviving off-diagonal pair is
//                     dropped before redistribution (its panel entries
//                     never enter the network);
//   * panel level   — the targeted 1D exchange ships a panel column to a
//                     peer only when the mask pairs it with one of that
//                     peer's output rows (spgemm.hpp);
//   * tile level    — the CSR kernel skips output-column tiles whose
//                     pair set is fully pruned (CsrAtaOptions::prune).
//
// The mask is a plain row-major n×n bitset (n²/8 bytes — a few hundred
// KiB even for thousands of samples), replicated on every rank by
// allreduce_pair_mask (dist_filter.hpp) after each rank fills the rows
// of its owned samples. The diagonal is always set: self-similarity is
// exact by convention and never pruned.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "distmat/block.hpp"
#include "util/popcount.hpp"

namespace sas::distmat {

class PairMask {
 public:
  PairMask() = default;

  /// All-clear n×n mask (no candidates, diagonal included).
  explicit PairMask(std::int64_t n)
      : n_(n),
        words_per_row_((n + 63) / 64),
        words_(static_cast<std::size_t>(n * words_per_row_), 0) {}

  [[nodiscard]] std::int64_t size() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }

  void set(std::int64_t i, std::int64_t j) noexcept {
    words_[word_index(i, j)] |= std::uint64_t{1} << (j & 63);
  }

  [[nodiscard]] bool test(std::int64_t i, std::int64_t j) const noexcept {
    return (words_[word_index(i, j)] >> (j & 63)) & 1u;
  }

  /// Number of set pairs (diagonal included).
  [[nodiscard]] std::int64_t count() const noexcept {
    std::int64_t total = 0;
    for (std::uint64_t w : words_) total += popcount64(w);
    return total;
  }

  /// Any candidate in the [rows × cols] tile? This is the kernel's skip
  /// probe: O(rows · cols/64) word scans with edge masks, negligible next
  /// to the multiply work a non-skipped tile implies.
  [[nodiscard]] bool any_pair(BlockRange rows, BlockRange cols) const noexcept {
    if (rows.size() <= 0 || cols.size() <= 0) return false;
    const std::int64_t wb = cols.begin >> 6;
    const std::int64_t we = (cols.end - 1) >> 6;  // inclusive
    const std::uint64_t first_mask = ~std::uint64_t{0} << (cols.begin & 63);
    const std::uint64_t last_mask =
        ~std::uint64_t{0} >> (63 - ((cols.end - 1) & 63));
    for (std::int64_t i = rows.begin; i < rows.end; ++i) {
      const std::uint64_t* const row = words_.data() + i * words_per_row_;
      for (std::int64_t w = wb; w <= we; ++w) {
        std::uint64_t bits = row[w];
        if (w == wb) bits &= first_mask;
        if (w == we) bits &= last_mask;
        if (bits != 0) return true;
      }
    }
    return false;
  }

  /// Does sample i have any surviving partner other than itself?
  [[nodiscard]] bool row_active(std::int64_t i) const noexcept {
    const std::uint64_t* const row = words_.data() + i * words_per_row_;
    const std::uint64_t diag_bit = std::uint64_t{1} << (i & 63);
    for (std::int64_t w = 0; w < words_per_row_; ++w) {
      std::uint64_t bits = row[w];
      if (w == (i >> 6)) bits &= ~diag_bit;
      if (bits != 0) return true;
    }
    return false;
  }

  /// Per-sample activity flags (row_active for every sample) — the
  /// column-dropping predicate of the rescore pass.
  [[nodiscard]] std::vector<std::uint8_t> active_columns() const {
    std::vector<std::uint8_t> active(static_cast<std::size_t>(n_), 0);
    for (std::int64_t i = 0; i < n_; ++i) {
      active[static_cast<std::size_t>(i)] = row_active(i) ? 1 : 0;
    }
    return active;
  }

  /// Make the mask symmetric: mask ∨ maskᵀ. Estimates are symmetric, so
  /// this is a safety net for fp-identical but differently-owned entries.
  void symmetrize() noexcept {
    for (std::int64_t i = 0; i < n_; ++i) {
      for (std::int64_t j = i + 1; j < n_; ++j) {
        if (test(i, j) || test(j, i)) {
          set(i, j);
          set(j, i);
        }
      }
    }
  }

  /// Raw word storage (row-major, words_per_row() words per row) — the
  /// allreduce payload of allreduce_pair_mask.
  [[nodiscard]] std::vector<std::uint64_t>& words() noexcept { return words_; }
  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept {
    return words_;
  }
  [[nodiscard]] std::int64_t words_per_row() const noexcept { return words_per_row_; }

 private:
  [[nodiscard]] std::size_t word_index(std::int64_t i, std::int64_t j) const noexcept {
    return static_cast<std::size_t>(i * words_per_row_ + (j >> 6));
  }

  std::int64_t n_ = 0;
  std::int64_t words_per_row_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace sas::distmat
