// fig2b_bigsi_strong — reproduces paper Fig. 2b.
//
// Strong scaling on the (scaled) BIGSI-like hypersparse dataset with
// highly variable column density. Protocol as in the paper: batch size
// doubles with the rank count, the per-batch time is averaged after
// skipping the first 3 warm-up batches ("averaged across eight batches,
// not considering the first three"), and the projected completion time is
// avg_batch_time × #batches. Because the scaled dataset fits, the actual
// full-run time is also measured — the paper's own projection-vs-actual
// check (0.42h projected vs 0.38h measured on 128 nodes).
#include "bench_common.hpp"

using namespace sas;
using namespace sas::bench;

int main() {
  const auto source = bigsi_like();
  print_header("Fig. 2b — BIGSI dataset, strong scaling",
               "Besta et al., IPDPS'20, Figure 2b",
               "Bernoulli stand-in: n=768, m=2^27, density=2e-6, 8x column-density "
               "spread (paper: n=446506 WGS, density 4e-12; DESIGN.md §2)");

  const bsp::BspMachine model = machine();
  TextTable table({"ranks", "batches", "time/batch", "ci95", "projected total",
                   "actual total", "projection err", "bytes/batch", "modelled BSP"});
  for (int ranks : {4, 9, 16, 25}) {  // perfect grids, stand-ins for 128..1024 nodes
    core::Config config;
    config.batch_count = 128 / ranks;  // batch size ∝ ranks, as in the paper
    const RunResult run = run_driver(ranks, source, config);
    append_result_bytes_json("fig2b_bigsi_strong", "ranks=" + std::to_string(ranks),
                             run.result);
    const BatchTiming timing = summarize_batches(run.result.batches, /*warmup=*/3);
    const double projected =
        timing.mean_seconds * static_cast<double>(config.batch_count);
    const double err = run.wall_seconds > 0
                           ? 100.0 * (projected - run.wall_seconds) / run.wall_seconds
                           : 0.0;
    table.add_row({std::to_string(run.result.active_ranks),
                   std::to_string(config.batch_count),
                   fmt_duration(timing.mean_seconds), fmt_duration(timing.ci95),
                   fmt_duration(projected), fmt_duration(run.wall_seconds),
                   fmt_fixed(err, 1) + "%",
                   std::to_string(mean_batch_bytes(run.result.batches)),
                   fmt_duration(model.modelled_seconds(run.cost))});
  }
  table.print();
  std::printf(
      "\nPaper shape to match: per-batch time roughly constant while the batch size\n"
      "doubles with ranks (37.3s-43.9s across 128-1024 nodes), so the projected\n"
      "total halves per doubling; projections track actual runs closely.\n");
  return 0;
}
