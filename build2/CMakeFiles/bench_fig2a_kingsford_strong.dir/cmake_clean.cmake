file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2a_kingsford_strong.dir/bench/fig2a_kingsford_strong.cpp.o"
  "CMakeFiles/bench_fig2a_kingsford_strong.dir/bench/fig2a_kingsford_strong.cpp.o.d"
  "bench_fig2a_kingsford_strong"
  "bench_fig2a_kingsford_strong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2a_kingsford_strong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
