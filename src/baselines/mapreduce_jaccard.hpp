// mapreduce_jaccard.hpp — the MapReduce-style comparison point.
//
// The paper dismisses MapReduce formulations ([6], [26], [86]) as
// "inefficient ... [needing] asymptotically more communication due to
// using the allreduce collective communication pattern over reducers".
// This baseline implements that exact shape on the bsp runtime so the
// claim is measurable (bench/comm_model_validation): map emits
// (attribute → sample) pairs, a hash shuffle groups them on reducers,
// each reducer accumulates pair co-occurrence counts into a FULL dense
// n×n matrix, and the reducer matrices are combined with an allreduce —
// Θ(n²) communication per rank versus SUMMA's Θ(n²·c/p) output term.
//
// The result is exact (it is the same algebra, just a worse schedule),
// which is what makes the communication comparison apples-to-apples.
#pragma once

#include "bsp/comm.hpp"
#include "core/sample_source.hpp"
#include "core/similarity_matrix.hpp"

namespace sas::baselines {

/// Collective over `comm`; result populated on rank 0. `batch_count`
/// splits the attribute space like the core driver so both pipelines see
/// identical inputs.
[[nodiscard]] core::SimilarityMatrix mapreduce_jaccard(bsp::Comm& comm,
                                                       const core::SampleSource& source,
                                                       std::int64_t batch_count = 1);

/// Convenience wrapper running on `nranks` threads; returns rank 0's
/// matrix and, optionally, the per-rank communication counters.
[[nodiscard]] core::SimilarityMatrix mapreduce_jaccard_threaded(
    int nranks, const core::SampleSource& source, std::int64_t batch_count = 1,
    std::vector<bsp::CostCounters>* counters_out = nullptr);

}  // namespace sas::baselines
