// genome_phylogeny — evolve a population, recover its tree.
//
// The paper's headline downstream application (Fig. 1 steps 7 and 9):
// Jaccard distances feed neighbor joining to produce phylogenies and
// guide trees for multiple sequence alignment. This example evolves a
// known population from one ancestor, computes the exact distance matrix
// with SimilarityAtScale, builds the NJ tree, and prints it in Newick
// form together with per-clade statistics.
//
// Usage:
//   genome_phylogeny [--leaves 8] [--k 15] [--ranks 4]
//                    [--genome-length 20000] [--branch-rate 0.008]
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/neighbor_joining.hpp"
#include "genome/genome_at_scale.hpp"
#include "genome/synthetic.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

using namespace sas;

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const int leaves = static_cast<int>(args.get_int("leaves", 8));
  const int k = static_cast<int>(args.get_int("k", 15));
  const int ranks = static_cast<int>(args.get_int("ranks", 4));
  const auto genome_length = args.get_int("genome-length", 20000);
  const double branch_rate = args.get_double("branch-rate", 0.008);

  std::printf("Evolving %d leaves from one ancestor (%lld bp, %.3f mutations/branch)\n\n",
              leaves, static_cast<long long>(genome_length), branch_rate);

  Rng rng(777);
  const std::string ancestor = genome::random_genome(genome_length, rng);
  const auto population = genome::evolve_population(ancestor, leaves, branch_rate, rng);

  // Build k-mer samples for every leaf.
  const genome::KmerCodec codec(k);
  std::vector<genome::KmerSample> samples;
  for (std::size_t i = 0; i < population.leaf_genomes.size(); ++i) {
    samples.push_back(genome::build_sample(population.leaf_names[i],
                                           {{population.leaf_names[i], "",
                                             population.leaf_genomes[i]}},
                                           codec));
  }

  genome::GenomeAtScaleOptions options;
  options.k = k;
  options.ranks = ranks;
  options.core.batch_count = 4;
  const auto result = genome::run_genome_at_scale(samples, options);

  // Pairwise distance summary.
  TextTable table({"pair", "Jaccard J", "distance d_J", "est. mutation rate"});
  for (std::int64_t i = 0; i < leaves; ++i) {
    for (std::int64_t j = i + 1; j < leaves && table.row_count() < 10; ++j) {
      const double jac = result.similarity.similarity(i, j);
      // Invert the k-mer survival model to a per-base rate estimate.
      const double rate = genome::mutation_rate_for_jaccard(k, std::max(jac, 1e-9));
      table.add_row({result.sample_names[static_cast<std::size_t>(i)] + "-" +
                         result.sample_names[static_cast<std::size_t>(j)],
                     fmt_fixed(jac, 4), fmt_fixed(1.0 - jac, 4), fmt_fixed(rate, 5)});
    }
  }
  std::printf("First pairwise distances (of %d pairs):\n", leaves * (leaves - 1) / 2);
  table.print();

  const auto tree =
      analysis::neighbor_joining(result.similarity.distance_matrix(), result.sample_names);
  std::printf("\nNeighbor-joining tree (Newick):\n%s\n", tree.to_newick().c_str());
  std::printf("\nThis tree can be fed to MSA guide-tree consumers or viewed with any "
              "Newick renderer.\n");
  return 0;
}
