// test_sketch.cpp — the sketch subsystem: merge algebra (associativity,
// commutativity, idempotence — the properties that make incremental and
// distributed construction exact), serialization round trips, wire-form
// parity with the object estimators, statistical accuracy against the
// documented error bounds, and distributed parity of the sketch-exchange
// pipeline (bitwise rank-count / batch-count / schedule independence).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/driver.hpp"
#include "core/packing.hpp"
#include "core/sample_source.hpp"
#include "sketch/bottomk.hpp"
#include "sketch/exchange.hpp"
#include "sketch/hyperloglog.hpp"
#include "sketch/one_perm_minhash.hpp"
#include "sketch/sketch.hpp"
#include "util/rng.hpp"

namespace sas::sketch {
namespace {

std::vector<std::uint64_t> random_set(std::uint64_t universe, std::size_t count,
                                      std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint64_t> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(rng.uniform(universe));
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// Two sets with exact Jaccard `shared` / (`shared` + 2·`extra`):
/// elements v < 3·n split by residue — ∩ from v≡0, each side adds one
/// residue class.
void thirds_sets(std::size_t n, std::vector<std::uint64_t>& a,
                 std::vector<std::uint64_t>& b) {
  for (std::uint64_t v = 0; v < 3 * n; ++v) {
    if (v % 3 == 0) {
      a.push_back(v);
      b.push_back(v);
    } else if (v % 3 == 1) {
      a.push_back(v);
    } else {
      b.push_back(v);
    }
  }
}

double exact_jaccard_sets(const std::vector<std::uint64_t>& a,
                          const std::vector<std::uint64_t>& b) {
  std::size_t ia = 0;
  std::size_t ib = 0;
  std::size_t inter = 0;
  while (ia < a.size() && ib < b.size()) {
    if (a[ia] < b[ib]) {
      ++ia;
    } else if (b[ib] < a[ia]) {
      ++ib;
    } else {
      ++inter;
      ++ia;
      ++ib;
    }
  }
  const std::size_t uni = a.size() + b.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

// ------------------------------------------------------------ HyperLogLog

TEST(HyperLogLog, CardinalityWithinRelativeErrorBound) {
  // RSE is 1.04/√m; each fixed-seed estimate must sit within ~4σ.
  const int p = 12;
  const double sigma = 1.04 / std::sqrt(static_cast<double>(1 << p));
  for (std::size_t n : {500u, 20000u, 300000u}) {
    for (std::uint64_t seed : {1u, 2u, 3u}) {
      HyperLogLog sk(p, seed);
      for (std::uint64_t v = 0; v < n; ++v) sk.add(v * 0x9e3779b97f4a7c15ULL);
      const double est = sk.estimate();
      EXPECT_NEAR(est, static_cast<double>(n), 4.0 * sigma * static_cast<double>(n))
          << "n=" << n << " seed=" << seed;
    }
  }
}

TEST(HyperLogLog, MergeEqualsSketchOfUnion) {
  const auto a = random_set(1u << 20, 5000, 11);
  const auto b = random_set(1u << 20, 7000, 12);
  HyperLogLog sa(a, 10, 5);
  HyperLogLog sb(b, 10, 5);
  std::vector<std::uint64_t> ab(a);
  ab.insert(ab.end(), b.begin(), b.end());
  const HyperLogLog direct(ab, 10, 5);
  EXPECT_EQ(HyperLogLog::merge(sa, sb).registers(), direct.registers());
}

TEST(HyperLogLog, MergeAlgebra) {
  const HyperLogLog sa(random_set(1u << 20, 1000, 21), 8, 9);
  const HyperLogLog sb(random_set(1u << 20, 2000, 22), 8, 9);
  const HyperLogLog sc(random_set(1u << 20, 3000, 23), 8, 9);
  // Commutative, associative, idempotent (register-wise max).
  EXPECT_EQ(HyperLogLog::merge(sa, sb).registers(),
            HyperLogLog::merge(sb, sa).registers());
  EXPECT_EQ(HyperLogLog::merge(HyperLogLog::merge(sa, sb), sc).registers(),
            HyperLogLog::merge(sa, HyperLogLog::merge(sb, sc)).registers());
  EXPECT_EQ(HyperLogLog::merge(sa, sa).registers(), sa.registers());
}

TEST(HyperLogLog, SerializeRoundTripAndWireParity) {
  const HyperLogLog sa(random_set(1u << 22, 4000, 31), 11, 77);
  const HyperLogLog sb(random_set(1u << 22, 4000, 32), 11, 77);
  const auto wa = sa.serialize();
  const HyperLogLog back = HyperLogLog::deserialize(wa);
  EXPECT_EQ(back.registers(), sa.registers());
  EXPECT_EQ(back.precision(), sa.precision());
  EXPECT_EQ(back.seed(), sa.seed());
  // The wire path must produce the bit-identical estimate.
  EXPECT_EQ(estimate_jaccard_wire(wa, sb.serialize()),
            HyperLogLog::estimate_jaccard(sa, sb));
}

TEST(HyperLogLog, JaccardConventionsAndSelfSimilarity) {
  const HyperLogLog empty(12, 3);
  EXPECT_DOUBLE_EQ(HyperLogLog::estimate_jaccard(empty, empty), 1.0);
  const HyperLogLog full(random_set(1u << 20, 5000, 41), 12, 3);
  EXPECT_DOUBLE_EQ(HyperLogLog::estimate_jaccard(empty, full), 0.0);
  EXPECT_DOUBLE_EQ(HyperLogLog::estimate_jaccard(full, full), 1.0);
}

TEST(HyperLogLog, JaccardWithinDocumentedBound) {
  std::vector<std::uint64_t> a;
  std::vector<std::uint64_t> b;
  thirds_sets(30000, a, b);
  const double truth = exact_jaccard_sets(a, b);
  for (int p : {10, 12}) {
    double err = 0.0;
    const int trials = 8;
    for (int t = 0; t < trials; ++t) {
      const auto seed = 100 + static_cast<std::uint64_t>(t);
      err += std::fabs(
          HyperLogLog::estimate_jaccard(HyperLogLog(a, p, seed), HyperLogLog(b, p, seed)) -
          truth);
    }
    EXPECT_LE(err / trials, hll_jaccard_error_bound(p)) << "p=" << p;
  }
}

TEST(HyperLogLog, RejectsIncompatibleAndMalformed) {
  const HyperLogLog s1(8, 1);
  const HyperLogLog s2(8, 2);   // different seed
  const HyperLogLog s3(10, 1);  // different precision
  EXPECT_THROW((void)HyperLogLog::estimate_jaccard(s1, s2), std::invalid_argument);
  EXPECT_THROW((void)HyperLogLog::merge(s1, s3), std::invalid_argument);
  EXPECT_THROW((void)HyperLogLog(3, 0), std::invalid_argument);
  auto wire = s1.serialize();
  wire.pop_back();
  EXPECT_THROW((void)HyperLogLog::deserialize(wire), std::invalid_argument);
}

// ------------------------------------------------------- OnePermMinHash

TEST(OnePermMinHash, IdenticalSetsEstimateOne) {
  const auto a = random_set(1u << 20, 5000, 51);
  const OnePermMinHash s1(a, 256, 16, 7);
  const OnePermMinHash s2(a, 256, 16, 7);
  EXPECT_DOUBLE_EQ(OnePermMinHash::estimate_jaccard(s1, s2), 1.0);
}

TEST(OnePermMinHash, EmptyConventions) {
  const OnePermMinHash empty(128, 16, 9);
  const OnePermMinHash full(random_set(1u << 16, 400, 52), 128, 16, 9);
  EXPECT_DOUBLE_EQ(OnePermMinHash::estimate_jaccard(empty, empty), 1.0);
  EXPECT_DOUBLE_EQ(OnePermMinHash::estimate_jaccard(empty, full), 0.0);
}

TEST(OnePermMinHash, MergeEqualsSketchOfUnionAndAlgebra) {
  const auto a = random_set(1u << 20, 3000, 61);
  const auto b = random_set(1u << 20, 3000, 62);
  const auto c = random_set(1u << 20, 3000, 63);
  const OnePermMinHash sa(a, 512, 16, 13);
  const OnePermMinHash sb(b, 512, 16, 13);
  const OnePermMinHash sc(c, 512, 16, 13);
  std::vector<std::uint64_t> ab(a);
  ab.insert(ab.end(), b.begin(), b.end());
  const OnePermMinHash direct(ab, 512, 16, 13);
  EXPECT_EQ(OnePermMinHash::merge(sa, sb).serialize(), direct.serialize());
  EXPECT_EQ(OnePermMinHash::merge(sa, sb).serialize(),
            OnePermMinHash::merge(sb, sa).serialize());
  EXPECT_EQ(OnePermMinHash::merge(OnePermMinHash::merge(sa, sb), sc).serialize(),
            OnePermMinHash::merge(sa, OnePermMinHash::merge(sb, sc)).serialize());
  EXPECT_EQ(OnePermMinHash::merge(sa, sa).serialize(), sa.serialize());
}

TEST(OnePermMinHash, SerializeRoundTripStaysMergeable) {
  const auto a = random_set(1u << 18, 2000, 71);
  const auto b = random_set(1u << 18, 2000, 72);
  OnePermMinHash sa(a, 256, 8, 15);
  const OnePermMinHash back = OnePermMinHash::deserialize(sa.serialize());
  EXPECT_EQ(back.serialize(), sa.serialize());
  EXPECT_EQ(back.occupied_bins(), sa.occupied_bins());
  // A deserialized sketch keeps absorbing elements exactly.
  OnePermMinHash grown = back;
  OnePermMinHash direct = sa;
  for (std::uint64_t e : b) {
    grown.add(e);
    direct.add(e);
  }
  EXPECT_EQ(grown.serialize(), direct.serialize());
}

TEST(OnePermMinHash, WireParityWithObjectEstimate) {
  const OnePermMinHash sa(random_set(1u << 20, 4000, 81), 1024, 16, 3);
  const OnePermMinHash sb(random_set(1u << 20, 4000, 82), 1024, 16, 3);
  EXPECT_EQ(estimate_jaccard_wire(sa.wire(), sb.wire()),
            OnePermMinHash::estimate_jaccard(sa, sb));
  // The raw (mergeable) form estimates identically too.
  EXPECT_EQ(estimate_jaccard_wire(sa.serialize(), sb.serialize()),
            OnePermMinHash::estimate_jaccard(sa, sb));
}

TEST(OnePermMinHash, DensificationHandlesSparseSets) {
  // Far fewer elements than bins: most bins borrow via the probe walk.
  const auto tiny = random_set(1u << 16, 10, 91);
  const OnePermMinHash s1(tiny, 512, 16, 5);
  const OnePermMinHash s2(tiny, 512, 16, 5);
  EXPECT_DOUBLE_EQ(OnePermMinHash::estimate_jaccard(s1, s2), 1.0);
  const OnePermMinHash other(random_set(1u << 16, 10, 92), 512, 16, 5);
  const double j = OnePermMinHash::estimate_jaccard(s1, other);
  EXPECT_GE(j, 0.0);
  EXPECT_LE(j, 1.0);
}

TEST(OnePermMinHash, AccuracyWithinDocumentedBound) {
  std::vector<std::uint64_t> a;
  std::vector<std::uint64_t> b;
  thirds_sets(30000, a, b);
  const double truth = exact_jaccard_sets(a, b);
  for (std::int64_t k : {256, 1024}) {
    for (int bits : {8, 16}) {
      double err = 0.0;
      const int trials = 8;
      for (int t = 0; t < trials; ++t) {
        const auto seed = 200 + static_cast<std::uint64_t>(t);
        err += std::fabs(OnePermMinHash::estimate_jaccard(OnePermMinHash(a, k, bits, seed),
                                                          OnePermMinHash(b, k, bits, seed)) -
                         truth);
      }
      EXPECT_LE(err / trials, oph_jaccard_error_bound(k, bits))
          << "k=" << k << " b=" << bits;
    }
  }
}

TEST(OnePermMinHash, RejectsBadParameters) {
  EXPECT_THROW((void)OnePermMinHash(0, 16, 1), std::invalid_argument);
  EXPECT_THROW((void)OnePermMinHash(64, 3, 1), std::invalid_argument);   // 3 ∤ 64
  EXPECT_THROW((void)OnePermMinHash(64, 128, 1), std::invalid_argument);
  const OnePermMinHash s1(64, 16, 1);
  const OnePermMinHash s2(64, 16, 2);
  EXPECT_THROW((void)OnePermMinHash::estimate_jaccard(s1, s2), std::invalid_argument);
}

// ------------------------------------------------------------- BottomK

TEST(BottomK, IncrementalAddEqualsBulkConstruction) {
  const auto a = random_set(1u << 20, 3000, 101);
  const BottomKSketch bulk(a, 256, 17);
  BottomKSketch incremental(256, 17);
  for (std::uint64_t e : a) incremental.add(e);
  EXPECT_EQ(incremental.hashes(), bulk.hashes());
  // Duplicate adds are idempotent (distinct-hash invariant).
  for (std::uint64_t e : a) incremental.add(e);
  EXPECT_EQ(incremental.hashes(), bulk.hashes());
}

TEST(BottomK, SerializeRoundTripAndWireParity) {
  const BottomKSketch sa(random_set(1u << 20, 3000, 111), 256, 19);
  const BottomKSketch sb(random_set(1u << 20, 3000, 112), 256, 19);
  const BottomKSketch back = BottomKSketch::deserialize(sa.serialize());
  EXPECT_EQ(back.hashes(), sa.hashes());
  EXPECT_EQ(back.sketch_size(), sa.sketch_size());
  EXPECT_EQ(estimate_jaccard_wire(sa.wire(), sb.wire()),
            BottomKSketch::estimate_jaccard(sa, sb));
}

// ----------------------------------------------------- wire plumbing

TEST(Wire, PackUnpackWordPanelRoundTrip) {
  const std::vector<std::vector<std::uint64_t>> blobs = {
      {1, 2, 3}, {}, {42}, {7, 7, 7, 7}};
  const auto panel = core::pack_word_panel(blobs);
  const auto views = core::unpack_word_panel(panel);
  ASSERT_EQ(views.size(), blobs.size());
  for (std::size_t i = 0; i < blobs.size(); ++i) {
    EXPECT_EQ(std::vector<std::uint64_t>(views[i].begin(), views[i].end()), blobs[i]);
  }
  EXPECT_EQ(core::unpack_word_panel(core::pack_word_panel({})).size(), 0u);
}

TEST(Wire, RejectsMismatchedTypesAndGarbage) {
  const HyperLogLog hll(8, 1);
  const BottomKSketch bk(random_set(100, 10, 1), 16, 1);
  EXPECT_THROW((void)estimate_jaccard_wire(hll.wire(), bk.wire()), std::invalid_argument);
  const std::vector<std::uint64_t> garbage = {1, 2, 3, 4};
  EXPECT_THROW((void)wire_type(garbage), std::invalid_argument);
}

// ------------------------------------------- sketch-exchange pipeline

core::VectorSampleSource random_source(std::int64_t m, std::int64_t n, double density,
                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<std::int64_t>> samples(static_cast<std::size_t>(n));
  for (auto& s : samples) {
    for (std::int64_t v = 0; v < m; ++v) {
      if (rng.bernoulli(density)) s.push_back(v);
    }
  }
  return core::VectorSampleSource(m, std::move(samples));
}

core::Config sketch_config(core::Estimator estimator) {
  core::Config cfg;
  cfg.estimator = estimator;
  cfg.hll_precision = 8;
  cfg.sketch_size = 128;
  return cfg;
}

class PipelineEstimators : public ::testing::TestWithParam<core::Estimator> {};

TEST_P(PipelineEstimators, BitwiseIndependentOfRankAndBatchCount) {
  const auto src = random_source(2000, 13, 0.1, 42);
  core::Config cfg = sketch_config(GetParam());
  const auto reference = core::similarity_at_scale_threaded(1, src, cfg);
  ASSERT_EQ(reference.similarity.size(), 13);
  for (int ranks : {2, 4, 5}) {
    const auto got = core::similarity_at_scale_threaded(ranks, src, cfg);
    EXPECT_EQ(got.similarity.max_abs_diff(reference.similarity), 0.0)
        << "ranks=" << ranks;
  }
  cfg.batch_count = 7;
  EXPECT_EQ(core::similarity_at_scale_threaded(3, src, cfg)
                .similarity.max_abs_diff(reference.similarity),
            0.0);
  cfg.batch_count = 1;
  cfg.ring_overlap = false;
  EXPECT_EQ(core::similarity_at_scale_threaded(4, src, cfg)
                .similarity.max_abs_diff(reference.similarity),
            0.0);
}

TEST_P(PipelineEstimators, MatchesDirectAllPairsOverWires) {
  const auto src = random_source(1500, 9, 0.08, 43);
  const core::Config cfg = sketch_config(GetParam());
  const std::int64_t n = src.sample_count();
  std::vector<std::vector<std::uint64_t>> wires;
  for (std::int64_t i = 0; i < n; ++i) {
    wires.push_back(build_sample_wire(src, i, cfg));
  }
  const auto result = core::similarity_at_scale_threaded(3, src, cfg);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      EXPECT_EQ(result.similarity.similarity(i, j),
                estimate_jaccard_wire(wires[static_cast<std::size_t>(i)],
                                      wires[static_cast<std::size_t>(j)]))
          << "(" << i << ", " << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSketches, PipelineEstimators,
                         ::testing::Values(core::Estimator::kHll,
                                           core::Estimator::kMinhash,
                                           core::Estimator::kBottomK));

TEST(Pipeline, EstimateAccuracyWithinBoundVsExactDriver) {
  // Correlated samples (shared backbone) give a spread of true J values.
  Rng rng(7);
  const std::int64_t m = 4000;
  std::vector<std::int64_t> backbone;
  for (std::int64_t v = 0; v < m; ++v) {
    if (rng.bernoulli(0.1)) backbone.push_back(v);
  }
  std::vector<std::vector<std::int64_t>> samples(10);
  for (auto& s : samples) {
    for (std::int64_t v : backbone) {
      if (rng.bernoulli(0.8)) s.push_back(v);
    }
    for (std::int64_t v = 0; v < m; ++v) {
      if (rng.bernoulli(0.01)) s.push_back(v);
    }
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
  }
  const core::VectorSampleSource src(m, std::move(samples));
  const auto exact = core::similarity_at_scale_threaded(2, src, core::Config{});

  struct Case {
    core::Estimator estimator;
    double bound;
  };
  core::Config cfg;  // default sketch parameters (p=12, k=1024, b=16)
  for (const Case c : {Case{core::Estimator::kHll, hll_jaccard_error_bound(12)},
                       Case{core::Estimator::kMinhash, oph_jaccard_error_bound(1024, 16)},
                       Case{core::Estimator::kBottomK, bottomk_jaccard_error_bound(1024)}}) {
    cfg.estimator = c.estimator;
    const auto got = core::similarity_at_scale_threaded(2, src, cfg);
    double err = 0.0;
    int pairs = 0;
    const std::int64_t n = src.sample_count();
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = i + 1; j < n; ++j) {
        err += std::fabs(got.similarity.similarity(i, j) -
                         exact.similarity.similarity(i, j));
        ++pairs;
      }
    }
    EXPECT_LE(err / pairs, c.bound)
        << "estimator " << static_cast<int>(c.estimator);
  }
}

TEST(Pipeline, CommBytesAreFixedSizeNotNnzProportional) {
  // Same n, very different nnz: the minhash wire panel is fixed-size, so
  // the sketch ring's traffic must be IDENTICAL across densities, while
  // the exact ring's grows with nnz.
  const int ranks = 4;
  const auto sparse = random_source(4096, 12, 0.02, 91);
  const auto dense = random_source(4096, 12, 0.3, 92);

  core::Config cfg = sketch_config(core::Estimator::kMinhash);
  std::vector<bsp::CostCounters> counters;
  (void)core::similarity_at_scale_threaded(ranks, sparse, cfg, &counters);
  const auto sketch_sparse = bsp::CostSummary::aggregate(counters);
  (void)core::similarity_at_scale_threaded(ranks, dense, cfg, &counters);
  const auto sketch_dense = bsp::CostSummary::aggregate(counters);
  EXPECT_EQ(sketch_sparse.total_bytes, sketch_dense.total_bytes);
  EXPECT_EQ(sketch_sparse.max_bytes, sketch_dense.max_bytes);

  core::Config exact_cfg;
  exact_cfg.algorithm = core::Algorithm::kRing1D;
  (void)core::similarity_at_scale_threaded(ranks, dense, exact_cfg, &counters);
  const auto exact_dense = bsp::CostSummary::aggregate(counters);
  EXPECT_LT(sketch_dense.total_bytes, exact_dense.total_bytes);
}

TEST(Pipeline, MoreRanksThanSamples) {
  const auto src = random_source(500, 3, 0.1, 77);
  core::Config cfg = sketch_config(core::Estimator::kHll);
  const auto reference = core::similarity_at_scale_threaded(1, src, cfg);
  const auto wide = core::similarity_at_scale_threaded(6, src, cfg);
  EXPECT_EQ(wide.similarity.max_abs_diff(reference.similarity), 0.0);
}

TEST(Pipeline, ExactEstimatorRejectsSketchBuild) {
  const auto src = random_source(100, 2, 0.1, 1);
  EXPECT_THROW((void)build_sample_wire(src, 0, core::Config{}), std::invalid_argument);
}

}  // namespace
}  // namespace sas::sketch
