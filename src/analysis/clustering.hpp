// clustering.hpp — clustering over Jaccard distance matrices.
//
// Because d_J is a proper metric (paper §II-A), the distance matrix feeds
// standard clustering directly (§II-C): agglomerative hierarchical
// clustering with selectable linkage, and k-medoids (the medoid-based
// analog of the k-means + Jaccard pairing the paper cites, appropriate
// when only pairwise distances — not coordinates — exist). Also includes
// the §II-D application: proximity-based outlier scoring.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sas::analysis {

enum class Linkage { kSingle, kComplete, kAverage };

/// One merge step of the dendrogram: clusters `left` and `right` (ids
/// < n are leaves; ids >= n refer to earlier merges, id = n + step)
/// joined at `height`.
struct MergeStep {
  int left = 0;
  int right = 0;
  double height = 0.0;
};

/// Full agglomerative clustering; returns the n−1 merge steps in order.
[[nodiscard]] std::vector<MergeStep> hierarchical_cluster(
    const std::vector<double>& distances, std::int64_t n, Linkage linkage);

/// Cut the dendrogram into exactly `k` flat clusters; labels in [0, k).
[[nodiscard]] std::vector<int> cut_dendrogram(const std::vector<MergeStep>& merges,
                                              std::int64_t n, int k);

/// k-medoids (PAM-style alternating assignment/update) with deterministic
/// seeding; returns per-sample labels in [0, k).
[[nodiscard]] std::vector<int> k_medoids(const std::vector<double>& distances,
                                         std::int64_t n, int k, std::uint64_t seed,
                                         int max_iterations = 50);

/// Proximity-based outlier score (paper §II-D): mean distance to the
/// `neighbors` nearest other samples. Higher = more anomalous.
[[nodiscard]] std::vector<double> knn_outlier_scores(const std::vector<double>& distances,
                                                     std::int64_t n, int neighbors);

}  // namespace sas::analysis
