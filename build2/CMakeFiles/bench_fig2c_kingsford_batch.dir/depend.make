# Empty dependencies file for bench_fig2c_kingsford_batch.
# This may be replaced when dependencies are built.
