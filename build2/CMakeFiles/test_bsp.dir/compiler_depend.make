# Empty compiler generated dependencies file for test_bsp.
# This may be replaced when dependencies are built.
