// comm.hpp — SPMD communicator for the in-process BSP runtime.
//
// This is the library's substitute for MPI (DESIGN.md §2): ranks are
// threads, point-to-point messages are buffered byte copies, and the
// collective set mirrors the MPI collectives the paper's Cyclops backend
// uses. Collectives are implemented *on top of* point-to-point sends with
// the textbook algorithms (binomial trees, rings, dissemination), so the
// message/byte counters reflect realistic communication structure — e.g.
// a broadcast really costs O(log p) rounds, an all-to-all really moves
// p·(p−1) messages. That is what makes the §III-C cost-model validation
// meaningful.
//
// Usage (SPMD, same style as an MPI program):
//   bsp::Runtime::run(8, [](bsp::Comm& comm) {
//     auto part = ...;                       // rank-local work
//     auto total = comm.allreduce<std::uint64_t>(part, std::plus<>{});
//   });
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "bsp/cost_model.hpp"
#include "bsp/fault.hpp"
#include "bsp/mailbox.hpp"
#include "obs/trace.hpp"

namespace sas::bsp {

namespace detail {

/// State shared by all ranks of one communicator (world or split group).
struct SharedState {
  explicit SharedState(int size_in)
      : size(size_in),
        mailboxes(static_cast<std::size_t>(size_in)),
        abort(std::make_shared<AbortToken>()) {}

  int size;
  std::vector<Mailbox> mailboxes;

  // Failure semantics (fault.hpp). Split children share the parent's
  // abort token — a failure anywhere unwinds every communicator — and
  // inherit the watchdog deadline and fault plan.
  std::shared_ptr<AbortToken> abort;
  std::chrono::milliseconds watchdog{0};  ///< 0 = no deadline
  std::shared_ptr<const FaultPlan> fault_plan;

  // Sense-reversing barrier.
  std::mutex barrier_mutex;
  std::condition_variable barrier_cv;
  int barrier_arrived = 0;
  std::uint64_t barrier_generation = 0;

  // Registry used by split(): the first member of each (generation, color)
  // group allocates the child state; the last member erases the entry.
  std::mutex split_mutex;
  std::condition_variable split_cv;
  std::map<std::pair<std::uint64_t, int>, std::shared_ptr<SharedState>> split_children;
  std::map<std::pair<std::uint64_t, int>, int> split_remaining;
};

}  // namespace detail

/// Reserved tag space for internal collective traffic; user tags must be
/// non-negative.
enum InternalTag : int {
  kTagBcast = -1,
  kTagReduce = -2,
  kTagGather = -3,
  kTagAllgather = -4,
  kTagScatter = -5,
  kTagAlltoall = -6,
  kTagScan = -7,
  kTagSplit = -8,
  kTagReduceScatter = -9,
};

/// SPMD communicator handle. Move-only: every rank owns exactly one
/// instance per (sub-)communicator so that collective call sequences stay
/// aligned across ranks.
class Comm {
 public:
  Comm(std::shared_ptr<detail::SharedState> state, int rank, CostCounters* counters,
       FaultSlot* fault = nullptr)
      : state_(std::move(state)), rank_(rank), counters_(counters), fault_(fault) {}

  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;
  Comm(Comm&&) = default;
  Comm& operator=(Comm&&) = default;

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept { return state_->size; }
  [[nodiscard]] CostCounters& counters() noexcept { return *counters_; }

  /// Record kernel arithmetic against this rank's γ term.
  void add_flops(std::uint64_t n) noexcept { counters_->flops += n; }

  /// Global synchronization; counts one BSP superstep.
  void barrier();

  // ---- point-to-point ----------------------------------------------------

  /// Buffered send of a trivially copyable span. Never blocks.
  /// Self-sends are delivered but not counted: they are local memcpys,
  /// not network traffic, and would skew the α-β accounting.
  template <typename T>
  void send(int dest, int tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_rank(dest);
    Mailbox::Message payload(data.size_bytes());
    if (!data.empty()) std::memcpy(payload.data(), data.data(), data.size_bytes());
    fault_point(&payload);
    if (dest != rank_) {
      counters_->messages_sent += 1;
      counters_->bytes_sent += payload.size();
      if (obs::RankObserver* o = obs::current()) {
        o->message_bytes.record(payload.size());
      }
    }
    state_->mailboxes[static_cast<std::size_t>(dest)].deposit(rank_, tag,
                                                              std::move(payload));
  }

  template <typename T>
  void send_value(int dest, int tag, const T& value) {
    send<T>(dest, tag, std::span<const T>(&value, 1));
  }

  /// Blocking receive of a message from (source, tag). Mirrors send():
  /// self-receives are local memcpys and are not counted as traffic.
  template <typename T>
  [[nodiscard]] std::vector<T> recv(int source, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_rank(source);
    obs::RankObserver* const o = obs::current();
    const std::int64_t wait_start_ns = o != nullptr ? o->now_ns() : 0;
    Mailbox::Message payload = state_->mailboxes[static_cast<std::size_t>(rank_)].retrieve(
        source, tag, wait_policy());
    if (o != nullptr) {
      o->mailbox_wait_ns.record(
          static_cast<std::uint64_t>(o->now_ns() - wait_start_ns));
    }
    fault_point(&payload);
    if (source != rank_) counters_->bytes_received += payload.size();
    if (payload.size() % sizeof(T) != 0) {
      throw std::logic_error("bsp::Comm::recv: payload size not a multiple of element size");
    }
    std::vector<T> data(payload.size() / sizeof(T));
    if (!data.empty()) std::memcpy(data.data(), payload.data(), payload.size());
    return data;
  }

  template <typename T>
  [[nodiscard]] T recv_value(int source, int tag) {
    auto data = recv<T>(source, tag);
    if (data.size() != 1) {
      throw std::logic_error("bsp::Comm::recv_value: expected exactly one element");
    }
    return data.front();
  }

  // ---- collectives ---------------------------------------------------

  /// Binomial-tree broadcast from `root`; non-root contents are replaced.
  template <typename T>
  void broadcast(std::vector<T>& data, int root) {
    const int p = size();
    if (p == 1) return;
    const obs::CollectiveScope obs_scope(obs::Primitive::kBroadcast, *counters_);
    const int vrank = virtual_rank(root);
    for (int mask = 1; mask < p; mask <<= 1) {
      if (vrank < mask) {
        const int partner = vrank + mask;
        if (partner < p) {
          send<T>(real_rank(partner, root), kTagBcast, std::span<const T>(data));
        }
      } else if (vrank < (mask << 1)) {
        data = recv<T>(real_rank(vrank - mask, root), kTagBcast);
      }
    }
  }

  template <typename T>
  [[nodiscard]] T broadcast_value(T value, int root) {
    std::vector<T> buf(1, value);
    broadcast(buf, root);
    return buf.front();
  }

  /// Binomial-tree reduction to `root`; `op(a, b)` must be associative and
  /// commutative. Vector variant combines elementwise; all ranks must pass
  /// equal-length vectors. Returns the reduced vector on root (others get
  /// their partially combined buffer back — only root's result is defined).
  template <typename T, typename Op>
  void reduce(std::vector<T>& data, Op op, int root) {
    const int p = size();
    const obs::CollectiveScope obs_scope(obs::Primitive::kReduce, *counters_);
    const int vrank = virtual_rank(root);
    int top = 1;
    while (top < p) top <<= 1;
    for (int mask = top >> 1; mask >= 1; mask >>= 1) {
      if (vrank < mask) {
        const int partner = vrank + mask;
        if (partner < p) {
          auto incoming = recv<T>(real_rank(partner, root), kTagReduce);
          combine_elementwise(data, incoming, op);
        }
      } else if (vrank < (mask << 1)) {
        send<T>(real_rank(vrank - mask, root), kTagReduce, std::span<const T>(data));
        return;  // contributed; out of the tree
      }
    }
  }

  /// reduce-to-root followed by broadcast; result defined on all ranks.
  template <typename T, typename Op>
  void allreduce(std::vector<T>& data, Op op) {
    // Outermost scope: the internal reduce + broadcast emit nested spans
    // but only this one books cost-model drift (obs/trace.hpp).
    const obs::CollectiveScope obs_scope(obs::Primitive::kAllreduce, *counters_);
    reduce(data, op, 0);
    broadcast(data, 0);
  }

  template <typename T, typename Op>
  [[nodiscard]] T allreduce_value(T value, Op op) {
    std::vector<T> buf(1, value);
    allreduce(buf, op);
    return buf.front();
  }

  /// Flat gather of variable-length blocks to root; returns one vector per
  /// source rank (empty on non-roots).
  template <typename T>
  [[nodiscard]] std::vector<std::vector<T>> gather_v(std::span<const T> mine, int root) {
    const int p = size();
    const obs::CollectiveScope obs_scope(obs::Primitive::kGather, *counters_);
    std::vector<std::vector<T>> blocks;
    if (rank_ == root) {
      blocks.resize(static_cast<std::size_t>(p));
      blocks[static_cast<std::size_t>(rank_)].assign(mine.begin(), mine.end());
      for (int r = 0; r < p; ++r) {
        if (r == root) continue;
        blocks[static_cast<std::size_t>(r)] = recv<T>(r, kTagGather);
      }
    } else {
      send<T>(root, kTagGather, mine);
    }
    return blocks;
  }

  /// Ring allgather of variable-length blocks; every rank returns all
  /// blocks in rank order. Bandwidth-optimal: p−1 rounds, each forwarding
  /// the block received in the previous round.
  template <typename T>
  [[nodiscard]] std::vector<std::vector<T>> allgather_v(std::span<const T> mine) {
    const int p = size();
    const obs::CollectiveScope obs_scope(obs::Primitive::kAllgather, *counters_);
    std::vector<std::vector<T>> blocks(static_cast<std::size_t>(p));
    blocks[static_cast<std::size_t>(rank_)].assign(mine.begin(), mine.end());
    const int next = (rank_ + 1) % p;
    const int prev = (rank_ + p - 1) % p;
    int forwarding = rank_;  // owner of the block sent in this round
    for (int step = 0; step + 1 < p; ++step) {
      send<T>(next, kTagAllgather,
              std::span<const T>(blocks[static_cast<std::size_t>(forwarding)]));
      const int incoming = (rank_ + p - 1 - step) % p;
      blocks[static_cast<std::size_t>(incoming)] = recv<T>(prev, kTagAllgather);
      forwarding = incoming;
    }
    return blocks;
  }

  /// Concatenating allgather (blocks appended in rank order).
  template <typename T>
  [[nodiscard]] std::vector<T> allgather(std::span<const T> mine) {
    auto blocks = allgather_v(mine);
    std::size_t total = 0;
    for (const auto& b : blocks) total += b.size();
    std::vector<T> out;
    out.reserve(total);
    for (const auto& b : blocks) out.insert(out.end(), b.begin(), b.end());
    return out;
  }

  /// Root sends block r to rank r; returns this rank's block.
  template <typename T>
  [[nodiscard]] std::vector<T> scatter_v(const std::vector<std::vector<T>>& blocks,
                                         int root) {
    const int p = size();
    const obs::CollectiveScope obs_scope(obs::Primitive::kScatter, *counters_);
    if (rank_ == root) {
      if (static_cast<int>(blocks.size()) != p) {
        throw std::invalid_argument("bsp::Comm::scatter_v: need one block per rank");
      }
      for (int r = 0; r < p; ++r) {
        if (r == root) continue;
        send<T>(r, kTagScatter, std::span<const T>(blocks[static_cast<std::size_t>(r)]));
      }
      return blocks[static_cast<std::size_t>(root)];
    }
    return recv<T>(root, kTagScatter);
  }

  /// Personalized all-to-all with variable block sizes. outgoing[r] is the
  /// block for rank r; returns incoming[r] = block from rank r. Buffered
  /// sends make the direct exchange deadlock-free.
  template <typename T>
  [[nodiscard]] std::vector<std::vector<T>> alltoall_v(
      const std::vector<std::vector<T>>& outgoing) {
    const int p = size();
    const obs::CollectiveScope obs_scope(obs::Primitive::kAlltoall, *counters_);
    if (static_cast<int>(outgoing.size()) != p) {
      throw std::invalid_argument("bsp::Comm::alltoall_v: need one block per rank");
    }
    std::vector<std::vector<T>> incoming(static_cast<std::size_t>(p));
    incoming[static_cast<std::size_t>(rank_)] = outgoing[static_cast<std::size_t>(rank_)];
    // Pairwise-offset schedule spreads load across the "network".
    for (int offset = 1; offset < p; ++offset) {
      const int dest = (rank_ + offset) % p;
      send<T>(dest, kTagAlltoall, std::span<const T>(outgoing[static_cast<std::size_t>(dest)]));
    }
    for (int offset = 1; offset < p; ++offset) {
      const int source = (rank_ + p - offset) % p;
      incoming[static_cast<std::size_t>(source)] = recv<T>(source, kTagAlltoall);
    }
    return incoming;
  }

  /// Ring reduce-scatter: every rank passes equal-length vectors; rank r
  /// returns the elementwise combination of block r (block_count = p,
  /// near-equal contiguous blocks). Bandwidth-optimal: p−1 rounds each
  /// moving one block, (p−1)/p of the data per rank — the building block
  /// MPI implementations use inside large allreduces.
  template <typename T, typename Op>
  [[nodiscard]] std::vector<T> reduce_scatter(const std::vector<T>& data, Op op) {
    const int p = size();
    const auto total = static_cast<std::int64_t>(data.size());
    auto block_begin = [&](int b) {
      const std::int64_t base = total / p;
      const std::int64_t extra = total % p;
      return b * base + (b < static_cast<int>(extra) ? b : static_cast<std::int64_t>(extra));
    };
    auto block_of = [&](const std::vector<T>& v, int b) {
      return std::span<const T>(v.data() + block_begin(b),
                                static_cast<std::size_t>(block_begin(b + 1) - block_begin(b)));
    };
    if (p == 1) return data;
    const obs::CollectiveScope obs_scope(obs::Primitive::kReduceScatter,
                                         *counters_);

    // Block b leaves rank b+1 first and travels the ring once, combining
    // each rank's copy on the way; after p−1 rounds it lands fully
    // reduced on its owner b. Round t: rank r sends block (r−1−t) and
    // receives + combines block (r−2−t); the last block received is r's.
    std::vector<T> accum = data;
    const int next = (rank_ + 1) % p;
    const int prev = (rank_ + p - 1) % p;
    for (int t = 0; t < p - 1; ++t) {
      const int send_block = (rank_ - 1 - t % p + 2 * p) % p;
      const int recv_block = (rank_ - 2 - t % p + 2 * p) % p;
      send<T>(next, kTagReduceScatter, block_of(accum, send_block));
      const std::vector<T> incoming = recv<T>(prev, kTagReduceScatter);
      const std::int64_t begin = block_begin(recv_block);
      for (std::size_t i = 0; i < incoming.size(); ++i) {
        accum[static_cast<std::size_t>(begin) + i] =
            op(incoming[i], accum[static_cast<std::size_t>(begin) + i]);
      }
    }
    const auto mine = block_of(accum, rank_);
    return {mine.begin(), mine.end()};
  }

  /// Inclusive prefix combine (dissemination / Hillis-Steele): returns
  /// op(x_0, ..., x_rank). O(log p) rounds.
  template <typename T, typename Op>
  [[nodiscard]] T scan(T value, Op op) {
    const int p = size();
    const obs::CollectiveScope obs_scope(obs::Primitive::kScan, *counters_);
    T inclusive = value;
    for (int offset = 1; offset < p; offset <<= 1) {
      if (rank_ + offset < p) send_value<T>(rank_ + offset, kTagScan, inclusive);
      if (rank_ - offset >= 0) {
        T incoming = recv_value<T>(rank_ - offset, kTagScan);
        inclusive = op(incoming, inclusive);
      }
    }
    return inclusive;
  }

  /// Exclusive prefix combine: returns op(x_0, ..., x_{rank-1}), or
  /// `identity` on rank 0.
  template <typename T, typename Op>
  [[nodiscard]] T exscan(T value, Op op, T identity) {
    const int p = size();
    const obs::CollectiveScope obs_scope(obs::Primitive::kScan, *counters_);
    T inclusive = value;
    T exclusive = identity;
    bool has_exclusive = false;
    for (int offset = 1; offset < p; offset <<= 1) {
      if (rank_ + offset < p) send_value<T>(rank_ + offset, kTagScan, inclusive);
      if (rank_ - offset >= 0) {
        T incoming = recv_value<T>(rank_ - offset, kTagScan);
        inclusive = op(incoming, inclusive);
        exclusive = has_exclusive ? op(incoming, exclusive) : incoming;
        has_exclusive = true;
      }
    }
    return exclusive;
  }

  /// Collective split into sub-communicators, MPI_Comm_split semantics:
  /// ranks sharing `color` form a group, ordered by (key, parent rank).
  /// Cost counters keep pointing at this rank's root counters, so
  /// sub-communicator traffic still accrues to the global BSP accounting.
  [[nodiscard]] Comm split(int color, int key);

 private:
  [[nodiscard]] int virtual_rank(int root) const noexcept {
    return (rank_ - root + size()) % size();
  }
  [[nodiscard]] int real_rank(int vrank, int root) const noexcept {
    return (vrank + root) % size();
  }
  void check_rank(int r) const {
    if (r < 0 || r >= size()) throw std::out_of_range("bsp::Comm: rank out of range");
  }

  [[nodiscard]] WaitPolicy wait_policy() const noexcept {
    return WaitPolicy{state_->abort.get(), state_->watchdog, rank_};
  }

  /// Fault-injection hook on every counted point-to-point op (and so on
  /// every collective). No-op unless a plan is installed.
  void fault_point(Mailbox::Message* payload) {
    if (fault_ == nullptr) return;
    const FaultPlan* plan = state_->fault_plan.get();
    if (plan == nullptr) return;
    plan->apply(*fault_, payload);
  }

  template <typename T, typename Op>
  static void combine_elementwise(std::vector<T>& into, const std::vector<T>& from,
                                  Op op) {
    if (into.size() != from.size()) {
      throw std::logic_error("bsp reduce: mismatched vector lengths across ranks");
    }
    for (std::size_t i = 0; i < into.size(); ++i) into[i] = op(into[i], from[i]);
  }

  std::shared_ptr<detail::SharedState> state_;
  int rank_;
  CostCounters* counters_;
  FaultSlot* fault_ = nullptr;  // world-rank injection state; null = no plan
  std::uint64_t split_sequence_ = 0;  // aligned across ranks by SPMD discipline
};

}  // namespace sas::bsp
