// exchange.hpp — the distributed sketch-exchange pipeline and the
// hybrid's candidate pass.
//
// The approximate counterpart of the SpGEMM driver path: instead of
// redistributing bit-packed k-mer panels and multiplying under the
// popcount semiring, each rank
//
//   1. builds one sketch per OWNED sample (block distribution over the
//      n samples) by streaming the sample's attribute ids batch by batch
//      through SampleSource::values_in_range — same batched reads, same
//      bounded memory as the exact path, and order-independence of
//      add() makes the result identical for any batch count. A sample
//      with a persisted, parameter-compatible wire blob
//      (SampleSource::persisted_sketch) is loaded instead of re-streamed;
//   2. flattens the owned sketches' wire blobs into one panel
//      (core::pack_word_panel) and rotates the panels around the PR-1
//      overlapped ring (send posted before the local estimation work,
//      honoring Config::ring_overlap);
//   3. estimates all-pairs Jaccard between its sketches and each
//      arriving panel (sketch::estimate_jaccard_wire) straight into its
//      row panel of the SimilarityMatrix, which is assembled on rank 0
//      exactly like the exact path's output.
//
// Communication per rotation step is O(samples_per_rank · sketch_bytes)
// — independent of genome size — versus the exact ring's O(nnz) panel
// bytes; bench/minhash_accuracy reports both through the bsp cost
// counters. Estimates are symmetric and deterministic in (config, data),
// so the result is bitwise independent of the rank count (tested).
//
// == The hybrid candidate pass ===========================================
//
// Estimator::kHybrid uses the same wire blobs differently: instead of a
// similarity matrix alone, the pass returns a replicated candidate mask
// (distmat::CandidateMask) — every pair whose estimated Jaccard clears
// prune_threshold − slack — plus the estimates themselves (rank 0), which
// the driver uses to fill the pruned entries of the final matrix. The
// blobs arrive from the driver's one-pass ingest stage (StreamingSketcher
// fed by the same reads that are bitmask-packed), so the hybrid reads
// each input exactly once. Two candidate strategies exist
// (core::CandidateMode):
//
//   all-pairs — every blob is allgathered (ring allgather, O(n ·
//     sketch_bytes) per rank) and each rank scores its n/p-row slice of
//     all n² pairs into a dense PairMask (word-OR allreduce). Exact
//     candidate set; quadratic score work and a quadratic replicated
//     mask. The default below Config::lsh_min_samples.
//
//   lsh — LSH banding over the one-permutation MinHash registers
//     (oph_wire_band_hashes): each rank computes B band buckets per
//     owned sample, routes ONE packed (bucket-group, sample) word per
//     band through the existing alltoall, and only pairs colliding in
//     ≥ 1 bucket are routed (to the rank owning the lower sample's
//     blob), deduplicated, blob-fetched, and scored. Bytes and score
//     work are O(collisions), not O(n²); the replicated mask switches to
//     the CSR SparsePairMask when the surviving density is low
//     (sparse_pair_mask_wins), with a union-merge allreduce
//     (allreduce_pair_union) replacing the dense word-OR. Recall follows
//     the banding S-curve 1 − (1 − m^R)^B (lsh_candidate_plan picks
//     (B, R) from the effective threshold); pairs that never collide
//     report a 0.0 estimate. Pairs BELOW the effective threshold that do
//     collide still report their scored estimate, so precision is
//     identical to all-pairs. Degenerate buckets larger than
//     Config::lsh_bucket_cap (e.g. all-empty sketches hashing into one
//     bucket, which would emit s(s−1)/2 pair words) replicate their
//     member list instead and are rescored by a mini all-pairs pass over
//     the capped union on the blob owners — O(s) routed bytes, recall a
//     superset of the uncapped bucket's.
#pragma once

#include <cstdint>
#include <span>
#include <variant>
#include <vector>

#include "bsp/comm.hpp"
#include "core/config.hpp"
#include "core/driver.hpp"
#include "core/sample_source.hpp"
#include "distmat/pair_mask.hpp"
#include "sketch/bottomk.hpp"
#include "sketch/hyperloglog.hpp"
#include "sketch/one_perm_minhash.hpp"

namespace sas::sketch {

/// Short name of a sketch estimator ("hll" | "minhash" | "bottomk") —
/// the persisted-blob file suffix and the CLI spelling. Throws
/// std::invalid_argument for non-sketch estimators.
[[nodiscard]] const char* estimator_wire_name(core::Estimator estimator);

/// The sketch estimator `config` resolves to: the estimator itself, or
/// Config::hybrid_sketch for a hybrid config (kExact resolves to kExact;
/// most callers reject it downstream).
[[nodiscard]] core::Estimator resolved_sketch_estimator(const core::Config& config);

/// Does `wire` carry a sketch comparable against sketches built under
/// `config` (same type, parameters, and seed)? False for malformed blobs.
[[nodiscard]] bool wire_matches_config(std::span<const std::uint64_t> wire,
                                       const core::Config& config);

/// Effective prune slack of the hybrid: Config::prune_slack when pinned
/// (≥ 0), else the documented mean-error bound of the configured
/// hybrid_sketch at its configured size.
[[nodiscard]] double hybrid_prune_slack(const core::Config& config);

/// Incremental per-sample sketch builders for one rank — the pack/sketch
/// stage's half of the hybrid's one-pass ingest. The driver registers the
/// samples it reads, optionally preloads persisted blobs (those samples
/// need no streaming), absorbs each batch's values as they are read for
/// packing, and collects the wire blobs at the end. add() is order- and
/// batch-independent, so the blobs are identical to whole-sample sketches.
class StreamingSketcher {
 public:
  /// `config.estimator` must be a sketch estimator (the driver passes its
  /// sketch view of a hybrid config).
  explicit StreamingSketcher(const core::Config& config);

  /// Register a sample; returns its local index (registration order).
  std::size_t add_sample(std::int64_t sample);

  /// Use a persisted wire blob; the sample's values need not be absorbed.
  void preload(std::size_t index, std::vector<std::uint64_t> wire);

  /// False once `index` is preloaded — its absorb calls may be skipped.
  [[nodiscard]] bool needs_stream(std::size_t index) const;

  /// Feed one batch of the sample's global attribute ids.
  void absorb(std::size_t index, std::span<const std::int64_t> values);

  [[nodiscard]] const std::vector<std::int64_t>& samples() const noexcept {
    return samples_;
  }

  /// Wire blobs in registration order. The sketcher is spent afterwards.
  [[nodiscard]] std::vector<std::vector<std::uint64_t>> finish();

 private:
  using AnySketch = std::variant<HyperLogLog, OnePermMinHash, BottomKSketch>;

  core::Config config_;
  std::vector<std::int64_t> samples_;
  std::vector<AnySketch> sketches_;
  std::vector<std::vector<std::uint64_t>> preloaded_;  ///< empty = stream
};

/// Wire blob of one sample's sketch under `config` (which selects the
/// estimator and its parameters): the persisted blob when present and
/// compatible, else built by streaming the sample's attribute ids in
/// `config.batch_count` batches. Throws std::invalid_argument when
/// config.estimator == kExact.
[[nodiscard]] std::vector<std::uint64_t> build_sample_wire(
    const core::SampleSource& source, std::int64_t sample, const core::Config& config);

/// Banding parameters of the LSH candidate pass: B bands of R registers
/// each (B·R ≤ sketch_size).
struct LshPlan {
  std::int64_t bands = 0;          ///< B
  std::int64_t rows_per_band = 0;  ///< R
};

/// (B, R) for the LSH candidate pass under `config` at the given
/// effective Jaccard threshold. Config::lsh_bands > 0 pins B (with
/// R = max(1, sketch_size / B)); 0 derives both from the threshold's
/// register match fraction m = t(1−2⁻ᵇ) + 2⁻ᵇ: the LARGEST R whose
/// required band count B = ⌈C/mᴿ⌉ (detection constant C = 7, i.e.
/// P(miss at exactly the threshold) ≤ e⁻⁷) still fits the register
/// budget B·R ≤ sketch_size. Larger R sharpens the S-curve (fewer
/// sub-threshold collisions) at more band keys; pairs safely above the
/// threshold collide with probability ≥ 1 − e⁻ᶜ. Throws when the
/// resolved sketch is not minhash.
[[nodiscard]] LshPlan lsh_candidate_plan(const core::Config& config,
                                         double effective_threshold);

/// Candidate strategy `config` resolves to for an n-sample corpus (the
/// kAuto rule, plus the correctness fallbacks documented in
/// core::CandidateMode). Throws std::invalid_argument when kLsh is
/// pinned with a non-minhash prune sketch.
[[nodiscard]] core::CandidateMode resolved_candidate_mode(const core::Config& config,
                                                          std::int64_t n);

/// One scored pair's sketch estimate (i < j). What the candidate pass
/// hands rank 0 instead of a dense n² estimate array: pairs the pass
/// never scored (LSH non-colliders) or scored at exactly 0 are simply
/// absent — their estimate reads as 0.0.
struct PairEstimate {
  std::int64_t i = 0;
  std::int64_t j = 0;  ///< i < j
  double est = 0.0;

  friend bool operator==(const PairEstimate&, const PairEstimate&) = default;
};
static_assert(std::is_trivially_copyable_v<PairEstimate>);

/// Output of the hybrid's sketch-prune pass.
struct CandidatePass {
  /// Replicated candidate mask: pair (i, j) set iff Ĵ(i, j) ≥
  /// prune_threshold − slack (and, under kLsh, the pair collided in ≥ 1
  /// band), plus the full diagonal. Symmetric; dense or sparse per the
  /// storage-parity crossover.
  distmat::CandidateMask mask;
  /// Rank 0: the scored pairs with a non-zero estimate, sorted by
  /// (i, j) — O(scored pairs) memory, never an n² array. All-pairs mode
  /// scores every pair (zeros are dropped); LSH mode scores colliding
  /// pairs; estimate_at reports 0.0 for everything absent. Empty on
  /// other ranks.
  std::vector<PairEstimate> estimates;
  /// The threshold actually applied (prune_threshold − slack, floored at 0).
  double effective_threshold = 0.0;
  /// Strategy actually used (kAuto resolved) and, for kLsh, the banding.
  core::CandidateMode mode = core::CandidateMode::kAllPairs;
  LshPlan plan;

  /// The estimate of (i, j): 1.0 on the diagonal, the scored value when
  /// present, 0.0 otherwise. O(log estimates); rank 0 only.
  [[nodiscard]] double estimate_at(std::int64_t i, std::int64_t j) const noexcept;
};

/// Collective over `world`: generate and score candidate pairs from
/// per-sample wire blobs and threshold them into a replicated candidate
/// mask (all-pairs or LSH-banded per Config::candidate_mode).
/// `samples`/`blobs` are this rank's registered samples (any disjoint
/// cover of [0, n) across ranks works; the driver passes its cyclic read
/// ownership). `config` is the sketch view of the hybrid config
/// (estimator already resolved to the prune sketch).
[[nodiscard]] CandidatePass sketch_candidate_pass(
    bsp::Comm& world, std::span<const std::int64_t> samples,
    const std::vector<std::vector<std::uint64_t>>& blobs, std::int64_t n,
    const core::Config& config);

/// Run the sketch-exchange pipeline collectively over `world`. Every
/// rank must call with identical `config` (estimator must be a sketch
/// estimator); the estimated similarity matrix and batch statistics land
/// on rank 0, mirroring core::similarity_at_scale's contract.
[[nodiscard]] core::Result sketch_similarity_at_scale(bsp::Comm& world,
                                                      const core::SampleSource& source,
                                                      const core::Config& config);

}  // namespace sas::sketch
