// membudget.hpp — per-rank memory-budget guardrail (--mem-budget-mb).
//
// The driver's large allocations (panels, packed triplet batches,
// point-to-point payload staging) are charged against a thread-local
// budget installed for the duration of each rank's pipeline body. When a
// charge would push the rank past its budget the allocation site throws a
// typed error::ResourceExhausted (exit code 8) *before* allocating, so
// the failure is a clean unwind the recovery layer can classify — not an
// OOM kill or a std::bad_alloc from deep inside a container.
//
// The budget is deliberately thread-local (ranks are threads): each rank
// accounts only its own allocations, matching the per-process budget a
// real distributed deployment would enforce. No budget installed (the
// default) means every charge is a no-op — zero cost on the hot path
// beyond one thread-local load and branch.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "util/error.hpp"

namespace sas::util {

/// Accounting state for one rank's budget. Lives on the rank's stack via
/// ScopedBudget; the thread-local current-budget pointer makes it
/// reachable from allocation sites without threading a handle through
/// every call signature.
class MemBudget {
 public:
  explicit MemBudget(std::uint64_t limit_bytes) noexcept : limit_(limit_bytes) {}

  /// Record `bytes` against the budget; throws error::ResourceExhausted
  /// naming `what` when the total would exceed the limit. The charge is
  /// NOT recorded on the throwing path, so an unwinding caller that never
  /// allocated does not leak accounted bytes.
  void charge(std::uint64_t bytes, const char* what) {
    const std::uint64_t next = used_ + bytes;
    if (next > limit_) {
      throw error::ResourceExhausted(
          std::string("memory budget exceeded: ") + what + " needs " +
          std::to_string(bytes) + " bytes with " + std::to_string(used_) +
          " of " + std::to_string(limit_) + " already charged");
    }
    used_ = next;
    if (used_ > high_water_) high_water_ = used_;
  }

  /// Release `bytes` previously charged (clamped at zero for safety).
  void release(std::uint64_t bytes) noexcept {
    used_ = bytes > used_ ? 0 : used_ - bytes;
  }

  [[nodiscard]] std::uint64_t used() const noexcept { return used_; }
  [[nodiscard]] std::uint64_t limit() const noexcept { return limit_; }
  [[nodiscard]] std::uint64_t high_water() const noexcept { return high_water_; }

 private:
  std::uint64_t limit_;
  std::uint64_t used_ = 0;
  std::uint64_t high_water_ = 0;
};

namespace detail {
inline thread_local MemBudget* current_budget = nullptr;
}  // namespace detail

/// The calling thread's active budget, or nullptr when none is installed.
[[nodiscard]] inline MemBudget* current_mem_budget() noexcept {
  return detail::current_budget;
}

/// Charge the calling thread's budget if one is installed; no-op
/// otherwise. Throws error::ResourceExhausted on an over-budget charge.
inline void charge_mem(std::uint64_t bytes, const char* what) {
  if (MemBudget* b = detail::current_budget) b->charge(bytes, what);
}

/// Install a budget for the current thread (one per rank, for the
/// lifetime of the rank's pipeline body). Restores the previous budget
/// on destruction so nested scopes compose.
class ScopedBudget {
 public:
  explicit ScopedBudget(std::uint64_t limit_bytes) noexcept
      : budget_(limit_bytes), previous_(detail::current_budget) {
    detail::current_budget = &budget_;
  }
  ~ScopedBudget() { detail::current_budget = previous_; }
  ScopedBudget(const ScopedBudget&) = delete;
  ScopedBudget& operator=(const ScopedBudget&) = delete;

  [[nodiscard]] const MemBudget& budget() const noexcept { return budget_; }

 private:
  MemBudget budget_;
  MemBudget* previous_;
};

/// RAII charge for an allocation with block scope (e.g. one batch's
/// packed triplets): charged on construction, released on destruction.
/// Throwing constructor — place it BEFORE the allocation it covers.
class ScopedCharge {
 public:
  ScopedCharge(std::uint64_t bytes, const char* what) : bytes_(bytes) {
    charge_mem(bytes_, what);
  }
  ~ScopedCharge() {
    if (MemBudget* b = detail::current_budget) b->release(bytes_);
  }
  ScopedCharge(const ScopedCharge&) = delete;
  ScopedCharge& operator=(const ScopedCharge&) = delete;

 private:
  std::uint64_t bytes_;
};

}  // namespace sas::util
