// redistribute.hpp — Cyclops-style accumulating write().
//
// Each rank contributes an arbitrary bag of (row, col, value) entries; the
// entries are routed to their owning ranks with one all-to-all exchange
// and merged there under the semiring's combine operation. This is the
// communication pattern behind the paper's `write()` calls (§IV-A): bulk,
// collective, and accumulation-based so repeated coordinates are legal.
//
// Tag audit (bsp/tags.hpp): this header is collective-only — alltoall_v
// runs on comm.hpp's reserved internal tags, so no user tag is minted
// here. New point-to-point traffic must take its tag from bsp::tags.
#pragma once

#include <functional>
#include <vector>

#include "bsp/comm.hpp"
#include "distmat/triplet.hpp"

namespace sas::distmat {

/// Route `mine` to owners and return this rank's merged entries.
///
/// `owner_of(row, col)` maps a coordinate to a rank of `comm`; `combine`
/// merges values landing on the same coordinate. The result is sorted by
/// (row, col) with unique coordinates — the canonical local form.
template <typename T, typename OwnerFn, typename Combine>
[[nodiscard]] std::vector<Triplet<T>> redistribute_triplets(
    bsp::Comm& comm, std::vector<Triplet<T>> mine, OwnerFn owner_of, Combine combine) {
  const int p = comm.size();
  std::vector<std::vector<Triplet<T>>> outgoing(static_cast<std::size_t>(p));
  for (Triplet<T>& t : mine) {
    const int owner = owner_of(t.row, t.col);
    outgoing[static_cast<std::size_t>(owner)].push_back(t);
  }
  mine.clear();
  mine.shrink_to_fit();

  std::vector<std::vector<Triplet<T>>> incoming = comm.alltoall_v(outgoing);
  std::vector<Triplet<T>> merged;
  std::size_t total = 0;
  for (const auto& block : incoming) total += block.size();
  merged.reserve(total);
  for (auto& block : incoming) {
    merged.insert(merged.end(), block.begin(), block.end());
    block.clear();
  }
  normalize_triplets(merged, combine);
  return merged;
}

}  // namespace sas::distmat
