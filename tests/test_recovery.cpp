// test_recovery.cpp — in-run recovery semantics of the staged driver
// (core/driver.cpp run_batch_with_recovery, bsp/comm.cpp Comm::recover):
// transient faults retry to bitwise-identical results, retry exhaustion
// and permanent faults quarantine deterministically under --quarantine,
// and the resource guardrails (memory budget, durable checkpointing)
// fail as typed errors instead of OOM kills or torn files.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bsp/fault.hpp"
#include "core/checkpoint.hpp"
#include "core/driver.hpp"
#include "core/sample_source.hpp"
#include "distmat/dense_block.hpp"
#include "util/error.hpp"
#include "util/membudget.hpp"
#include "util/rng.hpp"

namespace sas {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------- fault-plan grammar (PR 10)

TEST(RecoveryPlan, ParsesTransientAndModifiers) {
  const auto plan = bsp::FaultPlan::parse(
      "rank=1:op=8:throw_transient:until=2:count=3;rank=0:op=4:throw:count=2");
  ASSERT_EQ(plan.actions.size(), 2u);
  EXPECT_EQ(plan.actions[0].kind, bsp::FaultKind::kThrowTransient);
  EXPECT_EQ(plan.actions[0].until_attempt, 2u);
  EXPECT_EQ(plan.actions[0].count, 3u);
  EXPECT_EQ(plan.actions[1].kind, bsp::FaultKind::kThrow);
  EXPECT_EQ(plan.actions[1].count, 2u);
  // Modifier order is free.
  const auto swapped =
      bsp::FaultPlan::parse("rank=1:op=8:throw_transient:count=3:until=2");
  EXPECT_EQ(swapped.actions[0].until_attempt, 2u);
  EXPECT_EQ(swapped.actions[0].count, 3u);
  // Defaults: fire forever (never heal), once per attempt.
  const auto bare = bsp::FaultPlan::parse("rank=1:op=8:throw_transient");
  EXPECT_EQ(bare.actions[0].until_attempt, ~std::uint64_t{0});
  EXPECT_EQ(bare.actions[0].count, 1u);
}

TEST(RecoveryPlan, RejectsMalformedTransientSpecs) {
  // Every malformed spec is a typed ConfigError (gas exit 2), not a crash.
  EXPECT_THROW((void)bsp::FaultPlan::parse("rank=1:op=2:throw_transient=3"),
               error::ConfigError);
  EXPECT_THROW((void)bsp::FaultPlan::parse("rank=1:op=2:throw:until=1"),
               error::ConfigError);
  EXPECT_THROW((void)bsp::FaultPlan::parse("rank=1:op=2:throw_transient:until=x"),
               error::ConfigError);
  EXPECT_THROW((void)bsp::FaultPlan::parse("rank=1:op=2:throw_transient:until="),
               error::ConfigError);
  EXPECT_THROW((void)bsp::FaultPlan::parse("rank=1:op=2:throw_transient:count=0"),
               error::ConfigError);
  EXPECT_THROW(
      (void)bsp::FaultPlan::parse("rank=1:op=2:throw_transient:until=1:until=2"),
      error::ConfigError);
  EXPECT_THROW(
      (void)bsp::FaultPlan::parse("rank=1:op=2:throw_transient:count=1:count=1"),
      error::ConfigError);
  EXPECT_THROW((void)bsp::FaultPlan::parse("rank=1:op=2:throw_transient:frob=1"),
               error::ConfigError);
}

// --------------------------------------------------- seeded stress corpus

core::VectorSampleSource stress_source(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<std::int64_t>> samples(24);
  for (auto& s : samples) {
    for (std::int64_t v = 0; v < 220; ++v) {
      if (rng.bernoulli(0.25)) s.push_back(v);
    }
  }
  return core::VectorSampleSource(220, std::move(samples));
}

core::Config recovery_config(core::Estimator estimator) {
  core::Config config;
  config.estimator = estimator;
  config.algorithm = core::Algorithm::kRing1D;
  config.batch_count = 3;
  config.watchdog_ms = 60000;  // safety net: a recovery hang fails, not never
  if (estimator == core::Estimator::kHybrid) config.prune_threshold = 0.05;
  return config;
}

/// Compare two results of the same config bitwise (dense or sparse form).
void expect_bitwise_equal(const core::Result& got, const core::Result& want) {
  ASSERT_EQ(got.n, want.n);
  ASSERT_EQ(got.sparse_output(), want.sparse_output());
  if (got.sparse_output()) {
    EXPECT_EQ(got.sparse_similarity.to_dense().max_abs_diff(
                  want.sparse_similarity.to_dense()),
              0.0);
  } else {
    EXPECT_EQ(got.similarity.max_abs_diff(want.similarity), 0.0);
  }
}

// ------------------------------------------------- transient-retry matrix

struct RecoveryCase {
  int nranks;
  core::Estimator estimator;
};

class RecoveryStress : public ::testing::TestWithParam<RecoveryCase> {};

TEST_P(RecoveryStress, TransientFaultRetriesToBitwiseIdenticalResult) {
  // A transient fault healing at attempt 1 (until=1) fires once; the
  // recovery layer must roll the batch back, resync, replay, and produce
  // a result bit-for-bit equal to the fault-free run. The injection op
  // index is scanned (like the checkpoint kill tests) because ops fired
  // outside a batch body — layout setup, final assembly — are outside
  // the recovery contract and legitimately abort.
  const RecoveryCase c = GetParam();
  const auto source = stress_source(500 + static_cast<std::uint64_t>(c.nranks));
  const core::Config config = recovery_config(c.estimator);
  const core::Result reference =
      core::similarity_at_scale_threaded(c.nranks, source, config);

  bool recovered = false;
  for (std::uint64_t op = 2; op <= 140 && !recovered; op += 3) {
    core::Config faulty = config;
    faulty.max_retries = 3;
    faulty.retry_backoff_ms = 1;
    faulty.fault_plan =
        "rank=1:op=" + std::to_string(op) + ":throw_transient:until=1";
    try {
      const core::Result result =
          core::similarity_at_scale_threaded(c.nranks, source, faulty);
      if (result.retries == 0) break;  // ops ran out before the plan fired
      EXPECT_TRUE(result.quarantined.empty());
      EXPECT_FALSE(result.degraded());
      expect_bitwise_equal(result, reference);
      recovered = true;
    } catch (const error::Error&) {
      // Fired outside a recoverable batch body; try the next op index.
    }
  }
  ASSERT_TRUE(recovered)
      << "no op index recovered for " << c.nranks << " ranks";
}

INSTANTIATE_TEST_SUITE_P(
    RanksByEstimator, RecoveryStress,
    ::testing::Values(RecoveryCase{2, core::Estimator::kExact},
                      RecoveryCase{4, core::Estimator::kExact},
                      RecoveryCase{8, core::Estimator::kExact},
                      RecoveryCase{2, core::Estimator::kHybrid},
                      RecoveryCase{4, core::Estimator::kHybrid},
                      RecoveryCase{8, core::Estimator::kHybrid}));

// --------------------------------------------------- quarantine semantics

/// Scan op indices until a faulty run completes degraded; returns the op
/// used (0 when none quarantined — the caller asserts).
std::uint64_t find_quarantining_op(int nranks,
                                   const core::SampleSource& source,
                                   const core::Config& base,
                                   const std::string& action,
                                   core::Result* out) {
  for (std::uint64_t op = 2; op <= 140; op += 3) {
    core::Config faulty = base;
    faulty.fault_plan = "rank=1:op=" + std::to_string(op) + ":" + action;
    try {
      core::Result result =
          core::similarity_at_scale_threaded(nranks, source, faulty);
      if (result.degraded()) {
        *out = std::move(result);
        return op;
      }
      if (result.retries == 0 && result.quarantined.empty()) break;  // never fired
    } catch (const error::Error&) {
      // Fired outside a batch body; keep scanning.
    }
  }
  return 0;
}

TEST(Quarantine, RetryExhaustionQuarantinesDeterministically) {
  const int nranks = 4;
  const auto source = stress_source(4321);
  core::Config config = recovery_config(core::Estimator::kExact);
  config.max_retries = 2;
  config.retry_backoff_ms = 1;
  config.quarantine = true;

  core::Result degraded;
  const std::uint64_t op = find_quarantining_op(
      nranks, source, config, "throw_transient", &degraded);
  ASSERT_NE(op, 0u) << "no op index quarantined a batch";

  // max_retries=2 on a never-healing fault: attempts 0, 1, 2 all fail,
  // so the batch records 3 attempts and 2 replays before quarantine.
  ASSERT_EQ(degraded.quarantined.size(), 1u);
  const core::QuarantinedBatch& q = degraded.quarantined[0];
  EXPECT_EQ(q.attempts, 3);
  EXPECT_EQ(degraded.retries, 2);
  EXPECT_GE(q.batch, 0);
  EXPECT_LT(q.batch, config.batch_count);
  EXPECT_LT(q.row_begin, q.row_end);
  EXPECT_LE(q.row_end, source.attribute_universe());
  EXPECT_NE(q.reason.find("fault injection"), std::string::npos) << q.reason;

  // Determinism: the same seeded plan quarantines the same batch again.
  core::Config again = config;
  again.fault_plan = "rank=1:op=" + std::to_string(op) + ":throw_transient";
  const core::Result repeat =
      core::similarity_at_scale_threaded(nranks, source, again);
  ASSERT_EQ(repeat.quarantined.size(), 1u);
  EXPECT_EQ(repeat.quarantined[0].batch, q.batch);
  EXPECT_EQ(repeat.quarantined[0].attempts, q.attempts);
  EXPECT_EQ(repeat.retries, degraded.retries);
  expect_bitwise_equal(repeat, degraded);
}

TEST(Quarantine, PermanentFaultQuarantinesWithoutRetry) {
  // A permanent fault must never be retried: one attempt, straight to
  // quarantine, zero replays — even with a retry budget armed.
  const int nranks = 4;
  const auto source = stress_source(8765);
  core::Config config = recovery_config(core::Estimator::kExact);
  config.max_retries = 3;
  config.retry_backoff_ms = 1;
  config.quarantine = true;

  core::Result degraded;
  const std::uint64_t op =
      find_quarantining_op(nranks, source, config, "throw", &degraded);
  ASSERT_NE(op, 0u) << "no op index quarantined a batch";
  ASSERT_EQ(degraded.quarantined.size(), 1u);
  EXPECT_EQ(degraded.quarantined[0].attempts, 1);
  EXPECT_EQ(degraded.retries, 0);
}

TEST(Quarantine, WritesManifestNamingSkippedBatches) {
  const int nranks = 4;
  const auto source = stress_source(4321);
  const fs::path manifest =
      fs::temp_directory_path() / "sas_quarantine_manifest.json";
  fs::remove(manifest);

  core::Config config = recovery_config(core::Estimator::kExact);
  config.max_retries = 1;
  config.retry_backoff_ms = 1;
  config.quarantine = true;
  config.quarantine_manifest = manifest.string();

  core::Result degraded;
  const std::uint64_t op = find_quarantining_op(
      nranks, source, config, "throw_transient", &degraded);
  ASSERT_NE(op, 0u) << "no op index quarantined a batch";
  ASSERT_TRUE(fs::exists(manifest));

  std::ifstream in(manifest);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  EXPECT_NE(text.find("\"schema\":\"sas-quarantine-v1\""), std::string::npos)
      << text;
  EXPECT_NE(text.find("\"quarantined_batches\":1"), std::string::npos) << text;
  EXPECT_NE(text.find("\"batch\":" +
                      std::to_string(degraded.quarantined[0].batch)),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("\"reason\""), std::string::npos) << text;
  fs::remove(manifest);
}

// ------------------------------------------------ severity without recovery

TEST(Severity, TransientWithoutRecoveryAbortsWithTransientCode) {
  // No retry budget, no quarantine: a transient fault is a plain abort,
  // and the typed code (gas exit 7) survives the annotate-and-rethrow.
  const auto source = stress_source(99);
  core::Config config = recovery_config(core::Estimator::kExact);
  config.fault_plan = "rank=1:op=2:throw_transient";
  try {
    (void)core::similarity_at_scale_threaded(4, source, config);
    FAIL() << "expected the transient fault to abort without recovery armed";
  } catch (const error::Error& e) {
    EXPECT_EQ(e.code(), error::Code::kTransient) << e.what();
    EXPECT_TRUE(e.transient());
    EXPECT_NE(std::string(e.what()).find("transient throw"), std::string::npos)
        << e.what();
  }
}

TEST(Severity, RecoveryRequiresBatchedPipeline) {
  // Sketch estimators have no batch boundary to roll back to.
  const auto source = stress_source(7);
  core::Config config;
  config.estimator = core::Estimator::kHll;
  config.max_retries = 2;
  EXPECT_THROW((void)core::similarity_at_scale_threaded(2, source, config),
               error::ConfigError);
}

TEST(Severity, QuarantineManifestRequiresQuarantine) {
  const auto source = stress_source(7);
  core::Config config = recovery_config(core::Estimator::kExact);
  config.quarantine_manifest = "unused.json";
  EXPECT_THROW((void)core::similarity_at_scale_threaded(2, source, config),
               error::ConfigError);
}

// --------------------------------------------------------- memory budget

TEST(MemBudget, ChargesReleasesAndThrowsTyped) {
  util::ScopedBudget scope(1024);
  util::charge_mem(512, "first block");
  try {
    util::charge_mem(1024, "accumulator panel");
    FAIL() << "expected the over-budget charge to throw";
  } catch (const error::ResourceExhausted& e) {
    EXPECT_EQ(e.code(), error::Code::kResourceExhausted);
    EXPECT_NE(std::string(e.what()).find("accumulator panel"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("1024"), std::string::npos) << e.what();
  }
  // The failed charge was not booked: the remaining headroom still fits.
  util::charge_mem(512, "second block");
  EXPECT_EQ(scope.budget().used(), 1024u);
  EXPECT_EQ(scope.budget().high_water(), 1024u);
  {
    // ScopedCharge releases on unwind; high water remembers the peak...
    EXPECT_THROW(util::ScopedCharge(1u, "one byte too many"),
                 error::ResourceExhausted);
  }
  EXPECT_EQ(scope.budget().used(), 1024u);
}

TEST(MemBudget, NoBudgetMeansNoOp) {
  ASSERT_EQ(util::current_mem_budget(), nullptr);
  util::charge_mem(std::uint64_t{1} << 60, "unbounded");  // must not throw
}

TEST(MemBudget, DriverPanelAllocationFailsTyped) {
  // 400 samples: the serial accumulator panel alone is n²·8 = 1.28 MB,
  // over a 1 MB per-rank budget — the run must fail with the typed
  // resource error (gas exit 8), not an OOM kill.
  std::vector<std::vector<std::int64_t>> samples(400);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    samples[i] = {static_cast<std::int64_t>(i % 64)};
  }
  const core::VectorSampleSource source(64, std::move(samples));
  core::Config config;
  config.estimator = core::Estimator::kExact;
  config.algorithm = core::Algorithm::kSerial;
  config.mem_budget_mb = 1;
  try {
    (void)core::similarity_at_scale_threaded(1, source, config);
    FAIL() << "expected the panel charge to exhaust the budget";
  } catch (const error::Error& e) {
    EXPECT_EQ(e.code(), error::Code::kResourceExhausted) << e.what();
    EXPECT_NE(std::string(e.what()).find("memory budget exceeded"),
              std::string::npos)
        << e.what();
  }
}

// -------------------------------------------------- durable checkpointing

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

TEST(DurableCheckpoint, SweepsStaleTmpPartialsOnConstruction) {
  const fs::path dir = fresh_dir("sas_ckpt_sweep");
  const fs::path stale = dir / "rank0.b1.sasc.tmp";
  std::ofstream(stale) << "torn partial from a kill mid-commit";
  ASSERT_TRUE(fs::exists(stale));
  const core::Checkpoint ckpt(dir.string(), 1234);
  EXPECT_FALSE(fs::exists(stale)) << "stale .tmp survived the sweep";
  fs::remove_all(dir);
}

TEST(DurableCheckpoint, SaveIntoRemovedDirectoryThrowsTyped) {
  const fs::path dir = fresh_dir("sas_ckpt_unwritable");
  const core::Checkpoint ckpt(dir.string(), 1);
  fs::remove_all(dir);  // yank the directory out from under the writer
  const std::vector<std::int64_t> ahat = {1, 2, 3};
  EXPECT_THROW(ckpt.save_rank(0, 1, nullptr, ahat), error::ConfigError);
}

TEST(BatchSnapshot, RoundTripsAccumulatorStateBitwise) {
  distmat::DenseBlock<std::int64_t> block(distmat::BlockRange{0, 3},
                                          distmat::BlockRange{0, 4});
  for (std::size_t i = 0; i < block.values.size(); ++i) {
    block.values[i] = static_cast<std::int64_t>(i * 7 + 1);
  }
  std::vector<std::int64_t> ahat = {5, 6, 7};
  const auto block_before = block.values;
  const auto ahat_before = ahat;

  core::BatchSnapshot snapshot;
  EXPECT_FALSE(snapshot.valid());
  snapshot.capture(2, &block, ahat);
  EXPECT_TRUE(snapshot.valid());
  EXPECT_GT(snapshot.bytes(), 0u);

  for (auto& v : block.values) v += 1000;  // the failed attempt's damage
  ahat.assign({9, 9, 9});
  snapshot.restore(2, &block, ahat);
  EXPECT_EQ(block.values, block_before);
  EXPECT_EQ(ahat, ahat_before);

  // A snapshot restored at the wrong batch boundary is a logic error —
  // the recovery layer only ever restores what it just captured.
  EXPECT_THROW(snapshot.restore(3, &block, ahat), std::logic_error);
}

TEST(BatchSnapshot, BlocklessRanksRoundTripToo) {
  std::vector<std::int64_t> ahat = {11, 12};
  const auto before = ahat;
  core::BatchSnapshot snapshot;
  snapshot.capture(0, nullptr, ahat);
  ahat.clear();
  ahat.assign({0, 0});
  snapshot.restore(0, nullptr, ahat);
  EXPECT_EQ(ahat, before);
}

}  // namespace
}  // namespace sas
