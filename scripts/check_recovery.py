#!/usr/bin/env python3
"""CI chaos-job assertions over the in-run recovery artifacts.

Two modes, matching the two recovery outcomes the chaos job exercises:

  check_recovery.py recovered <trace.json> <report.json> <result.tsv> <baseline.tsv>

    A seeded transient fault plan whose faults heal within the retry
    budget: the run must complete CLEAN (report status "ok") with at
    least one replay recorded, the trace must carry the recovery spans
    ("recover" + "retry", category "recovery") and the recovery.retries
    counter, and the result TSV must be byte-identical to the fault-free
    baseline — replays are bitwise, not approximately, equal.

  check_recovery.py degraded <report.json> <manifest.json>

    The same plan made permanent under --quarantine: the run must
    complete DEGRADED (exit 9 is asserted by the workflow), the report
    must name the quarantined batches, and the sas-quarantine-v1
    manifest must agree with the report batch-for-batch.

Exits nonzero with a diagnostic on the first violated assertion.
"""
import json
import sys


def fail(msg):
    print(f"check_recovery: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load_json(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"{path}: {err}")


def check_recovered(trace_path, report_path, result_path, baseline_path):
    trace = load_json(trace_path)
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{trace_path}: no traceEvents")
    recovery_spans = {}
    for ev in events:
        if ev.get("ph") == "X" and ev.get("cat") == "recovery":
            recovery_spans[ev["name"]] = recovery_spans.get(ev["name"], 0) + 1
    if recovery_spans.get("recover", 0) == 0:
        fail(f"{trace_path}: no 'recover' rendezvous span "
             f"(recovery spans seen: {recovery_spans})")
    if recovery_spans.get("retry", 0) == 0:
        fail(f"{trace_path}: no 'retry' span — the plan never fired or the "
             f"replay never ran (recovery spans seen: {recovery_spans})")

    report = load_json(report_path)
    if report.get("status") != "ok":
        fail(f"{report_path}: status is {report.get('status')!r} — a healed "
             "transient run must complete clean")
    if report.get("retries", 0) <= 0:
        fail(f"{report_path}: retries is {report.get('retries')!r}, expected > 0")
    if report.get("quarantined"):
        fail(f"{report_path}: unexpected quarantined batches on a healed run")
    counter_total = 0
    for row in report.get("metrics", []):
        counter_total += row.get("counters", {}).get("recovery.retries", 0)
    if counter_total <= 0:
        fail(f"{report_path}: no rank recorded the recovery.retries counter")

    with open(result_path, "rb") as f:
        result = f.read()
    with open(baseline_path, "rb") as f:
        baseline = f.read()
    if not baseline:
        fail(f"{baseline_path}: baseline result is empty")
    if result != baseline:
        fail(f"{result_path}: recovered result differs from the fault-free "
             f"baseline ({len(result)} vs {len(baseline)} bytes) — replays "
             "must be bitwise-identical")
    print(f"recovered ok: {report['retries']} replay(s), spans {recovery_spans}, "
          f"result matches baseline ({len(result)} bytes)")


def check_degraded(report_path, manifest_path):
    report = load_json(report_path)
    if report.get("status") != "degraded":
        fail(f"{report_path}: status is {report.get('status')!r}, expected "
             "'degraded'")
    quarantined = report.get("quarantined")
    if not quarantined:
        fail(f"{report_path}: degraded status but no quarantined batches named")
    for row in quarantined:
        if not (0 <= row["row_begin"] < row["row_end"]):
            fail(f"{report_path}: degenerate quarantined row range {row}")
        if row["attempts"] < 1 or not row.get("reason"):
            fail(f"{report_path}: quarantined batch lacks attempts/reason: {row}")

    manifest = load_json(manifest_path)
    if manifest.get("schema") != "sas-quarantine-v1":
        fail(f"{manifest_path}: schema is {manifest.get('schema')!r}, expected "
             "'sas-quarantine-v1'")
    if manifest.get("quarantined_batches") != len(manifest.get("batches", [])):
        fail(f"{manifest_path}: quarantined_batches count disagrees with the "
             "batches table")
    report_batches = sorted(row["batch"] for row in quarantined)
    manifest_batches = sorted(row["batch"] for row in manifest.get("batches", []))
    if report_batches != manifest_batches:
        fail(f"report names batches {report_batches} but the manifest names "
             f"{manifest_batches}")
    print(f"degraded ok: batches {manifest_batches} quarantined, "
          f"{manifest.get('retries', 0)} replay(s) before giving up")


def main():
    if len(sys.argv) >= 2 and sys.argv[1] == "recovered" and len(sys.argv) == 6:
        check_recovered(*sys.argv[2:6])
    elif len(sys.argv) >= 2 and sys.argv[1] == "degraded" and len(sys.argv) == 4:
        check_degraded(*sys.argv[2:4])
    else:
        fail("usage: check_recovery.py recovered <trace.json> <report.json> "
             "<result.tsv> <baseline.tsv> | degraded <report.json> "
             "<manifest.json>")
    print("check_recovery: ok")


if __name__ == "__main__":
    main()
