// config.hpp — tuning knobs of the SimilarityAtScale driver.
//
// The defaults reproduce the paper's configuration (bitmask b = 64,
// zero-row filter on, SUMMA parallelization); every knob is also an
// ablation axis exercised by bench/ablation_*.
#pragma once

#include <cstdint>
#include <string>

namespace sas::core {

/// Which AᵀA parallelization the driver uses (DESIGN.md §3).
enum class Algorithm {
  kSerial,   ///< rank 0 computes everything (reference / baseline)
  kRing1D,   ///< 1D column-panel ring — Θ(z) per-rank communication
  kSumma,    ///< 2D/2.5D SUMMA — Θ(z/√(cp) + cn²/p) per-rank communication
};

/// Which Jaccard estimator the driver runs (src/sketch/sketch.hpp has the
/// error/bytes guide). kExact is the paper's SpGEMM pipeline; the sketch
/// estimators swap it for the sketch-exchange ring, which rotates
/// fixed-size per-sample summaries — O(samples_per_rank · sketch_bytes)
/// per step instead of O(nnz) panel bytes — at a bounded, documented
/// estimation error. kHybrid composes the two: a sketch pass prunes the
/// pair space (Ĵ < prune_threshold − slack), then the exact pipeline
/// rescores only the surviving pairs — sketch-level traffic on the
/// pruned mass, bitwise-exact answers on every reported candidate.
enum class Estimator {
  kExact,    ///< exact popcount-semiring AᵀA (zero error)
  kHll,      ///< HyperLogLog + inclusion–exclusion (sketch/hyperloglog.hpp)
  kMinhash,  ///< b-bit one-permutation MinHash (sketch/one_perm_minhash.hpp)
  kBottomK,  ///< Mash-style bottom-k MinHash (sketch/bottomk.hpp)
  kHybrid,   ///< sketch-prune → exact-rescore (core/driver.hpp stage diagram)
};

/// How the hybrid's candidate pass generates the pair set
/// (sketch/exchange.hpp documents both paths).
enum class CandidateMode {
  /// kLsh when the prune sketch is minhash, the effective threshold is
  /// positive, and sample_count >= lsh_min_samples; kAllPairs otherwise.
  kAuto,
  /// Allgather every sketch blob and score all n²/p pairs per rank — the
  /// exact candidate set at O(n · sketch_bytes) exchange bytes and O(n²)
  /// score work. The right call at small n.
  kAllPairs,
  /// LSH banding over the one-permutation MinHash registers: exchange
  /// only (band, bucket, sample) keys and score just the pairs that
  /// collide in ≥ 1 band — O(collisions) score work and candidate bytes.
  /// Requires the minhash prune sketch; recall follows the banding
  /// S-curve (sketch::lsh_candidate_plan), not the all-pairs guarantee.
  kLsh,
};

struct Config {
  /// Number of row batches r (paper Eq. 3). Larger values shrink the
  /// working set per batch at the cost of per-batch latency (Fig. 2c/2d).
  std::int64_t batch_count = 1;

  /// Bits packed per word, the paper's b (§III-B technique 3). 64 is the
  /// production setting; 1 disables compression (ablation).
  int bit_width = 64;

  /// Replication factor c of the processor grid (paper §III-C). Only
  /// meaningful for Algorithm::kSumma.
  int replication = 1;

  Algorithm algorithm = Algorithm::kSumma;

  /// Zero-row filtering via the distributed sparse vector f (Eq. 5–6).
  /// Disabling it (ablation) packs raw row ids, wasting mask bits on
  /// hypersparse inputs.
  bool use_zero_row_filter = true;

  /// Ring schedule (Algorithm::kRing1D only): post the panel rotation
  /// send before the local multiply so transfer overlaps compute.
  /// Disabling it (ablation) restores the synchronous send-after-compute
  /// ring that serializes rotation with the multiply.
  bool ring_overlap = true;

  /// Worker threads per rank for the SpGEMM tile accumulation (1 = run
  /// inline). Only engages on output blocks whose multiply work clears
  /// the kernel's spawn threshold; leave at 1 when rank threads already
  /// oversubscribe the cores (the scaling benches do).
  int kernel_threads = 1;

  /// NUMA-aware multiply: pin kernel workers to sockets (block worker →
  /// node assignment) and first-touch the accumulator panel with the same
  /// partition so scatter stores stay socket-local. Harmless on single-
  /// socket hosts (topology detection finds one node and every placement
  /// call becomes a no-op); disable only for placement ablations.
  bool numa_aware = true;

  /// Simulated node count for the hierarchical collectives: ranks are
  /// grouped into `nodes` contiguous blocks, each with a leader rank, and
  /// broadcast / allreduce / allgather_v / alltoall_v run as intra-node +
  /// inter-node stages costed against the two-tier (α,β) machine model
  /// (bsp/cost_model.hpp). 1 (the default) keeps the flat single-tier
  /// collectives and their exact message counts. Results are bitwise
  /// identical for any value (enforced by tests).
  int nodes = 1;

  /// Sparse/dense fill-product crossover of the SpGEMM kernel. 0 (the
  /// default) derives it from a one-shot startup micro-calibration of the
  /// scatter vs streaming-popcount rates on this machine
  /// (distmat/crossover.hpp); a positive value pins it (ablation /
  /// reproducing a recorded run).
  double dense_crossover = 0.0;

  /// Jaccard estimator (kExact = the paper's pipeline; others trade a
  /// documented error bound for fixed-size communication).
  Estimator estimator = Estimator::kExact;

  /// HyperLogLog precision p (2^p registers), estimator == kHll.
  int hll_precision = 12;

  /// Sketch slots: one-permutation MinHash bins (kMinhash) or bottom-k
  /// capacity (kBottomK).
  std::int64_t sketch_size = 1024;

  /// Register width b of the b-bit one-permutation MinHash wire form
  /// (kMinhash). Must divide 64.
  int minhash_bits = 16;

  /// Hash-family seed shared by all ranks' sketches. Any value works;
  /// runs are reproducible given (seed, estimator parameters).
  std::uint64_t sketch_seed = 0x5a5;

  /// Sketch used by the hybrid's prune pass (estimator == kHybrid). Must
  /// be one of the sketch estimators; the sketch parameter knobs above
  /// apply to it unchanged.
  Estimator hybrid_sketch = Estimator::kMinhash;

  /// Candidate threshold of the hybrid: pairs with estimated Jaccard
  /// Ĵ ≥ prune_threshold − slack survive into the exact rescore pass;
  /// the rest are reported at their sketch estimate.
  double prune_threshold = 0.1;

  /// Slack subtracted from prune_threshold when masking, guarding recall
  /// against sketch estimation error. Negative (the default) derives it
  /// from the chosen sketch's documented mean-error bound
  /// (sketch::hybrid_prune_slack); an explicit value ≥ 0 pins it.
  double prune_slack = -1.0;

  /// Candidate-pass strategy of the hybrid (estimator == kHybrid). kAuto
  /// switches from all-pairs scoring to LSH banding once the corpus
  /// clears lsh_min_samples; kLsh with a non-minhash hybrid_sketch
  /// throws (banding is defined over the OPH registers), and a
  /// non-positive effective threshold always falls back to all-pairs
  /// (every pair survives — banding could only lose candidates).
  CandidateMode candidate_mode = CandidateMode::kAuto;

  /// LSH band count B (candidate_mode kLsh/kAuto). 0 (the default)
  /// derives (bands, rows_per_band) from the effective prune threshold —
  /// the largest band width R whose required band count C/m^R still fits
  /// the register budget (sketch::lsh_candidate_plan). A positive value
  /// pins B with rows_per_band = max(1, sketch_size / B).
  std::int64_t lsh_bands = 0;

  /// Sample count below which kAuto keeps the all-pairs candidate pass:
  /// under ~10² samples the n² score work is trivial and the dense mask
  /// is bytes-cheaper than band keys.
  std::int64_t lsh_min_samples = 128;

  /// LSH bucket-size cap (candidate_mode kLsh/kAuto). A degenerate
  /// bucket of s samples — e.g. all-empty sketches hashing identically —
  /// would emit s(s−1)/2 pair words into the candidate alltoall; buckets
  /// larger than the cap instead replicate their MEMBER list (O(s)
  /// bytes) and route the implied pairs through a mini all-pairs pass on
  /// the blob owners. Recall can only grow (a superset of the bucket's
  /// pairs is scored). 0 disables the cap.
  std::int64_t lsh_bucket_cap = 64;

  /// Assemble the full dense SimilarityMatrix even when a candidate mask
  /// is active (estimator == kHybrid). The default (false) assembles the
  /// survivor-proportional SparseSimilarity instead — each owning rank
  /// ships only its masked (i, j, value) triplets and rank 0 never
  /// materializes an n² structure. Dense output remains the right call
  /// at small n (downstream consumers that want the full matrix) and is
  /// what the exact / pure-sketch estimators always produce (they
  /// compute every pair; this knob does not apply to them).
  bool dense_output = false;

  /// Replicate each batch's zero-row filter union as a compressed bitmap
  /// (word-RLE segments, raw-list fallback — dist_filter.hpp) instead of
  /// raw 8-byte row indices. Identical filter contents either way;
  /// disabling reproduces the PR 4 byte floor for the ablation benches.
  bool compress_filter = true;

  // ---- failure semantics (ROADMAP "Failure semantics") -----------------

  /// Watchdog deadline (milliseconds) for the blocking BSP primitives
  /// (recv, barrier). 0 defers to the SAS_WATCHDOG_MS environment
  /// variable (CI sets it); unset/0 there disables the watchdog. On
  /// expiry the run aborts with error::WatchdogTimeout naming every
  /// blocked rank and the primitive (source, tag) it was stuck in.
  std::int64_t watchdog_ms = 0;

  /// Deterministic fault-injection plan (bsp::FaultPlan::parse grammar),
  /// e.g. "rank=1:op=8:throw;rank=0:op=3:delay=50". Empty = none. A
  /// test/CI hook — never set in production runs.
  std::string fault_plan;

  /// Arm the BSP protocol verifier (bsp/protocol.hpp; gas dist
  /// --verify-protocol): per-rank collective ledgers cross-checked at
  /// barriers and run exit, unreceived sends reported as
  /// error::ProtocolError. false defers to the SAS_VERIFY_PROTOCOL
  /// environment variable (CI arms it). Results are unchanged — the
  /// verifier only adds checks.
  bool verify_protocol = false;

  /// Directory for per-batch checkpoints (core/checkpoint.hpp). Empty
  /// disables checkpointing. Only the batched pipelines (kExact,
  /// kHybrid) support it.
  std::string checkpoint_dir;

  /// Resume from checkpoint_dir: validate the manifest against this
  /// run's config fingerprint, restore each rank's partial accumulators,
  /// and skip completed batches. The resumed result is bitwise-identical
  /// to an uninterrupted run.
  bool resume = false;

  // ---- in-run recovery (ROADMAP "Failure semantics") -------------------

  /// Bounded in-run retries of a failed batch (gas dist --max-retries).
  /// A batch whose failure is transient (error::Severity::kTransient) is
  /// rolled back to its in-memory snapshot and replayed up to this many
  /// times, with exponential backoff between attempts. 0 (the default)
  /// disables the recovery machinery entirely — failures abort the run
  /// exactly as before.
  std::int64_t max_retries = 0;

  /// Base backoff before retry attempt k: retry_backoff_ms · 2^(k−1),
  /// plus a deterministic seeded jitter of up to 50% (keyed on batch,
  /// attempt, and rank so replays stay reproducible).
  std::int64_t retry_backoff_ms = 10;

  /// Degraded completion (gas dist --quarantine): when a batch exhausts
  /// its retries or fails permanently, quarantine its samples and
  /// complete the run over the rest instead of aborting. Quarantined
  /// pairs read 0 in the result; the run report and the quarantine
  /// manifest (sas-quarantine-v1) name every skipped batch, its sample
  /// range, and why. gas exits 9 for a degraded-complete run.
  bool quarantine = false;

  /// Quarantine manifest JSON output path (gas dist
  /// --quarantine-manifest). Empty writes no manifest file (the run
  /// report still carries the quarantine table).
  std::string quarantine_manifest;

  /// Per-rank memory budget in MiB (gas dist --mem-budget-mb) charged by
  /// the driver's large allocations (panels, packed batches, payload
  /// staging — util/membudget.hpp). An over-budget allocation throws
  /// error::ResourceExhausted (exit code 8) before allocating. 0 (the
  /// default) disables the budget.
  std::int64_t mem_budget_mb = 0;

  // ---- observability (ROADMAP "Observability") -------------------------

  /// Chrome trace-event JSON output path (gas dist --trace-out). Every
  /// rank's spans — stages, batches, collectives, checkpoint ops, LSH
  /// candidate phases — merge into one file loadable in Perfetto /
  /// about:tracing, with rank → "process" mapping and byte counts as
  /// span args. An aborted run still flushes the buffers, with the
  /// failure and blocked-site snapshot attached (postmortem timeline).
  /// Empty disables tracing.
  std::string trace_out;

  /// Machine-readable run-report JSON path (gas dist --report-json):
  /// per-stage and per-batch tables mirroring PipelineStats/BatchStats,
  /// per-rank BSP cost counters and metric histograms, and per-primitive
  /// cost-model drift (α-β predicted vs measured seconds). Written on
  /// success and on abort (status "aborted"). Empty disables the report.
  std::string report_json;
};

}  // namespace sas::core
