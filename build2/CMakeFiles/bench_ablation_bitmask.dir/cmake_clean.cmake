file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bitmask.dir/bench/ablation_bitmask.cpp.o"
  "CMakeFiles/bench_ablation_bitmask.dir/bench/ablation_bitmask.cpp.o.d"
  "bench_ablation_bitmask"
  "bench_ablation_bitmask.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bitmask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
