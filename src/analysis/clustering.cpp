#include "analysis/clustering.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <stdexcept>

#include "util/rng.hpp"

namespace sas::analysis {

namespace {

void check_matrix(const std::vector<double>& distances, std::int64_t n) {
  if (static_cast<std::int64_t>(distances.size()) != n * n) {
    throw std::invalid_argument("clustering: distance matrix must be n*n");
  }
}

}  // namespace

std::vector<MergeStep> hierarchical_cluster(const std::vector<double>& distances,
                                            std::int64_t n, Linkage linkage) {
  check_matrix(distances, n);
  if (n < 1) throw std::invalid_argument("hierarchical_cluster: empty input");

  // Lance–Williams style update on an explicit active-cluster distance
  // matrix; O(n³), fine for the n this library clusters (samples, not
  // k-mers).
  struct Cluster {
    int id;              // dendrogram id
    std::int64_t size;
  };
  std::vector<Cluster> active;
  for (std::int64_t i = 0; i < n; ++i) active.push_back({static_cast<int>(i), 1});
  std::vector<double> d = distances;
  std::int64_t r = n;
  auto dist_at = [&](std::int64_t i, std::int64_t j) -> double& {
    return d[static_cast<std::size_t>(i * r + j)];
  };

  std::vector<MergeStep> merges;
  int next_id = static_cast<int>(n);
  while (r > 1) {
    std::int64_t best_i = 0;
    std::int64_t best_j = 1;
    double best = std::numeric_limits<double>::infinity();
    for (std::int64_t i = 0; i < r; ++i) {
      for (std::int64_t j = i + 1; j < r; ++j) {
        if (dist_at(i, j) < best) {
          best = dist_at(i, j);
          best_i = i;
          best_j = j;
        }
      }
    }
    merges.push_back({active[static_cast<std::size_t>(best_i)].id,
                      active[static_cast<std::size_t>(best_j)].id, best});

    const std::int64_t si = active[static_cast<std::size_t>(best_i)].size;
    const std::int64_t sj = active[static_cast<std::size_t>(best_j)].size;
    std::vector<double> d_new(static_cast<std::size_t>((r - 1) * (r - 1)), 0.0);
    std::vector<Cluster> active_new;
    std::vector<std::int64_t> keep;
    for (std::int64_t i = 0; i < r; ++i) {
      if (i == best_j) continue;
      keep.push_back(i);
      if (i == best_i) {
        active_new.push_back({next_id, si + sj});
      } else {
        active_new.push_back(active[static_cast<std::size_t>(i)]);
      }
    }
    for (std::size_t a = 0; a < keep.size(); ++a) {
      for (std::size_t b = a + 1; b < keep.size(); ++b) {
        const std::int64_t oi = keep[a];
        const std::int64_t oj = keep[b];
        double value;
        if (oi == best_i || oj == best_i) {
          const std::int64_t other = (oi == best_i) ? oj : oi;
          const double di = dist_at(best_i, other);
          const double dj = dist_at(best_j, other);
          switch (linkage) {
            case Linkage::kSingle: value = std::min(di, dj); break;
            case Linkage::kComplete: value = std::max(di, dj); break;
            case Linkage::kAverage:
              value = (static_cast<double>(si) * di + static_cast<double>(sj) * dj) /
                      static_cast<double>(si + sj);
              break;
            default: value = di;  // unreachable
          }
        } else {
          value = dist_at(oi, oj);
        }
        d_new[a * keep.size() + b] = value;
        d_new[b * keep.size() + a] = value;
      }
    }
    d = std::move(d_new);
    active = std::move(active_new);
    ++next_id;
    --r;
  }
  return merges;
}

std::vector<int> cut_dendrogram(const std::vector<MergeStep>& merges, std::int64_t n,
                                int k) {
  if (k < 1 || k > n) throw std::invalid_argument("cut_dendrogram: bad cluster count");
  // Apply the first n−k merges with union-find, then label components.
  std::vector<int> uf(static_cast<std::size_t>(n) + merges.size());
  for (std::size_t i = 0; i < uf.size(); ++i) uf[i] = static_cast<int>(i);
  std::function<int(int)> find = [&](int x) {
    while (uf[static_cast<std::size_t>(x)] != x) {
      uf[static_cast<std::size_t>(x)] = uf[static_cast<std::size_t>(uf[static_cast<std::size_t>(x)])];
      x = uf[static_cast<std::size_t>(x)];
    }
    return x;
  };
  const auto steps = static_cast<std::size_t>(n - k);
  for (std::size_t s = 0; s < steps; ++s) {
    const int id = static_cast<int>(n) + static_cast<int>(s);
    uf[static_cast<std::size_t>(find(merges[s].left))] = id;
    uf[static_cast<std::size_t>(find(merges[s].right))] = id;
  }
  std::vector<int> labels(static_cast<std::size_t>(n));
  std::vector<int> remap(uf.size(), -1);
  int next = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const int root = find(static_cast<int>(i));
    if (remap[static_cast<std::size_t>(root)] < 0) remap[static_cast<std::size_t>(root)] = next++;
    labels[static_cast<std::size_t>(i)] = remap[static_cast<std::size_t>(root)];
  }
  return labels;
}

std::vector<int> k_medoids(const std::vector<double>& distances, std::int64_t n, int k,
                           std::uint64_t seed, int max_iterations) {
  check_matrix(distances, n);
  if (k < 1 || k > n) throw std::invalid_argument("k_medoids: bad cluster count");

  auto dist = [&](std::int64_t i, std::int64_t j) {
    return distances[static_cast<std::size_t>(i * n + j)];
  };

  // k-medoids++ style greedy seeding: first medoid random, then farthest-
  // from-current-medoids points (deterministic given seed).
  Rng rng(seed);
  std::vector<std::int64_t> medoids{
      static_cast<std::int64_t>(rng.uniform(static_cast<std::uint64_t>(n)))};
  while (static_cast<int>(medoids.size()) < k) {
    std::int64_t best = -1;
    double best_d = -1.0;
    for (std::int64_t i = 0; i < n; ++i) {
      double nearest = std::numeric_limits<double>::infinity();
      for (std::int64_t m : medoids) nearest = std::min(nearest, dist(i, m));
      if (nearest > best_d) {
        best_d = nearest;
        best = i;
      }
    }
    medoids.push_back(best);
  }

  std::vector<int> labels(static_cast<std::size_t>(n), 0);
  for (int iter = 0; iter < max_iterations; ++iter) {
    // Assignment.
    for (std::int64_t i = 0; i < n; ++i) {
      double nearest = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < medoids.size(); ++c) {
        const double dd = dist(i, medoids[c]);
        if (dd < nearest) {
          nearest = dd;
          labels[static_cast<std::size_t>(i)] = static_cast<int>(c);
        }
      }
    }
    // Update: per cluster, the point minimizing total intra-cluster distance.
    bool changed = false;
    for (std::size_t c = 0; c < medoids.size(); ++c) {
      std::int64_t best = medoids[c];
      double best_cost = std::numeric_limits<double>::infinity();
      for (std::int64_t candidate = 0; candidate < n; ++candidate) {
        if (labels[static_cast<std::size_t>(candidate)] != static_cast<int>(c)) continue;
        double cost = 0.0;
        for (std::int64_t other = 0; other < n; ++other) {
          if (labels[static_cast<std::size_t>(other)] == static_cast<int>(c)) {
            cost += dist(candidate, other);
          }
        }
        if (cost < best_cost) {
          best_cost = cost;
          best = candidate;
        }
      }
      if (best != medoids[c]) {
        medoids[c] = best;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return labels;
}

std::vector<double> knn_outlier_scores(const std::vector<double>& distances,
                                       std::int64_t n, int neighbors) {
  check_matrix(distances, n);
  if (neighbors < 1 || neighbors >= n) {
    throw std::invalid_argument("knn_outlier_scores: bad neighbor count");
  }
  std::vector<double> scores(static_cast<std::size_t>(n), 0.0);
  std::vector<double> row(static_cast<std::size_t>(n - 1));
  for (std::int64_t i = 0; i < n; ++i) {
    std::size_t idx = 0;
    for (std::int64_t j = 0; j < n; ++j) {
      if (j != i) row[idx++] = distances[static_cast<std::size_t>(i * n + j)];
    }
    std::nth_element(row.begin(), row.begin() + neighbors - 1, row.end());
    double sum = 0.0;
    for (int t = 0; t < neighbors; ++t) sum += row[static_cast<std::size_t>(t)];
    // nth_element leaves the k smallest in the first k slots (unordered),
    // which is exactly what the mean needs.
    scores[static_cast<std::size_t>(i)] = sum / neighbors;
  }
  return scores;
}

}  // namespace sas::analysis
