# Empty dependencies file for bench_fig2f_synth_weak.
# This may be replaced when dependencies are built.
