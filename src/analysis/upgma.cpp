#include "analysis/upgma.hpp"

#include <stdexcept>

#include "analysis/clustering.hpp"

namespace sas::analysis {

PhyloTree upgma(const std::vector<double>& distances,
                const std::vector<std::string>& names) {
  const auto n = static_cast<std::int64_t>(names.size());
  if (n < 1) throw std::invalid_argument("upgma: need at least one taxon");
  if (static_cast<std::int64_t>(distances.size()) != n * n) {
    throw std::invalid_argument("upgma: distance matrix must be n*n");
  }

  PhyloTree tree;
  std::vector<int> node_of;       // dendrogram id -> tree node
  std::vector<double> height_of;  // dendrogram id -> node height
  for (std::int64_t i = 0; i < n; ++i) {
    node_of.push_back(tree.add_node(names[static_cast<std::size_t>(i)]));
    height_of.push_back(0.0);
  }

  // The merge order of average-linkage agglomeration IS the UPGMA join
  // order; only the branch lengths (heights) are added here.
  const std::vector<MergeStep> merges = hierarchical_cluster(distances, n,
                                                             Linkage::kAverage);
  for (const MergeStep& merge : merges) {
    const double height = merge.height / 2.0;
    const int joined = tree.add_node();
    tree.link(joined, node_of[static_cast<std::size_t>(merge.left)],
              height - height_of[static_cast<std::size_t>(merge.left)]);
    tree.link(joined, node_of[static_cast<std::size_t>(merge.right)],
              height - height_of[static_cast<std::size_t>(merge.right)]);
    node_of.push_back(joined);
    height_of.push_back(height);
  }
  return tree;
}

}  // namespace sas::analysis
