// matrix_io.hpp — persistence for similarity matrices, dense and sparse.
//
// The paper publishes its computed distance matrices "to foster
// high-performance distributed genomics research"; these routines are the
// repository's equivalent: self-describing binary formats for exact
// round-trips and a TSV view for spreadsheets/scripts. PHYLIP export for
// phylogenetics lives in genome/phylip.hpp.
//
// Two binary formats, distinguished by magic:
//   "SASM" — the dense n×n matrix (n² doubles on disk and in memory).
//   "SASP" — the survivor-sparse SparseSimilarity of a hybrid run:
//            survivor and estimate pair maps plus â. Disk and memory
//            stay O(survivors + estimates + n); at thresholded-output
//            scale this is the only format that round-trips without
//            materializing the quadratic matrix.
#pragma once

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "core/similarity_matrix.hpp"

namespace sas::core {

/// Binary format: magic "SASM", u64 n, u64 name-block length, names as
/// '\n'-joined UTF-8, then n×n little-endian doubles.
void write_similarity_binary(std::ostream& out, const std::vector<std::string>& names,
                             const SimilarityMatrix& matrix);

struct NamedSimilarity {
  std::vector<std::string> names;
  SimilarityMatrix matrix;
};

[[nodiscard]] NamedSimilarity read_similarity_binary(std::istream& in);

void write_similarity_binary_file(const std::string& path,
                                  const std::vector<std::string>& names,
                                  const SimilarityMatrix& matrix);

[[nodiscard]] NamedSimilarity read_similarity_binary_file(const std::string& path);

/// Tab-separated: header row of names, then one row per sample
/// (name + n similarity values at full precision).
void write_similarity_tsv(std::ostream& out, const std::vector<std::string>& names,
                          const SimilarityMatrix& matrix);

/// Sparse binary format: magic "SASP", u64 n, u64 name-block length,
/// names as '\n'-joined UTF-8, u64 survivor count + (key, value) arrays,
/// u64 estimate count + (key, value) arrays, u64 â length (0 or n) + â.
void write_sparse_similarity_binary(std::ostream& out,
                                    const std::vector<std::string>& names,
                                    const SparseSimilarity& sparse);

struct NamedSparseSimilarity {
  std::vector<std::string> names;
  SparseSimilarity sparse;
};

[[nodiscard]] NamedSparseSimilarity read_sparse_similarity_binary(std::istream& in);

void write_sparse_similarity_binary_file(const std::string& path,
                                         const std::vector<std::string>& names,
                                         const SparseSimilarity& sparse);

[[nodiscard]] NamedSparseSimilarity read_sparse_similarity_binary_file(
    const std::string& path);

}  // namespace sas::core
