#include "util/args.hpp"

#include <cstdlib>
#include <stdexcept>

namespace sas {

ArgParser::ArgParser(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      std::string key = token.substr(2);
      std::string value;
      const auto eq = key.find('=');
      if (eq != std::string::npos) {
        value = key.substr(eq + 1);
        key = key.substr(0, eq);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      }
      named_[key] = value;
    } else {
      positional_.push_back(std::move(token));
    }
  }
}

bool ArgParser::has(const std::string& name) const { return named_.count(name) > 0; }

std::string ArgParser::get_string(const std::string& name, const std::string& fallback) const {
  const auto it = named_.find(name);
  return it == named_.end() ? fallback : it->second;
}

std::int64_t ArgParser::get_int(const std::string& name, std::int64_t fallback) const {
  const auto it = named_.find(name);
  if (it == named_.end() || it->second.empty()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double ArgParser::get_double(const std::string& name, double fallback) const {
  const auto it = named_.find(name);
  if (it == named_.end() || it->second.empty()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool ArgParser::get_bool(const std::string& name, bool fallback) const {
  const auto it = named_.find(name);
  if (it == named_.end()) return fallback;
  if (it->second.empty()) return true;  // bare --flag
  return it->second == "1" || it->second == "true" || it->second == "yes" ||
         it->second == "on";
}

}  // namespace sas
