// popcount.hpp — hardware-assisted population counts.
//
// The SimilarityAtScale kernel computes sᵢⱼ = Σₖ popcount(aₖᵢ ∧ aₖⱼ)
// (paper Eq. 7); these helpers are that kernel's innermost operations.
#pragma once

#include <bit>
#include <cstdint>
#include <span>

namespace sas {

/// Number of set bits in a single machine word.
[[nodiscard]] constexpr int popcount64(std::uint64_t x) noexcept {
  return std::popcount(x);
}

/// Σ popcount over a word span (used for column-cardinality vectors â).
[[nodiscard]] inline std::uint64_t popcount_sum(std::span<const std::uint64_t> words) noexcept {
  std::uint64_t total = 0;
  for (std::uint64_t w : words) total += static_cast<std::uint64_t>(std::popcount(w));
  return total;
}

/// Σ popcount(x ∧ y) over two equal-length word spans — the intersection
/// cardinality of two bit-packed columns. Callers guarantee equal sizes.
[[nodiscard]] inline std::uint64_t popcount_and_sum(std::span<const std::uint64_t> x,
                                                    std::span<const std::uint64_t> y) noexcept {
  std::uint64_t total = 0;
  const std::size_t len = x.size() < y.size() ? x.size() : y.size();
  for (std::size_t i = 0; i < len; ++i) {
    total += static_cast<std::uint64_t>(std::popcount(x[i] & y[i]));
  }
  return total;
}

}  // namespace sas
