#!/usr/bin/env python3
"""CI smoke assertions over the observability artifacts.

Usage: check_observability.py <trace.json> <report.json>

Validates a 4-rank hybrid `gas dist --trace-out --report-json` run:
  * the Chrome trace parses, carries spans for ranks 0..3, every rank's
    timeline covers all five pipeline stages, and at least one
    collective span is present;
  * the run report parses, its stage table names exactly the five
    stages with nonzero exchange bytes, and the cost-model drift table
    is populated (samples, predicted, measured all > 0).

Exits nonzero with a diagnostic on the first violated assertion.
"""
import json
import sys

STAGES = {"ingest", "pack/sketch", "exchange", "multiply", "assemble"}
RANKS = {0, 1, 2, 3}


def fail(msg):
    print(f"check_observability: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_trace(path):
    with open(path) as f:
        trace = json.load(f)
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: no traceEvents")
    pids = set()
    stages_by_pid = {}
    collectives = 0
    for ev in events:
        if ev.get("ph") != "X":
            continue
        pid = ev["pid"]
        pids.add(pid)
        if ev.get("dur", 0) < 0:
            fail(f"{path}: negative duration in span {ev.get('name')}")
        if ev.get("cat") == "stage":
            stages_by_pid.setdefault(pid, set()).add(ev["name"])
        if ev.get("cat") == "collective":
            collectives += 1
    if not RANKS <= pids:
        fail(f"{path}: expected spans for ranks {sorted(RANKS)}, got {sorted(pids)}")
    for rank in sorted(RANKS):
        missing = STAGES - stages_by_pid.get(rank, set())
        if missing:
            fail(f"{path}: rank {rank} is missing stage spans {sorted(missing)}")
    if collectives == 0:
        fail(f"{path}: no collective spans recorded")
    if trace.get("otherData", {}).get("aborted") is not False:
        fail(f"{path}: otherData.aborted is not false on a successful run")
    print(f"trace ok: {len(events)} events, ranks {sorted(pids)}, "
          f"{collectives} collective spans")


def check_report(path):
    with open(path) as f:
        report = json.load(f)
    if report.get("status") != "ok":
        fail(f"{path}: status is {report.get('status')!r}, expected 'ok'")
    stages = report.get("stages", [])
    names = {s["name"] for s in stages}
    if names != STAGES:
        fail(f"{path}: stage table names {sorted(names)}, expected {sorted(STAGES)}")
    exchange = next(s for s in stages if s["name"] == "exchange")
    if exchange["bytes_sent"] <= 0:
        fail(f"{path}: exchange stage moved no bytes")
    drift = report.get("drift", [])
    if not drift:
        fail(f"{path}: drift table is empty")
    for row in drift:
        if row["samples"] <= 0 or row["predicted_seconds"] <= 0 \
                or row["measured_seconds"] <= 0:
            fail(f"{path}: degenerate drift row {row}")
    metrics = report.get("metrics", [])
    if len(metrics) != len(RANKS):
        fail(f"{path}: expected {len(RANKS)} per-rank metric rows, got {len(metrics)}")
    print(f"report ok: exchange moved {exchange['bytes_sent']} bytes, "
          f"{len(drift)} drift rows")


def main():
    if len(sys.argv) != 3:
        fail("usage: check_observability.py <trace.json> <report.json>")
    check_trace(sys.argv[1])
    check_report(sys.argv[2])
    print("check_observability: ok")


if __name__ == "__main__":
    main()
