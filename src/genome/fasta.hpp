// fasta.hpp — FASTA/FASTQ sequence file I/O (paper §IV-A, [60]).
//
// GenomeAtScale "maintains compatibility with standard bioinformatics
// data formats": inputs are FASTA files (one or more records per sample)
// or FASTQ sequencing reads. The parser accepts multi-line sequences,
// lower/upper case, blank lines, and CRLF endings; the writer wraps at a
// configurable width.
#pragma once

#include <istream>
#include <ostream>
#include <string>
#include <vector>

namespace sas::genome {

struct SequenceRecord {
  std::string id;           ///< token after '>'/'@' up to first whitespace
  std::string description;  ///< remainder of the header line (may be empty)
  std::string sequence;     ///< concatenated sequence characters
};

/// Parse all FASTA records from a stream. Throws on malformed input
/// (sequence data before the first header).
[[nodiscard]] std::vector<SequenceRecord> read_fasta(std::istream& in);

/// Parse all FASTA records from a file path.
[[nodiscard]] std::vector<SequenceRecord> read_fasta_file(const std::string& path);

/// Parse FASTQ (4-line records). Quality strings are validated for length
/// and discarded — GenomeAtScale's k-mer pipeline does not use them.
[[nodiscard]] std::vector<SequenceRecord> read_fastq(std::istream& in);

[[nodiscard]] std::vector<SequenceRecord> read_fastq_file(const std::string& path);

/// Write records in FASTA format, wrapping sequence lines at `width`.
void write_fasta(std::ostream& out, const std::vector<SequenceRecord>& records,
                 int width = 70);

void write_fasta_file(const std::string& path,
                      const std::vector<SequenceRecord>& records, int width = 70);

}  // namespace sas::genome
