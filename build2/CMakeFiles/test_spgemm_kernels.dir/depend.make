# Empty dependencies file for test_spgemm_kernels.
# This may be replaced when dependencies are built.
