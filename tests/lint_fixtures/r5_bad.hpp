// Seeded R5 fixture: no `#pragma once`, and the header does not compile
// standalone (std::vector used without including <vector>).

namespace lint_fixture {

inline std::vector<int> not_self_sufficient() { return {}; }

}  // namespace lint_fixture
