// packing.hpp — per-batch preprocessing (paper §III-B, Listing 2's
// preprocessInput): zero-row filtering and bitmask compression.
//
// Given one row batch A⁽ˡ⁾ of the indicator matrix, each rank
//   1. reads the attribute values of its samples restricted to the batch
//      (cyclic sample ownership: sample i is read by rank i mod p),
//   2. contributes observed row offsets to the distributed filter f⁽ˡ⁾
//      and obtains the replicated sorted filter (Eq. 5),
//   3. remaps each value to its compacted row id — the prefix sum p⁽ˡ⁾ of
//      the filter (Eq. 6) — and packs segments of `bit_width` compacted
//      rows into word masks (Eq. 7).
//
// The output triplets are globally indexed (word_row, sample) pairs ready
// for redistribution onto the processor grid.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bsp/comm.hpp"
#include "core/sample_source.hpp"
#include "distmat/block.hpp"
#include "distmat/triplet.hpp"

namespace sas::core {

struct PackedBatch {
  /// h: word-rows of the packed batch matrix Â⁽ˡ⁾ (absent words are zero).
  std::int64_t word_rows = 0;
  /// Rows surviving the zero-row filter (batch height m̃ when filtering is
  /// disabled). Equals the length of the filter vector's support.
  std::int64_t filtered_rows = 0;
  /// This rank's packed entries: (word_row, sample, mask), global indices,
  /// at most one entry per (word_row, sample) pair.
  std::vector<distmat::Triplet<std::uint64_t>> triplets;
};

/// Collective over `comm`: build this rank's packed share of batch
/// `rows`. `bit_width` ∈ [1, 64] is the paper's b; `use_filter` toggles
/// the zero-row compaction (Eq. 5–6).
[[nodiscard]] PackedBatch pack_batch(bsp::Comm& comm, const SampleSource& source,
                                     distmat::BlockRange rows, int bit_width,
                                     bool use_filter);

// ---- sketch-panel wire packing -------------------------------------------
//
// The sketch-exchange pipeline (sketch/exchange.hpp) rotates one message
// per ring step: a rank's per-sample sketch blobs flattened into a single
// contiguous word vector. The layout is self-describing so a received
// panel can be sliced back into per-sample views without copies:
//
//   [count, len_0, ..., len_{count-1}, payload_0, ..., payload_{count-1}]

/// Flatten per-sample word blobs into one wire panel.
[[nodiscard]] std::vector<std::uint64_t> pack_word_panel(
    const std::vector<std::vector<std::uint64_t>>& blobs);

/// Slice a packed panel back into per-blob views. The returned spans
/// alias `panel`; throws std::invalid_argument on malformed input.
[[nodiscard]] std::vector<std::span<const std::uint64_t>> unpack_word_panel(
    std::span<const std::uint64_t> panel);

}  // namespace sas::core
