// micro_kernels — google-benchmark microbenchmarks of the hot paths:
// the popcount-AND Eq. 7 kernels (legacy triplet merge-join vs the CSR
// tiled kernel, same shapes so the speedup reads directly off the
// items/sec column), CsrPanel construction, k-mer extraction, MinHash
// sketching, and triplet normalization. These are the per-operation
// costs behind every figure bench; regressions here move every curve.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "baselines/minhash.hpp"
#include "bench_common.hpp"
#include "distmat/csr.hpp"
#include "distmat/spgemm.hpp"
#include "genome/kmer.hpp"
#include "genome/synthetic.hpp"
#include "util/popcount.hpp"
#include "util/rng.hpp"

namespace {

using sas::Rng;
using sas::distmat::BlockRange;
using sas::distmat::DenseBlock;
using sas::distmat::SparseBlock;
using sas::distmat::Triplet;

SparseBlock random_block(std::int64_t rows, std::int64_t cols, double density,
                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Triplet<std::uint64_t>> entries;
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      if (rng.bernoulli(density)) entries.push_back({r, c, rng()});
    }
  }
  return SparseBlock::from_triplets(rows, cols, std::move(entries));
}

/// Eq. 7 kernel: B += popcount(L ∧ N) over matching word-rows.
void BM_PopcountJoin(benchmark::State& state) {
  const auto density = static_cast<double>(state.range(0)) / 1000.0;
  const SparseBlock block = random_block(512, 128, density, 42);
  DenseBlock<std::int64_t> out(BlockRange{0, 128}, BlockRange{0, 128});
  std::uint64_t flop_estimate = 0;
  for (auto _ : state) {
    std::fill(out.values.begin(), out.values.end(), 0);
    sas::bsp::CostCounters counters;
    popcount_join_accumulate(block.entries, block.entries, 0, 0, out, &counters);
    flop_estimate = counters.flops;
    benchmark::DoNotOptimize(out.values.data());
  }
  state.counters["madds/iter"] = static_cast<double>(flop_estimate);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(flop_estimate));
}
BENCHMARK(BM_PopcountJoin)->Arg(50)->Arg(200)->Arg(500)->Arg(900);

/// Eq. 7 kernel, CSR tiled form — identical shapes to BM_PopcountJoin
/// (density 0.9 is the dense-ish synthetic case where the adaptive
/// dense-block path engages). Panels are built outside the timed region:
/// in production they are constructed once per received panel and reused
/// across the whole multiply.
void BM_CsrAtaKernel(benchmark::State& state) {
  const auto density = static_cast<double>(state.range(0)) / 1000.0;
  const SparseBlock block = random_block(512, 128, density, 42);
  const sas::distmat::CsrPanel panel = sas::distmat::CsrPanel::from_block(block);
  DenseBlock<std::int64_t> out(BlockRange{0, 128}, BlockRange{0, 128});
  std::uint64_t flop_estimate = 0;
  for (auto _ : state) {
    std::fill(out.values.begin(), out.values.end(), 0);
    sas::bsp::CostCounters counters;
    csr_popcount_ata_accumulate(panel, panel, 0, 0, out, &counters);
    flop_estimate = counters.flops;
    benchmark::DoNotOptimize(out.values.data());
  }
  state.counters["madds/iter"] = static_cast<double>(flop_estimate);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(flop_estimate));
}
BENCHMARK(BM_CsrAtaKernel)->Arg(50)->Arg(200)->Arg(500)->Arg(900);

/// Wide-output variant where the column tiling matters: 1024 output
/// columns → the accumulator panel is 8 MiB and untiled traversal
/// thrashes L2. Arg(0) runs untiled (one huge tile); compare it
/// against the Arg(512) default-tile row.
void BM_CsrAtaKernelWide(benchmark::State& state) {
  const std::int64_t tile_cols = state.range(0);  // 0 = untiled (one huge tile)
  const SparseBlock block = random_block(512, 1024, 0.08, 47);
  const sas::distmat::CsrPanel panel = sas::distmat::CsrPanel::from_block(block);
  DenseBlock<std::int64_t> out(BlockRange{0, 1024}, BlockRange{0, 1024});
  std::uint64_t flop_estimate = 0;
  for (auto _ : state) {
    std::fill(out.values.begin(), out.values.end(), 0);
    sas::bsp::CostCounters counters;
    sas::distmat::CsrAtaOptions options;
    options.tile_cols = tile_cols == 0 ? std::int64_t{1} << 30 : tile_cols;
    options.allow_dense = false;  // isolate the sparse tile traversal
    csr_popcount_ata_accumulate(panel, panel, 0, 0, out, &counters, options);
    flop_estimate = counters.flops;
    benchmark::DoNotOptimize(out.values.data());
  }
  state.counters["madds/iter"] = static_cast<double>(flop_estimate);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(flop_estimate));
}
BENCHMARK(BM_CsrAtaKernelWide)->Arg(0)->Arg(512);

/// Dense-path streaming popcount: scalar cell-at-a-time dot products vs
/// the 2×2 register tile (popcount_and_sum_stream_2x2). Identical cell
/// grid and word count, so items/sec compares directly — the 2×2 form
/// loads each column word once per TWO output cells, halving the load
/// traffic per output; this pair is the gate for keeping the tiled path
/// on the dense kernel's unpruned cells. Arg = words per column.
void BM_DenseStreamScalar(benchmark::State& state) {
  const auto words = static_cast<std::size_t>(state.range(0));
  constexpr std::int64_t kCells = 32;  // 32×32 output cells
  Rng rng(99);
  std::vector<std::uint64_t> lhs(words * kCells);
  std::vector<std::uint64_t> rhs(words * kCells);
  for (auto& w : lhs) w = rng();
  for (auto& w : rhs) w = rng();
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (std::int64_t i = 0; i < kCells; ++i) {
      for (std::int64_t j = 0; j < kCells; ++j) {
        sink += sas::popcount_and_sum_stream(
            lhs.data() + static_cast<std::size_t>(i) * words,
            rhs.data() + static_cast<std::size_t>(j) * words, words);
      }
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kCells *
                          kCells * static_cast<std::int64_t>(words));
}
BENCHMARK(BM_DenseStreamScalar)->Arg(64)->Arg(512);

void BM_DenseStream2x2(benchmark::State& state) {
  const auto words = static_cast<std::size_t>(state.range(0));
  constexpr std::int64_t kCells = 32;
  Rng rng(99);
  std::vector<std::uint64_t> lhs(words * kCells);
  std::vector<std::uint64_t> rhs(words * kCells);
  for (auto& w : lhs) w = rng();
  for (auto& w : rhs) w = rng();
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (std::int64_t i = 0; i < kCells; i += 2) {
      for (std::int64_t j = 0; j < kCells; j += 2) {
        std::uint64_t sums[4];
        sas::popcount_and_sum_stream_2x2(
            lhs.data() + static_cast<std::size_t>(i) * words,
            lhs.data() + static_cast<std::size_t>(i + 1) * words,
            rhs.data() + static_cast<std::size_t>(j) * words,
            rhs.data() + static_cast<std::size_t>(j + 1) * words, words, sums);
        sink += sums[0] + sums[1] + sums[2] + sums[3];
      }
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kCells *
                          kCells * static_cast<std::int64_t>(words));
}
BENCHMARK(BM_DenseStream2x2)->Arg(64)->Arg(512);

/// Scalar vs AVX512 gather/scatter accumulate — the sparse tile loop's
/// inner kernel (spgemm.hpp "Kernel strategy" item 3). Same segment
/// shape for both rows, so items/sec compares directly; the dispatch
/// row resolves to the vectorized TU where the host has AVX512VPOPCNTDQ
/// and to the scalar inline kernel elsewhere. Arg = segment length
/// (columns hit per word-row).
void BM_ScatterScalar(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  Rng rng(21);
  std::vector<std::int64_t> cols(count);
  for (std::size_t i = 0; i < count; ++i) cols[i] = static_cast<std::int64_t>(i);
  for (std::size_t i = count; i > 1; --i) std::swap(cols[i - 1], cols[rng.uniform(i)]);
  std::vector<std::uint64_t> vals(count);
  for (auto& v : vals) v = rng();
  std::vector<std::int64_t> acc(count, 0);
  for (auto _ : state) {
    sas::popcount_and_scatter(rng(), cols.data(), vals.data(), count, acc.data());
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_ScatterScalar)->Arg(64)->Arg(1024);

void BM_ScatterVector(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  Rng rng(21);
  std::vector<std::int64_t> cols(count);
  for (std::size_t i = 0; i < count; ++i) cols[i] = static_cast<std::int64_t>(i);
  for (std::size_t i = count; i > 1; --i) std::swap(cols[i - 1], cols[rng.uniform(i)]);
  std::vector<std::uint64_t> vals(count);
  for (auto& v : vals) v = rng();
  std::vector<std::int64_t> acc(count, 0);
  for (auto _ : state) {
    sas::popcount_and_scatter_dispatch(rng(), cols.data(), vals.data(), count,
                                       acc.data());
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_ScatterVector)->Arg(64)->Arg(1024);

/// CsrPanel construction — the once-per-received-panel cost the tiled
/// kernel amortizes (it replaces per-step triplet run re-derivation).
void BM_CsrPanelBuild(benchmark::State& state) {
  const auto density = static_cast<double>(state.range(0)) / 1000.0;
  const SparseBlock block = random_block(512, 128, density, 42);
  for (auto _ : state) {
    auto panel = sas::distmat::CsrPanel::from_block(block);
    benchmark::DoNotOptimize(panel.row_ptr.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * block.nnz());
}
BENCHMARK(BM_CsrPanelBuild)->Arg(200)->Arg(500);

/// Canonical k-mer extraction throughput (bases/second).
void BM_CanonicalKmers(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const sas::genome::KmerCodec codec(k);
  Rng rng(7);
  const std::string sequence = sas::genome::random_genome(1 << 16, rng);
  for (auto _ : state) {
    auto kmers = codec.canonical_kmers(sequence);
    benchmark::DoNotOptimize(kmers.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sequence.size()));
}
BENCHMARK(BM_CanonicalKmers)->Arg(19)->Arg(31);

/// MinHash sketch construction over a k-mer-sized element set.
void BM_MinHashSketch(benchmark::State& state) {
  const auto sketch_size = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  std::vector<std::uint64_t> elements(100000);
  for (auto& e : elements) e = rng();
  for (auto _ : state) {
    sas::baselines::MinHashSketch sketch(elements, sketch_size, 5);
    benchmark::DoNotOptimize(sketch.hashes().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(elements.size()));
}
BENCHMARK(BM_MinHashSketch)->Arg(128)->Arg(1024)->Arg(8192);

/// Accumulating-write normalization (sort + OR-merge), the local half of
/// every redistribution.
void BM_NormalizeTriplets(benchmark::State& state) {
  Rng rng(13);
  const auto count = static_cast<std::size_t>(state.range(0));
  std::vector<Triplet<std::uint64_t>> base(count);
  for (auto& t : base) {
    t = {static_cast<std::int64_t>(rng.uniform(1024)),
         static_cast<std::int64_t>(rng.uniform(256)), rng()};
  }
  for (auto _ : state) {
    auto copy = base;
    sas::distmat::normalize_triplets(
        copy, [](std::uint64_t a, std::uint64_t b) { return a | b; });
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_NormalizeTriplets)->Arg(1 << 12)->Arg(1 << 16);

/// Tracing-overhead gate (ROADMAP "Observability"): the span layer must
/// stay cheap enough to leave on — every instrumentation site is one
/// thread-local load plus a null check when unbound, and a clock pair
/// plus a bounded append when bound. The gate times identical 4-rank
/// exact 1D-ring driver runs with tracing off (null observer) and on
/// (fresh Observer each trial), interleaved min-of-N so scheduler noise
/// cancels, and fails the binary when the bound path costs >= 3%.
int run_tracing_overhead_gate() {
  const sas::core::BernoulliSampleSource source(std::int64_t{1} << 17, 96, 1e-3, 7);
  sas::core::Config config;
  config.algorithm = sas::core::Algorithm::kRing1D;
  config.batch_count = 2;

  constexpr int kTrials = 11;
  (void)sas::core::similarity_at_scale_threaded(4, source, config);  // warmup
  double best_off = 1e300;
  double best_on = 1e300;
  for (int t = 0; t < kTrials; ++t) {
    {
      sas::Timer timer;
      (void)sas::core::similarity_at_scale_threaded(4, source, config);
      best_off = std::min(best_off, timer.seconds());
    }
    {
      sas::obs::Observer observer(4);
      sas::Timer timer;
      (void)sas::core::similarity_at_scale_threaded(4, source, config, nullptr,
                                                    &observer);
      best_on = std::min(best_on, timer.seconds());
    }
  }
  const double overhead = best_on / best_off - 1.0;
  std::printf(
      "tracing overhead (exact 1D ring, 4 ranks, min of %d): off %.2f ms, "
      "on %.2f ms, overhead %.2f%% (gate < 3%%)\n",
      kTrials, best_off * 1e3, best_on * 1e3, overhead * 100.0);
  return overhead >= 0.03 ? 1 : 0;
}

/// Vectorized-scatter speed gate (ROADMAP "Raw speed"): where the host
/// compiled the AVX512 scatter TU, the dispatched kernel must beat the
/// scalar inline kernel by >= 1.2x on a production-shaped segment
/// (min-of-N, interleaved). On hosts without AVX512VPOPCNTDQ the
/// dispatch IS the scalar kernel — the gate prints a skip and passes
/// (skip-not-fail: the parity tests still cover the delegation path).
int run_scatter_speed_gate() {
  if (!sas::popcount_scatter_vectorized()) {
    std::printf(
        "scatter speed gate: SKIP (no AVX512VPOPCNTDQ at build time; "
        "dispatch delegates to the scalar kernel)\n");
    return 0;
  }
  constexpr std::size_t kCount = 1024;
  constexpr int kReps = 2048;
  constexpr int kTrials = 15;
  Rng rng(33);
  std::vector<std::int64_t> cols(kCount);
  for (std::size_t i = 0; i < kCount; ++i) cols[i] = static_cast<std::int64_t>(i);
  for (std::size_t i = kCount; i > 1; --i) std::swap(cols[i - 1], cols[rng.uniform(i)]);
  std::vector<std::uint64_t> vals(kCount);
  for (auto& v : vals) v = rng();
  std::vector<std::uint64_t> words(kReps);
  for (auto& w : words) w = rng();
  std::vector<std::int64_t> acc(kCount, 0);

  // Volatile pointer: keeps the scalar kernel an out-of-line call like
  // the dispatch entry point (fair comparison), and stops GCC's full
  // unroll of the inlined tail loop (which trips a bogus
  // -Waggressive-loop-optimizations diagnostic at -O3).
  void (*volatile scalar_kernel)(std::uint64_t, const std::int64_t*,
                                 const std::uint64_t*, std::size_t,
                                 std::int64_t*) noexcept = sas::popcount_and_scatter;

  // Warm both paths before timing: the first AVX512 burst can carry a
  // frequency-license transition that would otherwise land in trial 0.
  for (int rep = 0; rep < kReps; ++rep) {
    scalar_kernel(words[static_cast<std::size_t>(rep)], cols.data(), vals.data(),
                  kCount, acc.data());
    sas::popcount_and_scatter_dispatch(words[static_cast<std::size_t>(rep)],
                                       cols.data(), vals.data(), kCount, acc.data());
  }

  const auto measure_speedup = [&] {
    double best_scalar = 1e300;
    double best_vector = 1e300;
    for (int t = 0; t < kTrials; ++t) {
      {
        sas::Timer timer;
        for (int rep = 0; rep < kReps; ++rep) {
          scalar_kernel(words[static_cast<std::size_t>(rep)], cols.data(), vals.data(),
                        kCount, acc.data());
        }
        best_scalar = std::min(best_scalar, timer.seconds());
      }
      {
        sas::Timer timer;
        for (int rep = 0; rep < kReps; ++rep) {
          sas::popcount_and_scatter_dispatch(words[static_cast<std::size_t>(rep)],
                                             cols.data(), vals.data(), kCount,
                                             acc.data());
        }
        best_vector = std::min(best_vector, timer.seconds());
      }
    }
    std::printf(
        "scatter speed gate (%zu cols x %d reps, min of %d): scalar %.3f us, "
        "vector %.3f us, speedup %.2fx (gate >= 1.2x)\n",
        kCount, kReps, kTrials, best_scalar * 1e6, best_vector * 1e6,
        best_scalar / best_vector);
    return best_scalar / best_vector;
  };
  // Shared/virtualized CI hosts jitter enough to smear a real ~1.3x
  // kernel speedup across the gate line; steal time and frequency
  // transitions only ever depress one side of a round. Up to three
  // measurement rounds, any clean round passes.
  constexpr int kRounds = 3;
  for (int round = 0; round < kRounds; ++round) {
    if (measure_speedup() >= 1.2) {
      benchmark::DoNotOptimize(acc.data());
      return 0;
    }
  }
  benchmark::DoNotOptimize(acc.data());
  std::printf("scatter speed gate: FAIL (< 1.2x in all %d rounds)\n", kRounds);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // Both gates always run; either failing fails the binary.
  const int tracing = run_tracing_overhead_gate();
  const int scatter = run_scatter_speed_gate();
  return tracing != 0 || scatter != 0 ? 1 : 0;
}
