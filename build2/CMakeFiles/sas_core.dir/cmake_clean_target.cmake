file(REMOVE_RECURSE
  "libsas_core.a"
)
