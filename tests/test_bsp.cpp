// test_bsp.cpp — the message-passing substrate: point-to-point ordering,
// every collective against a serial reference, sub-communicator splits,
// and BSP cost accounting. Parameterized over rank counts, including
// non-powers of two (the tree/dissemination algorithms must handle them).
#include <gtest/gtest.h>

#include <functional>
#include <numeric>
#include <vector>

#include "bsp/runtime.hpp"
#include "util/rng.hpp"

namespace sas::bsp {
namespace {

class Collectives : public ::testing::TestWithParam<int> {};

TEST_P(Collectives, SendRecvPreservesFifoOrderPerPair) {
  const int p = GetParam();
  Runtime::run(p, [](Comm& comm) {
    const int next = (comm.rank() + 1) % comm.size();
    const int prev = (comm.rank() + comm.size() - 1) % comm.size();
    for (int msg = 0; msg < 5; ++msg) {
      comm.send_value<int>(next, 7, comm.rank() * 100 + msg);
    }
    for (int msg = 0; msg < 5; ++msg) {
      EXPECT_EQ(comm.recv_value<int>(prev, 7), prev * 100 + msg);
    }
  });
}

TEST_P(Collectives, SendToSelfWorks) {
  Runtime::run(GetParam(), [](Comm& comm) {
    comm.send_value<double>(comm.rank(), 3, 2.5 + comm.rank());
    EXPECT_DOUBLE_EQ(comm.recv_value<double>(comm.rank(), 3), 2.5 + comm.rank());
  });
}

TEST_P(Collectives, BroadcastFromEveryRoot) {
  const int p = GetParam();
  Runtime::run(p, [p](Comm& comm) {
    for (int root = 0; root < p; ++root) {
      std::vector<std::int64_t> data;
      if (comm.rank() == root) data = {root * 10LL, root * 10LL + 1, 42};
      comm.broadcast(data, root);
      ASSERT_EQ(data.size(), 3u);
      EXPECT_EQ(data[0], root * 10LL);
      EXPECT_EQ(data[2], 42);
    }
  });
}

TEST_P(Collectives, AllreduceSumAndMax) {
  const int p = GetParam();
  Runtime::run(p, [p](Comm& comm) {
    const auto sum = comm.allreduce_value<std::int64_t>(comm.rank() + 1,
                                                        std::plus<std::int64_t>{});
    EXPECT_EQ(sum, static_cast<std::int64_t>(p) * (p + 1) / 2);
    const auto mx = comm.allreduce_value<int>(
        comm.rank(), [](int a, int b) { return a > b ? a : b; });
    EXPECT_EQ(mx, p - 1);
  });
}

TEST_P(Collectives, AllreduceVectorElementwise) {
  const int p = GetParam();
  Runtime::run(p, [p](Comm& comm) {
    std::vector<std::int64_t> data{comm.rank(), 2 * comm.rank(), 1};
    comm.allreduce(data, std::plus<std::int64_t>{});
    const std::int64_t ranks_sum = static_cast<std::int64_t>(p) * (p - 1) / 2;
    EXPECT_EQ(data[0], ranks_sum);
    EXPECT_EQ(data[1], 2 * ranks_sum);
    EXPECT_EQ(data[2], p);
  });
}

TEST_P(Collectives, ReduceToEveryRoot) {
  const int p = GetParam();
  Runtime::run(p, [p](Comm& comm) {
    for (int root = 0; root < p; ++root) {
      std::vector<std::int64_t> data{1, static_cast<std::int64_t>(comm.rank())};
      comm.reduce(data, std::plus<std::int64_t>{}, root);
      if (comm.rank() == root) {
        EXPECT_EQ(data[0], p);
        EXPECT_EQ(data[1], static_cast<std::int64_t>(p) * (p - 1) / 2);
      }
      comm.barrier();
    }
  });
}

TEST_P(Collectives, GatherVCollectsVariableBlocks) {
  const int p = GetParam();
  Runtime::run(p, [p](Comm& comm) {
    // Rank r contributes r+1 values, all equal to r.
    std::vector<int> mine(static_cast<std::size_t>(comm.rank() + 1), comm.rank());
    auto blocks = comm.gather_v<int>(mine, 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(blocks.size(), static_cast<std::size_t>(p));
      for (int r = 0; r < p; ++r) {
        ASSERT_EQ(blocks[static_cast<std::size_t>(r)].size(),
                  static_cast<std::size_t>(r + 1));
        for (int v : blocks[static_cast<std::size_t>(r)]) EXPECT_EQ(v, r);
      }
    } else {
      EXPECT_TRUE(blocks.empty());
    }
  });
}

TEST_P(Collectives, AllgatherConcatenatesInRankOrder) {
  const int p = GetParam();
  Runtime::run(p, [p](Comm& comm) {
    std::vector<int> mine{comm.rank() * 2, comm.rank() * 2 + 1};
    const auto all = comm.allgather<int>(mine);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(2 * p));
    for (int i = 0; i < 2 * p; ++i) EXPECT_EQ(all[static_cast<std::size_t>(i)], i);
  });
}

TEST_P(Collectives, AllgatherVariableSizes) {
  const int p = GetParam();
  Runtime::run(p, [p](Comm& comm) {
    std::vector<std::int64_t> mine(static_cast<std::size_t>(comm.rank() % 3),
                                   comm.rank());
    auto blocks = comm.allgather_v<std::int64_t>(mine);
    ASSERT_EQ(blocks.size(), static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      ASSERT_EQ(blocks[static_cast<std::size_t>(r)].size(),
                static_cast<std::size_t>(r % 3));
      for (auto v : blocks[static_cast<std::size_t>(r)]) EXPECT_EQ(v, r);
    }
  });
}

TEST_P(Collectives, ScatterDistributesBlocks) {
  const int p = GetParam();
  Runtime::run(p, [p](Comm& comm) {
    std::vector<std::vector<int>> blocks;
    if (comm.rank() == 0) {
      for (int r = 0; r < p; ++r) {
        blocks.push_back(std::vector<int>(static_cast<std::size_t>(r + 1), r * 7));
      }
    }
    const auto mine = comm.scatter_v<int>(blocks, 0);
    ASSERT_EQ(mine.size(), static_cast<std::size_t>(comm.rank() + 1));
    for (int v : mine) EXPECT_EQ(v, comm.rank() * 7);
  });
}

TEST_P(Collectives, AlltoallvRoutesEveryBlock) {
  const int p = GetParam();
  Runtime::run(p, [p](Comm& comm) {
    // Block for rank d holds the single value 1000*src + d.
    std::vector<std::vector<std::int64_t>> outgoing(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      outgoing[static_cast<std::size_t>(d)] = {1000LL * comm.rank() + d};
    }
    const auto incoming = comm.alltoall_v(outgoing);
    ASSERT_EQ(incoming.size(), static_cast<std::size_t>(p));
    for (int src = 0; src < p; ++src) {
      ASSERT_EQ(incoming[static_cast<std::size_t>(src)].size(), 1u);
      EXPECT_EQ(incoming[static_cast<std::size_t>(src)][0], 1000LL * src + comm.rank());
    }
  });
}

TEST_P(Collectives, ReduceScatterCombinesPerBlock) {
  const int p = GetParam();
  const std::int64_t total = 3 * p + 1;  // uneven blocks exercised
  Runtime::run(p, [p, total](Comm& comm) {
    // Rank r contributes v[i] = i*1000 + r; every block's combination is
    // Σ_r v[i] = i*1000*p + p(p-1)/2.
    std::vector<std::int64_t> mine(static_cast<std::size_t>(total));
    for (std::int64_t i = 0; i < total; ++i) mine[static_cast<std::size_t>(i)] =
        i * 1000 + comm.rank();
    const auto got = comm.reduce_scatter(mine, std::plus<std::int64_t>{});
    // Expected: my block of the fully reduced vector.
    const std::int64_t base = total / p;
    const std::int64_t extra = total % p;
    const std::int64_t begin =
        comm.rank() * base + std::min<std::int64_t>(comm.rank(), extra);
    const std::int64_t len = base + (comm.rank() < extra ? 1 : 0);
    ASSERT_EQ(static_cast<std::int64_t>(got.size()), len);
    for (std::int64_t i = 0; i < len; ++i) {
      EXPECT_EQ(got[static_cast<std::size_t>(i)],
                (begin + i) * 1000 * p + static_cast<std::int64_t>(p) * (p - 1) / 2);
    }
  });
}

TEST_P(Collectives, ScanAndExscanMatchPrefixSums) {
  const int p = GetParam();
  Runtime::run(p, [](Comm& comm) {
    const std::int64_t mine = comm.rank() + 1;
    const auto incl = comm.scan<std::int64_t>(mine, std::plus<std::int64_t>{});
    const auto excl =
        comm.exscan<std::int64_t>(mine, std::plus<std::int64_t>{}, 0);
    const std::int64_t r = comm.rank();
    EXPECT_EQ(incl, (r + 1) * (r + 2) / 2);
    EXPECT_EQ(excl, r * (r + 1) / 2);
  });
}

TEST_P(Collectives, ScanWithNonCommutativeOpRespectsRankOrder) {
  // Affine map composition x -> a·x + b: associative but non-commutative,
  // which is all the dissemination scan requires.
  struct Affine {
    std::int64_t a;
    std::int64_t b;
  };
  const int p = GetParam();
  Runtime::run(p, [p](Comm& comm) {
    // op(F, G) = "apply F then G".
    auto op = [](Affine f, Affine g) { return Affine{f.a * g.a, f.b * g.a + g.b}; };
    const Affine mine{comm.rank() % 3 + 1, comm.rank() + 1};
    const Affine incl = comm.scan<Affine>(mine, op);
    // Serial reference: compose f_0 .. f_rank in rank order.
    Affine expected{1, 0};
    for (int i = 0; i <= comm.rank(); ++i) {
      expected = op(expected, Affine{i % 3 + 1, i + 1});
    }
    EXPECT_EQ(incl.a, expected.a);
    EXPECT_EQ(incl.b, expected.b);
    (void)p;
  });
}

TEST_P(Collectives, BarrierCountsSupersteps) {
  const int p = GetParam();
  auto counters = Runtime::run(p, [](Comm& comm) {
    comm.barrier();
    comm.barrier();
    comm.barrier();
  });
  for (const auto& c : counters) EXPECT_EQ(c.supersteps, 3u);
}

TEST_P(Collectives, CostCountersTrackBytes) {
  const int p = GetParam();
  auto counters = Runtime::run(p, [p](Comm& comm) {
    if (p == 1) return;
    const std::vector<std::int64_t> payload(10, 1);  // 80 bytes
    comm.send<std::int64_t>((comm.rank() + 1) % p, 1, payload);
    (void)comm.recv<std::int64_t>((comm.rank() + p - 1) % p, 1);
  });
  if (p > 1) {
    for (const auto& c : counters) {
      EXPECT_EQ(c.messages_sent, 1u);
      EXPECT_EQ(c.bytes_sent, 80u);
    }
  }
  const auto summary = CostSummary::aggregate(counters);
  EXPECT_EQ(summary.total_messages, p > 1 ? static_cast<std::uint64_t>(p) : 0u);
}

TEST_P(Collectives, SplitGroupsByColorAndOrdersByKey) {
  const int p = GetParam();
  Runtime::run(p, [p](Comm& comm) {
    // Even/odd split, keyed by descending world rank.
    const int color = comm.rank() % 2;
    Comm sub = comm.split(color, -comm.rank());
    const int expected_size = p / 2 + ((p % 2) && color == 0 ? 1 : 0);
    EXPECT_EQ(sub.size(), expected_size);
    // Keys are -world_rank, so sub-ranks order world ranks descending.
    const auto got = sub.allgather<int>(std::vector<int>{comm.rank()});
    for (std::size_t i = 1; i < got.size(); ++i) EXPECT_GT(got[i - 1], got[i]);
    // Collectives work on the sub-communicator.
    const auto sum =
        sub.allreduce_value<int>(1, std::plus<int>{});
    EXPECT_EQ(sum, expected_size);
  });
}

TEST_P(Collectives, SequentialSplitsAreIndependent) {
  const int p = GetParam();
  Runtime::run(p, [](Comm& comm) {
    Comm a = comm.split(0, comm.rank());
    Comm b = comm.split(comm.rank() % 2, comm.rank());
    EXPECT_EQ(a.size(), comm.size());
    const auto sum_a = a.allreduce_value<int>(1, std::plus<int>{});
    EXPECT_EQ(sum_a, comm.size());
    const auto sum_b = b.allreduce_value<int>(1, std::plus<int>{});
    EXPECT_EQ(sum_b, b.size());
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, Collectives,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 16));

TEST(Runtime, PropagatesExceptionsFromRanks) {
  EXPECT_THROW(Runtime::run(1, [](Comm&) { throw std::runtime_error("boom"); }),
               std::runtime_error);
}

TEST(Runtime, RejectsNonPositiveRankCounts) {
  EXPECT_THROW(Runtime::run(0, [](Comm&) {}), std::invalid_argument);
  EXPECT_THROW(Runtime::run(-2, [](Comm&) {}), std::invalid_argument);
}

TEST(Runtime, ReturnsPerRankCounters) {
  auto counters = Runtime::run(4, [](Comm& comm) {
    comm.add_flops(static_cast<std::uint64_t>(comm.rank()) + 1);
  });
  ASSERT_EQ(counters.size(), 4u);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(counters[static_cast<std::size_t>(r)].flops,
              static_cast<std::uint64_t>(r) + 1);
  }
}

}  // namespace
}  // namespace sas::bsp
