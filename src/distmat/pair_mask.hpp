// pair_mask.hpp — candidate-pair masks (the hybrid's candidate set), in a
// dense and a sparse representation behind one probing interface.
//
// The sketch-prune pass of the hybrid estimator (core/driver.hpp stage
// diagram) marks every pair whose estimated Jaccard clears the prune
// threshold; the exact rescore pass then consults the mask at three
// granularities:
//
//   * column level  — a sample with no surviving off-diagonal pair is
//                     dropped before redistribution (its panel entries
//                     never enter the network);
//   * panel level   — the targeted 1D exchange ships a panel column to a
//                     peer only when the mask pairs it with one of that
//                     peer's output rows (spgemm.hpp);
//   * tile level    — the CSR kernel skips output-column tiles whose
//                     pair set is fully pruned (CsrAtaOptions::prune).
//
// == Dense vs sparse ======================================================
//
// PairMask is a plain row-major n×n bitset replicated on every rank —
// n²/8 bytes, which is fine for thousands of samples (~2 MB at n = 4096)
// but quadratic: ~312 MB at n = 50k and growing past any single-rank
// budget at the "millions of samples" scale the ROADMAP targets.
// SparsePairMask is the CSR-of-pairs alternative: one sorted column list
// per row (diagonal and both directions of every pair stored, so the
// probes need no mirroring), 8 bytes per stored entry plus the row
// pointers.
//
// The crossover is storage parity, sparse_pair_mask_wins(): the sparse
// form is selected when its entry words (n diagonal + 2·pairs) fit in
// the dense bitset's word budget (n · ⌈n/64⌉), i.e. when fewer than
// ~n/128 candidate partners survive per sample on average. The LSH
// candidate pass (sketch/exchange.hpp) applies it automatically; the
// all-pairs pass always builds dense (it scored all n² pairs anyway and
// only runs at small n — Config::lsh_min_samples and the candidate-mode
// notes in core/config.hpp document the knobs).
//
// CandidateMask wraps either representation behind the shared probe set
// (test / any_pair / row_active / active_columns / count) with one
// branch per probe — no virtual dispatch on the kernel hot path.
//
// The diagonal is always set: self-similarity is exact by convention and
// never pruned. Dense masks are replicated by allreduce_pair_mask
// (dist_filter.hpp, a bitwise word-OR); sparse masks by
// allreduce_pair_union (a sorted union merge of packed pair lists).
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "distmat/block.hpp"
#include "util/popcount.hpp"

namespace sas::distmat {

namespace detail {

/// In-place transpose of a 64×64 bit block, m[r] bit c = element (r, c)
/// (LSB-first). Recursive block swap (Hacker's Delight 7-3, mirrored for
/// the LSB-first bit order): at width s, every aligned 2s×2s block swaps
/// its top-right s×s sub-block with its bottom-left one.
inline void transpose_64x64(std::uint64_t m[64]) noexcept {
  std::uint64_t mask = 0x00000000ffffffffULL;
  for (int s = 32; s != 0; s >>= 1, mask ^= mask << s) {
    for (int r = 0; r < 64; r = (r + s + 1) & ~s) {
      const std::uint64_t t = ((m[r] >> s) ^ m[r + s]) & mask;
      m[r] ^= t << s;
      m[r + s] ^= t;
    }
  }
}

}  // namespace detail

class PairMask {
 public:
  PairMask() = default;

  /// All-clear n×n mask: no bits set yet, not even the diagonal (the
  /// candidate passes set it explicitly).
  explicit PairMask(std::int64_t n)
      : n_(n), words_per_row_((n + 63) / 64) {
    // n · words_per_row_ grows as n²/64: guard the multiplication before
    // it wraps (n ≈ 2^34 would already overflow the byte count).
    if (n_ > 0 &&
        words_per_row_ > static_cast<std::int64_t>(
                             std::numeric_limits<std::size_t>::max() / sizeof(std::uint64_t)) /
                             n_) {
      throw std::length_error("PairMask: n * words_per_row overflows");
    }
    words_.assign(static_cast<std::size_t>(n_ * words_per_row_), 0);
  }

  [[nodiscard]] std::int64_t size() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }

  void set(std::int64_t i, std::int64_t j) noexcept {
    words_[word_index(i, j)] |= std::uint64_t{1} << (j & 63);
  }

  [[nodiscard]] bool test(std::int64_t i, std::int64_t j) const noexcept {
    return (words_[word_index(i, j)] >> (j & 63)) & 1u;
  }

  /// Number of set pairs (diagonal included).
  [[nodiscard]] std::int64_t count() const noexcept {
    std::int64_t total = 0;
    for (std::uint64_t w : words_) total += popcount64(w);
    return total;
  }

  /// Any candidate in the [rows × cols] tile? This is the kernel's skip
  /// probe: O(rows · cols/64) word scans with edge masks, negligible next
  /// to the multiply work a non-skipped tile implies.
  [[nodiscard]] bool any_pair(BlockRange rows, BlockRange cols) const noexcept {
    if (rows.size() <= 0 || cols.size() <= 0) return false;
    const std::int64_t wb = cols.begin >> 6;
    const std::int64_t we = (cols.end - 1) >> 6;  // inclusive
    const std::uint64_t first_mask = ~std::uint64_t{0} << (cols.begin & 63);
    const std::uint64_t last_mask =
        ~std::uint64_t{0} >> (63 - ((cols.end - 1) & 63));
    for (std::int64_t i = rows.begin; i < rows.end; ++i) {
      const std::uint64_t* const row = words_.data() + i * words_per_row_;
      for (std::int64_t w = wb; w <= we; ++w) {
        std::uint64_t bits = row[w];
        if (w == wb) bits &= first_mask;
        if (w == we) bits &= last_mask;
        if (bits != 0) return true;
      }
    }
    return false;
  }

  /// Does sample i have any surviving partner other than itself?
  [[nodiscard]] bool row_active(std::int64_t i) const noexcept {
    const std::uint64_t* const row = words_.data() + i * words_per_row_;
    const std::uint64_t diag_bit = std::uint64_t{1} << (i & 63);
    for (std::int64_t w = 0; w < words_per_row_; ++w) {
      std::uint64_t bits = row[w];
      if (w == (i >> 6)) bits &= ~diag_bit;
      if (bits != 0) return true;
    }
    return false;
  }

  /// Per-sample activity flags (row_active for every sample) — the
  /// column-dropping predicate of the rescore pass.
  [[nodiscard]] std::vector<std::uint8_t> active_columns() const {
    std::vector<std::uint8_t> active(static_cast<std::size_t>(n_), 0);
    for (std::int64_t i = 0; i < n_; ++i) {
      active[static_cast<std::size_t>(i)] = row_active(i) ? 1 : 0;
    }
    return active;
  }

  /// Make the mask symmetric: mask ∨ maskᵀ. Estimates are symmetric, so
  /// this is a safety net for fp-identical but differently-owned entries.
  /// Runs on 64×64 bit blocks (load both mirror blocks, transpose, OR) —
  /// O(n²/64) word operations, not the O(n²) per-bit loop it replaces.
  void symmetrize() noexcept {
    const std::int64_t blocks = words_per_row_;  // == ⌈n/64⌉ block rows too
    std::uint64_t a[64];
    std::uint64_t b[64];
    for (std::int64_t bi = 0; bi < blocks; ++bi) {
      const std::int64_t rows_a = std::min<std::int64_t>(64, n_ - bi * 64);
      for (std::int64_t bj = bi; bj < blocks; ++bj) {
        const std::int64_t rows_b = std::min<std::int64_t>(64, n_ - bj * 64);
        // a = block(bi, bj), b = block(bj, bi); ghost rows (≥ n) read as 0
        // and are never written back.
        for (std::int64_t r = 0; r < 64; ++r) {
          a[r] = r < rows_a ? words_[word_index_block(bi * 64 + r, bj)] : 0;
          b[r] = r < rows_b ? words_[word_index_block(bj * 64 + r, bi)] : 0;
        }
        detail::transpose_64x64(a);
        detail::transpose_64x64(b);
        // block(bi, bj) |= block(bj, bi)ᵀ and vice versa. After the two
        // transposes, a holds block(bi, bj)ᵀ and b holds block(bj, bi)ᵀ.
        for (std::int64_t r = 0; r < rows_a; ++r) {
          words_[word_index_block(bi * 64 + r, bj)] |= b[r];
        }
        for (std::int64_t r = 0; r < rows_b; ++r) {
          words_[word_index_block(bj * 64 + r, bi)] |= a[r];
        }
      }
    }
  }

  /// Raw word storage (row-major, words_per_row() words per row) — the
  /// allreduce payload of allreduce_pair_mask.
  [[nodiscard]] std::vector<std::uint64_t>& words() noexcept { return words_; }
  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept {
    return words_;
  }
  [[nodiscard]] std::int64_t words_per_row() const noexcept { return words_per_row_; }

 private:
  [[nodiscard]] std::size_t word_index(std::int64_t i, std::int64_t j) const noexcept {
    return static_cast<std::size_t>(i * words_per_row_ + (j >> 6));
  }
  [[nodiscard]] std::size_t word_index_block(std::int64_t i, std::int64_t wj) const noexcept {
    return static_cast<std::size_t>(i * words_per_row_ + wj);
  }

  std::int64_t n_ = 0;
  std::int64_t words_per_row_ = 0;
  std::vector<std::uint64_t> words_;
};

/// CSR-of-pairs candidate mask: per row, the sorted list of candidate
/// partners (diagonal and both pair directions stored). Same probe set
/// and semantics as the dense PairMask at 8 bytes per stored entry —
/// the replicated-footprint winner whenever fewer than ~n/128 partners
/// survive per sample (sparse_pair_mask_wins documents the crossover).
class SparsePairMask {
 public:
  SparsePairMask() = default;

  /// Mask over n samples from packed OFF-DIAGONAL upper pairs (i < j,
  /// pack_pair format; any order, duplicates tolerated). The diagonal and
  /// the mirrored (j, i) entries are added automatically.
  SparsePairMask(std::int64_t n, std::span<const std::uint64_t> packed_upper_pairs)
      : n_(n) {
    std::vector<std::uint64_t> entries;
    entries.reserve(static_cast<std::size_t>(n) + 2 * packed_upper_pairs.size());
    for (std::int64_t i = 0; i < n; ++i) {
      entries.push_back(pack_pair_unchecked(i, i));
    }
    for (std::uint64_t packed : packed_upper_pairs) {
      const auto [i, j] = unpack_pair(packed);
      if (i < 0 || j <= i || j >= n) {
        throw std::invalid_argument("SparsePairMask: pair out of range");
      }
      entries.push_back(pack_pair_unchecked(i, j));
      entries.push_back(pack_pair_unchecked(j, i));
    }
    std::sort(entries.begin(), entries.end());
    entries.erase(std::unique(entries.begin(), entries.end()), entries.end());

    row_ptr_.assign(static_cast<std::size_t>(n) + 1, 0);
    cols_.reserve(entries.size());
    for (std::uint64_t packed : entries) {
      const auto [i, j] = unpack_pair(packed);
      ++row_ptr_[static_cast<std::size_t>(i) + 1];
      cols_.push_back(j);
    }
    for (std::size_t r = 0; r < static_cast<std::size_t>(n); ++r) {
      row_ptr_[r + 1] += row_ptr_[r];
    }
  }

  /// (i, j) packed into one word, i in the high half — sorting packed
  /// pairs sorts by (i, j). Indices must fit 31 bits: a mask at n ≥ 2³¹
  /// exceeds any replicated budget long before this packing binds.
  [[nodiscard]] static std::uint64_t pack_pair(std::int64_t i, std::int64_t j) {
    if (i < 0 || j < 0 || i >= kMaxIndex || j >= kMaxIndex) {
      throw std::invalid_argument("SparsePairMask::pack_pair: index exceeds 31 bits");
    }
    return pack_pair_unchecked(i, j);
  }

  [[nodiscard]] static std::pair<std::int64_t, std::int64_t> unpack_pair(
      std::uint64_t packed) noexcept {
    return {static_cast<std::int64_t>(packed >> 32),
            static_cast<std::int64_t>(packed & 0xffffffffULL)};
  }

  [[nodiscard]] std::int64_t size() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }

  [[nodiscard]] bool test(std::int64_t i, std::int64_t j) const noexcept {
    const auto [begin, end] = row_span(i);
    return std::binary_search(begin, end, j);
  }

  /// Stored entries (diagonal + both directions) — matches the dense
  /// count() (set bits) exactly.
  [[nodiscard]] std::int64_t count() const noexcept {
    return static_cast<std::int64_t>(cols_.size());
  }

  [[nodiscard]] bool any_pair(BlockRange rows, BlockRange cols) const noexcept {
    if (rows.size() <= 0 || cols.size() <= 0) return false;
    for (std::int64_t i = rows.begin; i < rows.end; ++i) {
      const auto [begin, end] = row_span(i);
      const auto it = std::lower_bound(begin, end, cols.begin);
      if (it != end && *it < cols.end) return true;
    }
    return false;
  }

  [[nodiscard]] bool row_active(std::int64_t i) const noexcept {
    const auto [begin, end] = row_span(i);
    const std::int64_t deg = end - begin;
    return deg > 1 || (deg == 1 && *begin != i);
  }

  [[nodiscard]] std::vector<std::uint8_t> active_columns() const {
    std::vector<std::uint8_t> active(static_cast<std::size_t>(n_), 0);
    for (std::int64_t i = 0; i < n_; ++i) {
      active[static_cast<std::size_t>(i)] = row_active(i) ? 1 : 0;
    }
    return active;
  }

  [[nodiscard]] std::span<const std::int64_t> row(std::int64_t i) const noexcept {
    const auto [begin, end] = row_span(i);
    return {begin, static_cast<std::size_t>(end - begin)};
  }

 private:
  static constexpr std::int64_t kMaxIndex = std::int64_t{1} << 31;

  [[nodiscard]] static std::uint64_t pack_pair_unchecked(std::int64_t i,
                                                         std::int64_t j) noexcept {
    return (static_cast<std::uint64_t>(i) << 32) | static_cast<std::uint64_t>(j);
  }

  [[nodiscard]] std::pair<const std::int64_t*, const std::int64_t*> row_span(
      std::int64_t i) const noexcept {
    return {cols_.data() + row_ptr_[static_cast<std::size_t>(i)],
            cols_.data() + row_ptr_[static_cast<std::size_t>(i) + 1]};
  }

  std::int64_t n_ = 0;
  std::vector<std::int64_t> row_ptr_;  ///< n + 1 prefix offsets into cols_
  std::vector<std::int64_t> cols_;     ///< sorted partners per row (diag incl.)
};

/// Storage-parity crossover of the candidate pass: the sparse CSR form
/// (one 8-byte entry per diagonal + pair direction) is selected when it
/// is no larger than the dense bitset (n · ⌈n/64⌉ words), i.e. below
/// ~n/128 surviving partners per sample.
[[nodiscard]] inline bool sparse_pair_mask_wins(std::int64_t n,
                                               std::int64_t upper_pairs) noexcept {
  const std::int64_t words_per_row = (n + 63) / 64;
  return n + 2 * upper_pairs <= n * words_per_row;
}

/// Either candidate-mask representation behind the shared probe set. One
/// predictable branch per probe — cheap enough for the kernel tile probe
/// and the dense path's per-cell test.
class CandidateMask {
 public:
  CandidateMask() = default;
  explicit CandidateMask(PairMask dense) : dense_(std::move(dense)), sparse_(false) {}
  explicit CandidateMask(SparsePairMask sparse)
      : sparse_mask_(std::move(sparse)), sparse_(true) {}

  [[nodiscard]] bool is_sparse() const noexcept { return sparse_; }
  [[nodiscard]] const PairMask& dense() const {
    if (sparse_) throw std::logic_error("CandidateMask: not dense");
    return dense_;
  }
  [[nodiscard]] const SparsePairMask& sparse() const {
    if (!sparse_) throw std::logic_error("CandidateMask: not sparse");
    return sparse_mask_;
  }

  [[nodiscard]] std::int64_t size() const noexcept {
    return sparse_ ? sparse_mask_.size() : dense_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  [[nodiscard]] bool test(std::int64_t i, std::int64_t j) const noexcept {
    return sparse_ ? sparse_mask_.test(i, j) : dense_.test(i, j);
  }
  [[nodiscard]] std::int64_t count() const noexcept {
    return sparse_ ? sparse_mask_.count() : dense_.count();
  }
  [[nodiscard]] bool any_pair(BlockRange rows, BlockRange cols) const noexcept {
    return sparse_ ? sparse_mask_.any_pair(rows, cols) : dense_.any_pair(rows, cols);
  }
  [[nodiscard]] bool row_active(std::int64_t i) const noexcept {
    return sparse_ ? sparse_mask_.row_active(i) : dense_.row_active(i);
  }
  [[nodiscard]] std::vector<std::uint8_t> active_columns() const {
    return sparse_ ? sparse_mask_.active_columns() : dense_.active_columns();
  }

  /// Visit every masked off-diagonal pair (i, j) with i ∈ rows, j ∈ cols
  /// and i < j, in (i, j) order. Restricting to i < j means a pair is
  /// visited by exactly ONE block of any disjoint block cover of the
  /// matrix (the mirrored cell (j, i) fails the test in its block) —
  /// this is the survivor-gather walk: each owning rank emits its
  /// block's surviving (i, j, value) triplets and the concatenation
  /// covers every survivor exactly once. O(rows · cols/64) dense,
  /// O(Σᵢ log + hits) sparse.
  template <typename Visitor>
  void for_each_pair_in(BlockRange rows, BlockRange cols, Visitor&& visit) const {
    const std::int64_t n = size();
    const BlockRange r{std::max<std::int64_t>(rows.begin, 0), std::min(rows.end, n)};
    const BlockRange c{std::max<std::int64_t>(cols.begin, 0), std::min(cols.end, n)};
    if (r.size() <= 0 || c.size() <= 0) return;
    if (sparse_) {
      for (std::int64_t i = r.begin; i < r.end; ++i) {
        const auto row = sparse_mask_.row(i);
        const auto begin = std::lower_bound(row.data(), row.data() + row.size(),
                                            std::max(c.begin, i + 1));
        for (const std::int64_t* it = begin; it != row.data() + row.size(); ++it) {
          if (*it >= c.end) break;
          visit(i, *it);
        }
      }
      return;
    }
    const std::int64_t wpr = dense_.words_per_row();
    for (std::int64_t i = r.begin; i < r.end; ++i) {
      const std::int64_t jb = std::max(c.begin, i + 1);
      if (jb >= c.end) continue;
      const std::uint64_t* const row = dense_.words().data() + i * wpr;
      const std::int64_t wb = jb >> 6;
      const std::int64_t we = (c.end - 1) >> 6;  // inclusive
      for (std::int64_t w = wb; w <= we; ++w) {
        std::uint64_t bits = row[w];
        if (w == wb) bits &= ~std::uint64_t{0} << (jb & 63);
        if (w == we && ((c.end - 1) & 63) != 63) {
          bits &= ~std::uint64_t{0} >> (63 - ((c.end - 1) & 63));
        }
        while (bits != 0) {
          const std::int64_t j = (w << 6) + std::countr_zero(bits);
          bits &= bits - 1;
          visit(i, j);
        }
      }
    }
  }

  /// Visit every off-diagonal candidate pair (i, j) with i < j, in
  /// (i, j) order. O(n²/64 + candidates) dense, O(candidates + n) sparse
  /// — the analysis-side walk (analysis::candidate_pairs).
  template <typename Visitor>
  void for_each_upper_pair(Visitor&& visit) const {
    const std::int64_t n = size();
    if (sparse_) {
      for (std::int64_t i = 0; i < n; ++i) {
        for (std::int64_t j : sparse_mask_.row(i)) {
          if (j > i) visit(i, j);
        }
      }
      return;
    }
    const std::int64_t wpr = dense_.words_per_row();
    for (std::int64_t i = 0; i < n; ++i) {
      const std::uint64_t* const row = dense_.words().data() + i * wpr;
      for (std::int64_t w = (i + 1) >> 6; w < wpr; ++w) {
        std::uint64_t bits = row[w];
        if (w == ((i + 1) >> 6)) bits &= ~std::uint64_t{0} << ((i + 1) & 63);
        while (bits != 0) {
          const std::int64_t j = (w << 6) + std::countr_zero(bits);
          bits &= bits - 1;
          if (j < n) visit(i, j);
        }
      }
    }
  }

 private:
  PairMask dense_;
  SparsePairMask sparse_mask_;
  bool sparse_ = false;
};

}  // namespace sas::distmat
