# Empty dependencies file for sas_core.
# This may be replaced when dependencies are built.
