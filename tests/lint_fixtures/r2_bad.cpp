// Seeded R2 fixture: numeric message-tag literals at send/recv call
// sites and a tag constant minted outside bsp/tags.hpp. Never compiled.

void exchanges_on_raw_tags(sas::bsp::Comm& comm, int peer) {
  constexpr int kTagRogue = 7;
  comm.send_value<int>(peer, 300, 42);
  const auto reply = comm.recv<int>(peer, 301);
  (void)kTagRogue;
  (void)reply;
}
