#include "bsp/comm.hpp"

#include <algorithm>
#include <string>
#include <tuple>

#include "bsp/tags.hpp"
#include "util/error.hpp"

namespace sas::bsp {

namespace detail {

void SharedState::set_node_topology(int nodes_in) {
  const int n = std::clamp(nodes_in, 1, size);
  std::vector<int> map(static_cast<std::size_t>(size));
  for (int q = 0; q < n; ++q) {
    // Contiguous near-equal blocks: node q owns [q·size/n, (q+1)·size/n).
    const int begin = static_cast<int>(static_cast<std::int64_t>(q) * size / n);
    const int end = static_cast<int>(static_cast<std::int64_t>(q + 1) * size / n);
    for (int r = begin; r < end; ++r) map[static_cast<std::size_t>(r)] = q;
  }
  set_node_map(std::move(map));
}

void SharedState::set_node_map(std::vector<int> map) {
  if (static_cast<int>(map.size()) != size) {
    throw std::invalid_argument("bsp::SharedState::set_node_map: one entry per rank");
  }
  // Renumber node ids dense, preserving their relative order, so split
  // children with gaps in the inherited ids get contiguous nodes.
  std::vector<int> ids = map;
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  for (int& q : map) {
    q = static_cast<int>(std::lower_bound(ids.begin(), ids.end(), q) - ids.begin());
  }
  nodes = static_cast<int>(ids.size());
  if (nodes <= 1) {
    // Flat: keep the single-tier collectives and empty maps (the
    // convention node_of/node_members rely on).
    nodes = 1;
    node_of.clear();
    node_members.clear();
    return;
  }
  node_members.assign(static_cast<std::size_t>(nodes), {});
  for (int r = 0; r < size; ++r) {
    node_members[static_cast<std::size_t>(map[static_cast<std::size_t>(r)])].push_back(r);
  }
  node_of = std::move(map);
}

}  // namespace detail

void Comm::barrier() {
  const obs::CollectiveScope obs_scope(obs::Primitive::kBarrier, *counters_);
  counters_->supersteps += 1;
  proto_record(ProtoOp::kBarrier, 0, 0, 0);
  detail::SharedState& st = *state_;
  std::unique_lock<std::mutex> lock(st.barrier_mutex);
  const std::uint64_t generation = st.barrier_generation;
  if (++st.barrier_arrived == st.size) {
    // Protocol cross-check by the last-arriving rank: every peer is
    // blocked at THIS barrier and its ledger write happened-before its
    // barrier_mutex acquisition, so the read is ordered and quiescent.
    // On divergence the barrier is released first (peers proceed and
    // unwind through the normal abort cascade once this throw trips the
    // token) and the checking rank throws with both ledgers named.
    std::string diverged;
    if (st.verify_protocol) {
      diverged = describe_ledger_divergence(
          std::span<const ProtocolLedger>(st.ledgers), st.label,
          "barrier (superstep " + std::to_string(st.barrier_generation) + ")");
    }
    st.barrier_arrived = 0;
    ++st.barrier_generation;
    st.barrier_cv.notify_all();
    if (!diverged.empty()) throw error::ProtocolError(diverged);
  } else {
    wait_or_abort(
        st.barrier_cv, lock,
        [&st, generation] { return st.barrier_generation != generation; },
        wait_policy(), "rank " + std::to_string(rank_) + " in barrier");
  }
}

namespace {

/// Classify the tripped token's cause for the verdict. Falls back to
/// permanent/"unknown exception" — an unclassifiable failure must never
/// be retried as if it were transient.
void classify_cause(const std::exception_ptr& cause, RecoveryOutcome& out) {
  out.transient = false;
  out.message = "unknown exception";
  if (cause == nullptr) return;
  try {
    std::rethrow_exception(cause);
  } catch (const error::Error& e) {
    out.transient = e.transient();
    out.message = e.what();
  } catch (const std::exception& e) {
    out.message = e.what();
  } catch (...) {  // sas-lint: allow(R7 classification fallback: the permanent default IS the typed translation)
  }
}

}  // namespace

RecoveryOutcome Comm::recover(std::int64_t batch, std::uint64_t attempt,
                              std::uint64_t max_retries, bool quarantine) {
  detail::SharedState& st = *state_;
  const obs::Span span("recover", "recovery", counters_);
  RecoveryOutcome out;

  std::unique_lock<std::mutex> lock(st.recovery_mutex);
  const std::uint64_t generation = st.recovery_generation;
  if (st.recovery_arrived == 0) {
    st.recovery_batch = batch;
    st.recovery_batch_mismatch = false;
  } else if (st.recovery_batch != batch) {
    // Ranks disagree on which batch failed (a straddle across a batch
    // boundary); rolling back across boundaries is unsupported, so the
    // verdict can only be abort.
    st.recovery_batch_mismatch = true;
  }
  ++st.recovery_arrived;
  st.recovery_cv.notify_all();

  // Wait until this generation is released, claiming the coordinator
  // role if this rank is the one that observes the rendezvous complete
  // (all surviving ranks arrived; defections count as arrivals that can
  // never happen). Deliberately NOT wait_or_abort: the token is tripped
  // by construction here, and the rendezvous is how it gets reset.
  st.recovery_cv.wait(lock, [&] {
    if (st.recovery_generation != generation) return true;
    if (st.recovery_claimed) return false;
    return st.recovery_arrived + st.recovery_defected >= st.size;
  });

  if (st.recovery_generation == generation) {
    // Coordinator. Peers are quiescent in the wait above (they hold no
    // locks and issue no sends until released), so shared structures can
    // be reset safely — the same quiescence argument the barrier's
    // ledger cross-check rests on.
    st.recovery_claimed = true;
    classify_cause(st.abort->cause(), out);
    out.source_rank = st.abort->source_rank();
    out.cause = st.abort->cause();
    out.healable = !st.recovery_batch_mismatch && st.recovery_defected == 0;
    out.retry = out.healable && out.transient && attempt < max_retries;
    // A healable failure also re-arms when the caller will quarantine the
    // batch and continue — the run's remaining batches need a clean
    // world just as a replay does.
    out.rearmed = out.retry || (out.healable && quarantine);
    st.recovery_outcome = out;
    if (out.rearmed) {
      // Re-arm the world for the replay: stale messages from the aborted
      // attempt vanish, ledgers restart from a symmetric resync marker,
      // children of the aborted attempt are forgotten, and a barrier
      // increment a rank left behind when it unwound is wiped.
      for (Mailbox& mb : st.mailboxes) mb.clear();
      if (st.verify_protocol) {
        for (ProtocolLedger& ledger : st.ledgers) {
          ledger = ProtocolLedger{};
          ledger.record(ProtoOp::kBarrier, tags::kRecoveryResync, 0, attempt);
        }
        if (st.protocol_registry != nullptr) st.protocol_registry->clear();
      }
      {
        std::lock_guard<std::mutex> barrier_lock(st.barrier_mutex);
        st.barrier_arrived = 0;
      }
      {
        std::lock_guard<std::mutex> split_lock(st.split_mutex);
        st.split_children.clear();
        st.split_remaining.clear();
      }
      st.abort->reset();
    }
    ++st.recovery_epoch;
    st.recovery_arrived = 0;
    st.recovery_batch = -1;
    st.recovery_claimed = false;
    ++st.recovery_generation;
    st.recovery_cv.notify_all();
  } else {
    // Released by the coordinator; copy its verdict (the abort token may
    // already be reset, so the shared outcome is the one source of
    // truth for the cause classification too).
    out = st.recovery_outcome;
  }

  if (out.rearmed) {
    // Per-rank continue bookkeeping, each rank touching only its own
    // state: split slots restart in a fresh epoch-unique range (peer
    // split_sequence_ values diverged when they unwound at different
    // points). On retry the fault slot also advances to the next attempt
    // so `until=A` specs can heal deterministically; a quarantine skip
    // keeps the attempt so the unhealed fault stays spent (fired counts
    // only reset when the attempt changes) instead of re-firing into
    // every later batch.
    split_sequence_ = st.recovery_epoch << 32;
    if (out.retry && fault_ != nullptr) fault_->attempt = attempt + 1;
  }
  return out;
}

Comm Comm::split(int color, int key) {
  // Colors and keys legitimately differ per rank, so the ledger entry
  // carries the call only; the internal allgather is recorded separately.
  proto_record(ProtoOp::kSplit, 0, 0, 0);
  // Exchange (color, key) so every rank can compute every group locally,
  // mirroring the communication MPI_Comm_split performs.
  struct Entry {
    int color;
    int key;
    int parent_rank;
  };
  const Entry mine{color, key, rank_};
  std::vector<Entry> all = allgather<Entry>(std::span<const Entry>(&mine, 1));

  std::vector<Entry> group;
  for (const Entry& e : all) {
    if (e.color == color) group.push_back(e);
  }
  std::sort(group.begin(), group.end(), [](const Entry& a, const Entry& b) {
    return std::tie(a.key, a.parent_rank) < std::tie(b.key, b.parent_rank);
  });
  const int group_size = static_cast<int>(group.size());
  int new_rank = 0;
  for (int i = 0; i < group_size; ++i) {
    if (group[static_cast<std::size_t>(i)].parent_rank == rank_) new_rank = i;
  }

  // Get-or-create the child state for (generation, color); the last member
  // to claim it removes the registry entry.
  const std::pair<std::uint64_t, int> slot{split_sequence_, color};
  std::shared_ptr<detail::SharedState> child;
  {
    detail::SharedState& st = *state_;
    std::lock_guard<std::mutex> lock(st.split_mutex);
    auto it = st.split_children.find(slot);
    if (it == st.split_children.end()) {
      child = std::make_shared<detail::SharedState>(group_size);
      // A failure anywhere aborts every communicator: children share the
      // parent's token, deadline, and fault plan.
      child->abort = st.abort;
      child->watchdog = st.watchdog;
      child->fault_plan = st.fault_plan;
      // Verifier inheritance: the child ledgers its own collective
      // sequence (sub-communicators legitimately diverge from each
      // other — symmetry is per communicator) and registers with the
      // world's registry so the run-exit sweep reaches it.
      child->verify_protocol = st.verify_protocol;
      child->protocol_registry = st.protocol_registry;
      if (st.verify_protocol) {
        child->ledgers.resize(static_cast<std::size_t>(group_size));
        // Append-built (GCC 12 -Wrestrict FP on char* + string&&, PR 105651).
        std::string label = "split child (color=";
        label += std::to_string(color);
        label += ", parent generation=";
        label += std::to_string(split_sequence_);
        label += ")";
        child->label = std::move(label);
        if (st.protocol_registry != nullptr) {
          st.protocol_registry->register_child(child);
        }
      }
      // Children inherit the parent's node placement (child rank i sits
      // wherever its parent rank sits), so e.g. the SUMMA row/column
      // communicators keep running hierarchical broadcasts. Ids are
      // renumbered dense; a group confined to one node goes flat.
      if (st.nodes > 1) {
        std::vector<int> child_map;
        child_map.reserve(group.size());
        for (const Entry& e : group) {
          child_map.push_back(st.node_of[static_cast<std::size_t>(e.parent_rank)]);
        }
        child->set_node_map(std::move(child_map));
      }
      if (group_size > 1) {
        st.split_children.emplace(slot, child);
        st.split_remaining.emplace(slot, group_size - 1);
      }
    } else {
      child = it->second;
      int& remaining = st.split_remaining.at(slot);
      if (--remaining == 0) {
        st.split_children.erase(slot);
        st.split_remaining.erase(slot);
      }
    }
  }

  ++split_sequence_;
  // The barrier keeps successive split() calls on this communicator from
  // racing on the registry generation.
  barrier();
  return Comm(std::move(child), new_rank, counters_, fault_);
}

}  // namespace sas::bsp
