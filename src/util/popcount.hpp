// popcount.hpp — hardware-assisted population counts.
//
// The SimilarityAtScale kernel computes sᵢⱼ = Σₖ popcount(aₖᵢ ∧ aₖⱼ)
// (paper Eq. 7); these helpers are that kernel's innermost operations.
// The block kernels are written as 4-way unrolled word loops with
// independent partial accumulators so the popcount chain exposes ILP and
// the compiler can keep the whole body in registers (-O3 -march=native
// turns each lane into a single POPCNT + ADD).
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <span>

namespace sas {

/// Number of set bits in a single machine word.
[[nodiscard]] constexpr int popcount64(std::uint64_t x) noexcept {
  return std::popcount(x);
}

/// Σ popcount over a word span (used for column-cardinality vectors â).
[[nodiscard]] inline std::uint64_t popcount_sum(std::span<const std::uint64_t> words) noexcept {
  std::uint64_t total = 0;
  for (std::uint64_t w : words) total += static_cast<std::uint64_t>(std::popcount(w));
  return total;
}

/// Σ popcount(x[i] ∧ y[i]) over `len` words of two raw arrays, 4-way
/// unrolled with independent accumulators (breaks the add dependence
/// chain; ~4x ILP on POPCNT-bearing cores). The building block of
/// popcount_and_sum and of the dense stripes of the SpGEMM tile kernel.
[[nodiscard]] inline std::uint64_t popcount_and_sum_block(
    const std::uint64_t* __restrict x, const std::uint64_t* __restrict y,
    std::size_t len) noexcept {
  std::uint64_t a0 = 0;
  std::uint64_t a1 = 0;
  std::uint64_t a2 = 0;
  std::uint64_t a3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= len; i += 4) {
    a0 += static_cast<std::uint64_t>(std::popcount(x[i] & y[i]));
    a1 += static_cast<std::uint64_t>(std::popcount(x[i + 1] & y[i + 1]));
    a2 += static_cast<std::uint64_t>(std::popcount(x[i + 2] & y[i + 2]));
    a3 += static_cast<std::uint64_t>(std::popcount(x[i + 3] & y[i + 3]));
  }
  for (; i < len; ++i) {
    a0 += static_cast<std::uint64_t>(std::popcount(x[i] & y[i]));
  }
  return (a0 + a1) + (a2 + a3);
}

/// Σ popcount(x ∧ y) over two equal-length word spans — the intersection
/// cardinality of two bit-packed columns. Spans must have equal length
/// (asserted; a mismatch here means the packing layer produced columns
/// over different word-row spaces). NDEBUG builds degrade to the shorter
/// length rather than read out of bounds.
[[nodiscard]] inline std::uint64_t popcount_and_sum(std::span<const std::uint64_t> x,
                                                    std::span<const std::uint64_t> y) noexcept {
  assert(x.size() == y.size() && "popcount_and_sum: span lengths must match");
  const std::size_t len = x.size() < y.size() ? x.size() : y.size();
  return popcount_and_sum_block(x.data(), y.data(), len);
}

/// Scatter-accumulate one word against a CSR row segment:
///   acc[cols[k]] += popcount(word ∧ vals[k])   for k in [0, count).
/// `cols` entries must be unique (CSR canonical form), so the four lanes
/// of the unrolled body write disjoint slots and the compiler may reorder
/// them freely (__restrict rules out aliasing with the inputs). This is
/// the innermost operation of the CSR SpGEMM tile kernel.
inline void popcount_and_scatter(std::uint64_t word,
                                 const std::int64_t* __restrict cols,
                                 const std::uint64_t* __restrict vals,
                                 std::size_t count,
                                 std::int64_t* __restrict acc) noexcept {
  std::size_t k = 0;
  for (; k + 4 <= count; k += 4) {
    const int p0 = std::popcount(word & vals[k]);
    const int p1 = std::popcount(word & vals[k + 1]);
    const int p2 = std::popcount(word & vals[k + 2]);
    const int p3 = std::popcount(word & vals[k + 3]);
    acc[cols[k]] += p0;
    acc[cols[k + 1]] += p1;
    acc[cols[k + 2]] += p2;
    acc[cols[k + 3]] += p3;
  }
  for (; k < count; ++k) {
    acc[cols[k]] += std::popcount(word & vals[k]);
  }
}

/// Out-of-line Σ popcount(x[i] ∧ y[i]) over `len` words — identical
/// contract to popcount_and_sum_block, but defined in its own TU
/// (util/popcount_stream.cpp) so the build can compile just that file
/// with -mavx512vpopcntdq where the extension is usable for runtime data
/// (GCC 12 mis-folds the *constant* VPOPCNTQ pattern, so the flag is
/// unsafe project-wide; see the CMakeLists probe). The dense stripes of
/// the SpGEMM kernel stream through this entry point.
[[nodiscard]] std::uint64_t popcount_and_sum_stream(const std::uint64_t* x,
                                                    const std::uint64_t* y,
                                                    std::size_t len) noexcept;

/// True when popcount_and_sum_stream was compiled with a wide vector
/// popcount (callers use it to pick the sparse/dense crossover point).
[[nodiscard]] bool popcount_stream_vectorized() noexcept;

/// 2×2 register-tiled streaming popcount dot products over `len` words:
///   out = { Σ pc(x0∧y0), Σ pc(x0∧y1), Σ pc(x1∧y0), Σ pc(x1∧y1) }.
/// One pass loads each of the four columns once for FOUR output cells —
/// half the word loads of four scalar popcount_and_sum_stream calls —
/// with four independent popcount chains. Bit-identical to the scalar
/// sums (integer adds commute); the dense SpGEMM path tiles its
/// unpruned output cells through this. Lives in the same
/// runtime-data-only TU as popcount_and_sum_stream so the AVX512
/// VPOPCNTQ per-TU flag applies (see that function's note).
void popcount_and_sum_stream_2x2(const std::uint64_t* x0, const std::uint64_t* x1,
                                 const std::uint64_t* y0, const std::uint64_t* y1,
                                 std::size_t len, std::uint64_t out[4]) noexcept;

/// Out-of-line scatter-accumulate with the same contract as
/// popcount_and_scatter, defined in util/popcount_scatter.cpp — the
/// second runtime-data-only TU compiled with -mavx512vpopcntdq where the
/// probe allows it (see popcount_and_sum_stream). There the loop runs as
/// 8-lane AVX512 gather / VPOPCNTQ / scatter passes: CSR column indices
/// are unique within a row segment, so the eight scattered slots of one
/// pass never conflict. Elsewhere it falls back to the inline scalar
/// loop above. The SpGEMM scatter path and the crossover calibrator both
/// call THIS entry point, so the calibrated sparse/dense threshold
/// always reflects the scatter variant that actually runs.
void popcount_and_scatter_dispatch(std::uint64_t word, const std::int64_t* cols,
                                   const std::uint64_t* vals, std::size_t count,
                                   std::int64_t* acc) noexcept;

/// True when popcount_and_scatter_dispatch (and the 4-row form) was
/// compiled with the AVX512 gather/scatter + VPOPCNTQ path.
[[nodiscard]] bool popcount_scatter_vectorized() noexcept;

/// 4-row register-blocked variant: four L-side words scatter against the
/// same CSR row segment, updating four distinct accumulator rows:
///   accR[cols[k]] += popcount(wordR ∧ vals[k])   for R in 0..3.
/// Loading (cols[k], vals[k]) once per four updates cuts the index/mask
/// load traffic 4× versus four popcount_and_scatter passes, and the four
/// POPCNT chains are independent. The caller guarantees the accumulator
/// rows are distinct (they are distinct output rows).
inline void popcount_and_scatter_4(std::uint64_t word0, std::uint64_t word1,
                                   std::uint64_t word2, std::uint64_t word3,
                                   const std::int64_t* __restrict cols,
                                   const std::uint64_t* __restrict vals,
                                   std::size_t count,
                                   std::int64_t* __restrict acc0,
                                   std::int64_t* __restrict acc1,
                                   std::int64_t* __restrict acc2,
                                   std::int64_t* __restrict acc3) noexcept {
  for (std::size_t k = 0; k < count; ++k) {
    const std::int64_t c = cols[k];
    const std::uint64_t v = vals[k];
    acc0[c] += std::popcount(word0 & v);
    acc1[c] += std::popcount(word1 & v);
    acc2[c] += std::popcount(word2 & v);
    acc3[c] += std::popcount(word3 & v);
  }
}

/// Out-of-line 4-row scatter with the same contract as
/// popcount_and_scatter_4; lives in util/popcount_scatter.cpp alongside
/// popcount_and_scatter_dispatch (see that declaration for the dispatch
/// story). The AVX512 body loads each (cols, vals) pair once per eight
/// columns and reuses it across all four accumulator rows.
void popcount_and_scatter_4_dispatch(std::uint64_t word0, std::uint64_t word1,
                                     std::uint64_t word2, std::uint64_t word3,
                                     const std::int64_t* cols, const std::uint64_t* vals,
                                     std::size_t count, std::int64_t* acc0,
                                     std::int64_t* acc1, std::int64_t* acc2,
                                     std::int64_t* acc3) noexcept;

}  // namespace sas
