#include "baselines/minhash.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/hashing.hpp"

namespace sas::baselines {

MinHashSketch::MinHashSketch(std::span<const std::uint64_t> elements,
                             std::size_t sketch_size, std::uint64_t seed)
    : capacity_(sketch_size), seed_(seed) {
  if (sketch_size == 0) throw std::invalid_argument("MinHashSketch: size must be > 0");
  const HashFamily h(seed);
  hashes_.reserve(elements.size());
  for (std::uint64_t e : elements) hashes_.push_back(h(e));
  std::sort(hashes_.begin(), hashes_.end());
  hashes_.erase(std::unique(hashes_.begin(), hashes_.end()), hashes_.end());
  if (hashes_.size() > capacity_) hashes_.resize(capacity_);
}

MinHashSketch MinHashSketch::merge(const MinHashSketch& a, const MinHashSketch& b) {
  if (a.seed_ != b.seed_ || a.capacity_ != b.capacity_) {
    throw std::invalid_argument("MinHashSketch::merge: incompatible sketches");
  }
  MinHashSketch out;
  out.capacity_ = a.capacity_;
  out.seed_ = a.seed_;
  out.hashes_.reserve(a.hashes_.size() + b.hashes_.size());
  std::merge(a.hashes_.begin(), a.hashes_.end(), b.hashes_.begin(), b.hashes_.end(),
             std::back_inserter(out.hashes_));
  out.hashes_.erase(std::unique(out.hashes_.begin(), out.hashes_.end()),
                    out.hashes_.end());
  if (out.hashes_.size() > out.capacity_) out.hashes_.resize(out.capacity_);
  return out;
}

double MinHashSketch::estimate_jaccard(const MinHashSketch& a, const MinHashSketch& b) {
  if (a.seed_ != b.seed_ || a.capacity_ != b.capacity_) {
    throw std::invalid_argument("MinHashSketch::estimate_jaccard: incompatible sketches");
  }
  if (a.hashes_.empty() && b.hashes_.empty()) return 1.0;  // J(∅, ∅) = 1

  // Walk the merged order, counting shared elements among the s smallest
  // of the union (Mash's estimator).
  std::size_t ia = 0;
  std::size_t ib = 0;
  std::size_t taken = 0;
  std::size_t shared = 0;
  while (taken < a.capacity_ && (ia < a.hashes_.size() || ib < b.hashes_.size())) {
    if (ib >= b.hashes_.size() ||
        (ia < a.hashes_.size() && a.hashes_[ia] < b.hashes_[ib])) {
      ++ia;
    } else if (ia >= a.hashes_.size() || b.hashes_[ib] < a.hashes_[ia]) {
      ++ib;
    } else {
      ++shared;
      ++ia;
      ++ib;
    }
    ++taken;
  }
  return taken == 0 ? 1.0 : static_cast<double>(shared) / static_cast<double>(taken);
}

double mash_distance(double jaccard_estimate, int k) {
  if (jaccard_estimate <= 0.0) return 1.0;
  if (jaccard_estimate >= 1.0) return 0.0;
  const double d =
      -std::log(2.0 * jaccard_estimate / (1.0 + jaccard_estimate)) / static_cast<double>(k);
  return std::clamp(d, 0.0, 1.0);
}

std::vector<double> minhash_all_pairs(
    const std::vector<std::vector<std::uint64_t>>& samples, std::size_t sketch_size,
    std::uint64_t seed) {
  const auto n = static_cast<std::int64_t>(samples.size());
  std::vector<MinHashSketch> sketches;
  sketches.reserve(samples.size());
  for (const auto& sample : samples) {
    sketches.emplace_back(std::span<const std::uint64_t>(sample), sketch_size, seed);
  }
  std::vector<double> estimates(static_cast<std::size_t>(n * n), 1.0);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = i + 1; j < n; ++j) {
      const double e = MinHashSketch::estimate_jaccard(
          sketches[static_cast<std::size_t>(i)], sketches[static_cast<std::size_t>(j)]);
      estimates[static_cast<std::size_t>(i * n + j)] = e;
      estimates[static_cast<std::size_t>(j * n + i)] = e;
    }
  }
  return estimates;
}

}  // namespace sas::baselines
