#include "util/numa.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace sas::numa {

namespace {

/// Parse a sysfs cpulist ("0-3,8,10-11") into CPU ids. Malformed input
/// yields an empty list, which the caller treats as "node absent".
std::vector<int> parse_cpulist(const std::string& text) {
  std::vector<int> cpus;
  std::stringstream ss(text);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (token.empty()) continue;
    const auto dash = token.find('-');
    try {
      if (dash == std::string::npos) {
        cpus.push_back(std::stoi(token));
      } else {
        const int lo = std::stoi(token.substr(0, dash));
        const int hi = std::stoi(token.substr(dash + 1));
        for (int c = lo; c <= hi; ++c) cpus.push_back(c);
      }
    } catch (...) {  // sas-lint: allow(R7 malformed cpulist: empty result is the documented fallback)
      return {};
    }
  }
  return cpus;
}

Topology detect() {
  Topology topo;
#if defined(__linux__)
  for (int id = 0;; ++id) {
    std::ifstream in("/sys/devices/system/node/node" + std::to_string(id) +
                     "/cpulist");
    if (!in) break;
    std::string line;
    std::getline(in, line);
    std::vector<int> cpus = parse_cpulist(line);
    // Memory-only nodes (no CPUs) can't host workers; skip them but keep
    // scanning — node ids need not be contiguous with them present.
    if (!cpus.empty()) {
      topo.nodes.push_back(Node{id, std::move(cpus)});
    }
  }
#endif
  if (topo.nodes.empty()) {
    // Fallback: one node covering every CPU the process may use.
    Node all;
    all.id = 0;
    const unsigned n = std::max(1u, std::thread::hardware_concurrency());
    all.cpus.resize(n);
    for (unsigned c = 0; c < n; ++c) all.cpus[c] = static_cast<int>(c);
    topo.nodes.push_back(std::move(all));
  }
  return topo;
}

}  // namespace

const Topology& topology() {
  static const Topology topo = detect();
  return topo;
}

int node_count() { return topology().node_count(); }

int node_for_worker(int worker, int workers) {
  const int nodes = node_count();
  if (nodes <= 1 || workers <= 0) return 0;
  if (worker < 0) return 0;
  if (worker >= workers) return nodes - 1;
  return static_cast<int>((static_cast<std::int64_t>(worker) * nodes) / workers);
}

bool pin_to_node(int node) {
#if defined(__linux__)
  const Topology& topo = topology();
  if (!topo.multi_node()) return false;
  if (node < 0 || node >= topo.node_count()) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  for (int cpu : topo.nodes[static_cast<std::size_t>(node)].cpus) {
    if (cpu >= 0 && cpu < CPU_SETSIZE) CPU_SET(cpu, &set);
  }
  if (CPU_COUNT(&set) == 0) return false;
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)node;
  return false;
#endif
}

void first_touch_partitioned(void* data, std::size_t bytes, int workers) {
#if defined(__linux__)
  if (!topology().multi_node() || workers <= 1 || data == nullptr) return;
  const long page_long = sysconf(_SC_PAGESIZE);
  if (page_long <= 0) return;
  const auto page = static_cast<std::size_t>(page_long);
  // Page-align the interior of the buffer; anything sharing a page with
  // neighbouring allocations stays where the allocator put it.
  const auto base = reinterpret_cast<std::uintptr_t>(data);
  const std::uintptr_t lo = (base + page - 1) & ~(page - 1);
  const std::uintptr_t hi = (base + bytes) & ~(page - 1);
  if (hi <= lo || hi - lo < 4 * page) return;
  // The vector's value-initialization already faulted every page on the
  // allocating thread's node. For anonymous zero memory MADV_DONTNEED
  // drops those pages; the next touch re-faults them as zeros on the
  // toucher's node — which turns post-allocation placement back into a
  // true first-touch decision. Contents are all-zero before and after.
  if (madvise(reinterpret_cast<void*>(lo), hi - lo, MADV_DONTNEED) != 0) return;
  std::vector<std::thread> touchers;
  touchers.reserve(static_cast<std::size_t>(workers));
  const std::size_t span = hi - lo;
  for (int w = 0; w < workers; ++w) {
    const std::uintptr_t begin =
        lo + ((span * static_cast<std::size_t>(w) / static_cast<std::size_t>(workers)) &
              ~(page - 1));
    const std::uintptr_t end =
        w + 1 == workers
            ? hi
            : lo + ((span * static_cast<std::size_t>(w + 1) /
                     static_cast<std::size_t>(workers)) &
                    ~(page - 1));
    if (end <= begin) continue;
    touchers.emplace_back([w, workers, begin, end, page] {
      pin_to_node(node_for_worker(w, workers));
      for (std::uintptr_t p = begin; p < end; p += page) {
        *reinterpret_cast<volatile char*>(p) = 0;
      }
    });
  }
  for (auto& t : touchers) t.join();
#else
  (void)data;
  (void)bytes;
  (void)workers;
#endif
}

}  // namespace sas::numa
