// csr.hpp — Compressed Sparse Row storage with byte accounting.
//
// The paper's bitmask argument (§III-B) is a *storage* argument: "In the
// CSR layout, the same amount of meta-data is necessary to store each
// 'row start' count. We reduce the latter overhead ... reducing the
// number of rows (and consequently row-start counts in the CSR
// representation) by b." CsrMatrix makes that claim measurable: it
// converts the canonical triplet form to CSR and reports exactly how
// many bytes go to row starts vs column indices vs values, which
// bench/ablation_bitmask reads off directly.
//
// Two CSR forms live here:
//   * CsrMatrix  — the general, accounting-oriented form (storage bytes,
//     row slicing, triplet round-trips) used by the §III-B ablation.
//   * CsrPanel   — the SpGEMM hot-path form: a panel of the bit-packed
//     indicator matrix built ONCE per received panel, with row starts
//     indexed over word-rows and the column indices / word masks split
//     into two contiguous (SoA) arrays. The tiled popcount kernel in
//     spgemm.cpp streams those flat arrays instead of re-scanning
//     24-byte triplet runs on every multiply.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "distmat/sparse_block.hpp"
#include "distmat/triplet.hpp"

namespace sas::distmat {

template <typename T>
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Build from canonical triplets (sorted by (row, col), unique coords).
  static CsrMatrix from_triplets(std::int64_t rows, std::int64_t cols,
                                 std::span<const Triplet<T>> entries) {
    CsrMatrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.row_ptr_.assign(static_cast<std::size_t>(rows) + 1, 0);
    m.col_idx_.reserve(entries.size());
    m.values_.reserve(entries.size());
    for (const Triplet<T>& t : entries) {
      ++m.row_ptr_[static_cast<std::size_t>(t.row) + 1];
      m.col_idx_.push_back(t.col);
      m.values_.push_back(t.value);
    }
    for (std::size_t r = 1; r < m.row_ptr_.size(); ++r) {
      m.row_ptr_[r] += m.row_ptr_[r - 1];
    }
    return m;
  }

  [[nodiscard]] std::int64_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::int64_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::int64_t nnz() const noexcept {
    return static_cast<std::int64_t>(values_.size());
  }

  /// Column indices of row r.
  [[nodiscard]] std::span<const std::int64_t> row_columns(std::int64_t r) const {
    const auto begin = static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(r)]);
    const auto end = static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(r) + 1]);
    return {col_idx_.data() + begin, end - begin};
  }

  /// Values of row r (parallel to row_columns(r)).
  [[nodiscard]] std::span<const T> row_values(std::int64_t r) const {
    const auto begin = static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(r)]);
    const auto end = static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(r) + 1]);
    return {values_.data() + begin, end - begin};
  }

  /// Round-trip back to canonical triplets.
  [[nodiscard]] std::vector<Triplet<T>> to_triplets() const {
    std::vector<Triplet<T>> out;
    out.reserve(values_.size());
    for (std::int64_t r = 0; r < rows_; ++r) {
      const auto columns = row_columns(r);
      const auto vals = row_values(r);
      for (std::size_t i = 0; i < columns.size(); ++i) {
        out.push_back({r, columns[i], vals[i]});
      }
    }
    return out;
  }

  /// Storage accounting (the §III-B trade-off, in bytes).
  struct StorageBytes {
    std::uint64_t row_starts = 0;  ///< (rows+1) × 8 — what the bitmask divides by b
    std::uint64_t col_indices = 0; ///< nnz × 8
    std::uint64_t values = 0;      ///< nnz × sizeof(T)
    [[nodiscard]] std::uint64_t total() const noexcept {
      return row_starts + col_indices + values;
    }
  };

  [[nodiscard]] StorageBytes storage() const noexcept {
    StorageBytes s;
    s.row_starts = (static_cast<std::uint64_t>(rows_) + 1) * sizeof(std::int64_t);
    s.col_indices = static_cast<std::uint64_t>(nnz()) * sizeof(std::int64_t);
    s.values = static_cast<std::uint64_t>(nnz()) * sizeof(T);
    return s;
  }

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::vector<std::int64_t> row_ptr_;
  std::vector<std::int64_t> col_idx_;
  std::vector<T> values_;
};

/// Column-major densified form of a CsrPanel over its first `words`
/// word-rows: column c occupies data[c·words, (c+1)·words) with absent
/// rows zero. Operand of the SpGEMM dense-block path, where every output
/// cell is one store-free streaming popcount dot product.
struct DenseColumnPanel {
  std::int64_t words = 0;
  std::vector<std::uint64_t> data;

  [[nodiscard]] const std::uint64_t* column(std::int64_t c) const noexcept {
    return data.data() + static_cast<std::size_t>(c * words);
  }
};

/// Read-optimized CSR panel of the bit-packed indicator matrix — the
/// operand format of the tiled SpGEMM kernel. Only OCCUPIED word-rows
/// are indexed (sorted row_ids + compact row_ptr): the unfiltered
/// hypersparse regime has nominal row spaces of 10¹²⁺ word-rows with a
/// few thousand occupied, so a dense rows+1 pointer array is neither
/// affordable nor useful. Invariants (inherited from the SparseBlock
/// canonical form): row_ids strictly increasing, column indices strictly
/// increasing within each row, values parallel to col_idx. Built once
/// per panel; the kernels only ever read it.
struct CsrPanel {
  std::int64_t rows = 0;  ///< nominal word-rows spanned by the panel
  std::int64_t cols = 0;  ///< sample columns spanned by the panel
  std::vector<std::int64_t> row_ids;    ///< occupied word-rows, ascending
  std::vector<std::int64_t> row_ptr;    ///< size row_ids.size()+1
  std::vector<std::int64_t> col_idx;    ///< size nnz, sorted within rows
  std::vector<std::uint64_t> values;    ///< size nnz, parallel to col_idx

  [[nodiscard]] std::int64_t nnz() const noexcept {
    return static_cast<std::int64_t>(values.size());
  }
  [[nodiscard]] bool empty() const noexcept { return values.empty(); }

  /// Number of occupied word-rows.
  [[nodiscard]] std::int64_t occupied() const noexcept {
    return static_cast<std::int64_t>(row_ids.size());
  }
  /// Word-row id of the k-th occupied row.
  [[nodiscard]] std::int64_t row_id(std::int64_t k) const noexcept {
    return row_ids[static_cast<std::size_t>(k)];
  }
  /// Entry range of the k-th occupied row into col_idx/values.
  [[nodiscard]] std::int64_t row_begin(std::int64_t k) const noexcept {
    return row_ptr[static_cast<std::size_t>(k)];
  }
  [[nodiscard]] std::int64_t row_end(std::int64_t k) const noexcept {
    return row_ptr[static_cast<std::size_t>(k) + 1];
  }
  [[nodiscard]] std::int64_t row_nnz(std::int64_t k) const noexcept {
    return row_end(k) - row_begin(k);
  }

  /// Build from canonical triplets (sorted by (row, col), unique coords,
  /// rows in [0, rows)). One pass; cost is O(nnz), independent of `rows`.
  [[nodiscard]] static CsrPanel from_triplets(std::int64_t rows, std::int64_t cols,
                                              std::span<const Triplet<std::uint64_t>> entries) {
    CsrPanel p;
    p.rows = rows;
    p.cols = cols;
    p.col_idx.reserve(entries.size());
    p.values.reserve(entries.size());
    for (const Triplet<std::uint64_t>& t : entries) {
      if (p.row_ids.empty() || p.row_ids.back() != t.row) {
        p.row_ids.push_back(t.row);
        p.row_ptr.push_back(static_cast<std::int64_t>(p.col_idx.size()));
      }
      p.col_idx.push_back(t.col);
      p.values.push_back(t.value);
    }
    p.row_ptr.push_back(static_cast<std::int64_t>(p.col_idx.size()));
    return p;
  }

  /// Build from a canonical SparseBlock (the post-redistribution form).
  [[nodiscard]] static CsrPanel from_block(const SparseBlock& block) {
    return from_triplets(block.rows, block.cols,
                         std::span<const Triplet<std::uint64_t>>(block.entries));
  }

  /// Lazily densified column-major form over the first `words` word-rows,
  /// memoized so the loop-invariant L panel of the ring is densified once
  /// per batch rather than once per step (all ring panels share the same
  /// word-row space, so `words` is stable across steps). Not thread-safe:
  /// the SpGEMM kernel densifies before spawning its tile workers.
  [[nodiscard]] const DenseColumnPanel& dense_columns(std::int64_t words) const {
    if (dense_cache_.words != words || dense_cache_.data.empty()) {
      dense_cache_.words = words;
      dense_cache_.data.assign(static_cast<std::size_t>(words * cols), 0);
      for (std::int64_t k = 0; k < occupied(); ++k) {
        const std::int64_t r = row_id(k);
        if (r >= words) break;  // taller panel than the shared row space
        for (std::int64_t e = row_begin(k); e < row_end(k); ++e) {
          dense_cache_.data[static_cast<std::size_t>(
              col_idx[static_cast<std::size_t>(e)] * words + r)] =
              values[static_cast<std::size_t>(e)];
        }
      }
    }
    return dense_cache_;
  }

 private:
  mutable DenseColumnPanel dense_cache_;
};

}  // namespace sas::distmat
