// test_integration.cpp — cross-module, end-to-end scenarios:
//  * FASTA files on disk → GenomeAtScale → matrix matching the exact
//    single-node baseline on the same k-mer sets,
//  * evolved populations → distances tracking the mutation model, feeding
//    neighbor joining and clustering that recover the planted structure,
//  * PHYLIP export of a real pipeline result,
//  * the three computation paths (driver, MapReduce baseline, exact
//    pairwise) agreeing on identical genomic inputs,
//  * the gas CLI's failure-taxonomy exit codes, driven against the real
//    binary (GAS_BIN, set by ctest) — skipped when GAS_BIN is unset.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "analysis/clustering.hpp"
#include "analysis/neighbor_joining.hpp"
#include "baselines/exact_pairwise.hpp"
#include "baselines/mapreduce_jaccard.hpp"
#include "core/driver.hpp"
#include "genome/genome_at_scale.hpp"
#include "genome/kmer_source.hpp"
#include "genome/kmer_spectrum.hpp"
#include "genome/phylip.hpp"
#include "genome/synthetic.hpp"
#include "util/rng.hpp"

namespace sas {
namespace {

namespace fs = std::filesystem;

genome::GenomeAtScaleOptions small_options(int k) {
  genome::GenomeAtScaleOptions options;
  options.k = k;
  options.ranks = 4;
  options.core.batch_count = 3;
  return options;
}

TEST(Integration, FastaFilesToSimilarityMatrix) {
  // Three related genomes written as FASTA files, processed end-to-end.
  Rng rng(42);
  const std::string base = genome::random_genome(8000, rng);
  const std::vector<std::string> genomes{
      base, genome::mutate_point(base, 0.01, rng), genome::mutate_point(base, 0.2, rng)};

  const fs::path dir = fs::temp_directory_path() / "sas_integration_fasta";
  fs::create_directories(dir);
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < genomes.size(); ++i) {
    const fs::path path = dir / ("sample" + std::to_string(i) + ".fa");
    genome::write_fasta_file(path.string(),
                             {{"g" + std::to_string(i), "", genomes[i]}});
    paths.push_back(path.string());
  }

  const auto result = genome::run_genome_at_scale_fasta(paths, small_options(17));
  ASSERT_EQ(result.sample_names.size(), 3u);
  EXPECT_EQ(result.sample_names[0], "sample0");

  // Cross-check against the exact baseline on the same k-mer sets.
  const genome::KmerCodec codec(17);
  std::vector<std::vector<std::uint64_t>> sets;
  for (const auto& g : genomes) {
    sets.push_back(genome::build_sample("s", {{"r", "", g}}, codec).kmers);
  }
  const auto exact = baselines::exact_all_pairs(sets);
  EXPECT_EQ(result.similarity.max_abs_diff(exact), 0.0);

  // The closer mutant must be more similar.
  EXPECT_GT(result.similarity.similarity(0, 1), result.similarity.similarity(0, 2));
  fs::remove_all(dir);
}

TEST(Integration, MutationModelShapesTheMatrix) {
  Rng rng(77);
  const int k = 15;
  const std::string base = genome::random_genome(40000, rng);
  const std::vector<double> targets{0.9, 0.6, 0.3};
  const genome::KmerCodec codec(k);
  std::vector<genome::KmerSample> samples{
      genome::build_sample("base", {{"g", "", base}}, codec)};
  for (double target : targets) {
    const double rate = genome::mutation_rate_for_jaccard(k, target);
    samples.push_back(genome::build_sample(
        "m" + std::to_string(target),
        {{"g", "", genome::mutate_point(base, rate, rng)}}, codec));
  }
  const auto result = genome::run_genome_at_scale(samples, small_options(k));
  for (std::size_t t = 0; t < targets.size(); ++t) {
    EXPECT_NEAR(result.similarity.similarity(0, static_cast<std::int64_t>(t) + 1),
                targets[t], 0.08)
        << "target " << targets[t];
  }
}

TEST(Integration, EvolvedPopulationClustersAndTreeStructure) {
  Rng rng(123);
  // Two well-separated clades: evolve two ancestors independently.
  const std::string ancestor_a = genome::random_genome(12000, rng);
  const std::string ancestor_b = genome::random_genome(12000, rng);
  const auto clade_a = genome::evolve_population(ancestor_a, 3, 0.005, rng);
  const auto clade_b = genome::evolve_population(ancestor_b, 3, 0.005, rng);

  const genome::KmerCodec codec(15);
  std::vector<genome::KmerSample> samples;
  std::vector<std::string> names;
  for (const auto& g : clade_a.leaf_genomes) {
    names.push_back("a" + std::to_string(samples.size()));
    samples.push_back(genome::build_sample(names.back(), {{"g", "", g}}, codec));
  }
  for (const auto& g : clade_b.leaf_genomes) {
    names.push_back("b" + std::to_string(samples.size()));
    samples.push_back(genome::build_sample(names.back(), {{"g", "", g}}, codec));
  }

  const auto result = genome::run_genome_at_scale(samples, small_options(15));
  const auto distances = result.similarity.distance_matrix();

  // Clustering recovers the two clades.
  const auto merges = analysis::hierarchical_cluster(distances, 6, analysis::Linkage::kAverage);
  const auto labels = analysis::cut_dendrogram(merges, 6, 2);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[0], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_EQ(labels[3], labels[5]);
  EXPECT_NE(labels[0], labels[3]);

  // Neighbor joining: the two clades must be separated in the tree (all
  // within-clade cophenetic distances below every cross-clade one).
  const auto tree = analysis::neighbor_joining(distances, names);
  const auto leaves = tree.leaves();
  const auto coph = tree.cophenetic_distances();
  std::vector<int> clade_of(leaves.size());
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    clade_of[i] = tree.node(leaves[i]).name[0] == 'a' ? 0 : 1;
  }
  double max_within = 0.0;
  double min_across = 1e9;
  const auto nl = static_cast<std::int64_t>(leaves.size());
  for (std::int64_t i = 0; i < nl; ++i) {
    for (std::int64_t j = i + 1; j < nl; ++j) {
      const double d = coph[static_cast<std::size_t>(i * nl + j)];
      if (clade_of[static_cast<std::size_t>(i)] == clade_of[static_cast<std::size_t>(j)]) {
        max_within = std::max(max_within, d);
      } else {
        min_across = std::min(min_across, d);
      }
    }
  }
  EXPECT_LT(max_within, min_across);
}

TEST(Integration, PhylipExportOfPipelineResult) {
  Rng rng(5);
  const std::string base = genome::random_genome(5000, rng);
  const genome::KmerCodec codec(13);
  std::vector<genome::KmerSample> samples;
  for (int i = 0; i < 4; ++i) {
    samples.push_back(genome::build_sample(
        "s" + std::to_string(i),
        {{"g", "", genome::mutate_point(base, 0.02 * i, rng)}}, codec));
  }
  const auto result = genome::run_genome_at_scale(samples, small_options(13));

  const fs::path path = fs::temp_directory_path() / "sas_integration.phylip";
  genome::write_phylip_file(path.string(), result.sample_names,
                            result.similarity.distance_matrix(), 4);
  std::ifstream in(path);
  const auto parsed = genome::read_phylip(in);
  EXPECT_EQ(parsed.n, 4);
  EXPECT_EQ(parsed.names, result.sample_names);
  for (std::int64_t i = 0; i < 4; ++i) {
    for (std::int64_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(parsed.distances[static_cast<std::size_t>(i * 4 + j)],
                  result.similarity.distance(i, j), 1e-6);
    }
  }
  fs::remove(path);
}

TEST(Integration, AllThreeComputationPathsAgree) {
  Rng rng(31);
  const std::string base = genome::random_genome(6000, rng);
  const genome::KmerCodec codec(13);
  std::vector<genome::KmerSample> samples;
  std::vector<std::vector<std::uint64_t>> sets;
  for (int i = 0; i < 6; ++i) {
    samples.push_back(genome::build_sample(
        "s" + std::to_string(i),
        {{"g", "", genome::mutate_point(base, 0.01 * i, rng)}}, codec));
    sets.push_back(samples.back().kmers);
  }
  genome::KmerSampleSource source(13, samples);

  core::Config cfg;
  cfg.batch_count = 2;
  const auto driver = core::similarity_at_scale_threaded(6, source, cfg);
  const auto mapreduce = baselines::mapreduce_jaccard_threaded(6, source, 2);
  const auto exact = baselines::exact_all_pairs(sets);

  EXPECT_EQ(driver.similarity.max_abs_diff(exact), 0.0);
  EXPECT_EQ(mapreduce.max_abs_diff(exact), 0.0);
}

TEST(Integration, FastqReadsThroughFullPipeline) {
  // Raw sequencing reads (FASTQ, with errors) -> spectrum threshold ->
  // distributed similarity: the Part I -> Part II path of Fig. 1 on the
  // read-level input the real corpora consist of.
  Rng rng(2021);
  const int k = 15;
  const genome::KmerCodec codec(k);
  const std::string base = genome::random_genome(9000, rng);
  const std::vector<std::string> genomes{base, genome::mutate_point(base, 0.02, rng),
                                         genome::random_genome(9000, rng)};

  const fs::path dir = fs::temp_directory_path() / "sas_integration_fastq";
  fs::create_directories(dir);
  std::vector<genome::KmerSample> samples;
  for (std::size_t g = 0; g < genomes.size(); ++g) {
    auto reads = genome::simulate_reads(genomes[g], 90, 25.0, 0.004, rng);
    // Write + re-read as FASTQ to exercise the format path.
    const fs::path path = dir / ("s" + std::to_string(g) + ".fq");
    {
      std::ofstream out(path);
      for (const auto& read : reads) {
        out << '@' << read.id << '\n'
            << read.sequence << "\n+\n"
            << std::string(read.sequence.size(), 'I') << '\n';
      }
    }
    const auto parsed = genome::read_fastq_file(path.string());
    ASSERT_EQ(parsed.size(), reads.size());
    const int threshold =
        genome::suggest_min_count(genome::build_spectrum(parsed, codec));
    EXPECT_GT(threshold, 1);  // noisy reads must trigger a real cutoff
    samples.push_back(genome::build_sample("s" + std::to_string(g), parsed, codec,
                                           threshold));
  }

  genome::GenomeAtScaleOptions options;
  options.k = k;
  options.ranks = 4;
  options.core.batch_count = 3;
  const auto result = genome::run_genome_at_scale(samples, options);
  // Related pair clearly more similar than the unrelated one, and close
  // to the mutation model despite sequencing noise.
  EXPECT_GT(result.similarity.similarity(0, 1), 0.3);
  EXPECT_LT(result.similarity.similarity(0, 2), 0.05);
  EXPECT_NEAR(result.similarity.similarity(0, 1),
              genome::expected_jaccard_after_mutation(k, 0.02), 0.12);
  fs::remove_all(dir);
}

TEST(Integration, FileBackedSourceMatchesInMemory) {
  Rng rng(64);
  const genome::KmerCodec codec(11);
  const fs::path dir = fs::temp_directory_path() / "sas_integration_samples";
  fs::create_directories(dir);
  std::vector<genome::KmerSample> samples;
  std::vector<std::string> paths;
  for (int i = 0; i < 3; ++i) {
    samples.push_back(genome::build_sample(
        "s" + std::to_string(i), {{"g", "", genome::random_genome(2000, rng)}}, codec));
    const fs::path path = dir / ("s" + std::to_string(i) + ".kmers");
    genome::write_sample_file(path.string(), samples.back());
    paths.push_back(path.string());
  }
  const genome::KmerFileSource from_files(11, paths);
  const genome::KmerSampleSource in_memory(11, samples);

  const auto a = core::similarity_at_scale_threaded(2, from_files, core::Config{});
  const auto b = core::similarity_at_scale_threaded(2, in_memory, core::Config{});
  EXPECT_EQ(a.similarity.max_abs_diff(b.similarity), 0.0);
  fs::remove_all(dir);
}

// ------------------------------------------------------ gas CLI exit codes
//
// The error taxonomy doubles as the gas process exit code (0 ok,
// 1 generic, 2 config/usage, 3 corrupt input, 4 rank failure, 5 watchdog
// timeout). These tests exercise the REAL binary end-to-end: ctest
// exports its path as GAS_BIN; when absent (manual runs of the bare test
// executable) the tests skip rather than fail.

struct CommandResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr interleaved
};

CommandResult run_command(const std::string& command) {
  CommandResult result;
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[4096];
  while (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    result.output += buffer;
  }
  const int status = pclose(pipe);
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  return result;
}

/// A tiny on-disk corpus for driving the binary: three k=11 samples.
class GasCli : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* bin = std::getenv("GAS_BIN");
    if (bin == nullptr || *bin == '\0') {
      GTEST_SKIP() << "GAS_BIN not set (run via ctest)";
    }
    bin_ = bin;
    dir_ = fs::temp_directory_path() /
           ("sas_gas_cli_" +
            std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    Rng rng(77);
    const genome::KmerCodec codec(11);
    for (int i = 0; i < 3; ++i) {
      const auto sample = genome::build_sample(
          "s" + std::to_string(i), {{"g", "", genome::random_genome(2000, rng)}},
          codec);
      const fs::path path = dir_ / ("s" + std::to_string(i) + ".kmers");
      genome::write_sample_file(path.string(), sample);
      samples_ += " " + path.string();
    }
  }
  void TearDown() override {
    if (!dir_.empty()) fs::remove_all(dir_);
  }

  std::string dist(const std::string& extra) const {
    return bin_ + " dist" + samples_ + " --k 11 --ranks 2 --batches 3 " + extra;
  }

  std::string bin_;
  fs::path dir_;
  std::string samples_;  // " path0 path1 path2"
};

TEST_F(GasCli, CleanRunExitsZero) {
  const auto result = run_command(dist("--algorithm ring"));
  EXPECT_EQ(result.exit_code, 0) << result.output;
}

TEST_F(GasCli, UsageErrorsExitWithConfigCode) {
  EXPECT_EQ(run_command(dist("--algorithm bogus")).exit_code, 2);
  EXPECT_EQ(run_command(dist("--resume")).exit_code, 2);  // no --checkpoint
  EXPECT_EQ(run_command(dist("--watchdog-ms -5")).exit_code, 2);
  EXPECT_EQ(run_command(dist("--fault-plan rank=0:op=zero:throw")).exit_code, 2);
}

TEST_F(GasCli, MissingInputExitsWithConfigCode) {
  // A nonexistent input path is a usage error, not an unclassified
  // failure: loaders throw error::ConfigError since the typed-error
  // migration (lint rule R3), so the CLI reports the config code.
  const auto result =
      run_command(bin_ + " dist /nonexistent/a.kmers /nonexistent/b.kmers --k 11");
  EXPECT_EQ(result.exit_code, 2) << result.output;
}

TEST_F(GasCli, CorruptPersistedSketchExitsWithCorruptCode) {
  // An EXISTING but malformed persisted sketch blob must abort the run
  // with the corrupt-input code — silently re-sketching would mask rot.
  {
    std::ofstream blob(dir_ / "s0.kmers.minhash.sketch", std::ios::binary);
    blob << "\xff\xff\xff\xff\xff\xff\xff\xff";  // one word, bad magic
  }
  const auto result = run_command(dist("--estimator minhash --algorithm ring"));
  EXPECT_EQ(result.exit_code, 3) << result.output;
  EXPECT_NE(result.output.find("sketch"), std::string::npos) << result.output;
}

TEST_F(GasCli, InjectedFaultExitsWithRankFailureCode) {
  const auto result =
      run_command(dist("--algorithm ring --fault-plan rank=1:op=2:throw"));
  EXPECT_EQ(result.exit_code, 4) << result.output;
  EXPECT_NE(result.output.find("fault injection"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("rank 1"), std::string::npos) << result.output;
}

TEST_F(GasCli, WatchdogExpiryExitsWithTimeoutCode) {
  // Rank 1 sleeps through its first op; rank 0 blocks waiting on it past
  // the 150 ms deadline. The report must name the blocked primitive.
  const auto result = run_command(
      dist("--algorithm ring --watchdog-ms 150 --fault-plan rank=1:op=0:delay=2000"));
  EXPECT_EQ(result.exit_code, 5) << result.output;
  EXPECT_NE(result.output.find("watchdog"), std::string::npos) << result.output;
}

TEST_F(GasCli, CheckpointResumeReproducesUninterruptedRun) {
  const fs::path ref_tsv = dir_ / "ref.tsv";
  const fs::path resumed_tsv = dir_ / "resumed.tsv";
  const fs::path ckpt = dir_ / "ckpt";

  const auto reference =
      run_command(dist("--algorithm ring --tsv " + ref_tsv.string()));
  ASSERT_EQ(reference.exit_code, 0) << reference.output;

  // Kill the checkpointed run mid-flight, then resume it to completion.
  const auto killed = run_command(dist("--algorithm ring --checkpoint " +
                                       ckpt.string() +
                                       " --fault-plan rank=1:op=6:throw"));
  ASSERT_EQ(killed.exit_code, 4) << killed.output;
  const auto resumed = run_command(dist("--algorithm ring --checkpoint " +
                                        ckpt.string() + " --resume --tsv " +
                                        resumed_tsv.string()));
  ASSERT_EQ(resumed.exit_code, 0) << resumed.output;

  const auto slurp = [](const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };
  const std::string ref_bytes = slurp(ref_tsv);
  ASSERT_FALSE(ref_bytes.empty());
  EXPECT_EQ(ref_bytes, slurp(resumed_tsv));
}

}  // namespace
}  // namespace sas
