// timer.hpp — wall-clock timing and batch-time statistics.
//
// The paper reports per-batch means with 95% confidence intervals under a
// normality assumption (Fig. 2 caption); StatAccumulator reproduces that
// reporting convention, including the warm-up skip (3 of 11 batches).
#pragma once

#include <chrono>
#include <cmath>
#include <cstddef>
#include <vector>

namespace sas {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates sample values (e.g., per-batch times) and reports the
/// mean, standard deviation, and a 95% normal confidence half-width —
/// matching the paper's Fig. 2 reporting.
class StatAccumulator {
 public:
  void add(double value) {
    values_.push_back(value);
    sum_ += value;
    sum_sq_ += value * value;
  }

  [[nodiscard]] std::size_t count() const noexcept { return values_.size(); }
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }

  [[nodiscard]] double mean() const {
    return values_.empty() ? 0.0 : sum_ / static_cast<double>(values_.size());
  }

  [[nodiscard]] double min() const {
    double m = values_.empty() ? 0.0 : values_.front();
    for (double v : values_) m = v < m ? v : m;
    return m;
  }

  [[nodiscard]] double max() const {
    double m = values_.empty() ? 0.0 : values_.front();
    for (double v : values_) m = v > m ? v : m;
    return m;
  }

  /// Sample standard deviation (n−1 denominator).
  [[nodiscard]] double stddev() const {
    const auto n = static_cast<double>(values_.size());
    if (values_.size() < 2) return 0.0;
    const double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1.0);
    return var > 0.0 ? std::sqrt(var) : 0.0;
  }

  /// Half-width of the 95% confidence interval for the mean, assuming
  /// normally distributed samples (z = 1.96), as in the paper.
  [[nodiscard]] double ci95_halfwidth() const {
    if (values_.size() < 2) return 0.0;
    return 1.96 * stddev() / std::sqrt(static_cast<double>(values_.size()));
  }

  [[nodiscard]] const std::vector<double>& values() const noexcept { return values_; }

 private:
  std::vector<double> values_;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

}  // namespace sas
