#include "core/similarity_matrix.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace sas::core {

SimilarityMatrix::SimilarityMatrix(std::int64_t n, std::vector<double> values)
    : n_(n), values_(std::move(values)) {
  if (static_cast<std::int64_t>(values_.size()) != n * n) {
    throw std::invalid_argument("SimilarityMatrix: values size must be n*n");
  }
}

std::vector<double> SimilarityMatrix::distance_matrix() const {
  std::vector<double> d(values_.size());
  for (std::size_t i = 0; i < values_.size(); ++i) d[i] = 1.0 - values_[i];
  return d;
}

double SimilarityMatrix::max_abs_diff(const SimilarityMatrix& other) const {
  if (other.n_ != n_) {
    throw std::invalid_argument("SimilarityMatrix::max_abs_diff: size mismatch");
  }
  double worst = 0.0;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    const double diff = std::fabs(values_[i] - other.values_[i]);
    if (diff > worst) worst = diff;
  }
  return worst;
}

namespace {

/// Keys must be sorted, unique, upper (i < j) pairs within [0, n).
void check_pair_map(std::int64_t n, const std::vector<std::uint64_t>& keys,
                    const std::vector<double>& values, const char* what) {
  if (keys.size() != values.size()) {
    throw std::invalid_argument(std::string("SparseSimilarity: ") + what +
                                " keys/values length mismatch");
  }
  for (std::size_t s = 0; s < keys.size(); ++s) {
    if (s > 0 && keys[s] <= keys[s - 1]) {
      throw std::invalid_argument(std::string("SparseSimilarity: ") + what +
                                  " keys must be sorted and unique");
    }
    const auto [i, j] = SparseSimilarity::unpack_pair(keys[s]);
    if (i < 0 || j <= i || j >= n) {
      throw std::invalid_argument(std::string("SparseSimilarity: ") + what +
                                  " pair out of range");
    }
  }
}

/// Value of `key` in a sorted (keys, values) map, or `fallback`.
double lookup(const std::vector<std::uint64_t>& keys, const std::vector<double>& values,
              std::uint64_t key, double fallback) noexcept {
  const auto it = std::lower_bound(keys.begin(), keys.end(), key);
  if (it == keys.end() || *it != key) return fallback;
  return values[static_cast<std::size_t>(it - keys.begin())];
}

}  // namespace

SparseSimilarity::SparseSimilarity(std::int64_t n,
                                   std::vector<std::uint64_t> survivor_keys,
                                   std::vector<double> survivor_values,
                                   std::vector<std::uint64_t> estimate_keys,
                                   std::vector<double> estimate_values,
                                   std::vector<std::int64_t> ahat)
    : n_(n),
      survivor_keys_(std::move(survivor_keys)),
      survivor_values_(std::move(survivor_values)),
      estimate_keys_(std::move(estimate_keys)),
      estimate_values_(std::move(estimate_values)),
      ahat_(std::move(ahat)) {
  if (n_ < 0) throw std::invalid_argument("SparseSimilarity: negative n");
  check_pair_map(n_, survivor_keys_, survivor_values_, "survivor");
  check_pair_map(n_, estimate_keys_, estimate_values_, "estimate");
  // The two maps must be disjoint: a survivor carries its exact value
  // and must not reappear as an estimate (a corrupted SASP file would
  // otherwise surface the same pair twice in the pair walks).
  for (std::size_t s = 0, e = 0; s < survivor_keys_.size() && e < estimate_keys_.size();) {
    if (survivor_keys_[s] < estimate_keys_[e]) {
      ++s;
    } else if (estimate_keys_[e] < survivor_keys_[s]) {
      ++e;
    } else {
      throw std::invalid_argument(
          "SparseSimilarity: pair present in both survivor and estimate maps");
    }
  }
  if (!ahat_.empty() && static_cast<std::int64_t>(ahat_.size()) != n_) {
    throw std::invalid_argument("SparseSimilarity: ahat must be empty or length n");
  }
}

std::uint64_t SparseSimilarity::pack_pair(std::int64_t i, std::int64_t j) {
  if (i < 0 || j <= i || j >= (std::int64_t{1} << 31)) {
    throw std::invalid_argument("SparseSimilarity::pack_pair: need 0 <= i < j < 2^31");
  }
  return (static_cast<std::uint64_t>(i) << 32) | static_cast<std::uint64_t>(j);
}

bool SparseSimilarity::is_survivor(std::int64_t i, std::int64_t j) const noexcept {
  if (i == j) return false;
  const std::uint64_t key = (static_cast<std::uint64_t>(std::min(i, j)) << 32) |
                            static_cast<std::uint64_t>(std::max(i, j));
  return std::binary_search(survivor_keys_.begin(), survivor_keys_.end(), key);
}

double SparseSimilarity::similarity(std::int64_t i, std::int64_t j) const noexcept {
  if (i == j) return 1.0;  // J(X, X) = 1, including the J(∅, ∅) convention
  const std::uint64_t key = (static_cast<std::uint64_t>(std::min(i, j)) << 32) |
                            static_cast<std::uint64_t>(std::max(i, j));
  const auto it = std::lower_bound(survivor_keys_.begin(), survivor_keys_.end(), key);
  if (it != survivor_keys_.end() && *it == key) {
    return survivor_values_[static_cast<std::size_t>(it - survivor_keys_.begin())];
  }
  return lookup(estimate_keys_, estimate_values_, key, 0.0);
}

SimilarityMatrix SparseSimilarity::to_dense() const {
  if (n_ > 0 &&
      static_cast<std::uint64_t>(n_) >
          std::numeric_limits<std::size_t>::max() / sizeof(double) /
              static_cast<std::uint64_t>(n_)) {
    throw std::length_error("SparseSimilarity::to_dense: n*n doubles overflow");
  }
  std::vector<double> full(static_cast<std::size_t>(n_ * n_), 0.0);
  for (std::int64_t i = 0; i < n_; ++i) full[static_cast<std::size_t>(i * n_ + i)] = 1.0;
  const auto scatter = [&](const std::vector<std::uint64_t>& keys,
                           const std::vector<double>& values) {
    for (std::size_t s = 0; s < keys.size(); ++s) {
      const auto [i, j] = unpack_pair(keys[s]);
      full[static_cast<std::size_t>(i * n_ + j)] = values[s];
      full[static_cast<std::size_t>(j * n_ + i)] = values[s];
    }
  };
  scatter(estimate_keys_, estimate_values_);
  scatter(survivor_keys_, survivor_values_);  // survivors win over estimates
  return SimilarityMatrix(n_, std::move(full));
}

std::uint64_t SparseSimilarity::resident_bytes() const noexcept {
  return static_cast<std::uint64_t>(
      survivor_keys_.capacity() * sizeof(std::uint64_t) +
      survivor_values_.capacity() * sizeof(double) +
      estimate_keys_.capacity() * sizeof(std::uint64_t) +
      estimate_values_.capacity() * sizeof(double) +
      ahat_.capacity() * sizeof(std::int64_t));
}

}  // namespace sas::core
