// test_distmat.cpp — the mini-Cyclops layer: block partitioning, triplet
// normalization, the distributed filter, processor grids, redistribution,
// and all SpGEMM variants against a brute-force dense reference.
#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <set>
#include <vector>

#include "bsp/runtime.hpp"
#include "distmat/block.hpp"
#include "distmat/csr.hpp"
#include "distmat/dist_filter.hpp"
#include "distmat/gather.hpp"
#include "distmat/proc_grid.hpp"
#include "distmat/redistribute.hpp"
#include "distmat/spgemm.hpp"
#include "util/error.hpp"
#include "util/popcount.hpp"
#include "util/rng.hpp"

namespace sas::distmat {
namespace {

// ---------------------------------------------------------------- blocks

TEST(BlockRange, PartitionCoversExactlyAndEvenly) {
  for (std::int64_t total : {0LL, 1LL, 7LL, 64LL, 1000LL}) {
    for (int nblocks : {1, 2, 3, 7, 16}) {
      std::int64_t covered = 0;
      std::int64_t prev_end = 0;
      for (int b = 0; b < nblocks; ++b) {
        const BlockRange range = block_range(total, nblocks, b);
        EXPECT_EQ(range.begin, prev_end);
        EXPECT_GE(range.size(), total / nblocks);
        EXPECT_LE(range.size(), total / nblocks + 1);
        covered += range.size();
        prev_end = range.end;
      }
      EXPECT_EQ(covered, total);
    }
  }
}

TEST(BlockRange, OwnerAgreesWithRanges) {
  for (std::int64_t total : {1LL, 9LL, 100LL, 1023LL}) {
    for (int nblocks : {1, 2, 5, 8}) {
      for (std::int64_t i = 0; i < total; ++i) {
        const int owner = block_owner(total, nblocks, i);
        EXPECT_TRUE(block_range(total, nblocks, owner).contains(i))
            << "total=" << total << " nblocks=" << nblocks << " i=" << i;
      }
    }
  }
}

TEST(BlockRange, RejectsInvalidIndices) {
  EXPECT_THROW((void)block_range(10, 0, 0), std::invalid_argument);
  EXPECT_THROW((void)block_range(10, 3, 3), std::invalid_argument);
  EXPECT_THROW((void)block_range(10, 3, -1), std::invalid_argument);
}

// --------------------------------------------------------------- triplets

TEST(Triplets, NormalizeSortsAndCombines) {
  std::vector<Triplet<std::uint64_t>> entries{
      {2, 1, 0b001}, {0, 0, 0b100}, {2, 1, 0b010}, {1, 5, 0b111}, {0, 0, 0b100}};
  normalize_triplets(entries, [](std::uint64_t a, std::uint64_t b) { return a | b; });
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0], (Triplet<std::uint64_t>{0, 0, 0b100}));
  EXPECT_EQ(entries[1], (Triplet<std::uint64_t>{1, 5, 0b111}));
  EXPECT_EQ(entries[2], (Triplet<std::uint64_t>{2, 1, 0b011}));
}

TEST(Triplets, NormalizeWithAdditionCounts) {
  std::vector<Triplet<std::uint64_t>> entries{{0, 0, 2}, {0, 0, 3}, {1, 1, 1}};
  normalize_triplets(entries, [](std::uint64_t a, std::uint64_t b) { return a + b; });
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].value, 5u);
}

// -------------------------------------------------------------------- CSR

TEST(Csr, RoundTripsCanonicalTriplets) {
  std::vector<Triplet<std::uint64_t>> entries{
      {0, 2, 5}, {0, 7, 9}, {2, 0, 1}, {4, 3, 8}};
  const auto csr = CsrMatrix<std::uint64_t>::from_triplets(5, 8, entries);
  EXPECT_EQ(csr.rows(), 5);
  EXPECT_EQ(csr.cols(), 8);
  EXPECT_EQ(csr.nnz(), 4);
  EXPECT_EQ(csr.to_triplets(), entries);
  // Row access.
  ASSERT_EQ(csr.row_columns(0).size(), 2u);
  EXPECT_EQ(csr.row_columns(0)[1], 7);
  EXPECT_EQ(csr.row_values(0)[1], 9u);
  EXPECT_TRUE(csr.row_columns(1).empty());
  EXPECT_TRUE(csr.row_columns(3).empty());
}

TEST(Csr, StorageAccountsRowStartsSeparately) {
  // The §III-B claim: row-start bytes scale with rows, not nnz.
  std::vector<Triplet<std::uint64_t>> entries{{0, 0, 1}, {63, 1, 2}};
  const auto tall = CsrMatrix<std::uint64_t>::from_triplets(64, 2, entries);
  std::vector<Triplet<std::uint64_t>> packed_entries{{0, 0, 1}, {0, 1, 2}};
  const auto packed = CsrMatrix<std::uint64_t>::from_triplets(1, 2, packed_entries);
  EXPECT_EQ(tall.storage().row_starts, 65u * 8u);
  EXPECT_EQ(packed.storage().row_starts, 2u * 8u);
  EXPECT_EQ(tall.storage().col_indices, packed.storage().col_indices);
  EXPECT_EQ(tall.storage().values, packed.storage().values);
  EXPECT_GT(tall.storage().total(), packed.storage().total());
}

TEST(Csr, EmptyMatrix) {
  const auto csr = CsrMatrix<std::uint64_t>::from_triplets(0, 0, {});
  EXPECT_EQ(csr.nnz(), 0);
  EXPECT_EQ(csr.storage().row_starts, 8u);  // the single sentinel row start
}

// ----------------------------------------------------------------- filter

class FilterTest : public ::testing::TestWithParam<int> {};

TEST_P(FilterTest, UnionMatchesSerialSetUnion) {
  const int p = GetParam();
  const std::int64_t universe = 500;
  // Rank r contributes multiples of (r+2) < universe, with duplicates.
  std::set<std::int64_t> expected;
  for (int r = 0; r < p; ++r) {
    for (std::int64_t v = 0; v < universe; v += r + 2) expected.insert(v);
  }
  bsp::Runtime::run(p, [&](bsp::Comm& comm) {
    std::vector<std::int64_t> mine;
    for (std::int64_t v = 0; v < universe; v += comm.rank() + 2) {
      mine.push_back(v);
      mine.push_back(v);  // duplicates must be tolerated
    }
    const auto got = distributed_index_union(comm, mine, universe);
    const std::vector<std::int64_t> want(expected.begin(), expected.end());
    EXPECT_EQ(got, want);
  });
}

TEST_P(FilterTest, CompactRowIdIsThePrefixSum) {
  const int p = GetParam();
  bsp::Runtime::run(p, [](bsp::Comm& comm) {
    std::vector<std::int64_t> mine;
    if (comm.rank() == 0) mine = {10, 40, 70, 200};
    const auto filter = distributed_index_union(comm, mine, 1000);
    ASSERT_EQ(filter.size(), 4u);
    EXPECT_EQ(compact_row_id(filter, 10), 0);
    EXPECT_EQ(compact_row_id(filter, 40), 1);
    EXPECT_EQ(compact_row_id(filter, 200), 3);
    EXPECT_THROW((void)compact_row_id(filter, 11), std::logic_error);
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, FilterTest, ::testing::Values(1, 2, 3, 5, 8));

TEST(FilterEncoding, RoundTripsEveryShape) {
  struct Shape {
    const char* name;
    std::vector<std::int64_t> indices;
    std::int64_t extent;
  };
  std::vector<Shape> shapes = {
      {"empty", {}, 100},
      {"single", {0}, 1},
      {"last", {999}, 1000},
      {"dense run", {}, 500},
      {"every other", {}, 512},
      {"isolated huge gaps", {3, 1000000, 123456789, 999999999}, std::int64_t{1} << 30},
      {"word boundary", {62, 63, 64, 65, 127, 128}, 200},
      {"one-word gap inlined", {10, 140}, 4096},
  };
  for (std::int64_t v = 0; v < 500; ++v) shapes[3].indices.push_back(v);
  for (std::int64_t v = 0; v < 512; v += 2) shapes[4].indices.push_back(v);
  Rng rng(404);
  Shape random{"random", {}, 1 << 20};
  for (std::int64_t v = 0; v < (1 << 20); ++v) {
    if (rng.bernoulli(0.001)) random.indices.push_back(v);
  }
  shapes.push_back(std::move(random));

  for (const Shape& shape : shapes) {
    const auto encoded =
        encode_index_set(std::span<const std::int64_t>(shape.indices), shape.extent);
    const auto decoded =
        decode_index_set(std::span<const std::uint64_t>(encoded), shape.extent);
    EXPECT_EQ(decoded, shape.indices) << shape.name;
    // Never more than one mode word above the raw cost.
    EXPECT_LE(encoded.size(), shape.indices.size() + 1) << shape.name;
  }

  // Compression wins where it should: ~1 bit/row on dense runs (RLE),
  // about half the raw words on huge-gap hypersparse sets (delta-varint).
  const auto dense_encoded =
      encode_index_set(std::span<const std::int64_t>(shapes[3].indices), 500);
  EXPECT_LE(dense_encoded.size(), shapes[3].indices.size() / 32 + 2);
  std::vector<std::int64_t> hypersparse;
  for (std::int64_t v = 0; v < 1000; ++v) hypersparse.push_back(v * 33554432);
  const auto sparse_encoded = encode_index_set(
      std::span<const std::int64_t>(hypersparse), std::int64_t{1} << 45);
  EXPECT_LE(sparse_encoded.size(), hypersparse.size() / 2 + 2);

  // Malformed inputs throw.
  const std::vector<std::int64_t> unsorted = {5, 3};
  EXPECT_THROW((void)encode_index_set(std::span<const std::int64_t>(unsorted), 10),
               std::invalid_argument);
  const std::vector<std::int64_t> beyond = {12};
  EXPECT_THROW((void)encode_index_set(std::span<const std::int64_t>(beyond), 10),
               std::invalid_argument);
  const std::vector<std::uint64_t> bad_mode = {99, 1, 2};
  EXPECT_THROW((void)decode_index_set(std::span<const std::uint64_t>(bad_mode), 10),
               sas::error::CorruptInput);
  // Hostile delta streams must throw, never yield negative or
  // out-of-extent indices: a complete 10-byte varint encoding gap = 2^63
  // (the sign bit — nine 0x80 continuation bytes, then 0x01) and a gap
  // one past the extent.
  const std::vector<std::uint64_t> sign_bit_gap = {2, 0x8080808080808080ULL, 0x0180ULL};
  EXPECT_THROW((void)decode_index_set(std::span<const std::uint64_t>(sign_bit_gap),
                                      std::int64_t{1} << 40),
               sas::error::CorruptInput);
  const std::vector<std::uint64_t> gap_past_extent = {2, 11};  // gap 11, extent 10
  EXPECT_THROW((void)decode_index_set(std::span<const std::uint64_t>(gap_past_extent),
                                      10),
               sas::error::CorruptInput);
  // Hostile RLE skip headers chained past the extent must throw before
  // pos * 64 can overflow.
  const std::uint64_t skip_only = 0xffffffffULL << 32;  // skip 2^32-1, 0 literals
  const std::vector<std::uint64_t> runaway_skip = {
      0, skip_only, skip_only, skip_only, (1ULL << 32) | 1, 1};
  EXPECT_THROW((void)decode_index_set(std::span<const std::uint64_t>(runaway_skip), 64),
               sas::error::CorruptInput);
}

TEST_P(FilterTest, CompressedUnionMatchesRawBitForBit) {
  const int p = GetParam();
  // Two regimes per run: a dense-ish range (RLE territory) and an
  // isolated hypersparse tail (delta/list territory).
  bsp::Runtime::run(p, [&](bsp::Comm& comm) {
    const std::int64_t universe = 1 << 16;
    Rng rng(static_cast<std::uint64_t>(900 + comm.rank()));
    std::vector<std::int64_t> mine;
    for (std::int64_t v = 0; v < 2000; ++v) {
      if (rng.bernoulli(0.6)) mine.push_back(v);
    }
    for (std::int64_t v = 2000; v < universe; ++v) {
      if (rng.bernoulli(0.0005)) mine.push_back(v);
    }
    const auto raw = distributed_index_union(
        comm, std::span<const std::int64_t>(mine), universe, /*compress=*/false);
    const auto compressed = distributed_index_union(
        comm, std::span<const std::int64_t>(mine), universe, /*compress=*/true);
    EXPECT_EQ(compressed, raw);
  });
}

// ------------------------------------------------------------------- grid

TEST(ProcGrid, SquareGridCoordinates) {
  bsp::Runtime::run(4, [](bsp::Comm& comm) {
    ProcGrid grid(comm, 1);
    EXPECT_EQ(grid.side(), 2);
    EXPECT_EQ(grid.layers(), 1);
    EXPECT_EQ(grid.active_ranks(), 4);
    EXPECT_TRUE(grid.active());
    EXPECT_EQ(grid.grid_row(), comm.rank() / 2);
    EXPECT_EQ(grid.grid_col(), comm.rank() % 2);
    EXPECT_EQ(grid.row_comm().size(), 2);
    EXPECT_EQ(grid.col_comm().size(), 2);
    EXPECT_EQ(grid.fiber_comm().size(), 1);
  });
}

TEST(ProcGrid, NonSquareLeavesRanksIdle) {
  bsp::Runtime::run(6, [](bsp::Comm& comm) {
    ProcGrid grid(comm, 1);
    EXPECT_EQ(grid.side(), 2);
    EXPECT_EQ(grid.active_ranks(), 4);
    EXPECT_EQ(grid.active(), comm.rank() < 4);
  });
}

TEST(ProcGrid, ReplicatedGridSplitsLayers) {
  bsp::Runtime::run(8, [](bsp::Comm& comm) {
    ProcGrid grid(comm, 2);
    EXPECT_EQ(grid.side(), 2);
    EXPECT_EQ(grid.layers(), 2);
    EXPECT_EQ(grid.active_ranks(), 8);
    EXPECT_EQ(grid.layer(), comm.rank() / 4);
    EXPECT_EQ(grid.fiber_comm().size(), 2);
    // fiber rank must equal the layer (reduction root is layer 0).
    EXPECT_EQ(grid.fiber_comm().rank(), grid.layer());
  });
}

TEST(ProcGrid, RejectsTooFewRanksForLayers) {
  bsp::Runtime::run(1, [](bsp::Comm& comm) {
    EXPECT_THROW(ProcGrid(comm, 2), std::invalid_argument);
  });
}

// --------------------------------------------------------- redistribution

class RedistributeTest : public ::testing::TestWithParam<int> {};

TEST_P(RedistributeTest, EveryEntryArrivesOnceAndMerges) {
  const int p = GetParam();
  const std::int64_t rows = 40;
  const std::int64_t cols = 30;
  bsp::Runtime::run(p, [&](bsp::Comm& comm) {
    // Every rank emits the full grid with value 1<<rank; owner = row block.
    std::vector<Triplet<std::uint64_t>> mine;
    for (std::int64_t r = 0; r < rows; ++r) {
      for (std::int64_t c = 0; c < cols; ++c) {
        mine.push_back({r, c, std::uint64_t{1} << comm.rank()});
      }
    }
    auto merged = redistribute_triplets(
        comm, std::move(mine),
        [&](std::int64_t row, std::int64_t) { return block_owner(rows, p, row); },
        [](std::uint64_t a, std::uint64_t b) { return a | b; });
    const BlockRange my_rows = block_range(rows, p, comm.rank());
    ASSERT_EQ(static_cast<std::int64_t>(merged.size()), my_rows.size() * cols);
    const std::uint64_t all_ranks_mask = (p == 64) ? ~0ULL : ((1ULL << p) - 1);
    for (const auto& t : merged) {
      EXPECT_TRUE(my_rows.contains(t.row));
      EXPECT_EQ(t.value, all_ranks_mask);  // contributions from every rank merged
    }
    EXPECT_TRUE(std::is_sorted(merged.begin(), merged.end(), triplet_order<std::uint64_t>));
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, RedistributeTest, ::testing::Values(1, 2, 4, 7));

// ----------------------------------------------------------------- spgemm

/// Dense brute-force AᵀA over the unpacked bit matrix.
std::vector<std::int64_t> dense_reference(const SparseBlock& block) {
  std::vector<std::int64_t> out(static_cast<std::size_t>(block.cols * block.cols), 0);
  for (const auto& a : block.entries) {
    for (const auto& b : block.entries) {
      if (a.row != b.row) continue;
      out[static_cast<std::size_t>(a.col * block.cols + b.col)] +=
          popcount64(a.value & b.value);
    }
  }
  return out;
}

SparseBlock random_block(std::int64_t rows, std::int64_t cols, double density,
                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Triplet<std::uint64_t>> entries;
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      if (rng.bernoulli(density)) entries.push_back({r, c, rng()});
    }
  }
  return SparseBlock::from_triplets(rows, cols, std::move(entries));
}

TEST(Spgemm, KernelMatchesBruteForce) {
  const SparseBlock block = random_block(25, 13, 0.3, 99);
  const auto expected = dense_reference(block);
  const DenseBlock<std::int64_t> out = serial_ata(block);
  EXPECT_EQ(out.values, expected);
}

TEST(Spgemm, KernelHandlesDisjointRows) {
  // L and N share no rows -> zero output.
  SparseBlock l = SparseBlock::from_triplets(10, 4, {{0, 0, ~0ULL}, {2, 1, ~0ULL}});
  SparseBlock n = SparseBlock::from_triplets(10, 4, {{1, 0, ~0ULL}, {3, 2, ~0ULL}});
  DenseBlock<std::int64_t> out(BlockRange{0, 4}, BlockRange{0, 4});
  popcount_join_accumulate(l.entries, n.entries, 0, 0, out, nullptr);
  for (auto v : out.values) EXPECT_EQ(v, 0);
}

TEST(Spgemm, KernelRecordsFlops) {
  const SparseBlock block = random_block(16, 8, 0.5, 5);
  DenseBlock<std::int64_t> out(BlockRange{0, 8}, BlockRange{0, 8});
  bsp::CostCounters counters;
  popcount_join_accumulate(block.entries, block.entries, 0, 0, out, &counters);
  // Flops = Σ_rows nnz(row)², at least nnz when every row has one entry.
  EXPECT_GE(counters.flops, static_cast<std::uint64_t>(block.nnz()));
}

TEST(Spgemm, ColumnPopcountsSumBits) {
  SparseBlock block = SparseBlock::from_triplets(4, 3, {{0, 0, 0b111}, {1, 0, 0b1},
                                                        {2, 2, 0b1010}});
  std::vector<std::int64_t> acc(5, 0);
  accumulate_column_popcounts(block, 1, acc);  // offset 1
  EXPECT_EQ(acc[1], 4);  // col 0: 3 + 1 bits
  EXPECT_EQ(acc[2], 0);
  EXPECT_EQ(acc[3], 2);  // col 2
}

struct ParallelCase {
  int ranks;
  int layers;
  bool use_ring;
};

class ParallelSpgemm : public ::testing::TestWithParam<ParallelCase> {};

TEST_P(ParallelSpgemm, MatchesSerialReference) {
  const ParallelCase pc = GetParam();
  const std::int64_t h = 37;   // word rows
  const std::int64_t n = 19;   // samples
  const SparseBlock full = random_block(h, n, 0.35, 1234);
  const auto expected = dense_reference(full);

  std::vector<std::int64_t> got(static_cast<std::size_t>(n * n), 0);
  std::mutex got_mutex;
  bsp::Runtime::run(pc.ranks, [&](bsp::Comm& comm) {
    const int p = comm.size();
    std::vector<double> assembled;
    if (pc.use_ring) {
      // Column panels.
      const BlockRange my_cols = block_range(n, p, comm.rank());
      std::vector<Triplet<std::uint64_t>> mine;
      for (const auto& t : full.entries) {
        if (my_cols.contains(t.col)) mine.push_back({t.row, t.col - my_cols.begin, t.value});
      }
      SparseBlock panel{h, my_cols.size(), std::move(mine)};
      DenseBlock<std::int64_t> b_panel(my_cols, BlockRange{0, n});
      ring_ata_accumulate(comm, n, panel, b_panel);
      DenseBlock<double> s(b_panel.row_range, b_panel.col_range);
      for (std::size_t i = 0; i < s.values.size(); ++i) {
        s.values[i] = static_cast<double>(b_panel.values[i]);
      }
      assembled = gather_dense_to_root(comm, &s, n, n);
    } else {
      ProcGrid grid(comm, pc.layers);
      const int s = grid.side();
      const int c = grid.layers();
      std::optional<DenseBlock<std::int64_t>> b_block;
      std::optional<SparseBlock> my_block;
      if (grid.active()) {
        const int q = grid.layer() * s + grid.grid_row();
        const BlockRange chunk = block_range(h, s * c, q);
        const BlockRange cols = block_range(n, s, grid.grid_col());
        std::vector<Triplet<std::uint64_t>> mine;
        for (const auto& t : full.entries) {
          if (chunk.contains(t.row) && cols.contains(t.col)) {
            mine.push_back({t.row - chunk.begin, t.col - cols.begin, t.value});
          }
        }
        my_block = SparseBlock{chunk.size(), cols.size(), std::move(mine)};
        b_block.emplace(block_range(n, s, grid.grid_row()), cols);
        summa_ata_accumulate(grid, *my_block, *b_block);
      }
      std::optional<DenseBlock<double>> s_block;
      if (grid.active() && grid.layer() == 0) {
        s_block.emplace(b_block->row_range, b_block->col_range);
        for (std::size_t i = 0; i < s_block->values.size(); ++i) {
          s_block->values[i] = static_cast<double>(b_block->values[i]);
        }
      }
      assembled =
          gather_dense_to_root(comm, s_block.has_value() ? &*s_block : nullptr, n, n);
    }
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(got_mutex);
      for (std::size_t i = 0; i < assembled.size(); ++i) {
        got[i] = static_cast<std::int64_t>(assembled[i]);
      }
    }
  });
  EXPECT_EQ(got, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Variants, ParallelSpgemm,
    ::testing::Values(ParallelCase{1, 1, true}, ParallelCase{3, 1, true},
                      ParallelCase{6, 1, true}, ParallelCase{1, 1, false},
                      ParallelCase{4, 1, false}, ParallelCase{9, 1, false},
                      ParallelCase{8, 2, false}, ParallelCase{12, 3, false},
                      ParallelCase{7, 1, false}));

TEST(GatherDense, AssemblesBlocksOnRoot) {
  bsp::Runtime::run(4, [](bsp::Comm& comm) {
    ProcGrid grid(comm, 1);
    DenseBlock<double> block(block_range(6, 2, grid.grid_row()),
                             block_range(6, 2, grid.grid_col()));
    for (std::int64_t i = 0; i < block.local_rows(); ++i) {
      for (std::int64_t j = 0; j < block.local_cols(); ++j) {
        block.at_local(i, j) = static_cast<double>((block.row_range.begin + i) * 6 +
                                                   block.col_range.begin + j);
      }
    }
    const auto full = gather_dense_to_root(comm, &block, 6, 6);
    if (comm.rank() == 0) {
      ASSERT_EQ(full.size(), 36u);
      for (std::size_t i = 0; i < 36; ++i) EXPECT_DOUBLE_EQ(full[i], static_cast<double>(i));
    } else {
      EXPECT_TRUE(full.empty());
    }
  });
}

}  // namespace
}  // namespace sas::distmat
