// one_perm_minhash.hpp — b-bit one-permutation MinHash with optimal
// densification (Li et al. 2012 "One Permutation Hashing"; Li & König
// 2010 "b-bit Minwise Hashing"; Shrivastava 2017 "Optimal Densification").
//
// One 64-bit hash evaluation per element: the hash space is split into k
// equal bins (fixed-point multiply-high range partition) and each bin
// retains the minimum hash routed to it. Bins that saw no element are
// filled at comparison/serialization time by borrowing, via a seeded
// universal probe sequence, the value of a deterministic non-empty donor
// bin ("optimal densification") — both sides of a comparison run the
// identical probe sequence, so borrowed bins stay unbiased match
// indicators. For the wire form each (densified) register is truncated
// to its low b bits; the induced 2^−b collision bias is removed
// analytically in the estimator:
//
//   Ĵ = (match_fraction − 2^−b) / (1 − 2^−b)
//
// == Accuracy / bytes =====================================================
//
// The match fraction of k register pairs has variance ≤ J(1−J)/k; with
// the b-bit correction the documented mean-absolute-error bound is
//
//   mean |Ĵ − J| ≤ oph_jaccard_error_bound(k, b) = 1.5/√k + 2^(1−b)
//
// (defaults k = 1024, b = 16 → 2048 wire bytes per sample, bound ≈ 0.047;
// observed mean error ≈ 0.01). This is the best accuracy per wire byte of
// the subsystem's estimators — b-bit truncation shrinks the sketch 64/b×
// at a bias cost that is negligible for b ≥ 8.
//
// The raw (serialize()) form keeps the full 64-bit bin minima plus the
// empty-bin mask, so deserialized sketches remain mergeable; merging
// truncated registers would be unsound (min does not commute with
// truncation), which is why wire() is comparison-only.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "sketch/sketch.hpp"
#include "util/hashing.hpp"

namespace sas::sketch {

/// Documented mean-absolute-error bound of the b-bit one-permutation
/// MinHash Jaccard estimate with k bins (see the accuracy note above).
[[nodiscard]] inline double oph_jaccard_error_bound(std::int64_t bins, int bits) noexcept {
  return 1.5 / std::sqrt(static_cast<double>(bins)) + std::ldexp(2.0, -bits);
}

class OnePermMinHash {
 public:
  /// Empty sketch with `bins` bins keeping `bits`-bit registers on the
  /// wire. `bits` must divide 64 (register lanes never straddle words).
  /// Both sides of a merge or comparison must share (bins, bits, seed).
  OnePermMinHash(std::int64_t bins, int bits, std::uint64_t seed);

  /// Convenience: sketch of a whole element set.
  OnePermMinHash(std::span<const std::uint64_t> elements, std::int64_t bins, int bits,
                 std::uint64_t seed);

  /// Observe one element. Order-independent and idempotent.
  void add(std::uint64_t element) noexcept;

  [[nodiscard]] std::int64_t bins() const noexcept {
    return static_cast<std::int64_t>(mins_.size());
  }
  [[nodiscard]] int bits() const noexcept { return bits_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] std::int64_t occupied_bins() const noexcept { return occupied_; }
  [[nodiscard]] bool empty() const noexcept { return occupied_ == 0; }

  /// Densified b-bit registers (the comparison form): every empty bin
  /// borrows its donor's value via the seeded probe sequence, then all
  /// registers are truncated to the low b bits. All-empty sketches
  /// return all-zero registers (flagged separately on the wire).
  [[nodiscard]] std::vector<std::uint64_t> densified_registers() const;

  /// Sketch of A ∪ B: bin-wise min over the RAW (pre-densification)
  /// state. Associative, commutative, idempotent; throws
  /// std::invalid_argument on parameter mismatch.
  [[nodiscard]] static OnePermMinHash merge(const OnePermMinHash& a,
                                            const OnePermMinHash& b);

  /// b-bit-corrected match-fraction estimate, clamped to [0, 1];
  /// J(∅, ∅) = 1, J(∅, X) = 0.
  [[nodiscard]] static double estimate_jaccard(const OnePermMinHash& a,
                                               const OnePermMinHash& b);

  /// Full-fidelity blob (raw minima + empty mask): round-trips through
  /// deserialize() into a sketch that can keep absorbing elements and
  /// merging.
  [[nodiscard]] std::vector<std::uint64_t> serialize() const;
  [[nodiscard]] static OnePermMinHash deserialize(std::span<const std::uint64_t> wire);

  /// Compact comparison blob: densified registers packed b bits per
  /// lane — k·b/8 payload bytes. This is what the exchange ring ships.
  [[nodiscard]] std::vector<std::uint64_t> wire() const;

 private:
  int bits_;
  std::uint64_t seed_;
  HashFamily hash_;
  std::int64_t occupied_ = 0;
  std::vector<std::uint64_t> mins_;  ///< raw bin minima (valid where occupied)
  std::vector<std::uint64_t> occupied_mask_;  ///< bit i: bin i saw an element

  [[nodiscard]] bool bin_occupied(std::int64_t i) const noexcept {
    return (occupied_mask_[static_cast<std::size_t>(i >> 6)] >> (i & 63)) & 1u;
  }
};

/// Wire-level Jaccard estimate (used by estimate_jaccard_wire): compares
/// two packed densified-register payloads lane by lane. Both blobs must
/// carry the kOnePermMinHash type tag (std::invalid_argument otherwise —
/// a bottom-k/HLL blob with coincidentally matching params must not be
/// scored as OPH registers).
[[nodiscard]] double oph_wire_jaccard(std::span<const std::uint64_t> a,
                                      std::span<const std::uint64_t> b);

/// LSH band buckets of a packed OPH comparison blob: band t covers the
/// densified registers [t·rows_per_band, (t+1)·rows_per_band) and hashes
/// them (band index folded in) to one 64-bit bucket id. Two samples
/// collide in band t iff their band registers are equal (up to 64-bit
/// hash collisions), so P(collide in ≥1 band) = 1 − (1 − m^R)^B for
/// register match fraction m — the banding S-curve the LSH candidate
/// pass (exchange.hpp) is built on. Requires bands·rows_per_band ≤ bins;
/// throws std::invalid_argument on non-OPH or malformed blobs.
[[nodiscard]] std::vector<std::uint64_t> oph_wire_band_hashes(
    std::span<const std::uint64_t> wire, std::int64_t bands,
    std::int64_t rows_per_band);

}  // namespace sas::sketch
