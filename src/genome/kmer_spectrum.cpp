#include "genome/kmer_spectrum.hpp"

#include <unordered_map>

namespace sas::genome {

std::int64_t KmerSpectrum::kept_at(std::int64_t threshold) const {
  std::int64_t kept = 0;
  for (const auto& [count, distinct] : histogram) {
    if (count >= threshold) kept += distinct;
  }
  return kept;
}

KmerSpectrum build_spectrum(const std::vector<SequenceRecord>& records,
                            const KmerCodec& codec) {
  std::unordered_map<std::uint64_t, std::int64_t> counts;
  for (const SequenceRecord& record : records) {
    for (std::uint64_t code : codec.canonical_kmers(record.sequence)) ++counts[code];
  }
  KmerSpectrum spectrum;
  spectrum.distinct_kmers = static_cast<std::int64_t>(counts.size());
  for (const auto& [code, count] : counts) {
    ++spectrum.histogram[count];
    spectrum.total_kmers += count;
  }
  return spectrum;
}

int suggest_min_count(const KmerSpectrum& spectrum) {
  // Walk the histogram in count order; the first valley is where the
  // bucket size stops decreasing. Everything strictly below it is noise.
  std::int64_t previous_count = -1;
  std::int64_t previous_size = -1;
  for (const auto& [count, size] : spectrum.histogram) {
    if (previous_size >= 0) {
      const bool contiguous = count == previous_count + 1;
      if (!contiguous || size >= previous_size) {
        // Rising again (or a gap, meaning the error peak ended): the
        // valley is at the previous count's successor.
        return static_cast<int>(previous_count + 1);
      }
    }
    previous_count = count;
    previous_size = size;
  }
  return 1;  // monotone decreasing or trivial spectrum: keep everything
}

}  // namespace sas::genome
