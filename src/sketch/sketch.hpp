// sketch.hpp — the probabilistic sketch subsystem: guide and wire format.
//
// == Why sketches =========================================================
//
// The paper's headline result is cutting the *communicated bytes* per
// genome comparison (§III-B: bitmask compression, zero-row filtering).
// Sketches are the next rung on that ladder: instead of exchanging the
// full bit-packed k-mer panels — O(nnz) bytes per rotation step — each
// sample is compressed once into a FIXED-SIZE summary, and the ring
// rotates those summaries instead (exchange.hpp). Per rotation step a
// rank then ships O(samples_per_rank · sketch_bytes) no matter how large
// the genomes are, at the price of a bounded, documented estimation
// error. The `Config::estimator` knob selects the operating point.
//
// == Choosing an estimator (error / bytes tradeoff) =======================
//
// All bounds below are mean-absolute-error bounds on the estimated
// Jaccard similarity, documented next to each implementation and
// enforced by tests/test_sketch.cpp and bench/minhash_accuracy.
//
//  estimator  class            bytes/sample          mean |Ĵ − J| bound
//  ---------  ---------------  -------------------   -------------------------
//  exact      (no sketch)      O(set size)           0
//  hll        HyperLogLog      2^p registers         hll_jaccard_error_bound(p)
//             (hyperloglog.hpp)  = 2^p bytes           ≈ 6.24/√(2^p)
//  minhash    b-bit one-perm   k·b/8 bytes           oph_jaccard_error_bound(k, b)
//             MinHash            (k bins, b bits)      ≈ 1.5/√k + 2^(1−b)
//             (one_perm_minhash.hpp)
//  bottomk    bottom-k MinHash k·8 bytes             bottomk_jaccard_error_bound(k)
//             (bottomk.hpp)      (full 64-bit mins)    ≈ 1.5/√k
//
// Rules of thumb:
//  * `minhash` (the default approximate estimator) gives the best
//    accuracy per byte: one hash evaluation per element, k·b/8 bytes on
//    the wire, and the b-bit collision bias is corrected analytically.
//  * `hll` unions cheaply (register max) and its size is independent of
//    k — prefer it when sketches must be merged across many partial
//    streams or when cardinalities are also wanted. Its Jaccard estimate
//    goes through inclusion–exclusion, which AMPLIFIES the cardinality
//    error for dissimilar pairs; use p ≥ 12 for Jaccard work.
//  * `bottomk` reproduces Mash (the paper's comparison point, §I): exact
//    once the sketch holds the whole union, but 8 bytes per slot and the
//    well-known failure on highly dissimilar pairs at small k.
//  * `exact` remains the only option when downstream analyses (UPGMA/NJ
//    on near-identical genomes) need error ≪ 1/√k — the paper's §I
//    motivation for computing Jaccard exactly in the first place.
//
// == Sketch concept =======================================================
//
// Every sketch type S implements:
//   S(params..., seed)                — empty sketch
//   void add(std::uint64_t element)   — incremental, order-independent
//   static S merge(const S&, const S&)— sketch of the union; associative
//                                       and commutative (property-tested)
//   static double estimate_jaccard(const S&, const S&)
//   std::vector<std::uint64_t> serialize()  — full-fidelity round trip
//   static S deserialize(span)              — inverse of serialize()
//   std::vector<std::uint64_t> wire()       — compact comparison form
//                                             (what the ring ships)
// Both sides of a comparison/merge must share identical parameters and
// seed; mismatches throw std::invalid_argument.
//
// == Wire format ==========================================================
//
// A wire blob is a self-describing vector of 64-bit words:
//   word 0: (kWireMagic << 32) | type tag        (WireType)
//   word 1: type-specific parameters
//   word 2: hash-family seed
//   word 3+: type-specific payload
// estimate_jaccard_wire() compares two blobs without materializing
// sketch objects — the distributed pipeline's inner loop — and throws
// std::invalid_argument on malformed or incompatible blobs.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace sas::sketch {

/// Type tag of a wire blob (word 0, low byte).
enum class WireType : std::uint8_t {
  kHyperLogLog = 1,     ///< packed 6-bit-in-8 register array
  kOnePermMinHash = 2,  ///< densified b-bit registers (comparison-only)
  kBottomK = 3,         ///< sorted bottom-k hash values
  kOnePermMinHashRaw = 4,  ///< raw bins + empty mask (mergeable, serialize())
};

inline constexpr std::uint64_t kWireMagic = 0x534b4348;  // "SKCH"
inline constexpr std::size_t kWireHeaderWords = 3;       // tag, params, seed

/// Word 0 of a wire blob of the given type.
[[nodiscard]] constexpr std::uint64_t wire_header_word(WireType type) noexcept {
  return (kWireMagic << 32) | static_cast<std::uint64_t>(type);
}

/// Type tag of `wire`; throws std::invalid_argument if the blob is too
/// short or the magic does not match.
[[nodiscard]] WireType wire_type(std::span<const std::uint64_t> wire);

/// Estimated Jaccard similarity of the two sets behind two wire blobs.
/// Dispatches on the type tag; both blobs must share type, parameters,
/// and seed (std::invalid_argument otherwise). This is the inner loop of
/// the sketch-exchange pipeline; it allocates nothing for the minhash
/// and bottomk types.
[[nodiscard]] double estimate_jaccard_wire(std::span<const std::uint64_t> a,
                                           std::span<const std::uint64_t> b);

// ---- sketch persistence --------------------------------------------------
//
// Wire blobs are persisted as raw little-endian 64-bit words — the blob's
// own (kWireMagic, type, params, seed) header is the file header, so a
// file is self-describing and directly comparable/mergeable after a read.
// `gas sketch --estimator` writes one file per sample next to the .kmers
// inputs; the sketch pipelines load them instead of re-sketching when the
// header matches the run's configuration.

/// Write `wire` to `path` (truncating). Throws error::ConfigError on I/O
/// failure.
void write_wire_file(const std::string& path, std::span<const std::uint64_t> wire);

/// Read a persisted wire blob. Returns an empty vector when the file is
/// missing or unreadable — callers treat that as "no persisted sketch".
/// A file that EXISTS but is not a whole number of words, is short, or
/// fails the wire magic check throws sas::error::CorruptInput: silent
/// fallback to recomputation would mask on-disk corruption.
[[nodiscard]] std::vector<std::uint64_t> read_wire_file(const std::string& path);

}  // namespace sas::sketch
