// popcount_scatter.cpp — runtime-data-only TU for the SpGEMM scatter
// kernels, the second file (after popcount_stream.cpp) that the build may
// compile with -mavx512vpopcntdq even when the project-wide probe had to
// retreat to -mno-avx512vpopcntdq (GCC 12 mis-folds the *constant*
// VPOPCNTQ pattern; every input here is runtime data, so the per-TU flag
// is safe — see the CMakeLists probe).
//
// The vector body turns the Gustavson scatter
//   acc[cols[k]] += popcount(word ∧ vals[k])
// into 8-lane AVX512 passes: load eight column indices, gather the eight
// accumulator slots, VPOPCNTQ the eight masked values, add, scatter back.
// CSR canonical form guarantees the eight indices of one pass are
// distinct, so no conflict detection is needed — the scatter never lands
// two lanes on the same slot. Tails (< 8 columns) and non-AVX512 builds
// delegate to the inline scalar kernels in popcount.hpp, which also
// serves as the parity oracle for the property tests.
#include "util/popcount.hpp"

#include <cstddef>
#include <cstdint>

#if defined(__AVX512VPOPCNTDQ__) && defined(__AVX512F__)
#include <immintrin.h>
#define SAS_SCATTER_AVX512 1
#else
#define SAS_SCATTER_AVX512 0
#endif

namespace sas {

#if SAS_SCATTER_AVX512

// GCC's _mm512_i64gather_epi64 wrapper passes an intentionally undefined
// source vector to the builtin, which -Wmaybe-uninitialized flags at -O3;
// the masked-off lanes are never read, so the warning is a false positive.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

namespace {

// One 8-lane gather/popcnt/scatter pass: acc[cols[0..7]] += popcount(word & vals[0..7]).
inline void scatter_pass8(__m512i word8, const std::int64_t* cols,
                          const std::uint64_t* vals, std::int64_t* acc) noexcept {
  const __m512i idx = _mm512_loadu_si512(cols);
  const __m512i v = _mm512_loadu_si512(vals);
  const __m512i slots = _mm512_i64gather_epi64(idx, acc, 8);
  const __m512i counts = _mm512_popcnt_epi64(_mm512_and_si512(word8, v));
  _mm512_i64scatter_epi64(acc, idx, _mm512_add_epi64(slots, counts), 8);
}

}  // namespace

void popcount_and_scatter_dispatch(std::uint64_t word, const std::int64_t* cols,
                                   const std::uint64_t* vals, std::size_t count,
                                   std::int64_t* acc) noexcept {
  const __m512i word8 = _mm512_set1_epi64(static_cast<long long>(word));
  std::size_t k = 0;
  // 2×8 unroll with both gathers issued before either scatter: the
  // gather→add→scatter chain is latency-bound, and the 16 indices of one
  // iteration are distinct (CSR canonical form), so the second gather
  // overlaps the first chain instead of waiting behind its scatter.
  for (; k + 16 <= count; k += 16) {
    const __m512i idx0 = _mm512_loadu_si512(cols + k);
    const __m512i idx1 = _mm512_loadu_si512(cols + k + 8);
    const __m512i v0 = _mm512_loadu_si512(vals + k);
    const __m512i v1 = _mm512_loadu_si512(vals + k + 8);
    const __m512i s0 = _mm512_i64gather_epi64(idx0, acc, 8);
    const __m512i s1 = _mm512_i64gather_epi64(idx1, acc, 8);
    const __m512i c0 = _mm512_popcnt_epi64(_mm512_and_si512(word8, v0));
    const __m512i c1 = _mm512_popcnt_epi64(_mm512_and_si512(word8, v1));
    _mm512_i64scatter_epi64(acc, idx0, _mm512_add_epi64(s0, c0), 8);
    _mm512_i64scatter_epi64(acc, idx1, _mm512_add_epi64(s1, c1), 8);
  }
  for (; k + 8 <= count; k += 8) {
    scatter_pass8(word8, cols + k, vals + k, acc);
  }
  if (k < count) {
    popcount_and_scatter(word, cols + k, vals + k, count - k, acc);
  }
}

void popcount_and_scatter_4_dispatch(std::uint64_t word0, std::uint64_t word1,
                                     std::uint64_t word2, std::uint64_t word3,
                                     const std::int64_t* cols, const std::uint64_t* vals,
                                     std::size_t count, std::int64_t* acc0,
                                     std::int64_t* acc1, std::int64_t* acc2,
                                     std::int64_t* acc3) noexcept {
  const __m512i w0 = _mm512_set1_epi64(static_cast<long long>(word0));
  const __m512i w1 = _mm512_set1_epi64(static_cast<long long>(word1));
  const __m512i w2 = _mm512_set1_epi64(static_cast<long long>(word2));
  const __m512i w3 = _mm512_set1_epi64(static_cast<long long>(word3));
  std::size_t k = 0;
  for (; k + 8 <= count; k += 8) {
    // Load (cols, vals) once and reuse across the four accumulator rows —
    // same load-traffic saving as the scalar 4-row kernel, now 8 wide.
    const __m512i idx = _mm512_loadu_si512(cols + k);
    const __m512i v = _mm512_loadu_si512(vals + k);
    // All four gathers issue before any scatter: the rows' slots are in
    // four distinct accumulator arrays, so the chains are independent and
    // the gather latencies overlap instead of serializing behind stores.
    const __m512i s0 = _mm512_i64gather_epi64(idx, acc0, 8);
    const __m512i s1 = _mm512_i64gather_epi64(idx, acc1, 8);
    const __m512i s2 = _mm512_i64gather_epi64(idx, acc2, 8);
    const __m512i s3 = _mm512_i64gather_epi64(idx, acc3, 8);
    _mm512_i64scatter_epi64(
        acc0, idx, _mm512_add_epi64(s0, _mm512_popcnt_epi64(_mm512_and_si512(w0, v))), 8);
    _mm512_i64scatter_epi64(
        acc1, idx, _mm512_add_epi64(s1, _mm512_popcnt_epi64(_mm512_and_si512(w1, v))), 8);
    _mm512_i64scatter_epi64(
        acc2, idx, _mm512_add_epi64(s2, _mm512_popcnt_epi64(_mm512_and_si512(w2, v))), 8);
    _mm512_i64scatter_epi64(
        acc3, idx, _mm512_add_epi64(s3, _mm512_popcnt_epi64(_mm512_and_si512(w3, v))), 8);
  }
  if (k < count) {
    popcount_and_scatter_4(word0, word1, word2, word3, cols + k, vals + k, count - k,
                           acc0, acc1, acc2, acc3);
  }
}

bool popcount_scatter_vectorized() noexcept { return true; }

#pragma GCC diagnostic pop

#else  // !SAS_SCATTER_AVX512

void popcount_and_scatter_dispatch(std::uint64_t word, const std::int64_t* cols,
                                   const std::uint64_t* vals, std::size_t count,
                                   std::int64_t* acc) noexcept {
  popcount_and_scatter(word, cols, vals, count, acc);
}

void popcount_and_scatter_4_dispatch(std::uint64_t word0, std::uint64_t word1,
                                     std::uint64_t word2, std::uint64_t word3,
                                     const std::int64_t* cols, const std::uint64_t* vals,
                                     std::size_t count, std::int64_t* acc0,
                                     std::int64_t* acc1, std::int64_t* acc2,
                                     std::int64_t* acc3) noexcept {
  popcount_and_scatter_4(word0, word1, word2, word3, cols, vals, count, acc0, acc1, acc2,
                         acc3);
}

bool popcount_scatter_vectorized() noexcept { return false; }

#endif  // SAS_SCATTER_AVX512

}  // namespace sas
