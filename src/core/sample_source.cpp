#include "core/sample_source.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "util/hashing.hpp"
#include "util/rng.hpp"

namespace sas::core {

VectorSampleSource::VectorSampleSource(std::int64_t universe,
                                       std::vector<std::vector<std::int64_t>> samples)
    : universe_(universe), samples_(std::move(samples)) {
  for (auto& s : samples_) {
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
    if (!s.empty() && (s.front() < 0 || s.back() >= universe_)) {
      throw std::out_of_range("VectorSampleSource: attribute id outside universe");
    }
  }
}

std::vector<std::int64_t> VectorSampleSource::values_in_range(
    std::int64_t sample, distmat::BlockRange range) const {
  const auto& s = samples_[static_cast<std::size_t>(sample)];
  const auto lo = std::lower_bound(s.begin(), s.end(), range.begin);
  const auto hi = std::lower_bound(lo, s.end(), range.end);
  return {lo, hi};
}

namespace {

/// Rows are generated in fixed granules so that membership is a pure
/// function of (seed, sample, granule) — values_in_range is then
/// consistent across any batch partition, which the batching-invariance
/// property tests rely on.
constexpr std::int64_t kGranule = 4096;

/// Deterministic draw of the member count within one granule of length
/// `len`: Poisson inverse-CDF for small expected counts, normal
/// approximation for large ones. Exact binomial sampling is unnecessary —
/// the synthetic experiments only require density to hold in expectation.
std::int64_t draw_count(Rng& rng, std::int64_t len, double density) {
  const double lambda = static_cast<double>(len) * density;
  if (lambda <= 0.0) return 0;
  if (lambda < 30.0) {
    const double limit = std::exp(-lambda);
    double prod = rng.uniform_real();
    std::int64_t k = 0;
    while (prod > limit && k < len) {
      prod *= rng.uniform_real();
      ++k;
    }
    return k;
  }
  // Box–Muller normal approximation of Binomial(len, density).
  const double sd = std::sqrt(lambda * (1.0 - density));
  const double u1 = std::max(rng.uniform_real(), 1e-12);
  const double u2 = rng.uniform_real();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  const double raw = std::round(lambda + sd * z);
  return std::clamp(static_cast<std::int64_t>(raw), std::int64_t{0}, len);
}

}  // namespace

BernoulliSampleSource::BernoulliSampleSource(std::int64_t universe, std::int64_t samples,
                                             double density, std::uint64_t seed,
                                             double density_spread)
    : universe_(universe), samples_(samples), density_(density), seed_(seed),
      spread_(density_spread) {
  if (density < 0.0 || density > 1.0) {
    throw std::invalid_argument("BernoulliSampleSource: density must be in [0, 1]");
  }
  if (density_spread < 1.0) {
    throw std::invalid_argument("BernoulliSampleSource: density_spread must be >= 1");
  }
}

double BernoulliSampleSource::sample_density(std::int64_t sample) const {
  if (spread_ == 1.0) return density_;
  // Log-uniform factor in [1/spread, spread], deterministic per sample.
  Rng rng(hash_combine(seed_ ^ 0xd1ff05e640a7b3c9ULL,
                       static_cast<std::uint64_t>(sample)));
  const double u = 2.0 * rng.uniform_real() - 1.0;  // [-1, 1)
  const double factor = std::exp(u * std::log(spread_));
  return std::min(1.0, density_ * factor);
}

std::vector<std::int64_t> BernoulliSampleSource::values_in_range(
    std::int64_t sample, distmat::BlockRange range) const {
  std::vector<std::int64_t> out;
  const double density = sample_density(sample);
  const std::int64_t first_granule = range.begin / kGranule;
  const std::int64_t last_granule = (range.end + kGranule - 1) / kGranule;
  for (std::int64_t g = first_granule; g < last_granule; ++g) {
    const std::int64_t g_begin = g * kGranule;
    const std::int64_t g_end = std::min(g_begin + kGranule, universe_);
    const std::int64_t len = g_end - g_begin;
    if (len <= 0) break;

    Rng rng(hash_combine(hash_combine(seed_, static_cast<std::uint64_t>(sample)),
                         static_cast<std::uint64_t>(g)));
    const std::int64_t count = draw_count(rng, len, density);
    if (count == 0) continue;

    // Distinct positions within the granule via rejection; density in the
    // evaluated configurations stays far below 1, so retries are rare.
    std::unordered_set<std::int64_t> chosen;
    chosen.reserve(static_cast<std::size_t>(count) * 2);
    while (static_cast<std::int64_t>(chosen.size()) < count) {
      chosen.insert(g_begin + static_cast<std::int64_t>(
                                  rng.uniform(static_cast<std::uint64_t>(len))));
    }
    for (std::int64_t v : chosen) {
      if (v >= range.begin && v < range.end) out.push_back(v);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace sas::core
