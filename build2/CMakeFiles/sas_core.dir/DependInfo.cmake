
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/clustering.cpp" "CMakeFiles/sas_core.dir/src/analysis/clustering.cpp.o" "gcc" "CMakeFiles/sas_core.dir/src/analysis/clustering.cpp.o.d"
  "/root/repo/src/analysis/neighbor_joining.cpp" "CMakeFiles/sas_core.dir/src/analysis/neighbor_joining.cpp.o" "gcc" "CMakeFiles/sas_core.dir/src/analysis/neighbor_joining.cpp.o.d"
  "/root/repo/src/analysis/phylo_tree.cpp" "CMakeFiles/sas_core.dir/src/analysis/phylo_tree.cpp.o" "gcc" "CMakeFiles/sas_core.dir/src/analysis/phylo_tree.cpp.o.d"
  "/root/repo/src/analysis/similar_pairs.cpp" "CMakeFiles/sas_core.dir/src/analysis/similar_pairs.cpp.o" "gcc" "CMakeFiles/sas_core.dir/src/analysis/similar_pairs.cpp.o.d"
  "/root/repo/src/analysis/upgma.cpp" "CMakeFiles/sas_core.dir/src/analysis/upgma.cpp.o" "gcc" "CMakeFiles/sas_core.dir/src/analysis/upgma.cpp.o.d"
  "/root/repo/src/baselines/exact_pairwise.cpp" "CMakeFiles/sas_core.dir/src/baselines/exact_pairwise.cpp.o" "gcc" "CMakeFiles/sas_core.dir/src/baselines/exact_pairwise.cpp.o.d"
  "/root/repo/src/baselines/mapreduce_jaccard.cpp" "CMakeFiles/sas_core.dir/src/baselines/mapreduce_jaccard.cpp.o" "gcc" "CMakeFiles/sas_core.dir/src/baselines/mapreduce_jaccard.cpp.o.d"
  "/root/repo/src/bsp/comm.cpp" "CMakeFiles/sas_core.dir/src/bsp/comm.cpp.o" "gcc" "CMakeFiles/sas_core.dir/src/bsp/comm.cpp.o.d"
  "/root/repo/src/bsp/fault.cpp" "CMakeFiles/sas_core.dir/src/bsp/fault.cpp.o" "gcc" "CMakeFiles/sas_core.dir/src/bsp/fault.cpp.o.d"
  "/root/repo/src/bsp/protocol.cpp" "CMakeFiles/sas_core.dir/src/bsp/protocol.cpp.o" "gcc" "CMakeFiles/sas_core.dir/src/bsp/protocol.cpp.o.d"
  "/root/repo/src/bsp/runtime.cpp" "CMakeFiles/sas_core.dir/src/bsp/runtime.cpp.o" "gcc" "CMakeFiles/sas_core.dir/src/bsp/runtime.cpp.o.d"
  "/root/repo/src/core/checkpoint.cpp" "CMakeFiles/sas_core.dir/src/core/checkpoint.cpp.o" "gcc" "CMakeFiles/sas_core.dir/src/core/checkpoint.cpp.o.d"
  "/root/repo/src/core/driver.cpp" "CMakeFiles/sas_core.dir/src/core/driver.cpp.o" "gcc" "CMakeFiles/sas_core.dir/src/core/driver.cpp.o.d"
  "/root/repo/src/core/matrix_io.cpp" "CMakeFiles/sas_core.dir/src/core/matrix_io.cpp.o" "gcc" "CMakeFiles/sas_core.dir/src/core/matrix_io.cpp.o.d"
  "/root/repo/src/core/packing.cpp" "CMakeFiles/sas_core.dir/src/core/packing.cpp.o" "gcc" "CMakeFiles/sas_core.dir/src/core/packing.cpp.o.d"
  "/root/repo/src/core/sample_source.cpp" "CMakeFiles/sas_core.dir/src/core/sample_source.cpp.o" "gcc" "CMakeFiles/sas_core.dir/src/core/sample_source.cpp.o.d"
  "/root/repo/src/core/similarity_matrix.cpp" "CMakeFiles/sas_core.dir/src/core/similarity_matrix.cpp.o" "gcc" "CMakeFiles/sas_core.dir/src/core/similarity_matrix.cpp.o.d"
  "/root/repo/src/distmat/crossover.cpp" "CMakeFiles/sas_core.dir/src/distmat/crossover.cpp.o" "gcc" "CMakeFiles/sas_core.dir/src/distmat/crossover.cpp.o.d"
  "/root/repo/src/distmat/dist_filter.cpp" "CMakeFiles/sas_core.dir/src/distmat/dist_filter.cpp.o" "gcc" "CMakeFiles/sas_core.dir/src/distmat/dist_filter.cpp.o.d"
  "/root/repo/src/distmat/proc_grid.cpp" "CMakeFiles/sas_core.dir/src/distmat/proc_grid.cpp.o" "gcc" "CMakeFiles/sas_core.dir/src/distmat/proc_grid.cpp.o.d"
  "/root/repo/src/distmat/spgemm.cpp" "CMakeFiles/sas_core.dir/src/distmat/spgemm.cpp.o" "gcc" "CMakeFiles/sas_core.dir/src/distmat/spgemm.cpp.o.d"
  "/root/repo/src/genome/fasta.cpp" "CMakeFiles/sas_core.dir/src/genome/fasta.cpp.o" "gcc" "CMakeFiles/sas_core.dir/src/genome/fasta.cpp.o.d"
  "/root/repo/src/genome/genome_at_scale.cpp" "CMakeFiles/sas_core.dir/src/genome/genome_at_scale.cpp.o" "gcc" "CMakeFiles/sas_core.dir/src/genome/genome_at_scale.cpp.o.d"
  "/root/repo/src/genome/kmer.cpp" "CMakeFiles/sas_core.dir/src/genome/kmer.cpp.o" "gcc" "CMakeFiles/sas_core.dir/src/genome/kmer.cpp.o.d"
  "/root/repo/src/genome/kmer_source.cpp" "CMakeFiles/sas_core.dir/src/genome/kmer_source.cpp.o" "gcc" "CMakeFiles/sas_core.dir/src/genome/kmer_source.cpp.o.d"
  "/root/repo/src/genome/kmer_spectrum.cpp" "CMakeFiles/sas_core.dir/src/genome/kmer_spectrum.cpp.o" "gcc" "CMakeFiles/sas_core.dir/src/genome/kmer_spectrum.cpp.o.d"
  "/root/repo/src/genome/phylip.cpp" "CMakeFiles/sas_core.dir/src/genome/phylip.cpp.o" "gcc" "CMakeFiles/sas_core.dir/src/genome/phylip.cpp.o.d"
  "/root/repo/src/genome/sample.cpp" "CMakeFiles/sas_core.dir/src/genome/sample.cpp.o" "gcc" "CMakeFiles/sas_core.dir/src/genome/sample.cpp.o.d"
  "/root/repo/src/genome/synthetic.cpp" "CMakeFiles/sas_core.dir/src/genome/synthetic.cpp.o" "gcc" "CMakeFiles/sas_core.dir/src/genome/synthetic.cpp.o.d"
  "/root/repo/src/obs/json.cpp" "CMakeFiles/sas_core.dir/src/obs/json.cpp.o" "gcc" "CMakeFiles/sas_core.dir/src/obs/json.cpp.o.d"
  "/root/repo/src/obs/report.cpp" "CMakeFiles/sas_core.dir/src/obs/report.cpp.o" "gcc" "CMakeFiles/sas_core.dir/src/obs/report.cpp.o.d"
  "/root/repo/src/obs/trace.cpp" "CMakeFiles/sas_core.dir/src/obs/trace.cpp.o" "gcc" "CMakeFiles/sas_core.dir/src/obs/trace.cpp.o.d"
  "/root/repo/src/sketch/bottomk.cpp" "CMakeFiles/sas_core.dir/src/sketch/bottomk.cpp.o" "gcc" "CMakeFiles/sas_core.dir/src/sketch/bottomk.cpp.o.d"
  "/root/repo/src/sketch/exchange.cpp" "CMakeFiles/sas_core.dir/src/sketch/exchange.cpp.o" "gcc" "CMakeFiles/sas_core.dir/src/sketch/exchange.cpp.o.d"
  "/root/repo/src/sketch/hyperloglog.cpp" "CMakeFiles/sas_core.dir/src/sketch/hyperloglog.cpp.o" "gcc" "CMakeFiles/sas_core.dir/src/sketch/hyperloglog.cpp.o.d"
  "/root/repo/src/sketch/one_perm_minhash.cpp" "CMakeFiles/sas_core.dir/src/sketch/one_perm_minhash.cpp.o" "gcc" "CMakeFiles/sas_core.dir/src/sketch/one_perm_minhash.cpp.o.d"
  "/root/repo/src/sketch/sketch.cpp" "CMakeFiles/sas_core.dir/src/sketch/sketch.cpp.o" "gcc" "CMakeFiles/sas_core.dir/src/sketch/sketch.cpp.o.d"
  "/root/repo/src/util/args.cpp" "CMakeFiles/sas_core.dir/src/util/args.cpp.o" "gcc" "CMakeFiles/sas_core.dir/src/util/args.cpp.o.d"
  "/root/repo/src/util/error.cpp" "CMakeFiles/sas_core.dir/src/util/error.cpp.o" "gcc" "CMakeFiles/sas_core.dir/src/util/error.cpp.o.d"
  "/root/repo/src/util/numa.cpp" "CMakeFiles/sas_core.dir/src/util/numa.cpp.o" "gcc" "CMakeFiles/sas_core.dir/src/util/numa.cpp.o.d"
  "/root/repo/src/util/popcount_scatter.cpp" "CMakeFiles/sas_core.dir/src/util/popcount_scatter.cpp.o" "gcc" "CMakeFiles/sas_core.dir/src/util/popcount_scatter.cpp.o.d"
  "/root/repo/src/util/popcount_stream.cpp" "CMakeFiles/sas_core.dir/src/util/popcount_stream.cpp.o" "gcc" "CMakeFiles/sas_core.dir/src/util/popcount_stream.cpp.o.d"
  "/root/repo/src/util/table.cpp" "CMakeFiles/sas_core.dir/src/util/table.cpp.o" "gcc" "CMakeFiles/sas_core.dir/src/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
