#include "obs/report.hpp"

#include <fstream>

#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace sas::obs {

namespace {

void write_histogram(JsonWriter& w, const char* key, const Histogram& h) {
  w.key(key);
  w.begin_object();
  w.field("count", h.count).field("sum", h.sum).field("max", h.max);
  // Only the populated tail of the log2 buckets; bucket index k counts
  // values of bit width k.
  w.key("log2_buckets");
  w.begin_object();
  for (std::size_t k = 0; k < h.buckets.size(); ++k) {
    if (h.buckets[k] != 0) w.field(std::to_string(k), h.buckets[k]);
  }
  w.end_object();
  w.end_object();
}

}  // namespace

void write_report_json(std::ostream& out, const ReportInput& input) {
  JsonWriter w(out);
  w.begin_object();
  w.field("schema", kReportSchema);
  // Three-way status: "aborted" (run died), "degraded" (completed but
  // with quarantined batches), "ok" (clean).
  w.field("status", !input.abort_message.empty()  ? "aborted"
                    : !input.quarantined.empty() ? "degraded"
                                                 : "ok");
  if (!input.abort_message.empty()) {
    w.field("abort_message", input.abort_message);
    w.field("blocked_sites", input.blocked_sites);
  }
  w.field("ranks", input.ranks);
  w.field("samples", input.samples);
  w.field("retries", input.retries);
  if (!input.quarantined.empty()) {
    w.key("quarantined");
    w.begin_array();
    for (const QuarantineRow& q : input.quarantined) {
      w.begin_object();
      w.field("batch", q.batch);
      w.field("row_begin", q.row_begin);
      w.field("row_end", q.row_end);
      w.field("attempts", q.attempts);
      w.field("reason", q.reason);
      w.end_object();
    }
    w.end_array();
  }
  if (!input.estimator.empty()) w.field("estimator", input.estimator);
  if (!input.algorithm.empty()) w.field("algorithm", input.algorithm);

  w.key("stages");
  w.begin_array();
  for (const StageRow& s : input.stages) {
    w.begin_object();
    w.field("name", s.name).field("seconds", s.seconds);
    w.field("bytes_sent", s.bytes_sent);
    w.field("bytes_received", s.bytes_received);
    w.field("messages", s.messages);
    w.end_object();
  }
  w.end_array();

  w.key("batches");
  w.begin_array();
  for (const BatchRow& b : input.batches) {
    w.begin_object();
    w.field("index", b.index).field("seconds", b.seconds);
    w.field("local_nnz", b.local_nnz);
    w.field("bytes_sent", b.bytes_sent);
    w.field("bytes_received", b.bytes_received);
    w.end_object();
  }
  w.end_array();

  if (!input.counters.empty()) {
    const bsp::CostSummary summary = bsp::CostSummary::aggregate(input.counters);
    w.key("cost_summary");
    w.begin_object();
    w.field("total_messages", summary.total_messages);
    w.field("total_bytes", summary.total_bytes);
    w.field("total_bytes_received", summary.total_bytes_received);
    w.field("max_messages", summary.max_messages);
    w.field("max_bytes", summary.max_bytes);
    w.field("max_supersteps", summary.max_supersteps);
    w.field("total_flops", summary.total_flops);
    w.field("max_flops", summary.max_flops);
    w.end_object();
  }

  if (input.observer != nullptr) {
    const Observer& obs = *input.observer;

    // Per-primitive cost-model drift: Σ α-β predicted vs Σ measured over
    // every outermost instance across all ranks. drift_ratio > 1 means
    // the machine is slower than the model parameters claim.
    w.key("drift");
    w.begin_array();
    const auto drift = obs.aggregate_drift();
    for (std::size_t p = 0; p < kPrimitiveCount; ++p) {
      const DriftCell& cell = drift[p];
      if (cell.samples == 0) continue;
      w.begin_object();
      w.field("primitive", primitive_name(static_cast<Primitive>(p)));
      w.field("samples", cell.samples);
      w.field("predicted_seconds", cell.predicted_seconds);
      w.field("measured_seconds", cell.measured_seconds);
      w.field("drift_ratio", cell.predicted_seconds > 0.0
                                 ? cell.measured_seconds / cell.predicted_seconds
                                 : 0.0);
      w.end_object();
    }
    w.end_array();

    w.key("metrics");
    w.begin_array();
    for (int r = 0; r < obs.nranks(); ++r) {
      const RankObserver& rank = obs.rank(r);
      w.begin_object();
      w.field("rank", r);
      w.field("spans", static_cast<std::uint64_t>(rank.events().size()));
      w.field("dropped_spans", rank.dropped());
      if (static_cast<std::size_t>(r) < input.counters.size()) {
        const bsp::CostCounters& c = input.counters[static_cast<std::size_t>(r)];
        w.field("messages_sent", c.messages_sent);
        w.field("bytes_sent", c.bytes_sent);
        w.field("bytes_received", c.bytes_received);
        w.field("supersteps", c.supersteps);
        w.field("flops", c.flops);
      }
      write_histogram(w, "message_bytes", rank.message_bytes);
      write_histogram(w, "mailbox_wait_ns", rank.mailbox_wait_ns);
      w.key("counters");
      w.begin_object();
      for (const auto& [name, value] : rank.counters()) {
        w.field(name, value);
      }
      w.end_object();
      w.end_object();
    }
    w.end_array();

    w.field("dropped_spans", obs.total_dropped());
  }

  w.end_object();
  out << '\n';
}

void write_report_json_file(const std::string& path, const ReportInput& input) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw error::ConfigError("cannot write report file: " + path);
  }
  write_report_json(out, input);
  out.flush();
  if (!out) {
    throw error::ConfigError("failed writing report file: " + path);
  }
}

}  // namespace sas::obs
