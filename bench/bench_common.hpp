// bench_common.hpp — shared harness for the paper-reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper
// (DESIGN.md §4 maps experiment ids to binaries). Because this
// reproduction runs on a small host instead of Stampede2, each bench
// reports BOTH:
//   * measured wall-clock (threads oversubscribe the physical cores, so
//     wall speedups saturate at the core count), and
//   * the modelled BSP time from the runtime's cost counters (machine-
//     independent; this is where the paper's scaling shapes must appear).
//
// The projection convention matches the paper (Fig. 2): run a subset of
// batches, average the per-batch time after dropping warm-up batches,
// and project total time = avg_batch_time × total_batches.
#pragma once

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bsp/cost_model.hpp"
#include "core/config.hpp"
#include "core/driver.hpp"
#include "core/sample_source.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace sas::bench {

/// Paper-style per-batch statistics: mean over batches after skipping
/// `warmup` of them (the paper skips the first 3 of 11 BIGSI batches).
struct BatchTiming {
  double mean_seconds = 0.0;
  double ci95 = 0.0;
  std::size_t batches_timed = 0;
};

inline BatchTiming summarize_batches(const std::vector<core::BatchStats>& batches,
                                     std::size_t warmup) {
  StatAccumulator acc;
  for (std::size_t i = warmup < batches.size() ? warmup : 0; i < batches.size(); ++i) {
    acc.add(batches[i].seconds);
  }
  return {acc.mean(), acc.ci95_halfwidth(), acc.count()};
}

/// Mean measured traffic per batch — bytes summed over ranks, from the
/// per-batch byte counters BatchStats carries (fed by the bsp cost
/// counters), so the fig2 tables report what the network actually moved
/// next to the modelled BSP time.
inline std::uint64_t mean_batch_bytes(const std::vector<core::BatchStats>& batches) {
  if (batches.empty()) return 0;
  std::uint64_t total = 0;
  for (const auto& b : batches) total += b.bytes_sent;
  return total / batches.size();
}

/// One measured configuration of the core driver.
struct RunResult {
  core::Result result;
  bsp::CostSummary cost;
  double wall_seconds = 0.0;
};

/// `observer` (optional) is bound to the rank threads for the run — the
/// drift-gate and tracing-overhead benches pass one; everything else
/// runs unobserved (null observer = one TLS load per span site).
inline RunResult run_driver(int ranks, const core::SampleSource& source,
                            const core::Config& config,
                            obs::Observer* observer = nullptr) {
  RunResult out;
  std::vector<bsp::CostCounters> counters;
  Timer timer;
  out.result =
      core::similarity_at_scale_threaded(ranks, source, config, &counters, observer);
  out.wall_seconds = timer.seconds();
  out.cost = bsp::CostSummary::aggregate(counters);
  return out;
}

/// The BSP machine used for modelled times throughout the benches; the
/// ratios (not the absolute constants) drive the reported shapes.
inline bsp::BspMachine machine() { return bsp::BspMachine{5e-6, 5e-10, 1e-9}; }

/// Resident bytes of a run's rank-0 output: the dense matrix's n²
/// doubles, or the sparse view's survivor-proportional vectors.
inline std::uint64_t result_output_bytes(const core::Result& result) {
  if (result.sparse_output()) return result.sparse_similarity.resident_bytes();
  return static_cast<std::uint64_t>(result.similarity.values().size()) * sizeof(double);
}

/// Machine-readable perf tracking: appends one JSON object per line to
/// `path` (JSON-lines, append-safe across bench binaries) recording the
/// output-path byte metrics of one driver run —
///   assemble_bytes       measured assemble-stage traffic (dense gather
///                        or survivor-triplet gather),
///   filter_union_bytes   pack/sketch-stage traffic, dominated by the
///                        per-batch zero-row filter replication,
///   peak_root_output_bytes  rank-0 resident output (n²·8 dense,
///                        survivor-proportional sparse).
/// CI diffs these against the previous run to track the perf trajectory.
inline void append_result_bytes_json(const std::string& bench, const std::string& config,
                                     const core::Result& result,
                                     const std::string& path = "BENCH_result_bytes.json") {
  std::ofstream out(path, std::ios::app);
  if (!out) return;  // benches must not fail on a read-only workdir
  // One compact object per line through the shared emitter (obs/json.hpp)
  // — same schema and byte format as before, so the CI diff keeps working.
  obs::JsonWriter w(out);
  w.begin_object()
      .field("bench", bench)
      .field("config", config)
      .field("assemble_bytes", result.stages[core::Stage::kAssemble].bytes_sent)
      .field("filter_union_bytes", result.stages[core::Stage::kPackSketch].bytes_sent)
      .field("peak_root_output_bytes", result_output_bytes(result))
      .end_object();
  out << '\n';
}

inline void print_header(const char* experiment, const char* paper_ref,
                         const std::string& workload) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("workload:   %s\n", workload.c_str());
  std::printf("==============================================================\n\n");
}

/// Scaled stand-ins for the paper's corpora (DESIGN.md §2 records the
/// substitution rationale and scale factors).
inline core::BernoulliSampleSource kingsford_like(std::uint64_t seed = 19) {
  // Paper: n = 2,580 RNASeq samples, A density ≈ 1.5e-4 (low variability).
  // Scaled: n = 516 (1/5), m = 2^22 rows per full pass (z ≈ 325k).
  return core::BernoulliSampleSource(/*universe=*/std::int64_t{1} << 22,
                                     /*samples=*/516, /*density=*/1.5e-4, seed);
}

inline core::BernoulliSampleSource bigsi_like(std::uint64_t seed = 31) {
  // Paper: n = 446,506 WGS samples, density ≈ 4e-12 over m = 4^31
  // (hypersparse, highly variable column density). Scaled: n = 768,
  // m = 2^27, density 2e-6 (same hypersparsity regime: ≥99.8% of rows
  // all-zero, z ≈ 206k), density spread 8x across columns as in BIGSI.
  return core::BernoulliSampleSource(/*universe=*/std::int64_t{1} << 27,
                                     /*samples=*/768, /*density=*/2e-6, seed,
                                     /*density_spread=*/8.0);
}

}  // namespace sas::bench
