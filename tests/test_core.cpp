// test_core.cpp — the SimilarityAtScale core: packing (filter + bitmask),
// driver edge cases and conventions, batching/parameter invariance, the
// d_J metric property, and the synthetic Bernoulli source's consistency.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include <sstream>

#include "bsp/runtime.hpp"
#include "core/driver.hpp"
#include "core/matrix_io.hpp"
#include "core/packing.hpp"
#include "core/sample_source.hpp"
#include "util/error.hpp"
#include "util/popcount.hpp"
#include "util/rng.hpp"

namespace sas::core {
namespace {

// ---------------------------------------------------------------- packing

/// Unpack a rank's packed triplets back into (compact_row, col) bit
/// positions for cross-checking.
std::set<std::pair<std::int64_t, std::int64_t>> unpack(
    const std::vector<distmat::Triplet<std::uint64_t>>& triplets, int bit_width) {
  std::set<std::pair<std::int64_t, std::int64_t>> bits;
  for (const auto& t : triplets) {
    for (int b = 0; b < 64; ++b) {
      if ((t.value >> b) & 1ULL) {
        EXPECT_LT(b, bit_width);  // no bit outside the configured width
        bits.insert({t.row * bit_width + b, t.col});
      }
    }
  }
  return bits;
}

class PackingTest : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(PackingTest, RoundTripsEveryBit) {
  const auto [nranks, bit_width, use_filter] = GetParam();
  const std::int64_t m = 300;
  VectorSampleSource src(m, {{5, 17, 100, 299},
                             {5, 6, 7, 8, 9, 150},
                             {},
                             {0, 299},
                             {17, 100}});

  // Expected (compact_row, col) pairs, built serially.
  std::set<std::int64_t> nonzero_rows;
  for (std::int64_t i = 0; i < src.sample_count(); ++i) {
    for (std::int64_t v : src.sample(i)) nonzero_rows.insert(v);
  }
  std::vector<std::int64_t> sorted_rows(nonzero_rows.begin(), nonzero_rows.end());
  auto compact = [&](std::int64_t v) -> std::int64_t {
    if (!use_filter) return v;
    return static_cast<std::int64_t>(
        std::lower_bound(sorted_rows.begin(), sorted_rows.end(), v) -
        sorted_rows.begin());
  };
  std::set<std::pair<std::int64_t, std::int64_t>> expected;
  for (std::int64_t i = 0; i < src.sample_count(); ++i) {
    for (std::int64_t v : src.sample(i)) expected.insert({compact(v), i});
  }

  std::mutex mutex;
  std::set<std::pair<std::int64_t, std::int64_t>> got;
  std::int64_t word_rows = -1;
  std::int64_t filtered_rows = -1;
  bsp::Runtime::run(nranks, [&](bsp::Comm& comm) {
    PackedBatch packed =
        pack_batch(comm, src, distmat::BlockRange{0, m}, bit_width, use_filter);
    const auto bits = unpack(packed.triplets, bit_width);
    std::lock_guard<std::mutex> lock(mutex);
    got.insert(bits.begin(), bits.end());
    word_rows = packed.word_rows;
    filtered_rows = packed.filtered_rows;
  });

  EXPECT_EQ(got, expected);
  const std::int64_t rows = use_filter ? static_cast<std::int64_t>(sorted_rows.size()) : m;
  EXPECT_EQ(filtered_rows, rows);
  EXPECT_EQ(word_rows, (rows + bit_width - 1) / bit_width);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PackingTest,
    ::testing::Combine(::testing::Values(1, 2, 5), ::testing::Values(1, 8, 64),
                      ::testing::Values(true, false)));

TEST(Packing, RejectsBadBitWidth) {
  VectorSampleSource src(10, {{1}});
  bsp::Runtime::run(1, [&](bsp::Comm& comm) {
    EXPECT_THROW(pack_batch(comm, src, distmat::BlockRange{0, 10}, 0, true),
                 std::invalid_argument);
    EXPECT_THROW(pack_batch(comm, src, distmat::BlockRange{0, 10}, 65, true),
                 std::invalid_argument);
  });
}

// ------------------------------------------------------------ conventions

TEST(Driver, EmptySamplesHaveSimilarityOne) {
  VectorSampleSource src(100, {{}, {}, {1, 2, 3}});
  Config cfg;
  cfg.algorithm = Algorithm::kSerial;
  const Result result = similarity_at_scale_threaded(1, src, cfg);
  EXPECT_DOUBLE_EQ(result.similarity.similarity(0, 1), 1.0);  // J(∅,∅) = 1
  EXPECT_DOUBLE_EQ(result.similarity.similarity(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(result.similarity.similarity(0, 2), 0.0);  // ∅ vs nonempty
  EXPECT_DOUBLE_EQ(result.similarity.similarity(2, 2), 1.0);
}

TEST(Driver, IdenticalAndDisjointSamples) {
  VectorSampleSource src(50, {{1, 5, 9}, {1, 5, 9}, {20, 30}});
  Config cfg;
  const Result result = similarity_at_scale_threaded(4, src, cfg);
  EXPECT_DOUBLE_EQ(result.similarity.similarity(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(result.similarity.similarity(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(result.similarity.distance(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(result.similarity.distance(0, 2), 1.0);
}

TEST(Driver, KnownOverlapValue) {
  // |A∩B| = 2, |A∪B| = 4 -> J = 0.5.
  VectorSampleSource src(64, {{1, 2, 3}, {2, 3, 4}});
  const Result result = similarity_at_scale_threaded(2, src, Config{});
  EXPECT_DOUBLE_EQ(result.similarity.similarity(0, 1), 0.5);
}

TEST(Driver, SingleSample) {
  VectorSampleSource src(32, {{0, 31}});
  const Result result = similarity_at_scale_threaded(3, src, Config{});
  ASSERT_EQ(result.n, 1);
  EXPECT_DOUBLE_EQ(result.similarity.similarity(0, 0), 1.0);
}

TEST(Driver, MoreRanksThanSamples) {
  // The Fig. 2a regime where MPI processes exceed matrix columns.
  VectorSampleSource src(40, {{1, 2}, {2, 3}, {30}});
  Config cfg;
  cfg.algorithm = Algorithm::kRing1D;
  const Result result = similarity_at_scale_threaded(8, src, cfg);
  EXPECT_NEAR(result.similarity.similarity(0, 1), 1.0 / 3.0, 1e-12);
}

TEST(Driver, RejectsInvalidConfigs) {
  VectorSampleSource src(10, {{1}});
  Config bad;
  bad.batch_count = 0;
  EXPECT_THROW((void)similarity_at_scale_threaded(1, src, bad), error::ConfigError);
  bad.batch_count = 11;  // more batches than rows
  EXPECT_THROW((void)similarity_at_scale_threaded(1, src, bad), error::ConfigError);
}

TEST(Driver, ReportsBatchStats) {
  VectorSampleSource src(128, {{1, 2, 3, 64, 127}, {2, 3, 90}});
  Config cfg;
  cfg.batch_count = 4;
  const Result result = similarity_at_scale_threaded(2, src, cfg);
  ASSERT_EQ(result.batches.size(), 4u);
  std::int64_t filtered = 0;
  for (const auto& b : result.batches) {
    EXPECT_GE(b.seconds, 0.0);
    filtered += b.filtered_rows;
  }
  EXPECT_EQ(filtered, 6);  // distinct attributes: {1,2,3,64,90,127}
}

// ------------------------------------------------------------- invariance

/// All knob settings must give bit-identical similarity matrices — the
/// paper's correctness contract for batching (Eq. 4), compression
/// (Eq. 7), and the parallel schedule (§III-C).
TEST(DriverInvariance, ResultIndependentOfAllKnobs) {
  Rng rng(2024);
  std::vector<std::vector<std::int64_t>> samples(12);
  for (auto& s : samples) {
    const std::int64_t count = 5 + static_cast<std::int64_t>(rng.uniform(40));
    for (std::int64_t i = 0; i < count; ++i) {
      s.push_back(static_cast<std::int64_t>(rng.uniform(900)));
    }
  }
  VectorSampleSource src(900, std::move(samples));

  Config base;
  base.algorithm = Algorithm::kSerial;
  const Result reference = similarity_at_scale_threaded(1, src, base);

  struct Knobs {
    Algorithm alg;
    int ranks;
    int batches;
    int bits;
    int c;
    bool filter;
  };
  const std::vector<Knobs> settings{
      {Algorithm::kSerial, 4, 9, 32, 1, true},
      {Algorithm::kRing1D, 3, 2, 64, 1, true},
      {Algorithm::kRing1D, 6, 13, 64, 1, false},
      {Algorithm::kSumma, 4, 1, 64, 1, true},
      {Algorithm::kSumma, 9, 6, 8, 1, true},
      {Algorithm::kSumma, 8, 3, 64, 2, true},
      {Algorithm::kSumma, 12, 4, 64, 3, false},
  };
  for (const Knobs& k : settings) {
    Config cfg;
    cfg.algorithm = k.alg;
    cfg.batch_count = k.batches;
    cfg.bit_width = k.bits;
    cfg.replication = k.c;
    cfg.use_zero_row_filter = k.filter;
    const Result got = similarity_at_scale_threaded(k.ranks, src, cfg);
    EXPECT_EQ(got.similarity.max_abs_diff(reference.similarity), 0.0)
        << "ranks=" << k.ranks << " batches=" << k.batches << " bits=" << k.bits
        << " c=" << k.c;
  }
}

// ---------------------------------------------------------------- metric

TEST(DistanceMetric, TriangleInequalityOnRandomFamilies) {
  // d_J is a proper metric (paper §II-A); check on random set families.
  Rng rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<std::vector<std::int64_t>> samples(9);
    for (auto& s : samples) {
      const std::int64_t count = 1 + static_cast<std::int64_t>(rng.uniform(30));
      for (std::int64_t i = 0; i < count; ++i) {
        s.push_back(static_cast<std::int64_t>(rng.uniform(120)));
      }
    }
    VectorSampleSource src(120, std::move(samples));
    const Result result = similarity_at_scale_threaded(2, src, Config{});
    const std::int64_t n = result.n;
    for (std::int64_t a = 0; a < n; ++a) {
      EXPECT_DOUBLE_EQ(result.similarity.distance(a, a), 0.0);
      for (std::int64_t b = 0; b < n; ++b) {
        EXPECT_DOUBLE_EQ(result.similarity.distance(a, b),
                         result.similarity.distance(b, a));
        for (std::int64_t c = 0; c < n; ++c) {
          EXPECT_LE(result.similarity.distance(a, c),
                    result.similarity.distance(a, b) +
                        result.similarity.distance(b, c) + 1e-12);
        }
      }
    }
  }
}

// --------------------------------------------------------------- sources

TEST(BernoulliSource, MembershipConsistentAcrossPartitions) {
  const BernoulliSampleSource src(/*universe=*/20000, /*samples=*/4, /*density=*/0.01,
                                  /*seed=*/11);
  // The union over any batch partition must equal the full-range query.
  for (std::int64_t sample = 0; sample < 4; ++sample) {
    const auto whole = src.values_in_range(sample, {0, 20000});
    for (int batches : {2, 3, 7}) {
      std::vector<std::int64_t> stitched;
      for (int b = 0; b < batches; ++b) {
        const auto part =
            src.values_in_range(sample, distmat::block_range(20000, batches, b));
        stitched.insert(stitched.end(), part.begin(), part.end());
      }
      EXPECT_EQ(stitched, whole) << "sample " << sample << " batches " << batches;
    }
  }
}

TEST(BernoulliSource, DensityHoldsInExpectation) {
  const double density = 0.02;
  const BernoulliSampleSource src(100000, 8, density, 3);
  std::int64_t total = 0;
  for (std::int64_t s = 0; s < 8; ++s) {
    total += static_cast<std::int64_t>(src.values_in_range(s, {0, 100000}).size());
  }
  const double observed = static_cast<double>(total) / (8.0 * 100000.0);
  EXPECT_NEAR(observed, density, density * 0.15);
}

TEST(BernoulliSource, ValuesSortedUniqueAndInRange) {
  const BernoulliSampleSource src(5000, 2, 0.05, 99);
  const auto values = src.values_in_range(0, {1000, 3000});
  EXPECT_TRUE(std::is_sorted(values.begin(), values.end()));
  EXPECT_TRUE(std::adjacent_find(values.begin(), values.end()) == values.end());
  for (std::int64_t v : values) {
    EXPECT_GE(v, 1000);
    EXPECT_LT(v, 3000);
  }
}

TEST(VectorSource, SortsDeduplicatesAndValidates) {
  VectorSampleSource src(100, {{9, 3, 3, 7}});
  EXPECT_EQ(src.sample(0), (std::vector<std::int64_t>{3, 7, 9}));
  EXPECT_THROW(VectorSampleSource(10, {{10}}), std::out_of_range);
  EXPECT_THROW(VectorSampleSource(10, {{-1}}), std::out_of_range);
}

TEST(VectorSource, RangeQueriesAreHalfOpen) {
  VectorSampleSource src(100, {{10, 20, 30}});
  EXPECT_EQ(src.values_in_range(0, {10, 30}), (std::vector<std::int64_t>{10, 20}));
  EXPECT_EQ(src.values_in_range(0, {0, 10}), (std::vector<std::int64_t>{}));
  EXPECT_EQ(src.values_in_range(0, {30, 100}), (std::vector<std::int64_t>{30}));
}

TEST(BernoulliSource, DensitySpreadVariesColumns) {
  const BernoulliSampleSource src(200000, 32, 1e-3, 5, /*density_spread=*/8.0);
  std::int64_t smallest = INT64_MAX;
  std::int64_t largest = 0;
  for (std::int64_t s = 0; s < 32; ++s) {
    const auto count = static_cast<std::int64_t>(src.values_in_range(s, {0, 200000}).size());
    smallest = std::min(smallest, count);
    largest = std::max(largest, count);
  }
  // Log-uniform spread over [1/8, 8] must produce clearly uneven columns.
  EXPECT_GT(largest, 4 * std::max<std::int64_t>(smallest, 1));
  EXPECT_THROW(BernoulliSampleSource(10, 1, 0.1, 1, 0.5), std::invalid_argument);
}

// -------------------------------------------------------------- matrix I/O

TEST(MatrixIo, BinaryRoundTrip) {
  const SimilarityMatrix matrix(3, {1.0, 0.25, 0.5, 0.25, 1.0, 0.125, 0.5, 0.125, 1.0});
  const std::vector<std::string> names{"alpha", "beta", "gamma"};
  std::stringstream buffer;
  write_similarity_binary(buffer, names, matrix);
  const NamedSimilarity parsed = read_similarity_binary(buffer);
  EXPECT_EQ(parsed.names, names);
  EXPECT_EQ(parsed.matrix.max_abs_diff(matrix), 0.0);
}

TEST(MatrixIo, BinaryRejectsCorruption) {
  const SimilarityMatrix matrix(1, {1.0});
  std::stringstream buffer;
  write_similarity_binary(buffer, {"only"}, matrix);
  std::string bytes = buffer.str();
  bytes[0] = 'X';  // break the magic
  std::istringstream bad(bytes);
  EXPECT_THROW((void)read_similarity_binary(bad), std::runtime_error);
  std::istringstream truncated(buffer.str().substr(0, 10));
  EXPECT_THROW((void)read_similarity_binary(truncated), std::runtime_error);
}

TEST(MatrixIo, ValidatesNames) {
  const SimilarityMatrix matrix(2, {1.0, 0.5, 0.5, 1.0});
  std::stringstream buffer;
  EXPECT_THROW(write_similarity_binary(buffer, {"one"}, matrix), std::invalid_argument);
  EXPECT_THROW(write_similarity_binary(buffer, {"a\nb", "c"}, matrix),
               std::invalid_argument);
}

TEST(MatrixIo, TsvHasHeaderAndFullPrecision) {
  const SimilarityMatrix matrix(2, {1.0, 1.0 / 3.0, 1.0 / 3.0, 1.0});
  std::ostringstream out;
  write_similarity_tsv(out, {"s1", "s2"}, matrix);
  const std::string tsv = out.str();
  EXPECT_NE(tsv.find("sample\ts1\ts2"), std::string::npos);
  EXPECT_NE(tsv.find("0.3333333333333333"), std::string::npos);
}

// ------------------------------------------------- randomized invariance

/// Seeded sweep: SUMMA at several ranks must match the serial reference on
/// synthetic Bernoulli inputs (complements the hand-built cases above).
class RandomizedInvariance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomizedInvariance, SummaMatchesSerialOnBernoulliInputs) {
  const std::uint64_t seed = GetParam();
  const BernoulliSampleSource src(5000, 20, 0.01, seed, /*density_spread=*/4.0);

  Config serial_cfg;
  serial_cfg.algorithm = Algorithm::kSerial;
  const Result reference = similarity_at_scale_threaded(1, src, serial_cfg);

  Config cfg;
  cfg.batch_count = 3;
  cfg.replication = 1;
  const Result summa = similarity_at_scale_threaded(9, src, cfg);
  EXPECT_EQ(summa.similarity.max_abs_diff(reference.similarity), 0.0);

  cfg.algorithm = Algorithm::kRing1D;
  const Result ring = similarity_at_scale_threaded(5, src, cfg);
  EXPECT_EQ(ring.similarity.max_abs_diff(reference.similarity), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedInvariance,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace sas::core
