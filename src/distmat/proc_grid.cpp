#include "distmat/proc_grid.hpp"

#include <cmath>
#include <stdexcept>

namespace sas::distmat {

namespace {

/// Largest s with s*s*layers <= p.
int grid_side(int p, int layers) {
  if (layers < 1 || p < layers) {
    throw std::invalid_argument("ProcGrid: need at least `layers` ranks");
  }
  int s = static_cast<int>(std::sqrt(static_cast<double>(p / layers)));
  while ((s + 1) * (s + 1) * layers <= p) ++s;
  while (s > 1 && s * s * layers > p) --s;
  return s;
}

}  // namespace

ProcGrid::ProcGrid(bsp::Comm& world, int layers) : world_(&world), layers_(layers) {
  side_ = grid_side(world.size(), layers);
  const int active_count = side_ * side_ * layers_;
  const int r = world.rank();
  active_ = r < active_count;

  if (active_) {
    layer_ = r / (side_ * side_);
    grid_row_ = (r / side_) % side_;
    grid_col_ = r % side_;
  }

  // Inactive ranks take distinct sentinel colors so they participate in
  // the collective split calls without joining any working group.
  const int idle = 1 << 28;  // beyond any valid color
  grid_comm_ = world.split(active_ ? 0 : idle + r, r);
  row_comm_ = world.split(active_ ? layer_ * side_ + grid_row_ : idle + r, grid_col_);
  col_comm_ = world.split(active_ ? layer_ * side_ + grid_col_ + side_ * side_
                                  : idle + r,
                          grid_row_);
  fiber_comm_ = world.split(active_ ? grid_row_ * side_ + grid_col_ + 2 * side_ * side_
                                    : idle + r,
                            layer_);
}

}  // namespace sas::distmat
