#!/usr/bin/env python3
"""sas-lint -- project-specific invariant checker for the SimilarityAtScale tree.

The codebase runs on a handful of invariants that used to exist only as
comments. This tool machine-checks them over src/**/*.{hpp,cpp} with a
hybrid of lexical rules (on comment/string-scrubbed text, so prose never
trips a rule) and compiler-backed checks (g++ -fsyntax-only):

  R1  avx512-confinement   AVX512 intrinsics / pragmas / target attributes
                           only in the two -mavx512vpopcntdq TUs
                           (popcount_stream.cpp, popcount_scatter.cpp) --
                           the GCC 12 VPOPCNTQ const-fold bug makes per-TU
                           isolation load-bearing, not stylistic.
  R2  tag-registry         no numeric message-tag literal at a
                           send/send_value/recv/recv_value call site and
                           no kTag* constant minted outside the central
                           registry (bsp/tags.hpp) or the reserved
                           internal range (bsp/comm.hpp).
  R3  typed-errors         no bare `throw std::runtime_error` / `abort()`
                           in src/ -- failures must use the sas::error
                           taxonomy so exit codes and rank annotation work.
  R4  stage-spans          every public stage entry point opens an
                           obs::Span (or a StageRecorder scope), so traces
                           cover the whole pipeline.
  R5  header-hygiene       every header has `#pragma once` and compiles
                           standalone (g++ -std=c++20 -fsyntax-only -Isrc).
  R6  script-compile       every .py under tools/ and scripts/ passes
                           `py_compile` -- script rot fails the lint job.
  R7  no-swallowed-catch   no `catch (...)` in src/ whose body neither
                           rethrows nor translates (throw / rethrow /
                           current_exception / make_exception_ptr) -- a
                           silently swallowed failure defeats the error
                           taxonomy AND the in-run recovery layer, which
                           classifies the escaped exception to decide
                           retry vs quarantine vs abort.

Suppressions: `// sas-lint: allow(R3 reason...)` on the offending line or
the line directly above masks that rule there; masked counts are reported.

Exit status: 0 when the tree is clean, 1 when any violation survives,
2 on usage / self-test harness errors.

`--self-test` runs the rule engine over tests/lint_fixtures/ and verifies
each seeded rN_* fixture trips exactly rule N, the clean fixture passes,
and suppressions mask-and-count. CI runs both modes; locally use
`cmake --build build --target lint`.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import os
import py_compile
import re
import subprocess
import sys
import tempfile
from dataclasses import dataclass

RULES = {
    "R1": "avx512-confinement",
    "R2": "tag-registry",
    "R3": "typed-errors",
    "R4": "stage-spans",
    "R5": "header-hygiene",
    "R6": "script-compile",
    "R7": "no-swallowed-catch",
}

# The two TUs CMake compiles with -mavx512vpopcntdq (basenames).
R1_ALLOWED_FILES = {"popcount_stream.cpp", "popcount_scatter.cpp"}

# Files allowed to mint tag constants: the central user-tag registry and
# the reserved internal (negative) range.
R2_REGISTRY_FILES = {"src/bsp/tags.hpp", "src/bsp/comm.hpp"}

# Public stage entry points (R4): wherever one of these is *defined* in
# src/, its body must open an observability span. Extend this list when a
# new pipeline stage lands.
R4_ENTRY_POINTS = {
    "run_exact_pipeline",
    "run_hybrid_pipeline",
    "ring_ata_accumulate",
    "summa_ata_accumulate",
    "targeted_ata_accumulate",
    "all_pairs_candidate_pass",
    "lsh_candidate_pass",
    "sketch_similarity_at_scale",
}

SUPPRESS_RE = re.compile(r"sas-lint:\s*allow\((R\d)\b[^)]*\)")

# Scrub order matters: raw strings before line comments before ordinary
# strings, so each region is claimed by its true syntactic role.
_SCRUB_RE = re.compile(
    r'R"(?P<delim>[^()\s\\"]{0,16})\((?:.|\n)*?\)(?P=delim)"'
    r"|//[^\n]*"
    r"|/\*(?:.|\n)*?\*/"
    r"|'(?:\\.|[^'\\\n])*'"
    r'|"(?:\\.|[^"\\\n])*"'
)


def scrub(text: str, keep_strings: bool = False) -> str:
    """Blank comments (and, unless keep_strings, string/char literals)
    with spaces, preserving newlines so line numbers survive."""

    def blank(match: re.Match) -> str:
        token = match.group(0)
        if keep_strings and not (
            token.startswith("//") or token.startswith("/*")
        ):
            return token
        return "".join(ch if ch == "\n" else " " for ch in token)

    return _SCRUB_RE.sub(blank, text)


@dataclass
class Violation:
    rule: str
    path: str
    line: int
    message: str
    suppressed: bool = False


def line_of(text: str, index: int) -> int:
    return text.count("\n", 0, index) + 1


def match_delim(text: str, start: int, open_ch: str, close_ch: str) -> int:
    """Index just past the delimiter matching text[start] (must be
    open_ch), or -1 when unbalanced."""
    depth = 0
    for i in range(start, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def split_top_level(args_text: str) -> list[str]:
    """Split an argument list on top-level commas (tracking (), [], {})."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in args_text:
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    parts.append("".join(current))
    return parts


# ---------------------------------------------------------------------------
# R1 -- AVX512 confinement
# ---------------------------------------------------------------------------

# Intrinsics / vector types are identifiers; pragmas and target
# attributes carry the ISA name in directive text or a string literal, so
# R1 scans comment-scrubbed text with strings KEPT.
R1_RE = re.compile(
    r"_mm512_\w+"
    r"|\b__m512\w*"
    r"|#\s*pragma\s[^\n]*avx512"
    r'|target\s*\(\s*"[^"]*avx512',
    re.IGNORECASE,
)


def check_r1(rel: str, code_with_strings: str) -> list[Violation]:
    if os.path.basename(rel) in R1_ALLOWED_FILES:
        return []
    out = []
    for m in R1_RE.finditer(code_with_strings):
        out.append(
            Violation(
                "R1",
                rel,
                line_of(code_with_strings, m.start()),
                f"AVX512 reference '{m.group(0).strip()}' outside the "
                "-mavx512vpopcntdq TUs (popcount_stream.cpp / "
                "popcount_scatter.cpp)",
            )
        )
    return out


# ---------------------------------------------------------------------------
# R2 -- tag registry
# ---------------------------------------------------------------------------

R2_CALL_RE = re.compile(
    r"(?:\.\s*|(?<![\w.:]))(send_value|send|recv_value|recv)\s*[<(]"
)
R2_KTAG_RE = re.compile(r"\bconstexpr\s+int\s+(kTag\w*)\s*=\s*([-+]?\d+)\s*[;,]")
R2_INT_RE = re.compile(r"[-+]?\d+")


def check_r2(rel: str, code: str) -> list[Violation]:
    if rel in R2_REGISTRY_FILES:
        return []
    out = []
    for m in R2_CALL_RE.finditer(code):
        i = m.end() - 1
        if code[i] == "<":  # explicit template args: skip to the '('
            close = match_delim(code, i, "<", ">")
            if close == -1:
                continue
            i = close
            while i < len(code) and code[i].isspace():
                i += 1
            if i >= len(code) or code[i] != "(":
                continue
        end = match_delim(code, i, "(", ")")
        if end == -1:
            continue
        args = split_top_level(code[i + 1 : end - 1])
        if len(args) < 2:
            continue
        tag = args[1].strip()
        if R2_INT_RE.fullmatch(tag):
            out.append(
                Violation(
                    "R2",
                    rel,
                    line_of(code, m.start()),
                    f"numeric message-tag literal {tag} at {m.group(1)}() "
                    "call site -- mint a named tag in bsp/tags.hpp",
                )
            )
    for m in R2_KTAG_RE.finditer(code):
        out.append(
            Violation(
                "R2",
                rel,
                line_of(code, m.start()),
                f"tag constant {m.group(1)} = {m.group(2)} minted outside "
                "the central registry (bsp/tags.hpp)",
            )
        )
    return out


# ---------------------------------------------------------------------------
# R3 -- typed errors
# ---------------------------------------------------------------------------

R3_PATTERNS = (
    (
        re.compile(r"\bthrow\s+std::runtime_error\b"),
        "bare `throw std::runtime_error` -- use the sas::error taxonomy "
        "(error::ConfigError / CorruptInput / ... carry exit codes and "
        "rank annotation)",
    ),
    (
        re.compile(r"(?<![\w:.>])(?:std::)?abort\s*\(\s*\)"),
        "`abort()` tears the process down without unwinding the BSP "
        "runtime -- throw a sas::error instead",
    ),
)


def check_r3(rel: str, code: str) -> list[Violation]:
    out = []
    for pattern, message in R3_PATTERNS:
        for m in pattern.finditer(code):
            out.append(Violation("R3", rel, line_of(code, m.start()), message))
    return out


# ---------------------------------------------------------------------------
# R4 -- stage spans
# ---------------------------------------------------------------------------

R4_SPAN_RE = re.compile(
    r"obs::(Span|CollectiveScope|BatchScope)\b|StageRecorder|\.scope\s*\("
)


def check_r4(rel: str, code: str) -> list[Violation]:
    out = []
    for name in R4_ENTRY_POINTS:
        for m in re.finditer(r"\b" + re.escape(name) + r"\s*\(", code):
            open_paren = code.index("(", m.start())
            end = match_delim(code, open_paren, "(", ")")
            if end == -1:
                continue
            # Definition when the parameter list is followed by an
            # (optionally qualified) body; a `;` means declaration/call.
            i = end
            while i < len(code) and (
                code[i].isspace() or code[i : i + 5] == "const"
            ):
                i += 5 if code[i : i + 5] == "const" else 1
            if code[i : i + 8] == "noexcept":
                i += 8
                while i < len(code) and code[i].isspace():
                    i += 1
            if i >= len(code) or code[i] != "{":
                continue
            body_end = match_delim(code, i, "{", "}")
            if body_end == -1:
                continue
            if not R4_SPAN_RE.search(code[i:body_end]):
                out.append(
                    Violation(
                        "R4",
                        rel,
                        line_of(code, m.start()),
                        f"stage entry point {name}() opens no obs::Span / "
                        "StageRecorder scope -- traces would skip this stage",
                    )
                )
    return out


# ---------------------------------------------------------------------------
# R7 -- no swallowed catch-all
# ---------------------------------------------------------------------------

R7_CATCH_RE = re.compile(r"\bcatch\s*\(\s*\.\.\.\s*\)\s*\{")
# A body containing any of these handles the exception honestly: a bare
# rethrow, a typed throw, or capture/translation into an exception_ptr.
R7_HANDLED_RE = re.compile(
    r"\bthrow\b|\bcurrent_exception\b|\bmake_exception_ptr\b|\brethrow_exception\b"
)


def check_r7(rel: str, code: str) -> list[Violation]:
    out = []
    for m in R7_CATCH_RE.finditer(code):
        brace = m.end() - 1
        body_end = match_delim(code, brace, "{", "}")
        if body_end == -1:
            continue
        if R7_HANDLED_RE.search(code[brace:body_end]):
            continue
        out.append(
            Violation(
                "R7",
                rel,
                line_of(code, m.start()),
                "`catch (...)` swallows the exception (no rethrow, no "
                "translation) -- the recovery layer can no longer classify "
                "the failure; rethrow, translate to a sas::error, or "
                "suppress with a reason",
            )
        )
    return out


# ---------------------------------------------------------------------------
# R5 -- header hygiene
# ---------------------------------------------------------------------------


def check_r5_pragma(rel: str, code: str) -> list[Violation]:
    if not rel.endswith(".hpp"):
        return []
    if re.search(r"^\s*#\s*pragma\s+once\b", code, re.MULTILINE):
        return []
    return [Violation("R5", rel, 1, "header lacks `#pragma once`")]


def compile_header(root: str, path: str, include_dir: str) -> str:
    """Return g++'s stderr when `path` fails to compile standalone, else ''."""
    cmd = [
        "g++",
        "-std=c++20",
        "-fsyntax-only",
        "-x",
        "c++",
        "-I",
        include_dir,
        path,
    ]
    proc = subprocess.run(
        cmd, cwd=root, capture_output=True, text=True, check=False
    )
    if proc.returncode == 0:
        return ""
    stderr = proc.stderr.strip()
    return stderr if stderr else f"g++ exited {proc.returncode}"


def check_r5_compile(root: str, headers: list[str], include_dir: str) -> list[Violation]:
    out = []
    with concurrent.futures.ThreadPoolExecutor(
        max_workers=min(8, os.cpu_count() or 1)
    ) as pool:
        futures = {
            pool.submit(compile_header, root, h, include_dir): h for h in headers
        }
        for future in concurrent.futures.as_completed(futures):
            rel = futures[future]
            stderr = future.result()
            if stderr:
                first = stderr.splitlines()[0]
                out.append(
                    Violation(
                        "R5",
                        rel,
                        1,
                        f"header does not compile standalone: {first}",
                    )
                )
    return out


# ---------------------------------------------------------------------------
# R6 -- python script compile
# ---------------------------------------------------------------------------


def check_r6(root: str) -> list[Violation]:
    out = []
    for sub in ("tools", "scripts"):
        directory = os.path.join(root, sub)
        if not os.path.isdir(directory):
            continue
        for entry in sorted(os.listdir(directory)):
            if not entry.endswith(".py"):
                continue
            rel = f"{sub}/{entry}"
            with tempfile.NamedTemporaryFile(suffix=".pyc") as scratch:
                try:
                    py_compile.compile(
                        os.path.join(directory, entry), cfile=scratch.name, doraise=True
                    )
                except py_compile.PyCompileError as err:
                    out.append(
                        Violation(
                            "R6", rel, 1, f"py_compile failed: {err.msg.splitlines()[0]}"
                        )
                    )
    return out


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------


def collect_suppressions(text: str) -> dict[int, set[str]]:
    """Map line number -> rules suppressed there (the annotated line and
    the one below it)."""
    allowed: dict[int, set[str]] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        for m in SUPPRESS_RE.finditer(line):
            for covered in (number, number + 1):
                allowed.setdefault(covered, set()).add(m.group(1))
    return allowed


def lint_file(root: str, rel: str) -> tuple[list[Violation], int]:
    """All lexical-rule findings for one file; returns (violations kept,
    suppressed count). Compile-backed checks run separately."""
    with open(os.path.join(root, rel), encoding="utf-8") as handle:
        raw = handle.read()
    code = scrub(raw)
    code_with_strings = scrub(raw, keep_strings=True)
    findings = (
        check_r1(rel, code_with_strings)
        + check_r2(rel, code)
        + check_r3(rel, code)
        + check_r4(rel, code)
        + check_r5_pragma(rel, code)
        + check_r7(rel, code)
    )
    allowed = collect_suppressions(raw)
    kept: list[Violation] = []
    suppressed = 0
    for violation in findings:
        if violation.rule in allowed.get(violation.line, set()):
            violation.suppressed = True
            suppressed += 1
        kept.append(violation)
    return kept, suppressed


def tree_files(root: str, subdir: str = "src") -> list[str]:
    out = []
    for base, _dirs, names in os.walk(os.path.join(root, subdir)):
        for name in sorted(names):
            if name.endswith((".hpp", ".cpp")):
                out.append(os.path.relpath(os.path.join(base, name), root))
    return sorted(out)


def run_lint(root: str, no_compile: bool) -> int:
    files = tree_files(root)
    if not files:
        print(f"sas-lint: no sources under {root}/src", file=sys.stderr)
        return 2
    violations: list[Violation] = []
    suppressed_total = 0
    for rel in files:
        found, suppressed = lint_file(root, rel)
        violations.extend(found)
        suppressed_total += suppressed
    if not no_compile:
        headers = [f for f in files if f.endswith(".hpp")]
        violations.extend(check_r5_compile(root, headers, "src"))
    violations.extend(check_r6(root))

    active = [v for v in violations if not v.suppressed]
    for violation in sorted(active, key=lambda v: (v.path, v.line, v.rule)):
        print(
            f"{violation.path}:{violation.line}: [{violation.rule} "
            f"{RULES[violation.rule]}] {violation.message}"
        )

    print(
        f"sas-lint: scanned {len(files)} file(s): "
        f"{len(active)} violation(s), {suppressed_total} suppressed"
    )
    for rule in sorted(RULES):
        rule_active = sum(1 for v in active if v.rule == rule)
        rule_masked = sum(1 for v in violations if v.suppressed and v.rule == rule)
        print(
            f"  {rule} {RULES[rule]:<20} {rule_active} violation(s), "
            f"{rule_masked} suppressed"
        )
    return 1 if active else 0


# ---------------------------------------------------------------------------
# Self-test over the seeded fixtures
# ---------------------------------------------------------------------------


def run_self_test(root: str, no_compile: bool) -> int:
    fixtures = os.path.join(root, "tests", "lint_fixtures")
    if not os.path.isdir(fixtures):
        print(f"sas-lint --self-test: missing {fixtures}", file=sys.stderr)
        return 2
    failures = []

    def fixture_findings(name: str) -> tuple[list[Violation], int]:
        rel = os.path.relpath(os.path.join(fixtures, name), root)
        found, suppressed = lint_file(root, rel)
        if not no_compile and name.endswith(".hpp"):
            found.extend(check_r5_compile(root, [rel], "src"))
        return found, suppressed

    for name in sorted(os.listdir(fixtures)):
        prefix = name.split("_", 1)[0]
        if prefix.upper() not in RULES:
            continue
        expected = prefix.upper()
        found, _ = fixture_findings(name)
        active_rules = {v.rule for v in found if not v.suppressed}
        if expected not in active_rules:
            failures.append(f"{name}: expected a {expected} violation, got {sorted(active_rules)}")
        elif active_rules != {expected}:
            failures.append(
                f"{name}: expected only {expected}, got {sorted(active_rules)}"
            )

    found, suppressed = fixture_findings("clean_ok.cpp")
    if [v for v in found if not v.suppressed] or suppressed:
        failures.append("clean_ok.cpp: expected no findings")

    found, suppressed = fixture_findings("suppressed_ok.cpp")
    if [v for v in found if not v.suppressed]:
        failures.append("suppressed_ok.cpp: suppression did not mask the violation")
    if suppressed < 1:
        failures.append("suppressed_ok.cpp: suppression was not counted")

    if failures:
        for failure in failures:
            print(f"sas-lint self-test FAIL: {failure}", file=sys.stderr)
        return 2
    print("sas-lint self-test: all fixtures behaved (each rN fixture trips "
          "exactly rule N; clean passes; suppressions mask and count)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: the tree containing this script)",
    )
    parser.add_argument(
        "--no-compile",
        action="store_true",
        help="skip the g++ standalone-header compile of R5 (quick mode)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="verify the rule engine against tests/lint_fixtures/",
    )
    args = parser.parse_args()
    root = os.path.abspath(args.root)
    if args.self_test:
        return run_self_test(root, args.no_compile)
    return run_lint(root, args.no_compile)


if __name__ == "__main__":
    sys.exit(main())
