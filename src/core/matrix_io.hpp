// matrix_io.hpp — persistence for similarity matrices.
//
// The paper publishes its computed distance matrices "to foster
// high-performance distributed genomics research"; these routines are the
// repository's equivalent: a self-describing binary format for exact
// round-trips and a TSV view for spreadsheets/scripts. PHYLIP export for
// phylogenetics lives in genome/phylip.hpp.
#pragma once

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "core/similarity_matrix.hpp"

namespace sas::core {

/// Binary format: magic "SASM", u64 n, u64 name-block length, names as
/// '\n'-joined UTF-8, then n×n little-endian doubles.
void write_similarity_binary(std::ostream& out, const std::vector<std::string>& names,
                             const SimilarityMatrix& matrix);

struct NamedSimilarity {
  std::vector<std::string> names;
  SimilarityMatrix matrix;
};

[[nodiscard]] NamedSimilarity read_similarity_binary(std::istream& in);

void write_similarity_binary_file(const std::string& path,
                                  const std::vector<std::string>& names,
                                  const SimilarityMatrix& matrix);

[[nodiscard]] NamedSimilarity read_similarity_binary_file(const std::string& path);

/// Tab-separated: header row of names, then one row per sample
/// (name + n similarity values at full precision).
void write_similarity_tsv(std::ostream& out, const std::vector<std::string>& names,
                          const SimilarityMatrix& matrix);

}  // namespace sas::core
