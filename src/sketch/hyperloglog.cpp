#include "sketch/hyperloglog.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <stdexcept>

namespace sas::sketch {

namespace {

/// Bias-correction constant α_m (Flajolet et al. 2007, Fig. 3).
double hll_alpha(std::int64_t m) noexcept {
  switch (m) {
    case 16: return 0.673;
    case 32: return 0.697;
    case 64: return 0.709;
    default: return 0.7213 / (1.0 + 1.079 / static_cast<double>(m));
  }
}

/// 2^-r for register values (max rank is 64 − p + 1 ≤ 61).
const double* inv_pow2_table() noexcept {
  static const auto table = [] {
    std::array<double, 64> t{};
    for (std::size_t r = 0; r < t.size(); ++r) t[r] = std::ldexp(1.0, -static_cast<int>(r));
    return t;
  }();
  return table.data();
}

/// Raw + small-range-corrected cardinality from the harmonic sum and the
/// zero-register count.
double hll_estimate_from(double inv_sum, std::int64_t zeros, std::int64_t m) noexcept {
  const auto md = static_cast<double>(m);
  const double raw = hll_alpha(m) * md * md / inv_sum;
  if (raw <= 2.5 * md && zeros > 0) {
    return md * std::log(md / static_cast<double>(zeros));
  }
  return raw;
}

/// Shared Jaccard arithmetic: both the object and the wire path feed
/// their registers through this one routine (index-ascending sums), so
/// the two produce bit-identical estimates.
template <typename RegA, typename RegB>
double hll_jaccard_impl(RegA reg_a, RegB reg_b, std::int64_t m) {
  const double* const inv = inv_pow2_table();
  double sum_a = 0.0;
  double sum_b = 0.0;
  double sum_u = 0.0;
  std::int64_t zero_a = 0;
  std::int64_t zero_b = 0;
  std::int64_t zero_u = 0;
  for (std::int64_t i = 0; i < m; ++i) {
    const unsigned a = reg_a(i);
    const unsigned b = reg_b(i);
    const unsigned u = a > b ? a : b;
    sum_a += inv[a];
    sum_b += inv[b];
    sum_u += inv[u];
    zero_a += a == 0;
    zero_b += b == 0;
    zero_u += u == 0;
  }
  const double est_u = hll_estimate_from(sum_u, zero_u, m);
  if (est_u <= 0.0) return 1.0;  // both sketches empty: J(∅, ∅) = 1
  const double inter =
      hll_estimate_from(sum_a, zero_a, m) + hll_estimate_from(sum_b, zero_b, m) - est_u;
  if (inter <= 0.0) return 0.0;
  return std::min(1.0, inter / est_u);
}

/// Register i of a packed payload (8 registers per word, little-endian
/// byte lanes).
unsigned packed_register(std::span<const std::uint64_t> payload, std::int64_t i) noexcept {
  return static_cast<unsigned>(
      (payload[static_cast<std::size_t>(i >> 3)] >> ((i & 7) * 8)) & 0xff);
}

void check_precision(int precision) {
  if (precision < HyperLogLog::kMinPrecision || precision > HyperLogLog::kMaxPrecision) {
    throw std::invalid_argument("HyperLogLog: precision must be in [4, 18]");
  }
}

}  // namespace

HyperLogLog::HyperLogLog(int precision, std::uint64_t seed)
    : precision_(precision), seed_(seed), hash_(seed) {
  check_precision(precision);
  registers_.assign(std::size_t{1} << precision, 0);
}

HyperLogLog::HyperLogLog(std::span<const std::uint64_t> elements, int precision,
                         std::uint64_t seed)
    : HyperLogLog(precision, seed) {
  for (std::uint64_t e : elements) add(e);
}

void HyperLogLog::add(std::uint64_t element) noexcept {
  const std::uint64_t h = hash_(element);
  const auto idx = static_cast<std::size_t>(h >> (64 - precision_));
  const std::uint64_t rest = h << precision_;
  const auto rank = static_cast<std::uint8_t>(
      rest == 0 ? 64 - precision_ + 1 : std::countl_zero(rest) + 1);
  if (rank > registers_[idx]) registers_[idx] = rank;
}

double HyperLogLog::estimate() const {
  const double* const inv = inv_pow2_table();
  double sum = 0.0;
  std::int64_t zeros = 0;
  for (std::uint8_t r : registers_) {
    sum += inv[r];
    zeros += r == 0;
  }
  return hll_estimate_from(sum, zeros, register_count());
}

HyperLogLog HyperLogLog::merge(const HyperLogLog& a, const HyperLogLog& b) {
  if (a.precision_ != b.precision_ || a.seed_ != b.seed_) {
    throw std::invalid_argument("HyperLogLog::merge: incompatible sketches");
  }
  HyperLogLog out(a.precision_, a.seed_);
  for (std::size_t i = 0; i < out.registers_.size(); ++i) {
    out.registers_[i] = std::max(a.registers_[i], b.registers_[i]);
  }
  return out;
}

double HyperLogLog::estimate_jaccard(const HyperLogLog& a, const HyperLogLog& b) {
  if (a.precision_ != b.precision_ || a.seed_ != b.seed_) {
    throw std::invalid_argument("HyperLogLog::estimate_jaccard: incompatible sketches");
  }
  const std::uint8_t* const ra = a.registers_.data();
  const std::uint8_t* const rb = b.registers_.data();
  return hll_jaccard_impl([ra](std::int64_t i) { return static_cast<unsigned>(ra[i]); },
                          [rb](std::int64_t i) { return static_cast<unsigned>(rb[i]); },
                          a.register_count());
}

std::vector<std::uint64_t> HyperLogLog::serialize() const {
  const std::int64_t m = register_count();
  std::vector<std::uint64_t> out;
  out.reserve(kWireHeaderWords + static_cast<std::size_t>(m / 8));
  out.push_back(wire_header_word(WireType::kHyperLogLog));
  out.push_back(static_cast<std::uint64_t>(precision_));
  out.push_back(seed_);
  for (std::int64_t w = 0; w < m / 8; ++w) {
    std::uint64_t word = 0;
    for (int lane = 0; lane < 8; ++lane) {
      word |= static_cast<std::uint64_t>(registers_[static_cast<std::size_t>(w * 8 + lane)])
              << (lane * 8);
    }
    out.push_back(word);
  }
  return out;
}

HyperLogLog HyperLogLog::deserialize(std::span<const std::uint64_t> wire) {
  if (wire_type(wire) != WireType::kHyperLogLog) {
    throw std::invalid_argument("HyperLogLog::deserialize: not an HLL blob");
  }
  const int precision = static_cast<int>(wire[1]);
  check_precision(precision);
  const std::int64_t m = std::int64_t{1} << precision;
  if (wire.size() != kWireHeaderWords + static_cast<std::size_t>(m / 8)) {
    throw std::invalid_argument("HyperLogLog::deserialize: truncated payload");
  }
  HyperLogLog out(precision, wire[2]);
  const auto payload = wire.subspan(kWireHeaderWords);
  for (std::int64_t i = 0; i < m; ++i) {
    out.registers_[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(packed_register(payload, i));
  }
  return out;
}

double hll_wire_jaccard(std::span<const std::uint64_t> a,
                        std::span<const std::uint64_t> b) {
  // Type first (same gap as oph_wire_jaccard): a blob of another sketch
  // type with matching params/seed words must throw, not be decoded as
  // packed HLL registers.
  if (wire_type(a) != WireType::kHyperLogLog || wire_type(b) != WireType::kHyperLogLog) {
    throw std::invalid_argument("hll_wire_jaccard: not HLL blobs");
  }
  if (a.size() != b.size() || a.size() < kWireHeaderWords + 2 || a[1] != b[1] ||
      a[2] != b[2]) {
    throw std::invalid_argument("hll_wire_jaccard: incompatible blobs");
  }
  check_precision(static_cast<int>(a[1]));  // malformed params word would UB the shift
  const std::int64_t m = std::int64_t{1} << static_cast<int>(a[1]);
  const auto pa = a.subspan(kWireHeaderWords);
  const auto pb = b.subspan(kWireHeaderWords);
  if (pa.size() != static_cast<std::size_t>(m / 8)) {
    throw std::invalid_argument("hll_wire_jaccard: truncated payload");
  }
  return hll_jaccard_impl([pa](std::int64_t i) { return packed_register(pa, i); },
                          [pb](std::int64_t i) { return packed_register(pb, i); }, m);
}

}  // namespace sas::sketch
