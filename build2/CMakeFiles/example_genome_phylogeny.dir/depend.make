# Empty dependencies file for example_genome_phylogeny.
# This may be replaced when dependencies are built.
