#include "core/packing.hpp"

#include <algorithm>
#include <stdexcept>

#include "distmat/dist_filter.hpp"

namespace sas::core {

BatchReads read_batch(int rank, int nranks, const SampleSource& source,
                      distmat::BlockRange rows) {
  const std::int64_t n = source.sample_count();
  BatchReads reads;
  const auto my_sample_count =
      static_cast<std::size_t>(rank < n ? (n - rank + nranks - 1) / nranks : 0);
  reads.samples.reserve(my_sample_count);
  reads.values.reserve(my_sample_count);
  for (std::int64_t i = rank; i < n; i += nranks) {
    reads.samples.push_back(i);
    reads.values.push_back(source.values_in_range(i, rows));
  }
  return reads;
}

PackedBatch pack_batch(bsp::Comm& comm, const BatchReads& reads,
                       distmat::BlockRange rows, int bit_width, bool use_filter,
                       bool compress_filter) {
  if (bit_width < 1 || bit_width > 64) {
    throw std::invalid_argument("pack_batch: bit_width must be in [1, 64]");
  }
  const std::int64_t batch_height = rows.size();

  // (1) Distributed zero-row filter f⁽ˡ⁾, replicated on all ranks.
  // Offsets are relative to the batch start (reads carry global ids).
  std::vector<std::int64_t> filter;
  if (use_filter) {
    std::vector<std::int64_t> observed;
    for (const auto& values : reads.values) {
      for (std::int64_t v : values) observed.push_back(v - rows.begin);
    }
    filter = distmat::distributed_index_union(
        comm, std::span<const std::int64_t>(observed), batch_height, compress_filter);
  }

  PackedBatch out;
  out.filtered_rows = use_filter ? static_cast<std::int64_t>(filter.size()) : batch_height;
  out.word_rows = (out.filtered_rows + bit_width - 1) / bit_width;

  // (2) Compact and pack: consecutive compacted rows of one sample that
  // share a word are OR-merged as they stream by (offsets are sorted, and
  // the compaction map is monotone, so same-word runs are contiguous).
  // One packed triplet is emitted per (sample, word) run — up to b× fewer
  // than the raw offsets, so amortized growth beats reserving the loose
  // offset-count bound (which would pin up to 64× the needed capacity for
  // the batch's lifetime).
  const std::span<const std::int64_t> filter_span(filter);
  for (std::size_t s = 0; s < reads.samples.size(); ++s) {
    const std::int64_t col = reads.samples[s];
    std::int64_t current_word = -1;
    std::uint64_t mask = 0;
    for (std::int64_t value : reads.values[s]) {
      const std::int64_t offset = value - rows.begin;
      const std::int64_t compacted =
          use_filter ? distmat::compact_row_id(filter_span, offset) : offset;
      const std::int64_t word = compacted / bit_width;
      const int bit = static_cast<int>(compacted % bit_width);
      if (word != current_word) {
        if (current_word >= 0) out.triplets.push_back({current_word, col, mask});
        current_word = word;
        mask = 0;
      }
      mask |= (1ULL << bit);
    }
    if (current_word >= 0) out.triplets.push_back({current_word, col, mask});
  }
  return out;
}

PackedBatch pack_batch(bsp::Comm& comm, const SampleSource& source,
                       distmat::BlockRange rows, int bit_width, bool use_filter,
                       bool compress_filter) {
  return pack_batch(comm, read_batch(comm.rank(), comm.size(), source, rows), rows,
                    bit_width, use_filter, compress_filter);
}

std::vector<std::uint64_t> pack_word_panel(
    const std::vector<std::vector<std::uint64_t>>& blobs) {
  std::size_t payload = 0;
  for (const auto& blob : blobs) payload += blob.size();
  std::vector<std::uint64_t> panel;
  panel.reserve(1 + blobs.size() + payload);
  panel.push_back(blobs.size());
  for (const auto& blob : blobs) panel.push_back(blob.size());
  for (const auto& blob : blobs) panel.insert(panel.end(), blob.begin(), blob.end());
  return panel;
}

std::vector<std::span<const std::uint64_t>> unpack_word_panel(
    std::span<const std::uint64_t> panel) {
  if (panel.empty()) throw std::invalid_argument("unpack_word_panel: empty panel");
  const auto count = static_cast<std::size_t>(panel[0]);
  if (panel.size() < 1 + count) {
    throw std::invalid_argument("unpack_word_panel: truncated length table");
  }
  std::vector<std::span<const std::uint64_t>> views;
  views.reserve(count);
  std::size_t offset = 1 + count;
  for (std::size_t i = 0; i < count; ++i) {
    const auto len = static_cast<std::size_t>(panel[1 + i]);
    if (offset + len > panel.size()) {
      throw std::invalid_argument("unpack_word_panel: truncated payload");
    }
    views.push_back(panel.subspan(offset, len));
    offset += len;
  }
  if (offset != panel.size()) {
    throw std::invalid_argument("unpack_word_panel: trailing bytes");
  }
  return views;
}

}  // namespace sas::core
