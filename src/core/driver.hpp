// driver.hpp — the SimilarityAtScale algorithm (paper Listings 1–2).
//
// Orchestrates the full batched pipeline over a bsp communicator:
//
//   for each batch A⁽ˡ⁾:                               (Eq. 3)
//     read + filter zero rows + bitmask-compress        (packing.hpp)
//     redistribute packed entries onto the grid         (redistribute.hpp)
//     B  += Â⁽ˡ⁾ᵀ Â⁽ˡ⁾  under the popcount semiring      (spgemm.hpp, Eq. 7)
//     â  += column popcounts                            (Eq. 4)
//   C = â1ᵀ + 1âᵀ − B;  S = B ⊘ C;  D = 1 − S           (Eq. 2)
//
// The returned similarity matrix is assembled on world rank 0.
#pragma once

#include <vector>

#include "bsp/comm.hpp"
#include "core/config.hpp"
#include "core/sample_source.hpp"
#include "core/similarity_matrix.hpp"

namespace sas::core {

/// Per-batch instrumentation (rank-0 view; the benches consume this).
struct BatchStats {
  double seconds = 0.0;          ///< wall time, barrier-to-barrier (I/O included)
  std::int64_t filtered_rows = 0;///< rows surviving the zero-row filter
  std::int64_t word_rows = 0;    ///< h after bitmask compression
  std::int64_t packed_nnz = 0;   ///< nonzero words across all ranks
};

struct Result {
  std::int64_t n = 0;
  SimilarityMatrix similarity;      ///< valid on world rank 0
  std::vector<BatchStats> batches;  ///< valid on world rank 0
  int active_ranks = 0;             ///< ranks that took part in the product
};

/// Run SimilarityAtScale collectively over `world`. Every rank of `world`
/// must call with identical `config`; the result's similarity matrix and
/// batch statistics are populated on rank 0.
[[nodiscard]] Result similarity_at_scale(bsp::Comm& world, const SampleSource& source,
                                         const Config& config);

/// Single-threaded convenience wrapper: spins up `nranks` bsp ranks, runs
/// the driver, and returns rank 0's result (plus the cost counters, if
/// requested via `counters_out`).
[[nodiscard]] Result similarity_at_scale_threaded(
    int nranks, const SampleSource& source, const Config& config,
    std::vector<bsp::CostCounters>* counters_out = nullptr);

}  // namespace sas::core
