// Clean fixture: exercises the shapes the rules look at, written the way
// the tree is supposed to write them -- named registry tags, taxonomy
// errors, a span-opening stage body. Must produce zero findings.
// Never compiled -- sas_lint.py --self-test only.

void well_behaved_exchange(sas::bsp::Comm& comm, int peer) {
  const obs::Span stage_span("fixture-stage", "fixture", &comm.counters());
  comm.send_value<int>(peer, sas::bsp::tags::kSpgemmRing, 42);
  const auto reply = comm.recv<int>(peer, sas::bsp::tags::kSpgemmRing);
  if (reply.empty()) {
    throw sas::error::CorruptInput("fixture: peer sent an empty reply");
  }
}
