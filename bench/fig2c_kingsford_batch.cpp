// fig2c_kingsford_batch — reproduces paper Fig. 2c.
//
// Batch-size sensitivity at a fixed rank count on the Kingsford-like
// dataset: sweeping the number of batches (inversely, the batch size) and
// reporting time/batch plus the projected total. The paper's finding:
// "execution time does not scale with batch size ... a larger batch size
// has a lesser overhead in synchronization/latency and bandwidth costs",
// so the projected total time falls as batches get bigger.
#include "bench_common.hpp"

using namespace sas;
using namespace sas::bench;

int main() {
  const auto source = kingsford_like();
  print_header("Fig. 2c — Kingsford dataset, batch-size sensitivity",
               "Besta et al., IPDPS'20, Figure 2c",
               "n=516, m=2^22, density=1.5e-4, fixed 8 ranks (paper: 8 nodes, "
               "1024-16384 batches)");

  const bsp::BspMachine model = machine();
  const int ranks = 8;
  TextTable table({"batches", "rows/batch", "time/batch", "projected total",
                   "actual total", "modelled BSP"});
  for (int batches : {128, 64, 32, 16, 8, 4}) {
    core::Config config;
    config.batch_count = batches;
    const RunResult run = run_driver(ranks, source, config);
    append_result_bytes_json("fig2c_kingsford_batch", "batches=" + std::to_string(batches),
                             run.result);
    const BatchTiming timing = summarize_batches(run.result.batches, /*warmup=*/1);
    table.add_row({std::to_string(batches),
                   fmt_count(static_cast<std::uint64_t>(source.attribute_universe() /
                                                        batches)),
                   fmt_duration(timing.mean_seconds),
                   fmt_duration(timing.mean_seconds * batches),
                   fmt_duration(run.wall_seconds),
                   fmt_duration(model.modelled_seconds(run.cost))});
  }
  table.print();
  std::printf("\nPaper shape to match: time/batch grows sub-linearly as batches shrink\n"
              "(0.67s at 16384 batches -> 6.78s at 1024 in the paper), so the projected\n"
              "total falls with increasing batch size.\n");
  return 0;
}
