#include "distmat/spgemm.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "bsp/tags.hpp"
#include "distmat/crossover.hpp"
#include "obs/trace.hpp"
#include "util/numa.hpp"
#include "util/popcount.hpp"

namespace sas::distmat {

void popcount_join_accumulate(std::span<const Triplet<std::uint64_t>> L,
                              std::span<const Triplet<std::uint64_t>> N,
                              std::int64_t l_col_base, std::int64_t n_col_base,
                              DenseBlock<std::int64_t>& out,
                              bsp::CostCounters* counters) {
  const std::int64_t stride = out.local_cols();
  std::int64_t* const values = out.values.data();
  std::uint64_t flops = 0;

  std::size_t i = 0;
  std::size_t j = 0;
  while (i < L.size() && j < N.size()) {
    const std::int64_t lr = L[i].row;
    const std::int64_t nr = N[j].row;
    if (lr < nr) {
      while (i < L.size() && L[i].row == lr) ++i;
    } else if (nr < lr) {
      while (j < N.size() && N[j].row == nr) ++j;
    } else {
      std::size_t ie = i;
      while (ie < L.size() && L[ie].row == lr) ++ie;
      std::size_t je = j;
      while (je < N.size() && N[je].row == lr) ++je;
      for (std::size_t a = i; a < ie; ++a) {
        const std::int64_t out_row = l_col_base + L[a].col;
        const std::uint64_t wa = L[a].value;
        std::int64_t* const row_values = values + out_row * stride + n_col_base;
        for (std::size_t b = j; b < je; ++b) {
          row_values[N[b].col] += popcount64(wa & N[b].value);
        }
      }
      flops += static_cast<std::uint64_t>(ie - i) * static_cast<std::uint64_t>(je - j);
      i = ie;
      j = je;
    }
  }
  if (counters != nullptr) counters->flops += flops;
}

namespace {

/// Word-rows present in both panels — a two-pointer merge over the two
/// sorted occupied-row lists, O(occupied_L + occupied_N) regardless of
/// the nominal row space (which is ~10¹² in the unfiltered hypersparse
/// regime) — plus the exact multiply work they imply (Σ nnz_L·nnz_N over
/// matches; every (a, b) pair is processed exactly once across all tiles
/// and threads, so this is the γ contribution).
struct CommonRow {
  std::int64_t l_index;  ///< occupied-row index into L
  std::int64_t n_index;  ///< occupied-row index into N
};

struct CommonRows {
  std::vector<CommonRow> rows;
  std::uint64_t flops = 0;
};

CommonRows find_common_rows(const CsrPanel& L, const CsrPanel& N) {
  CommonRows common;
  std::int64_t kl = 0;
  std::int64_t kn = 0;
  while (kl < L.occupied() && kn < N.occupied()) {
    const std::int64_t lr = L.row_id(kl);
    const std::int64_t nr = N.row_id(kn);
    if (lr < nr) {
      ++kl;
    } else if (nr < lr) {
      ++kn;
    } else {
      common.rows.push_back({kl, kn});
      common.flops += static_cast<std::uint64_t>(L.row_nnz(kl)) *
                      static_cast<std::uint64_t>(N.row_nnz(kn));
      ++kl;
      ++kn;
    }
  }
  return common;
}

/// Accumulate the contribution of N columns [col_begin, col_end) into
/// `out`, tile by tile. Per-row cursors start at the first N entry with
/// column ≥ col_begin (one binary search per common row) and advance
/// monotonically through the row, so each N entry in the range is
/// visited exactly once regardless of the tile width. Thread-safe for
/// disjoint column ranges: all writes land in out columns
/// [n_col_base + col_begin, n_col_base + col_end).
///
/// With a candidate-pair mask (`prune`), tiles whose [out rows × tile
/// cols] pair set is fully pruned are skipped (cursors still advance so
/// later tiles stay aligned). Returns the multiply flops actually
/// performed — equal to the tile's share of CommonRows::flops when
/// nothing is skipped — plus the tile visit/skip tallies. The tallies
/// ride back by value because this runs on kernel worker threads, which
/// are unbound (obs::current() is null there); the caller aggregates
/// them onto the rank thread's observer.
struct RangeResult {
  std::uint64_t flops = 0;
  std::uint64_t tiles_visited = 0;
  std::uint64_t tiles_skipped = 0;
};

RangeResult accumulate_column_range(const CsrPanel& L, const CsrPanel& N,
                                    std::span<const CommonRow> common_rows,
                                    std::int64_t l_col_base, std::int64_t n_col_base,
                                    std::int64_t col_begin, std::int64_t col_end,
                                    std::int64_t tile_cols,
                                    DenseBlock<std::int64_t>& out,
                                    const CandidateMask* prune) {
  const std::int64_t* const ncols = N.col_idx.data();
  const std::uint64_t* const nvals = N.values.data();
  const std::int64_t* const lcols = L.col_idx.data();
  const std::uint64_t* const lvals = L.values.data();
  const BlockRange out_rows{out.row_range.begin + l_col_base,
                            out.row_range.begin + l_col_base + L.cols};
  const std::int64_t gcol_base = out.col_range.begin + n_col_base;
  RangeResult result;

  std::vector<std::int64_t> cursor(common_rows.size());
  for (std::size_t idx = 0; idx < common_rows.size(); ++idx) {
    const std::int64_t k = common_rows[idx].n_index;
    cursor[idx] = std::lower_bound(ncols + N.row_begin(k), ncols + N.row_end(k),
                                   col_begin) -
                  ncols;
  }

  for (std::int64_t tile = col_begin; tile < col_end; tile += tile_cols) {
    const std::int64_t tile_end = std::min(col_end, tile + tile_cols);
    const bool skip_tile =
        prune != nullptr &&
        !prune->any_pair(out_rows, {gcol_base + tile, gcol_base + tile_end});
    if (skip_tile) {
      ++result.tiles_skipped;
    } else {
      ++result.tiles_visited;
    }
    for (std::size_t idx = 0; idx < common_rows.size(); ++idx) {
      const std::int64_t b = cursor[idx];
      const std::int64_t row_end = N.row_end(common_rows[idx].n_index);
      std::int64_t e = b;
      while (e < row_end && ncols[e] < tile_end) ++e;
      cursor[idx] = e;
      const auto count = static_cast<std::size_t>(e - b);
      if (count == 0 || skip_tile) continue;
      const std::int64_t la = L.row_begin(common_rows[idx].l_index);
      const std::int64_t le = L.row_end(common_rows[idx].l_index);
      result.flops +=
          static_cast<std::uint64_t>(count) * static_cast<std::uint64_t>(le - la);
      // Register-block four L entries per pass: each (col, mask) of the
      // N segment is loaded once and scattered into four output rows.
      // The _dispatch entries resolve to the AVX512 gather/scatter body
      // where the per-TU VPOPCNTQ flag is live (see popcount_scatter.cpp)
      // and to the inline scalar kernels otherwise.
      std::int64_t a = la;
      for (; a + 4 <= le; a += 4) {
        auto* const acc0 = out.row_data(l_col_base + lcols[a]) + n_col_base;
        auto* const acc1 = out.row_data(l_col_base + lcols[a + 1]) + n_col_base;
        auto* const acc2 = out.row_data(l_col_base + lcols[a + 2]) + n_col_base;
        auto* const acc3 = out.row_data(l_col_base + lcols[a + 3]) + n_col_base;
        popcount_and_scatter_4_dispatch(lvals[a], lvals[a + 1], lvals[a + 2],
                                        lvals[a + 3], ncols + b, nvals + b, count, acc0,
                                        acc1, acc2, acc3);
      }
      for (; a < le; ++a) {
        std::int64_t* const acc = out.row_data(l_col_base + lcols[a]) + n_col_base;
        popcount_and_scatter_dispatch(lvals[a], ncols + b, nvals + b, count, acc);
      }
    }
  }
  return result;
}

/// Dense path worker: every output cell (i, j) for j in [j_begin, j_end)
/// is one streaming popcount dot product — no scatter stores, so the
/// kernel runs at vector popcount throughput instead of the one
/// store-per-madd ceiling of the scatter loop. The unpruned path runs
/// 2×2 register tiles (popcount_and_sum_stream_2x2): four output cells
/// per pass over two L and two N columns, so each mask word is loaded
/// once per TWO cells instead of once per cell — half the load traffic
/// of the scalar loop at identical (integer) results; the scalar loop
/// remains for edges and is the reference the micro_kernels bench
/// compares against. With a candidate mask, pruned cells are skipped per
/// cell (the mask test is one load against a words-long popcount
/// stream), so the pruned path stays scalar. Returns the streaming
/// word-madds actually performed (the dense path's flop unit under
/// pruning).
std::uint64_t dense_accumulate_range(const DenseColumnPanel& ld, std::int64_t l_cols,
                                     const DenseColumnPanel& nd, std::int64_t j_begin,
                                     std::int64_t j_end, std::int64_t l_col_base,
                                     std::int64_t n_col_base,
                                     DenseBlock<std::int64_t>& out,
                                     const CandidateMask* prune) {
  const std::int64_t words = ld.words;
  const std::int64_t grow_base = out.row_range.begin + l_col_base;
  const std::int64_t gcol_base = out.col_range.begin + n_col_base;
  std::uint64_t cells = 0;
  if (prune == nullptr) {
    std::int64_t i = 0;
    for (; i + 2 <= l_cols; i += 2) {
      const std::uint64_t* const lcol0 = ld.column(i);
      const std::uint64_t* const lcol1 = ld.column(i + 1);
      std::int64_t* const row0 = out.row_data(l_col_base + i) + n_col_base;
      std::int64_t* const row1 = out.row_data(l_col_base + i + 1) + n_col_base;
      std::int64_t j = j_begin;
      for (; j + 2 <= j_end; j += 2) {
        std::uint64_t sums[4];
        popcount_and_sum_stream_2x2(lcol0, lcol1, nd.column(j), nd.column(j + 1),
                                    static_cast<std::size_t>(words), sums);
        row0[j] += static_cast<std::int64_t>(sums[0]);
        row0[j + 1] += static_cast<std::int64_t>(sums[1]);
        row1[j] += static_cast<std::int64_t>(sums[2]);
        row1[j + 1] += static_cast<std::int64_t>(sums[3]);
      }
      for (; j < j_end; ++j) {
        row0[j] += static_cast<std::int64_t>(popcount_and_sum_stream(
            lcol0, nd.column(j), static_cast<std::size_t>(words)));
        row1[j] += static_cast<std::int64_t>(popcount_and_sum_stream(
            lcol1, nd.column(j), static_cast<std::size_t>(words)));
      }
    }
    for (; i < l_cols; ++i) {
      const std::uint64_t* const lcol = ld.column(i);
      std::int64_t* const row = out.row_data(l_col_base + i) + n_col_base;
      for (std::int64_t j = j_begin; j < j_end; ++j) {
        row[j] += static_cast<std::int64_t>(popcount_and_sum_stream(
            lcol, nd.column(j), static_cast<std::size_t>(words)));
      }
    }
    return static_cast<std::uint64_t>(l_cols) *
           static_cast<std::uint64_t>(j_end - j_begin) *
           static_cast<std::uint64_t>(words);
  }
  for (std::int64_t i = 0; i < l_cols; ++i) {
    const std::uint64_t* const lcol = ld.column(i);
    std::int64_t* const row = out.row_data(l_col_base + i) + n_col_base;
    for (std::int64_t j = j_begin; j < j_end; ++j) {
      if (!prune->test(grow_base + i, gcol_base + j)) continue;
      ++cells;
      row[j] += static_cast<std::int64_t>(
          popcount_and_sum_stream(lcol, nd.column(j), static_cast<std::size_t>(words)));
    }
  }
  return cells * static_cast<std::uint64_t>(words);
}

/// Sparse/dense crossover on the product of panel fill ratios. The dense
/// path does words·colsL·colsN word-madds where the scatter path does
/// fillL·fillN·words·colsL·colsN, so dense wins when fillL·fillN exceeds
/// the (scatter rate / stream rate) ratio. The threshold is micro-
/// calibrated at startup on this machine (distmat/crossover.hpp) unless
/// the caller pins one through CsrAtaOptions::dense_crossover.
[[nodiscard]] bool dense_path_profitable(const CsrPanel& L, const CsrPanel& N,
                                         std::int64_t words, double crossover_override) {
  if (words <= 0 || L.cols <= 0 || N.cols <= 0) return false;
  // Densified panels must stay modest: 32 MiB of words at the default cap.
  if (words * (L.cols + N.cols) > (std::int64_t{1} << 22)) return false;
  const double fill_l =
      static_cast<double>(L.nnz()) / (static_cast<double>(words) * static_cast<double>(L.cols));
  const double fill_n =
      static_cast<double>(N.nnz()) / (static_cast<double>(words) * static_cast<double>(N.cols));
  const double crossover =
      crossover_override > 0.0 ? crossover_override : calibrated_dense_crossover();
  return fill_l * fill_n >= crossover;
}

}  // namespace

void csr_popcount_ata_accumulate(const CsrPanel& L, const CsrPanel& N,
                                 std::int64_t l_col_base, std::int64_t n_col_base,
                                 DenseBlock<std::int64_t>& out,
                                 bsp::CostCounters* counters,
                                 const CsrAtaOptions& options) {
  if (L.empty() || N.empty()) return;
  // Whole-block prune probe: with a candidate mask, a block whose entire
  // [out rows × out cols] pair set is pruned never touches the CSR data.
  const CandidateMask* const prune = options.prune;
  if (prune != nullptr &&
      !prune->any_pair({out.row_range.begin + l_col_base,
                        out.row_range.begin + l_col_base + L.cols},
                       {out.col_range.begin + n_col_base,
                        out.col_range.begin + n_col_base + N.cols})) {
    if (obs::RankObserver* o = obs::current()) {
      o->add_counter("spgemm.blocks_skipped", 1);
    }
    return;
  }
  const CommonRows common = find_common_rows(L, N);
  if (common.rows.empty()) return;
  // γ accounting: without pruning every (a, b) pair of the common rows is
  // processed, so CommonRows::flops is exact and cheap. Under pruning the
  // workers report the work actually performed (the dense path counts
  // streaming word-madds — its natural unit — instead of scatter madds).
  std::uint64_t flops_done = 0;

  const std::int64_t words = std::min(L.rows, N.rows);
  const bool use_dense = options.allow_dense &&
                         dense_path_profitable(L, N, words, options.dense_crossover);

  const std::int64_t tile_cols = options.tile_cols > 0 ? options.tile_cols : kAtaTileCols;
  const std::int64_t ntiles = (N.cols + tile_cols - 1) / tile_cols;
  const int threads =
      (options.threads > 1 && common.flops >= kAtaThreadMinFlops)
          ? static_cast<int>(std::min<std::int64_t>(options.threads,
                                                    use_dense ? N.cols : ntiles))
          : 1;

  if (use_dense) {
    // Memoized on the panels: the ring's loop-invariant L side densifies
    // once per batch, and L ≡ N (serial_ata, the diagonal ring step)
    // reuses one densification.
    const DenseColumnPanel& ld = L.dense_columns(words);
    const DenseColumnPanel& nd = N.dense_columns(words);
    if (threads <= 1) {
      flops_done = dense_accumulate_range(ld, L.cols, nd, 0, N.cols, l_col_base,
                                          n_col_base, out, prune);
    } else {
      std::vector<std::thread> workers;
      std::vector<std::uint64_t> worker_flops(static_cast<std::size_t>(threads), 0);
      workers.reserve(static_cast<std::size_t>(threads));
      for (int t = 0; t < threads; ++t) {
        const BlockRange js = block_range(N.cols, threads, t);
        if (js.size() <= 0) continue;
        workers.emplace_back([&, js, t] {
          if (options.numa_aware) numa::pin_to_node(numa::node_for_worker(t, threads));
          worker_flops[static_cast<std::size_t>(t)] =
              dense_accumulate_range(ld, L.cols, nd, js.begin, js.end, l_col_base,
                                     n_col_base, out, prune);
        });
      }
      for (std::thread& w : workers) w.join();
      for (std::uint64_t f : worker_flops) flops_done += f;
    }
    if (counters != nullptr) {
      counters->flops += prune != nullptr ? flops_done : common.flops;
    }
    return;
  }

  const std::span<const CommonRow> rows(common.rows);
  RangeResult tally;
  if (threads <= 1) {
    tally = accumulate_column_range(L, N, rows, l_col_base, n_col_base, 0, N.cols,
                                    tile_cols, out, prune);
  } else {
    // Tiles are disjoint output-column ranges; hand each worker a
    // contiguous run of whole tiles so no accumulator slot is shared.
    // Worker threads are unbound (no rank observer); their tile tallies
    // return by value and are folded in here, on the rank thread. The
    // worker→tile block assignment matches numa::node_for_worker, so a
    // pinned worker scatters into the panel slice its socket first-touched
    // (see the driver's multiply stage).
    std::vector<std::thread> workers;
    std::vector<RangeResult> worker_results(static_cast<std::size_t>(threads));
    workers.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      const BlockRange tiles = block_range(ntiles, threads, t);
      const std::int64_t col_begin = tiles.begin * tile_cols;
      const std::int64_t col_end = std::min(N.cols, tiles.end * tile_cols);
      if (col_begin >= col_end) continue;
      workers.emplace_back([&, col_begin, col_end, t] {
        if (options.numa_aware) numa::pin_to_node(numa::node_for_worker(t, threads));
        worker_results[static_cast<std::size_t>(t)] =
            accumulate_column_range(L, N, rows, l_col_base, n_col_base, col_begin,
                                    col_end, tile_cols, out, prune);
      });
    }
    for (std::thread& w : workers) w.join();
    for (const RangeResult& wr : worker_results) {
      tally.flops += wr.flops;
      tally.tiles_visited += wr.tiles_visited;
      tally.tiles_skipped += wr.tiles_skipped;
    }
  }
  flops_done = tally.flops;
  if (obs::RankObserver* o = obs::current()) {
    o->add_counter("spgemm.tiles_visited", tally.tiles_visited);
    if (tally.tiles_skipped > 0) {
      o->add_counter("spgemm.tiles_skipped", tally.tiles_skipped);
    }
  }
  if (counters != nullptr) {
    counters->flops += prune != nullptr ? flops_done : common.flops;
  }
}

DenseBlock<std::int64_t> serial_ata(const SparseBlock& block) {
  DenseBlock<std::int64_t> out(BlockRange{0, block.cols}, BlockRange{0, block.cols});
  const CsrPanel panel = CsrPanel::from_block(block);
  csr_popcount_ata_accumulate(panel, panel, 0, 0, out, nullptr);
  return out;
}

void ring_ata_accumulate(bsp::Comm& comm, std::int64_t n, const SparseBlock& my_panel,
                         DenseBlock<std::int64_t>& b_panel, RingSchedule schedule,
                         const CsrAtaOptions& options) {
  const int p = comm.size();
  const int r = comm.rank();
  constexpr int kTagRing = bsp::tags::kSpgemmRing;

  if (b_panel.col_range.begin != 0 || b_panel.col_range.end != n) {
    throw std::invalid_argument("ring_ata_accumulate: b_panel must span all n columns");
  }

  // The L-side panel participates in every step: convert once per batch.
  const CsrPanel lpanel = CsrPanel::from_block(my_panel);

  std::vector<Triplet<std::uint64_t>> current = my_panel.entries;
  int current_owner = r;
  for (int step = 0; step < p; ++step) {
    // Plain span (no drift prediction): the hop interleaves with the
    // local multiply, so α-β time would not be comparable.
    const obs::Span hop("ring/step", "ring", &comm.counters());
    const bool last_step = step + 1 == p;
    // Double buffering: post the rotation send *before* the multiply.
    // Sends are buffered copies, so `current` stays valid for the local
    // CSR build and the neighbour's transfer completes while we compute.
    if (!last_step && schedule == RingSchedule::kOverlapped) {
      comm.send<Triplet<std::uint64_t>>(
          (r + 1) % p, kTagRing, std::span<const Triplet<std::uint64_t>>(current));
    }

    const BlockRange owner_cols = block_range(n, p, current_owner);
    // With a candidate mask, a panel whose owner shares no surviving pair
    // with this rank's output rows is forwarded without even a CSR build.
    const bool panel_pruned =
        options.prune != nullptr &&
        !options.prune->any_pair(b_panel.row_range, owner_cols);
    if (!panel_pruned) {
      CsrPanel received;
      const CsrPanel* npanel = &lpanel;
      if (current_owner != r) {
        received = CsrPanel::from_triplets(my_panel.rows, owner_cols.size(),
                                           std::span<const Triplet<std::uint64_t>>(current));
        npanel = &received;
      }
      csr_popcount_ata_accumulate(lpanel, *npanel, 0, owner_cols.begin, b_panel,
                                  &comm.counters(), options);
    }

    if (last_step) break;
    if (schedule == RingSchedule::kSynchronous) {
      comm.send<Triplet<std::uint64_t>>(
          (r + 1) % p, kTagRing, std::span<const Triplet<std::uint64_t>>(current));
    }
    current = comm.recv<Triplet<std::uint64_t>>((r + p - 1) % p, kTagRing);
    current_owner = (current_owner + p - 1) % p;
  }
}

void targeted_ata_accumulate(bsp::Comm& comm, std::int64_t n,
                             const SparseBlock& my_panel, const CandidateMask& mask,
                             DenseBlock<std::int64_t>& b_panel,
                             const CsrAtaOptions& options) {
  const int p = comm.size();
  const int r = comm.rank();
  const obs::Span stage_span("targeted-ata", "multiply", &comm.counters());
  if (b_panel.col_range.begin != 0 || b_panel.col_range.end != n) {
    throw std::invalid_argument(
        "targeted_ata_accumulate: b_panel must span all n columns");
  }
  const BlockRange my_cols = b_panel.row_range;
  const CsrPanel lpanel = CsrPanel::from_block(my_panel);

  // Diagonal block: local data, mask diagonal is always set.
  csr_popcount_ata_accumulate(lpanel, lpanel, 0, my_cols.begin, b_panel,
                              &comm.counters(), options);

  // Column-targeted exchange: peer q needs this rank's column j (global
  // id my_cols.begin + j) iff the mask pairs it with one of q's output
  // rows. Each needed column is shipped to each needing peer exactly
  // once, so total bytes track the surviving pair structure instead of
  // the ring's everything-to-everyone Θ(z·(p−1)).
  std::vector<std::vector<Triplet<std::uint64_t>>> outgoing(static_cast<std::size_t>(p));
  std::vector<std::uint8_t> needed(static_cast<std::size_t>(my_panel.cols));
  for (int q = 0; q < p; ++q) {
    if (q == r) continue;
    const BlockRange q_rows = block_range(n, p, q);
    bool any = false;
    for (std::int64_t j = 0; j < my_panel.cols; ++j) {
      const std::int64_t gj = my_cols.begin + j;
      needed[static_cast<std::size_t>(j)] =
          mask.any_pair(q_rows, {gj, gj + 1}) ? 1 : 0;
      any = any || needed[static_cast<std::size_t>(j)] != 0;
    }
    if (!any) continue;
    auto& block = outgoing[static_cast<std::size_t>(q)];
    for (const Triplet<std::uint64_t>& t : my_panel.entries) {
      if (needed[static_cast<std::size_t>(t.col)] != 0) block.push_back(t);
    }
  }
  const auto incoming = comm.alltoall_v(outgoing);

  for (int q = 0; q < p; ++q) {
    if (q == r || incoming[static_cast<std::size_t>(q)].empty()) continue;
    const BlockRange q_cols = block_range(n, p, q);
    // Filtering preserved the sender's (row, col) order, so the received
    // subset is already canonical for the CSR build.
    const CsrPanel npanel = CsrPanel::from_triplets(
        my_panel.rows, q_cols.size(),
        std::span<const Triplet<std::uint64_t>>(incoming[static_cast<std::size_t>(q)]));
    csr_popcount_ata_accumulate(lpanel, npanel, 0, q_cols.begin, b_panel,
                                &comm.counters(), options);
  }
}

void summa_ata_accumulate(ProcGrid& grid, const SparseBlock& my_block,
                          DenseBlock<std::int64_t>& b_accum,
                          const CsrAtaOptions& options) {
  if (!grid.active()) {
    throw std::logic_error("summa_ata_accumulate: called by an inactive rank");
  }
  const int s = grid.side();

  // With replication (c > 1), each layer sums into a scratch partial that
  // is reduced onto layer 0 at the end of the batch (paper §III-C: "one
  // needs a reduction to sum the contributions ... for each layer").
  DenseBlock<std::int64_t> partial;
  const bool replicated = grid.layers() > 1;
  if (replicated) partial = DenseBlock<std::int64_t>(b_accum.row_range, b_accum.col_range);
  DenseBlock<std::int64_t>& target = replicated ? partial : b_accum;

  // Mask-aware stage gating: with a candidate mask, a sample block whose
  // members all have NO surviving off-diagonal partner contributes
  // nothing anywhere — its samples were column-dropped by the driver
  // (their triplets never reached the grid) and their diagonals fall
  // back to the J(∅, ∅) = 1 convention. The per-sample activity flags
  // are replicated (the mask is), so every rank reaches the same verdict
  // and the collectives stay aligned: the L-side transpose + row
  // broadcast of an inactive OUTPUT-ROW block and the N-side column
  // broadcast of an inactive OUTPUT-COLUMN block are skipped entirely —
  // the stage loop no longer visits every grid row/col when the mask is
  // block-sparse. Sender and receiver of a transpose hop evaluate the
  // same block (the sender's column chunk IS the receiver's row chunk),
  // so no message is ever posted without its matching receive.
  std::vector<std::uint8_t> active;
  if (options.prune != nullptr) active = options.prune->active_columns();
  const auto block_active = [&](BlockRange range) {
    if (options.prune == nullptr) return true;
    for (std::int64_t i = range.begin; i < range.end; ++i) {
      if (active[static_cast<std::size_t>(i)] != 0) return true;
    }
    return false;
  };
  const bool my_rows_active = block_active(b_accum.row_range);
  const bool my_cols_active = block_active(b_accum.col_range);

  // (1) Transpose exchange: owner (ℓ, k, i) ships R(ℓ·s+k, i) to (ℓ, i, k).
  // Sends are posted one stage AHEAD of the multiply that consumes them
  // (stage 0 before the loop, stage k+1 before stage k's local work):
  // bsp sends are buffered copies and the per-stage tags keep them
  // ordered, so the stage-k+1 transpose hop completes while stage k
  // multiplies — the same overlap the ring schedule gets from double
  // buffering.
  const auto post_transpose = [&](int k) {
    // my_cols_active gates on the RECEIVER's output-row block: the
    // receiver (ℓ, grid_col, k) has grid_row == this rank's grid_col,
    // and row chunks equal column chunks on the square grid.
    if (grid.grid_row() == k && my_cols_active) {
      const int dest = grid.world_rank_of(grid.layer(), grid.grid_col(), k);
      grid.world().send<Triplet<std::uint64_t>>(
          dest, bsp::tags::summa_transpose(k),
          std::span<const Triplet<std::uint64_t>>(my_block.entries));
    }
  };
  post_transpose(0);

  for (int k = 0; k < s; ++k) {
    // Per-stage span; the inner broadcasts are Comm collectives and book
    // their own drift samples, so this span stays prediction-free.
    const obs::Span stage("summa/stage", "summa", &grid.world().counters());
    if (k + 1 < s) post_transpose(k + 1);
    std::vector<Triplet<std::uint64_t>> lbuf;
    if (grid.grid_col() == k && my_rows_active) {
      const int source = grid.world_rank_of(grid.layer(), k, grid.grid_row());
      lbuf = grid.world().recv<Triplet<std::uint64_t>>(source,
                                                       bsp::tags::summa_transpose(k));
    }
    // (2) L-side broadcast along the grid row (root = grid column k).
    // All ranks of one grid row share the same output-row block, so the
    // skip verdict is uniform along the communicator.
    if (my_rows_active) grid.row_comm().broadcast(lbuf, k);
    // (3) N-side broadcast along the grid column (root = grid row k);
    // uniform verdict along the column, which shares the output-col block.
    std::vector<Triplet<std::uint64_t>> nbuf;
    if (my_cols_active) {
      if (grid.grid_row() == k) nbuf = my_block.entries;
      grid.col_comm().broadcast(nbuf, k);
    }
    if (!my_rows_active || !my_cols_active) continue;
    // (4) Local multiply-accumulate on CSR panels built once per stage.
    // Both buffers are slices of chunk ℓ·s+k, so they share a row space;
    // the tight per-panel row bounds are enough (the kernel intersects).
    const std::span<const Triplet<std::uint64_t>> lspan(lbuf);
    const std::span<const Triplet<std::uint64_t>> nspan(nbuf);
    const CsrPanel lpanel =
        CsrPanel::from_triplets(sorted_row_bound(lspan), target.row_range.size(), lspan);
    const CsrPanel npanel =
        CsrPanel::from_triplets(sorted_row_bound(nspan), target.col_range.size(), nspan);
    csr_popcount_ata_accumulate(lpanel, npanel, 0, 0, target, &grid.world().counters(),
                                options);
  }

  if (replicated) {
    grid.fiber_comm().reduce(partial.values, std::plus<std::int64_t>{}, 0);
    if (grid.layer() == 0) {
      for (std::size_t idx = 0; idx < b_accum.values.size(); ++idx) {
        b_accum.values[idx] += partial.values[idx];
      }
    }
  }
}

void accumulate_column_popcounts(const SparseBlock& block, std::int64_t col_offset,
                                 std::span<std::int64_t> acc) {
  for (const Triplet<std::uint64_t>& entry : block.entries) {
    acc[static_cast<std::size_t>(col_offset + entry.col)] += popcount64(entry.value);
  }
}

}  // namespace sas::distmat
