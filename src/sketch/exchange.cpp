#include "sketch/exchange.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>
#include <utility>

#include "bsp/tags.hpp"
#include "core/packing.hpp"
#include "distmat/block.hpp"
#include "distmat/dense_block.hpp"
#include "distmat/dist_filter.hpp"
#include "distmat/gather.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace sas::sketch {

core::Estimator resolved_sketch_estimator(const core::Config& config) {
  return config.estimator == core::Estimator::kHybrid ? config.hybrid_sketch
                                                      : config.estimator;
}

namespace {

using distmat::BlockRange;
using distmat::DenseBlock;

/// Empty sketch of the configured type — the parameter/seed reference for
/// compatibility checks and the starting state of streaming construction.
std::variant<HyperLogLog, OnePermMinHash, BottomKSketch> make_empty_sketch(
    const core::Config& config) {
  switch (resolved_sketch_estimator(config)) {
    case core::Estimator::kHll:
      return HyperLogLog(config.hll_precision, config.sketch_seed);
    case core::Estimator::kMinhash:
      return OnePermMinHash(config.sketch_size, config.minhash_bits, config.sketch_seed);
    case core::Estimator::kBottomK:
      return BottomKSketch(static_cast<std::size_t>(config.sketch_size),
                           config.sketch_seed);
    default:
      break;
  }
  throw std::invalid_argument("sketch: config does not name a sketch estimator");
}

/// Stream one sample's attribute ids into `sk`, batch by batch, and
/// return the comparison wire blob. add() is order-independent, so the
/// result does not depend on the batch count.
template <typename Sketch>
std::vector<std::uint64_t> stream_into(Sketch sk, const core::SampleSource& source,
                                       std::int64_t sample, int batches) {
  const std::int64_t m = source.attribute_universe();
  for (int l = 0; l < batches; ++l) {
    const BlockRange rows = distmat::block_range(m, batches, l);
    for (std::int64_t v : source.values_in_range(sample, rows)) {
      sk.add(static_cast<std::uint64_t>(v));
    }
  }
  return sk.wire();
}

}  // namespace

const char* estimator_wire_name(core::Estimator estimator) {
  switch (estimator) {
    case core::Estimator::kHll:
      return "hll";
    case core::Estimator::kMinhash:
      return "minhash";
    case core::Estimator::kBottomK:
      return "bottomk";
    default:
      break;
  }
  throw std::invalid_argument("estimator_wire_name: not a sketch estimator");
}

bool wire_matches_config(std::span<const std::uint64_t> wire,
                         const core::Config& config) {
  if (wire.size() < kWireHeaderWords) return false;
  // The (magic|type, params, seed) header of an empty sketch under this
  // config is exactly what every compatible blob must carry.
  const auto expected =
      std::visit([](const auto& sk) { return sk.wire(); }, make_empty_sketch(config));
  for (std::size_t w = 0; w < kWireHeaderWords; ++w) {
    if (wire[w] != expected[w]) return false;
  }
  // A matching header is not enough: a truncated persisted blob (e.g. an
  // interrupted `gas sketch` write) must be treated as "no persisted
  // sketch" here, not throw later inside the rank threads. Running the
  // pipeline's own comparator against the blob validates the payload
  // exactly as deeply as the pipeline will need it.
  try {
    (void)estimate_jaccard_wire(wire, wire);
  } catch (const std::invalid_argument&) {
    return false;
  }
  return true;
}

double hybrid_prune_slack(const core::Config& config) {
  if (config.prune_slack >= 0.0) return config.prune_slack;
  switch (resolved_sketch_estimator(config)) {
    case core::Estimator::kHll:
      return hll_jaccard_error_bound(config.hll_precision);
    case core::Estimator::kMinhash:
      return oph_jaccard_error_bound(config.sketch_size, config.minhash_bits);
    case core::Estimator::kBottomK:
      return bottomk_jaccard_error_bound(config.sketch_size);
    default:
      break;
  }
  throw std::invalid_argument("hybrid_prune_slack: config names no sketch estimator");
}

StreamingSketcher::StreamingSketcher(const core::Config& config) : config_(config) {
  (void)make_empty_sketch(config_);  // validate the estimator up front
}

std::size_t StreamingSketcher::add_sample(std::int64_t sample) {
  samples_.push_back(sample);
  sketches_.push_back(make_empty_sketch(config_));
  preloaded_.emplace_back();
  return samples_.size() - 1;
}

void StreamingSketcher::preload(std::size_t index, std::vector<std::uint64_t> wire) {
  preloaded_[index] = std::move(wire);
}

bool StreamingSketcher::needs_stream(std::size_t index) const {
  return preloaded_[index].empty();
}

void StreamingSketcher::absorb(std::size_t index, std::span<const std::int64_t> values) {
  if (!needs_stream(index)) return;
  std::visit(
      [&](auto& sk) {
        for (std::int64_t v : values) sk.add(static_cast<std::uint64_t>(v));
      },
      sketches_[index]);
}

std::vector<std::vector<std::uint64_t>> StreamingSketcher::finish() {
  std::vector<std::vector<std::uint64_t>> blobs;
  blobs.reserve(sketches_.size());
  for (std::size_t i = 0; i < sketches_.size(); ++i) {
    if (!preloaded_[i].empty()) {
      blobs.push_back(std::move(preloaded_[i]));
    } else {
      blobs.push_back(std::visit([](const auto& sk) { return sk.wire(); }, sketches_[i]));
    }
  }
  return blobs;
}

std::vector<std::uint64_t> build_sample_wire(const core::SampleSource& source,
                                             std::int64_t sample,
                                             const core::Config& config) {
  const int batches = static_cast<int>(config.batch_count);
  // Persisted blob first: written by `gas sketch --estimator`, trusted
  // only when its header matches this run's (type, params, seed).
  std::vector<std::uint64_t> persisted = source.persisted_sketch(sample, config);
  if (!persisted.empty() && wire_matches_config(persisted, config)) return persisted;
  switch (resolved_sketch_estimator(config)) {
    case core::Estimator::kHll:
      return stream_into(HyperLogLog(config.hll_precision, config.sketch_seed), source,
                         sample, batches);
    case core::Estimator::kMinhash:
      return stream_into(
          OnePermMinHash(config.sketch_size, config.minhash_bits, config.sketch_seed),
          source, sample, batches);
    case core::Estimator::kBottomK:
      return stream_into(
          BottomKSketch(static_cast<std::size_t>(config.sketch_size), config.sketch_seed),
          source, sample, batches);
    default:
      break;
  }
  throw std::invalid_argument("build_sample_wire: estimator has no sketch form");
}

LshPlan lsh_candidate_plan(const core::Config& config, double effective_threshold) {
  if (resolved_sketch_estimator(config) != core::Estimator::kMinhash) {
    throw std::invalid_argument(
        "lsh_candidate_plan: banding is defined over the minhash registers");
  }
  const std::int64_t k = config.sketch_size;
  if (config.lsh_bands > 0) {
    LshPlan plan;
    plan.bands = std::min<std::int64_t>(config.lsh_bands, k);
    plan.rows_per_band = std::max<std::int64_t>(1, k / plan.bands);
    return plan;
  }
  // Auto rule (see exchange.hpp): register match fraction at the
  // threshold, then the largest feasible band width.
  const double collision = std::ldexp(1.0, -config.minhash_bits);
  const double m = std::clamp(
      effective_threshold * (1.0 - collision) + collision, collision, 1.0);
  constexpr double kDetection = 7.0;  // P(miss at the threshold) ≤ e⁻⁷
  LshPlan plan{/*bands=*/std::min<std::int64_t>(
                   k, static_cast<std::int64_t>(std::ceil(kDetection / m))),
               /*rows_per_band=*/1};
  for (std::int64_t rows = 2; rows * 2 <= k; rows *= 2) {
    const double per_band = std::pow(m, static_cast<double>(rows));
    const double needed = kDetection / per_band;
    if (needed > static_cast<double>(k / rows)) break;  // budget exceeded
    plan.bands = static_cast<std::int64_t>(std::ceil(needed));
    plan.rows_per_band = rows;
  }
  plan.bands = std::max<std::int64_t>(1, plan.bands);
  return plan;
}

core::CandidateMode resolved_candidate_mode(const core::Config& config, std::int64_t n) {
  const bool minhash = resolved_sketch_estimator(config) == core::Estimator::kMinhash;
  if (config.candidate_mode == core::CandidateMode::kLsh && !minhash) {
    throw std::invalid_argument(
        "sketch_candidate_pass: candidate_mode lsh requires the minhash prune sketch");
  }
  // A non-positive effective threshold keeps every pair: banding could
  // only lose candidates, so all-pairs is a correctness fallback.
  const double effective =
      std::max(0.0, config.prune_threshold - hybrid_prune_slack(config));
  if (effective <= 0.0) return core::CandidateMode::kAllPairs;
  switch (config.candidate_mode) {
    case core::CandidateMode::kAllPairs:
      return core::CandidateMode::kAllPairs;
    case core::CandidateMode::kLsh:
      return core::CandidateMode::kLsh;
    case core::CandidateMode::kAuto:
      break;
  }
  return (minhash && n >= config.lsh_min_samples) ? core::CandidateMode::kLsh
                                                  : core::CandidateMode::kAllPairs;
}

namespace {

/// Ascending (i, j) order over pair estimates — the sort/search order of
/// CandidatePass::estimates.
bool pair_estimate_order(const PairEstimate& a, const PairEstimate& b) noexcept {
  return a.i != b.i ? a.i < b.i : a.j < b.j;
}

/// Sample-id → owning-rank map from the per-rank id lists; validates that
/// the lists cover [0, n) disjointly.
std::vector<int> owner_map(const std::vector<std::vector<std::int64_t>>& id_blocks,
                           std::int64_t n) {
  std::vector<int> owner(static_cast<std::size_t>(n), -1);
  std::int64_t seen = 0;
  for (std::size_t q = 0; q < id_blocks.size(); ++q) {
    for (std::int64_t id : id_blocks[q]) {
      if (id < 0 || id >= n || owner[static_cast<std::size_t>(id)] != -1) {
        throw std::invalid_argument(
            "sketch_candidate_pass: samples do not cover [0, n)");
      }
      owner[static_cast<std::size_t>(id)] = static_cast<int>(q);
      ++seen;
    }
  }
  if (seen != n) {
    throw std::invalid_argument("sketch_candidate_pass: samples do not cover [0, n)");
  }
  return owner;
}

/// Gather each rank's non-zero (i < j) pair estimates on rank 0, sorted
/// by (i, j). Every scored pair is scored by exactly one rank (all-pairs
/// partitions the rows; LSH routes a pair to its lower sample's blob
/// owner and dedupes), which the shared triplet gather's
/// overlapping-contribution check enforces.
std::vector<PairEstimate> gather_estimates(bsp::Comm& world,
                                           std::vector<PairEstimate> mine) {
  std::vector<distmat::Triplet<double>> triplets;
  triplets.reserve(mine.size());
  for (const PairEstimate& pe : mine) triplets.push_back({pe.i, pe.j, pe.est});
  const auto merged = distmat::gather_triplets_to_root(world, std::move(triplets));
  std::vector<PairEstimate> out;
  out.reserve(merged.size());
  for (const auto& t : merged) out.push_back({t.row, t.col, t.value});
  return out;
}

/// The all-pairs candidate pass (PR 3): allgather every blob, score this
/// rank's row slice of all n² pairs into a dense mask.
CandidatePass all_pairs_candidate_pass(
    bsp::Comm& world, std::span<const std::int64_t> samples,
    const std::vector<std::vector<std::uint64_t>>& blobs, std::int64_t n,
    double effective_threshold) {
  const int p = world.size();
  const int r = world.rank();
  const obs::Span stage_span("allpairs-candidates", "sketch",
                             &world.counters());

  // Every rank needs every blob (the mask prunes rank-local columns and
  // tiles), so the exchange is a ring allgather of the wire panels —
  // O(n · sketch_bytes) per rank, the same as a full rotation would move.
  const std::vector<std::uint64_t> panel = core::pack_word_panel(blobs);
  const auto id_blocks = world.allgather_v<std::int64_t>(samples);
  const auto panel_blocks =
      world.allgather_v<std::uint64_t>(std::span<const std::uint64_t>(panel));

  std::vector<std::span<const std::uint64_t>> views(static_cast<std::size_t>(n));
  std::int64_t seen = 0;
  for (int q = 0; q < p; ++q) {
    const auto q_views = core::unpack_word_panel(panel_blocks[static_cast<std::size_t>(q)]);
    const auto& q_ids = id_blocks[static_cast<std::size_t>(q)];
    if (q_views.size() != q_ids.size()) {
      throw std::invalid_argument("sketch_candidate_pass: panel/id mismatch");
    }
    for (std::size_t i = 0; i < q_ids.size(); ++i) {
      views[static_cast<std::size_t>(q_ids[i])] = q_views[i];
      ++seen;
    }
  }
  if (seen != n) {
    throw std::invalid_argument("sketch_candidate_pass: samples do not cover [0, n)");
  }

  CandidatePass pass;
  pass.effective_threshold = effective_threshold;
  pass.mode = core::CandidateMode::kAllPairs;
  distmat::PairMask mask(n);

  // Score a block partition of the rows (any disjoint cover works — all
  // blobs are local now); the diagonal is always a candidate. Estimates
  // ride to rank 0 as (i < j, value) pairs — each upper pair is scored
  // by exactly the rank owning row i, and zero estimates are dropped
  // (absent pairs read as 0.0), so the estimate payload tracks the
  // non-zero pair structure instead of a dense n² array.
  const BlockRange mine = distmat::block_range(n, p, r);
  std::vector<PairEstimate> scored;
  for (std::int64_t i = mine.begin; i < mine.end; ++i) {
    mask.set(i, i);
    for (std::int64_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const double est = estimate_jaccard_wire(views[static_cast<std::size_t>(i)],
                                               views[static_cast<std::size_t>(j)]);
      if (j > i && est != 0.0) scored.push_back({i, j, est});
      if (est >= pass.effective_threshold) mask.set(i, j);
    }
  }

  distmat::allreduce_pair_mask(world, mask);
  pass.mask = distmat::CandidateMask(std::move(mask));
  pass.estimates = gather_estimates(world, std::move(scored));
  return pass;
}

/// The LSH-banded candidate pass: band keys through the alltoall, score
/// only colliding pairs, replicate a sparse (or dense, above the
/// crossover) candidate mask. See the strategy note in exchange.hpp.
CandidatePass lsh_candidate_pass(bsp::Comm& world,
                                 std::span<const std::int64_t> samples,
                                 const std::vector<std::vector<std::uint64_t>>& blobs,
                                 std::int64_t n, const core::Config& config,
                                 double effective_threshold) {
  const int p = world.size();
  const int r = world.rank();
  if (n >= (std::int64_t{1} << 31)) {
    // Key/pair words carry 31-bit sample ids (SparsePairMask::pack_pair).
    throw std::invalid_argument("sketch_candidate_pass: lsh requires n < 2^31");
  }

  CandidatePass pass;
  pass.effective_threshold = effective_threshold;
  pass.mode = core::CandidateMode::kLsh;
  pass.plan = lsh_candidate_plan(config, effective_threshold);

  // Phase spans: the pass is straight-line code with locals flowing
  // across phases, so each span is an explicit object closed at the
  // phase boundary instead of a nested block.
  obs::Span phase_ownership("lsh/ownership", "lsh", &world.counters());

  // (1) Ownership map: who holds which blob (cheap — ids only, no blobs).
  const auto id_blocks = world.allgather_v<std::int64_t>(samples);
  const std::vector<int> owner = owner_map(id_blocks, n);
  std::vector<std::int64_t> local_index(static_cast<std::size_t>(n), -1);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    local_index[static_cast<std::size_t>(samples[i])] = static_cast<std::int64_t>(i);
  }

  phase_ownership.close();
  obs::Span phase_band_keys("lsh/band-keys", "lsh", &world.counters());

  // (2) Band keys, one packed word per (sample, band): the bucket hash's
  // high 32 bits form the routing group, the low half carries the sample
  // id. Equal band registers ⇒ equal group, so true collisions always
  // co-locate; cross-band groups that alias in 32 bits only add scored-
  // then-filtered pairs. Routing by group keeps the emitted pair set
  // independent of the rank count.
  std::vector<std::vector<std::uint64_t>> key_blocks(static_cast<std::size_t>(p));
  for (std::size_t s = 0; s < blobs.size(); ++s) {
    const std::vector<std::uint64_t> buckets =
        oph_wire_band_hashes(blobs[s], pass.plan.bands, pass.plan.rows_per_band);
    for (std::uint64_t bucket : buckets) {
      const std::uint64_t group = bucket >> 32;
      const int dest = static_cast<int>((group * static_cast<std::uint64_t>(p)) >> 32);
      key_blocks[static_cast<std::size_t>(dest)].push_back(
          (group << 32) | static_cast<std::uint64_t>(samples[s]));
    }
  }
  const auto incoming_keys = world.alltoall_v(key_blocks);

  phase_band_keys.close();
  obs::Span phase_buckets("lsh/buckets", "lsh", &world.counters());

  // (3) Bucket grouping: sorting the packed words groups by (group,
  // sample); every within-group sample pair is a collision candidate,
  // routed to the rank owning the LOWER sample's blob. Degenerate
  // buckets — s samples hashing identically (e.g. all-empty sketches)
  // would emit s(s−1)/2 pair words here — are capped at
  // Config::lsh_bucket_cap: their members go to a replicated capped set
  // (O(s) bytes) and the implied pairs are generated locally on the blob
  // owners below, a mini all-pairs pass over the capped union.
  std::vector<std::uint64_t> keys;
  for (const auto& block : incoming_keys) {
    keys.insert(keys.end(), block.begin(), block.end());
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  const std::int64_t bucket_cap = config.lsh_bucket_cap;
  std::vector<std::int64_t> capped_members;
  std::vector<std::vector<std::uint64_t>> pair_blocks(static_cast<std::size_t>(p));
  for (std::size_t begin = 0; begin < keys.size();) {
    std::size_t end = begin;
    const std::uint64_t group = keys[begin] >> 32;
    while (end < keys.size() && (keys[end] >> 32) == group) ++end;
    if (bucket_cap > 0 && end - begin > static_cast<std::size_t>(bucket_cap)) {
      for (std::size_t a = begin; a < end; ++a) {
        capped_members.push_back(static_cast<std::int64_t>(keys[a] & 0xffffffffULL));
      }
      begin = end;
      continue;
    }
    for (std::size_t a = begin; a < end; ++a) {
      const auto i = static_cast<std::int64_t>(keys[a] & 0xffffffffULL);
      for (std::size_t b = a + 1; b < end; ++b) {
        const auto j = static_cast<std::int64_t>(keys[b] & 0xffffffffULL);
        pair_blocks[static_cast<std::size_t>(owner[static_cast<std::size_t>(i)])]
            .push_back(distmat::SparsePairMask::pack_pair(i, j));
      }
    }
    begin = end;
  }
  const auto incoming_pairs = world.alltoall_v(pair_blocks);

  // Mini all-pairs over the capped buckets: replicate the member union
  // (collective — every rank participates, usually with an empty list)
  // and let each rank generate the pairs whose lower sample it owns.
  // This scores a superset of the capped buckets' pairs (cross-bucket
  // members of the union included), so recall can only improve; the
  // routed bytes drop from O(s²) pair words to O(s) member ids.
  std::sort(capped_members.begin(), capped_members.end());
  capped_members.erase(std::unique(capped_members.begin(), capped_members.end()),
                       capped_members.end());
  std::vector<std::int64_t> capped_union =
      world.allgather<std::int64_t>(std::span<const std::int64_t>(capped_members));
  std::sort(capped_union.begin(), capped_union.end());
  capped_union.erase(std::unique(capped_union.begin(), capped_union.end()),
                     capped_union.end());

  phase_buckets.close();
  obs::Span phase_dedup("lsh/dedup", "lsh", &world.counters());

  // (4) Deduplicate (a pair may collide in several bands, possibly via
  // different group owners, or re-arrive via the capped union) and list
  // the partner blobs to fetch.
  std::vector<std::uint64_t> todo;
  for (const auto& block : incoming_pairs) {
    todo.insert(todo.end(), block.begin(), block.end());
  }
  for (std::size_t a = 0; a < capped_union.size(); ++a) {
    const std::int64_t i = capped_union[a];
    if (owner[static_cast<std::size_t>(i)] != r) continue;
    for (std::size_t b = a + 1; b < capped_union.size(); ++b) {
      todo.push_back(distmat::SparsePairMask::pack_pair(i, capped_union[b]));
    }
  }
  std::sort(todo.begin(), todo.end());
  todo.erase(std::unique(todo.begin(), todo.end()), todo.end());

  std::vector<std::vector<std::int64_t>> requests(static_cast<std::size_t>(p));
  for (std::uint64_t packed : todo) {
    const auto [i, j] = distmat::SparsePairMask::unpack_pair(packed);
    (void)i;
    if (local_index[static_cast<std::size_t>(j)] >= 0) continue;
    requests[static_cast<std::size_t>(owner[static_cast<std::size_t>(j)])].push_back(j);
  }
  for (auto& block : requests) {
    std::sort(block.begin(), block.end());
    block.erase(std::unique(block.begin(), block.end()), block.end());
  }

  phase_dedup.close();
  obs::Span phase_fetch("lsh/blob-fetch", "lsh", &world.counters());

  // (5) Blob fetch, request/response over two alltoalls — O(distinct
  // colliding partners · sketch_bytes), the LSH pass's only blob traffic.
  const auto incoming_requests = world.alltoall_v(requests);
  std::vector<std::vector<std::uint64_t>> responses(static_cast<std::size_t>(p));
  for (int q = 0; q < p; ++q) {
    const auto& wanted = incoming_requests[static_cast<std::size_t>(q)];
    if (wanted.empty()) continue;
    std::vector<std::vector<std::uint64_t>> payload;
    payload.reserve(wanted.size());
    for (std::int64_t id : wanted) {
      const std::int64_t idx = local_index[static_cast<std::size_t>(id)];
      if (idx < 0) {
        throw std::invalid_argument("sketch_candidate_pass: blob request misrouted");
      }
      payload.push_back(blobs[static_cast<std::size_t>(idx)]);
    }
    responses[static_cast<std::size_t>(q)] = core::pack_word_panel(payload);
  }
  const auto incoming_responses = world.alltoall_v(responses);

  std::vector<std::span<const std::uint64_t>> fetched(static_cast<std::size_t>(n));
  for (int q = 0; q < p; ++q) {
    const auto& asked = requests[static_cast<std::size_t>(q)];
    if (asked.empty()) continue;
    const auto views =
        core::unpack_word_panel(incoming_responses[static_cast<std::size_t>(q)]);
    if (views.size() != asked.size()) {
      throw std::invalid_argument("sketch_candidate_pass: blob response mismatch");
    }
    for (std::size_t v = 0; v < asked.size(); ++v) {
      fetched[static_cast<std::size_t>(asked[v])] = views[v];
    }
  }
  const auto view_of = [&](std::int64_t id) -> std::span<const std::uint64_t> {
    const std::int64_t idx = local_index[static_cast<std::size_t>(id)];
    return idx >= 0 ? std::span<const std::uint64_t>(blobs[static_cast<std::size_t>(idx)])
                    : fetched[static_cast<std::size_t>(id)];
  };

  phase_fetch.close();
  obs::Span phase_score("lsh/score", "lsh", &world.counters());

  // (6) Score exactly the colliding pairs; keep every non-zero estimate
  // (pruned colliders still fill the assembled output better than 0) and
  // threshold into the local candidate list.
  std::vector<PairEstimate> scored;
  scored.reserve(todo.size());
  std::vector<std::uint64_t> kept;
  for (std::uint64_t packed : todo) {
    const auto [i, j] = distmat::SparsePairMask::unpack_pair(packed);
    const double est = estimate_jaccard_wire(view_of(i), view_of(j));
    if (est != 0.0) scored.push_back({i, j, est});
    if (est >= pass.effective_threshold) kept.push_back(packed);
  }

  phase_score.close();
  obs::Span phase_mask("lsh/mask-union", "lsh", &world.counters());

  // (7) Replicate the union — O(survivors) bytes, not O(n²/8) — and pick
  // the representation by the storage-parity crossover.
  const std::vector<std::uint64_t> survivors =
      distmat::allreduce_pair_union(world, std::move(kept));
  if (distmat::sparse_pair_mask_wins(n, static_cast<std::int64_t>(survivors.size()))) {
    pass.mask = distmat::CandidateMask(distmat::SparsePairMask(
        n, std::span<const std::uint64_t>(survivors)));
  } else {
    distmat::PairMask mask(n);
    for (std::int64_t i = 0; i < n; ++i) mask.set(i, i);
    for (std::uint64_t packed : survivors) {
      const auto [i, j] = distmat::SparsePairMask::unpack_pair(packed);
      mask.set(i, j);
      mask.set(j, i);
    }
    pass.mask = distmat::CandidateMask(std::move(mask));
  }

  phase_mask.close();
  obs::Span phase_estimates("lsh/estimates", "lsh", &world.counters());

  // (8) Estimates to rank 0 as sorted (i < j, value) pairs — O(scored)
  // memory; never-collided pairs stay absent and read as 0.0 (they are
  // below the S-curve's collision range).
  pass.estimates = gather_estimates(world, std::move(scored));
  return pass;
}

}  // namespace

double CandidatePass::estimate_at(std::int64_t i, std::int64_t j) const noexcept {
  if (i == j) return 1.0;
  const PairEstimate key{std::min(i, j), std::max(i, j), 0.0};
  const auto it =
      std::lower_bound(estimates.begin(), estimates.end(), key, pair_estimate_order);
  if (it == estimates.end() || it->i != key.i || it->j != key.j) return 0.0;
  return it->est;
}

CandidatePass sketch_candidate_pass(bsp::Comm& world,
                                    std::span<const std::int64_t> samples,
                                    const std::vector<std::vector<std::uint64_t>>& blobs,
                                    std::int64_t n, const core::Config& config) {
  if (samples.size() != blobs.size()) {
    throw std::invalid_argument("sketch_candidate_pass: ids/blobs length mismatch");
  }
  const double effective =
      std::max(0.0, config.prune_threshold - hybrid_prune_slack(config));
  if (resolved_candidate_mode(config, n) == core::CandidateMode::kLsh) {
    return lsh_candidate_pass(world, samples, blobs, n, config, effective);
  }
  return all_pairs_candidate_pass(world, samples, blobs, n, effective);
}

core::Result sketch_similarity_at_scale(bsp::Comm& world,
                                        const core::SampleSource& source,
                                        const core::Config& config) {
  const std::int64_t n = source.sample_count();
  const int p = world.size();
  const int r = world.rank();
  constexpr int kTagSketchRing = bsp::tags::kSketchRing;

  world.barrier();
  Timer timer;
  core::StageRecorder recorder(world.counters());

  // (1) Sketch the owned samples (block distribution, matching the ring
  // panel layout so arriving panels map onto contiguous output columns).
  // Reading and hashing are one fused loop, so the whole build lands in
  // the pack/sketch stage.
  const BlockRange mine = distmat::block_range(n, p, r);
  std::vector<std::vector<std::uint64_t>> blobs;
  {
    auto stage = recorder.scope(core::Stage::kPackSketch);
    blobs.reserve(static_cast<std::size_t>(mine.size()));
    for (std::int64_t i = mine.begin; i < mine.end; ++i) {
      blobs.push_back(build_sample_wire(source, i, config));
    }
  }
  const std::vector<std::uint64_t> panel_words = core::pack_word_panel(blobs);
  const auto my_views = core::unpack_word_panel(panel_words);

  // (2)+(3) Rotate panels; estimate into this rank's output row panel.
  // Same double-buffered schedule as ring_ata_accumulate: the send is a
  // buffered copy posted before the local estimation work, so the hop
  // overlaps compute (Config::ring_overlap toggles the ablation). Stage
  // attribution mirrors the exact pipeline: estimation time is the
  // "multiply", rotation bytes are the "exchange".
  DenseBlock<double> s_panel(mine, BlockRange{0, n});
  {
    auto stage = recorder.scope(core::Stage::kMultiply, core::Stage::kExchange);
    std::vector<std::uint64_t> current = panel_words;
    int current_owner = r;
    for (int step = 0; step < p; ++step) {
      // Plain span (no drift): the hop interleaves with estimation
      // compute, so predicted α-β time would not be comparable.
      const obs::Span hop("sketch-ring/step", "ring", &world.counters());
      const bool last_step = step + 1 == p;
      if (!last_step && config.ring_overlap) {
        world.send<std::uint64_t>((r + 1) % p, kTagSketchRing,
                                  std::span<const std::uint64_t>(current));
      }

      const BlockRange owner_cols = distmat::block_range(n, p, current_owner);
      const auto views =
          current_owner == r ? my_views : core::unpack_word_panel(current);
      for (std::int64_t i = 0; i < mine.size(); ++i) {
        for (std::int64_t j = 0; j < owner_cols.size(); ++j) {
          s_panel.at_local(i, owner_cols.begin + j) =
              estimate_jaccard_wire(my_views[static_cast<std::size_t>(i)],
                                    views[static_cast<std::size_t>(j)]);
        }
      }

      if (last_step) break;
      if (!config.ring_overlap) {
        world.send<std::uint64_t>((r + 1) % p, kTagSketchRing,
                                  std::span<const std::uint64_t>(current));
      }
      current = world.recv<std::uint64_t>((r + p - 1) % p, kTagSketchRing);
      current_owner = (current_owner + p - 1) % p;
    }
  }

  const std::int64_t total_words = world.allreduce_value<std::int64_t>(
      static_cast<std::int64_t>(panel_words.size()), std::plus<std::int64_t>{});
  world.barrier();
  const double seconds = timer.seconds();

  std::vector<double> full;
  {
    auto stage = recorder.scope(core::Stage::kAssemble);
    full = distmat::gather_dense_to_root(world, &s_panel, n, n);
  }

  core::Result result;
  result.n = n;
  result.active_ranks = p;
  result.stages = recorder.reduce_to_root(world);
  if (world.rank() == 0) {
    result.similarity = core::SimilarityMatrix(n, std::move(full));
    core::BatchStats bs;
    bs.seconds = seconds;
    bs.filtered_rows = 0;  // no packing pass: sketches replace the panels
    bs.word_rows = blobs.empty() ? 0 : static_cast<std::int64_t>(blobs.front().size());
    bs.packed_nnz = total_words;  // wire words across all ranks
    bs.bytes_sent = result.stages.total_bytes_sent();
    bs.bytes_received = result.stages.total_bytes_received();
    result.batches = {bs};
  }
  return result;
}

}  // namespace sas::sketch
