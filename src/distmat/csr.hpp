// csr.hpp — Compressed Sparse Row storage with byte accounting.
//
// The paper's bitmask argument (§III-B) is a *storage* argument: "In the
// CSR layout, the same amount of meta-data is necessary to store each
// 'row start' count. We reduce the latter overhead ... reducing the
// number of rows (and consequently row-start counts in the CSR
// representation) by b." CsrMatrix makes that claim measurable: it
// converts the canonical triplet form to CSR and reports exactly how
// many bytes go to row starts vs column indices vs values, which
// bench/ablation_bitmask reads off directly.
//
// The SpGEMM kernels operate on sorted triplet spans (equivalent
// iteration order); CSR is provided for storage accounting, row slicing,
// and as the natural interchange format for downstream consumers.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "distmat/triplet.hpp"

namespace sas::distmat {

template <typename T>
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Build from canonical triplets (sorted by (row, col), unique coords).
  static CsrMatrix from_triplets(std::int64_t rows, std::int64_t cols,
                                 std::span<const Triplet<T>> entries) {
    CsrMatrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.row_ptr_.assign(static_cast<std::size_t>(rows) + 1, 0);
    m.col_idx_.reserve(entries.size());
    m.values_.reserve(entries.size());
    for (const Triplet<T>& t : entries) {
      ++m.row_ptr_[static_cast<std::size_t>(t.row) + 1];
      m.col_idx_.push_back(t.col);
      m.values_.push_back(t.value);
    }
    for (std::size_t r = 1; r < m.row_ptr_.size(); ++r) {
      m.row_ptr_[r] += m.row_ptr_[r - 1];
    }
    return m;
  }

  [[nodiscard]] std::int64_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::int64_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::int64_t nnz() const noexcept {
    return static_cast<std::int64_t>(values_.size());
  }

  /// Column indices of row r.
  [[nodiscard]] std::span<const std::int64_t> row_columns(std::int64_t r) const {
    const auto begin = static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(r)]);
    const auto end = static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(r) + 1]);
    return {col_idx_.data() + begin, end - begin};
  }

  /// Values of row r (parallel to row_columns(r)).
  [[nodiscard]] std::span<const T> row_values(std::int64_t r) const {
    const auto begin = static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(r)]);
    const auto end = static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(r) + 1]);
    return {values_.data() + begin, end - begin};
  }

  /// Round-trip back to canonical triplets.
  [[nodiscard]] std::vector<Triplet<T>> to_triplets() const {
    std::vector<Triplet<T>> out;
    out.reserve(values_.size());
    for (std::int64_t r = 0; r < rows_; ++r) {
      const auto columns = row_columns(r);
      const auto vals = row_values(r);
      for (std::size_t i = 0; i < columns.size(); ++i) {
        out.push_back({r, columns[i], vals[i]});
      }
    }
    return out;
  }

  /// Storage accounting (the §III-B trade-off, in bytes).
  struct StorageBytes {
    std::uint64_t row_starts = 0;  ///< (rows+1) × 8 — what the bitmask divides by b
    std::uint64_t col_indices = 0; ///< nnz × 8
    std::uint64_t values = 0;      ///< nnz × sizeof(T)
    [[nodiscard]] std::uint64_t total() const noexcept {
      return row_starts + col_indices + values;
    }
  };

  [[nodiscard]] StorageBytes storage() const noexcept {
    StorageBytes s;
    s.row_starts = (static_cast<std::uint64_t>(rows_) + 1) * sizeof(std::int64_t);
    s.col_indices = static_cast<std::uint64_t>(nnz()) * sizeof(std::int64_t);
    s.values = static_cast<std::uint64_t>(nnz()) * sizeof(T);
    return s;
  }

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::vector<std::int64_t> row_ptr_;
  std::vector<std::int64_t> col_idx_;
  std::vector<T> values_;
};

}  // namespace sas::distmat
