// phylip.hpp — PHYLIP distance-matrix output.
//
// The distance matrix D = 1 − S feeds downstream phylogenetics tools
// (paper Fig. 1 steps 7–9); the PHYLIP square format is the lingua franca
// those tools consume, keeping GenomeAtScale "seamlessly integrated into
// existing analysis pipelines".
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace sas::genome {

/// Write an n×n distance matrix in PHYLIP square format. Names longer
/// than 10 characters are written in relaxed PHYLIP style (name, two
/// spaces, values), which modern tools accept.
void write_phylip(std::ostream& out, const std::vector<std::string>& names,
                  const std::vector<double>& distances, std::int64_t n);

void write_phylip_file(const std::string& path, const std::vector<std::string>& names,
                       const std::vector<double>& distances, std::int64_t n);

/// Parse a square PHYLIP matrix (inverse of write_phylip; used by tests).
struct PhylipMatrix {
  std::vector<std::string> names;
  std::vector<double> distances;  ///< row-major n×n
  std::int64_t n = 0;
};

[[nodiscard]] PhylipMatrix read_phylip(std::istream& in);

}  // namespace sas::genome
