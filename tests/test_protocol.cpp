// test_protocol.cpp — the debug-build BSP protocol verifier
// (bsp/protocol.hpp): per-rank collective ledgers cross-checked at
// barriers and run exit, unreceived point-to-point messages reported as
// typed errors, split-child communicators swept through the registry,
// env-var arming, and the contract that verification never changes
// results — armed runs are bitwise identical to unarmed ones across the
// estimator sweep.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "bsp/runtime.hpp"
#include "core/driver.hpp"
#include "core/sample_source.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace sas {
namespace {

bsp::RuntimeOptions armed() {
  bsp::RuntimeOptions options;
  options.verify_protocol = true;
  return options;
}

// ------------------------------------------------------- divergence paths

TEST(ProtocolVerifier, DivergentBroadcastRootFailsAtBarrierWithNamedEntries) {
  try {
    bsp::Runtime::run(
        2,
        [](bsp::Comm& comm) {
          // Every rank believes it is the root: both send, neither
          // receives (sends are buffered, so nobody blocks), and the
          // ledgers disagree on the recorded tag. The next barrier must
          // fail the run naming both ranks' entries — not hang, not trip
          // the watchdog.
          std::vector<std::int64_t> data = {1, 2, 3};
          comm.broadcast(data, comm.rank());
          comm.barrier();
        },
        armed());
    FAIL() << "expected a protocol divergence";
  } catch (const error::Error& e) {
    EXPECT_EQ(e.code(), error::Code::kProtocol);
    const std::string what = e.what();
    EXPECT_NE(what.find("diverged at barrier"), std::string::npos) << what;
    EXPECT_NE(what.find("broadcast(tag=0"), std::string::npos) << what;
    EXPECT_NE(what.find("broadcast(tag=1"), std::string::npos) << what;
    EXPECT_NE(what.find("world communicator"), std::string::npos) << what;
  }
}

TEST(ProtocolVerifier, ExtraCollectiveOnOneRankFailsAtBarrier) {
  try {
    bsp::Runtime::run(
        2,
        [](bsp::Comm& comm) {
          // Rank 1 issues a gather_v rank 0 never joins. As a non-root,
          // rank 1 only sends, so it reaches the barrier where the
          // sequence-length mismatch is detected.
          std::vector<std::int64_t> mine = {7};
          if (comm.rank() == 1) (void)comm.gather_v<std::int64_t>(mine, 0);
          comm.barrier();
        },
        armed());
    FAIL() << "expected a protocol divergence";
  } catch (const error::Error& e) {
    EXPECT_EQ(e.code(), error::Code::kProtocol);
    const std::string what = e.what();
    EXPECT_NE(what.find("gather_v(tag=0"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 0 issued 1 collectives"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 1 issued 2"), std::string::npos) << what;
  }
}

TEST(ProtocolVerifier, UnreceivedSendFailsAtExitNamingSourceDestTag) {
  try {
    (void)bsp::Runtime::run(
        2,
        [](bsp::Comm& comm) {
          // Collective sequences agree (none); the leak is pure p2p.
          if (comm.rank() == 0) comm.send_value<std::int64_t>(1, /*tag=*/42, 99);
        },
        armed());
    FAIL() << "expected an unreceived-send report";
  } catch (const error::ProtocolError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unreceived message"), std::string::npos) << what;
    EXPECT_NE(what.find("from rank 0 to rank 1"), std::string::npos) << what;
    EXPECT_NE(what.find("tag=42"), std::string::npos) << what;
  }
}

TEST(ProtocolVerifier, SplitChildLeakIsSweptThroughRegistry) {
  try {
    (void)bsp::Runtime::run(
        4,
        [](bsp::Comm& comm) {
          // The world's own ledgers and mailboxes stay clean; the leak
          // lives in a split child, reachable only via the registry.
          auto child = comm.split(comm.rank() % 2, comm.rank());
          if (comm.rank() == 0) {
            child.send_value<std::int64_t>(/*dest=*/1, /*tag=*/5, 123);
          }
        },
        armed());
    FAIL() << "expected a split-child leak report";
  } catch (const error::ProtocolError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("split child"), std::string::npos) << what;
    EXPECT_NE(what.find("tag=5"), std::string::npos) << what;
  }
}

TEST(ProtocolVerifier, SplitChildDivergenceFailsAtChildBarrier) {
  try {
    bsp::Runtime::run(
        4,
        [](bsp::Comm& comm) {
          auto child = comm.split(comm.rank() % 2, comm.rank());
          // In the color-0 child, the second member issues an extra
          // send-only collective before the child barrier.
          std::vector<std::int64_t> mine = {1};
          if (comm.rank() == 2) (void)child.gather_v<std::int64_t>(mine, 0);
          child.barrier();
        },
        armed());
    FAIL() << "expected a child-communicator divergence";
  } catch (const error::Error& e) {
    EXPECT_EQ(e.code(), error::Code::kProtocol);
    const std::string what = e.what();
    EXPECT_NE(what.find("split child"), std::string::npos) << what;
    EXPECT_NE(what.find("diverged at barrier"), std::string::npos) << what;
  }
}

// ----------------------------------------------------------- clean paths

TEST(ProtocolVerifier, FullCollectiveSuitePassesArmed) {
  // Every collective the runtime offers, with deliberately rank-varying
  // gather/alltoall block lengths (shape is recorded as 0 for those) and
  // a split with child collectives. Must complete without a report.
  const auto counters = bsp::Runtime::run(
      4,
      [](bsp::Comm& comm) {
        const int r = comm.rank();
        std::vector<std::int64_t> data = {r, r + 1};
        comm.broadcast(data, 0);
        comm.allreduce(data, std::plus<std::int64_t>{});
        (void)comm.scan<std::int64_t>(r, std::plus<std::int64_t>{});

        // Rank-varying lengths: rank r contributes r + 1 elements.
        std::vector<std::int64_t> mine(static_cast<std::size_t>(r + 1), r);
        (void)comm.gather_v<std::int64_t>(mine, 0);
        (void)comm.allgather_v<std::int64_t>(mine);

        auto child = comm.split(r % 2, r);
        std::vector<std::int64_t> cdata = {child.rank()};
        child.allreduce(cdata, std::plus<std::int64_t>{});
        child.barrier();
        comm.barrier();
      },
      armed());
  EXPECT_EQ(counters.size(), 4u);
}

TEST(ProtocolVerifier, AbortedRunsSkipTheExitSweep) {
  // A failing rank legitimately leaves messages in flight; the sweep
  // must not mask the original error with a leak report.
  try {
    bsp::Runtime::run(
        2,
        [](bsp::Comm& comm) {
          comm.send_value<std::int64_t>(1 - comm.rank(), /*tag=*/9, 5);
          if (comm.rank() == 0) throw error::CorruptInput("bad bytes");
          comm.barrier();
        },
        armed());
    FAIL() << "expected the original error";
  } catch (const error::Error& e) {
    EXPECT_EQ(e.code(), error::Code::kCorruptInput);
  }
}

// ------------------------------------------------------------ env arming

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    ::setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() {
    if (saved_.has_value()) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

TEST(ProtocolVerifier, EnvVariableArmsTheVerifier) {
  const ScopedEnv guard("SAS_VERIFY_PROTOCOL", "1");
  EXPECT_THROW(bsp::Runtime::run(2,
                                 [](bsp::Comm& comm) {
                                   std::vector<std::int64_t> d = {1};
                                   comm.broadcast(d, comm.rank());
                                   comm.barrier();
                                 }),
               error::Error);
}

TEST(ProtocolVerifier, EnvValueZeroLeavesVerificationOff) {
  const ScopedEnv guard("SAS_VERIFY_PROTOCOL", "0");
  // The same divergent pattern runs to completion unarmed: the stray
  // broadcasts leak silently, which is exactly the failure mode the
  // verifier exists to surface.
  EXPECT_NO_THROW(bsp::Runtime::run(2, [](bsp::Comm& comm) {
    std::vector<std::int64_t> d = {1};
    comm.broadcast(d, comm.rank());
    comm.barrier();
  }));
}

// ---------------------------------------- armed == unarmed (bitwise)

core::VectorSampleSource random_source(std::int64_t m, std::int64_t n,
                                       double density, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<std::int64_t>> samples(static_cast<std::size_t>(n));
  for (auto& s : samples) {
    for (std::int64_t v = 0; v < m; ++v) {
      if (rng.bernoulli(density)) s.push_back(v);
    }
  }
  return core::VectorSampleSource(m, std::move(samples));
}

struct SweepCase {
  core::Estimator estimator;
  core::Algorithm algorithm;
  int nranks;
};

class ArmedParity : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ArmedParity, VerificationNeverChangesResults) {
  // Env must not pre-arm the baseline: CI exports SAS_VERIFY_PROTOCOL=1
  // for the whole ctest run, so pin it off and arm via config only.
  const ScopedEnv guard("SAS_VERIFY_PROTOCOL", "0");
  const SweepCase c = GetParam();
  const auto src = random_source(/*m=*/500, /*n=*/18, /*density=*/0.08, /*seed=*/7);

  core::Config cfg;
  cfg.estimator = c.estimator;
  cfg.algorithm = c.algorithm;
  cfg.batch_count = 2;

  const core::Result plain = core::similarity_at_scale_threaded(c.nranks, src, cfg);

  cfg.verify_protocol = true;
  const core::Result armed_run =
      core::similarity_at_scale_threaded(c.nranks, src, cfg);

  ASSERT_EQ(armed_run.n, plain.n);
  for (std::int64_t i = 0; i < plain.n; ++i) {
    for (std::int64_t j = 0; j < plain.n; ++j) {
      // Bitwise: verification adds checks, never arithmetic.
      EXPECT_EQ(armed_run.similarity_at(i, j), plain.similarity_at(i, j))
          << "(" << i << ", " << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    EstimatorSweep, ArmedParity,
    ::testing::Values(
        SweepCase{core::Estimator::kExact, core::Algorithm::kRing1D, 1},
        SweepCase{core::Estimator::kExact, core::Algorithm::kRing1D, 2},
        SweepCase{core::Estimator::kExact, core::Algorithm::kSumma, 4},
        SweepCase{core::Estimator::kHll, core::Algorithm::kRing1D, 2},
        SweepCase{core::Estimator::kMinhash, core::Algorithm::kRing1D, 4},
        SweepCase{core::Estimator::kBottomK, core::Algorithm::kRing1D, 2},
        SweepCase{core::Estimator::kHybrid, core::Algorithm::kRing1D, 1},
        SweepCase{core::Estimator::kHybrid, core::Algorithm::kRing1D, 2},
        SweepCase{core::Estimator::kHybrid, core::Algorithm::kRing1D, 4}));

}  // namespace
}  // namespace sas
