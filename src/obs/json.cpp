#include "obs/json.hpp"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace sas::obs {

// ---------------------------------------------------------------------------
// JsonWriter

void JsonWriter::pre_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!stack_.empty()) {
    if (stack_.back().any) out_ << ',';
    stack_.back().any = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  pre_value();
  out_ << '{';
  stack_.push_back({'o', false});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  stack_.pop_back();
  out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  pre_value();
  out_ << '[';
  stack_.push_back({'a', false});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  stack_.pop_back();
  out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (!stack_.empty()) {
    if (stack_.back().any) out_ << ',';
    stack_.back().any = true;
  }
  out_ << '"';
  escape(out_, k);
  out_ << "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  pre_value();
  out_ << '"';
  escape(out_, v);
  out_ << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  pre_value();
  if (!std::isfinite(v)) {
    out_ << '0';
    return *this;
  }
  // %.17g round-trips every double; strip nothing — compactness of the
  // numeric text matters less than exactness (the report tests compare
  // parsed seconds against in-memory doubles).
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  pre_value();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  pre_value();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  pre_value();
  out_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  pre_value();
  out_ << "null";
  return *this;
}

void JsonWriter::escape(std::ostream& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\b':
        out << "\\b";
        break;
      case '\f':
        out << "\\f";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\r':
        out << "\\r";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

// ---------------------------------------------------------------------------
// JsonValue parser

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw error::CorruptInput("json parse error at offset " +
                              std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue();
      default:
        return JsonValue(parse_number());
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue::Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.emplace(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return JsonValue(std::move(obj));
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue::Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return JsonValue(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          // BMP-only UTF-8 encoding; surrogate pairs are not produced by
          // our writer (it only emits \u00XX for control bytes).
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          fail("bad escape character");
      }
    }
    return out;
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("malformed number");
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parse_document();
}

const JsonValue& JsonValue::at(const std::string& k) const {
  const Object& obj = object();
  const auto it = obj.find(k);
  if (it == obj.end()) {
    throw error::CorruptInput("json: missing key \"" + k + "\"");
  }
  return it->second;
}

const JsonValue* JsonValue::find(const std::string& k) const noexcept {
  const Object* obj = std::get_if<Object>(&data_);
  if (obj == nullptr) return nullptr;
  const auto it = obj->find(k);
  return it == obj->end() ? nullptr : &it->second;
}

}  // namespace sas::obs
