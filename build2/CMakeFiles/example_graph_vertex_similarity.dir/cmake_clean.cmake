file(REMOVE_RECURSE
  "CMakeFiles/example_graph_vertex_similarity.dir/examples/graph_vertex_similarity.cpp.o"
  "CMakeFiles/example_graph_vertex_similarity.dir/examples/graph_vertex_similarity.cpp.o.d"
  "example_graph_vertex_similarity"
  "example_graph_vertex_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_graph_vertex_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
