// config.hpp — tuning knobs of the SimilarityAtScale driver.
//
// The defaults reproduce the paper's configuration (bitmask b = 64,
// zero-row filter on, SUMMA parallelization); every knob is also an
// ablation axis exercised by bench/ablation_*.
#pragma once

#include <cstdint>

namespace sas::core {

/// Which AᵀA parallelization the driver uses (DESIGN.md §3).
enum class Algorithm {
  kSerial,   ///< rank 0 computes everything (reference / baseline)
  kRing1D,   ///< 1D column-panel ring — Θ(z) per-rank communication
  kSumma,    ///< 2D/2.5D SUMMA — Θ(z/√(cp) + cn²/p) per-rank communication
};

struct Config {
  /// Number of row batches r (paper Eq. 3). Larger values shrink the
  /// working set per batch at the cost of per-batch latency (Fig. 2c/2d).
  std::int64_t batch_count = 1;

  /// Bits packed per word, the paper's b (§III-B technique 3). 64 is the
  /// production setting; 1 disables compression (ablation).
  int bit_width = 64;

  /// Replication factor c of the processor grid (paper §III-C). Only
  /// meaningful for Algorithm::kSumma.
  int replication = 1;

  Algorithm algorithm = Algorithm::kSumma;

  /// Zero-row filtering via the distributed sparse vector f (Eq. 5–6).
  /// Disabling it (ablation) packs raw row ids, wasting mask bits on
  /// hypersparse inputs.
  bool use_zero_row_filter = true;

  /// Ring schedule (Algorithm::kRing1D only): post the panel rotation
  /// send before the local multiply so transfer overlaps compute.
  /// Disabling it (ablation) restores the synchronous send-after-compute
  /// ring that serializes rotation with the multiply.
  bool ring_overlap = true;

  /// Worker threads per rank for the SpGEMM tile accumulation (1 = run
  /// inline). Only engages on output blocks whose multiply work clears
  /// the kernel's spawn threshold; leave at 1 when rank threads already
  /// oversubscribe the cores (the scaling benches do).
  int kernel_threads = 1;
};

}  // namespace sas::core
