// popcount_stream.cpp — the streaming popcount dot product, isolated in
// its own translation unit on purpose.
//
// GCC 12 constant-folds the vectorized VPOPCNTQ pattern incorrectly
// (Σ popcount over a compile-time-known array folds to the sum of the
// *words*), so -mavx512vpopcntdq cannot be enabled project-wide: any
// test or table with constant popcount inputs could silently miscompute.
// Runtime data is unaffected — and everything flowing through this TU is
// runtime data by construction — so the build probes the two failure
// modes separately (CMakeLists) and, where only the folding is broken,
// compiles exactly this file with the extension enabled. On this path
// the 4-way unrolled loop in popcount_and_sum_block auto-vectorizes to
// 512-bit VPOPCNTQ, roughly doubling dense popcount throughput.
#include "util/popcount.hpp"

namespace sas {

std::uint64_t popcount_and_sum_stream(const std::uint64_t* x, const std::uint64_t* y,
                                      std::size_t len) noexcept {
  return popcount_and_sum_block(x, y, len);
}

bool popcount_stream_vectorized() noexcept {
#if defined(__AVX512VPOPCNTDQ__)
  return true;
#else
  return false;
#endif
}

}  // namespace sas
