file(REMOVE_RECURSE
  "CMakeFiles/test_sparse_output.dir/tests/test_sparse_output.cpp.o"
  "CMakeFiles/test_sparse_output.dir/tests/test_sparse_output.cpp.o.d"
  "test_sparse_output"
  "test_sparse_output.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse_output.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
