#include "analysis/neighbor_joining.hpp"

#include <limits>
#include <stdexcept>

namespace sas::analysis {

PhyloTree neighbor_joining(const std::vector<double>& distances,
                           const std::vector<std::string>& names) {
  const auto n = static_cast<std::int64_t>(names.size());
  if (n < 2) throw std::invalid_argument("neighbor_joining: need at least 2 taxa");
  if (static_cast<std::int64_t>(distances.size()) != n * n) {
    throw std::invalid_argument("neighbor_joining: distance matrix must be n*n");
  }

  PhyloTree tree;
  // Active clusters: tree-node id + a dense working distance matrix
  // indexed by active position. Entries are compacted on each join.
  std::vector<int> node_of;
  for (std::int64_t i = 0; i < n; ++i) {
    node_of.push_back(tree.add_node(names[static_cast<std::size_t>(i)]));
  }
  std::vector<double> d = distances;
  std::int64_t r = n;

  auto dist_at = [&](std::int64_t i, std::int64_t j) -> double& {
    return d[static_cast<std::size_t>(i * r + j)];
  };

  while (r > 2) {
    std::vector<double> total(static_cast<std::size_t>(r), 0.0);
    for (std::int64_t i = 0; i < r; ++i) {
      for (std::int64_t j = 0; j < r; ++j) total[static_cast<std::size_t>(i)] += dist_at(i, j);
    }

    // argmin of Q(i,j) = (r−2)·d(i,j) − total(i) − total(j), i < j.
    std::int64_t best_i = 0;
    std::int64_t best_j = 1;
    double best_q = std::numeric_limits<double>::infinity();
    for (std::int64_t i = 0; i < r; ++i) {
      for (std::int64_t j = i + 1; j < r; ++j) {
        const double q = static_cast<double>(r - 2) * dist_at(i, j) -
                         total[static_cast<std::size_t>(i)] -
                         total[static_cast<std::size_t>(j)];
        if (q < best_q) {
          best_q = q;
          best_i = i;
          best_j = j;
        }
      }
    }

    const double dij = dist_at(best_i, best_j);
    // Branch lengths of the joined pair (may be negative on non-additive
    // input; standard NJ does not clamp, preserving exactness on additive
    // matrices).
    const double li =
        0.5 * dij + (total[static_cast<std::size_t>(best_i)] -
                     total[static_cast<std::size_t>(best_j)]) /
                        (2.0 * static_cast<double>(r - 2));
    const double lj = dij - li;

    const int u = tree.add_node();
    tree.link(u, node_of[static_cast<std::size_t>(best_i)], li);
    tree.link(u, node_of[static_cast<std::size_t>(best_j)], lj);

    // New distances: d(u,k) = (d(i,k) + d(j,k) − d(i,j)) / 2. Compact the
    // matrix by overwriting row/col best_i with u and removing best_j.
    std::vector<double> d_new(static_cast<std::size_t>((r - 1) * (r - 1)), 0.0);
    std::vector<int> node_new;
    std::vector<std::int64_t> keep;  // old indices, with best_i replaced by the join
    for (std::int64_t i = 0; i < r; ++i) {
      if (i == best_j) continue;
      keep.push_back(i);
      node_new.push_back(i == best_i ? u : node_of[static_cast<std::size_t>(i)]);
    }
    for (std::size_t a = 0; a < keep.size(); ++a) {
      for (std::size_t b = 0; b < keep.size(); ++b) {
        const std::int64_t oi = keep[a];
        const std::int64_t oj = keep[b];
        double value;
        if (a == b) {
          value = 0.0;
        } else if (oi == best_i) {
          value = 0.5 * (dist_at(best_i, oj) + dist_at(best_j, oj) - dij);
        } else if (oj == best_i) {
          value = 0.5 * (dist_at(best_i, oi) + dist_at(best_j, oi) - dij);
        } else {
          value = dist_at(oi, oj);
        }
        d_new[a * keep.size() + b] = value;
      }
    }
    d = std::move(d_new);
    node_of = std::move(node_new);
    --r;
  }

  // Final join: split the remaining distance across a synthetic root so
  // leaf-to-leaf path lengths are preserved.
  const double dab = d[1];
  const int root = tree.add_node();
  tree.link(root, node_of[0], 0.5 * dab);
  tree.link(root, node_of[1], 0.5 * dab);
  return tree;
}

}  // namespace sas::analysis
