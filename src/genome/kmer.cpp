#include "genome/kmer.hpp"

#include <stdexcept>

namespace sas::genome {

KmerCodec::KmerCodec(int k) : k_(k) {
  if (k < 1 || k > 31) {
    throw std::invalid_argument("KmerCodec: k must be in [1, 31]");
  }
  mask_ = (k == 32) ? ~0ULL : ((std::uint64_t{1} << (2 * k)) - 1);
}

std::uint64_t KmerCodec::encode(std::string_view kmer) const {
  if (static_cast<int>(kmer.size()) != k_) {
    throw std::invalid_argument("KmerCodec::encode: wrong k-mer length");
  }
  std::uint64_t code = 0;
  for (char base : kmer) {
    const int c = base_code(base);
    if (c == kInvalidBase) {
      throw std::invalid_argument("KmerCodec::encode: invalid base");
    }
    code = (code << 2) | static_cast<std::uint64_t>(c);
  }
  return code;
}

std::string KmerCodec::decode(std::uint64_t code) const {
  std::string out(static_cast<std::size_t>(k_), 'A');
  for (int i = k_ - 1; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = code_base(static_cast<int>(code & 3));
    code >>= 2;
  }
  return out;
}

std::uint64_t KmerCodec::reverse_complement(std::uint64_t code) const noexcept {
  std::uint64_t rc = 0;
  for (int i = 0; i < k_; ++i) {
    rc = (rc << 2) | (3 - (code & 3));
    code >>= 2;
  }
  return rc & mask_;
}

std::vector<std::uint64_t> KmerCodec::canonical_kmers(std::string_view sequence) const {
  std::vector<std::uint64_t> out;
  if (static_cast<int>(sequence.size()) < k_) return out;
  out.reserve(sequence.size() - static_cast<std::size_t>(k_) + 1);

  std::uint64_t forward = 0;
  std::uint64_t reverse = 0;
  int run = 0;  // valid bases accumulated since the last break
  const int shift = 2 * (k_ - 1);
  for (char base : sequence) {
    const int c = base_code(base);
    if (c == kInvalidBase) {
      run = 0;
      forward = 0;
      reverse = 0;
      continue;
    }
    forward = ((forward << 2) | static_cast<std::uint64_t>(c)) & mask_;
    reverse = (reverse >> 2) |
              (static_cast<std::uint64_t>(3 - c) << shift);
    if (++run >= k_) out.push_back(forward < reverse ? forward : reverse);
  }
  return out;
}

}  // namespace sas::genome
