// crossover.hpp — startup micro-calibration of the SpGEMM sparse/dense
// crossover.
//
// The dense-block path of the tile kernel wins when the product of the
// two panel fill ratios exceeds the ratio of the two inner loops' per-
// element costs: the dense path spends words·colsL·colsN streaming
// popcount word-madds where the scatter path spends fillL·fillN times as
// many scatter ops. The original thresholds (0.30 with a vector
// popcount, 0.60 scalar) were measured on one box; this module measures
// them on THE box the run is on: a one-shot, memoized micro-benchmark
// times both inner loops (util/popcount.hpp's popcount_and_scatter and
// popcount_and_sum_stream) on L1-resident synthetic data and derives
//
//   crossover = margin · (stream seconds/word) / (scatter seconds/op)
//
// with a margin covering the densification cost, clamped to a sane
// range. Config::dense_crossover (plumbed through CsrAtaOptions)
// overrides the calibration with a pinned value for ablations and
// reproducing recorded runs.
#pragma once

namespace sas::distmat {

/// Calibration clamp range: outside it the measurement is distrusted.
inline constexpr double kMinDenseCrossover = 0.05;
inline constexpr double kMaxDenseCrossover = 0.95;

/// The compile-time fallback thresholds (the pre-calibration constants),
/// selected by whether popcount_and_sum_stream vectorizes.
[[nodiscard]] double fallback_dense_crossover() noexcept;

/// Measured crossover for this machine. The micro-benchmark runs once
/// (a few hundred microseconds) on first use and is memoized; concurrent
/// first calls from rank threads serialize on the magic static. Falls
/// back to fallback_dense_crossover() when the clock is too coarse to
/// trust the measurement.
[[nodiscard]] double calibrated_dense_crossover();

}  // namespace sas::distmat
