// Seeded R7 violation: a catch-all that swallows the exception — no
// rethrow, no translation into the error taxonomy. The recovery layer
// would never see (or classify) this failure.
void helper();

void swallow_everything() {
  try {
    helper();
  } catch (...) {
    // nothing: the failure vanishes here
  }
}
