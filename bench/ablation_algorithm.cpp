// ablation_algorithm — design ablation over the parallel schedule.
//
// DESIGN.md calls out the schedule as the central design choice: the same
// batched, filtered, bit-packed pipeline can multiply with
//   * one rank (serial reference),
//   * a 1D column-panel ring (the "obvious" parallelization),
//   * 2D SUMMA, or 2.5D SUMMA with replication c ∈ {2, 4}
// and every variant returns bit-identical matrices (tests enforce this).
// What changes is communication volume and its split between the z-sized
// input term and the n²-sized output term — the heart of the paper's
// communication-avoidance claim.
#include "bench_common.hpp"

using namespace sas;
using namespace sas::bench;

int main() {
  print_header("Ablation — parallel schedule (serial / ring1D / SUMMA / 2.5D)",
               "Besta et al., IPDPS'20, §III-C (communication-avoiding schedule)",
               "Kingsford-like n=516, m=2^22, density=1.5e-4, 16 ranks, 8 batches");
  const auto source = kingsford_like();
  const bsp::BspMachine model = machine();

  struct Variant {
    const char* name;
    core::Algorithm algorithm;
    int ranks;
    int c;
    bool ring_overlap;
  };
  const std::vector<Variant> variants{
      {"serial (1 rank)", core::Algorithm::kSerial, 1, 1, true},
      {"ring 1D (sync)", core::Algorithm::kRing1D, 16, 1, false},
      {"ring 1D (overlap)", core::Algorithm::kRing1D, 16, 1, true},
      {"SUMMA 2D (c=1)", core::Algorithm::kSumma, 16, 1, true},
      {"SUMMA 2.5D (c=2)", core::Algorithm::kSumma, 16, 2, true},
      {"SUMMA 2.5D (c=4)", core::Algorithm::kSumma, 16, 4, true},
  };

  TextTable table({"schedule", "active ranks", "max bytes/rank", "max flops/rank",
                   "wall total", "modelled BSP"});
  for (const Variant& v : variants) {
    core::Config config;
    config.algorithm = v.algorithm;
    config.replication = v.c;
    config.batch_count = 8;
    config.ring_overlap = v.ring_overlap;
    const RunResult run = run_driver(v.ranks, source, config);
    table.add_row({v.name, std::to_string(run.result.active_ranks),
                   fmt_bytes(static_cast<double>(run.cost.max_bytes)),
                   fmt_count(run.cost.max_flops), fmt_duration(run.wall_seconds),
                   fmt_duration(model.modelled_seconds(run.cost))});
  }
  table.print();
  std::printf("\nShapes to match:\n"
              "  * flops/rank drop ~p-fold for every parallel schedule (same algebra);\n"
              "  * ring pays Θ(z) bytes/rank; SUMMA pays Θ(z/√(cp) + cn²/p);\n"
              "  * the overlapped ring posts the rotation send before the multiply,\n"
              "    so its wall time should sit below the synchronous ring (identical\n"
              "    bytes/flops — the win is pipelining, invisible to the BSP model);\n"
              "  * replication c trades lower input traffic for a larger output\n"
              "    reduction — worthwhile when z dominates n²/√p.\n");
  return 0;
}
