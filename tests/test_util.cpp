// test_util.cpp — unit tests for the util substrate: hashing, popcount,
// bit vectors, RNG, statistics, text tables, and CLI parsing.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "util/args.hpp"
#include "util/bitvector.hpp"
#include "util/hashing.hpp"
#include "util/popcount.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace sas {
namespace {

TEST(Hashing, Splitmix64IsDeterministicAndDispersive) {
  EXPECT_EQ(splitmix64(1), splitmix64(1));
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) seen.insert(splitmix64(i));
  EXPECT_EQ(seen.size(), 1000u);  // invertible mixer: no collisions
}

TEST(Hashing, HashBytesDistinguishesStrings) {
  EXPECT_NE(hash_bytes("ACGT"), hash_bytes("TGCA"));
  EXPECT_EQ(hash_bytes(""), hash_bytes(""));
  EXPECT_NE(hash_bytes("a"), hash_bytes("b"));
}

TEST(Hashing, FamilyMembersDecorrelate) {
  const HashFamily h1(1);
  const HashFamily h2(2);
  int agreements = 0;
  for (std::uint64_t x = 0; x < 512; ++x) {
    if ((h1(x) & 0xff) == (h2(x) & 0xff)) ++agreements;
  }
  // Chance agreement on the low byte is ~1/256; allow generous slack.
  EXPECT_LT(agreements, 20);
}

TEST(Hashing, HashCombineOrderDependent) {
  EXPECT_NE(hash_combine(hash_combine(0, 1), 2), hash_combine(hash_combine(0, 2), 1));
}

TEST(Popcount, WordAndSpanSums) {
  EXPECT_EQ(popcount64(0), 0);
  EXPECT_EQ(popcount64(~0ULL), 64);
  EXPECT_EQ(popcount64(0b1011), 3);
  const std::vector<std::uint64_t> words{0xffULL, 0x1ULL, 0x0ULL};
  EXPECT_EQ(popcount_sum(words), 9u);
}

TEST(Popcount, AndSumIsIntersection) {
  const std::vector<std::uint64_t> a{0b1100, 0b1111};
  const std::vector<std::uint64_t> b{0b1010, 0b0110};
  EXPECT_EQ(popcount_and_sum(a, b), 1u + 2u);
}

TEST(Popcount, AndSumRejectsMismatchedSpans) {
  // The doc contract: callers must pass equal-length spans; silent
  // truncation used to mask packing bugs. Asserts stay on in this build.
  const std::vector<std::uint64_t> a{1, 2, 3};
  const std::vector<std::uint64_t> b{1, 2};
  EXPECT_DEATH((void)popcount_and_sum(a, b), "span lengths");
}

TEST(Popcount, AndSumBlockMatchesScalarAcrossLengthsAndTails) {
  Rng rng(17);
  for (std::size_t len : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 64u, 129u}) {
    std::vector<std::uint64_t> x(len);
    std::vector<std::uint64_t> y(len);
    for (std::size_t i = 0; i < len; ++i) {
      x[i] = rng();
      y[i] = rng();
    }
    std::uint64_t expect = 0;
    for (std::size_t i = 0; i < len; ++i) {
      expect += static_cast<std::uint64_t>(popcount64(x[i] & y[i]));
    }
    EXPECT_EQ(popcount_and_sum_block(x.data(), y.data(), len), expect) << "len=" << len;
  }
}

TEST(Popcount, AndScatterMatchesScalarAcrossCountsAndTails) {
  Rng rng(23);
  for (std::size_t count : {0u, 1u, 3u, 4u, 5u, 8u, 33u}) {
    std::vector<std::int64_t> cols(count);
    std::vector<std::uint64_t> vals(count);
    for (std::size_t k = 0; k < count; ++k) {
      cols[k] = static_cast<std::int64_t>(2 * k);  // unique, strided slots
      vals[k] = rng();
    }
    const std::uint64_t word = rng();
    std::vector<std::int64_t> expect(2 * count + 1, 5);
    std::vector<std::int64_t> got = expect;
    for (std::size_t k = 0; k < count; ++k) {
      expect[static_cast<std::size_t>(cols[k])] += popcount64(word & vals[k]);
    }
    popcount_and_scatter(word, cols.data(), vals.data(), count, got.data());
    EXPECT_EQ(got, expect) << "count=" << count;
  }
}

TEST(BitVector, SetTestClearCount) {
  BitVector bits(130);
  EXPECT_EQ(bits.size(), 130u);
  EXPECT_EQ(bits.word_count(), 3u);
  bits.set(0);
  bits.set(64);
  bits.set(129);
  EXPECT_TRUE(bits.test(0));
  EXPECT_TRUE(bits.test(64));
  EXPECT_TRUE(bits.test(129));
  EXPECT_FALSE(bits.test(1));
  EXPECT_EQ(bits.count(), 3u);
  bits.clear(64);
  EXPECT_FALSE(bits.test(64));
  EXPECT_EQ(bits.count(), 2u);
}

TEST(BitVector, IntersectionCount) {
  BitVector a(200);
  BitVector b(200);
  for (std::size_t i = 0; i < 200; i += 3) a.set(i);
  for (std::size_t i = 0; i < 200; i += 5) b.set(i);
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < 200; i += 15) ++expected;
  EXPECT_EQ(a.intersection_count(b), expected);
}

TEST(BitVector, ResizePreservesContents) {
  BitVector bits(10);
  bits.set(7);
  bits.resize(500);
  EXPECT_TRUE(bits.test(7));
  EXPECT_FALSE(bits.test(400));
  bits.set(400);
  EXPECT_EQ(bits.count(), 2u);
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(7);
  Rng b(7);
  Rng c(8);
  bool all_equal = true;
  bool any_diff_c = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a();
    all_equal = all_equal && (va == b());
    any_diff_c = any_diff_c || (va != c());
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_c);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
}

TEST(Rng, UniformRealInUnitInterval) {
  Rng rng(4);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform_real();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ForkedStreamsDiffer) {
  Rng rng(6);
  Rng f1 = rng.fork(1);
  Rng f2 = rng.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (f1() == f2()) ? 1 : 0;
  EXPECT_EQ(same, 0);
}

TEST(Stats, MeanStdDevCi) {
  StatAccumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(v);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.stddev(), 2.138, 1e-3);
  EXPECT_NEAR(acc.ci95_halfwidth(), 1.96 * acc.stddev() / std::sqrt(8.0), 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(Stats, EmptyAndSingle) {
  StatAccumulator acc;
  EXPECT_TRUE(acc.empty());
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  acc.add(3.5);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.5);
  EXPECT_DOUBLE_EQ(acc.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(acc.ci95_halfwidth(), 0.0);
}

TEST(Table, AlignsColumnsAndValidatesArity) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22222"});
  const std::string rendered = table.str();
  EXPECT_NE(rendered.find("name"), std::string::npos);
  EXPECT_NE(rendered.find("22222"), std::string::npos);
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, Formatters) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_count(446506), "446,506");
  EXPECT_EQ(fmt_count(7), "7");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_NE(fmt_bytes(1.8e12).find("TB"), std::string::npos);
  EXPECT_NE(fmt_duration(42.14).find("s"), std::string::npos);
  EXPECT_NE(fmt_duration(24.95 * 3600).find("h"), std::string::npos);
  EXPECT_NE(fmt_duration(3.0 * 86400).find("d"), std::string::npos);
}

TEST(Args, ParsesNamedPositionalAndFlags) {
  const char* argv[] = {"prog",   "--nodes", "32",   "input.fa", "--batches=64",
                        "--verbose", "--ratio", "0.5"};
  const ArgParser args(8, argv);
  EXPECT_EQ(args.get_int("nodes", 0), 32);
  EXPECT_EQ(args.get_int("batches", 0), 64);
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_DOUBLE_EQ(args.get_double("ratio", 0.0), 0.5);
  EXPECT_EQ(args.get_string("missing", "fallback"), "fallback");
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "input.fa");
  EXPECT_EQ(args.program_name(), "prog");
}

TEST(Timer, MeasuresElapsedTime) {
  Timer timer;
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GE(timer.seconds(), 0.0);
  EXPECT_GE(sink, 0.0);  // keeps the timed loop observable
  EXPECT_GE(timer.milliseconds(), timer.seconds());
}

}  // namespace
}  // namespace sas
