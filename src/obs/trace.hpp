// trace.hpp — per-rank span tracing and metrics for the BSP runtime.
//
// Design (ROADMAP "Observability"):
//   * One `Observer` per run owns one `RankObserver` per rank. Runtime::run
//     binds the calling thread to its rank's observer through a
//     thread-local pointer; every instrumentation site goes through
//     `obs::current()`, so an unbound thread (no observer requested, or a
//     kernel worker thread inside a rank) pays exactly one thread-local
//     load and a null check — the layer is cheap enough to stay on by
//     default in the benches (micro_kernels gates the overhead < 3%).
//   * Spans are RAII (`Span`, `CollectiveScope`, `BatchScope`) against a
//     monotonic clock shared across ranks (one epoch per Observer), stored
//     in a bounded per-rank buffer; overflow drops the newest span and
//     bumps a drop counter instead of allocating.
//   * `CollectiveScope` additionally records α-β predicted vs measured
//     time per primitive — but only at the outermost nesting level, so an
//     allreduce does not double-count its internal reduce + broadcast.
//   * Each RankObserver is touched by exactly one thread during the run;
//     the merge into Chrome trace-event JSON happens after the rank
//     threads joined (or, on abort, after Runtime::run caught the cause),
//     so no synchronization is needed on the hot path.
//
// Span names must be string literals (or otherwise outlive the Observer):
// events store `const char*` to keep the hot path allocation-free.
#pragma once

#include <array>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bsp/cost_model.hpp"

namespace sas::obs {

/// Communication primitives tracked for cost-model drift.
enum class Primitive : int {
  kBroadcast = 0,
  kReduce,
  kAllreduce,
  kGather,
  kAllgather,
  kScatter,
  kAlltoall,
  kReduceScatter,
  kScan,
  kBarrier,
};
inline constexpr std::size_t kPrimitiveCount = 10;

[[nodiscard]] const char* primitive_name(Primitive p) noexcept;

/// One closed span. `name`/`category` must point at static storage.
struct SpanEvent {
  const char* name = "";
  const char* category = "";
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t messages = 0;
  /// Same-node (intra-tier) subset of bytes_sent/messages under a node
  /// topology; zero on flat runs (bsp/cost_model.hpp). Inter-tier traffic
  /// is the difference.
  std::uint64_t bytes_intra = 0;
  std::uint64_t messages_intra = 0;
  std::int64_t batch = -1;       ///< ambient batch index, -1 outside batches
  double predicted_s = -1.0;     ///< α-β prediction; < 0 when not recorded
};

/// Power-of-two-bucket histogram (bucket k counts values with bit width
/// k, i.e. v in [2^(k-1), 2^k)); cheap enough for per-message recording.
struct Histogram {
  std::array<std::uint64_t, 65> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;

  void record(std::uint64_t v) noexcept {
    ++count;
    sum += v;
    if (v > max) max = v;
    ++buckets[static_cast<std::size_t>(std::bit_width(v))];
  }
};

/// Per-primitive drift accumulator: Σ predicted and Σ measured seconds
/// over every outermost instance of the primitive on one rank.
struct DriftCell {
  std::uint64_t samples = 0;
  double predicted_seconds = 0.0;
  double measured_seconds = 0.0;
};

/// Per-rank event buffer + metrics. Written only by the owning rank
/// thread during a run; read by the Observer's writers after join.
class RankObserver {
 public:
  RankObserver(int rank, std::size_t capacity,
               std::chrono::steady_clock::time_point epoch,
               const bsp::BspMachine& machine)
      : rank_(rank), capacity_(capacity), epoch_(epoch), machine_(machine) {
    events_.reserve(capacity);
  }

  [[nodiscard]] std::int64_t now_ns() const noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Bounded append: past capacity the newest span is dropped (counted),
  /// never reallocating — emission stays noexcept on the hot path.
  void emit(const SpanEvent& ev) noexcept {
    if (events_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    events_.push_back(ev);
  }

  /// Named cold-path counter (checkpoint bytes, tile-skip totals, …).
  /// Not for per-message rates — those use the fixed-slot histograms.
  void add_counter(const char* name, std::uint64_t delta) {
    counters_[name] += delta;
  }

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] const std::vector<SpanEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters()
      const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::array<DriftCell, kPrimitiveCount>& drift()
      const noexcept {
    return drift_;
  }
  [[nodiscard]] const bsp::BspMachine& machine() const noexcept {
    return machine_;
  }

  // Ambient state manipulated by the RAII scopes below. Single-threaded
  // by construction (one rank thread), so plain ints suffice.
  int open_depth = 0;        ///< currently-open spans (balance invariant)
  int collective_depth = 0;  ///< nesting level of CollectiveScopes
  std::int64_t current_batch = -1;

  Histogram message_bytes;    ///< payload size of every non-self send
  Histogram mailbox_wait_ns;  ///< time blocked in each mailbox retrieve

  std::array<DriftCell, kPrimitiveCount> drift_{};

 private:
  int rank_;
  std::size_t capacity_;
  std::chrono::steady_clock::time_point epoch_;
  bsp::BspMachine machine_;
  std::vector<SpanEvent> events_;
  std::uint64_t dropped_ = 0;
  std::map<std::string, std::uint64_t> counters_;
};

/// Default per-rank span capacity (~1 MiB of events per rank).
inline constexpr std::size_t kDefaultSpanCapacity = std::size_t{1} << 14;

/// Run-wide observer: per-rank buffers, a shared monotonic epoch, the
/// cost model used for predictions, and the abort postmortem note.
class Observer {
 public:
  explicit Observer(int nranks, std::size_t span_capacity = kDefaultSpanCapacity,
                    const bsp::BspMachine& machine = bsp::BspMachine{})
      : epoch_(std::chrono::steady_clock::now()) {
    ranks_.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
      ranks_.push_back(
          std::make_unique<RankObserver>(r, span_capacity, epoch_, machine));
    }
  }

  [[nodiscard]] int nranks() const noexcept {
    return static_cast<int>(ranks_.size());
  }
  [[nodiscard]] RankObserver& rank(int r) { return *ranks_[static_cast<std::size_t>(r)]; }
  [[nodiscard]] const RankObserver& rank(int r) const {
    return *ranks_[static_cast<std::size_t>(r)];
  }

  /// Postmortem note recorded by Runtime::run when the abort token
  /// tripped (or by the single-rank fast path's catch). First note wins,
  /// matching the abort token's first-failure semantics.
  void note_abort(const std::string& message, const std::string& blocked_sites) {
    const std::lock_guard<std::mutex> lock(abort_mutex_);
    if (aborted_) return;
    aborted_ = true;
    abort_message_ = message;
    blocked_sites_ = blocked_sites;
  }

  [[nodiscard]] bool aborted() const {
    const std::lock_guard<std::mutex> lock(abort_mutex_);
    return aborted_;
  }
  [[nodiscard]] std::string abort_message() const {
    const std::lock_guard<std::mutex> lock(abort_mutex_);
    return abort_message_;
  }
  [[nodiscard]] std::string blocked_sites_at_abort() const {
    const std::lock_guard<std::mutex> lock(abort_mutex_);
    return blocked_sites_;
  }

  [[nodiscard]] std::uint64_t total_dropped() const noexcept {
    std::uint64_t total = 0;
    for (const auto& r : ranks_) total += r->dropped();
    return total;
  }

  /// Sum the per-rank drift cells into one table.
  [[nodiscard]] std::array<DriftCell, kPrimitiveCount> aggregate_drift() const;

  /// Merge all rank buffers into Chrome trace-event JSON (Perfetto /
  /// about:tracing): rank → "process", span args carry byte counts,
  /// batch index, and the α-β prediction; `otherData` carries drop
  /// counts and, on an aborted run, the failure + blocked-site snapshot.
  void write_chrome_trace(std::ostream& out) const;
  /// As above, to a file. Throws error::ConfigError if unwritable.
  void write_chrome_trace_file(const std::string& path) const;

 private:
  std::chrono::steady_clock::time_point epoch_;
  std::vector<std::unique_ptr<RankObserver>> ranks_;
  mutable std::mutex abort_mutex_;
  bool aborted_ = false;
  std::string abort_message_;
  std::string blocked_sites_;
};

namespace detail {
inline thread_local RankObserver* t_rank_observer = nullptr;
}

/// The RankObserver bound to this thread, or nullptr when observability
/// is off (or this is an unbound kernel worker thread).
[[nodiscard]] inline RankObserver* current() noexcept {
  return detail::t_rank_observer;
}

/// Binds the calling thread to `observer->rank(rank)` for its lifetime;
/// installed by Runtime::run on every rank thread (and the p = 1 fast
/// path). A null observer binds nothing, restoring cleanly either way.
class ScopedRankBinding {
 public:
  ScopedRankBinding(Observer* observer, int rank) noexcept
      : prev_(detail::t_rank_observer) {
    detail::t_rank_observer =
        observer != nullptr ? &observer->rank(rank) : nullptr;
  }
  ~ScopedRankBinding() { detail::t_rank_observer = prev_; }
  ScopedRankBinding(const ScopedRankBinding&) = delete;
  ScopedRankBinding& operator=(const ScopedRankBinding&) = delete;

 private:
  RankObserver* prev_;
};

/// RAII span. When constructed with a CostCounters pointer the span's
/// byte/message args are the counter deltas over its lifetime; add_bytes
/// covers sites that account traffic manually. No-op when unbound.
class Span {
 public:
  explicit Span(const char* name, const char* category,
                const bsp::CostCounters* counters = nullptr) noexcept
      : obs_(current()), name_(name), category_(category) {
    if (obs_ == nullptr) return;
    counters_ = counters;
    if (counters_ != nullptr) {
      sent0_ = counters_->bytes_sent;
      recv0_ = counters_->bytes_received;
      msgs0_ = counters_->messages_sent;
    }
    ++obs_->open_depth;
    start_ns_ = obs_->now_ns();
  }
  ~Span() { close(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Manual traffic attribution for spans without a counters pointer.
  void add_bytes(std::uint64_t sent, std::uint64_t received) noexcept {
    extra_sent_ += sent;
    extra_recv_ += received;
  }

  void set_predicted(double seconds) noexcept { predicted_ = seconds; }

  /// Emit now instead of at destruction — lets straight-line phase code
  /// (the LSH candidate pass) mark phase boundaries without nesting.
  void close() noexcept {
    if (obs_ == nullptr) return;
    RankObserver* const o = obs_;
    obs_ = nullptr;
    SpanEvent ev;
    ev.name = name_;
    ev.category = category_;
    ev.start_ns = start_ns_;
    ev.dur_ns = o->now_ns() - start_ns_;
    ev.bytes_sent = extra_sent_;
    ev.bytes_received = extra_recv_;
    if (counters_ != nullptr) {
      ev.bytes_sent += counters_->bytes_sent - sent0_;
      ev.bytes_received += counters_->bytes_received - recv0_;
      ev.messages = counters_->messages_sent - msgs0_;
    }
    ev.batch = o->current_batch;
    ev.predicted_s = predicted_;
    --o->open_depth;
    o->emit(ev);
  }

 private:
  RankObserver* obs_;
  const char* name_;
  const char* category_;
  const bsp::CostCounters* counters_ = nullptr;
  std::int64_t start_ns_ = 0;
  std::uint64_t sent0_ = 0;
  std::uint64_t recv0_ = 0;
  std::uint64_t msgs0_ = 0;
  std::uint64_t extra_sent_ = 0;
  std::uint64_t extra_recv_ = 0;
  double predicted_ = -1.0;
};

/// Span around one Comm collective. At the outermost nesting level it
/// also books predicted (α-β over the counter deltas) vs measured time
/// into the rank's drift table; nested collectives (allreduce's internal
/// reduce + broadcast, split's allgather + barrier) emit plain spans so
/// drift never double-counts.
class CollectiveScope {
 public:
  CollectiveScope(Primitive prim, const bsp::CostCounters& counters) noexcept
      : obs_(current()) {
    if (obs_ == nullptr) return;
    prim_ = prim;
    counters_ = &counters;
    sent0_ = counters.bytes_sent;
    recv0_ = counters.bytes_received;
    msgs0_ = counters.messages_sent;
    sent_intra0_ = counters.bytes_intra;
    msgs_intra0_ = counters.messages_intra;
    outermost_ = obs_->collective_depth == 0;
    ++obs_->collective_depth;
    ++obs_->open_depth;
    start_ns_ = obs_->now_ns();
  }
  ~CollectiveScope() {
    if (obs_ == nullptr) return;
    const std::int64_t end_ns = obs_->now_ns();
    SpanEvent ev;
    ev.name = primitive_name(prim_);
    ev.category = "collective";
    ev.start_ns = start_ns_;
    ev.dur_ns = end_ns - start_ns_;
    ev.bytes_sent = counters_->bytes_sent - sent0_;
    ev.bytes_received = counters_->bytes_received - recv0_;
    ev.messages = counters_->messages_sent - msgs0_;
    ev.bytes_intra = counters_->bytes_intra - sent_intra0_;
    ev.messages_intra = counters_->messages_intra - msgs_intra0_;
    ev.batch = obs_->current_batch;
    if (outermost_) {
      // Two-tier prediction: the intra deltas are zero on flat runs, so
      // this reduces exactly to the single-tier α-β formula there.
      const double predicted = obs_->machine().predicted_seconds(
          ev.messages, ev.bytes_sent, ev.messages_intra, ev.bytes_intra);
      ev.predicted_s = predicted;
      DriftCell& cell = obs_->drift_[static_cast<std::size_t>(prim_)];
      ++cell.samples;
      cell.predicted_seconds += predicted;
      cell.measured_seconds += static_cast<double>(ev.dur_ns) * 1e-9;
    }
    --obs_->collective_depth;
    --obs_->open_depth;
    obs_->emit(ev);
  }
  CollectiveScope(const CollectiveScope&) = delete;
  CollectiveScope& operator=(const CollectiveScope&) = delete;

 private:
  RankObserver* obs_;
  Primitive prim_ = Primitive::kBarrier;
  const bsp::CostCounters* counters_ = nullptr;
  std::int64_t start_ns_ = 0;
  std::uint64_t sent0_ = 0;
  std::uint64_t recv0_ = 0;
  std::uint64_t msgs0_ = 0;
  std::uint64_t sent_intra0_ = 0;
  std::uint64_t msgs_intra0_ = 0;
  bool outermost_ = false;
};

/// Sets the ambient batch index (stamped into every span closed inside)
/// and emits a "batch" span covering the whole batch body.
class BatchScope {
 public:
  explicit BatchScope(std::int64_t batch) noexcept
      : restore_{current(), current() != nullptr ? current()->current_batch : -1},
        span_("batch", "batch") {
    if (restore_.obs != nullptr) restore_.obs->current_batch = batch;
  }
  BatchScope(const BatchScope&) = delete;
  BatchScope& operator=(const BatchScope&) = delete;

 private:
  // Declared before span_ so it is destroyed after it: the batch span
  // closes while the batch index is still current, then the previous
  // index is restored.
  struct Restore {
    RankObserver* obs;
    std::int64_t prev;
    ~Restore() {
      if (obs != nullptr) obs->current_batch = prev;
    }
  };
  Restore restore_;
  Span span_;
};

}  // namespace sas::obs
