// test_baselines.cpp — the comparison points: MinHash/Mash sketching
// (exactness regimes, error decay, mergeability), the exact single-node
// all-pairs tool, and the MapReduce-style distributed baseline (which
// must agree exactly with SimilarityAtScale — same algebra, worse
// communication schedule).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "baselines/exact_pairwise.hpp"
#include "baselines/mapreduce_jaccard.hpp"
#include "baselines/minhash.hpp"
#include "core/driver.hpp"
#include "core/sample_source.hpp"
#include "util/rng.hpp"

namespace sas::baselines {
namespace {

std::vector<std::uint64_t> random_set(std::int64_t universe, std::int64_t count,
                                      Rng& rng) {
  std::vector<std::uint64_t> out;
  for (std::int64_t i = 0; i < count; ++i) {
    out.push_back(rng.uniform(static_cast<std::uint64_t>(universe)));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

// ---------------------------------------------------------------- MinHash

TEST(MinHash, ExactWhenSketchHoldsEverything) {
  Rng rng(1);
  const auto a = random_set(10000, 200, rng);
  const auto b = random_set(10000, 200, rng);
  // Sketch size >= |A ∪ B|: the estimator degenerates to exact Jaccard.
  const MinHashSketch sa(a, 4096, 9);
  const MinHashSketch sb(b, 4096, 9);
  EXPECT_NEAR(MinHashSketch::estimate_jaccard(sa, sb), exact_jaccard(a, b), 1e-12);
}

TEST(MinHash, EmptySetsConvention) {
  const std::vector<std::uint64_t> empty;
  const MinHashSketch se(empty, 64, 9);
  EXPECT_DOUBLE_EQ(MinHashSketch::estimate_jaccard(se, se), 1.0);
}

TEST(MinHash, IdenticalSetsEstimateOne) {
  Rng rng(2);
  const auto a = random_set(100000, 5000, rng);
  const MinHashSketch s1(a, 128, 7);
  const MinHashSketch s2(a, 128, 7);
  EXPECT_DOUBLE_EQ(MinHashSketch::estimate_jaccard(s1, s2), 1.0);
}

TEST(MinHash, ErrorDecaysWithSketchSize) {
  // Build two sets with known Jaccard 1/3 (|A∩B| = n, each side adds n).
  Rng rng(3);
  std::vector<std::uint64_t> a;
  std::vector<std::uint64_t> b;
  for (std::uint64_t v = 0; v < 30000; ++v) {
    if (v % 3 == 0) {
      a.push_back(v);
      b.push_back(v);
    } else if (v % 3 == 1) {
      a.push_back(v);
    } else {
      b.push_back(v);
    }
  }
  const double truth = exact_jaccard(a, b);
  ASSERT_NEAR(truth, 1.0 / 3.0, 1e-3);

  // Average absolute error over hash seeds, per sketch size.
  auto mean_error = [&](std::size_t sketch) {
    double err = 0.0;
    const int trials = 12;
    for (int t = 0; t < trials; ++t) {
      const MinHashSketch sa(a, sketch, 100 + static_cast<std::uint64_t>(t));
      const MinHashSketch sb(b, sketch, 100 + static_cast<std::uint64_t>(t));
      err += std::fabs(MinHashSketch::estimate_jaccard(sa, sb) - truth);
    }
    return err / trials;
  };
  const double err_small = mean_error(32);
  const double err_large = mean_error(2048);
  EXPECT_LT(err_large, err_small);
  EXPECT_LT(err_large, 0.02);
}

TEST(MinHash, StruggleswithHighlyDissimilarPairsAtSmallSketch) {
  // The paper's motivating failure mode: J ≈ 0.002 is indistinguishable
  // from 0 with a small sketch.
  Rng rng(4);
  std::vector<std::uint64_t> a;
  std::vector<std::uint64_t> b;
  for (std::uint64_t v = 0; v < 50000; ++v) {
    if (v % 500 == 0) {
      a.push_back(v);
      b.push_back(v);
    } else if (v % 2 == 0) {
      a.push_back(v);
    } else {
      b.push_back(v);
    }
  }
  const double truth = exact_jaccard(a, b);
  ASSERT_LT(truth, 0.005);
  const MinHashSketch sa(a, 64, 5);
  const MinHashSketch sb(b, 64, 5);
  const double estimate = MinHashSketch::estimate_jaccard(sa, sb);
  // Tiny sketches quantize at 1/64; relative error is enormous or the
  // estimate collapses to zero.
  EXPECT_TRUE(estimate == 0.0 || std::fabs(estimate - truth) / truth > 1.0);
}

TEST(MinHash, MergeEqualsSketchOfUnion) {
  Rng rng(5);
  const auto a = random_set(100000, 3000, rng);
  const auto b = random_set(100000, 3000, rng);
  const MinHashSketch sa(a, 256, 11);
  const MinHashSketch sb(b, 256, 11);
  std::vector<std::uint64_t> ab(a);
  ab.insert(ab.end(), b.begin(), b.end());
  const MinHashSketch direct(ab, 256, 11);
  const MinHashSketch merged = MinHashSketch::merge(sa, sb);
  EXPECT_EQ(merged.hashes(), direct.hashes());
}

TEST(MinHash, IncompatibleSketchesRejected) {
  const std::vector<std::uint64_t> a{1, 2, 3};
  const MinHashSketch s1(a, 16, 1);
  const MinHashSketch s2(a, 16, 2);   // different seed
  const MinHashSketch s3(a, 32, 1);   // different size
  EXPECT_THROW((void)MinHashSketch::estimate_jaccard(s1, s2), std::invalid_argument);
  EXPECT_THROW((void)MinHashSketch::merge(s1, s3), std::invalid_argument);
}

TEST(MashDistance, BoundaryAndMonotonicity) {
  EXPECT_DOUBLE_EQ(mash_distance(1.0, 21), 0.0);
  EXPECT_DOUBLE_EQ(mash_distance(0.0, 21), 1.0);
  double prev = 0.0;
  for (double j : {0.9, 0.7, 0.5, 0.3, 0.1, 0.01}) {
    const double d = mash_distance(j, 21);
    EXPECT_GT(d, prev);  // lower similarity -> larger distance
    prev = d;
  }
}

TEST(MashDistance, ApproximatesMutationRate) {
  // d should estimate the per-base mutation rate r when j is the k-mer
  // Jaccard induced by r (the Mash model).
  const int k = 21;
  for (double r : {0.01, 0.05}) {
    const double t = std::pow(1.0 - r, k);
    const double j = t / (2.0 - t);
    EXPECT_NEAR(mash_distance(j, k), r, r * 0.25);
  }
}

TEST(MinHash, AllPairsMatrixIsSymmetricWithUnitDiagonal) {
  Rng rng(6);
  std::vector<std::vector<std::uint64_t>> samples;
  for (int i = 0; i < 5; ++i) samples.push_back(random_set(5000, 300, rng));
  const auto est = minhash_all_pairs(samples, 128, 42);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(est[static_cast<std::size_t>(i * 5 + i)], 1.0);
    for (int j = 0; j < 5; ++j) {
      EXPECT_DOUBLE_EQ(est[static_cast<std::size_t>(i * 5 + j)],
                       est[static_cast<std::size_t>(j * 5 + i)]);
    }
  }
}

// ---------------------------------------------------------- exact pairwise

TEST(ExactPairwise, MatchesPairPrimitive) {
  Rng rng(7);
  std::vector<std::vector<std::uint64_t>> samples;
  for (int i = 0; i < 7; ++i) samples.push_back(random_set(2000, 150, rng));
  const auto matrix = exact_all_pairs(samples, 1);
  for (int i = 0; i < 7; ++i) {
    for (int j = 0; j < 7; ++j) {
      EXPECT_DOUBLE_EQ(matrix.similarity(i, j),
                       exact_jaccard(samples[static_cast<std::size_t>(i)],
                                     samples[static_cast<std::size_t>(j)]));
    }
  }
}

TEST(ExactPairwise, ThreadedMatchesSerial) {
  Rng rng(8);
  std::vector<std::vector<std::uint64_t>> samples;
  for (int i = 0; i < 11; ++i) samples.push_back(random_set(3000, 200, rng));
  const auto serial = exact_all_pairs(samples, 1);
  const auto threaded = exact_all_pairs(samples, 4);
  EXPECT_EQ(serial.max_abs_diff(threaded), 0.0);
}

// -------------------------------------------------------------- MapReduce

class MapReduceTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(MapReduceTest, AgreesExactlyWithSimilarityAtScale) {
  const auto [ranks, batches] = GetParam();
  Rng rng(9);
  std::vector<std::vector<std::int64_t>> samples(10);
  for (auto& s : samples) {
    const std::int64_t count = 3 + static_cast<std::int64_t>(rng.uniform(25));
    for (std::int64_t i = 0; i < count; ++i) {
      s.push_back(static_cast<std::int64_t>(rng.uniform(400)));
    }
  }
  const core::VectorSampleSource src(400, std::move(samples));

  const auto mapreduce = mapreduce_jaccard_threaded(ranks, src, batches);
  const auto driver = core::similarity_at_scale_threaded(ranks, src, core::Config{});
  ASSERT_EQ(mapreduce.size(), driver.similarity.size());
  EXPECT_EQ(mapreduce.max_abs_diff(driver.similarity), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MapReduceTest,
                         ::testing::Values(std::pair{1, 1}, std::pair{2, 1},
                                           std::pair{4, 3}, std::pair{7, 5}));

TEST(MapReduce, MovesAsymptoticallyMoreOutputBytesThanSumma) {
  // The paper's §VI claim, measured: the allreduce-over-reducers step
  // ships Θ(n²) per rank; SUMMA's output term is Θ(cn²/p) and its input
  // term Θ(z/√p). With enough ranks the gap must be visible.
  // Sized so the Θ(n²) allreduce dominates: few nonzeros (small z), many
  // samples (large n²), enough ranks for the √p savings to show.
  const core::BernoulliSampleSource src(/*universe=*/2048, /*samples=*/96,
                                        /*density=*/0.01, /*seed=*/21);
  const int ranks = 9;

  std::vector<bsp::CostCounters> mr_counters;
  (void)mapreduce_jaccard_threaded(ranks, src, 1, &mr_counters);

  core::Config cfg;
  cfg.algorithm = core::Algorithm::kSumma;
  std::vector<bsp::CostCounters> summa_counters;
  (void)core::similarity_at_scale_threaded(ranks, src, cfg, &summa_counters);

  const auto mr = bsp::CostSummary::aggregate(mr_counters);
  const auto summa = bsp::CostSummary::aggregate(summa_counters);
  EXPECT_GT(mr.max_bytes, summa.max_bytes);
}

}  // namespace
}  // namespace sas::baselines
