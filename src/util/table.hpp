// table.hpp — aligned plain-text tables for the benchmark harness.
//
// Every bench binary regenerates one paper table/figure as rows printed
// through this formatter, so EXPERIMENTS.md can diff paper vs measured.
#pragma once

#include <string>
#include <vector>

namespace sas {

/// Column-aligned table with a header row, rendered to stdout or string.
/// Cells are plain strings; numeric formatting is the caller's concern
/// (see format.hpp for helpers).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Render with single-space-padded columns and a dash underline.
  [[nodiscard]] std::string str() const;

  /// Render directly to stdout.
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision float -> string ("%.3f" style, no locale surprises).
[[nodiscard]] std::string fmt_fixed(double value, int digits = 3);

/// Human-readable byte size ("1.8 TB", "674 GB", ...).
[[nodiscard]] std::string fmt_bytes(double bytes);

/// Human-readable duration ("42.1 s", "24.95 h", "3.2 d").
[[nodiscard]] std::string fmt_duration(double seconds);

/// Thousands-separated integer ("446,506").
[[nodiscard]] std::string fmt_count(std::uint64_t value);

}  // namespace sas
