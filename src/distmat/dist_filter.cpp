#include "distmat/dist_filter.hpp"

#include <algorithm>
#include <stdexcept>

#include "distmat/block.hpp"

namespace sas::distmat {

std::vector<std::int64_t> distributed_index_union(bsp::Comm& comm,
                                                  std::span<const std::int64_t> mine,
                                                  std::int64_t universe) {
  const int p = comm.size();
  std::vector<std::vector<std::int64_t>> outgoing(static_cast<std::size_t>(p));
  for (std::int64_t idx : mine) {
    outgoing[static_cast<std::size_t>(block_owner(universe, p, idx))].push_back(idx);
  }
  std::vector<std::vector<std::int64_t>> incoming = comm.alltoall_v(outgoing);

  // Owner-side dedup: the (max,×) accumulation of the paper's write().
  std::vector<std::int64_t> owned;
  for (auto& block : incoming) {
    owned.insert(owned.end(), block.begin(), block.end());
  }
  std::sort(owned.begin(), owned.end());
  owned.erase(std::unique(owned.begin(), owned.end()), owned.end());

  // Owners hold disjoint, increasing ranges (block partition), so the
  // rank-ordered concatenation of an allgather is already sorted.
  return comm.allgather<std::int64_t>(owned);
}

void allreduce_pair_mask(bsp::Comm& comm, PairMask& mask) {
  comm.allreduce(mask.words(),
                 [](std::uint64_t a, std::uint64_t b) { return a | b; });
  mask.symmetrize();
}

std::vector<std::uint64_t> allreduce_pair_union(bsp::Comm& comm,
                                                std::vector<std::uint64_t> mine) {
  std::sort(mine.begin(), mine.end());
  mine.erase(std::unique(mine.begin(), mine.end()), mine.end());
  const auto blocks = comm.allgather_v<std::uint64_t>(
      std::span<const std::uint64_t>(mine));
  // Rank lists are each sorted; a concatenate + sort is O(total log p)-ish
  // and deterministic — candidate unions stay far below the n² regime
  // where a k-way merge would matter.
  std::vector<std::uint64_t> all;
  std::size_t total = 0;
  for (const auto& block : blocks) total += block.size();
  all.reserve(total);
  for (const auto& block : blocks) all.insert(all.end(), block.begin(), block.end());
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

std::int64_t compact_row_id(std::span<const std::int64_t> sorted_filter,
                            std::int64_t global_row) {
  const auto it = std::lower_bound(sorted_filter.begin(), sorted_filter.end(), global_row);
  if (it == sorted_filter.end() || *it != global_row) {
    throw std::logic_error("compact_row_id: row not present in filter");
  }
  return static_cast<std::int64_t>(it - sorted_filter.begin());
}

}  // namespace sas::distmat
