file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2d_bigsi_batch.dir/bench/fig2d_bigsi_batch.cpp.o"
  "CMakeFiles/bench_fig2d_bigsi_batch.dir/bench/fig2d_bigsi_batch.cpp.o.d"
  "bench_fig2d_bigsi_batch"
  "bench_fig2d_bigsi_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2d_bigsi_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
