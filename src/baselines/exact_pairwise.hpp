// exact_pairwise.hpp — single-node exact all-pairs Jaccard.
//
// The "what everyone did before" baseline (cf. DSM [71] in paper
// Table II): every pair of sorted sets intersected by merge-join on one
// node, optionally with a thread pool over pairs. Exact like
// SimilarityAtScale, but with no batching/distribution story — it holds
// all sets in memory at once and does Θ(n²) merges of full sets, which is
// what stops scaling at Table II sizes.
#pragma once

#include <cstdint>
#include <vector>

#include "core/similarity_matrix.hpp"

namespace sas::baselines {

/// Exact all-pairs Jaccard over sorted, unique element sets.
/// `threads` >= 1 parallelizes over output rows.
[[nodiscard]] core::SimilarityMatrix exact_all_pairs(
    const std::vector<std::vector<std::uint64_t>>& samples, int threads = 1);

/// Single pair: |A∩B| / |A∪B| by merge-join (J(∅,∅) = 1).
[[nodiscard]] double exact_jaccard(const std::vector<std::uint64_t>& a,
                                   const std::vector<std::uint64_t>& b);

}  // namespace sas::baselines
