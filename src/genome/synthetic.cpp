#include "genome/synthetic.hpp"

#include <cmath>
#include <deque>
#include <stdexcept>

#include "genome/alphabet.hpp"

namespace sas::genome {

std::string random_genome(std::int64_t length, Rng& rng) {
  std::string genome(static_cast<std::size_t>(length), 'A');
  for (char& base : genome) base = code_base(static_cast<int>(rng.uniform(4)));
  return genome;
}

std::string mutate_point(const std::string& genome, double rate, Rng& rng) {
  if (rate < 0.0 || rate > 1.0) {
    throw std::invalid_argument("mutate_point: rate must be in [0, 1]");
  }
  std::string mutated = genome;
  for (char& base : mutated) {
    if (!rng.bernoulli(rate)) continue;
    const int old_code = base_code(base);
    if (old_code == kInvalidBase) continue;
    // Substitute with one of the three other bases, uniformly.
    const int shift = 1 + static_cast<int>(rng.uniform(3));
    base = code_base((old_code + shift) & 3);
  }
  return mutated;
}

double expected_jaccard_after_mutation(int k, double rate) {
  const double t = std::pow(1.0 - rate, k);
  return t / (2.0 - t);
}

double mutation_rate_for_jaccard(int k, double jaccard) {
  if (jaccard <= 0.0 || jaccard > 1.0) {
    throw std::invalid_argument("mutation_rate_for_jaccard: jaccard must be in (0, 1]");
  }
  // Invert J = t/(2−t):  t = 2J/(1+J);  r = 1 − t^(1/k).
  const double t = 2.0 * jaccard / (1.0 + jaccard);
  return 1.0 - std::pow(t, 1.0 / static_cast<double>(k));
}

std::vector<SequenceRecord> simulate_reads(const std::string& genome, int read_length,
                                           double coverage, double error_rate,
                                           Rng& rng) {
  if (read_length < 1 || static_cast<std::size_t>(read_length) > genome.size()) {
    throw std::invalid_argument("simulate_reads: read_length out of range");
  }
  const auto genome_len = static_cast<double>(genome.size());
  const auto read_count = static_cast<std::int64_t>(
      std::ceil(coverage * genome_len / static_cast<double>(read_length)));
  const std::uint64_t start_bound = genome.size() - static_cast<std::size_t>(read_length) + 1;

  std::vector<SequenceRecord> reads;
  reads.reserve(static_cast<std::size_t>(read_count));
  for (std::int64_t i = 0; i < read_count; ++i) {
    const auto start = static_cast<std::size_t>(rng.uniform(start_bound));
    std::string bases = genome.substr(start, static_cast<std::size_t>(read_length));
    for (char& base : bases) {
      if (!rng.bernoulli(error_rate)) continue;
      const int old_code = base_code(base);
      if (old_code == kInvalidBase) continue;
      const int shift = 1 + static_cast<int>(rng.uniform(3));
      base = code_base((old_code + shift) & 3);
    }
    // Reads come from either strand with equal probability.
    if (rng.bernoulli(0.5)) {
      std::string rc(bases.rbegin(), bases.rend());
      for (char& base : rc) base = complement_base(base);
      bases = std::move(rc);
    }
    reads.push_back({"read_" + std::to_string(i), "", std::move(bases)});
  }
  return reads;
}

EvolvedPopulation evolve_population(const std::string& ancestor, int leaves,
                                    double rate_per_branch, Rng& rng) {
  if (leaves < 1) throw std::invalid_argument("evolve_population: need >= 1 leaf");

  EvolvedPopulation pop;
  // Grow a random binary tree by repeatedly splitting a frontier node.
  // Node 0 is the root carrying the ancestor genome.
  std::vector<std::string> genome_of_node{ancestor};
  pop.parent.push_back(-1);
  std::deque<int> frontier{0};
  while (static_cast<int>(frontier.size()) < leaves) {
    // Pick a random frontier node and split it into two mutated children.
    const auto pick = static_cast<std::size_t>(rng.uniform(frontier.size()));
    const int node = frontier[pick];
    frontier.erase(frontier.begin() + static_cast<std::ptrdiff_t>(pick));
    for (int child = 0; child < 2; ++child) {
      const int id = static_cast<int>(pop.parent.size());
      pop.parent.push_back(node);
      genome_of_node.push_back(mutate_point(genome_of_node[static_cast<std::size_t>(node)],
                                            rate_per_branch, rng));
      frontier.push_back(id);
    }
  }
  for (int node : frontier) {
    const int leaf_index = static_cast<int>(pop.leaf_genomes.size());
    pop.leaf_genomes.push_back(genome_of_node[static_cast<std::size_t>(node)]);
    pop.leaf_names.push_back("leaf_" + std::to_string(leaf_index));
    pop.node_of_leaf.push_back(node);
  }
  return pop;
}

}  // namespace sas::genome
