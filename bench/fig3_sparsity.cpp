// fig3_sparsity — reproduces paper Fig. 3.
//
// Impact of data sparsity: total runtime versus the Bernoulli density p
// of the synthetic indicator matrix at fixed ranks and batches (paper:
// 16 nodes, 4 batches, n=10k, m=32M, p from 1e-4 to 1e-2). Expected
// shape: "nearly ideal scaling of the total runtime with the decreasing
// data sparsity (i.e., with more data to process)" — runtime tracks the
// nonzero count roughly linearly once work dominates fixed costs.
#include "bench_common.hpp"

using namespace sas;
using namespace sas::bench;

int main() {
  print_header("Fig. 3 — impact of data sparsity",
               "Besta et al., IPDPS'20, Figure 3",
               "n=384, m=2^19, 8 ranks, 4 batches, density swept 1e-4 .. 1e-2 "
               "(paper: n=10k, m=32M, 16 nodes)");

  const bsp::BspMachine model = machine();
  TextTable table({"density", "nnz(z)", "time/batch", "actual total", "modelled BSP",
                   "model time per nnz"});
  for (double density : {1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2}) {
    const core::BernoulliSampleSource source(std::int64_t{1} << 19, 384, density, 7);
    core::Config config;
    config.batch_count = 4;
    const RunResult run = run_driver(8, source, config);
    const BatchTiming timing = summarize_batches(run.result.batches, /*warmup=*/1);
    const double z = density * static_cast<double>(source.attribute_universe()) * 384.0;
    const double modelled = model.modelled_seconds(run.cost);
    table.add_row({fmt_fixed(density, 4), fmt_count(static_cast<std::uint64_t>(z)),
                   fmt_duration(timing.mean_seconds), fmt_duration(run.wall_seconds),
                   fmt_duration(modelled),
                   fmt_fixed(1e9 * modelled / z, 2) + " ns"});
  }
  table.print();
  std::printf("\nPaper shape to match: total time grows with density (0.5s at 1e-4 to\n"
              "85.4s at 1e-2 in the paper); time-per-nonzero flattens once the\n"
              "popcount kernel dominates fixed per-batch costs.\n");
  return 0;
}
