# Empty dependencies file for bench_fig2b_bigsi_strong.
# This may be replaced when dependencies are built.
