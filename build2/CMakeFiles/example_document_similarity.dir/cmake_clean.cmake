file(REMOVE_RECURSE
  "CMakeFiles/example_document_similarity.dir/examples/document_similarity.cpp.o"
  "CMakeFiles/example_document_similarity.dir/examples/document_similarity.cpp.o.d"
  "example_document_similarity"
  "example_document_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_document_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
