// gather.hpp — assemble the distributed output on the root, dense or
// survivor-sparse.
//
// Used at the very end of the pipeline to hand the similarity matrix to
// downstream consumers (tree building, clustering, file output). Two
// forms:
//
//   gather_dense_to_root    — each contributing rank ships (ranges,
//     values); rank 0 stitches the full rows×cols matrix. Rank 0 holds
//     rows·cols values — 8·n² bytes for the n×n similarity output
//     (~20 GB at n = 50k), which is why the mask-gated pipelines avoid
//     this path by default.
//   gather_triplets_to_root — each rank ships only its (i, j, value)
//     triplets (for the hybrid: its block's cells that survive the
//     candidate mask, walked by CandidateMask::for_each_pair_in with the
//     i < j convention so disjoint blocks emit disjoint triplets); rank 0
//     merges the sorted pair lists. Bytes and rank-0 memory are
//     O(survivors), not O(n²).
//
// Tag audit (bsp/tags.hpp): both forms are built on gather_v, which runs
// on comm.hpp's reserved internal tags — no user tag is minted here. New
// point-to-point traffic must take its tag from bsp::tags.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "bsp/comm.hpp"
#include "distmat/dense_block.hpp"
#include "distmat/triplet.hpp"

namespace sas::distmat {

/// Collective over `comm`. Returns the assembled rows×cols row-major
/// matrix on rank 0 and an empty vector elsewhere.
template <typename T>
[[nodiscard]] std::vector<T> gather_dense_to_root(bsp::Comm& comm,
                                                  const DenseBlock<T>* block,
                                                  std::int64_t rows, std::int64_t cols) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<std::int64_t> header;
  std::vector<T> payload;
  if (block != nullptr) {
    header = {block->row_range.begin, block->row_range.end, block->col_range.begin,
              block->col_range.end};
    payload = block->values;
  }
  auto headers = comm.gather_v<std::int64_t>(std::span<const std::int64_t>(header), 0);
  auto payloads = comm.gather_v<T>(std::span<const T>(payload), 0);
  if (comm.rank() != 0) return {};

  std::vector<T> full(static_cast<std::size_t>(rows * cols), T{});
  for (std::size_t r = 0; r < headers.size(); ++r) {
    if (headers[r].empty()) continue;
    const std::int64_t rb = headers[r][0];
    const std::int64_t re = headers[r][1];
    const std::int64_t cb = headers[r][2];
    const std::int64_t ce = headers[r][3];
    const std::vector<T>& vals = payloads[r];
    std::size_t idx = 0;
    for (std::int64_t i = rb; i < re; ++i) {
      for (std::int64_t j = cb; j < ce; ++j) {
        full[static_cast<std::size_t>(i * cols + j)] = vals[idx++];
      }
    }
  }
  return full;
}

/// Collective over `comm`: gather each rank's coordinate triplets on
/// rank 0, merged into (row, col) order. Contributions must cover
/// disjoint coordinates (the for_each_pair_in block walk guarantees
/// this); duplicates are rejected to catch mis-partitioned callers.
/// Returns the merged triplets on rank 0 and an empty vector elsewhere.
template <typename T>
[[nodiscard]] std::vector<Triplet<T>> gather_triplets_to_root(
    bsp::Comm& comm, std::vector<Triplet<T>> mine) {
  static_assert(std::is_trivially_copyable_v<Triplet<T>>);
  auto blocks = comm.gather_v<Triplet<T>>(std::span<const Triplet<T>>(mine), 0);
  if (comm.rank() != 0) return {};
  std::size_t total = 0;
  for (const auto& block : blocks) total += block.size();
  std::vector<Triplet<T>> merged;
  merged.reserve(total);
  for (auto& block : blocks) {
    merged.insert(merged.end(), block.begin(), block.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const Triplet<T>& a, const Triplet<T>& b) { return triplet_order(a, b); });
  for (std::size_t s = 1; s < merged.size(); ++s) {
    if (merged[s].row == merged[s - 1].row && merged[s].col == merged[s - 1].col) {
      throw std::logic_error("gather_triplets_to_root: overlapping contributions");
    }
  }
  return merged;
}

}  // namespace sas::distmat
