// hashing.hpp — deterministic 64-bit hash primitives.
//
// Provides the mixing functions used throughout the library:
//  * splitmix64      — fast invertible mixer, used to derive seeds and to
//                      hash integer keys (k-mer codes, vertex ids, ...).
//  * HashFamily      — a family of pairwise-independent-ish hash functions
//                      parameterized by seed, used by the MinHash baseline.
//  * hash_bytes      — FNV-1a style byte-string hash for tokens/words.
//  * hash_combine    — boost-style combiner for composite keys.
//
// All functions are pure and reproducible across platforms: the library's
// experiments must be bit-deterministic (DESIGN.md §5).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace sas {

/// splitmix64 finalizer (Vigna). Invertible: distinct inputs map to
/// distinct outputs, which MinHash relies on to emulate a random
/// permutation of the key universe.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Murmur3-style finalizer; used where a second independent mix is needed.
[[nodiscard]] constexpr std::uint64_t murmur_mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// FNV-1a over a byte string. Stable across platforms; used to map
/// document tokens and FASTA headers to integer attribute ids.
[[nodiscard]] constexpr std::uint64_t hash_bytes(std::string_view bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : bytes) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Combine a hash into a running seed (order-dependent).
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t seed,
                                                   std::uint64_t value) noexcept {
  return seed ^ (splitmix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// A seeded family of 64-bit hash functions h_s(x). Members of the family
/// are decorrelated by mixing the seed through two different finalizers.
/// MinHash uses one member per permutation (or one member with bottom-k).
class HashFamily {
 public:
  constexpr explicit HashFamily(std::uint64_t seed) noexcept
      : a_(splitmix64(seed) | 1ULL), b_(murmur_mix64(seed + 0x632be59bd9b4e019ULL)) {}

  /// Hash of an integer key under this family member.
  [[nodiscard]] constexpr std::uint64_t operator()(std::uint64_t key) const noexcept {
    return murmur_mix64(key * a_ + b_);
  }

  [[nodiscard]] constexpr std::uint64_t seed_a() const noexcept { return a_; }
  [[nodiscard]] constexpr std::uint64_t seed_b() const noexcept { return b_; }

 private:
  std::uint64_t a_;  // odd multiplier
  std::uint64_t b_;  // additive offset
};

}  // namespace sas
