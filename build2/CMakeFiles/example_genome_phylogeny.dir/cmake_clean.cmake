file(REMOVE_RECURSE
  "CMakeFiles/example_genome_phylogeny.dir/examples/genome_phylogeny.cpp.o"
  "CMakeFiles/example_genome_phylogeny.dir/examples/genome_phylogeny.cpp.o.d"
  "example_genome_phylogeny"
  "example_genome_phylogeny.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_genome_phylogeny.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
