# Empty dependencies file for bench_fig2d_bigsi_batch.
# This may be replaced when dependencies are built.
