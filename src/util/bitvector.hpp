// bitvector.hpp — a compact dynamic bit vector over 64-bit words.
//
// Used by the bitmask-compression stage (paper §III-B technique 3): rows
// of the filtered indicator matrix are packed b = 64 to a word, turning
// the inner product into popcount(x ∧ y).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/popcount.hpp"

namespace sas {

class BitVector {
 public:
  static constexpr std::size_t kWordBits = 64;

  BitVector() = default;

  /// A vector of `bits` zero bits.
  explicit BitVector(std::size_t bits)
      : bits_(bits), words_((bits + kWordBits - 1) / kWordBits, 0) {}

  [[nodiscard]] std::size_t size() const noexcept { return bits_; }
  [[nodiscard]] std::size_t word_count() const noexcept { return words_.size(); }
  [[nodiscard]] bool empty() const noexcept { return bits_ == 0; }

  void set(std::size_t i) noexcept {
    words_[i / kWordBits] |= (1ULL << (i % kWordBits));
  }

  void clear(std::size_t i) noexcept {
    words_[i / kWordBits] &= ~(1ULL << (i % kWordBits));
  }

  [[nodiscard]] bool test(std::size_t i) const noexcept {
    return (words_[i / kWordBits] >> (i % kWordBits)) & 1ULL;
  }

  /// Grow to at least `bits` bits, preserving contents.
  void resize(std::size_t bits) {
    bits_ = bits;
    words_.resize((bits + kWordBits - 1) / kWordBits, 0);
  }

  void reset() noexcept {
    for (auto& w : words_) w = 0;
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return popcount_sum(words());
  }

  /// |this ∧ other| — intersection cardinality of two bit sets.
  /// Precondition: both vectors span the same universe (equal word
  /// counts); enforced by the assert inside popcount_and_sum.
  [[nodiscard]] std::uint64_t intersection_count(const BitVector& other) const noexcept {
    return popcount_and_sum(words(), other.words());
  }

  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept {
    return {words_.data(), words_.size()};
  }

  [[nodiscard]] std::span<std::uint64_t> mutable_words() noexcept {
    return {words_.data(), words_.size()};
  }

  friend bool operator==(const BitVector& a, const BitVector& b) {
    return a.bits_ == b.bits_ && a.words_ == b.words_;
  }

 private:
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace sas
