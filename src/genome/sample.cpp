#include "genome/sample.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>
#include <unordered_map>

#include "util/error.hpp"

namespace sas::genome {

KmerSample build_sample(const std::string& name,
                        const std::vector<SequenceRecord>& records,
                        const KmerCodec& codec, int min_count) {
  if (min_count < 1) throw std::invalid_argument("build_sample: min_count must be >= 1");
  KmerSample sample;
  sample.name = name;

  if (min_count == 1) {
    // No counting needed: collect, sort, dedupe.
    for (const SequenceRecord& record : records) {
      auto codes = codec.canonical_kmers(record.sequence);
      sample.kmers.insert(sample.kmers.end(), codes.begin(), codes.end());
    }
    std::sort(sample.kmers.begin(), sample.kmers.end());
    sample.kmers.erase(std::unique(sample.kmers.begin(), sample.kmers.end()),
                       sample.kmers.end());
    return sample;
  }

  std::unordered_map<std::uint64_t, std::int64_t> counts;
  for (const SequenceRecord& record : records) {
    for (std::uint64_t code : codec.canonical_kmers(record.sequence)) ++counts[code];
  }
  for (const auto& [code, count] : counts) {
    if (count >= min_count) sample.kmers.push_back(code);
  }
  std::sort(sample.kmers.begin(), sample.kmers.end());
  return sample;
}

double jaccard_of_samples(const KmerSample& a, const KmerSample& b) {
  std::size_t ia = 0;
  std::size_t ib = 0;
  std::int64_t inter = 0;
  while (ia < a.kmers.size() && ib < b.kmers.size()) {
    if (a.kmers[ia] < b.kmers[ib]) {
      ++ia;
    } else if (b.kmers[ib] < a.kmers[ia]) {
      ++ib;
    } else {
      ++inter;
      ++ia;
      ++ib;
    }
  }
  const auto uni = static_cast<std::int64_t>(a.kmers.size() + b.kmers.size()) - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

void write_sample_file(const std::string& path, const KmerSample& sample) {
  std::ofstream out(path);
  if (!out) throw error::ConfigError("cannot write sample file: " + path);
  out << "# " << sample.name << '\n';
  for (std::uint64_t code : sample.kmers) out << code << '\n';
}

KmerSample read_sample_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw error::ConfigError("cannot open sample file: " + path);
  KmerSample sample;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '#') {
      const std::size_t start = line.find_first_not_of(" \t", 1);
      if (start != std::string::npos) sample.name = line.substr(start);
      continue;
    }
    sample.kmers.push_back(std::stoull(line));
  }
  if (!std::is_sorted(sample.kmers.begin(), sample.kmers.end())) {
    throw error::CorruptInput("sample file is not sorted: " + path);
  }
  return sample;
}

}  // namespace sas::genome
