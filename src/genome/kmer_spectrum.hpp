// kmer_spectrum.hpp — k-mer count spectra and noise-threshold selection.
//
// The paper's corpora were preprocessed by dropping rare k-mers:
// "minimum k-mer count thresholds were set based on the total sizes of
// the raw sequencing read sets" (§V-A2, following [73]/[21]). This module
// makes that step a first-class, testable operation: build the count
// spectrum (histogram of k-mer multiplicities) of a read set and pick the
// threshold at the spectrum's first valley — the classic separation point
// between the error peak (low multiplicities, ~coverage·error·k noise
// k-mers seen once or twice) and the genomic peak (~coverage).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "genome/fasta.hpp"
#include "genome/kmer.hpp"

namespace sas::genome {

/// Count spectrum: spectrum[c] = number of distinct k-mers occurring
/// exactly c times across the records.
struct KmerSpectrum {
  std::map<std::int64_t, std::int64_t> histogram;
  std::int64_t distinct_kmers = 0;
  std::int64_t total_kmers = 0;  ///< with multiplicity

  /// Distinct k-mers with count >= threshold (what a min-count filter keeps).
  [[nodiscard]] std::int64_t kept_at(std::int64_t threshold) const;
};

/// Build the spectrum of a record set under `codec`.
[[nodiscard]] KmerSpectrum build_spectrum(const std::vector<SequenceRecord>& records,
                                          const KmerCodec& codec);

/// First-valley threshold: the smallest count c >= 2 where the histogram
/// stops decreasing (the dip between the error peak and the coverage
/// peak). Falls back to 1 (keep everything) when no valley exists —
/// e.g. assembled genomes, where every k-mer occurs once and nothing
/// should be dropped.
[[nodiscard]] int suggest_min_count(const KmerSpectrum& spectrum);

}  // namespace sas::genome
