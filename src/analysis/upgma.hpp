// upgma.hpp — UPGMA ultrametric tree construction.
//
// The classic average-linkage guide-tree builder: alongside neighbor
// joining (paper ref [67]) it is the other standard consumer of the
// Jaccard distance matrix for "the construction of guide trees for
// large-scale multiple sequence alignment" (paper §II-B). UPGMA assumes
// a molecular clock and produces an ultrametric tree: every leaf is at
// the same distance from the root, and the cophenetic distance between
// two leaves is exactly the height at which their clusters merged.
#pragma once

#include <string>
#include <vector>

#include "analysis/phylo_tree.hpp"

namespace sas::analysis {

/// Build a UPGMA tree from a symmetric row-major n×n distance matrix.
/// Requires n >= 1. Leaves keep the given names; internal nodes sit at
/// half the merge height (so leaf-to-leaf path length = merge height).
[[nodiscard]] PhyloTree upgma(const std::vector<double>& distances,
                              const std::vector<std::string>& names);

}  // namespace sas::analysis
