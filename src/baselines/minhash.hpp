// minhash.hpp — Mash-style MinHash sketching (paper refs [63], [57]).
//
// The principal comparison point of the paper: Mash approximates Jaccard
// similarity with bottom-s MinHash sketches, which is fast but — as the
// paper stresses in §I — "often lead[s] to inaccurate approximations of
// d_J for highly similar pairs ... and tend[s] to be ineffective for
// computation of a distance between highly dissimilar sets unless very
// large sketch sizes are used". bench/minhash_accuracy quantifies exactly
// that against the library's exact computation.
//
// Implementation: bottom-s sketch over a single 64-bit hash family
// (k-mers hashed through an invertible mixer emulate a random
// permutation); the Jaccard estimator merges two sketches and counts the
// shared elements among the s smallest of the union, as in Mash.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace sas::baselines {

class MinHashSketch {
 public:
  /// Sketch the element ids (e.g. canonical k-mer codes) into the s
  /// smallest hash values. `seed` selects the hash family member; both
  /// sides of a comparison must share it.
  MinHashSketch(std::span<const std::uint64_t> elements, std::size_t sketch_size,
                std::uint64_t seed);

  [[nodiscard]] std::size_t sketch_size() const noexcept { return capacity_; }
  [[nodiscard]] const std::vector<std::uint64_t>& hashes() const noexcept {
    return hashes_;  // sorted ascending, size <= sketch_size
  }

  /// Mergeability: the sketch of A ∪ B from the sketches of A and B —
  /// the property that lets Mash sketch streams incrementally.
  [[nodiscard]] static MinHashSketch merge(const MinHashSketch& a, const MinHashSketch& b);

  /// Mash's Jaccard estimator: of the s smallest hashes of the union of
  /// both sketches, the fraction present in both.
  [[nodiscard]] static double estimate_jaccard(const MinHashSketch& a,
                                               const MinHashSketch& b);

 private:
  MinHashSketch() = default;
  std::size_t capacity_ = 0;
  std::uint64_t seed_ = 0;
  std::vector<std::uint64_t> hashes_;
};

/// The Mash distance (Ondov et al. 2016): d = −(1/k)·ln(2j/(1+j)), an
/// estimate of the per-base mutation rate from a Jaccard estimate j of
/// k-mer sets. Returns 1.0 when j = 0 (saturated, as in Mash).
[[nodiscard]] double mash_distance(double jaccard_estimate, int k);

/// All-pairs Jaccard estimates from per-sample element sets, the way the
/// Mash tool computes a distance table. Returns row-major n×n estimates.
[[nodiscard]] std::vector<double> minhash_all_pairs(
    const std::vector<std::vector<std::uint64_t>>& samples, std::size_t sketch_size,
    std::uint64_t seed);

}  // namespace sas::baselines
