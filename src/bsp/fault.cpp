#include "bsp/fault.hpp"

#include <cstddef>
#include <string>

#include "util/rng.hpp"

namespace sas::bsp {

namespace {

[[nodiscard]] std::uint64_t parse_u64(const std::string& text, const std::string& spec) {
  if (text.empty() || text.find_first_not_of("0123456789") != std::string::npos) {
    throw error::ConfigError("fault plan: expected a non-negative integer in '" + spec +
                             "'");
  }
  return std::stoull(text);
}

/// "key=value" -> value, enforcing the key.
[[nodiscard]] std::string expect_field(const std::string& part, const std::string& key,
                                       const std::string& spec) {
  const std::string prefix = key + "=";
  if (part.rfind(prefix, 0) != 0) {
    throw error::ConfigError("fault plan: expected '" + key + "=...' in '" + spec +
                             "', got '" + part + "'");
  }
  return part.substr(prefix.size());
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    const std::size_t end = spec.find(';', begin);
    const std::string entry =
        spec.substr(begin, end == std::string::npos ? std::string::npos : end - begin);
    begin = end == std::string::npos ? spec.size() + 1 : end + 1;
    if (entry.empty()) continue;

    // entry = rank=R:op=K:<kind>[=param]
    std::vector<std::string> parts;
    std::size_t p = 0;
    while (p <= entry.size()) {
      const std::size_t colon = entry.find(':', p);
      parts.push_back(entry.substr(
          p, colon == std::string::npos ? std::string::npos : colon - p));
      p = colon == std::string::npos ? entry.size() + 1 : colon + 1;
    }
    if (parts.size() < 3) {
      throw error::ConfigError(
          "fault plan: each action needs "
          "'rank=R:op=K:throw|throw_transient|flip|delay=MS[:until=A][:count=N]', "
          "got '" +
          entry + "'");
    }

    FaultAction action;
    action.rank = static_cast<int>(parse_u64(expect_field(parts[0], "rank", entry), entry));
    action.op = parse_u64(expect_field(parts[1], "op", entry), entry);

    std::string kind = parts[2];
    std::string param;
    if (const std::size_t eq = kind.find('='); eq != std::string::npos) {
      param = kind.substr(eq + 1);
      kind = kind.substr(0, eq);
    }
    if (kind == "throw") {
      if (!param.empty()) {
        throw error::ConfigError("fault plan: 'throw' takes no parameter in '" + entry +
                                 "'");
      }
      action.kind = FaultKind::kThrow;
    } else if (kind == "throw_transient") {
      if (!param.empty()) {
        throw error::ConfigError("fault plan: 'throw_transient' takes no parameter in '" +
                                 entry + "'");
      }
      action.kind = FaultKind::kThrowTransient;
    } else if (kind == "flip") {
      action.kind = FaultKind::kFlip;
      action.param = param.empty() ? 0 : parse_u64(param, entry);
    } else if (kind == "delay") {
      if (param.empty()) {
        throw error::ConfigError("fault plan: 'delay' needs milliseconds in '" + entry +
                                 "'");
      }
      action.kind = FaultKind::kDelay;
      action.param = parse_u64(param, entry);
    } else {
      throw error::ConfigError("fault plan: unknown action '" + kind + "' in '" + entry +
                               "' (throw|throw_transient|flip|delay)");
    }

    // Trailing modifier fields, any order, each at most once.
    bool saw_until = false;
    bool saw_count = false;
    for (std::size_t f = 3; f < parts.size(); ++f) {
      const std::string& part = parts[f];
      if (part.rfind("until=", 0) == 0) {
        if (saw_until) {
          throw error::ConfigError("fault plan: duplicate 'until' in '" + entry + "'");
        }
        if (action.kind != FaultKind::kThrowTransient) {
          throw error::ConfigError(
              "fault plan: 'until' only applies to throw_transient in '" + entry + "'");
        }
        action.until_attempt = parse_u64(part.substr(6), entry);
        saw_until = true;
      } else if (part.rfind("count=", 0) == 0) {
        if (saw_count) {
          throw error::ConfigError("fault plan: duplicate 'count' in '" + entry + "'");
        }
        action.count = parse_u64(part.substr(6), entry);
        if (action.count == 0) {
          throw error::ConfigError("fault plan: 'count' must be >= 1 in '" + entry + "'");
        }
        saw_count = true;
      } else {
        throw error::ConfigError("fault plan: unknown field '" + part + "' in '" + entry +
                                 "' (until=A|count=N)");
      }
    }
    plan.actions.push_back(action);
  }
  return plan;
}

FaultPlan FaultPlan::random_throw(std::uint64_t seed, int nranks, std::uint64_t max_op) {
  Rng rng(seed);
  FaultAction action;
  action.kind = FaultKind::kThrow;
  action.rank = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(nranks)));
  action.op = rng.uniform(max_op == 0 ? 1 : max_op);
  FaultPlan plan;
  plan.actions.push_back(action);
  return plan;
}

FaultPlan FaultPlan::random_transient(std::uint64_t seed, int nranks,
                                      std::uint64_t max_op, std::uint64_t until) {
  FaultPlan plan = random_throw(seed, nranks, max_op);
  plan.actions.front().kind = FaultKind::kThrowTransient;
  plan.actions.front().until_attempt = until;
  return plan;
}

void FaultPlan::apply(FaultSlot& slot, std::vector<std::byte>* payload) const {
  if (actions.empty()) return;
  if (slot.fired.size() != actions.size()) {
    slot.fired.assign(actions.size(), 0);
    slot.fired_epoch.assign(actions.size(), 0);
  }
  const std::uint64_t op = slot.ops++;
  for (std::size_t i = 0; i < actions.size(); ++i) {
    const FaultAction& action = actions[i];
    if (action.rank != slot.world_rank || op < action.op) continue;
    if (action.kind == FaultKind::kThrowTransient) {
      // Transient firing counts are per replay attempt: a new attempt
      // re-arms the action until the plan says it heals.
      if (slot.fired_epoch[i] != slot.attempt) {
        slot.fired_epoch[i] = slot.attempt;
        slot.fired[i] = 0;
      }
      if (slot.attempt >= action.until_attempt) continue;  // healed
    }
    if (slot.fired[i] >= action.count) continue;
    switch (action.kind) {
      case FaultKind::kThrow:
        ++slot.fired[i];
        throw FaultInjected("fault injection: rank " + std::to_string(slot.world_rank) +
                            " throw at op " + std::to_string(op));
      case FaultKind::kThrowTransient:
        ++slot.fired[i];
        throw TransientFaultInjected(
            "fault injection: rank " + std::to_string(slot.world_rank) +
            " transient throw at op " + std::to_string(op) + " (attempt " +
            std::to_string(slot.attempt) + ")");
      case FaultKind::kFlip:
        // A flip needs bytes to corrupt; hold fire until an op carries a
        // payload.
        if (payload == nullptr || payload->empty()) break;
        ++slot.fired[i];
        (*payload)[static_cast<std::size_t>(action.param % payload->size())] ^=
            std::byte{0xff};
        break;
      case FaultKind::kDelay:
        ++slot.fired[i];
        std::this_thread::sleep_for(std::chrono::milliseconds(action.param));
        break;
    }
  }
}

}  // namespace sas::bsp
