file(REMOVE_RECURSE
  "CMakeFiles/bench_comm_model_validation.dir/bench/comm_model_validation.cpp.o"
  "CMakeFiles/bench_comm_model_validation.dir/bench/comm_model_validation.cpp.o.d"
  "bench_comm_model_validation"
  "bench_comm_model_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_comm_model_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
