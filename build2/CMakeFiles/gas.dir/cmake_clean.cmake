file(REMOVE_RECURSE
  "CMakeFiles/gas.dir/tools/gas.cpp.o"
  "CMakeFiles/gas.dir/tools/gas.cpp.o.d"
  "gas"
  "gas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
