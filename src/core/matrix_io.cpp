#include "core/matrix_io.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace sas::core {

namespace {

constexpr char kMagic[4] = {'S', 'A', 'S', 'M'};

void check_names(const std::vector<std::string>& names, const SimilarityMatrix& matrix) {
  if (static_cast<std::int64_t>(names.size()) != matrix.size()) {
    throw std::invalid_argument("similarity I/O: one name per sample required");
  }
  for (const std::string& name : names) {
    if (name.find('\n') != std::string::npos) {
      throw std::invalid_argument("similarity I/O: names must not contain newlines");
    }
  }
}

template <typename T>
void write_raw(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_raw(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("similarity I/O: truncated input");
  return value;
}

}  // namespace

void write_similarity_binary(std::ostream& out, const std::vector<std::string>& names,
                             const SimilarityMatrix& matrix) {
  check_names(names, matrix);
  out.write(kMagic, sizeof(kMagic));
  write_raw<std::uint64_t>(out, static_cast<std::uint64_t>(matrix.size()));
  std::string name_block;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i > 0) name_block += '\n';
    name_block += names[i];
  }
  write_raw<std::uint64_t>(out, static_cast<std::uint64_t>(name_block.size()));
  out.write(name_block.data(), static_cast<std::streamsize>(name_block.size()));
  out.write(reinterpret_cast<const char*>(matrix.values().data()),
            static_cast<std::streamsize>(matrix.values().size() * sizeof(double)));
  if (!out) throw std::runtime_error("similarity I/O: write failed");
}

NamedSimilarity read_similarity_binary(std::istream& in) {
  char magic[4] = {};
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("similarity I/O: bad magic");
  }
  const auto n = static_cast<std::int64_t>(read_raw<std::uint64_t>(in));
  const auto name_bytes = read_raw<std::uint64_t>(in);
  std::string name_block(name_bytes, '\0');
  in.read(name_block.data(), static_cast<std::streamsize>(name_bytes));
  if (!in) throw std::runtime_error("similarity I/O: truncated names");

  NamedSimilarity result;
  if (n > 0) {
    std::size_t start = 0;
    while (true) {
      const std::size_t end = name_block.find('\n', start);
      result.names.push_back(name_block.substr(
          start, end == std::string::npos ? std::string::npos : end - start));
      if (end == std::string::npos) break;
      start = end + 1;
    }
  }
  if (static_cast<std::int64_t>(result.names.size()) != n) {
    throw std::runtime_error("similarity I/O: name count mismatch");
  }
  std::vector<double> values(static_cast<std::size_t>(n * n));
  in.read(reinterpret_cast<char*>(values.data()),
          static_cast<std::streamsize>(values.size() * sizeof(double)));
  if (!in) throw std::runtime_error("similarity I/O: truncated values");
  result.matrix = SimilarityMatrix(n, std::move(values));
  return result;
}

void write_similarity_binary_file(const std::string& path,
                                  const std::vector<std::string>& names,
                                  const SimilarityMatrix& matrix) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write similarity file: " + path);
  write_similarity_binary(out, names, matrix);
}

NamedSimilarity read_similarity_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open similarity file: " + path);
  return read_similarity_binary(in);
}

void write_similarity_tsv(std::ostream& out, const std::vector<std::string>& names,
                          const SimilarityMatrix& matrix) {
  check_names(names, matrix);
  const std::int64_t n = matrix.size();
  out << "sample";
  for (const std::string& name : names) out << '\t' << name;
  out << '\n';
  out.precision(17);
  for (std::int64_t i = 0; i < n; ++i) {
    out << names[static_cast<std::size_t>(i)];
    for (std::int64_t j = 0; j < n; ++j) out << '\t' << matrix.similarity(i, j);
    out << '\n';
  }
}

}  // namespace sas::core
