#include "obs/trace.hpp"

#include <fstream>
#include <ostream>

#include "obs/json.hpp"
#include "util/error.hpp"

namespace sas::obs {

const char* primitive_name(Primitive p) noexcept {
  switch (p) {
    case Primitive::kBroadcast:
      return "broadcast";
    case Primitive::kReduce:
      return "reduce";
    case Primitive::kAllreduce:
      return "allreduce";
    case Primitive::kGather:
      return "gather";
    case Primitive::kAllgather:
      return "allgather";
    case Primitive::kScatter:
      return "scatter";
    case Primitive::kAlltoall:
      return "alltoall";
    case Primitive::kReduceScatter:
      return "reduce_scatter";
    case Primitive::kScan:
      return "scan";
    case Primitive::kBarrier:
      return "barrier";
  }
  return "unknown";
}

std::array<DriftCell, kPrimitiveCount> Observer::aggregate_drift() const {
  std::array<DriftCell, kPrimitiveCount> total{};
  for (const auto& rank : ranks_) {
    for (std::size_t p = 0; p < kPrimitiveCount; ++p) {
      const DriftCell& cell = rank->drift()[p];
      total[p].samples += cell.samples;
      total[p].predicted_seconds += cell.predicted_seconds;
      total[p].measured_seconds += cell.measured_seconds;
    }
  }
  return total;
}

void Observer::write_chrome_trace(std::ostream& out) const {
  JsonWriter w(out);
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  for (const auto& rank : ranks_) {
    const int pid = rank->rank();
    // Rank → "process" mapping: each BSP rank renders as its own process
    // row in Perfetto; the single rank thread is tid 0.
    w.begin_object();
    w.field("name", "process_name").field("ph", "M").field("pid", pid);
    w.field("tid", 0);
    w.key("args");
    w.begin_object();
    w.field("name", "rank " + std::to_string(pid));
    w.end_object();
    w.end_object();
    w.begin_object();
    w.field("name", "thread_name").field("ph", "M").field("pid", pid);
    w.field("tid", 0);
    w.key("args");
    w.begin_object();
    w.field("name", "bsp rank " + std::to_string(pid));
    w.end_object();
    w.end_object();
    for (const SpanEvent& ev : rank->events()) {
      w.begin_object();
      w.field("name", ev.name).field("cat", ev.category).field("ph", "X");
      w.field("pid", pid).field("tid", 0);
      // Trace-event timestamps are microseconds; fractional values keep
      // nanosecond resolution.
      w.field("ts", static_cast<double>(ev.start_ns) / 1e3);
      w.field("dur", static_cast<double>(ev.dur_ns) / 1e3);
      w.key("args");
      w.begin_object();
      w.field("bytes_sent", ev.bytes_sent);
      w.field("bytes_received", ev.bytes_received);
      w.field("messages", ev.messages);
      // Per-tier traffic under a node topology: intra = same-node subset,
      // inter = the remainder. Omitted on flat runs to keep traces small.
      if (ev.messages_intra > 0 || ev.bytes_intra > 0) {
        w.field("bytes_intra", ev.bytes_intra);
        w.field("bytes_inter", ev.bytes_sent - ev.bytes_intra);
        w.field("messages_intra", ev.messages_intra);
      }
      if (ev.batch >= 0) w.field("batch", ev.batch);
      if (ev.predicted_s >= 0.0) {
        w.field("predicted_us", ev.predicted_s * 1e6);
      }
      w.end_object();
      w.end_object();
    }
  }
  w.end_array();
  w.key("otherData");
  w.begin_object();
  w.field("tool", "sas");
  w.field("dropped_spans", total_dropped());
  {
    const std::lock_guard<std::mutex> lock(abort_mutex_);
    w.field("aborted", aborted_);
    if (aborted_) {
      w.field("abort_message", abort_message_);
      w.field("blocked_sites", blocked_sites_);
    }
  }
  w.end_object();
  w.end_object();
  out << '\n';
}

void Observer::write_chrome_trace_file(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw error::ConfigError("cannot write trace file: " + path);
  }
  write_chrome_trace(out);
  out.flush();
  if (!out) {
    throw error::ConfigError("failed writing trace file: " + path);
  }
}

}  // namespace sas::obs
