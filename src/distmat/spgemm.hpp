// spgemm.hpp — the popcount-semiring AᵀA product (paper Eq. 7 + §III-C).
//
// Computes B-contributions s⁽ˡ⁾ᵢⱼ = Σₖ popcount(âₖᵢ ∧ âₖⱼ) from bit-packed
// sparse blocks, in four interchangeable parallel forms:
//
//   serial_ata             — single-block reference (tests, baselines)
//   ring_ata_accumulate    — 1D column-panel ring: per-rank comm Θ(z)
//   summa_ata_accumulate   — 2D/2.5D SUMMA on the √(p/c)×√(p/c)×c grid:
//                            per-rank comm Θ(z/√(cp) + cn²/p)  [paper bound]
//
// All variants produce bit-identical results (enforced by tests); the
// communication difference is the paper's headline claim and is measured
// by bench/comm_model_validation through the bsp cost counters.
//
// == Kernel architecture (CSR tiles + overlapped rotation) ===============
//
// The local multiply is a Gustavson-style CSR×CSR row intersection over
// word-rows: each operand panel is converted ONCE into a CsrPanel
// (row starts over word-rows, column indices and 64-bit masks in two
// contiguous SoA arrays), then for every word-row k present in both
// panels the rank-1 update
//
//     B[Lcol(a), Ncol(b)] += popcount(Lval(a) ∧ Nval(b))
//
// is applied for all entry pairs (a, b) of that row. Three levers make
// this fast where the old triplet merge-join was not:
//
//   1. No run re-derivation. The merge-join re-scanned the triplet array
//      to find row-run boundaries on every call (p calls per batch in the
//      ring). CsrPanel indexes the OCCUPIED word-rows once per received
//      panel (sorted row_ids + compact row_ptr — a dense rows+1 array is
//      impossible in the unfiltered hypersparse regime, where the nominal
//      row space exceeds 10¹²), and the common-row list is one two-pointer
//      merge over the occupied rows, shared by all tiles.
//   2. Cache-sized output tiles. The N-side columns are processed in
//      tiles of kAtaTileCols output columns, so the touched segments of
//      the dense accumulator rows stay resident across the whole L-side
//      loop (the accumulator row stride is the full output width n —
//      untiled, large n thrashes every level of cache). Per-row cursors
//      advance monotonically through each CSR row, so tiling adds no
//      re-scan cost.
//   3. Vectorized popcount scatter. The innermost operations are the
//      dispatched popcount_and_scatter(_4) entries (util/popcount.hpp →
//      util/popcount_scatter.cpp): on AVX512 hosts each pass gathers
//      eight accumulator slots by the CSR column indices, adds eight
//      VPOPCNTQ results, and scatters them back — conflict-free because
//      CSR canonical form keeps the indices of a row segment unique —
//      and the 4-row form loads each (col, mask) pair once for four
//      output rows. Hosts without AVX512 (or with the GCC 12 VPOPCNTQ
//      mis-fold and no runtime-probe escape) fall back to the 4-way
//      unrolled scalar loops with independent POPCNT chains. The
//      crossover calibrator times the *dispatched* entry, so the
//      sparse/dense threshold below tracks whichever variant runs.
//   4. Density-adaptive dense-block path. Scatter accumulation is
//      limited by store throughput even vectorized; when the panel fill
//      product clears the measured sparse/dense crossover, both panels
//      are densified into column-major bit vectors and every output cell
//      becomes one store-free streaming popcount dot product
//      (popcount_and_sum_stream), which runs at vector popcount
//      throughput. This is the Joubert et al. (CoMet) formulation,
//      engaged exactly where it wins.
//
// Large output blocks can additionally be threaded inside a rank
// (CsrAtaOptions::threads): column tiles are disjoint output ranges, so
// threads partition the tile space with no synchronization beyond a
// final flop-counter sum. On multi-socket hosts (CsrAtaOptions::
// numa_aware, on by default) each worker is pinned to the socket that
// block-owns its share of the tile space (util/numa.hpp), and the driver
// first-touches the accumulator panel with the same partition, so every
// scatter store lands in socket-local memory. Single-socket hosts detect
// one node and skip all placement — behavior is bit-identical either way.
//
// The ring schedule is double-buffered: the send of the currently held
// panel is posted *before* the local multiply (bsp sends are buffered
// copies, so the payload is immutable once posted), which lets the
// neighbour's receive — and hence the whole rotation hop — complete
// while this rank computes. The synchronous schedule is retained for the
// ablation bench. SUMMA overlaps its stages the same way: the stage-k+1
// transpose send is posted before the stage-k broadcasts and multiply,
// so the next stage's longest point-to-point hop hides under the current
// stage's compute.
#pragma once

#include <cstdint>
#include <span>

#include "bsp/comm.hpp"
#include "distmat/csr.hpp"
#include "distmat/dense_block.hpp"
#include "distmat/pair_mask.hpp"
#include "distmat/proc_grid.hpp"
#include "distmat/sparse_block.hpp"

namespace sas::distmat {

/// Reference kernel (retained for tests/benches): for every word-row
/// present in both L and N, add popcount(L.value ∧ N.value) into out at
/// (L.col + l_col_base, N.col + n_col_base) (local coordinates of `out`).
/// Both inputs must be sorted by (row, col) and indexed against the same
/// row space. Arithmetic work is recorded into `counters` (γ term) when
/// non-null. Superseded on the hot path by csr_popcount_ata_accumulate.
void popcount_join_accumulate(std::span<const Triplet<std::uint64_t>> L,
                              std::span<const Triplet<std::uint64_t>> N,
                              std::int64_t l_col_base, std::int64_t n_col_base,
                              DenseBlock<std::int64_t>& out,
                              bsp::CostCounters* counters);

/// Tuning knobs of the CSR tile kernel.
struct CsrAtaOptions {
  /// Max worker threads for the per-tile accumulation (1 = run inline).
  /// Threads only engage when the estimated multiply work clears
  /// kAtaThreadMinFlops — small blocks are not worth the spawn cost.
  int threads = 1;
  /// Output-column tile width; 0 = kAtaTileCols. Tests force tiny tiles
  /// to exercise the tiling logic on small inputs.
  std::int64_t tile_cols = 0;
  /// Permit the density-adaptive dense-block path (technique 4 above).
  /// Benches disable it to measure the sparse tile kernel in isolation.
  bool allow_dense = true;
  /// Sparse/dense fill-product crossover. 0 = derive from the startup
  /// micro-calibration (distmat/crossover.hpp); a positive value pins
  /// the threshold (ablations, recorded-run reproduction).
  double dense_crossover = 0.0;
  /// Pin multiply workers to NUMA nodes (block assignment of workers to
  /// sockets; see util/numa.hpp). No-op on single-node hosts, when
  /// threads == 1, or when affinity calls fail — results are identical
  /// with or without placement, only locality changes.
  bool numa_aware = true;
  /// Candidate-pair mask of the hybrid estimator (global sample
  /// coordinates; see pair_mask.hpp). When set, whole blocks and output-
  /// column tiles whose pair set is fully pruned are skipped, and the
  /// flop counter records only the work actually performed. Null (the
  /// default) keeps the exact all-pairs behavior bit for bit.
  const CandidateMask* prune = nullptr;
};

/// Default output-column tile width: 512 × 8-byte accumulators = 4 KiB
/// per touched output row, so a handful of active rows fit in L1 and a
/// few dozen in L2 across the whole L-side loop.
inline constexpr std::int64_t kAtaTileCols = 512;

/// Minimum estimated multiply flops before the kernel spawns threads.
inline constexpr std::uint64_t kAtaThreadMinFlops = 1u << 21;

/// Hot-path kernel: B += ("Lᵀ N" in the popcount semiring) over the
/// word-rows common to both CSR panels, accumulating into `out` at
/// (L.col + l_col_base, N.col + n_col_base). Exact same contract and
/// bit-identical results as popcount_join_accumulate, restructured as
/// described in the kernel-architecture note above.
void csr_popcount_ata_accumulate(const CsrPanel& L, const CsrPanel& N,
                                 std::int64_t l_col_base, std::int64_t n_col_base,
                                 DenseBlock<std::int64_t>& out,
                                 bsp::CostCounters* counters,
                                 const CsrAtaOptions& options = {});

/// Reference: full n×n dense AᵀA of one local block (rows = word rows).
[[nodiscard]] DenseBlock<std::int64_t> serial_ata(const SparseBlock& block);

/// Ring rotation schedule (see the kernel-architecture note).
enum class RingSchedule {
  kSynchronous,  ///< send after compute — rotation serializes with multiply
  kOverlapped,   ///< send posted before compute — rotation overlaps multiply
};

/// 1D ring variant. Rank r owns the column panel for block_range(n, p, r)
/// (global word-row ids) and the dense output row-panel
/// rows = its column chunk × cols = [0, n). Panels circulate p−1 times.
/// The local CsrPanel is built once up front; each received panel is
/// converted once on arrival.
void ring_ata_accumulate(bsp::Comm& comm, std::int64_t n, const SparseBlock& my_panel,
                         DenseBlock<std::int64_t>& b_panel,
                         RingSchedule schedule = RingSchedule::kOverlapped,
                         const CsrAtaOptions& options = {});

/// Mask-targeted 1D exchange — the hybrid estimator's rescore schedule.
/// Same data layout and output contract as ring_ata_accumulate, but
/// instead of rotating every panel through every rank, each rank ships to
/// each peer only the panel columns that participate in at least one
/// surviving pair with that peer's output rows (one alltoall_v). Per-rank
/// bytes are therefore proportional to the surviving pair structure —
/// never more than the ring's Θ(z), and a small fraction of it on the
/// pair-sparse corpora the sketch-prune pass targets. The diagonal block
/// is computed locally from the rank's own panel.
void targeted_ata_accumulate(bsp::Comm& comm, std::int64_t n,
                             const SparseBlock& my_panel, const CandidateMask& mask,
                             DenseBlock<std::int64_t>& b_panel,
                             const CsrAtaOptions& options = {});

/// 2D/2.5D SUMMA variant over `grid`. Rank (ℓ, i, j) holds the R block of
/// word-row chunk q = ℓ·s + i (chunk-local row ids) × column chunk j.
/// Per batch, each layer computes its partial sum in s stages
/// (transpose + row broadcast + column broadcast per stage) and the layer
/// partials are reduced onto layer 0, accumulating into `b_accum`
/// (meaningful on layer-0 ranks). Collective over active grid ranks;
/// inactive ranks must not call. `b_accum` must cover column chunk
/// grid_row × column chunk grid_col of the n×n output. Broadcast panels
/// are CSR-converted once per stage before the local multiply.
///
/// With a candidate mask (options.prune), the stage collectives are
/// mask-gated: transpose hops and row/column broadcasts that feed an
/// output block whose samples all have no surviving off-diagonal partner
/// are skipped outright, so stage traffic tracks the block structure of
/// the mask instead of visiting every grid row/col. This assumes the
/// hybrid driver's column-dropping invariant — samples with no surviving
/// pair carry no triplets (their b entries are zero and their diagonal
/// reports the J(∅, ∅) = 1 convention) — which the driver establishes
/// before redistribution.
void summa_ata_accumulate(ProcGrid& grid, const SparseBlock& my_block,
                          DenseBlock<std::int64_t>& b_accum,
                          const CsrAtaOptions& options = {});

/// â contribution: acc[col_offset + e.col] += popcount(e.value) for every
/// entry of `block`. `acc` is a full-length replicated accumulator; ranks
/// sum disjoint row chunks so a final allreduce(+) yields exact â.
void accumulate_column_popcounts(const SparseBlock& block, std::int64_t col_offset,
                                 std::span<std::int64_t> acc);

}  // namespace sas::distmat
