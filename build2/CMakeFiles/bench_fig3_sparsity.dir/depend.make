# Empty dependencies file for bench_fig3_sparsity.
# This may be replaced when dependencies are built.
