#include "baselines/mapreduce_jaccard.hpp"

#include <functional>
#include <mutex>
#include <vector>

#include "bsp/runtime.hpp"
#include "distmat/block.hpp"
#include "util/hashing.hpp"

namespace sas::baselines {

namespace {

/// (attribute, sample) pair emitted by the map phase.
struct MapPair {
  std::int64_t attribute;
  std::int64_t sample;
};
static_assert(std::is_trivially_copyable_v<MapPair>);

}  // namespace

core::SimilarityMatrix mapreduce_jaccard(bsp::Comm& comm,
                                         const core::SampleSource& source,
                                         std::int64_t batch_count) {
  const std::int64_t n = source.sample_count();
  const std::int64_t m = source.attribute_universe();
  const int p = comm.size();
  const int rank = comm.rank();

  // Reducer-side accumulators: FULL dense intersection matrix and column
  // cardinalities on every rank — the memory/communication shape the
  // paper criticizes.
  std::vector<std::int64_t> intersections(static_cast<std::size_t>(n * n), 0);
  std::vector<std::int64_t> cardinalities(static_cast<std::size_t>(n), 0);

  const int batches = static_cast<int>(batch_count);
  for (int l = 0; l < batches; ++l) {
    const distmat::BlockRange rows = distmat::block_range(m, batches, l);

    // Map: each rank reads its (cyclic) share of samples and emits
    // (attribute, sample) pairs keyed by attribute hash.
    std::vector<std::vector<MapPair>> outgoing(static_cast<std::size_t>(p));
    for (std::int64_t i = rank; i < n; i += p) {
      for (std::int64_t value : source.values_in_range(i, rows)) {
        const auto reducer = static_cast<int>(
            splitmix64(static_cast<std::uint64_t>(value)) % static_cast<std::uint64_t>(p));
        outgoing[static_cast<std::size_t>(reducer)].push_back({value, i});
      }
    }

    // Shuffle.
    std::vector<std::vector<MapPair>> incoming = comm.alltoall_v(outgoing);
    std::vector<MapPair> pairs;
    for (auto& block : incoming) {
      pairs.insert(pairs.end(), block.begin(), block.end());
      block.clear();
    }
    std::sort(pairs.begin(), pairs.end(), [](const MapPair& a, const MapPair& b) {
      return a.attribute != b.attribute ? a.attribute < b.attribute
                                        : a.sample < b.sample;
    });

    // Reduce: per attribute group, bump every co-occurring sample pair.
    std::size_t g = 0;
    while (g < pairs.size()) {
      std::size_t end = g;
      while (end < pairs.size() && pairs[end].attribute == pairs[g].attribute) ++end;
      for (std::size_t a = g; a < end; ++a) {
        ++cardinalities[static_cast<std::size_t>(pairs[a].sample)];
        for (std::size_t b = g; b < end; ++b) {
          ++intersections[static_cast<std::size_t>(pairs[a].sample * n +
                                                    pairs[b].sample)];
        }
      }
      comm.add_flops(static_cast<std::uint64_t>((end - g) * (end - g)));
      g = end;
    }
  }

  // The allreduce over reducers — the Θ(n²)-per-rank step.
  comm.allreduce(intersections, std::plus<std::int64_t>{});
  comm.allreduce(cardinalities, std::plus<std::int64_t>{});

  if (rank != 0) return {};
  std::vector<double> s(static_cast<std::size_t>(n * n), 1.0);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      const std::int64_t inter = intersections[static_cast<std::size_t>(i * n + j)];
      const std::int64_t uni = cardinalities[static_cast<std::size_t>(i)] +
                               cardinalities[static_cast<std::size_t>(j)] - inter;
      s[static_cast<std::size_t>(i * n + j)] =
          uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
    }
  }
  return core::SimilarityMatrix(n, std::move(s));
}

core::SimilarityMatrix mapreduce_jaccard_threaded(
    int nranks, const core::SampleSource& source, std::int64_t batch_count,
    std::vector<bsp::CostCounters>* counters_out) {
  core::SimilarityMatrix result;
  std::mutex result_mutex;
  auto counters = bsp::Runtime::run(nranks, [&](bsp::Comm& comm) {
    core::SimilarityMatrix local = mapreduce_jaccard(comm, source, batch_count);
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(result_mutex);
      result = std::move(local);
    }
  });
  if (counters_out != nullptr) *counters_out = std::move(counters);
  return result;
}

}  // namespace sas::baselines
