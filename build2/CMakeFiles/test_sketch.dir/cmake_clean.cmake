file(REMOVE_RECURSE
  "CMakeFiles/test_sketch.dir/tests/test_sketch.cpp.o"
  "CMakeFiles/test_sketch.dir/tests/test_sketch.cpp.o.d"
  "test_sketch"
  "test_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
