#include "analysis/similar_pairs.hpp"

#include <algorithm>
#include <stdexcept>
#include <tuple>

namespace sas::analysis {

namespace {

bool by_descending_similarity(const ScoredPair& x, const ScoredPair& y) {
  return std::tie(y.similarity, x.a, x.b) < std::tie(x.similarity, y.a, y.b);
}

}  // namespace

std::vector<ScoredPair> top_k_pairs(const core::SimilarityMatrix& matrix,
                                    std::int64_t k) {
  if (k < 0) throw std::invalid_argument("top_k_pairs: k must be non-negative");
  const std::int64_t n = matrix.size();
  std::vector<ScoredPair> pairs;
  pairs.reserve(static_cast<std::size_t>(n * (n - 1) / 2));
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = i + 1; j < n; ++j) {
      pairs.push_back({i, j, matrix.similarity(i, j)});
    }
  }
  const auto take = std::min<std::size_t>(static_cast<std::size_t>(k), pairs.size());
  std::partial_sort(pairs.begin(), pairs.begin() + static_cast<std::ptrdiff_t>(take),
                    pairs.end(), by_descending_similarity);
  pairs.resize(take);
  return pairs;
}

std::vector<ScoredPair> pairs_above(const core::SimilarityMatrix& matrix,
                                    double threshold) {
  const std::int64_t n = matrix.size();
  std::vector<ScoredPair> pairs;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = i + 1; j < n; ++j) {
      const double s = matrix.similarity(i, j);
      if (s >= threshold) pairs.push_back({i, j, s});
    }
  }
  std::sort(pairs.begin(), pairs.end(), by_descending_similarity);
  return pairs;
}

std::vector<ScoredPair> candidate_pairs(const core::SimilarityMatrix& matrix,
                                        const distmat::CandidateMask& candidates,
                                        double threshold) {
  if (candidates.size() != matrix.size()) {
    throw std::invalid_argument("candidate_pairs: mask/matrix size mismatch");
  }
  std::vector<ScoredPair> pairs;
  // Visit only the mask's strict upper triangle (dense: word-by-word bit
  // walk; sparse: the CSR rows), not a dense O(n²) re-threshold.
  candidates.for_each_upper_pair([&](std::int64_t i, std::int64_t j) {
    const double s = matrix.similarity(i, j);
    if (s >= threshold) pairs.push_back({i, j, s});
  });
  std::sort(pairs.begin(), pairs.end(), by_descending_similarity);
  return pairs;
}

std::vector<ScoredPair> candidate_pairs(const core::SparseSimilarity& sparse,
                                        double threshold) {
  std::vector<ScoredPair> pairs;
  pairs.reserve(static_cast<std::size_t>(sparse.survivor_count()));
  sparse.for_each_survivor([&](std::int64_t i, std::int64_t j, double s) {
    if (s >= threshold) pairs.push_back({i, j, s});
  });
  std::sort(pairs.begin(), pairs.end(), by_descending_similarity);
  return pairs;
}

std::vector<ScoredPair> top_k_pairs(const core::SparseSimilarity& sparse,
                                    std::int64_t k) {
  if (k < 0) throw std::invalid_argument("top_k_pairs: k must be non-negative");
  std::vector<ScoredPair> pairs;
  pairs.reserve(static_cast<std::size_t>(sparse.survivor_count() +
                                         sparse.estimate_count()));
  sparse.for_each_survivor(
      [&](std::int64_t i, std::int64_t j, double s) { pairs.push_back({i, j, s}); });
  sparse.for_each_estimate(
      [&](std::int64_t i, std::int64_t j, double s) { pairs.push_back({i, j, s}); });
  const auto take = std::min<std::size_t>(static_cast<std::size_t>(k), pairs.size());
  std::partial_sort(pairs.begin(), pairs.begin() + static_cast<std::ptrdiff_t>(take),
                    pairs.end(), by_descending_similarity);
  pairs.resize(take);
  return pairs;
}

std::vector<ScoredPair> nearest_neighbours(const core::SimilarityMatrix& matrix,
                                           std::int64_t query, std::int64_t k) {
  const std::int64_t n = matrix.size();
  if (query < 0 || query >= n) {
    throw std::out_of_range("nearest_neighbours: query out of range");
  }
  std::vector<ScoredPair> pairs;
  pairs.reserve(static_cast<std::size_t>(n > 0 ? n - 1 : 0));
  for (std::int64_t j = 0; j < n; ++j) {
    if (j == query) continue;
    pairs.push_back({std::min(query, j), std::max(query, j), matrix.similarity(query, j)});
  }
  const auto take = std::min<std::size_t>(static_cast<std::size_t>(std::max<std::int64_t>(k, 0)),
                                          pairs.size());
  std::partial_sort(pairs.begin(), pairs.begin() + static_cast<std::ptrdiff_t>(take),
                    pairs.end(), by_descending_similarity);
  pairs.resize(take);
  return pairs;
}

}  // namespace sas::analysis
