// cost_model.hpp — BSP α-β-γ cost accounting, with a two-tier network.
//
// The paper analyzes SimilarityAtScale in the Bulk Synchronous Parallel
// model (§III-C): a superstep costs α, each transferred byte costs β, and
// each arithmetic operation costs γ, with α ≥ β ≥ γ. Because this
// reproduction substitutes an in-process runtime for MPI (DESIGN.md §2),
// the communication-efficiency claims are validated by *measuring* the
// α/β/γ quantities — supersteps, bytes moved, flops — rather than relying
// on NIC wall-clock alone. Every Comm operation updates these counters.
//
// == Two-tier model ======================================================
//
// Real clusters are not flat: a message between two ranks on the same
// node crosses shared memory (cheap α_intra, β_intra), while a message
// between nodes crosses the network (expensive α, β) — the (g, L)
// hierarchy that motivates the hierarchical collectives in bsp/comm.cpp.
// The counters therefore track every send twice:
//
//   messages_sent / bytes_sent   — ALL sends (both tiers). These keep
//                                  their historical meaning, so every
//                                  existing byte gate, bench column and
//                                  Θ-bound check reads totals unchanged.
//   messages_intra / bytes_intra — the same-node subset, as classified by
//                                  the runtime's node map (flat runs have
//                                  one node, so intra == 0 by convention:
//                                  a single tier is all "network").
//
// Inter-node traffic is the difference (total − intra). BspMachine prices
// the tiers separately: predicted_seconds(msgs, bytes, msgs_intra,
// bytes_intra) = inter·(α, β) + intra·(α_intra, β_intra). The
// observability layer records both tiers per collective span, so the
// drift report compares the two-tier prediction — not the flat one —
// against measured wall time whenever a node topology is active.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>

namespace sas::bsp {

/// Per-rank communication/computation counters. Padded to a cache line to
/// avoid false sharing between rank threads.
struct alignas(64) CostCounters {
  std::uint64_t messages_sent = 0;  ///< point-to-point sends issued (all tiers)
  std::uint64_t bytes_sent = 0;     ///< payload bytes across all sends (all tiers)
  std::uint64_t bytes_received = 0; ///< payload bytes across all receives
  std::uint64_t supersteps = 0;     ///< barrier synchronizations entered
  std::uint64_t flops = 0;          ///< arithmetic ops recorded by kernels
  std::uint64_t messages_intra = 0; ///< same-node subset of messages_sent
  std::uint64_t bytes_intra = 0;    ///< same-node subset of bytes_sent

  void reset() noexcept { *this = CostCounters{}; }
};

/// Aggregate view over all ranks of a run; `max_*` fields are the
/// per-rank maxima, which is what the BSP bounds constrain (the critical
/// path is the busiest rank).
struct CostSummary {
  std::uint64_t total_messages = 0;
  std::uint64_t total_bytes = 0;          ///< sum of per-rank bytes_sent
  std::uint64_t total_bytes_received = 0; ///< sum of per-rank bytes_received
  std::uint64_t total_messages_intra = 0; ///< same-node subset of total_messages
  std::uint64_t total_bytes_intra = 0;    ///< same-node subset of total_bytes
  std::uint64_t max_messages = 0;   ///< max over ranks
  std::uint64_t max_bytes = 0;      ///< max over ranks
  std::uint64_t max_supersteps = 0; ///< max over ranks (≈ common value)
  std::uint64_t total_flops = 0;
  std::uint64_t max_flops = 0;

  static CostSummary aggregate(std::span<const CostCounters> per_rank) {
    CostSummary s;
    for (const CostCounters& c : per_rank) {
      s.total_messages += c.messages_sent;
      s.total_bytes += c.bytes_sent;
      s.total_bytes_received += c.bytes_received;
      s.total_messages_intra += c.messages_intra;
      s.total_bytes_intra += c.bytes_intra;
      s.total_flops += c.flops;
      s.max_messages = std::max(s.max_messages, c.messages_sent);
      s.max_bytes = std::max(s.max_bytes, c.bytes_sent);
      s.max_supersteps = std::max(s.max_supersteps, c.supersteps);
      s.max_flops = std::max(s.max_flops, c.flops);
    }
    return s;
  }
};

/// Machine parameters of the (two-tier) BSP model; used by benches to
/// convert the measured counters into a modelled time
/// T = supersteps·α + bytes·β + flops·γ and to check the paper's
/// asymptotic bounds. The intra tier defaults reflect shared-memory
/// transport being roughly an order of magnitude cheaper per message and
/// per byte than the network tier — benches that pin (α, β) positionally
/// keep working because the intra fields trail with defaults.
struct BspMachine {
  double alpha = 1.0e-6;   ///< seconds per superstep / inter-node message
  double beta = 1.0e-9;    ///< seconds per inter-node byte
  double gamma = 1.0e-10;  ///< seconds per arithmetic op
  double alpha_intra = 1.0e-7;  ///< seconds per intra-node (same-node) message
  double beta_intra = 1.0e-10;  ///< seconds per intra-node byte

  [[nodiscard]] double modelled_seconds(const CostSummary& s) const noexcept {
    return static_cast<double>(s.max_supersteps) * alpha +
           static_cast<double>(s.max_bytes) * beta +
           static_cast<double>(s.max_flops) * gamma;
  }

  /// Flat α-β prediction for a single communication primitive as observed
  /// from one rank: `messages` sends at latency α each plus `bytes`
  /// payload at β each. A zero-message primitive (barrier) still pays one
  /// α of synchronization. Used when no node topology is active (every
  /// send is network-tier).
  [[nodiscard]] double predicted_seconds(std::uint64_t messages,
                                         std::uint64_t bytes) const noexcept {
    const double latency =
        static_cast<double>(messages > 0 ? messages : 1) * alpha;
    return latency + static_cast<double>(bytes) * beta;
  }

  /// Two-tier α-β prediction: `messages`/`bytes` are the PRIMITIVE TOTALS
  /// (matching the counters), `messages_intra`/`bytes_intra` the same-node
  /// subset; the inter tier is the difference. The observability layer
  /// (obs/trace.hpp) records this next to the measured duration of every
  /// outermost collective so the report can surface per-primitive model
  /// drift under a node topology. A primitive that moved no messages at
  /// all (barrier) still pays one inter-tier α of synchronization.
  [[nodiscard]] double predicted_seconds(std::uint64_t messages, std::uint64_t bytes,
                                         std::uint64_t messages_intra,
                                         std::uint64_t bytes_intra) const noexcept {
    const std::uint64_t m_in = std::min(messages_intra, messages);
    const std::uint64_t b_in = std::min(bytes_intra, bytes);
    const std::uint64_t m_ex = messages - m_in;
    const std::uint64_t b_ex = bytes - b_in;
    if (messages == 0) return alpha;  // pure synchronization
    return static_cast<double>(m_ex) * alpha + static_cast<double>(b_ex) * beta +
           static_cast<double>(m_in) * alpha_intra +
           static_cast<double>(b_in) * beta_intra;
  }
};

}  // namespace sas::bsp
