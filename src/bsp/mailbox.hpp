// mailbox.hpp — internal message transport for the BSP runtime.
//
// One mailbox per destination rank. Messages are byte buffers keyed by
// (source, tag); per-key delivery is FIFO, matching MPI's non-overtaking
// guarantee for same (source, tag) pairs. Sends are buffered (never
// block), so naive send-then-receive exchange patterns cannot deadlock.
//
// retrieve() is the runtime's main blocking point and therefore where the
// failure semantics live: the wait runs under a WaitPolicy (fault.hpp),
// unwinding with RankAborted when a peer rank fails and with
// WatchdogTimeout when the optional deadline expires.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "bsp/fault.hpp"

namespace sas::bsp {

class Mailbox {
 public:
  using Message = std::vector<std::byte>;

  /// Deposit a message from `source` with `tag`. Never blocks.
  void deposit(int source, int tag, Message payload) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queues_[{source, tag}].push_back(std::move(payload));
    }
    cv_.notify_all();
  }

  /// Block until a message from (source, tag) is available and return it.
  /// Under `policy`: throws RankAborted if the run aborts while waiting,
  /// error::WatchdogTimeout if the deadline elapses first.
  [[nodiscard]] Message retrieve(int source, int tag, const WaitPolicy& policy = {}) {
    std::unique_lock<std::mutex> lock(mutex_);
    auto& queue = queues_[{source, tag}];
    if (queue.empty()) {
      const std::string site = "rank " + std::to_string(policy.rank) +
                               " in recv(source=" + std::to_string(source) +
                               ", tag=" + std::to_string(tag) + ")";
      wait_or_abort(cv_, lock, [&queue] { return !queue.empty(); }, policy, site);
    }
    Message payload = std::move(queue.front());
    queue.pop_front();
    return payload;
  }

  /// Drop every queued message. Recovery only: a batch replay must not
  /// see stale messages from the aborted attempt, so the rendezvous
  /// purges all mailboxes while every rank is quiescent (Comm::recover).
  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    queues_.clear();
  }

  /// One undelivered (source, tag) queue: sent but never received.
  struct Pending {
    int source = 0;
    int tag = 0;
    std::size_t count = 0;  ///< messages still queued
    std::size_t bytes = 0;  ///< their total payload size
  };

  /// Snapshot of every non-empty queue, (source, tag) ascending. Used by
  /// the protocol verifier's run-exit leak sweep (bsp/protocol.hpp);
  /// an unreceived message at exit means a send/recv pairing bug.
  [[nodiscard]] std::vector<Pending> pending() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<Pending> out;
    for (const auto& [key, queue] : queues_) {
      if (queue.empty()) continue;
      Pending p{key.first, key.second, queue.size(), 0};
      for (const Message& m : queue) p.bytes += m.size();
      out.push_back(p);
    }
    return out;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::pair<int, int>, std::deque<Message>> queues_;
};

}  // namespace sas::bsp
