file(REMOVE_RECURSE
  "CMakeFiles/test_corruption.dir/tests/test_corruption.cpp.o"
  "CMakeFiles/test_corruption.dir/tests/test_corruption.cpp.o.d"
  "test_corruption"
  "test_corruption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_corruption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
