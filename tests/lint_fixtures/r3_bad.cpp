// Seeded R3 fixture: untyped throw and process abort in library code.
// Never compiled -- sas_lint.py --self-test only.

void fails_without_the_taxonomy(bool broken) {
  if (broken) {
    throw std::runtime_error("untyped failure loses the exit code");
  }
  abort();
}
