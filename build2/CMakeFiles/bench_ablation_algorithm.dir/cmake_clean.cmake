file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_algorithm.dir/bench/ablation_algorithm.cpp.o"
  "CMakeFiles/bench_ablation_algorithm.dir/bench/ablation_algorithm.cpp.o.d"
  "bench_ablation_algorithm"
  "bench_ablation_algorithm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_algorithm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
