// kmer.hpp — 2-bit packed k-mers with canonicalization.
//
// A k-mer is a length-k subsequence (paper §II-B); with k ≤ 31 it packs
// into one 64-bit word, and the attribute universe of the indicator
// matrix is m = 4ᵏ. Sequencing reads come from either DNA strand, so a
// k-mer and its reverse complement are identified: the canonical form is
// the numerically smaller of the two. The paper picks odd k (19, 31) so
// no k-mer equals its own reverse complement — an invariant the tests
// check.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "genome/alphabet.hpp"

namespace sas::genome {

/// Codec for fixed k. Valid k: 1..31 (2 bits per base in a u64, and
/// m = 4ᵏ must fit in a signed 64-bit attribute id).
class KmerCodec {
 public:
  explicit KmerCodec(int k);

  [[nodiscard]] int k() const noexcept { return k_; }

  /// Attribute universe size m = 4ᵏ.
  [[nodiscard]] std::int64_t universe() const noexcept {
    return std::int64_t{1} << (2 * k_);
  }

  /// Pack a length-k string; throws on invalid length or bases.
  [[nodiscard]] std::uint64_t encode(std::string_view kmer) const;

  /// Unpack to the length-k string.
  [[nodiscard]] std::string decode(std::uint64_t code) const;

  /// Reverse complement of a packed k-mer.
  [[nodiscard]] std::uint64_t reverse_complement(std::uint64_t code) const noexcept;

  /// min(code, reverse_complement(code)) — the strand-neutral form.
  [[nodiscard]] std::uint64_t canonical(std::uint64_t code) const noexcept {
    const std::uint64_t rc = reverse_complement(code);
    return rc < code ? rc : code;
  }

  /// All canonical k-mers of `sequence` in order of occurrence, one per
  /// window; windows containing non-ACGT characters are skipped (the
  /// rolling state resets past them). Duplicates are preserved — counting
  /// happens downstream.
  [[nodiscard]] std::vector<std::uint64_t> canonical_kmers(
      std::string_view sequence) const;

 private:
  int k_;
  std::uint64_t mask_;  // low 2k bits
};

}  // namespace sas::genome
