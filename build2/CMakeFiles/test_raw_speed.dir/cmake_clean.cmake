file(REMOVE_RECURSE
  "CMakeFiles/test_raw_speed.dir/tests/test_raw_speed.cpp.o"
  "CMakeFiles/test_raw_speed.dir/tests/test_raw_speed.cpp.o.d"
  "test_raw_speed"
  "test_raw_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_raw_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
